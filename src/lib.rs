pub fn _scaffold() {}
