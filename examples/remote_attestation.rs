//! Remote attestation via a trusted enclave — implementing the future
//! work the paper defers ("Komodo ... defers remote attestation to a
//! trusted enclave (that we have yet to implement)", §4).
//!
//! ```sh
//! cargo run --example remote_attestation
//! ```

use komodo::{measure_image, Platform, PlatformConfig};
use komodo_crypto::schnorr;
use komodo_guest::ra::{ra_image, unpack_u64};
use komodo_os::EnclaveRun;
use komodo_spec::svc::attest_mac;

fn main() {
    let mut p = Platform::with_config(PlatformConfig::default());
    let img = ra_image();
    let ra = p.load(&img).expect("RA enclave builds");
    println!("remote-attestation enclave loaded");

    // Phase 1: the enclave generates its keypair *inside* — GetRandom for
    // the secret, g^x computed by guest-code modular exponentiation — and
    // binds the public key to its measurement with local attestation.
    let before = p.cycles();
    assert_eq!(p.run(&ra, 0, [0, 0, 0]), EnclaveRun::Exited(0));
    println!(
        "keypair generated in-enclave ({} simulated cycles)",
        p.cycles() - before
    );
    let out = p.read_shared(&ra, 3, 8, 10);
    let public = unpack_u64(out[0], out[1]);
    println!("published pubkey: {public:#018x}");

    // A local verifier checks the binding: MAC over [pub] under the
    // platform key, tied to the RA enclave's *predicted* measurement.
    let measurement = measure_image(&img, 1);
    let mut bound = [0u32; 8];
    bound[0] = out[0];
    bound[1] = out[1];
    let expected = attest_mac(p.monitor.attest_key(), &measurement, &bound);
    assert_eq!(&out[2..10], &expected.0, "binding MAC invalid");
    println!("pubkey binding verified against the RA enclave's measurement");

    // Phase 2: anyone asks for a quote over report data (say, another
    // enclave's measurement + a channel-binding nonce).
    let report = [0xfeed_0001u32, 2, 3, 4, 5, 6, 7, 0xfeed_0008];
    p.write_shared(&ra, 3, 0, &report);
    let before = p.cycles();
    assert_eq!(p.run(&ra, 0, [1, 0, 0]), EnclaveRun::Exited(0));
    println!(
        "quote signed in-enclave ({} simulated cycles: guest-code g^k, SHA-256 challenge, response)",
        p.cycles() - before
    );
    let out = p.read_shared(&ra, 3, 18, 4);
    let sig = schnorr::Signature {
        r: unpack_u64(out[0], out[1]),
        s: unpack_u64(out[2], out[3]),
    };

    // Phase 3: a *remote* verifier — no platform, no monitor key — checks
    // the quote with the public key alone.
    assert!(schnorr::verify(public, &report, &sig));
    println!("remote verifier accepted the quote offline");
    let mut bad = report;
    bad[3] ^= 1;
    assert!(!schnorr::verify(public, &bad, &sig));
    println!("tampered report correctly rejected");
    println!();
    println!(
        "(Group parameters are a 61-bit toy instance sized for the simulator —\n\
         the protocol structure, in-enclave key custody, and the local→remote\n\
         trust chain are the artifact; swap in a standard curve for strength.)"
    );
}
