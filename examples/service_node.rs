//! A long-lived enclave-service node over the replicated fleet: typed
//! requests (attestation quotes, notarisations, sessions) with priority
//! classes, backpressure, and graceful shutdown.
//!
//! ```sh
//! cargo run --release --example service_node
//! ```

use komodo_service::{
    drive, drive_indexed, schedule, schedule_indexed, Mix, Reject, Request, Response, Service,
    ServiceConfig,
};

fn main() {
    // A 4-shard node with a small bounded queue so backpressure is
    // visible in the demo.
    let cfg = ServiceConfig::default()
        .with_shards(4)
        .with_queue_capacity(32);

    let run = Service::run(cfg, |node| {
        // 1. A single attestation quote, end to end.
        let quote = node
            .submit(Request::Attest {
                report: [0xa11c_e000, 1, 2, 3, 4, 5, 6, 7],
            })
            .expect("queue has room")
            .wait()
            .expect("attest succeeds");
        let Response::Quote { counter, mac } = quote else {
            panic!("wrong response: {quote:?}");
        };
        println!(
            "attestation quote: counter {counter}, mac[0..2] = {:08x} {:08x}",
            mac[0], mac[1]
        );

        // 2. A session: dedicated enclave keeping a secret across calls.
        let Response::SessionOpened { session } = node
            .submit(Request::SessionOpen)
            .expect("queue has room")
            .wait()
            .expect("session opens")
        else {
            panic!("wrong response");
        };
        node.submit(Request::SessionPut {
            session,
            value: 0x005e_c2e7,
        })
        .expect("queue has room")
        .wait()
        .expect("put succeeds");
        let got = node
            .submit(Request::SessionGet { session })
            .expect("queue has room")
            .wait()
            .expect("get succeeds");
        println!("session {session} round-trip: {got:?}");
        node.submit(Request::SessionClose { session })
            .expect("control plane always admits")
            .wait()
            .expect("close succeeds");

        // 3. Open-loop load: a seeded burst of notarisations. The
        //    schedule is deterministic in the seed, so rejection
        //    behaviour under the bounded queue is replayable.
        let mix = Mix::new()
            .with(3, Request::Notarize { doc_kb: 2 })
            .with(1, Request::Attest { report: [7; 8] });
        let arrivals = schedule(0xBEEF, 48, 0, &mix).expect("mix has weight");
        let outcome = drive(node, &arrivals, false);
        println!(
            "open-loop burst: {} ok, {} errors, {} shed by backpressure",
            outcome.ok, outcome.errors, outcome.rejected
        );

        // 4. Parallel batched ingestion: the streaming schedule holds
        //    prototype indices (no payload copies), and two submitter
        //    threads admit their partitions in batches of 16.
        let streamed = schedule_indexed(0xBEEF, 96, 0, &mix).expect("mix has weight");
        let report = drive_indexed(node, &mix, &streamed, false, 2, 16);
        println!(
            "batched parallel burst: {} ok, {} errors, {} shed, submit phase {:?}",
            report.outcome.ok, report.outcome.errors, report.outcome.rejected, report.submit_wall
        );

        // 5. Graceful shutdown: new work is refused, typed.
        node.shutdown();
        match node.submit(Request::Notarize { doc_kb: 1 }) {
            Err(Reject::ShuttingDown) => println!("post-shutdown submit refused, typed"),
            Err(r) => panic!("expected shutdown rejection, got {r:?}"),
            Ok(_) => panic!("expected shutdown rejection, got a ticket"),
        }
    });

    println!();
    println!("service report:");
    println!("{}", run.report().to_json(0));
}
