//! The trusted notary (paper §8.2): timestamping documents with an
//! attested monotonic counter.
//!
//! ```sh
//! cargo run --release --example notary
//! ```

use komodo::{measure_image, Platform, PlatformConfig};
use komodo_guest::notary::{notarised_digest, notary_image};
use komodo_os::EnclaveRun;
use komodo_spec::svc::attest_mac;

fn main() {
    let mut p = Platform::with_config(PlatformConfig::default());
    let image = notary_image(4); // Up to 16 kB documents.
    let notary = p.load(&image).expect("notary builds");
    println!("notary enclave loaded; measurement fixed at finalise");

    // The verifier computes the expected measurement from the image alone.
    let expected_measurement = measure_image(&image, 1);

    for (i, text) in ["first document", "second document", "the first again"]
        .iter()
        .enumerate()
    {
        // Documents are word-granular, whole 64-byte blocks.
        let mut doc: Vec<u32> = text.bytes().map(|b| b as u32).collect();
        doc.resize(doc.len().div_ceil(16) * 16, 0);

        // The OS drops the document into the shared input pages.
        p.write_shared(&notary, 3, 0, &doc);
        let r = p.run(&notary, 0, [(doc.len() / 16) as u32, 0, 0]);
        let EnclaveRun::Exited(stamp) = r else {
            panic!("notary failed: {r:?}");
        };
        let mac = p.read_shared(&notary, 4, 0, 8);
        println!("notarised {text:?} with timestamp {stamp}");

        // Anyone holding the attestation key's verification power (here:
        // the platform, standing in for the local-attestation verifier)
        // checks the chain: document + stamp → digest → MAC under the
        // notary's measurement.
        let digest = notarised_digest(stamp, &doc);
        let expected = attest_mac(p.monitor.attest_key(), &expected_measurement, &digest);
        assert_eq!(mac, expected.0.to_vec(), "attestation mismatch");
        println!(
            "  attestation verified (stamp {} bound to document hash)",
            stamp
        );
        assert_eq!(stamp, i as u32 + 1, "counter must be monotonic");
    }

    // A forged stamp fails verification.
    let mut doc: Vec<u32> = "first document".bytes().map(|b| b as u32).collect();
    doc.resize(16, 0);
    let forged_digest = notarised_digest(99, &doc);
    let forged = attest_mac(
        p.monitor.attest_key(),
        &expected_measurement,
        &forged_digest,
    );
    let real_mac = p.read_shared(&notary, 4, 0, 8);
    assert_ne!(forged.0.to_vec(), real_mac);
    println!("forged timestamp correctly fails verification");
}
