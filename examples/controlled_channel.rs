//! The controlled-channel experiment (paper §2 / §3.1): the same
//! secret-dependent victim under the SGX baseline and under Komodo.
//!
//! ```sh
//! cargo run --example controlled_channel
//! ```

use komodo::{Platform, PlatformConfig};
use komodo_guest::progs;
use komodo_ni::concrete::adversary_view;
use komodo_os::EnclaveRun;
use komodo_sgx_baseline::attack::{controlled_channel_attack, oracle_trace, recover_secret};
use komodo_sgx_baseline::model::{PagePerms, PageType, SgxMachine};

const SECRET: u32 = 0b1011_0101;
const NBITS: u32 = 8;

fn sgx_side() {
    println!("--- SGX baseline ---");
    let mut m = SgxMachine::new(32);
    let e = m.ecreate().unwrap();
    let perms = PagePerms {
        r: true,
        w: true,
        x: false,
    };
    m.eadd_measured(e, PageType::Tcs, 0x1000, perms, &[0; 1024])
        .unwrap();
    for va in [0x2000u32, 0x3000, 0x4000] {
        m.eadd_measured(e, PageType::Reg, va, perms, &[0; 1024])
            .unwrap();
    }
    m.einit(e).unwrap();
    let trace = oracle_trace(SECRET, NBITS, 0x2000);
    let observed = controlled_channel_attack(&mut m, e, &trace);
    let recovered = recover_secret(&observed, 0x2000) & ((1 << NBITS) - 1);
    println!("victim's secret:        {SECRET:#010b}");
    println!(
        "OS observed {} page faults at addresses: {:x?}",
        observed.len(),
        observed
    );
    println!("OS recovered:           {recovered:#010b}");
    assert_eq!(recovered, SECRET);
    println!("→ the page-fault side channel leaks the secret bit-for-bit.\n");
}

fn komodo_side() {
    println!("--- Komodo ---");
    // The equivalent victim: page_oracle touches one of two private pages
    // depending on a secret bit. Run it with secret bit 0 and secret bit
    // 1 on twin platforms; compare everything the OS can observe.
    let run = |bit: u32| {
        let mut p = Platform::with_config(
            PlatformConfig::default()
                .with_insecure_size(1 << 20)
                .with_npages(64)
                .with_seed(5),
        );
        let e = p.load(&progs::page_oracle()).unwrap();
        let r = p.run(&e, 0, [bit, 0, 0]);
        assert_eq!(r, EnclaveRun::Exited(0));
        (
            adversary_view(&mut p.machine, &p.monitor.layout),
            p.cycles(),
        )
    };
    let (v0, c0) = run(0);
    let (v1, c1) = run(1);
    println!("victim ran with secret bit 0 and (separately) secret bit 1");
    println!("OS view digests equal:  {}", v0 == v1);
    println!("cycle counters equal:   {}", c0 == c1);
    assert_eq!(v0, v1);
    assert_eq!(c0, c1);
    println!(
        "→ the OS cannot induce or observe enclave page faults (§3.1); it\n\
         \x20 \"learns only the type of exception taken\" — here: a clean exit,\n\
         \x20 identical for both secrets."
    );
}

fn main() {
    println!("Controlled-channel attack: SGX baseline vs Komodo\n");
    sgx_side();
    komodo_side();
}
