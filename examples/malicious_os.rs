//! A malicious OS throws the §3.1 threat model at a victim enclave; every
//! attack is defeated and the victim's secret survives.
//!
//! ```sh
//! cargo run --example malicious_os
//! ```

use komodo::{Platform, PlatformConfig};
use komodo_guest::progs;
use komodo_os::attacks::{self, AttackOutcome};
use komodo_os::EnclaveRun;
use komodo_spec::KomErr;

fn main() {
    let mut p = Platform::with_config(
        PlatformConfig::default()
            .with_insecure_size(1 << 20)
            .with_npages(64)
            .with_seed(1234),
    );
    let victim = p.load(&progs::secret_keeper()).unwrap();
    assert_eq!(
        p.run(&victim, 0, [0, 0xcafe_f00d, 0]),
        EnclaveRun::Exited(0)
    );
    println!("victim enclave stores secret 0xcafef00d in a private page\n");

    println!("attack 1: read every secure page from the normal world");
    let n = attacks::sweep_secure_pool(&mut p.machine, &p.monitor);
    println!("  → all {n} pages: blocked by the TrustZone memory controller");

    println!("attack 2: InitAddrspace(p, p) aliasing (the §9.1 bug)");
    let r = attacks::aliased_init_addrspace(&mut p.machine, &mut p.monitor, &p.os, 40);
    println!("  → {r:?}");
    assert_eq!(r, AttackOutcome::RejectedByMonitor(KomErr::PageInUse));

    println!("attack 3: remove the victim's live pages");
    for pg in &victim.owned_pages {
        let r = attacks::remove_live_page(&mut p.machine, &mut p.monitor, &p.os, *pg);
        assert!(matches!(r, AttackOutcome::RejectedByMonitor(_)));
    }
    println!("  → every removal rejected (NotStopped)");

    println!("attack 4: build a colluding enclave and double-map the victim's data page");
    let asp = p.os.alloc_secure().unwrap();
    let l1 = p.os.alloc_secure().unwrap();
    p.os.init_addrspace(&mut p.machine, &mut p.monitor, asp, l1);
    let l2 = p.os.alloc_secure().unwrap();
    p.os.init_l2ptable(&mut p.machine, &mut p.monitor, asp, l2, 0);
    // Any page owned by the victim will do for the demonstration.
    let target = victim.owned_pages[victim.owned_pages.len() - 1];
    let r =
        attacks::double_map_secure_page(&mut p.machine, &mut p.monitor, &p.os, asp, target, 0x9000);
    println!("  → {r:?}");
    assert!(matches!(r, AttackOutcome::RejectedByMonitor(_)));

    println!("attack 5: feed the monitor its own pages as 'insecure' memory (§9.1)");
    let data = p.os.alloc_secure().unwrap();
    let r = attacks::map_secure_from_monitor_page(
        &mut p.machine,
        &mut p.monitor,
        &p.os,
        asp,
        data,
        0xa000,
    );
    println!("  → {r:?}");
    assert_eq!(r, AttackOutcome::RejectedByMonitor(KomErr::InvalidInsecure));

    println!("attack 6: interrupt the victim mid-run, then try to re-enter (rollback)");
    p.monitor.step_budget = 50;
    let spin = p.load(&progs::spinner()).unwrap();
    assert_eq!(p.enter(&spin, 0, [0; 3]), EnclaveRun::Interrupted);
    let r = attacks::reenter_suspended_thread(&mut p.machine, &mut p.monitor, &p.os, &spin);
    println!("  → {r:?}");
    assert_eq!(r, AttackOutcome::RejectedByMonitor(KomErr::AlreadyEntered));
    p.monitor.step_budget = 500_000_000;

    println!("attack 7: garbage monitor calls with hostile arguments");
    for call in [0u32, 13, 0xffff_ffff] {
        let r = attacks::garbage_call(&mut p.machine, &mut p.monitor, call);
        assert!(matches!(r, AttackOutcome::RejectedByMonitor(_)));
    }
    println!("  → rejected");

    println!();
    match p.run(&victim, 0, [1, 0, 0]) {
        EnclaveRun::Exited(secret) => {
            assert_eq!(secret, 0xcafe_f00d);
            println!("victim's secret intact after the barrage: {secret:#010x}");
        }
        other => panic!("victim damaged: {other:?}"),
    }
}
