//! A chaos campaign end to end: seeded fault injection against the NI
//! and refinement oracles, a deliberately planted monitor bug getting
//! caught, and the failing schedule delta-debugged down to its trigger.
//!
//! ```sh
//! cargo run --release --example chaos_campaign
//! ```

use komodo::Platform;
use komodo_chaos::schedule::CaseSpec;
use komodo_chaos::{
    run_campaign, run_case_spec, shrink_case, CampaignConfig, ChaosConfig, Verdict,
};
use komodo_monitor::PlantedBugs;

fn main() {
    // 1. A campaign against the correct monitor. Every case is derived
    //    from (master seed, case index): a backbone of victim/worker
    //    enclave bursts with IRQs landing mid-burst, garbage SMCs,
    //    page churn, destroy-under-load, and register/memory
    //    perturbation from the "OS". Each case runs twice — identical
    //    except for the victim's secret — and everything the OS can
    //    observe must match between the passes.
    let cfg = CampaignConfig {
        master_seed: 0xd15a_57e5,
        cases: 400,
        shards: 4,
        ..CampaignConfig::default()
    };
    println!(
        "campaign: {} cases from master seed {:#x} on {} fleet shards",
        cfg.cases, cfg.master_seed, cfg.shards
    );
    let report = run_campaign(&cfg);
    println!(
        "  {} passed / {} cases, {} faults injected, {:.0} cases/s",
        report.passed,
        report.cases,
        report.injected.iter().sum::<u64>(),
        report.cases_per_sec()
    );
    println!("  fault mix: {}", report.fault_mix_line());
    println!("  verdict digest: {}", report.verdict_digest);
    assert!(report.all_green());
    println!("  the correct monitor survives the campaign\n");

    // 2. The same campaign against a monitor with a planted bug: the
    //    world-switch path "forgets" to scrub user-visible registers
    //    when an enclave is preempted — exactly the class of bug
    //    Komodo's noninterference proof exists to rule out.
    let buggy = ChaosConfig {
        planted: PlantedBugs {
            leak_regs_on_interrupt: true,
            ..PlantedBugs::default()
        },
        ..ChaosConfig::default()
    };
    let bad = run_campaign(&CampaignConfig {
        chaos: buggy.clone(),
        ..cfg.clone()
    });
    assert!(!bad.all_green(), "the planted bug must be caught");
    let first = &bad.failures[0];
    println!(
        "planted bug (skip register scrub on preemption): caught by the {} oracle",
        first.verdict.name()
    );
    println!(
        "  first failing case: index {} seed {:#x} ({} of {} cases failed)\n",
        first.index,
        first.seed,
        bad.cases - bad.passed,
        bad.cases
    );

    // 3. Shrink the failing schedule. The backbone (slots, targets,
    //    tier) is reproducible from the printed seed alone; ddmin
    //    deletes faults until only the trigger remains.
    let case = CaseSpec::generate(first.seed);
    println!(
        "shrinking: the failing case injected {} faults over {} slots",
        case.faults.len(),
        case.targets.len()
    );
    let mut p = Platform::with_config(buggy.platform.clone());
    let shrunk = shrink_case(&mut p, &buggy, &case).expect("failing case shrinks");
    println!(
        "  ddmin: {} -> {} faults in {} probe runs",
        case.faults.len(),
        shrunk.minimal.faults.len(),
        shrunk.probes
    );
    println!("\nminimal failing schedule:");
    print!("{}", shrunk.minimal);

    // 4. The minimal case reproduces, and its report carries the
    //    side-by-side flight-recorder tails of both passes — the
    //    secret-A and secret-B executions right up to the divergence.
    let again = run_case_spec(&mut p, &buggy, &shrunk.minimal);
    assert!(again.verdict.is_failure());
    if let Verdict::Ni {
        slot,
        detail,
        report,
    } = &again.verdict
    {
        let at = if *slot == u32::MAX {
            "final state".to_string()
        } else {
            format!("slot {slot}")
        };
        println!("\nNI violation at {at}: {detail}");
        println!("\nflight recorder, secret-A pass vs secret-B pass:");
        print!("{report}");
    }
    println!(
        "\nthe schedule above reproduces from seed {:#x} alone",
        first.seed
    );
}
