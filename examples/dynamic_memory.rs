//! SGXv2-style dynamic memory management (paper §4): spare pages, and the
//! enclave-initiated `MapData`/`UnmapData`/`InitL2PTable` SVCs.
//!
//! ```sh
//! cargo run --example dynamic_memory
//! ```

use komodo::{Platform, PlatformConfig};
use komodo_guest::progs;
use komodo_monitor::abs::abstract_pagedb;
use komodo_os::EnclaveRun;
use komodo_spec::{KomErr, PageEntry};

fn main() {
    let mut p = Platform::with_config(PlatformConfig::default());

    // Build an enclave with one spare page. Spares are allocated by the
    // OS *after* finalisation — they do not change the measurement.
    let enclave = p
        .load_with(&progs::dynamic_memory_user(), 1, 1)
        .expect("build");
    let spare = enclave.spares[0];
    println!("enclave built with spare page {spare} (allocated post-finalise)");

    // Before the enclave touches it, the page is a spare: the OS can see
    // its allocation state (the §6.2 declassified side channel) but never
    // its future contents.
    let d = abstract_pagedb(&mut p.machine, &p.monitor.layout);
    assert!(matches!(d.get(spare), Some(PageEntry::Spare { .. })));
    println!("OS view: page {spare} is allocated-as-spare (type visible, contents never)");

    // The enclave turns it into a private data page, uses it, and returns
    // it to spare state — all via SVCs, no OS involvement.
    let r = p.run(&enclave, 0, [spare as u32, 0, 0]);
    assert_eq!(r, EnclaveRun::Exited(0x5eed_f00d));
    println!("enclave mapped the spare at VA 0x9000, stored/loaded 0x5eedf00d, unmapped");

    let d = abstract_pagedb(&mut p.machine, &p.monitor.layout);
    assert!(matches!(d.get(spare), Some(PageEntry::Spare { .. })));
    println!("OS view: page {spare} is a spare again");

    // Contrast with SGXv2 (§4): there, "the OS remains in control of the
    // type, address and permissions of all dynamic allocations"; under
    // Komodo "it cannot tell whether the enclave has used them as data or
    // page-table pages".

    // The OS reclaims the spare at any time.
    let r = p.os.remove(&mut p.machine, &mut p.monitor, spare);
    assert_eq!(r.err, KomErr::Ok);
    println!("OS reclaimed the spare page (legal at any time for spares)");

    // But reclaiming a *live* page of the running enclave is refused.
    let r =
        p.os.remove(&mut p.machine, &mut p.monitor, enclave.threads[0]);
    assert_eq!(r.err, KomErr::NotStopped);
    println!(
        "OS attempt to remove the live thread page: {:?} (refused)",
        r.err
    );
}
