//! Quickstart: boot a platform, build an enclave, run it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use komodo::{Platform, PlatformConfig};
use komodo_armv7::regs::Reg;
use komodo_guest::{svc, GuestSegment, Image};
use komodo_os::EnclaveRun;

fn main() {
    // 1. Boot: machine + monitor (secure world) + OS model (normal world).
    let mut platform = Platform::with_config(PlatformConfig::default());
    println!(
        "booted: {} secure pages, attestation key derived from the boot RNG",
        platform.monitor.layout.npages
    );

    // 2. Write a guest program with the assembler. This one computes
    //    arg1 * arg2 + arg3 and exits with the result.
    let mut a = komodo_armv7::Assembler::new(0x8000);
    a.mul(Reg::R(4), Reg::R(0), Reg::R(1));
    a.add_reg(Reg::R(1), Reg::R(4), Reg::R(2));
    svc::exit(&mut a); // Exit(R1) back to the OS.
    let image = Image {
        segments: vec![GuestSegment {
            va: 0x8000,
            words: a.words(),
            w: false,
            x: true,
            shared: false,
        }],
        entry: 0x8000,
    };

    // 3. The OS loads it: address space, page tables, measured code page,
    //    a thread, finalise — the whole Table 1 construction sequence.
    let enclave = platform.load(&image).expect("construction succeeds");
    println!(
        "built enclave: addrspace page {}, thread page {}, measurement fixed",
        enclave.asp, enclave.threads[0]
    );

    // 4. Enter. The monitor switches worlds, the guest executes
    //    instruction-by-instruction in secure user mode, and Exit returns
    //    through the monitor with scrubbed registers.
    let before = platform.cycles();
    match platform.run(&enclave, 0, [6, 7, 100]) {
        EnclaveRun::Exited(v) => println!("enclave says: 6 * 7 + 100 = {v}"),
        other => panic!("unexpected result: {other:?}"),
    }
    println!(
        "crossing + execution took {} simulated cycles",
        platform.cycles() - before
    );

    // 5. Tear down: stop, remove every page (address space last).
    platform.destroy(&enclave).expect("teardown succeeds");
    println!("enclave destroyed; all pages returned to the OS");
}
