//! Local attestation between enclaves (paper §4): enclave A attests a
//! claim; enclave B verifies it through the monitor, over an untrusted
//! OS channel.
//!
//! ```sh
//! cargo run --example attestation
//! ```

use komodo::{measure_image, Platform, PlatformConfig};
use komodo_armv7::regs::Reg;
use komodo_armv7::Assembler;
use komodo_guest::{svc, GuestSegment, Image};
use komodo_os::EnclaveRun;

const SHARED_VA: u32 = 0x0010_0000;

fn shared_segment() -> GuestSegment {
    GuestSegment {
        va: SHARED_VA,
        words: vec![0; 1024],
        w: true,
        x: false,
        shared: true,
    }
}

/// Enclave A: loads an 8-word claim from its shared page, MACs it with
/// `Attest`, publishes the MAC after the claim.
fn prover_image() -> Image {
    let mut a = Assembler::new(0x8000);
    a.mov_imm32(Reg::R(12), SHARED_VA);
    for i in 0..8u16 {
        a.ldr_imm(Reg::R(1 + i as u8), Reg::R(12), i * 4);
    }
    svc::attest(&mut a);
    a.mov_imm32(Reg::R(12), SHARED_VA);
    for i in 0..8u16 {
        a.str_imm(Reg::R(1 + i as u8), Reg::R(12), 32 + i * 4);
    }
    svc::exit_imm(&mut a, 0);
    Image {
        segments: vec![
            GuestSegment {
                va: 0x8000,
                words: a.words(),
                w: false,
                x: true,
                shared: false,
            },
            shared_segment(),
        ],
        entry: 0x8000,
    }
}

/// Enclave B: reads (claim, measurement, mac) from its shared page and
/// checks the attestation with the three-step `Verify`.
fn verifier_image() -> Image {
    let mut a = Assembler::new(0x8000);
    let load8 = |a: &mut Assembler, off: u16| {
        a.mov_imm32(Reg::R(12), SHARED_VA);
        for i in 0..8u16 {
            a.ldr_imm(Reg::R(1 + i as u8), Reg::R(12), off + i * 4);
        }
    };
    load8(&mut a, 0); // data
    svc::verify_step0(&mut a);
    load8(&mut a, 32); // measure
    svc::verify_step1(&mut a);
    load8(&mut a, 64); // mac
    svc::verify_step2(&mut a);
    svc::exit(&mut a); // R1 = verdict.
    Image {
        segments: vec![
            GuestSegment {
                va: 0x8000,
                words: a.words(),
                w: false,
                x: true,
                shared: false,
            },
            shared_segment(),
        ],
        entry: 0x8000,
    }
}

fn main() {
    let mut p = Platform::with_config(PlatformConfig::default());
    let img_a = prover_image();
    let img_b = verifier_image();
    let a = p.load(&img_a).unwrap();
    let b = p.load(&img_b).unwrap();
    println!("prover and verifier enclaves loaded");

    // The prover attests a claim (e.g. a public-key fingerprint, §4's
    // bootstrap use case).
    let claim = [0xb0u32, 0x07, 0x57, 0x4a, 0x90, 0x11, 0x22, 0x33];
    p.write_shared(&a, 1, 0, &claim);
    assert_eq!(p.run(&a, 0, [0; 3]), EnclaveRun::Exited(0));
    let mac = p.read_shared(&a, 1, 8, 8);
    println!("prover attested its claim; MAC published to the OS");

    // The OS relays claim + *asserted* measurement + MAC to the verifier.
    // The measurement is computed off the image — the verifier decides
    // whom to trust by measurement, exactly like SGX's MRENCLAVE.
    let measurement_a = measure_image(&img_a, 1);
    let mut relay = Vec::new();
    relay.extend_from_slice(&claim);
    relay.extend_from_slice(&measurement_a.0);
    relay.extend_from_slice(&mac);
    p.write_shared(&b, 1, 0, &relay);
    assert_eq!(p.run(&b, 0, [0; 3]), EnclaveRun::Exited(1));
    println!(
        "verifier accepted: the claim was made by an enclave measuring {:08x}...",
        measurement_a.0[0]
    );

    // The OS cannot forge: tamper with the claim, the measurement, or the
    // MAC and verification fails.
    for (i, what) in [(0usize, "claim"), (8, "measurement"), (16, "MAC")] {
        let mut bad = relay.clone();
        bad[i] ^= 1;
        p.write_shared(&b, 1, 0, &bad);
        assert_eq!(p.run(&b, 0, [0; 3]), EnclaveRun::Exited(0));
        println!("tampered {what}: verifier rejected");
    }
}
