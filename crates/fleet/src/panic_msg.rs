//! Panic-payload rendering shared by every component that catches
//! panics on behalf of a caller (the fleet scheduler here, the NI
//! episode runner through it).

use std::any::Any;

/// Renders a caught panic payload the way `panic!` would display it.
///
/// `std::panic::catch_unwind` hands back an opaque `Box<dyn Any>`; in
/// practice the payload is the `&str` or `String` the `panic!` was
/// raised with, and anything else gets a stable placeholder so reports
/// stay deterministic.
pub fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn renders_str_string_and_other_payloads() {
        let p = catch_unwind(|| panic!("plain str")).unwrap_err();
        assert_eq!(panic_message(p), "plain str");
        let n = 7;
        let p = catch_unwind(AssertUnwindSafe(|| panic!("formatted {n}"))).unwrap_err();
        assert_eq!(panic_message(p), "formatted 7");
        let p = catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(panic_message(p), "non-string panic payload");
    }
}
