//! Sharded platform fleet: one scheduler for every multi-machine
//! workload in the workspace.
//!
//! The Komodo argument for scale-out is that platforms are independent
//! by construction — the monitor's guarantees hold per machine, so
//! throughput scales by *replication*, not by sharing. This crate is
//! the executable form of that argument: a fleet of worker shards, each
//! owning one simulated [`Platform`](komodo::Platform) (lazily booted,
//! recycled between jobs via the verified-bit-for-bit fast re-boot),
//! pulling jobs from a FIFO queue and folding per-shard counters into
//! one [`FleetMetrics`](komodo_trace::FleetMetrics).
//!
//! Three layers ride on it:
//!
//! - the NI/refinement suites' episode runner ([`run_indexed`]),
//! - the bench harness's shard-scaling experiment (`komodo-bench`),
//! - ad-hoc callers that want typed results from parallel platform
//!   jobs ([`run`] + [`Fleet::submit`] + [`JobHandle::join`]).
//!
//! Determinism contract (tested): job results depend only on the job's
//! index and derived seed, never on shard count or placement — a
//! 1-shard fleet and an 8-shard fleet produce bit-for-bit identical
//! per-job results and identical summed metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod busy;
mod indexed;
mod panic_msg;
mod sched;

pub use busy::thread_busy_ns;
pub use indexed::run_indexed;
pub use panic_msg::panic_message;
pub use sched::{
    run, Class, Fleet, FleetConfig, FleetRun, JobHandle, JobPanic, JobResult, Recycle, ShardCtx,
    ShardStats, SubmitError, ABANDONED,
};
