//! Per-thread busy-time accounting.
//!
//! The throughput experiments report shard scaling on two bases: wall
//! clock (what you feel) and CPU time actually consumed (what the
//! scheduler achieved per core — the honest basis on hosts with fewer
//! cores than shards, where wall-clock speedup is physically capped).
//! This module supplies the CPU side: on Linux,
//! `/proc/thread-self/schedstat` exposes the calling thread's on-CPU
//! runtime in nanoseconds; elsewhere we fall back to wall time measured
//! around task execution only (idle queue waits excluded), which the
//! scheduler accumulates itself and feeds through [`resolve`].

use std::time::Duration;

/// Nanoseconds the *calling thread* has spent on-CPU since it started,
/// or `None` when the platform does not expose it.
///
/// Reads the first field of `/proc/thread-self/schedstat` (documented in
/// `Documentation/scheduler/sched-stats.rst`: time spent on the cpu, in
/// nanoseconds). Blocked time — a fleet worker parked on the queue
/// condvar — does not accrue, which is exactly the "busy" semantics the
/// scaling report needs.
pub fn thread_busy_ns() -> Option<u64> {
    let s = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    s.split_whitespace().next()?.parse().ok()
}

/// Picks the busy figure for one worker thread's lifetime: the
/// schedstat delta when *both* probes succeeded, else the wall time the
/// worker measured around task execution. A probe can fail on either
/// end independently (non-Linux hosts never have it; sandboxes can
/// revoke `/proc` access mid-run), and mixing a real CPU reading with
/// a missing one would fabricate a delta — any `None` falls back to
/// wall.
pub fn resolve(before: Option<u64>, after: Option<u64>, wall: Duration) -> u64 {
    match (before, after) {
        (Some(b), Some(a)) => a.saturating_sub(b),
        _ => wall.as_nanos() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_time_accrues_with_work() {
        // Only meaningful where schedstat exists (Linux); elsewhere the
        // probe returns None and the scheduler uses its wall fallback.
        let Some(before) = thread_busy_ns() else {
            return;
        };
        // Spin long enough to be visible at scheduler granularity.
        let t0 = std::time::Instant::now();
        let mut x = 0u64;
        while t0.elapsed() < std::time::Duration::from_millis(30) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        std::hint::black_box(x);
        // Sandboxes can revoke /proc access between probes; a vanished
        // schedstat is a skip, not a failure.
        let Some(after) = thread_busy_ns() else {
            return;
        };
        assert!(after >= before, "busy time must be monotonic");
        assert!(
            after > before,
            "30ms of spinning must accrue busy time ({before} -> {after})"
        );
    }

    #[test]
    fn resolve_uses_schedstat_delta_when_both_probes_succeed() {
        let wall = Duration::from_nanos(999);
        assert_eq!(resolve(Some(100), Some(350), wall), 250);
        // A clock that somehow went backwards clamps to zero rather
        // than wrapping.
        assert_eq!(resolve(Some(350), Some(100), wall), 0);
    }

    #[test]
    fn resolve_falls_back_to_wall_when_any_probe_is_missing() {
        // The non-Linux path, and the mid-run /proc revocation path:
        // either missing probe means the delta cannot be trusted.
        let wall = Duration::from_micros(7);
        assert_eq!(resolve(None, None, wall), 7_000);
        assert_eq!(resolve(Some(5), None, wall), 7_000);
        assert_eq!(resolve(None, Some(5), wall), 7_000);
    }
}
