//! Per-thread busy-time accounting.
//!
//! The throughput experiments report shard scaling on two bases: wall
//! clock (what you feel) and CPU time actually consumed (what the
//! scheduler achieved per core — the honest basis on hosts with fewer
//! cores than shards, where wall-clock speedup is physically capped).
//! This module supplies the CPU side: on Linux,
//! `/proc/thread-self/schedstat` exposes the calling thread's on-CPU
//! runtime in nanoseconds; elsewhere we fall back to wall time measured
//! around task execution only (idle queue waits excluded), which the
//! scheduler accumulates itself.

/// Nanoseconds the *calling thread* has spent on-CPU since it started,
/// or `None` when the platform does not expose it.
///
/// Reads the first field of `/proc/thread-self/schedstat` (documented in
/// `Documentation/scheduler/sched-stats.rst`: time spent on the cpu, in
/// nanoseconds). Blocked time — a fleet worker parked on the queue
/// condvar — does not accrue, which is exactly the "busy" semantics the
/// scaling report needs.
pub fn thread_busy_ns() -> Option<u64> {
    let s = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    s.split_whitespace().next()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_time_accrues_with_work() {
        // Only meaningful where schedstat exists (Linux); elsewhere the
        // probe returns None and the scheduler uses its wall fallback.
        let Some(before) = thread_busy_ns() else {
            return;
        };
        // Spin long enough to be visible at scheduler granularity.
        let t0 = std::time::Instant::now();
        let mut x = 0u64;
        while t0.elapsed() < std::time::Duration::from_millis(30) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        std::hint::black_box(x);
        let after = thread_busy_ns().expect("schedstat stays readable");
        assert!(after >= before, "busy time must be monotonic");
        assert!(
            after > before,
            "30ms of spinning must accrue busy time ({before} -> {after})"
        );
    }
}
