//! The sharded scheduler: worker threads with pooled platforms pulling
//! jobs from per-worker sharded lanes with work stealing.
//!
//! Ownership story: each worker thread *owns* at most one [`Platform`]
//! (lazily booted on first use, recycled between jobs), so no platform
//! is ever shared — `Platform` only needs to be `Send`, never `Sync`.
//! Jobs are `FnOnce` closures handed a [`ShardCtx`]; results travel back
//! through typed [`JobHandle`]s. Per-shard counter snapshots fold into a
//! [`FleetMetrics`] when the run finishes.
//!
//! Queue topology: instead of one central mutex-guarded queue, every
//! shard owns a lock of its own holding three class lanes. Submissions
//! round-robin across shards; a worker drains its *own* lanes first
//! (highest class first, FIFO within a class), then *steals* from
//! siblings — scanning classes in priority order and, within a class,
//! taking the oldest (lowest-index) queued job across all sibling
//! shards. Class priority (control > interactive > batch) therefore
//! holds globally even though no single lock serializes the fleet: a
//! worker never dispatches a batch job while any shard holds queued
//! control work it could see. [`Fleet::try_submit_batch`] enqueues N
//! classed jobs under one pass that takes each involved shard lock once,
//! assigns all indices contiguously in item order, and wakes workers
//! once — the amortization that makes high-rate ingestion scale.
//!
//! Submission is classed ([`Class`]): control-plane jobs are always
//! dispatched before interactive ones, which precede batch work. The
//! queue may be bounded ([`FleetConfig::with_queue_capacity`]): a full
//! queue *rejects* data-plane submissions with [`SubmitError::Full`]
//! instead of growing without limit — the backpressure surface the
//! service node builds on. The bound is enforced by an atomic
//! reservation (never overshoots, never double-counts). Submitting
//! after the fleet shut its queue is a hard [`SubmitError::Closed`]
//! error in every build.
//!
//! Liveness contract: [`JobHandle::join`] always wakes. A job's result
//! slot is completed by the job itself (value or caught panic), or — if
//! the job never runs because its worker died mid-queue or the fleet
//! tore down around it — by the completion guard that every queued task
//! carries, which fills the slot with a [`JobPanic`] when the task is
//! dropped unexecuted. Shutdown is race-free across shards: `close`
//! publishes the flag and then passes every shard lock, so a worker only
//! exits after verifying *under all shard locks at once* that no
//! accepted job remains anywhere.
//!
//! Determinism contract: a job's *result* may depend only on its index
//! and derived seed ([`PlatformConfig::derive_seed`]), never on which
//! shard runs it or whether it was stolen — the scheduler guarantees the
//! platform a job sees is bit-for-bit a fresh boot with the job's seed,
//! whichever worker picks it up and whatever ran there before. Which
//! *shard* a job lands on is scheduling noise, so the per-shard metric
//! split varies run to run, but the summed totals are shard-count
//! independent. Batch submission assigns indices in item order while
//! holding every involved shard lock, so the request→index mapping is
//! identical at any shard count.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use komodo::{Platform, PlatformConfig};
use komodo_trace::{FleetMetrics, MetricsSnapshot};

use crate::busy;
use crate::panic_msg::panic_message;

/// Poison-tolerant lock: a panic on another thread while it held this
/// mutex must not cascade into opaque `PoisonError` panics here. Every
/// shared structure in this module keeps itself consistent across
/// unwinds — slot results are single-assignment, lane mutations
/// (push/pop) complete before the guard drops — so the data under a
/// poisoned lock is always safe to keep using; poisoning only tells us
/// a panic happened elsewhere, and the fleet already surfaces panics
/// through [`JobPanic`] / the worker join.
fn lock_unpoisoned<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Poison-tolerant condvar wait; see [`lock_unpoisoned`].
fn wait_unpoisoned<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(PoisonError::into_inner)
}

/// How a worker recycles its platform between jobs that use one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Recycle {
    /// Keep the platform and fast re-boot it in place for the next job
    /// ([`Platform::reset_with_seed`]): RAM allocations are reused, and
    /// the reset is verified bit-for-bit equal to a fresh boot. The
    /// default.
    Reboot,
    /// Drop the platform after every job and construct a fresh one for
    /// the next: the slow path, kept as the oracle the reboot path is
    /// checked against (both must yield identical job results).
    Rebuild,
}

/// Priority class of a submitted job. Workers always dispatch the
/// highest class with queued work; within a class, dispatch is FIFO in
/// submission order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Class {
    /// Control plane: session teardown, shutdown drains — must never
    /// starve behind data-plane work, and is exempt from the queue
    /// bound (rejecting teardown would leak the resources it frees).
    Control,
    /// Latency-sensitive data plane (attestation, session operations).
    Interactive,
    /// Throughput data plane (bulk enclave jobs); the default class.
    Batch,
}

impl Class {
    /// All classes, highest priority first (the worker scan order).
    pub const ALL: [Class; 3] = [Class::Control, Class::Interactive, Class::Batch];

    /// Lane index: 0 = highest priority.
    fn lane(self) -> usize {
        self as usize
    }

    /// Short lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Class::Control => "control",
            Class::Interactive => "interactive",
            Class::Batch => "batch",
        }
    }
}

/// Why a submission was refused. Rejection is synchronous and leaves no
/// trace in the fleet: no job index is consumed, nothing runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The fleet body returned (or the service began shutdown) and the
    /// queue no longer accepts work. A hard error in every build.
    Closed,
    /// The queue is at its configured capacity
    /// ([`FleetConfig::with_queue_capacity`]); the caller must shed the
    /// job or retry later. Control-class jobs are never rejected for
    /// capacity.
    Full {
        /// The configured bound that was hit.
        capacity: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Closed => write!(f, "submit on a closed fleet queue"),
            SubmitError::Full { capacity } => {
                write!(f, "fleet queue full (capacity {capacity})")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Fleet construction parameters.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Worker-thread (shard) count; clamped to at least 1.
    pub shards: usize,
    /// Base platform parameters; each job's platform is booted with the
    /// seed [`PlatformConfig::derive_seed`]`(job_index)` derived from
    /// this config's seed.
    pub platform: PlatformConfig,
    /// Platform recycling policy.
    pub recycle: Recycle,
    /// Maximum queued (submitted, not yet claimed) data-plane jobs;
    /// `None` = unbounded. When bounded, [`Fleet::try_submit`] returns
    /// [`SubmitError::Full`] instead of growing the backlog.
    pub queue_capacity: Option<usize>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            platform: PlatformConfig::default(),
            recycle: Recycle::Reboot,
            queue_capacity: None,
        }
    }
}

impl FleetConfig {
    /// Returns the config with `shards` worker threads.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Returns the config with the given base platform parameters.
    pub fn with_platform(mut self, platform: PlatformConfig) -> Self {
        self.platform = platform;
        self
    }

    /// Returns the config with the given recycling policy.
    pub fn with_recycle(mut self, recycle: Recycle) -> Self {
        self.recycle = recycle;
        self
    }

    /// Returns the config with the queue bounded to `capacity` queued
    /// data-plane jobs (backpressure; see [`SubmitError::Full`]).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }
}

/// A job that panicked; the payload, rendered as `panic!` would show it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobPanic {
    /// The rendered panic message.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// The message a joiner sees when its job was claimed or queued but the
/// worker (or the whole fleet) tore down before the job could run.
pub const ABANDONED: &str = "job abandoned: worker or fleet tore down before it ran";

/// What a job hands back: its value, or the panic that ended it.
pub type JobResult<T> = Result<T, JobPanic>;

struct Slot<T> {
    result: Mutex<Option<JobResult<T>>>,
    done: Condvar,
}

/// Shared result storage for one submitted batch: one allocation and one
/// mutex/condvar pair for N jobs, instead of one `Arc<Slot>` each. Every
/// joiner waits on the shared condvar and re-checks only its own cell;
/// completions are single-assignment per cell.
struct SlotBlock<T> {
    results: Mutex<Vec<Option<JobResult<T>>>>,
    done: Condvar,
}

/// Where one job's result lives: its own slot (single submission) or a
/// cell in a batch's shared [`SlotBlock`].
enum SlotRef<T> {
    Single(Arc<Slot<T>>),
    Block(Arc<SlotBlock<T>>, usize),
}

impl<T> SlotRef<T> {
    fn fill(&self, r: JobResult<T>) {
        match self {
            SlotRef::Single(s) => {
                *lock_unpoisoned(&s.result) = Some(r);
                s.done.notify_all();
            }
            SlotRef::Block(b, at) => {
                lock_unpoisoned(&b.results)[*at] = Some(r);
                b.done.notify_all();
            }
        }
    }
}

/// Completion guard: fills the job's result slot exactly once. The task
/// closure completes it with the job's outcome; if the task is instead
/// *dropped* unexecuted — its worker thread died between claiming it and
/// running it, or the fleet tore down with the job still queued — the
/// guard's `Drop` completes the slot with a [`JobPanic`] so the joiner
/// always wakes instead of blocking forever on a slot nobody will fill.
struct Completion<T> {
    slot: SlotRef<T>,
    filled: bool,
}

impl<T> Completion<T> {
    fn complete(mut self, r: JobResult<T>) {
        self.slot.fill(r);
        self.filled = true;
    }
}

impl<T> Drop for Completion<T> {
    fn drop(&mut self) {
        if !self.filled {
            self.slot.fill(Err(JobPanic {
                message: ABANDONED.to_string(),
            }));
        }
    }
}

/// Typed handle to one submitted job's eventual result.
pub struct JobHandle<T> {
    slot: SlotRef<T>,
    job: u64,
}

impl<T> JobHandle<T> {
    /// The job's fleet-wide index (submission order, starting at 0) —
    /// the same index its platform seed was derived from.
    pub fn index(&self) -> u64 {
        self.job
    }

    /// Blocks until the job finishes and returns its result. A job that
    /// panicked yields `Err(`[`JobPanic`]`)` instead of poisoning the
    /// fleet: every other job still runs to completion. A job whose
    /// worker died before running it yields `Err` with [`ABANDONED`] —
    /// the completion guard guarantees this join never hangs.
    pub fn join(self) -> JobResult<T> {
        match self.slot {
            SlotRef::Single(s) => {
                let mut r = lock_unpoisoned(&s.result);
                loop {
                    if let Some(v) = r.take() {
                        return v;
                    }
                    r = wait_unpoisoned(&s.done, r);
                }
            }
            SlotRef::Block(b, at) => {
                let mut r = lock_unpoisoned(&b.results);
                loop {
                    if let Some(v) = r[at].take() {
                        return v;
                    }
                    r = wait_unpoisoned(&b.done, r);
                }
            }
        }
    }
}

/// A queued task: type-erased job closure, paired with its index. The
/// closure owns a [`Completion`]; dropping it unexecuted resolves the
/// job as abandoned.
type Task<'env> = Box<dyn FnOnce(&mut ShardCtx<'_>) + Send + 'env>;

/// One shard's share of the queue: a FIFO lane per [`Class`], indexed
/// by `Class::lane()`, guarded by its own mutex.
struct ShardLanes<'env> {
    lanes: [VecDeque<(u64, Task<'env>)>; 3],
}

impl ShardLanes<'_> {
    fn is_empty(&self) -> bool {
        self.lanes.iter().all(VecDeque::is_empty)
    }
}

/// What one steal scan produced.
enum Steal<'env> {
    /// Claimed a job from a sibling shard.
    Got(u64, Task<'env>),
    /// Saw a candidate but lost the pop race; rescan from the top.
    Race,
    /// No sibling shard holds visible work.
    Empty,
}

/// The sharded work queue. Accounting lives in atomics; only the lanes
/// themselves sit behind (per-shard) locks:
///
/// - `pending` counts accepted-but-unclaimed jobs and doubles as the
///   capacity reservation counter: a data-plane submit reserves via CAS
///   *before* pushing, so a bounded queue never overshoots its bound
///   even under concurrent submitters.
/// - `submitted` hands out job indices; it is only advanced while the
///   target shard lock (or, for batches, every involved shard lock) is
///   held, so within any one lane indices are strictly increasing —
///   which is what makes oldest-first stealing well-defined by peeking
///   lane fronts.
/// - The sleep protocol (`sleeping` + the `sleep` mutex + `ready`)
///   never loses a wakeup: a worker advertises itself in `sleeping`
///   while holding `sleep` and re-checks for work before waiting; a
///   submitter bumps `pending` first, then (seeing a sleeper) passes
///   through `sleep` before notifying. In the total order of these
///   seq-cst operations, either the sleeper sees the new `pending` or
///   the submitter sees the sleeper — never neither.
struct Queue<'env> {
    shards: Vec<Mutex<ShardLanes<'env>>>,
    /// Accepted, not yet claimed by a worker (includes capacity
    /// reservations in flight).
    pending: AtomicUsize,
    /// Jobs accepted so far; the next job index.
    submitted: AtomicU64,
    closed: AtomicBool,
    /// Round-robin cursor for shard placement.
    rr: AtomicUsize,
    /// Companion mutex for the sleep protocol; holds no data.
    sleep: Mutex<()>,
    ready: Condvar,
    /// Workers currently inside (or entering) a condvar wait.
    sleeping: AtomicUsize,
    capacity: Option<usize>,
}

fn empty_lanes<'env>() -> ShardLanes<'env> {
    ShardLanes {
        lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
    }
}

impl<'env> Queue<'env> {
    fn new(shards: usize, capacity: Option<usize>) -> Self {
        Queue {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(empty_lanes()))
                .collect(),
            pending: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            rr: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            ready: Condvar::new(),
            sleeping: AtomicUsize::new(0),
            capacity,
        }
    }

    /// Reserves queue occupancy for up to `want` data-plane jobs,
    /// returning how many fit under the bound (all of them when
    /// unbounded). The reservation is taken before any push, so
    /// concurrent submitters can never overshoot a bounded queue; a
    /// reservation that is later abandoned (close raced the push) must
    /// be released with `unreserve`.
    fn reserve_data(&self, want: usize) -> usize {
        match self.capacity {
            None => {
                self.pending.fetch_add(want, SeqCst);
                want
            }
            Some(cap) => {
                let mut p = self.pending.load(SeqCst);
                loop {
                    let take = want.min(cap.saturating_sub(p));
                    if take == 0 {
                        return 0;
                    }
                    match self.pending.compare_exchange(p, p + take, SeqCst, SeqCst) {
                        Ok(_) => return take,
                        Err(cur) => p = cur,
                    }
                }
            }
        }
    }

    fn unreserve(&self, n: usize) {
        if n > 0 {
            self.pending.fetch_sub(n, SeqCst);
        }
    }

    /// Wakes workers for `n` newly queued jobs. The empty pass through
    /// the `sleep` mutex serializes with sleepers that advertised
    /// themselves but have not yet entered the wait — see the protocol
    /// note on [`Queue`].
    fn wake(&self, n: usize) {
        if n == 0 || self.sleeping.load(SeqCst) == 0 {
            return;
        }
        drop(lock_unpoisoned(&self.sleep));
        if n == 1 {
            self.ready.notify_one();
        } else {
            self.ready.notify_all();
        }
    }

    /// Enqueues a task, assigning and returning its job index. Refuses
    /// with a hard error in every build when the queue is closed, and
    /// with [`SubmitError::Full`] when a bounded queue is at capacity
    /// (control-class jobs are exempt from the bound). A refused task is
    /// dropped here, which is harmless: the completion guard inside the
    /// task resolves the (never-returned) handle as abandoned.
    fn push(&self, class: Class, task: Task<'env>) -> Result<u64, SubmitError> {
        if self.closed.load(SeqCst) {
            return Err(SubmitError::Closed);
        }
        let target = self.rr.fetch_add(1, SeqCst) % self.shards.len();
        let mut s = lock_unpoisoned(&self.shards[target]);
        // Re-check under the shard lock: `close` passes every shard
        // lock after setting the flag, so a push that got here before
        // the close is completed before workers decide to exit, and one
        // that got here after sees the flag.
        if self.closed.load(SeqCst) {
            return Err(SubmitError::Closed);
        }
        if class == Class::Control {
            self.pending.fetch_add(1, SeqCst);
        } else if self.reserve_data(1) == 0 {
            let cap = self.capacity.expect("reserve only fails when bounded");
            return Err(SubmitError::Full { capacity: cap });
        }
        let job = self.submitted.fetch_add(1, SeqCst);
        s.lanes[class.lane()].push_back((job, task));
        drop(s);
        self.wake(1);
        Ok(job)
    }

    /// Enqueues a batch of classed tasks under one pass: one capacity
    /// reservation, every involved shard lock taken once (in ascending
    /// order), indices assigned contiguously in item order, and one
    /// wake. Per-item outcomes mirror [`Queue::push`]: data-plane items
    /// beyond the capacity reservation are refused `Full` (the accepted
    /// ones are the earliest in item order), and a close that raced the
    /// batch refuses every item `Closed`.
    ///
    /// Index assignment is in item order regardless of shard count, so
    /// a batch's request→index (and therefore request→seed) mapping is
    /// identical at 1 shard and N shards — the determinism contract the
    /// service layer relies on.
    fn push_batch(&self, items: Vec<(Class, Task<'env>)>) -> Vec<Result<u64, SubmitError>> {
        if items.is_empty() {
            return Vec::new();
        }
        if self.closed.load(SeqCst) {
            return items.iter().map(|_| Err(SubmitError::Closed)).collect();
        }
        let n = self.shards.len();
        let data_total = items.iter().filter(|(c, _)| *c != Class::Control).count();
        let ctrl_total = items.len() - data_total;
        let data_take = self.reserve_data(data_total);
        if ctrl_total > 0 {
            self.pending.fetch_add(ctrl_total, SeqCst);
        }
        let accepted = ctrl_total + data_take;
        if accepted == 0 {
            let cap = self.capacity.expect("reserve only fails when bounded");
            return items
                .iter()
                .map(|_| Err(SubmitError::Full { capacity: cap }))
                .collect();
        }
        // Ascending-order multi-lock: same order as the worker exit
        // check and (trivially) `close`, so no deadlock. Holding every
        // shard lock while assigning the index block keeps per-lane
        // index order strict even against concurrent single pushes.
        let mut guards: Vec<_> = self.shards.iter().map(lock_unpoisoned).collect();
        if self.closed.load(SeqCst) {
            drop(guards);
            self.unreserve(accepted);
            return items.iter().map(|_| Err(SubmitError::Closed)).collect();
        }
        let base_shard = self.rr.fetch_add(accepted, SeqCst);
        let base_idx = self.submitted.fetch_add(accepted as u64, SeqCst);
        let cap = self.capacity.unwrap_or(usize::MAX);
        let mut out = Vec::with_capacity(items.len());
        let mut placed = 0usize;
        let mut data_used = 0usize;
        for (class, task) in items {
            let admit = if class == Class::Control {
                true
            } else if data_used < data_take {
                data_used += 1;
                true
            } else {
                false
            };
            if !admit {
                out.push(Err(SubmitError::Full { capacity: cap }));
                continue;
            }
            let job = base_idx + placed as u64;
            let shard = (base_shard + placed) % n;
            guards[shard].lanes[class.lane()].push_back((job, task));
            placed += 1;
            out.push(Ok(job));
        }
        debug_assert_eq!(placed, accepted);
        drop(guards);
        self.wake(placed);
        out
    }

    /// One steal scan on behalf of worker `me`: classes in priority
    /// order; within a class, the oldest (lowest-index) front across
    /// all sibling shards. Locks are taken one shard at a time, so a
    /// peeked candidate can be claimed by its owner (or another thief)
    /// before we pop it — that is reported as [`Steal::Race`] and the
    /// caller rescans.
    fn try_steal(&self, me: usize) -> Steal<'env> {
        for lane in 0..3 {
            let mut best: Option<(usize, u64)> = None;
            for (v, shard) in self.shards.iter().enumerate() {
                if v == me {
                    continue;
                }
                let s = lock_unpoisoned(shard);
                if let Some(front) = s.lanes[lane].front() {
                    let idx = front.0;
                    if best.is_none_or(|(_, b)| idx < b) {
                        best = Some((v, idx));
                    }
                }
            }
            if let Some((v, _)) = best {
                let mut s = lock_unpoisoned(&self.shards[v]);
                return match s.lanes[lane].pop_front() {
                    Some((job, task)) => {
                        self.pending.fetch_sub(1, SeqCst);
                        Steal::Got(job, task)
                    }
                    None => Steal::Race,
                };
            }
        }
        Steal::Empty
    }

    /// Claims the next task for worker `me` — own lanes first (highest
    /// class first, FIFO within a class), then stealing oldest-first
    /// from siblings — blocking while the queue is open and empty.
    /// After close, drains the backlog and then returns `None`; the
    /// all-shard emptiness check under every lock guarantees no
    /// accepted job is ever abandoned by an early exit. The returned
    /// flag is true when the job was stolen from a sibling shard.
    fn pop(&self, me: usize) -> Option<(u64, Task<'env>, bool)> {
        loop {
            {
                let mut s = lock_unpoisoned(&self.shards[me]);
                if let Some((job, task)) = s.lanes.iter_mut().find_map(VecDeque::pop_front) {
                    self.pending.fetch_sub(1, SeqCst);
                    return Some((job, task, false));
                }
            }
            if self.shards.len() > 1 && self.pending.load(SeqCst) > 0 {
                match self.try_steal(me) {
                    Steal::Got(job, task) => return Some((job, task, true)),
                    Steal::Race => continue,
                    Steal::Empty => {}
                }
            }
            if self.closed.load(SeqCst) {
                // Exit decision under every shard lock at once: any
                // in-flight push either completed (we see its task) or
                // will observe `closed` under its shard lock and refuse.
                let guards: Vec<_> = self.shards.iter().map(lock_unpoisoned).collect();
                if guards.iter().all(|g| g.is_empty()) {
                    return None;
                }
                drop(guards);
                continue;
            }
            if self.pending.load(SeqCst) > 0 {
                // A submitter holds a reservation it has not pushed yet
                // (or a racing claim emptied what we saw). Let it run,
                // then rescan.
                std::thread::yield_now();
                continue;
            }
            let guard = lock_unpoisoned(&self.sleep);
            self.sleeping.fetch_add(1, SeqCst);
            // Re-check before committing to the wait: a submitter that
            // missed us in `sleeping` must have already bumped
            // `pending` (or set `closed`) — seq-cst total order
            // guarantees we see it here.
            if self.pending.load(SeqCst) == 0 && !self.closed.load(SeqCst) {
                let guard = wait_unpoisoned(&self.ready, guard);
                self.sleeping.fetch_sub(1, SeqCst);
                drop(guard);
            } else {
                self.sleeping.fetch_sub(1, SeqCst);
                drop(guard);
            }
        }
    }

    fn close(&self) {
        self.closed.store(true, SeqCst);
        // Pass every shard lock: serializes with in-flight pushes that
        // read `closed == false` before the store (their push completes
        // before we pass their shard, and workers cannot conclude
        // emptiness without these locks either).
        for shard in &self.shards {
            drop(lock_unpoisoned(shard));
        }
        drop(lock_unpoisoned(&self.sleep));
        self.ready.notify_all();
    }

    fn submitted(&self) -> u64 {
        self.submitted.load(SeqCst)
    }

    fn queued_len(&self) -> usize {
        self.pending.load(SeqCst)
    }
}

/// One worker's pooled state, threaded through every job it runs.
struct ShardState {
    cfg: PlatformConfig,
    recycle: Recycle,
    platform: Option<Platform>,
    metrics: MetricsSnapshot,
    jobs: u64,
    own: u64,
    stolen: u64,
    boots: u64,
    resets: u64,
    busy_ns: u64,
}

/// The execution context a job receives: identity (shard, index, seed)
/// plus access to the shard's pooled platform and metrics fold.
pub struct ShardCtx<'a> {
    shard: usize,
    job: u64,
    seed: u64,
    used: bool,
    state: &'a mut ShardState,
}

impl ShardCtx<'_> {
    /// The shard (worker index) running this job. Identity only — job
    /// results must not depend on it.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// This job's fleet-wide index (submission order).
    pub fn job_index(&self) -> u64 {
        self.job
    }

    /// This job's derived platform seed:
    /// `fleet_config.platform.derive_seed(job_index)`. Depends only on
    /// the base seed and the index, never the shard.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shard's platform, guaranteed bit-for-bit fresh for this job:
    /// booted on first use (with this job's seed), recycled per the
    /// fleet's [`Recycle`] policy on reuse. The first call in a job pays
    /// the boot or reset; later calls return the same platform, carrying
    /// whatever state the job has built on it.
    pub fn platform(&mut self) -> &mut Platform {
        if !self.used {
            self.used = true;
            match self.state.platform.as_mut() {
                Some(p) => {
                    p.reset_with_seed(self.seed);
                    self.state.resets += 1;
                }
                None => {
                    let cfg = self.state.cfg.clone().with_seed(self.seed);
                    self.state.platform = Some(Platform::with_config(cfg));
                    self.state.boots += 1;
                }
            }
        }
        self.state
            .platform
            .as_mut()
            .expect("platform exists once used")
    }

    /// Folds an externally-measured counter snapshot into this shard's
    /// metrics — for jobs that drive their own machines instead of (or
    /// in addition to) the pooled platform. The pooled platform's own
    /// counters are folded automatically after the job.
    pub fn absorb(&mut self, snap: &MetricsSnapshot) {
        self.state.metrics.absorb(snap);
    }
}

/// Per-shard accounting for one fleet run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    /// Jobs this shard executed (`own + stolen`).
    pub jobs: u64,
    /// Jobs claimed from this worker's own lanes.
    pub own: u64,
    /// Jobs stolen from sibling shards' lanes.
    pub stolen: u64,
    /// Platforms constructed from scratch.
    pub boots: u64,
    /// Fast in-place re-boots of the pooled platform.
    pub resets: u64,
    /// Busy time in nanoseconds: thread CPU time where the host exposes
    /// it (Linux schedstat), else wall time spent executing jobs (queue
    /// idle excluded).
    pub busy_ns: u64,
}

/// Everything a fleet run produces: the body's return value plus the
/// folded metrics and per-shard accounting.
#[derive(Debug)]
pub struct FleetRun<R> {
    /// What the body closure returned.
    pub value: R,
    /// Per-shard counter snapshots and their aggregate.
    pub metrics: FleetMetrics,
    /// Per-shard job/boot/busy accounting.
    pub shards: Vec<ShardStats>,
    /// Jobs executed across all shards.
    pub jobs: u64,
    /// Wall-clock duration of the whole run (spawn to last join).
    pub wall: Duration,
}

impl<R> FleetRun<R> {
    /// Summed busy nanoseconds across shards — the denominator for
    /// CPU-normalized throughput.
    pub fn busy_ns(&self) -> u64 {
        self.shards.iter().map(|s| s.busy_ns).sum()
    }

    /// Jobs dispatched from the claiming worker's own lanes, summed.
    pub fn own_jobs(&self) -> u64 {
        self.shards.iter().map(|s| s.own).sum()
    }

    /// Jobs stolen across shards, summed.
    pub fn stolen_jobs(&self) -> u64 {
        self.shards.iter().map(|s| s.stolen).sum()
    }
}

/// The submission interface the body closure drives. Submit jobs, keep
/// the typed handles, join them (inside the body or after [`run`]
/// returns — all handles are resolved by then either way).
pub struct Fleet<'q, 'env> {
    queue: &'q Queue<'env>,
}

impl<'env> Fleet<'_, 'env> {
    /// Submits a job in `class`; returns the typed handle to its result,
    /// or the [`SubmitError`] if the queue refused it (closed, or a
    /// bounded queue at capacity). On rejection nothing ran, no job
    /// index was consumed, and there is no handle to leak.
    ///
    /// The closure runs exactly once on some shard, receives that
    /// shard's [`ShardCtx`], and may return any `Send` value. Panics
    /// inside the job are caught and surface as `Err(JobPanic)` from
    /// [`JobHandle::join`]; other jobs are unaffected.
    pub fn try_submit<T, F>(&self, class: Class, f: F) -> Result<JobHandle<T>, SubmitError>
    where
        T: Send + 'env,
        F: FnOnce(&mut ShardCtx<'_>) -> T + Send + 'env,
    {
        let slot = Arc::new(Slot {
            result: Mutex::new(None),
            done: Condvar::new(),
        });
        let completion = Completion {
            slot: SlotRef::Single(Arc::clone(&slot)),
            filled: false,
        };
        let job = self.queue.push(
            class,
            Box::new(move |ctx| {
                let result = catch_unwind(AssertUnwindSafe(|| f(ctx))).map_err(|p| JobPanic {
                    message: panic_message(p),
                });
                completion.complete(result);
            }),
        )?;
        Ok(JobHandle {
            slot: SlotRef::Single(slot),
            job,
        })
    }

    /// Submits a batch of classed jobs in one queue pass: one capacity
    /// reservation, one traversal of the shard locks, one result-block
    /// allocation shared by the whole batch, and one worker wake —
    /// the per-job constant costs of [`Fleet::try_submit`] amortized
    /// over N jobs. Returns one `Result` per job, in item order;
    /// accepted jobs get contiguous indices assigned in item order
    /// (identical at any shard count), rejected ones consumed no index.
    ///
    /// Admission matches `try_submit` per item: on a bounded queue the
    /// earliest data-plane items fill the remaining capacity and the
    /// rest are refused [`SubmitError::Full`]; control items are exempt
    /// from the bound; a close refuses the whole batch.
    pub fn try_submit_batch<T, F>(
        &self,
        jobs: Vec<(Class, F)>,
    ) -> Vec<Result<JobHandle<T>, SubmitError>>
    where
        T: Send + 'env,
        F: FnOnce(&mut ShardCtx<'_>) -> T + Send + 'env,
    {
        if jobs.is_empty() {
            return Vec::new();
        }
        let block = Arc::new(SlotBlock {
            results: Mutex::new((0..jobs.len()).map(|_| None).collect()),
            done: Condvar::new(),
        });
        let tasks: Vec<(Class, Task<'env>)> = jobs
            .into_iter()
            .enumerate()
            .map(|(at, (class, f))| {
                let completion = Completion {
                    slot: SlotRef::Block(Arc::clone(&block), at),
                    filled: false,
                };
                let task: Task<'env> = Box::new(move |ctx| {
                    let result = catch_unwind(AssertUnwindSafe(|| f(ctx))).map_err(|p| JobPanic {
                        message: panic_message(p),
                    });
                    completion.complete(result);
                });
                (class, task)
            })
            .collect();
        self.queue
            .push_batch(tasks)
            .into_iter()
            .enumerate()
            .map(|(at, r)| {
                r.map(|job| JobHandle {
                    slot: SlotRef::Block(Arc::clone(&block), at),
                    job,
                })
            })
            .collect()
    }

    /// [`Fleet::try_submit_batch`], panicking on any rejection — for
    /// harnesses that submit to an unbounded queue while the fleet body
    /// runs.
    ///
    /// # Panics
    ///
    /// Panics (in every build) if any item is refused.
    pub fn submit_batch<T, F>(&self, jobs: Vec<(Class, F)>) -> Vec<JobHandle<T>>
    where
        T: Send + 'env,
        F: FnOnce(&mut ShardCtx<'_>) -> T + Send + 'env,
    {
        self.try_submit_batch(jobs)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("fleet batch submit failed: {e}")))
            .collect()
    }

    /// [`Fleet::try_submit`] in `class`, panicking on rejection — for
    /// callers that configured an unbounded queue and submit only while
    /// the fleet body runs (both invariants hold for every in-workspace
    /// harness; the service node uses `try_submit`).
    ///
    /// # Panics
    ///
    /// Panics (in every build) if the queue is closed or full.
    pub fn submit_class<T, F>(&self, class: Class, f: F) -> JobHandle<T>
    where
        T: Send + 'env,
        F: FnOnce(&mut ShardCtx<'_>) -> T + Send + 'env,
    {
        self.try_submit(class, f)
            .unwrap_or_else(|e| panic!("fleet submit failed: {e}"))
    }

    /// [`Fleet::submit_class`] in [`Class::Batch`] — the compatibility
    /// surface predating priority classes.
    ///
    /// # Panics
    ///
    /// Panics (in every build) if the queue is closed or full.
    pub fn submit<T, F>(&self, f: F) -> JobHandle<T>
    where
        T: Send + 'env,
        F: FnOnce(&mut ShardCtx<'_>) -> T + Send + 'env,
    {
        self.submit_class(Class::Batch, f)
    }

    /// Jobs accepted so far.
    pub fn submitted(&self) -> u64 {
        self.queue.submitted()
    }

    /// Jobs currently queued (accepted but not yet claimed by a
    /// worker). A point-in-time reading — workers drain concurrently —
    /// useful for tests and load-shedding heuristics, not invariants.
    pub fn queued(&self) -> usize {
        self.queue.queued_len()
    }
}

fn worker(queue: &Queue<'_>, cfg: &FleetConfig, shard: usize) -> ShardState {
    let cpu0 = busy::thread_busy_ns();
    let mut wall_busy = Duration::ZERO;
    let mut state = ShardState {
        cfg: cfg.platform.clone(),
        recycle: cfg.recycle,
        platform: None,
        metrics: MetricsSnapshot::default(),
        jobs: 0,
        own: 0,
        stolen: 0,
        boots: 0,
        resets: 0,
        busy_ns: 0,
    };
    while let Some((job, task, stolen)) = queue.pop(shard) {
        let t0 = Instant::now();
        let seed = cfg.platform.derive_seed(job);
        let mut ctx = ShardCtx {
            shard,
            job,
            seed,
            used: false,
            state: &mut state,
        };
        task(&mut ctx);
        let used = ctx.used;
        state.jobs += 1;
        if stolen {
            state.stolen += 1;
        } else {
            state.own += 1;
        }
        if used {
            // The platform was fresh at job start, so its counters are
            // exactly this job's work: fold the full snapshot. Folding
            // per job (not per shard at shutdown) is what makes the
            // summed totals shard-count independent.
            let p = state.platform.as_ref().expect("used implies present");
            let snap = p.machine.metrics_snapshot();
            state.metrics.absorb(&snap);
            if state.recycle == Recycle::Rebuild {
                state.platform = None;
            }
        }
        wall_busy += t0.elapsed();
    }
    // Busy accounting: prefer real thread CPU time (idle condvar waits
    // don't accrue), fall back to wall time around task execution. The
    // kernel only folds the running slice into schedstat at scheduler
    // events, so yield first — otherwise each worker under-reports by
    // its tail since the last tick, inflating multi-shard efficiency.
    std::thread::yield_now();
    state.busy_ns = busy::resolve(cpu0, busy::thread_busy_ns(), wall_busy);
    state
}

/// Runs a fleet: spawns `cfg.shards` workers, hands the body a
/// [`Fleet`] to submit jobs through, and after the body returns waits
/// for every submitted job to finish before folding shard metrics and
/// returning.
///
/// The body's environment may be borrowed (`'env`): jobs can capture
/// references to caller state, like `std::thread::scope`. If the body
/// panics, all already-submitted jobs still run, workers shut down
/// cleanly, and the panic then resumes.
pub fn run<'env, R>(cfg: FleetConfig, body: impl FnOnce(&Fleet<'_, 'env>) -> R) -> FleetRun<R> {
    let shards = cfg.shards.max(1);
    let queue = Queue::new(shards, cfg.queue_capacity);
    let t0 = Instant::now();
    let (value, states) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..shards)
            .map(|i| {
                let q = &queue;
                let c = &cfg;
                s.spawn(move || worker(q, c, i))
            })
            .collect();
        let fleet = Fleet { queue: &queue };
        let value = catch_unwind(AssertUnwindSafe(|| body(&fleet)));
        queue.close();
        let states: Vec<ShardState> = handles
            .into_iter()
            .map(|h| h.join().expect("fleet worker panicked"))
            .collect();
        match value {
            Ok(v) => (v, states),
            Err(p) => resume_unwind(p),
        }
    });
    let wall = t0.elapsed();
    let metrics = FleetMetrics::from_shards(states.iter().map(|s| s.metrics).collect());
    let shard_stats: Vec<ShardStats> = states
        .iter()
        .map(|s| ShardStats {
            jobs: s.jobs,
            own: s.own,
            stolen: s.stolen,
            boots: s.boots,
            resets: s.resets,
            busy_ns: s.busy_ns,
        })
        .collect();
    let jobs = shard_stats.iter().map(|s| s.jobs).sum();
    FleetRun {
        value,
        metrics,
        shards: shard_stats,
        jobs,
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use komodo_guest::progs;
    use komodo_os::EnclaveRun;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::mpsc;

    fn small() -> PlatformConfig {
        PlatformConfig::default()
            .with_insecure_size(1 << 20)
            .with_npages(32)
    }

    /// Direct handle on a queue for white-box tests: a `Fleet` whose
    /// queue this module owns, no workers attached.
    fn bare_fleet<'q, 'env>(queue: &'q Queue<'env>) -> Fleet<'q, 'env> {
        Fleet { queue }
    }

    /// The submission surface must be shareable with worker threads.
    #[test]
    fn fleet_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<FleetConfig>();
        assert_send::<JobHandle<u64>>();
        assert_send::<ShardStats>();
        assert_send::<SubmitError>();
        assert_send::<Class>();
    }

    #[test]
    fn typed_results_round_trip() {
        let r = run(FleetConfig::default().with_shards(3), |fleet| {
            let a = fleet.submit(|ctx| ctx.job_index() * 10);
            let b = fleet.submit(|_| "text".to_string());
            let c = fleet.submit(|ctx| (ctx.job_index(), vec![1u8, 2, 3]));
            (a.join().unwrap(), b.join().unwrap(), c.join().unwrap())
        });
        assert_eq!(r.value, (0, "text".to_string(), (2, vec![1, 2, 3])));
        assert_eq!(r.jobs, 3);
    }

    #[test]
    fn every_job_runs_exactly_once_even_unjoined() {
        let hits: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        let slots = &hits;
        let r = run(FleetConfig::default().with_shards(4), |fleet| {
            for slot in slots.iter().take(64) {
                // Handles dropped: the run must still execute the jobs.
                let _ = fleet.submit(move |_| slot.fetch_add(1, Ordering::Relaxed));
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(r.jobs, 64);
        assert_eq!(r.shards.iter().map(|s| s.jobs).sum::<u64>(), 64);
        // Every dispatch was either an own-lane claim or a steal.
        assert_eq!(r.own_jobs() + r.stolen_jobs(), 64);
    }

    #[test]
    fn batch_submission_runs_every_job_with_contiguous_indices() {
        let r = run(FleetConfig::default().with_shards(4), |fleet| {
            let handles = fleet.submit_batch(
                (0..32)
                    .map(|_| (Class::Batch, |ctx: &mut ShardCtx<'_>| ctx.job_index() * 3))
                    .collect::<Vec<_>>(),
            );
            handles
                .into_iter()
                .enumerate()
                .map(|(i, h)| {
                    assert_eq!(h.index(), i as u64, "indices are item-ordered");
                    h.join().unwrap()
                })
                .collect::<Vec<_>>()
        });
        assert_eq!(r.value, (0..32).map(|i| i * 3).collect::<Vec<u64>>());
        assert_eq!(r.jobs, 32);
        assert_eq!(r.own_jobs() + r.stolen_jobs(), 32);
    }

    /// White-box: a bounded queue admits the earliest data-plane prefix
    /// of a batch, rejects the overflow with the bound, and exempts
    /// control items.
    #[test]
    fn batch_on_a_bounded_queue_admits_a_prefix() {
        let q: Queue<'_> = Queue::new(1, Some(2));
        let fleet = bare_fleet(&q);
        fn own_index(ctx: &mut ShardCtx<'_>) -> u64 {
            ctx.job_index()
        }
        type Job = fn(&mut ShardCtx<'_>) -> u64;
        let jobs: Vec<(Class, Job)> = vec![
            (Class::Batch, own_index),
            (Class::Batch, own_index),
            (Class::Batch, own_index),
            (Class::Batch, own_index),
            (Class::Control, own_index),
        ];
        let results = fleet.try_submit_batch::<u64, _>(jobs);
        let indices: Vec<_> = results
            .iter()
            .map(|r| r.as_ref().map(|h| h.index()).map_err(|e| *e))
            .collect();
        assert_eq!(
            indices,
            vec![
                Ok(0),
                Ok(1),
                Err(SubmitError::Full { capacity: 2 }),
                Err(SubmitError::Full { capacity: 2 }),
                Ok(2),
            ]
        );
        // Rejected items consumed no index; accepted ones are queued.
        assert_eq!(q.submitted(), 3);
        assert_eq!(q.queued_len(), 3);
    }

    /// White-box steal order: an idle worker whose own lanes are empty
    /// steals classes in priority order and, within a class, the oldest
    /// job across all sibling shards.
    #[test]
    fn steals_highest_class_then_oldest_first() {
        let q: Queue<'_> = Queue::new(3, None);
        let fleet = bare_fleet(&q);
        // Round-robin placement is deterministic from rr = 0:
        // j0→shard0, j1→shard1, j2→shard2, j3→shard0, j4→shard1, j5→shard2.
        fleet.try_submit::<u64, _>(Class::Batch, |_| 0).unwrap();
        fleet
            .try_submit::<u64, _>(Class::Interactive, |_| 1)
            .unwrap();
        fleet.try_submit::<u64, _>(Class::Batch, |_| 2).unwrap();
        fleet.try_submit::<u64, _>(Class::Batch, |_| 3).unwrap();
        fleet.try_submit::<u64, _>(Class::Control, |_| 4).unwrap();
        fleet.try_submit::<u64, _>(Class::Batch, |_| 5).unwrap();
        q.close();
        let mut order = Vec::new();
        while let Some((job, _task, stolen)) = q.pop(2) {
            order.push((job, stolen));
        }
        assert_eq!(
            order,
            vec![
                // Own shard (2) drains first: j2 then j5, both batch.
                (2, false),
                (5, false),
                // Then steal: control (j4), interactive (j1), then the
                // oldest batch across siblings (j0 before j3).
                (4, true),
                (1, true),
                (0, true),
                (3, true),
            ]
        );
    }

    #[test]
    fn panics_are_captured_per_job() {
        let r = run(FleetConfig::default().with_shards(2), |fleet| {
            let bad = fleet.submit(|_| -> u32 { panic!("job 0 exploded") });
            let good = fleet.submit(|_| 7u32);
            (bad.join(), good.join())
        });
        let (bad, good) = r.value;
        assert_eq!(bad.unwrap_err().message, "job 0 exploded");
        assert_eq!(good.unwrap(), 7);
        assert_eq!(r.jobs, 2, "a panicking job still counts as executed");
    }

    /// Regression (release-build hang): submitting after close used to
    /// be guarded only by a `debug_assert!`, so a release-build submit
    /// raced worker exit and its join could hang forever. It is now a
    /// hard [`SubmitError::Closed`] in every build.
    #[test]
    fn submit_after_close_is_a_hard_error() {
        let q: Queue<'_> = Queue::new(1, None);
        let fleet = bare_fleet(&q);
        let accepted = fleet.try_submit(Class::Batch, |_| 1u32);
        assert!(accepted.is_ok());
        q.close();
        let refused = fleet.try_submit(Class::Batch, |_| 2u32);
        assert_eq!(refused.err(), Some(SubmitError::Closed));
        // Control class gets no exemption from close (only from the
        // capacity bound).
        let refused = fleet.try_submit(Class::Control, |_| 3u32);
        assert_eq!(refused.err(), Some(SubmitError::Closed));
        // Batches are refused whole.
        fn five(_: &mut ShardCtx<'_>) -> u32 {
            5
        }
        type Job = fn(&mut ShardCtx<'_>) -> u32;
        let batch_jobs: Vec<(Class, Job)> = vec![(Class::Batch, five), (Class::Control, five)];
        let refused = fleet.try_submit_batch::<u32, _>(batch_jobs);
        assert!(refused
            .iter()
            .all(|r| matches!(r, Err(SubmitError::Closed))));
        // The panicking wrapper turns the same condition into an
        // unconditional panic, not a silent enqueue.
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            fleet.submit(|_| 4u32);
        }));
        assert!(
            panic_message(panicked.unwrap_err()).contains("closed"),
            "submit after close must fail loudly in every build"
        );
        // A refused submission consumed no job index.
        assert_eq!(fleet.submitted(), 1);
    }

    /// Regression (joiner hang): a job whose worker thread dies after
    /// claiming it but before running it used to leave its result slot
    /// empty forever. The completion guard now resolves it as abandoned.
    #[test]
    fn worker_death_mid_queue_wakes_joiners() {
        let q: Queue<'_> = Queue::new(1, None);
        let fleet = bare_fleet(&q);
        let claimed = fleet.try_submit(Class::Batch, |_| 1u32).unwrap();
        let queued = fleet.try_submit(Class::Batch, |_| 2u32).unwrap();
        q.close();
        std::thread::scope(|s| {
            // A "worker" that claims the first task and dies without
            // running it (panic outside any per-job catch_unwind — the
            // task closure is dropped during the unwind).
            let h = s.spawn(|| {
                let _task = q.pop(0).expect("task queued");
                panic!("worker killed mid-queue");
            });
            assert!(h.join().is_err(), "worker must have died");
        });
        let r = claimed.join();
        assert_eq!(r.unwrap_err().message, ABANDONED);
        // The still-queued task is abandoned when the queue drops.
        drop(q);
        assert_eq!(queued.join().unwrap_err().message, ABANDONED);
    }

    /// Regression (poison cascade): a panic while a shard lock was held
    /// used to turn every later `lock().unwrap()` into an opaque
    /// `PoisonError` panic on unrelated threads. Locking is now
    /// poison-tolerant.
    #[test]
    fn poisoned_locks_do_not_cascade() {
        let q: Queue<'_> = Queue::new(1, None);
        let fleet = bare_fleet(&q);
        // Poison the shard mutex: panic while holding it.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = q.shards[0].lock().unwrap();
            panic!("poison the queue");
        }));
        assert!(
            q.shards[0].is_poisoned(),
            "setup must have poisoned the lock"
        );
        // Submission and dispatch still work.
        let h = fleet.try_submit(Class::Batch, |_| 11u32).unwrap();
        q.close();
        let (job, task, stolen) = q.pop(0).expect("task dispatches through poison");
        assert_eq!(job, 0);
        assert!(!stolen);
        let cfg = FleetConfig::default();
        let mut state = ShardState {
            cfg: cfg.platform.clone(),
            recycle: cfg.recycle,
            platform: None,
            metrics: MetricsSnapshot::default(),
            jobs: 0,
            own: 0,
            stolen: 0,
            boots: 0,
            resets: 0,
            busy_ns: 0,
        };
        let mut ctx = ShardCtx {
            shard: 0,
            job,
            seed: 0,
            used: false,
            state: &mut state,
        };
        task(&mut ctx);
        assert_eq!(h.join().unwrap(), 11);
    }

    #[test]
    fn bounded_queue_rejects_when_full() {
        let cfg = FleetConfig::default().with_shards(1).with_queue_capacity(2);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let r = run(cfg, |fleet| {
            // Occupy the only worker so later submissions stay queued.
            let blocker = fleet.submit(move |_| {
                started_tx.send(()).unwrap();
                gate_rx.recv().unwrap();
            });
            started_rx.recv().unwrap();
            // Two queued jobs fill the bound…
            let a = fleet.try_submit(Class::Batch, |_| 1u32).unwrap();
            let b = fleet.try_submit(Class::Interactive, |_| 2u32).unwrap();
            // …the third data-plane job is rejected with the bound…
            let rejected = fleet.try_submit(Class::Batch, |_| 3u32);
            assert_eq!(rejected.err(), Some(SubmitError::Full { capacity: 2 }));
            // …but control-plane work is exempt from the bound.
            let ctrl = fleet.try_submit(Class::Control, |_| 4u32).unwrap();
            gate_tx.send(()).unwrap();
            blocker.join().unwrap();
            (a.join().unwrap(), b.join().unwrap(), ctrl.join().unwrap())
        });
        assert_eq!(r.value, (1, 2, 4));
        // blocker + a + b + ctrl ran; the rejected job never did.
        assert_eq!(r.jobs, 4);
    }

    #[test]
    fn classes_dispatch_in_priority_order() {
        let cfg = FleetConfig::default().with_shards(1);
        let order = Mutex::new(Vec::new());
        let log = &order;
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        run(cfg, |fleet| {
            let blocker = fleet.submit(move |_| {
                started_tx.send(()).unwrap();
                gate_rx.recv().unwrap();
            });
            started_rx.recv().unwrap();
            // Queued while the worker is busy: submission order is
            // batch, batch, interactive, control — dispatch order must
            // be control, interactive, batch, batch.
            for (class, tag) in [
                (Class::Batch, "b1"),
                (Class::Batch, "b2"),
                (Class::Interactive, "i"),
                (Class::Control, "c"),
            ] {
                fleet.submit_class(class, move |_| {
                    lock_unpoisoned(log).push(tag);
                });
            }
            gate_tx.send(()).unwrap();
            blocker.join().unwrap();
        });
        assert_eq!(*lock_unpoisoned(&order), vec!["c", "i", "b1", "b2"]);
    }

    #[test]
    fn seeds_are_index_derived() {
        let cfg = FleetConfig::default().with_shards(2);
        let base = cfg.platform.clone();
        let r = run(cfg, |fleet| {
            (0..8)
                .map(|_| fleet.submit(|ctx| (ctx.job_index(), ctx.seed())))
                .collect::<Vec<_>>()
        });
        for h in r.value {
            let (job, seed) = h.join().unwrap();
            assert_eq!(seed, base.derive_seed(job));
        }
    }

    #[test]
    fn platform_jobs_see_a_fresh_seeded_platform() {
        let cfg = FleetConfig::default().with_shards(2).with_platform(small());
        let r = run(cfg, |fleet| {
            (0..6)
                .map(|_| {
                    fleet.submit(|ctx| {
                        let seed = ctx.seed();
                        let job = ctx.job_index() as u32;
                        let p = ctx.platform();
                        assert_eq!(p.config().seed, seed);
                        // Fresh boot: full secure pool, boot-only cycles.
                        assert_eq!(p.os.secure_available(), 32);
                        let e = p.load(&progs::adder()).unwrap();
                        let run = p.run(&e, 0, [job, 1, 0]);
                        (run, p.cycles())
                    })
                })
                .collect::<Vec<_>>()
        });
        for (i, h) in r.value.into_iter().enumerate() {
            let (er, cycles) = h.join().unwrap();
            assert_eq!(er, EnclaveRun::Exited(i as u32 + 1));
            // Same workload on a scratch fresh platform: identical cycles.
            let mut fresh = Platform::with_config(
                small().with_seed(PlatformConfig::default().derive_seed(i as u64)),
            );
            let e = fresh.load(&progs::adder()).unwrap();
            fresh.run(&e, 0, [i as u32, 1, 0]);
            assert_eq!(cycles, fresh.cycles(), "job {i} diverged from fresh boot");
        }
    }

    #[test]
    fn reboot_recycling_boots_once_per_shard() {
        let cfg = FleetConfig::default().with_shards(1).with_platform(small());
        let r = run(cfg, |fleet| {
            for _ in 0..5 {
                fleet.submit(|ctx| {
                    ctx.platform();
                });
            }
        });
        assert_eq!(r.shards[0].boots, 1);
        assert_eq!(r.shards[0].resets, 4);
    }

    #[test]
    fn rebuild_recycling_boots_every_job() {
        let cfg = FleetConfig::default()
            .with_shards(1)
            .with_platform(small())
            .with_recycle(Recycle::Rebuild);
        let r = run(cfg, |fleet| {
            for _ in 0..3 {
                fleet.submit(|ctx| {
                    ctx.platform();
                });
            }
        });
        assert_eq!(r.shards[0].boots, 3);
        assert_eq!(r.shards[0].resets, 0);
    }

    #[test]
    fn platforms_boot_lazily() {
        let r = run(FleetConfig::default().with_shards(4), |fleet| {
            for i in 0..16u64 {
                fleet.submit(move |_| i);
            }
        });
        assert_eq!(r.shards.iter().map(|s| s.boots).sum::<u64>(), 0);
        assert_eq!(r.metrics.total(), MetricsSnapshot::default());
    }

    #[test]
    fn absorbed_metrics_fold_into_the_total() {
        let r = run(FleetConfig::default().with_shards(3), |fleet| {
            for i in 1..=4u64 {
                fleet.submit(move |ctx| {
                    ctx.absorb(&MetricsSnapshot {
                        cycles: i,
                        ..MetricsSnapshot::default()
                    });
                });
            }
        });
        assert_eq!(r.metrics.total().cycles, 1 + 2 + 3 + 4);
        assert_eq!(r.metrics.shard_count(), 3);
    }

    #[test]
    fn body_panic_still_runs_submitted_jobs_and_propagates() {
        let ran = AtomicU64::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run(FleetConfig::default().with_shards(2), |fleet| {
                for _ in 0..4 {
                    fleet.submit(|_| {
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
                panic!("body bailed");
            });
        }));
        assert_eq!(panic_message(caught.unwrap_err()), "body bailed");
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let r = run(FleetConfig::default().with_shards(0), |fleet| {
            fleet.submit(|ctx| ctx.shard()).join().unwrap()
        });
        assert_eq!(r.value, 0);
        assert_eq!(r.shards.len(), 1);
    }
}
