//! The sharded scheduler: worker threads with pooled platforms pulling
//! jobs from one priority-classed work queue.
//!
//! Ownership story: each worker thread *owns* at most one [`Platform`]
//! (lazily booted on first use, recycled between jobs), so no platform
//! is ever shared — `Platform` only needs to be `Send`, never `Sync`.
//! Jobs are `FnOnce` closures handed a [`ShardCtx`]; results travel back
//! through typed [`JobHandle`]s. Per-shard counter snapshots fold into a
//! [`FleetMetrics`] when the run finishes.
//!
//! Submission is classed ([`Class`]): control-plane jobs are always
//! dispatched before interactive ones, which precede batch work. The
//! queue may be bounded ([`FleetConfig::with_queue_capacity`]): a full
//! queue *rejects* data-plane submissions with [`SubmitError::Full`]
//! instead of growing without limit — the backpressure surface the
//! service node builds on. Submitting after the fleet shut its queue is
//! a hard [`SubmitError::Closed`] error in every build (it used to be a
//! `debug_assert!`, which in release builds let a late job race worker
//! exit and hang its joiner forever).
//!
//! Liveness contract: [`JobHandle::join`] always wakes. A job's result
//! slot is completed by the job itself (value or caught panic), or — if
//! the job never runs because its worker died mid-queue or the fleet
//! tore down around it — by the completion guard that every queued task
//! carries, which fills the slot with a [`JobPanic`] when the task is
//! dropped unexecuted.
//!
//! Determinism contract: a job's *result* may depend only on its index
//! and derived seed ([`PlatformConfig::derive_seed`]), never on which
//! shard runs it — the scheduler guarantees the platform a job sees is
//! bit-for-bit a fresh boot with the job's seed, whichever worker picks
//! it up and whatever ran there before. Which *shard* a job lands on is
//! scheduling noise, so the per-shard metric split varies run to run,
//! but the summed totals are shard-count independent.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use komodo::{Platform, PlatformConfig};
use komodo_trace::{FleetMetrics, MetricsSnapshot};

use crate::busy;
use crate::panic_msg::panic_message;

/// Poison-tolerant lock: a panic on another thread while it held this
/// mutex must not cascade into opaque `PoisonError` panics here. Every
/// shared structure in this module keeps itself consistent across
/// unwinds — slot results are single-assignment, queue state mutations
/// (push/pop/close/len) complete before the guard drops — so the data
/// under a poisoned lock is always safe to keep using; poisoning only
/// tells us a panic happened elsewhere, and the fleet already surfaces
/// panics through [`JobPanic`] / the worker join.
fn lock_unpoisoned<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Poison-tolerant condvar wait; see [`lock_unpoisoned`].
fn wait_unpoisoned<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(PoisonError::into_inner)
}

/// How a worker recycles its platform between jobs that use one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Recycle {
    /// Keep the platform and fast re-boot it in place for the next job
    /// ([`Platform::reset_with_seed`]): RAM allocations are reused, and
    /// the reset is verified bit-for-bit equal to a fresh boot. The
    /// default.
    Reboot,
    /// Drop the platform after every job and construct a fresh one for
    /// the next: the slow path, kept as the oracle the reboot path is
    /// checked against (both must yield identical job results).
    Rebuild,
}

/// Priority class of a submitted job. Workers always dispatch the
/// highest class with queued work; within a class, dispatch is FIFO in
/// submission order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Class {
    /// Control plane: session teardown, shutdown drains — must never
    /// starve behind data-plane work, and is exempt from the queue
    /// bound (rejecting teardown would leak the resources it frees).
    Control,
    /// Latency-sensitive data plane (attestation, session operations).
    Interactive,
    /// Throughput data plane (bulk enclave jobs); the default class.
    Batch,
}

impl Class {
    /// All classes, highest priority first (the worker scan order).
    pub const ALL: [Class; 3] = [Class::Control, Class::Interactive, Class::Batch];

    /// Lane index: 0 = highest priority.
    fn lane(self) -> usize {
        self as usize
    }

    /// Short lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Class::Control => "control",
            Class::Interactive => "interactive",
            Class::Batch => "batch",
        }
    }
}

/// Why a submission was refused. Rejection is synchronous and leaves no
/// trace in the fleet: no job index is consumed, nothing runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The fleet body returned (or the service began shutdown) and the
    /// queue no longer accepts work. A hard error in every build.
    Closed,
    /// The queue is at its configured capacity
    /// ([`FleetConfig::with_queue_capacity`]); the caller must shed the
    /// job or retry later. Control-class jobs are never rejected for
    /// capacity.
    Full {
        /// The configured bound that was hit.
        capacity: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Closed => write!(f, "submit on a closed fleet queue"),
            SubmitError::Full { capacity } => {
                write!(f, "fleet queue full (capacity {capacity})")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Fleet construction parameters.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Worker-thread (shard) count; clamped to at least 1.
    pub shards: usize,
    /// Base platform parameters; each job's platform is booted with the
    /// seed [`PlatformConfig::derive_seed`]`(job_index)` derived from
    /// this config's seed.
    pub platform: PlatformConfig,
    /// Platform recycling policy.
    pub recycle: Recycle,
    /// Maximum queued (submitted, not yet claimed) data-plane jobs;
    /// `None` = unbounded. When bounded, [`Fleet::try_submit`] returns
    /// [`SubmitError::Full`] instead of growing the backlog.
    pub queue_capacity: Option<usize>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            platform: PlatformConfig::default(),
            recycle: Recycle::Reboot,
            queue_capacity: None,
        }
    }
}

impl FleetConfig {
    /// Returns the config with `shards` worker threads.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Returns the config with the given base platform parameters.
    pub fn with_platform(mut self, platform: PlatformConfig) -> Self {
        self.platform = platform;
        self
    }

    /// Returns the config with the given recycling policy.
    pub fn with_recycle(mut self, recycle: Recycle) -> Self {
        self.recycle = recycle;
        self
    }

    /// Returns the config with the queue bounded to `capacity` queued
    /// data-plane jobs (backpressure; see [`SubmitError::Full`]).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }
}

/// A job that panicked; the payload, rendered as `panic!` would show it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobPanic {
    /// The rendered panic message.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// The message a joiner sees when its job was claimed or queued but the
/// worker (or the whole fleet) tore down before the job could run.
pub const ABANDONED: &str = "job abandoned: worker or fleet tore down before it ran";

/// What a job hands back: its value, or the panic that ended it.
pub type JobResult<T> = Result<T, JobPanic>;

struct Slot<T> {
    result: Mutex<Option<JobResult<T>>>,
    done: Condvar,
}

impl<T> Slot<T> {
    fn fill(&self, r: JobResult<T>) {
        *lock_unpoisoned(&self.result) = Some(r);
        self.done.notify_all();
    }
}

/// Completion guard: fills the job's result slot exactly once. The task
/// closure completes it with the job's outcome; if the task is instead
/// *dropped* unexecuted — its worker thread died between claiming it and
/// running it, or the fleet tore down with the job still queued — the
/// guard's `Drop` completes the slot with a [`JobPanic`] so the joiner
/// always wakes instead of blocking forever on a slot nobody will fill.
struct Completion<T> {
    slot: Arc<Slot<T>>,
    filled: bool,
}

impl<T> Completion<T> {
    fn complete(mut self, r: JobResult<T>) {
        self.slot.fill(r);
        self.filled = true;
    }
}

impl<T> Drop for Completion<T> {
    fn drop(&mut self) {
        if !self.filled {
            self.slot.fill(Err(JobPanic {
                message: ABANDONED.to_string(),
            }));
        }
    }
}

/// Typed handle to one submitted job's eventual result.
pub struct JobHandle<T> {
    slot: Arc<Slot<T>>,
    job: u64,
}

impl<T> JobHandle<T> {
    /// The job's fleet-wide index (submission order, starting at 0) —
    /// the same index its platform seed was derived from.
    pub fn index(&self) -> u64 {
        self.job
    }

    /// Blocks until the job finishes and returns its result. A job that
    /// panicked yields `Err(`[`JobPanic`]`)` instead of poisoning the
    /// fleet: every other job still runs to completion. A job whose
    /// worker died before running it yields `Err` with [`ABANDONED`] —
    /// the completion guard guarantees this join never hangs.
    pub fn join(self) -> JobResult<T> {
        let mut r = lock_unpoisoned(&self.slot.result);
        loop {
            if let Some(v) = r.take() {
                return v;
            }
            r = wait_unpoisoned(&self.slot.done, r);
        }
    }
}

/// A queued task: type-erased job closure, paired with its index. The
/// closure owns a [`Completion`]; dropping it unexecuted resolves the
/// job as abandoned.
type Task<'env> = Box<dyn FnOnce(&mut ShardCtx<'_>) + Send + 'env>;

struct QueueState<'env> {
    /// One FIFO lane per [`Class`], indexed by `Class::lane()`.
    lanes: [VecDeque<(u64, Task<'env>)>; 3],
    /// Jobs submitted so far (also the next job index).
    submitted: u64,
    closed: bool,
}

impl QueueState<'_> {
    fn queued(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }
}

/// Priority-classed work queue: within a class, jobs are handed to
/// workers in submission order (which job lands on which *shard* is
/// still scheduling-dependent); across classes, higher classes always
/// dispatch first.
struct Queue<'env> {
    state: Mutex<QueueState<'env>>,
    ready: Condvar,
    capacity: Option<usize>,
}

impl<'env> Queue<'env> {
    fn new(capacity: Option<usize>) -> Self {
        Queue {
            state: Mutex::new(QueueState {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                submitted: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues a task, assigning and returning its job index. Refuses
    /// with a hard error in every build when the queue is closed, and
    /// with [`SubmitError::Full`] when a bounded queue is at capacity
    /// (control-class jobs are exempt from the bound). A refused task is
    /// dropped here, which is harmless: its completion guard has not
    /// been created yet by the caller path that matters (see
    /// [`Fleet::try_submit`] — the guard is inside the task, so dropping
    /// it resolves the handle as abandoned, and `try_submit` never
    /// returns the handle on error anyway).
    fn push(&self, class: Class, task: Task<'env>) -> Result<u64, SubmitError> {
        let mut s = lock_unpoisoned(&self.state);
        if s.closed {
            return Err(SubmitError::Closed);
        }
        if class != Class::Control {
            if let Some(cap) = self.capacity {
                if s.queued() >= cap {
                    return Err(SubmitError::Full { capacity: cap });
                }
            }
        }
        let job = s.submitted;
        s.submitted += 1;
        s.lanes[class.lane()].push_back((job, task));
        drop(s);
        self.ready.notify_one();
        Ok(job)
    }

    /// Pops the next task — highest class first, FIFO within a class —
    /// blocking while the queue is open and empty. After close, drains
    /// the backlog and then returns `None` — every accepted job runs
    /// before its worker exits.
    fn pop(&self) -> Option<(u64, Task<'env>)> {
        let mut s = lock_unpoisoned(&self.state);
        loop {
            if let Some(t) = s.lanes.iter_mut().find_map(VecDeque::pop_front) {
                return Some(t);
            }
            if s.closed {
                return None;
            }
            s = wait_unpoisoned(&self.ready, s);
        }
    }

    fn close(&self) {
        lock_unpoisoned(&self.state).closed = true;
        self.ready.notify_all();
    }

    fn submitted(&self) -> u64 {
        lock_unpoisoned(&self.state).submitted
    }

    fn queued_len(&self) -> usize {
        lock_unpoisoned(&self.state).queued()
    }
}

/// One worker's pooled state, threaded through every job it runs.
struct ShardState {
    cfg: PlatformConfig,
    recycle: Recycle,
    platform: Option<Platform>,
    metrics: MetricsSnapshot,
    jobs: u64,
    boots: u64,
    resets: u64,
    busy_ns: u64,
}

/// The execution context a job receives: identity (shard, index, seed)
/// plus access to the shard's pooled platform and metrics fold.
pub struct ShardCtx<'a> {
    shard: usize,
    job: u64,
    seed: u64,
    used: bool,
    state: &'a mut ShardState,
}

impl ShardCtx<'_> {
    /// The shard (worker index) running this job. Identity only — job
    /// results must not depend on it.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// This job's fleet-wide index (submission order).
    pub fn job_index(&self) -> u64 {
        self.job
    }

    /// This job's derived platform seed:
    /// `fleet_config.platform.derive_seed(job_index)`. Depends only on
    /// the base seed and the index, never the shard.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shard's platform, guaranteed bit-for-bit fresh for this job:
    /// booted on first use (with this job's seed), recycled per the
    /// fleet's [`Recycle`] policy on reuse. The first call in a job pays
    /// the boot or reset; later calls return the same platform, carrying
    /// whatever state the job has built on it.
    pub fn platform(&mut self) -> &mut Platform {
        if !self.used {
            self.used = true;
            match self.state.platform.as_mut() {
                Some(p) => {
                    p.reset_with_seed(self.seed);
                    self.state.resets += 1;
                }
                None => {
                    let cfg = self.state.cfg.clone().with_seed(self.seed);
                    self.state.platform = Some(Platform::with_config(cfg));
                    self.state.boots += 1;
                }
            }
        }
        self.state
            .platform
            .as_mut()
            .expect("platform exists once used")
    }

    /// Folds an externally-measured counter snapshot into this shard's
    /// metrics — for jobs that drive their own machines instead of (or
    /// in addition to) the pooled platform. The pooled platform's own
    /// counters are folded automatically after the job.
    pub fn absorb(&mut self, snap: &MetricsSnapshot) {
        self.state.metrics.absorb(snap);
    }
}

/// Per-shard accounting for one fleet run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    /// Jobs this shard executed.
    pub jobs: u64,
    /// Platforms constructed from scratch.
    pub boots: u64,
    /// Fast in-place re-boots of the pooled platform.
    pub resets: u64,
    /// Busy time in nanoseconds: thread CPU time where the host exposes
    /// it (Linux schedstat), else wall time spent executing jobs (queue
    /// idle excluded).
    pub busy_ns: u64,
}

/// Everything a fleet run produces: the body's return value plus the
/// folded metrics and per-shard accounting.
#[derive(Debug)]
pub struct FleetRun<R> {
    /// What the body closure returned.
    pub value: R,
    /// Per-shard counter snapshots and their aggregate.
    pub metrics: FleetMetrics,
    /// Per-shard job/boot/busy accounting.
    pub shards: Vec<ShardStats>,
    /// Jobs executed across all shards.
    pub jobs: u64,
    /// Wall-clock duration of the whole run (spawn to last join).
    pub wall: Duration,
}

impl<R> FleetRun<R> {
    /// Summed busy nanoseconds across shards — the denominator for
    /// CPU-normalized throughput.
    pub fn busy_ns(&self) -> u64 {
        self.shards.iter().map(|s| s.busy_ns).sum()
    }
}

/// The submission interface the body closure drives. Submit jobs, keep
/// the typed handles, join them (inside the body or after [`run`]
/// returns — all handles are resolved by then either way).
pub struct Fleet<'q, 'env> {
    queue: &'q Queue<'env>,
}

impl<'env> Fleet<'_, 'env> {
    /// Submits a job in `class`; returns the typed handle to its result,
    /// or the [`SubmitError`] if the queue refused it (closed, or a
    /// bounded queue at capacity). On rejection nothing ran, no job
    /// index was consumed, and there is no handle to leak.
    ///
    /// The closure runs exactly once on some shard, receives that
    /// shard's [`ShardCtx`], and may return any `Send` value. Panics
    /// inside the job are caught and surface as `Err(JobPanic)` from
    /// [`JobHandle::join`]; other jobs are unaffected.
    pub fn try_submit<T, F>(&self, class: Class, f: F) -> Result<JobHandle<T>, SubmitError>
    where
        T: Send + 'env,
        F: FnOnce(&mut ShardCtx<'_>) -> T + Send + 'env,
    {
        let slot = Arc::new(Slot {
            result: Mutex::new(None),
            done: Condvar::new(),
        });
        let completion = Completion {
            slot: Arc::clone(&slot),
            filled: false,
        };
        let job = self.queue.push(
            class,
            Box::new(move |ctx| {
                let result = catch_unwind(AssertUnwindSafe(|| f(ctx))).map_err(|p| JobPanic {
                    message: panic_message(p),
                });
                completion.complete(result);
            }),
        )?;
        Ok(JobHandle { slot, job })
    }

    /// [`Fleet::try_submit`] in `class`, panicking on rejection — for
    /// callers that configured an unbounded queue and submit only while
    /// the fleet body runs (both invariants hold for every in-workspace
    /// harness; the service node uses `try_submit`).
    ///
    /// # Panics
    ///
    /// Panics (in every build) if the queue is closed or full.
    pub fn submit_class<T, F>(&self, class: Class, f: F) -> JobHandle<T>
    where
        T: Send + 'env,
        F: FnOnce(&mut ShardCtx<'_>) -> T + Send + 'env,
    {
        self.try_submit(class, f)
            .unwrap_or_else(|e| panic!("fleet submit failed: {e}"))
    }

    /// [`Fleet::submit_class`] in [`Class::Batch`] — the compatibility
    /// surface predating priority classes.
    ///
    /// # Panics
    ///
    /// Panics (in every build) if the queue is closed or full.
    pub fn submit<T, F>(&self, f: F) -> JobHandle<T>
    where
        T: Send + 'env,
        F: FnOnce(&mut ShardCtx<'_>) -> T + Send + 'env,
    {
        self.submit_class(Class::Batch, f)
    }

    /// Jobs accepted so far.
    pub fn submitted(&self) -> u64 {
        self.queue.submitted()
    }

    /// Jobs currently queued (accepted but not yet claimed by a
    /// worker). A point-in-time reading — workers drain concurrently —
    /// useful for tests and load-shedding heuristics, not invariants.
    pub fn queued(&self) -> usize {
        self.queue.queued_len()
    }
}

fn worker(queue: &Queue<'_>, cfg: &FleetConfig, shard: usize) -> ShardState {
    let cpu0 = busy::thread_busy_ns();
    let mut wall_busy = Duration::ZERO;
    let mut state = ShardState {
        cfg: cfg.platform.clone(),
        recycle: cfg.recycle,
        platform: None,
        metrics: MetricsSnapshot::default(),
        jobs: 0,
        boots: 0,
        resets: 0,
        busy_ns: 0,
    };
    while let Some((job, task)) = queue.pop() {
        let t0 = Instant::now();
        let seed = cfg.platform.derive_seed(job);
        let mut ctx = ShardCtx {
            shard,
            job,
            seed,
            used: false,
            state: &mut state,
        };
        task(&mut ctx);
        let used = ctx.used;
        state.jobs += 1;
        if used {
            // The platform was fresh at job start, so its counters are
            // exactly this job's work: fold the full snapshot. Folding
            // per job (not per shard at shutdown) is what makes the
            // summed totals shard-count independent.
            let p = state.platform.as_ref().expect("used implies present");
            let snap = p.machine.metrics_snapshot();
            state.metrics.absorb(&snap);
            if state.recycle == Recycle::Rebuild {
                state.platform = None;
            }
        }
        wall_busy += t0.elapsed();
    }
    // Busy accounting: prefer real thread CPU time (idle condvar waits
    // don't accrue), fall back to wall time around task execution. The
    // kernel only folds the running slice into schedstat at scheduler
    // events, so yield first — otherwise each worker under-reports by
    // its tail since the last tick, inflating multi-shard efficiency.
    std::thread::yield_now();
    state.busy_ns = busy::resolve(cpu0, busy::thread_busy_ns(), wall_busy);
    state
}

/// Runs a fleet: spawns `cfg.shards` workers, hands the body a
/// [`Fleet`] to submit jobs through, and after the body returns waits
/// for every submitted job to finish before folding shard metrics and
/// returning.
///
/// The body's environment may be borrowed (`'env`): jobs can capture
/// references to caller state, like `std::thread::scope`. If the body
/// panics, all already-submitted jobs still run, workers shut down
/// cleanly, and the panic then resumes.
pub fn run<'env, R>(cfg: FleetConfig, body: impl FnOnce(&Fleet<'_, 'env>) -> R) -> FleetRun<R> {
    let shards = cfg.shards.max(1);
    let queue = Queue::new(cfg.queue_capacity);
    let t0 = Instant::now();
    let (value, states) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..shards)
            .map(|i| {
                let q = &queue;
                let c = &cfg;
                s.spawn(move || worker(q, c, i))
            })
            .collect();
        let fleet = Fleet { queue: &queue };
        let value = catch_unwind(AssertUnwindSafe(|| body(&fleet)));
        queue.close();
        let states: Vec<ShardState> = handles
            .into_iter()
            .map(|h| h.join().expect("fleet worker panicked"))
            .collect();
        match value {
            Ok(v) => (v, states),
            Err(p) => resume_unwind(p),
        }
    });
    let wall = t0.elapsed();
    let metrics = FleetMetrics::from_shards(states.iter().map(|s| s.metrics).collect());
    let shard_stats: Vec<ShardStats> = states
        .iter()
        .map(|s| ShardStats {
            jobs: s.jobs,
            boots: s.boots,
            resets: s.resets,
            busy_ns: s.busy_ns,
        })
        .collect();
    let jobs = shard_stats.iter().map(|s| s.jobs).sum();
    FleetRun {
        value,
        metrics,
        shards: shard_stats,
        jobs,
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use komodo_guest::progs;
    use komodo_os::EnclaveRun;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::mpsc;

    fn small() -> PlatformConfig {
        PlatformConfig::default()
            .with_insecure_size(1 << 20)
            .with_npages(32)
    }

    /// Direct handle on a queue for white-box tests: a `Fleet` whose
    /// queue this module owns, no workers attached.
    fn bare_fleet<'q, 'env>(queue: &'q Queue<'env>) -> Fleet<'q, 'env> {
        Fleet { queue }
    }

    /// The submission surface must be shareable with worker threads.
    #[test]
    fn fleet_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<FleetConfig>();
        assert_send::<JobHandle<u64>>();
        assert_send::<ShardStats>();
        assert_send::<SubmitError>();
        assert_send::<Class>();
    }

    #[test]
    fn typed_results_round_trip() {
        let r = run(FleetConfig::default().with_shards(3), |fleet| {
            let a = fleet.submit(|ctx| ctx.job_index() * 10);
            let b = fleet.submit(|_| "text".to_string());
            let c = fleet.submit(|ctx| (ctx.job_index(), vec![1u8, 2, 3]));
            (a.join().unwrap(), b.join().unwrap(), c.join().unwrap())
        });
        assert_eq!(r.value, (0, "text".to_string(), (2, vec![1, 2, 3])));
        assert_eq!(r.jobs, 3);
    }

    #[test]
    fn every_job_runs_exactly_once_even_unjoined() {
        let hits: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        let slots = &hits;
        let r = run(FleetConfig::default().with_shards(4), |fleet| {
            for slot in slots.iter().take(64) {
                // Handles dropped: the run must still execute the jobs.
                let _ = fleet.submit(move |_| slot.fetch_add(1, Ordering::Relaxed));
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(r.jobs, 64);
        assert_eq!(r.shards.iter().map(|s| s.jobs).sum::<u64>(), 64);
    }

    #[test]
    fn panics_are_captured_per_job() {
        let r = run(FleetConfig::default().with_shards(2), |fleet| {
            let bad = fleet.submit(|_| -> u32 { panic!("job 0 exploded") });
            let good = fleet.submit(|_| 7u32);
            (bad.join(), good.join())
        });
        let (bad, good) = r.value;
        assert_eq!(bad.unwrap_err().message, "job 0 exploded");
        assert_eq!(good.unwrap(), 7);
        assert_eq!(r.jobs, 2, "a panicking job still counts as executed");
    }

    /// Regression (release-build hang): submitting after close used to
    /// be guarded only by a `debug_assert!`, so a release-build submit
    /// raced worker exit and its join could hang forever. It is now a
    /// hard [`SubmitError::Closed`] in every build.
    #[test]
    fn submit_after_close_is_a_hard_error() {
        let q: Queue<'_> = Queue::new(None);
        let fleet = bare_fleet(&q);
        let accepted = fleet.try_submit(Class::Batch, |_| 1u32);
        assert!(accepted.is_ok());
        q.close();
        let refused = fleet.try_submit(Class::Batch, |_| 2u32);
        assert_eq!(refused.err(), Some(SubmitError::Closed));
        // Control class gets no exemption from close (only from the
        // capacity bound).
        let refused = fleet.try_submit(Class::Control, |_| 3u32);
        assert_eq!(refused.err(), Some(SubmitError::Closed));
        // The panicking wrapper turns the same condition into an
        // unconditional panic, not a silent enqueue.
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            fleet.submit(|_| 4u32);
        }));
        assert!(
            panic_message(panicked.unwrap_err()).contains("closed"),
            "submit after close must fail loudly in every build"
        );
        // A refused submission consumed no job index.
        assert_eq!(fleet.submitted(), 1);
    }

    /// Regression (joiner hang): a job whose worker thread dies after
    /// claiming it but before running it used to leave its result slot
    /// empty forever. The completion guard now resolves it as abandoned.
    #[test]
    fn worker_death_mid_queue_wakes_joiners() {
        let q: Queue<'_> = Queue::new(None);
        let fleet = bare_fleet(&q);
        let claimed = fleet.try_submit(Class::Batch, |_| 1u32).unwrap();
        let queued = fleet.try_submit(Class::Batch, |_| 2u32).unwrap();
        std::thread::scope(|s| {
            // A "worker" that claims the first task and dies without
            // running it (panic outside any per-job catch_unwind — the
            // task closure is dropped during the unwind).
            let h = s.spawn(|| {
                let _task = q.pop().expect("task queued");
                panic!("worker killed mid-queue");
            });
            assert!(h.join().is_err(), "worker must have died");
        });
        let r = claimed.join();
        assert_eq!(r.unwrap_err().message, ABANDONED);
        // The still-queued task is abandoned when the queue drops.
        drop(q);
        assert_eq!(queued.join().unwrap_err().message, ABANDONED);
    }

    /// Regression (poison cascade): a panic while the queue mutex was
    /// held used to turn every later `lock().unwrap()` into an opaque
    /// `PoisonError` panic on unrelated threads. Locking is now
    /// poison-tolerant.
    #[test]
    fn poisoned_locks_do_not_cascade() {
        let q: Queue<'_> = Queue::new(None);
        let fleet = bare_fleet(&q);
        // Poison the queue mutex: panic while holding it.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = q.state.lock().unwrap();
            panic!("poison the queue");
        }));
        assert!(q.state.is_poisoned(), "setup must have poisoned the lock");
        // Submission and dispatch still work.
        let h = fleet.try_submit(Class::Batch, |_| 11u32).unwrap();
        let (job, task) = q.pop().expect("task dispatches through poison");
        assert_eq!(job, 0);
        let cfg = FleetConfig::default();
        let mut state = ShardState {
            cfg: cfg.platform.clone(),
            recycle: cfg.recycle,
            platform: None,
            metrics: MetricsSnapshot::default(),
            jobs: 0,
            boots: 0,
            resets: 0,
            busy_ns: 0,
        };
        let mut ctx = ShardCtx {
            shard: 0,
            job,
            seed: 0,
            used: false,
            state: &mut state,
        };
        task(&mut ctx);
        assert_eq!(h.join().unwrap(), 11);
    }

    #[test]
    fn bounded_queue_rejects_when_full() {
        let cfg = FleetConfig::default().with_shards(1).with_queue_capacity(2);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let r = run(cfg, |fleet| {
            // Occupy the only worker so later submissions stay queued.
            let blocker = fleet.submit(move |_| {
                started_tx.send(()).unwrap();
                gate_rx.recv().unwrap();
            });
            started_rx.recv().unwrap();
            // Two queued jobs fill the bound…
            let a = fleet.try_submit(Class::Batch, |_| 1u32).unwrap();
            let b = fleet.try_submit(Class::Interactive, |_| 2u32).unwrap();
            // …the third data-plane job is rejected with the bound…
            let rejected = fleet.try_submit(Class::Batch, |_| 3u32);
            assert_eq!(rejected.err(), Some(SubmitError::Full { capacity: 2 }));
            // …but control-plane work is exempt from the bound.
            let ctrl = fleet.try_submit(Class::Control, |_| 4u32).unwrap();
            gate_tx.send(()).unwrap();
            blocker.join().unwrap();
            (a.join().unwrap(), b.join().unwrap(), ctrl.join().unwrap())
        });
        assert_eq!(r.value, (1, 2, 4));
        // blocker + a + b + ctrl ran; the rejected job never did.
        assert_eq!(r.jobs, 4);
    }

    #[test]
    fn classes_dispatch_in_priority_order() {
        let cfg = FleetConfig::default().with_shards(1);
        let order = Mutex::new(Vec::new());
        let log = &order;
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        run(cfg, |fleet| {
            let blocker = fleet.submit(move |_| {
                started_tx.send(()).unwrap();
                gate_rx.recv().unwrap();
            });
            started_rx.recv().unwrap();
            // Queued while the worker is busy: submission order is
            // batch, batch, interactive, control — dispatch order must
            // be control, interactive, batch, batch.
            for (class, tag) in [
                (Class::Batch, "b1"),
                (Class::Batch, "b2"),
                (Class::Interactive, "i"),
                (Class::Control, "c"),
            ] {
                fleet.submit_class(class, move |_| {
                    lock_unpoisoned(log).push(tag);
                });
            }
            gate_tx.send(()).unwrap();
            blocker.join().unwrap();
        });
        assert_eq!(*lock_unpoisoned(&order), vec!["c", "i", "b1", "b2"]);
    }

    #[test]
    fn seeds_are_index_derived() {
        let cfg = FleetConfig::default().with_shards(2);
        let base = cfg.platform.clone();
        let r = run(cfg, |fleet| {
            (0..8)
                .map(|_| fleet.submit(|ctx| (ctx.job_index(), ctx.seed())))
                .collect::<Vec<_>>()
        });
        for h in r.value {
            let (job, seed) = h.join().unwrap();
            assert_eq!(seed, base.derive_seed(job));
        }
    }

    #[test]
    fn platform_jobs_see_a_fresh_seeded_platform() {
        let cfg = FleetConfig::default().with_shards(2).with_platform(small());
        let r = run(cfg, |fleet| {
            (0..6)
                .map(|_| {
                    fleet.submit(|ctx| {
                        let seed = ctx.seed();
                        let job = ctx.job_index() as u32;
                        let p = ctx.platform();
                        assert_eq!(p.config().seed, seed);
                        // Fresh boot: full secure pool, boot-only cycles.
                        assert_eq!(p.os.secure_available(), 32);
                        let e = p.load(&progs::adder()).unwrap();
                        let run = p.run(&e, 0, [job, 1, 0]);
                        (run, p.cycles())
                    })
                })
                .collect::<Vec<_>>()
        });
        for (i, h) in r.value.into_iter().enumerate() {
            let (er, cycles) = h.join().unwrap();
            assert_eq!(er, EnclaveRun::Exited(i as u32 + 1));
            // Same workload on a scratch fresh platform: identical cycles.
            let mut fresh = Platform::with_config(
                small().with_seed(PlatformConfig::default().derive_seed(i as u64)),
            );
            let e = fresh.load(&progs::adder()).unwrap();
            fresh.run(&e, 0, [i as u32, 1, 0]);
            assert_eq!(cycles, fresh.cycles(), "job {i} diverged from fresh boot");
        }
    }

    #[test]
    fn reboot_recycling_boots_once_per_shard() {
        let cfg = FleetConfig::default().with_shards(1).with_platform(small());
        let r = run(cfg, |fleet| {
            for _ in 0..5 {
                fleet.submit(|ctx| {
                    ctx.platform();
                });
            }
        });
        assert_eq!(r.shards[0].boots, 1);
        assert_eq!(r.shards[0].resets, 4);
    }

    #[test]
    fn rebuild_recycling_boots_every_job() {
        let cfg = FleetConfig::default()
            .with_shards(1)
            .with_platform(small())
            .with_recycle(Recycle::Rebuild);
        let r = run(cfg, |fleet| {
            for _ in 0..3 {
                fleet.submit(|ctx| {
                    ctx.platform();
                });
            }
        });
        assert_eq!(r.shards[0].boots, 3);
        assert_eq!(r.shards[0].resets, 0);
    }

    #[test]
    fn platforms_boot_lazily() {
        let r = run(FleetConfig::default().with_shards(4), |fleet| {
            for i in 0..16u64 {
                fleet.submit(move |_| i);
            }
        });
        assert_eq!(r.shards.iter().map(|s| s.boots).sum::<u64>(), 0);
        assert_eq!(r.metrics.total(), MetricsSnapshot::default());
    }

    #[test]
    fn absorbed_metrics_fold_into_the_total() {
        let r = run(FleetConfig::default().with_shards(3), |fleet| {
            for i in 1..=4u64 {
                fleet.submit(move |ctx| {
                    ctx.absorb(&MetricsSnapshot {
                        cycles: i,
                        ..MetricsSnapshot::default()
                    });
                });
            }
        });
        assert_eq!(r.metrics.total().cycles, 1 + 2 + 3 + 4);
        assert_eq!(r.metrics.shard_count(), 3);
    }

    #[test]
    fn body_panic_still_runs_submitted_jobs_and_propagates() {
        let ran = AtomicU64::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run(FleetConfig::default().with_shards(2), |fleet| {
                for _ in 0..4 {
                    fleet.submit(|_| {
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
                panic!("body bailed");
            });
        }));
        assert_eq!(panic_message(caught.unwrap_err()), "body bailed");
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let r = run(FleetConfig::default().with_shards(0), |fleet| {
            fleet.submit(|ctx| ctx.shard()).join().unwrap()
        });
        assert_eq!(r.value, 0);
        assert_eq!(r.shards.len(), 1);
    }
}
