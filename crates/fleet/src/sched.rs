//! The sharded scheduler: worker threads with pooled platforms pulling
//! jobs from one FIFO queue.
//!
//! Ownership story: each worker thread *owns* at most one [`Platform`]
//! (lazily booted on first use, recycled between jobs), so no platform
//! is ever shared — `Platform` only needs to be `Send`, never `Sync`.
//! Jobs are `FnOnce` closures handed a [`ShardCtx`]; results travel back
//! through typed [`JobHandle`]s. Per-shard counter snapshots fold into a
//! [`FleetMetrics`] when the run finishes.
//!
//! Determinism contract: a job's *result* may depend only on its index
//! and derived seed ([`PlatformConfig::derive_seed`]), never on which
//! shard runs it — the scheduler guarantees the platform a job sees is
//! bit-for-bit a fresh boot with the job's seed, whichever worker picks
//! it up and whatever ran there before. Which *shard* a job lands on is
//! scheduling noise, so the per-shard metric split varies run to run,
//! but the summed totals are shard-count independent.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use komodo::{Platform, PlatformConfig};
use komodo_trace::{FleetMetrics, MetricsSnapshot};

use crate::busy;
use crate::panic_msg::panic_message;

/// How a worker recycles its platform between jobs that use one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Recycle {
    /// Keep the platform and fast re-boot it in place for the next job
    /// ([`Platform::reset_with_seed`]): RAM allocations are reused, and
    /// the reset is verified bit-for-bit equal to a fresh boot. The
    /// default.
    Reboot,
    /// Drop the platform after every job and construct a fresh one for
    /// the next: the slow path, kept as the oracle the reboot path is
    /// checked against (both must yield identical job results).
    Rebuild,
}

/// Fleet construction parameters.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Worker-thread (shard) count; clamped to at least 1.
    pub shards: usize,
    /// Base platform parameters; each job's platform is booted with the
    /// seed [`PlatformConfig::derive_seed`]`(job_index)` derived from
    /// this config's seed.
    pub platform: PlatformConfig,
    /// Platform recycling policy.
    pub recycle: Recycle,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            platform: PlatformConfig::default(),
            recycle: Recycle::Reboot,
        }
    }
}

impl FleetConfig {
    /// Returns the config with `shards` worker threads.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Returns the config with the given base platform parameters.
    pub fn with_platform(mut self, platform: PlatformConfig) -> Self {
        self.platform = platform;
        self
    }

    /// Returns the config with the given recycling policy.
    pub fn with_recycle(mut self, recycle: Recycle) -> Self {
        self.recycle = recycle;
        self
    }
}

/// A job that panicked; the payload, rendered as `panic!` would show it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobPanic {
    /// The rendered panic message.
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// What a job hands back: its value, or the panic that ended it.
pub type JobResult<T> = Result<T, JobPanic>;

struct Slot<T> {
    result: Mutex<Option<JobResult<T>>>,
    done: Condvar,
}

/// Typed handle to one submitted job's eventual result.
pub struct JobHandle<T> {
    slot: Arc<Slot<T>>,
    job: u64,
}

impl<T> JobHandle<T> {
    /// The job's fleet-wide index (submission order, starting at 0) —
    /// the same index its platform seed was derived from.
    pub fn index(&self) -> u64 {
        self.job
    }

    /// Blocks until the job finishes and returns its result. A job that
    /// panicked yields `Err(`[`JobPanic`]`)` instead of poisoning the
    /// fleet: every other job still runs to completion.
    pub fn join(self) -> JobResult<T> {
        let mut r = self.slot.result.lock().unwrap();
        loop {
            if let Some(v) = r.take() {
                return v;
            }
            r = self.slot.done.wait(r).unwrap();
        }
    }
}

/// A queued task: type-erased job closure, paired with its index.
type Task<'env> = Box<dyn FnOnce(&mut ShardCtx<'_>) + Send + 'env>;

struct QueueState<'env> {
    tasks: VecDeque<(u64, Task<'env>)>,
    closed: bool,
}

/// FIFO work queue: jobs are handed to workers in submission order
/// (which job lands on which *shard* is still scheduling-dependent).
struct Queue<'env> {
    state: Mutex<QueueState<'env>>,
    ready: Condvar,
}

impl<'env> Queue<'env> {
    fn new() -> Self {
        Queue {
            state: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, job: u64, task: Task<'env>) {
        let mut s = self.state.lock().unwrap();
        debug_assert!(!s.closed, "submit after the fleet body returned");
        s.tasks.push_back((job, task));
        drop(s);
        self.ready.notify_one();
    }

    /// Pops the next task, blocking while the queue is open and empty.
    /// After close, drains the backlog and then returns `None` — every
    /// submitted job runs before its worker exits.
    fn pop(&self) -> Option<(u64, Task<'env>)> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(t) = s.tasks.pop_front() {
                return Some(t);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).unwrap();
        }
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

/// One worker's pooled state, threaded through every job it runs.
struct ShardState {
    cfg: PlatformConfig,
    recycle: Recycle,
    platform: Option<Platform>,
    metrics: MetricsSnapshot,
    jobs: u64,
    boots: u64,
    resets: u64,
    busy_ns: u64,
}

/// The execution context a job receives: identity (shard, index, seed)
/// plus access to the shard's pooled platform and metrics fold.
pub struct ShardCtx<'a> {
    shard: usize,
    job: u64,
    seed: u64,
    used: bool,
    state: &'a mut ShardState,
}

impl ShardCtx<'_> {
    /// The shard (worker index) running this job. Identity only — job
    /// results must not depend on it.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// This job's fleet-wide index (submission order).
    pub fn job_index(&self) -> u64 {
        self.job
    }

    /// This job's derived platform seed:
    /// `fleet_config.platform.derive_seed(job_index)`. Depends only on
    /// the base seed and the index, never the shard.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shard's platform, guaranteed bit-for-bit fresh for this job:
    /// booted on first use (with this job's seed), recycled per the
    /// fleet's [`Recycle`] policy on reuse. The first call in a job pays
    /// the boot or reset; later calls return the same platform, carrying
    /// whatever state the job has built on it.
    pub fn platform(&mut self) -> &mut Platform {
        if !self.used {
            self.used = true;
            match self.state.platform.as_mut() {
                Some(p) => {
                    p.reset_with_seed(self.seed);
                    self.state.resets += 1;
                }
                None => {
                    let cfg = self.state.cfg.clone().with_seed(self.seed);
                    self.state.platform = Some(Platform::with_config(cfg));
                    self.state.boots += 1;
                }
            }
        }
        self.state
            .platform
            .as_mut()
            .expect("platform exists once used")
    }

    /// Folds an externally-measured counter snapshot into this shard's
    /// metrics — for jobs that drive their own machines instead of (or
    /// in addition to) the pooled platform. The pooled platform's own
    /// counters are folded automatically after the job.
    pub fn absorb(&mut self, snap: &MetricsSnapshot) {
        self.state.metrics.absorb(snap);
    }
}

/// Per-shard accounting for one fleet run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    /// Jobs this shard executed.
    pub jobs: u64,
    /// Platforms constructed from scratch.
    pub boots: u64,
    /// Fast in-place re-boots of the pooled platform.
    pub resets: u64,
    /// Busy time in nanoseconds: thread CPU time where the host exposes
    /// it (Linux schedstat), else wall time spent executing jobs (queue
    /// idle excluded).
    pub busy_ns: u64,
}

/// Everything a fleet run produces: the body's return value plus the
/// folded metrics and per-shard accounting.
#[derive(Debug)]
pub struct FleetRun<R> {
    /// What the body closure returned.
    pub value: R,
    /// Per-shard counter snapshots and their aggregate.
    pub metrics: FleetMetrics,
    /// Per-shard job/boot/busy accounting.
    pub shards: Vec<ShardStats>,
    /// Jobs executed across all shards.
    pub jobs: u64,
    /// Wall-clock duration of the whole run (spawn to last join).
    pub wall: Duration,
}

impl<R> FleetRun<R> {
    /// Summed busy nanoseconds across shards — the denominator for
    /// CPU-normalized throughput.
    pub fn busy_ns(&self) -> u64 {
        self.shards.iter().map(|s| s.busy_ns).sum()
    }
}

/// The submission interface the body closure drives. Submit jobs, keep
/// the typed handles, join them (inside the body or after [`run`]
/// returns — all handles are resolved by then either way).
pub struct Fleet<'q, 'env> {
    queue: &'q Queue<'env>,
    next_job: AtomicU64,
}

impl<'env> Fleet<'_, 'env> {
    /// Submits a job; returns the typed handle to its result.
    ///
    /// The closure runs exactly once on some shard, receives that
    /// shard's [`ShardCtx`], and may return any `Send` value. Panics
    /// inside the job are caught and surface as `Err(JobPanic)` from
    /// [`JobHandle::join`]; other jobs are unaffected.
    pub fn submit<T, F>(&self, f: F) -> JobHandle<T>
    where
        T: Send + 'env,
        F: FnOnce(&mut ShardCtx<'_>) -> T + Send + 'env,
    {
        let job = self.next_job.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(Slot {
            result: Mutex::new(None),
            done: Condvar::new(),
        });
        let answer = Arc::clone(&slot);
        self.queue.push(
            job,
            Box::new(move |ctx| {
                let result = catch_unwind(AssertUnwindSafe(|| f(ctx))).map_err(|p| JobPanic {
                    message: panic_message(p),
                });
                *answer.result.lock().unwrap() = Some(result);
                answer.done.notify_all();
            }),
        );
        JobHandle { slot, job }
    }

    /// Jobs submitted so far.
    pub fn submitted(&self) -> u64 {
        self.next_job.load(Ordering::Relaxed)
    }
}

fn worker(queue: &Queue<'_>, cfg: &FleetConfig, shard: usize) -> ShardState {
    let cpu0 = busy::thread_busy_ns();
    let mut wall_busy = Duration::ZERO;
    let mut state = ShardState {
        cfg: cfg.platform.clone(),
        recycle: cfg.recycle,
        platform: None,
        metrics: MetricsSnapshot::default(),
        jobs: 0,
        boots: 0,
        resets: 0,
        busy_ns: 0,
    };
    while let Some((job, task)) = queue.pop() {
        let t0 = Instant::now();
        let seed = cfg.platform.derive_seed(job);
        let mut ctx = ShardCtx {
            shard,
            job,
            seed,
            used: false,
            state: &mut state,
        };
        task(&mut ctx);
        let used = ctx.used;
        state.jobs += 1;
        if used {
            // The platform was fresh at job start, so its counters are
            // exactly this job's work: fold the full snapshot. Folding
            // per job (not per shard at shutdown) is what makes the
            // summed totals shard-count independent.
            let p = state.platform.as_ref().expect("used implies present");
            let snap = p.machine.metrics_snapshot();
            state.metrics.absorb(&snap);
            if state.recycle == Recycle::Rebuild {
                state.platform = None;
            }
        }
        wall_busy += t0.elapsed();
    }
    // Busy accounting: prefer real thread CPU time (idle condvar waits
    // don't accrue), fall back to wall time around task execution. The
    // kernel only folds the running slice into schedstat at scheduler
    // events, so yield first — otherwise each worker under-reports by
    // its tail since the last tick, inflating multi-shard efficiency.
    std::thread::yield_now();
    state.busy_ns = match (cpu0, busy::thread_busy_ns()) {
        (Some(a), Some(b)) => b.saturating_sub(a),
        _ => wall_busy.as_nanos() as u64,
    };
    state
}

/// Runs a fleet: spawns `cfg.shards` workers, hands the body a
/// [`Fleet`] to submit jobs through, and after the body returns waits
/// for every submitted job to finish before folding shard metrics and
/// returning.
///
/// The body's environment may be borrowed (`'env`): jobs can capture
/// references to caller state, like `std::thread::scope`. If the body
/// panics, all already-submitted jobs still run, workers shut down
/// cleanly, and the panic then resumes.
pub fn run<'env, R>(cfg: FleetConfig, body: impl FnOnce(&Fleet<'_, 'env>) -> R) -> FleetRun<R> {
    let shards = cfg.shards.max(1);
    let queue = Queue::new();
    let t0 = Instant::now();
    let (value, states) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..shards)
            .map(|i| {
                let q = &queue;
                let c = &cfg;
                s.spawn(move || worker(q, c, i))
            })
            .collect();
        let fleet = Fleet {
            queue: &queue,
            next_job: AtomicU64::new(0),
        };
        let value = catch_unwind(AssertUnwindSafe(|| body(&fleet)));
        queue.close();
        let states: Vec<ShardState> = handles
            .into_iter()
            .map(|h| h.join().expect("fleet worker panicked"))
            .collect();
        match value {
            Ok(v) => (v, states),
            Err(p) => resume_unwind(p),
        }
    });
    let wall = t0.elapsed();
    let metrics = FleetMetrics::from_shards(states.iter().map(|s| s.metrics).collect());
    let shard_stats: Vec<ShardStats> = states
        .iter()
        .map(|s| ShardStats {
            jobs: s.jobs,
            boots: s.boots,
            resets: s.resets,
            busy_ns: s.busy_ns,
        })
        .collect();
    let jobs = shard_stats.iter().map(|s| s.jobs).sum();
    FleetRun {
        value,
        metrics,
        shards: shard_stats,
        jobs,
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use komodo_guest::progs;
    use komodo_os::EnclaveRun;

    fn small() -> PlatformConfig {
        PlatformConfig::default()
            .with_insecure_size(1 << 20)
            .with_npages(32)
    }

    /// The submission surface must be shareable with worker threads.
    #[test]
    fn fleet_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<FleetConfig>();
        assert_send::<JobHandle<u64>>();
        assert_send::<ShardStats>();
    }

    #[test]
    fn typed_results_round_trip() {
        let r = run(FleetConfig::default().with_shards(3), |fleet| {
            let a = fleet.submit(|ctx| ctx.job_index() * 10);
            let b = fleet.submit(|_| "text".to_string());
            let c = fleet.submit(|ctx| (ctx.job_index(), vec![1u8, 2, 3]));
            (a.join().unwrap(), b.join().unwrap(), c.join().unwrap())
        });
        assert_eq!(r.value, (0, "text".to_string(), (2, vec![1, 2, 3])));
        assert_eq!(r.jobs, 3);
    }

    #[test]
    fn every_job_runs_exactly_once_even_unjoined() {
        use std::sync::atomic::AtomicU64;
        let hits: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        let slots = &hits;
        let r = run(FleetConfig::default().with_shards(4), |fleet| {
            for slot in slots.iter().take(64) {
                // Handles dropped: the run must still execute the jobs.
                let _ = fleet.submit(move |_| slot.fetch_add(1, Ordering::Relaxed));
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(r.jobs, 64);
        assert_eq!(r.shards.iter().map(|s| s.jobs).sum::<u64>(), 64);
    }

    #[test]
    fn panics_are_captured_per_job() {
        let r = run(FleetConfig::default().with_shards(2), |fleet| {
            let bad = fleet.submit(|_| -> u32 { panic!("job 0 exploded") });
            let good = fleet.submit(|_| 7u32);
            (bad.join(), good.join())
        });
        let (bad, good) = r.value;
        assert_eq!(bad.unwrap_err().message, "job 0 exploded");
        assert_eq!(good.unwrap(), 7);
        assert_eq!(r.jobs, 2, "a panicking job still counts as executed");
    }

    #[test]
    fn seeds_are_index_derived() {
        let cfg = FleetConfig::default().with_shards(2);
        let base = cfg.platform.clone();
        let r = run(cfg, |fleet| {
            (0..8)
                .map(|_| fleet.submit(|ctx| (ctx.job_index(), ctx.seed())))
                .collect::<Vec<_>>()
        });
        for h in r.value {
            let (job, seed) = h.join().unwrap();
            assert_eq!(seed, base.derive_seed(job));
        }
    }

    #[test]
    fn platform_jobs_see_a_fresh_seeded_platform() {
        let cfg = FleetConfig::default().with_shards(2).with_platform(small());
        let r = run(cfg, |fleet| {
            (0..6)
                .map(|_| {
                    fleet.submit(|ctx| {
                        let seed = ctx.seed();
                        let job = ctx.job_index() as u32;
                        let p = ctx.platform();
                        assert_eq!(p.config().seed, seed);
                        // Fresh boot: full secure pool, boot-only cycles.
                        assert_eq!(p.os.secure_available(), 32);
                        let e = p.load(&progs::adder()).unwrap();
                        let run = p.run(&e, 0, [job, 1, 0]);
                        (run, p.cycles())
                    })
                })
                .collect::<Vec<_>>()
        });
        for (i, h) in r.value.into_iter().enumerate() {
            let (er, cycles) = h.join().unwrap();
            assert_eq!(er, EnclaveRun::Exited(i as u32 + 1));
            // Same workload on a scratch fresh platform: identical cycles.
            let mut fresh = Platform::with_config(
                small().with_seed(PlatformConfig::default().derive_seed(i as u64)),
            );
            let e = fresh.load(&progs::adder()).unwrap();
            fresh.run(&e, 0, [i as u32, 1, 0]);
            assert_eq!(cycles, fresh.cycles(), "job {i} diverged from fresh boot");
        }
    }

    #[test]
    fn reboot_recycling_boots_once_per_shard() {
        let cfg = FleetConfig::default().with_shards(1).with_platform(small());
        let r = run(cfg, |fleet| {
            for _ in 0..5 {
                fleet.submit(|ctx| {
                    ctx.platform();
                });
            }
        });
        assert_eq!(r.shards[0].boots, 1);
        assert_eq!(r.shards[0].resets, 4);
    }

    #[test]
    fn rebuild_recycling_boots_every_job() {
        let cfg = FleetConfig::default()
            .with_shards(1)
            .with_platform(small())
            .with_recycle(Recycle::Rebuild);
        let r = run(cfg, |fleet| {
            for _ in 0..3 {
                fleet.submit(|ctx| {
                    ctx.platform();
                });
            }
        });
        assert_eq!(r.shards[0].boots, 3);
        assert_eq!(r.shards[0].resets, 0);
    }

    #[test]
    fn platforms_boot_lazily() {
        let r = run(FleetConfig::default().with_shards(4), |fleet| {
            for i in 0..16u64 {
                fleet.submit(move |_| i);
            }
        });
        assert_eq!(r.shards.iter().map(|s| s.boots).sum::<u64>(), 0);
        assert_eq!(r.metrics.total(), MetricsSnapshot::default());
    }

    #[test]
    fn absorbed_metrics_fold_into_the_total() {
        let r = run(FleetConfig::default().with_shards(3), |fleet| {
            for i in 1..=4u64 {
                fleet.submit(move |ctx| {
                    ctx.absorb(&MetricsSnapshot {
                        cycles: i,
                        ..MetricsSnapshot::default()
                    });
                });
            }
        });
        assert_eq!(r.metrics.total().cycles, 1 + 2 + 3 + 4);
        assert_eq!(r.metrics.shard_count(), 3);
    }

    #[test]
    fn body_panic_still_runs_submitted_jobs_and_propagates() {
        use std::sync::atomic::AtomicU64;
        let ran = AtomicU64::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run(FleetConfig::default().with_shards(2), |fleet| {
                for _ in 0..4 {
                    fleet.submit(|_| {
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
                panic!("body bailed");
            });
        }));
        assert_eq!(panic_message(caught.unwrap_err()), "body bailed");
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let r = run(FleetConfig::default().with_shards(0), |fleet| {
            fleet.submit(|ctx| ctx.shard()).join().unwrap()
        });
        assert_eq!(r.value, 0);
        assert_eq!(r.shards.len(), 1);
    }
}
