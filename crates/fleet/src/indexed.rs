//! Deterministic indexed episode runner, expressed on the fleet.
//!
//! The refinement and noninterference suites run many independent
//! episodes, each fully determined by its index (per-episode seeds are
//! derived from the index, never from shared RNG state). That makes
//! them embarrassingly parallel; this runner fans the indices out as
//! fleet jobs and reproduces the sequential loop's failure report.
//!
//! Failure reporting is deterministic: every episode runs to completion
//! regardless of other episodes' failures (the fleet catches panics per
//! job), failures are collected with their indices, and the
//! lowest-indexed failure is re-raised — so a failing run reports the
//! same episode with the same message as the sequential loop it
//! replaces.

use crate::sched::{run, FleetConfig};

/// Runs `f(0) .. f(count - 1)` across fleet shards.
///
/// Every episode executes exactly once, on some shard, with episodes
/// handed out in index order from the fleet's FIFO queue. A panicking
/// episode does not abort the run; after all episodes finish, the panic
/// of the *lowest-indexed* failing episode is re-raised (prefixed with
/// the episode index and the total failure count), matching what the
/// equivalent sequential `for` loop would have reported first.
///
/// `f` must derive all randomness from its index argument; shared
/// mutable state would reintroduce scheduling-dependent results.
pub fn run_indexed<F>(count: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if count == 0 {
        return;
    }
    let shards = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(count);
    let episode = &f;
    let fleet_run = run(FleetConfig::default().with_shards(shards), |fleet| {
        (0..count)
            .map(|i| fleet.submit(move |_| episode(i)))
            .collect::<Vec<_>>()
    });
    let failures: Vec<(usize, String)> = fleet_run
        .value
        .into_iter()
        .enumerate()
        .filter_map(|(i, h)| h.join().err().map(|p| (i, p.message)))
        .collect();
    if let Some((i, msg)) = failures.first() {
        panic!(
            "episode {i} failed ({} of {count} episodes failed): {msg}",
            failures.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::panic_msg::panic_message;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn runs_every_index_exactly_once() {
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        run_indexed(100, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_episodes_is_a_no_op() {
        run_indexed(0, |_| panic!("must not run"));
    }

    #[test]
    fn reports_the_lowest_failing_episode() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            run_indexed(50, |i| {
                assert!(i % 7 != 0, "episode body rejected index {i}");
            });
        }));
        let msg = panic_message(r.unwrap_err());
        assert!(
            msg.starts_with("episode 0 failed (8 of 50 episodes failed)"),
            "wrong report: {msg}"
        );
        assert!(msg.contains("episode body rejected index 0"), "{msg}");
    }
}
