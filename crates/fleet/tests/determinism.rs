//! The fleet determinism contract, checked end to end: the *same* job
//! set produces bit-for-bit identical per-job results and identical
//! summed metrics whether it runs on 1 shard or N, and whether shards
//! recycle their platform by fast re-boot or by rebuilding from
//! scratch — including when a job panics mid-run.

use komodo::PlatformConfig;
use komodo_fleet::{run, Class, FleetConfig, JobResult, Recycle, ShardCtx};
use komodo_guest::progs;
use komodo_os::EnclaveRun;
use komodo_trace::MetricsSnapshot;

const JOBS: u64 = 12;
const FAILING_JOB: u64 = 5;

/// What each job reports: everything observable about its execution —
/// index, enclave result, final cycle count, and the platform's
/// seed-derived attestation identity.
type JobOut = (u64, EnclaveRun, u64, Vec<u8>);

fn episode(ctx: &mut ShardCtx) -> JobOut {
    let idx = ctx.job_index();
    let p = ctx.platform();
    // The failing job panics at a deterministic point (after boot,
    // before any enclave work) so its folded metrics are deterministic
    // too.
    assert!(
        idx != FAILING_JOB,
        "job 5 always fails (determinism fixture)"
    );
    let e = p.load(&progs::adder()).unwrap();
    let r = p.run(&e, 0, [idx as u32, 2, 0]);
    p.destroy(&e).unwrap();
    (idx, r, p.cycles(), p.monitor.attest_key().to_vec())
}

fn sweep(shards: usize, recycle: Recycle) -> (Vec<JobResult<JobOut>>, MetricsSnapshot) {
    let cfg = FleetConfig::default()
        .with_shards(shards)
        .with_platform(
            PlatformConfig::default()
                .with_insecure_size(1 << 20)
                .with_npages(32),
        )
        .with_recycle(recycle);
    let fleet_run = run(cfg, |fleet| {
        (0..JOBS).map(|_| fleet.submit(episode)).collect::<Vec<_>>()
    });
    assert_eq!(fleet_run.jobs, JOBS);
    let results = fleet_run.value.into_iter().map(|h| h.join()).collect();
    (results, fleet_run.metrics.total())
}

/// Like [`sweep`], but submits every job in one `submit_batch` call and
/// also reports the per-run steal accounting.
fn batch_sweep(
    shards: usize,
    recycle: Recycle,
) -> (Vec<JobResult<JobOut>>, MetricsSnapshot, u64, u64, u64) {
    let cfg = FleetConfig::default()
        .with_shards(shards)
        .with_platform(
            PlatformConfig::default()
                .with_insecure_size(1 << 20)
                .with_npages(32),
        )
        .with_recycle(recycle);
    let fleet_run = run(cfg, |fleet| {
        type Job = fn(&mut ShardCtx<'_>) -> JobOut;
        let jobs: Vec<(Class, Job)> = (0..JOBS).map(|_| (Class::Batch, episode as Job)).collect();
        fleet
            .submit_batch(jobs)
            .into_iter()
            .enumerate()
            .map(|(i, h)| {
                // Batch indices are contiguous and item-ordered at any
                // shard count — the request→seed mapping is pinned.
                assert_eq!(h.index(), i as u64);
                h.join()
            })
            .collect::<Vec<_>>()
    });
    assert_eq!(fleet_run.jobs, JOBS);
    // Steal accounting conserves the dispatch count per shard and in
    // aggregate: every executed job was either an own-lane claim or a
    // steal, never both, never neither.
    for s in &fleet_run.shards {
        assert_eq!(s.jobs, s.own + s.stolen, "per-shard steal conservation");
    }
    let own = fleet_run.own_jobs();
    let stolen = fleet_run.stolen_jobs();
    assert_eq!(own + stolen, JOBS);
    (
        fleet_run.value,
        fleet_run.metrics.total(),
        own,
        stolen,
        fleet_run.jobs,
    )
}

#[test]
fn shard_count_and_recycling_do_not_change_results() {
    let (r1, m1) = sweep(1, Recycle::Reboot);
    let (r4, m4) = sweep(4, Recycle::Reboot);
    let (rb, mb) = sweep(3, Recycle::Rebuild);

    // Bit-for-bit identical per-job results, panics included.
    assert_eq!(r1, r4, "shard count changed job results");
    assert_eq!(r1, rb, "recycling policy changed job results");

    // Identical summed metrics: per-job folds are placement-independent.
    assert_eq!(m1, m4, "shard count changed summed metrics");
    assert_eq!(m1, mb, "recycling policy changed summed metrics");
    assert!(m1.cycles > 0, "jobs must have folded real platform work");

    // The fixture behaved as designed: exactly one deterministic panic.
    let failures: Vec<_> = r1.iter().filter(|r| r.is_err()).collect();
    assert_eq!(failures.len(), 1);
    let msg = &r1[FAILING_JOB as usize].as_ref().unwrap_err().message;
    assert!(
        msg.contains("job 5 always fails"),
        "wrong panic surfaced: {msg}"
    );

    // Successful jobs computed the expected enclave results, and every
    // job ran under its own derived seed (distinct attestation keys).
    let mut keys = Vec::new();
    for r in r1.iter().flatten() {
        let (idx, enclave_run, cycles, key) = r;
        assert_eq!(*enclave_run, EnclaveRun::Exited(*idx as u32 + 2));
        assert!(*cycles > 0);
        keys.push(key.clone());
    }
    keys.sort();
    keys.dedup();
    assert_eq!(
        keys.len(),
        JOBS as usize - 1,
        "every job must get a distinct seed-derived identity"
    );
}

/// Steal-path determinism: one `submit_batch` call at 1 shard vs 4
/// shards (both recycling policies) yields bit-for-bit identical
/// per-job results and identical summed `FleetMetrics`, no matter
/// which shard each job landed on or was stolen by — and the batch
/// path matches the per-job submit path exactly.
#[test]
fn batched_submission_survives_stealing_bit_for_bit() {
    let (r1, m1, own1, stolen1, j1) = batch_sweep(1, Recycle::Reboot);
    let (r4, m4, _, _, j4) = batch_sweep(4, Recycle::Reboot);
    let (rb1, mb1, _, _, _) = batch_sweep(1, Recycle::Rebuild);
    let (rb4, mb4, _, _, _) = batch_sweep(4, Recycle::Rebuild);
    assert_eq!(j1, JOBS);
    assert_eq!(j4, JOBS);

    // A single shard has no siblings: every dispatch is an own claim.
    assert_eq!(stolen1, 0);
    assert_eq!(own1, JOBS);

    assert_eq!(r1, r4, "shard count changed batched job results");
    assert_eq!(m1, m4, "shard count changed batched summed metrics");
    assert_eq!(rb1, rb4, "shard count changed rebuild batch results");
    assert_eq!(mb1, mb4, "shard count changed rebuild batch metrics");
    assert_eq!(r1, rb1, "recycling policy changed batched results");
    assert_eq!(m1, mb1, "recycling policy changed batched metrics");

    // The batch submit path is result-identical to per-job submission.
    let (rs, ms) = sweep(1, Recycle::Reboot);
    assert_eq!(r1, rs, "batch vs single submission changed results");
    assert_eq!(m1, ms, "batch vs single submission changed metrics");
}
