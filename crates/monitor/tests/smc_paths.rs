//! Direct monitor-path tests: every SMC's accept and reject branches, at
//! the crate boundary (no OS model), plus cost-model sanity.

use komodo_armv7::Machine;
use komodo_monitor::abs::abstract_pagedb;
use komodo_monitor::{boot, Monitor, MonitorLayout};
use komodo_spec::{KomErr, Mapping, SmcCall};

fn platform() -> (Machine, Monitor) {
    boot(MonitorLayout::new(1 << 20, 16), 42)
}

fn smc(m: &mut Machine, mon: &mut Monitor, call: SmcCall, args: [u32; 4]) -> KomErr {
    mon.smc(m, call as u32, args).err
}

/// Seeds an insecure page with recognisable contents; returns the PFN.
fn seed_insecure(m: &mut Machine, pfn: u32, fill: u32) -> u32 {
    for i in 0..1024u32 {
        m.mem
            .write(
                pfn * 4096 + i * 4,
                fill ^ i,
                komodo_armv7::mem::AccessAttrs::NORMAL,
            )
            .unwrap();
    }
    pfn
}

#[test]
fn get_phys_pages_reports_layout() {
    let (mut m, mut mon) = platform();
    let r = mon.smc(&mut m, SmcCall::GetPhysPages as u32, [0; 4]);
    assert_eq!((r.err, r.retval), (KomErr::Ok, 16));
}

#[test]
fn init_addrspace_rejections() {
    let (mut m, mut mon) = platform();
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::InitAddrspace, [16, 0, 0, 0]),
        KomErr::InvalidPageNo
    );
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::InitAddrspace, [0, 16, 0, 0]),
        KomErr::InvalidPageNo
    );
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::InitAddrspace, [3, 3, 0, 0]),
        KomErr::PageInUse
    );
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::InitAddrspace, [0, 1, 0, 0]),
        KomErr::Ok
    );
    // Reusing either page fails.
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::InitAddrspace, [0, 2, 0, 0]),
        KomErr::PageInUse
    );
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::InitAddrspace, [2, 1, 0, 0]),
        KomErr::PageInUse
    );
}

#[test]
fn init_thread_and_l2pt_state_checks() {
    let (mut m, mut mon) = platform();
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::InitThread, [0, 2, 0, 0]),
        KomErr::InvalidAddrspace
    );
    smc(&mut m, &mut mon, SmcCall::InitAddrspace, [0, 1, 0, 0]);
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::InitThread, [1, 2, 0, 0]),
        KomErr::InvalidAddrspace
    );
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::InitL2PTable, [0, 2, 256, 0]),
        KomErr::InvalidMapping
    );
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::InitL2PTable, [0, 2, 0, 0]),
        KomErr::Ok
    );
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::InitL2PTable, [0, 3, 0, 0]),
        KomErr::AddrInUse
    );
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::InitThread, [0, 3, 0x8000, 0]),
        KomErr::Ok
    );
    smc(&mut m, &mut mon, SmcCall::Finalise, [0, 0, 0, 0]);
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::InitThread, [0, 4, 0, 0]),
        KomErr::AlreadyFinal
    );
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::InitL2PTable, [0, 4, 1, 0]),
        KomErr::AlreadyFinal
    );
}

#[test]
fn map_secure_copies_exact_contents() {
    let (mut m, mut mon) = platform();
    smc(&mut m, &mut mon, SmcCall::InitAddrspace, [0, 1, 0, 0]);
    smc(&mut m, &mut mon, SmcCall::InitL2PTable, [0, 2, 0, 0]);
    let pfn = seed_insecure(&mut m, 5, 0xabcd_0000);
    let mapping = Mapping {
        vpn: 8,
        r: true,
        w: false,
        x: false,
    };
    assert_eq!(
        smc(
            &mut m,
            &mut mon,
            SmcCall::MapSecure,
            [0, 3, mapping.pack(), pfn]
        ),
        KomErr::Ok
    );
    let d = abstract_pagedb(&mut m, &mon.layout);
    match d.get(3).unwrap() {
        komodo_spec::PageEntry::Data { contents, .. } => {
            for (i, w) in contents.iter().enumerate() {
                assert_eq!(*w, 0xabcd_0000 ^ i as u32);
            }
        }
        other => panic!("{other:?}"),
    }
    // And the OS later corrupting the staging page does NOT affect the
    // enclave's copy (TOCTOU safety: the monitor copied, not aliased).
    seed_insecure(&mut m, 5, 0xffff_ffff);
    let d = abstract_pagedb(&mut m, &mon.layout);
    match d.get(3).unwrap() {
        komodo_spec::PageEntry::Data { contents, .. } => {
            assert_eq!(contents[0], 0xabcd_0000);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn enter_rejections() {
    let (mut m, mut mon) = platform();
    smc(&mut m, &mut mon, SmcCall::InitAddrspace, [0, 1, 0, 0]);
    smc(&mut m, &mut mon, SmcCall::InitThread, [0, 3, 0x8000, 0]);
    // Not finalised.
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::Enter, [3, 0, 0, 0]),
        KomErr::NotFinal
    );
    // Not a thread page.
    smc(&mut m, &mut mon, SmcCall::Finalise, [0, 0, 0, 0]);
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::Enter, [0, 0, 0, 0]),
        KomErr::InvalidPageNo
    );
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::Enter, [99, 0, 0, 0]),
        KomErr::InvalidPageNo
    );
    // Resume of a never-entered thread.
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::Resume, [3, 0, 0, 0]),
        KomErr::NotEntered
    );
    // Stopped enclave.
    smc(&mut m, &mut mon, SmcCall::Stop, [0, 0, 0, 0]);
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::Enter, [3, 0, 0, 0]),
        KomErr::Stopped
    );
}

#[test]
fn same_call_costs_same_cycles() {
    // The cost model is input-independent for same-shaped calls — the
    // basis of the timing side of the NI results.
    let (mut m1, mut mon1) = platform();
    let (mut m2, mut mon2) = platform();
    smc(&mut m1, &mut mon1, SmcCall::InitAddrspace, [0, 1, 0, 0]);
    smc(&mut m2, &mut mon2, SmcCall::InitAddrspace, [7, 9, 0, 0]);
    assert_eq!(m1.cycles, m2.cycles);
    // Rejected calls cost the same regardless of why they fail late vs
    // early is allowed to differ — but identical failure shapes match.
    let c1 = {
        let b = m1.cycles;
        smc(&mut m1, &mut mon1, SmcCall::InitAddrspace, [0, 1, 0, 0]);
        m1.cycles - b
    };
    let c2 = {
        let b = m2.cycles;
        smc(&mut m2, &mut mon2, SmcCall::InitAddrspace, [7, 9, 0, 0]);
        m2.cycles - b
    };
    assert_eq!(c1, c2);
}

#[test]
fn measurement_insensitive_to_page_numbers() {
    // The measurement binds VAs, permissions, contents, and entry points —
    // but *not* which physical pool pages the OS picked (the OS choice is
    // arbitrary and untrusted).
    let build = |asp: u32, l1: u32, l2: u32, th: u32, data: u32| {
        let (mut m, mut mon) = platform();
        let pfn = seed_insecure(&mut m, 5, 7);
        smc(&mut m, &mut mon, SmcCall::InitAddrspace, [asp, l1, 0, 0]);
        smc(&mut m, &mut mon, SmcCall::InitL2PTable, [asp, l2, 0, 0]);
        let mapping = Mapping {
            vpn: 8,
            r: true,
            w: true,
            x: false,
        };
        smc(
            &mut m,
            &mut mon,
            SmcCall::MapSecure,
            [asp, data, mapping.pack(), pfn],
        );
        smc(&mut m, &mut mon, SmcCall::InitThread, [asp, th, 0x8000, 0]);
        smc(&mut m, &mut mon, SmcCall::Finalise, [asp, 0, 0, 0]);
        let d = abstract_pagedb(&mut m, &mon.layout);
        d.measurement_of(asp as usize).unwrap().digest().unwrap()
    };
    assert_eq!(build(0, 1, 2, 3, 4), build(9, 8, 7, 6, 5));
}

#[test]
fn remove_order_enforced() {
    let (mut m, mut mon) = platform();
    smc(&mut m, &mut mon, SmcCall::InitAddrspace, [0, 1, 0, 0]);
    smc(&mut m, &mut mon, SmcCall::InitThread, [0, 3, 0, 0]);
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::Remove, [3, 0, 0, 0]),
        KomErr::NotStopped
    );
    smc(&mut m, &mut mon, SmcCall::Stop, [0, 0, 0, 0]);
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::Remove, [0, 0, 0, 0]),
        KomErr::PagesRemain
    );
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::Remove, [3, 0, 0, 0]),
        KomErr::Ok
    );
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::Remove, [1, 0, 0, 0]),
        KomErr::Ok
    );
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::Remove, [0, 0, 0, 0]),
        KomErr::Ok
    );
    // Removing a free page is idempotent success.
    assert_eq!(
        smc(&mut m, &mut mon, SmcCall::Remove, [0, 0, 0, 0]),
        KomErr::Ok
    );
}

#[test]
fn world_and_mode_restored_after_every_call() {
    use komodo_armv7::mode::{Mode, World};
    let (mut m, mut mon) = platform();
    for call in 1..=12u32 {
        let _ = mon.smc(&mut m, call, [0, 1, 2, 3]);
        assert_eq!(m.cpsr.mode, Mode::Supervisor, "call {call}");
        assert_eq!(m.world(), World::Normal, "call {call}");
    }
}
