//! The abstraction function: concrete memory → specification PageDB.
//!
//! The paper's refinement obligation is that the concrete machine state
//! implements the abstract PageDB ("we consider states (s,d) ... such that
//! s is an implementation of d", §6.1). This module makes the abstraction
//! explicit by *reading it back*: given the machine, it reconstructs the
//! [`komodo_spec::PageDb`] the monitor's in-memory structures denote. The
//! workspace's refinement tests then check that every monitor call
//! commutes with the specification through this function.

use komodo_armv7::ptw;
use komodo_armv7::word::PAGE_SIZE;
use komodo_armv7::Machine;
use komodo_crypto::Digest;
use komodo_spec::measure::Measurement;
use komodo_spec::pagedb::UserContext;
use komodo_spec::{AddrspaceState, L2Entry, PageDb, PageEntry};

use crate::layout::MonitorLayout;
use crate::pgdb::{self, asp_off, astate, ptype, th_off};

/// Lifts the concrete PageDB out of simulated memory.
///
/// # Panics
///
/// Panics if the concrete state is malformed (unknown type codes,
/// undecodable descriptors pointing outside the pool) — refinement tests
/// treat that as a monitor bug, not an input condition.
pub fn abstract_pagedb(m: &mut Machine, l: &MonitorLayout) -> PageDb {
    let mut d = PageDb::new(l.npages);
    for pg in 0..l.npages {
        let (ty, owner) = pgdb::peek_meta(m, l, pg).expect("metadata readable");
        let owner = owner as usize;
        let entry = match ty {
            ptype::FREE => PageEntry::Free,
            ptype::ADDRSPACE => abstract_addrspace(m, l, pg),
            ptype::L1PT => PageEntry::L1PTable {
                addrspace: owner,
                slots: abstract_l1(m, l, pg),
            },
            ptype::L2PT => PageEntry::L2PTable {
                addrspace: owner,
                slots: abstract_l2(m, l, pg),
            },
            ptype::THREAD => abstract_thread(m, l, pg, owner),
            ptype::DATA => {
                let mut contents = Box::new([0u32; 1024]);
                for (i, c) in contents.iter_mut().enumerate() {
                    *c = pgdb::peek_word(m, l, pg, i as u32).expect("pool readable");
                }
                PageEntry::Data {
                    addrspace: owner,
                    contents,
                }
            }
            ptype::SPARE => PageEntry::Spare { addrspace: owner },
            other => panic!("unknown page type code {other} for page {pg}"),
        };
        d.set(pg, entry);
    }
    d
}

fn abstract_addrspace(m: &mut Machine, l: &MonitorLayout, pg: usize) -> PageEntry {
    let rd = |m: &mut Machine, off: u32| pgdb::peek_word(m, l, pg, off).expect("pool readable");
    let l1pt = rd(m, asp_off::L1PT) as usize;
    let refcount = rd(m, asp_off::REFCOUNT) as usize;
    let state = match rd(m, asp_off::STATE) {
        astate::INIT => AddrspaceState::Init,
        astate::FINAL => AddrspaceState::Final,
        astate::STOPPED => AddrspaceState::Stopped,
        other => panic!("unknown addrspace state {other}"),
    };
    let mut h = [0u32; 8];
    for (i, hw) in h.iter_mut().enumerate() {
        *hw = rd(m, asp_off::MEAS_H + i as u32);
    }
    let nblocks = rd(m, asp_off::MEAS_NBLOCKS) as u64;
    let digest = if rd(m, asp_off::MEAS_DONE) != 0 {
        let mut dg = [0u32; 8];
        for (i, w) in dg.iter_mut().enumerate() {
            *w = rd(m, asp_off::MEAS_DIGEST + i as u32);
        }
        Some(Digest(dg))
    } else {
        None
    };
    PageEntry::Addrspace {
        l1pt,
        refcount,
        state,
        measurement: Measurement::from_parts(h, nblocks, digest),
    }
}

fn abstract_l1(m: &mut Machine, l: &MonitorLayout, pg: usize) -> Box<[Option<usize>; 256]> {
    let mut slots = Box::new([None; 256]);
    for (slot, s) in slots.iter_mut().enumerate() {
        // Komodo slot = 4 consecutive hardware descriptors; the first
        // determines the L2 page.
        let desc = pgdb::peek_word(m, l, pg, (slot as u32) * 4).expect("pool readable");
        if let Some(coarse_pa) = ptw::decode_l1_desc(desc) {
            let page_pa = coarse_pa & !(PAGE_SIZE - 1);
            *s = Some(
                l.pa_to_page(page_pa)
                    .expect("L1 descriptor points into the pool"),
            );
        }
    }
    slots
}

fn abstract_l2(m: &mut Machine, l: &MonitorLayout, pg: usize) -> Box<[L2Entry; 1024]> {
    let mut slots = Box::new([L2Entry::Nothing; 1024]);
    for (i, s) in slots.iter_mut().enumerate() {
        let desc = pgdb::peek_word(m, l, pg, i as u32).expect("pool readable");
        if desc == 0 {
            continue;
        }
        let t = ptw::decode_l2_desc(desc).expect("valid small-page descriptor");
        *s = if t.ns {
            L2Entry::InsecureMapping {
                pfn: t.pa >> 12,
                w: t.perms.w,
            }
        } else {
            L2Entry::SecureMapping {
                page: l.pa_to_page(t.pa).expect("secure mapping into the pool"),
                w: t.perms.w,
                x: t.perms.x,
            }
        };
    }
    slots
}

fn abstract_thread(m: &mut Machine, l: &MonitorLayout, pg: usize, owner: usize) -> PageEntry {
    let rd = |m: &mut Machine, off: u32| pgdb::peek_word(m, l, pg, off).expect("pool readable");
    let entry = rd(m, th_off::ENTRY);
    let entered = rd(m, th_off::ENTERED) != 0;
    let mut regs = [0u32; 15];
    for (i, r) in regs.iter_mut().enumerate() {
        *r = rd(m, th_off::REGS + i as u32);
    }
    let pc = rd(m, th_off::PC);
    let cpsr_flags = rd(m, th_off::FLAGS);
    let mut verify_words = [0u32; 16];
    for (i, v) in verify_words.iter_mut().enumerate() {
        *v = rd(m, th_off::VERIFY + i as u32);
    }
    PageEntry::Thread {
        addrspace: owner,
        entry,
        entered,
        context: UserContext {
            regs,
            pc,
            cpsr_flags,
        },
        verify_words,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boot::boot;

    #[test]
    fn fresh_platform_abstracts_to_empty_pagedb() {
        let (mut m, mon) = boot(MonitorLayout::new(1 << 20, 16), 0);
        let d = abstract_pagedb(&mut m, &mon.layout);
        assert_eq!(d, PageDb::new(16));
    }
}
