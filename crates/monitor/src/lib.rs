//! The concrete Komodo monitor (paper §4, §7).
//!
//! This crate implements the Komodo reference monitor against the
//! `komodo-armv7` machine model. It is the executable counterpart of the
//! paper's verified assembly: privileged code that runs at exception
//! boundaries, maintains the PageDB in simulated secure memory, and
//! enters/exits enclaves through the architectural `MOVS PC, LR` path.
//!
//! Faithfulness notes:
//!
//! - **In-memory representation.** Page tables are stored in *hardware
//!   format* in the page-table pages themselves — the L2 page-table page
//!   holds the four ARM coarse tables the MMU actually walks during enclave
//!   execution, exactly as in the prototype. Thread context, address-space
//!   state and the running measurement hash live in their pool pages;
//!   per-page type/owner metadata lives in the monitor's data region (the
//!   `g_pagedb` global of the prototype).
//! - **Refinement.** [`abs::abstract_pagedb`] lifts the concrete memory
//!   back to the specification's [`komodo_spec::PageDb`]; the workspace's
//!   differential tests check that every call commutes with the
//!   specification — the executable stand-in for the paper's proof.
//! - **Cycle model.** Monitor work charges cycles through the machine's
//!   counters plus the calibrated constants in [`costs`], reproducing the
//!   cost structure behind the paper's Table 3 (register save/restore, TLB
//!   flush, page zeroing + hashing dominate).
//! - **State machine.** The SMC/SVC/IRQ/FIQ/abort/undefined handlers form
//!   the Figure 3 state machine: all enclave execution is nested inside the
//!   top-level SMC handler, and user-mode entry happens at exactly one
//!   point (the `enter` loop), mirroring the single `MOVS PC, LR` site of
//!   the prototype (§7.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abs;
pub mod boot;
pub mod costs;
pub mod layout;
pub mod monitor;
pub mod pgdb;

pub use boot::{boot, reboot};
pub use layout::MonitorLayout;
pub use monitor::{Monitor, PlantedBugs, SmcResult};
