//! Concrete PageDB representation in simulated memory.
//!
//! Per-page type/owner metadata lives in the monitor's data region (the
//! prototype's `g_pagedb` global); everything else lives in the secure pool
//! pages themselves:
//!
//! - **Address-space page**: L1PT page number, refcount, state, and the
//!   running measurement (SHA-256 chaining value + block count, §7.2).
//! - **Thread page**: entry point, entered flag, saved user context, and
//!   the `Verify` staging buffer.
//! - **Page-table pages**: ARM short-descriptor tables in *hardware
//!   format* — the same words the MMU walks during enclave execution.
//! - **Data pages**: the enclave's private contents.

use komodo_armv7::error::MemFault;
use komodo_armv7::word::Addr;
use komodo_armv7::Machine;

use crate::layout::MonitorLayout;

/// Page-type codes in `g_pagedb` metadata.
pub mod ptype {
    /// Unallocated.
    pub const FREE: u32 = 0;
    /// Address space.
    pub const ADDRSPACE: u32 = 1;
    /// First-level page table.
    pub const L1PT: u32 = 2;
    /// Second-level page table.
    pub const L2PT: u32 = 3;
    /// Thread.
    pub const THREAD: u32 = 4;
    /// Data page.
    pub const DATA: u32 = 5;
    /// Spare page.
    pub const SPARE: u32 = 6;
}

/// Address-space state codes.
pub mod astate {
    /// Under construction.
    pub const INIT: u32 = 0;
    /// Finalised.
    pub const FINAL: u32 = 1;
    /// Stopped.
    pub const STOPPED: u32 = 2;
}

/// Word offsets within an address-space page.
pub mod asp_off {
    /// L1 page-table page number.
    pub const L1PT: u32 = 0;
    /// Owned-page refcount.
    pub const REFCOUNT: u32 = 1;
    /// Lifecycle state (see [`super::astate`]).
    pub const STATE: u32 = 2;
    /// Running measurement hash `h[8]`.
    pub const MEAS_H: u32 = 3;
    /// Measurement block count.
    pub const MEAS_NBLOCKS: u32 = 11;
    /// Finalised measurement digest `[8]` (valid when `MEAS_DONE` is set).
    pub const MEAS_DIGEST: u32 = 12;
    /// Whether the measurement digest has been fixed by `Finalise` (an
    /// enclave stopped before finalisation never gets one).
    pub const MEAS_DONE: u32 = 20;
}

/// Word offsets within a thread page.
pub mod th_off {
    /// Entry-point VA.
    pub const ENTRY: u32 = 0;
    /// Entered flag (0/1).
    pub const ENTERED: u32 = 1;
    /// Saved R0–R12, SP, LR (15 words).
    pub const REGS: u32 = 2;
    /// Saved PC.
    pub const PC: u32 = 17;
    /// Saved condition flags.
    pub const FLAGS: u32 = 18;
    /// `Verify` staging buffer (16 words).
    pub const VERIFY: u32 = 19;
}

/// Reads a page's `(type, owner)` metadata.
pub fn meta(m: &mut Machine, l: &MonitorLayout, pg: usize) -> Result<(u32, u32), MemFault> {
    let a = l.pagedb_meta_pa(pg);
    Ok((m.mon_read(a)?, m.mon_read(a + 4)?))
}

/// Writes a page's `(type, owner)` metadata.
///
/// When the flight recorder is armed, a change of page *type* is recorded
/// as a `PageDbTransition` event. The old type is read through the
/// counter-free [`komodo_armv7::mem::PhysMem::peek`] — never through a
/// counted read — so tracing stays bit-for-bit invisible to machine
/// equality (which includes the memory access counters).
pub fn set_meta(
    m: &mut Machine,
    l: &MonitorLayout,
    pg: usize,
    ty: u32,
    owner: u32,
) -> Result<(), MemFault> {
    let a = l.pagedb_meta_pa(pg);
    if m.trace.enabled() {
        let old = m.mem.peek(a).unwrap_or(ty);
        if old != ty {
            m.trace.record(
                m.cycles,
                komodo_trace::Event::PageDbTransition {
                    page: pg as u32,
                    from: old as u8,
                    to: ty as u8,
                },
            );
        }
    }
    m.mon_write(a, ty)?;
    m.mon_write(a + 4, owner)
}

/// Physical address of word `idx` of pool page `pg`.
pub fn word_pa(l: &MonitorLayout, pg: usize, idx: u32) -> Addr {
    debug_assert!(idx < 1024);
    l.page_pa(pg) + idx * 4
}

/// Reads word `idx` of pool page `pg`.
pub fn read_word(m: &mut Machine, l: &MonitorLayout, pg: usize, idx: u32) -> Result<u32, MemFault> {
    m.mon_read(word_pa(l, pg, idx))
}

/// Reads word `idx` of pool page `pg` *without* charging cycles or
/// bumping the access counters — for the abstraction function and other
/// out-of-band observers, which must not perturb the machine they
/// inspect (the counters participate in machine equality).
pub fn peek_word(m: &mut Machine, l: &MonitorLayout, pg: usize, idx: u32) -> Result<u32, MemFault> {
    let a = word_pa(l, pg, idx);
    m.mem
        .peek(a)
        .ok_or_else(|| MemFault::new(a, komodo_armv7::error::MemFaultKind::Unmapped, false))
}

/// Reads a page's `(type, owner)` metadata without charging cycles or
/// bumping the access counters.
pub fn peek_meta(m: &mut Machine, l: &MonitorLayout, pg: usize) -> Result<(u32, u32), MemFault> {
    let a = l.pagedb_meta_pa(pg);
    let peek = |a: Addr| {
        m.mem
            .peek(a)
            .ok_or_else(|| MemFault::new(a, komodo_armv7::error::MemFaultKind::Unmapped, false))
    };
    Ok((peek(a)?, peek(a + 4)?))
}

/// Writes word `idx` of pool page `pg`.
pub fn write_word(
    m: &mut Machine,
    l: &MonitorLayout,
    pg: usize,
    idx: u32,
    val: u32,
) -> Result<(), MemFault> {
    m.mon_write(word_pa(l, pg, idx), val)
}

/// Zeroes an entire pool page (used when recycling pages into page tables
/// or fresh data pages).
pub fn zero_page(m: &mut Machine, l: &MonitorLayout, pg: usize) -> Result<(), MemFault> {
    for i in 0..1024 {
        write_word(m, l, pg, i, 0)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Machine, MonitorLayout) {
        let l = MonitorLayout::new(1 << 20, 8);
        let mut m = Machine::new();
        l.build_memory(&mut m);
        (m, l)
    }

    #[test]
    fn meta_roundtrip() {
        let (mut m, l) = setup();
        set_meta(&mut m, &l, 3, ptype::THREAD, 0).unwrap();
        assert_eq!(meta(&mut m, &l, 3).unwrap(), (ptype::THREAD, 0));
        assert_eq!(meta(&mut m, &l, 4).unwrap(), (ptype::FREE, 0));
    }

    #[test]
    fn page_word_roundtrip() {
        let (mut m, l) = setup();
        write_word(&mut m, &l, 2, 17, 0xdead_beef).unwrap();
        assert_eq!(read_word(&mut m, &l, 2, 17).unwrap(), 0xdead_beef);
        // Different page unaffected.
        assert_eq!(read_word(&mut m, &l, 3, 17).unwrap(), 0);
    }

    #[test]
    fn zero_page_clears() {
        let (mut m, l) = setup();
        write_word(&mut m, &l, 1, 0, 7).unwrap();
        write_word(&mut m, &l, 1, 1023, 9).unwrap();
        zero_page(&mut m, &l, 1).unwrap();
        assert_eq!(read_word(&mut m, &l, 1, 0).unwrap(), 0);
        assert_eq!(read_word(&mut m, &l, 1, 1023).unwrap(), 0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // The point is checking the layout constants.
    fn offsets_do_not_overlap() {
        assert!(th_off::REGS + 15 == th_off::PC);
        assert!(th_off::PC + 1 == th_off::FLAGS);
        assert!(th_off::FLAGS + 1 == th_off::VERIFY);
        assert!(asp_off::MEAS_H + 8 == asp_off::MEAS_NBLOCKS);
        assert!(asp_off::MEAS_NBLOCKS + 1 == asp_off::MEAS_DIGEST);
    }
}
