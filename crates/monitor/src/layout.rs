//! Physical memory layout (paper Figure 4).
//!
//! The platform has one physically contiguous RAM bank, as on the Raspberry
//! Pi 2; the bootloader reserves its upper part for the monitor image and
//! the secure page pool, leaving the rest as insecure (normal-world) RAM:
//!
//! ```text
//! 0 ..............................:  insecure RAM (OS, shared pages)
//! monitor_base ..................:   monitor image/stack/globals  [secure]
//! secure_base ...................:   secure page pool             [secure]
//! ```
//!
//! Because the monitor's pages sit inside the same physical address space
//! the OS can name, validating OS-supplied "insecure" addresses must
//! exclude them — the §9.1 bug this layout exists to reproduce.

use komodo_armv7::word::{Addr, PAGE_SIZE};
use komodo_armv7::Machine;
use komodo_spec::SecureParams;

/// The monitor's physical layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MonitorLayout {
    /// Bytes of insecure RAM starting at physical address 0.
    pub insecure_size: u32,
    /// Base of the monitor's own (secure) region.
    pub monitor_base: Addr,
    /// Size of the monitor region.
    pub monitor_size: u32,
    /// Base of the secure page pool.
    pub secure_base: Addr,
    /// Number of pool pages.
    pub npages: usize,
}

impl MonitorLayout {
    /// A layout with the given insecure RAM size and pool page count; the
    /// monitor region is fixed at 64 kB.
    pub fn new(insecure_size: u32, npages: usize) -> MonitorLayout {
        assert_eq!(insecure_size % PAGE_SIZE, 0);
        let monitor_base = insecure_size;
        let monitor_size = 0x1_0000;
        MonitorLayout {
            insecure_size,
            monitor_base,
            monitor_size,
            secure_base: monitor_base + monitor_size,
            npages,
        }
    }

    /// The default evaluation platform: 4 MB insecure RAM, 256 secure pages
    /// (1 MB pool), echoing the configurable reservation of §8.1.
    pub fn default_platform() -> MonitorLayout {
        MonitorLayout::new(4 << 20, 256)
    }

    /// Physical address of secure pool page `pg`.
    pub fn page_pa(&self, pg: usize) -> Addr {
        debug_assert!(pg < self.npages);
        self.secure_base + (pg as u32) * PAGE_SIZE
    }

    /// Secure pool page number for a physical address, if it is one.
    pub fn pa_to_page(&self, pa: Addr) -> Option<usize> {
        if pa < self.secure_base {
            return None;
        }
        let pg = ((pa - self.secure_base) / PAGE_SIZE) as usize;
        (pg < self.npages).then_some(pg)
    }

    /// Address of the `g_pagedb` metadata entry for page `pg` (two words:
    /// type, owner), in the monitor data region.
    pub fn pagedb_meta_pa(&self, pg: usize) -> Addr {
        self.monitor_base + (pg as u32) * 8
    }

    /// The validation parameters this layout induces. Insecure addresses
    /// span the whole RAM bank, so the secure pool *and the monitor's own
    /// pages* must be excluded explicitly (§9.1).
    pub fn params(&self) -> SecureParams {
        let end_pfn = (self.secure_base + (self.npages as u32) * PAGE_SIZE) >> 12;
        SecureParams {
            npages: self.npages,
            secure_base_pfn: self.secure_base >> 12,
            insecure_pfns: 0..end_pfn,
            monitor_pfns: (self.monitor_base >> 12)..(self.secure_base >> 12),
        }
    }

    /// Builds the machine's physical memory regions for this layout.
    pub fn build_memory(&self, m: &mut Machine) {
        m.mem.add_region(0, self.insecure_size, false);
        m.mem.add_region(self.monitor_base, self.monitor_size, true);
        m.mem
            .add_region(self.secure_base, (self.npages as u32) * PAGE_SIZE, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_pa_roundtrip() {
        let l = MonitorLayout::new(1 << 20, 16);
        for pg in 0..16 {
            assert_eq!(l.pa_to_page(l.page_pa(pg)), Some(pg));
        }
        assert_eq!(l.pa_to_page(0), None);
        assert_eq!(l.pa_to_page(l.secure_base + 16 * PAGE_SIZE), None);
    }

    #[test]
    fn params_exclude_monitor_and_pool() {
        let l = MonitorLayout::new(1 << 20, 16);
        let p = l.params();
        assert!(p.valid_insecure_pfn(0));
        assert!(p.valid_insecure_pfn((l.monitor_base >> 12) - 1));
        assert!(!p.valid_insecure_pfn(l.monitor_base >> 12));
        assert!(!p.valid_insecure_pfn(l.secure_base >> 12));
        assert!(!p.valid_insecure_pfn((l.secure_base >> 12) + 15));
    }

    #[test]
    fn memory_regions_partition_ram() {
        let l = MonitorLayout::new(1 << 20, 16);
        let mut m = Machine::new();
        l.build_memory(&mut m);
        assert!(!m.mem.is_secure(0));
        assert!(m.mem.is_secure(l.monitor_base));
        assert!(m.mem.is_secure(l.page_pa(0)));
        assert!(m.mem.is_mapped(l.page_pa(15)));
        assert!(!m.mem.is_mapped(l.page_pa(15) + PAGE_SIZE));
    }

    #[test]
    fn metadata_fits_in_monitor_region() {
        let l = MonitorLayout::default_platform();
        let last = l.pagedb_meta_pa(l.npages - 1);
        assert!(last + 8 <= l.monitor_base + l.monitor_size);
    }
}
