//! The monitor proper: SMC and SVC handlers, enclave entry/exit.
//!
//! Control flow mirrors Figure 3: everything nests inside the top-level
//! SMC handler. `Enter`/`Resume` reach user mode at exactly one point (the
//! `MOVS PC, LR` in `Monitor::run_enclave`); every exception taken during
//! enclave execution (SVC, IRQ, FIQ, aborts, undefined instructions)
//! returns to that loop, which either re-enters the enclave or falls
//! through to the SMC return path.

use komodo_armv7::exn::ExceptionKind;
use komodo_armv7::mode::Mode;
use komodo_armv7::psr::Psr;
use komodo_armv7::ptw::{self, PagePerms};
use komodo_armv7::regs::{Bank, Reg};
use komodo_armv7::word::PAGE_SIZE;
use komodo_armv7::{ExitReason, Machine};
use komodo_crypto::sha256::{Sha256, BLOCK_WORDS, H0};
use komodo_crypto::{Digest, HashDrbg};
use komodo_spec::measure::MeasureOp;
use komodo_spec::{KomErr, Mapping, SecureParams, SmcCall, SvcCall};
use komodo_trace::Event;

use crate::costs;
use crate::layout::MonitorLayout;
use crate::pgdb::{self, asp_off, astate, ptype, th_off};

/// Result of a secure monitor call, as returned to the OS in `R0`/`R1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SmcResult {
    /// Error code (`R0`).
    pub err: KomErr,
    /// Return value (`R1`): page count, enclave return value, etc.
    pub retval: u32,
}

/// Deliberately plantable monitor bugs, all off by default.
///
/// These exist to validate the chaos harness's oracles: each knob
/// suppresses one security-critical step on an error/edge path, exactly
/// the surface Komodo's verification covers and cooperative tests miss.
/// A chaos campaign run against a monitor with a planted bug must flag
/// the violation and shrink the triggering schedule; see
/// `komodo-chaos`. Production paths never set these.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlantedBugs {
    /// Skip the exit-path register scrub when an enclave burst ends
    /// `Interrupted` — the OS then observes live enclave registers, a
    /// direct secret leak the NI oracle must catch.
    pub leak_regs_on_interrupt: bool,
    /// Skip the addrspace refcount decrement when a `SPARE` page is
    /// removed — the PageDb refcount then overcounts, a state-machine
    /// corruption the refinement/invariant oracle must catch.
    pub refcount_leak_on_remove: bool,
}

impl PlantedBugs {
    /// True when any bug is planted.
    pub fn any(&self) -> bool {
        self.leak_regs_on_interrupt || self.refcount_leak_on_remove
    }
}

/// The Komodo monitor state (the verified image's globals).
#[derive(Clone, Debug)]
pub struct Monitor {
    /// Physical layout.
    pub layout: MonitorLayout,
    /// Validation parameters derived from the layout.
    pub params: SecureParams,
    attest_key: [u8; 32],
    drbg: HashDrbg,
    /// Conservatively save/restore every banked register on enclave entry
    /// (§8.1); the ablation bench disables this to measure the headroom.
    pub conservative_save: bool,
    /// Flush the TLB on every enclave entry rather than only when
    /// inconsistent (§8.1); ablation toggle.
    pub always_flush_tlb: bool,
    /// User-execution step budget per burst before the monitor treats the
    /// enclave as interrupted (models the OS's timer preemption).
    pub step_budget: u64,
    /// Deliberately planted bugs for chaos-oracle validation; all off by
    /// default.
    pub planted: PlantedBugs,
}

impl Monitor {
    /// Constructs the monitor state; use [`crate::boot::boot`] for a fully
    /// initialised platform.
    pub fn new(layout: MonitorLayout, seed: u64) -> Monitor {
        let mut drbg = HashDrbg::from_u64(seed);
        let attest_key = drbg.derive_key(b"komodo-attest").to_bytes();
        let params = layout.params();
        Monitor {
            layout,
            params,
            attest_key,
            drbg,
            conservative_save: true,
            always_flush_tlb: true,
            step_budget: 500_000_000,
            planted: PlantedBugs::default(),
        }
    }

    /// The boot-time attestation key (exposed for verification in tests
    /// and for the OS-side `verify` helper an untrusted OS does *not* get;
    /// see the NI suite for what the adversary may observe).
    pub fn attest_key(&self) -> &[u8; 32] {
        &self.attest_key
    }

    /// Handles one secure monitor call from the OS.
    ///
    /// The machine must be in the normal world (the OS's context); the
    /// call takes the SMC exception into monitor mode, dispatches, applies
    /// the register-hygiene rules (non-volatile preserved, `R2`/`R3`/`R12`
    /// scrubbed, results in `R0`/`R1`), and returns to the OS.
    pub fn smc(&mut self, m: &mut Machine, call: u32, args: [u32; 4]) -> SmcResult {
        let os_psr = m.cpsr;
        // Marshal arguments as the OS's SMC stub would.
        m.set_reg(Reg::R(0), call);
        for (i, a) in args.iter().enumerate() {
            m.set_reg(Reg::R(1 + i as u8), *a);
        }
        m.take_exception(ExceptionKind::Smc, 0);
        m.set_scr_ns(false); // Secure world while the monitor runs.
        m.charge(costs::SMC_DISPATCH + costs::SMC_SAVE_REGS);
        m.trace.record(m.cycles, Event::SmcEntry { call });

        let (err, retval) = self.dispatch(m);

        // Return path: back to monitor mode (nested handlers may have left
        // us in SVC/IRQ/abort modes), restore the OS context, scrub.
        m.charge(costs::SMC_RESTORE_SCRUB);
        m.cpsr = Psr::privileged(Mode::Monitor);
        m.regs.set_spsr(Mode::Monitor, os_psr);
        m.regs.set_lr_banked(Bank::Mon, 0);
        m.set_reg(Reg::R(0), err.code());
        m.set_reg(Reg::R(1), retval);
        // Argument and scratch registers are zeroed "to prevent
        // information leaks" (§5.2); non-volatile R5–R11 are preserved.
        // (The SMC ABI passes the call number in R0 and up to four
        // arguments in R1–R4, so R2–R4 are the OS's to lose.)
        for i in [2u8, 3, 4, 12] {
            m.set_reg(Reg::R(i), 0);
        }
        m.trace.record(
            m.cycles,
            Event::SmcExit {
                call,
                err: err.code(),
                retval,
            },
        );
        m.set_scr_ns(true);
        m.exception_return().expect("monitor mode has an SPSR");
        SmcResult { err, retval }
    }

    fn dispatch(&mut self, m: &mut Machine) -> (KomErr, u32) {
        let call = m.reg(Reg::R(0));
        let a = [
            m.reg(Reg::R(1)),
            m.reg(Reg::R(2)),
            m.reg(Reg::R(3)),
            m.reg(Reg::R(4)),
        ];
        match SmcCall::from_code(call) {
            None => (KomErr::InvalidCall, 0),
            Some(SmcCall::GetPhysPages) => (KomErr::Ok, self.layout.npages as u32),
            Some(SmcCall::InitAddrspace) => (self.sm_init_addrspace(m, a[0], a[1]), 0),
            Some(SmcCall::InitThread) => (self.sm_init_thread(m, a[0], a[1], a[2]), 0),
            Some(SmcCall::InitL2PTable) => (self.sm_init_l2pt(m, a[0], a[1], a[2]), 0),
            Some(SmcCall::AllocSpare) => (self.sm_alloc_spare(m, a[0], a[1]), 0),
            Some(SmcCall::MapSecure) => (self.sm_map_secure(m, a[0], a[1], a[2], a[3]), 0),
            Some(SmcCall::MapInsecure) => (self.sm_map_insecure(m, a[0], a[1], a[2]), 0),
            Some(SmcCall::Finalise) => (self.sm_finalise(m, a[0]), 0),
            Some(SmcCall::Enter) => self.sm_enter(m, a[0], [a[1], a[2], a[3]]),
            Some(SmcCall::Resume) => self.sm_resume(m, a[0]),
            Some(SmcCall::Stop) => (self.sm_stop(m, a[0]), 0),
            Some(SmcCall::Remove) => (self.sm_remove(m, a[0]), 0),
        }
    }

    // --- Validation helpers -------------------------------------------------

    fn valid_page(&self, pg: u32) -> bool {
        (pg as usize) < self.layout.npages
    }

    fn meta(&self, m: &mut Machine, pg: u32) -> (u32, u32) {
        pgdb::meta(m, &self.layout, pg as usize).expect("monitor metadata access")
    }

    fn asp_state(&self, m: &mut Machine, asp: u32) -> u32 {
        pgdb::read_word(m, &self.layout, asp as usize, asp_off::STATE)
            .expect("monitor addrspace access")
    }

    /// Validates that `asp` names an address space and returns the error
    /// for a required `INIT` state.
    fn check_init_addrspace(&self, m: &mut Machine, asp: u32) -> Result<(), KomErr> {
        if !self.valid_page(asp) {
            return Err(KomErr::InvalidPageNo);
        }
        let (ty, _) = self.meta(m, asp);
        if ty != ptype::ADDRSPACE {
            return Err(KomErr::InvalidAddrspace);
        }
        match self.asp_state(m, asp) {
            astate::INIT => Ok(()),
            astate::FINAL => Err(KomErr::AlreadyFinal),
            _ => Err(KomErr::Stopped),
        }
    }

    fn check_free(&self, m: &mut Machine, pg: u32) -> Result<(), KomErr> {
        if !self.valid_page(pg) {
            return Err(KomErr::InvalidPageNo);
        }
        let (ty, _) = self.meta(m, pg);
        if ty != ptype::FREE {
            return Err(KomErr::PageInUse);
        }
        Ok(())
    }

    fn add_ref(&self, m: &mut Machine, asp: u32, delta: i32) {
        let rc = pgdb::read_word(m, &self.layout, asp as usize, asp_off::REFCOUNT)
            .expect("monitor addrspace access");
        let rc = rc.checked_add_signed(delta).expect("refcount underflow");
        pgdb::write_word(m, &self.layout, asp as usize, asp_off::REFCOUNT, rc)
            .expect("monitor addrspace access");
    }

    /// Extends the running measurement of `asp` with block-aligned words.
    fn extend_measurement(&self, m: &mut Machine, asp: u32, words: &[u32]) {
        debug_assert_eq!(words.len() % BLOCK_WORDS, 0);
        let l = self.layout.clone();
        let mut h = [0u32; 8];
        for (i, hw) in h.iter_mut().enumerate() {
            *hw = pgdb::read_word(m, &l, asp as usize, asp_off::MEAS_H + i as u32)
                .expect("monitor addrspace access");
        }
        Sha256::compress_words(&mut h, words);
        m.charge(costs::SHA_BLOCK * (words.len() / BLOCK_WORDS) as u64);
        for (i, hw) in h.iter().enumerate() {
            pgdb::write_word(m, &l, asp as usize, asp_off::MEAS_H + i as u32, *hw)
                .expect("monitor addrspace access");
        }
        let nb = pgdb::read_word(m, &l, asp as usize, asp_off::MEAS_NBLOCKS)
            .expect("monitor addrspace access");
        pgdb::write_word(
            m,
            &l,
            asp as usize,
            asp_off::MEAS_NBLOCKS,
            nb + (words.len() / BLOCK_WORDS) as u32,
        )
        .expect("monitor addrspace access");
    }

    fn measure_header(&self, m: &mut Machine, asp: u32, op: MeasureOp, args: &[u32]) {
        let mut header = [0u32; BLOCK_WORDS];
        header[0] = op as u32;
        header[1..1 + args.len()].copy_from_slice(args);
        self.extend_measurement(m, asp, &header);
    }

    /// Locates the L2 page-table page and slot for `mapping` by reading the
    /// hardware L1 table, verifying ownership via metadata.
    fn locate_l2(&self, m: &mut Machine, asp: u32, mapping: Mapping) -> Result<(u32, u32), KomErr> {
        if !mapping.in_bounds() {
            return Err(KomErr::InvalidMapping);
        }
        let l1pt = pgdb::read_word(m, &self.layout, asp as usize, asp_off::L1PT)
            .expect("monitor addrspace access");
        // Hardware L1 index has 1 MB granularity.
        let hw_index = mapping.vpn >> 8;
        let desc = pgdb::read_word(m, &self.layout, l1pt as usize, hw_index)
            .expect("monitor pagetable access");
        let Some(coarse_pa) = ptw::decode_l1_desc(desc) else {
            return Err(KomErr::InvalidMapping);
        };
        let l2pg_pa = coarse_pa & !(PAGE_SIZE - 1);
        let Some(l2pg) = self.layout.pa_to_page(l2pg_pa) else {
            return Err(KomErr::InvalidMapping);
        };
        let (ty, owner) = self.meta(m, l2pg as u32);
        if ty != ptype::L2PT || owner != asp {
            return Err(KomErr::InvalidMapping);
        }
        Ok((l2pg as u32, mapping.l2_slot() as u32))
    }

    // --- Structural SMCs ----------------------------------------------------

    fn sm_init_addrspace(&mut self, m: &mut Machine, asp: u32, l1pt: u32) -> KomErr {
        m.charge(costs::VALIDATE);
        if !self.valid_page(asp) || !self.valid_page(l1pt) {
            return KomErr::InvalidPageNo;
        }
        if asp == l1pt {
            return KomErr::PageInUse; // The §9.1 aliasing bug.
        }
        if self.check_free(m, asp).is_err() || self.check_free(m, l1pt).is_err() {
            return KomErr::PageInUse;
        }
        let l = self.layout.clone();
        pgdb::zero_page(m, &l, asp as usize).expect("monitor pool access");
        pgdb::zero_page(m, &l, l1pt as usize).expect("monitor pool access");
        pgdb::write_word(m, &l, asp as usize, asp_off::L1PT, l1pt).expect("pool");
        pgdb::write_word(m, &l, asp as usize, asp_off::REFCOUNT, 1).expect("pool");
        pgdb::write_word(m, &l, asp as usize, asp_off::STATE, astate::INIT).expect("pool");
        for (i, hw) in H0.iter().enumerate() {
            pgdb::write_word(m, &l, asp as usize, asp_off::MEAS_H + i as u32, *hw).expect("pool");
        }
        pgdb::set_meta(m, &l, asp as usize, ptype::ADDRSPACE, 0).expect("meta");
        pgdb::set_meta(m, &l, l1pt as usize, ptype::L1PT, asp).expect("meta");
        m.trace
            .record(m.cycles, Event::EnclaveInit { addrspace: asp });
        KomErr::Ok
    }

    fn sm_init_thread(&mut self, m: &mut Machine, asp: u32, th: u32, entry: u32) -> KomErr {
        m.charge(costs::VALIDATE);
        if !self.valid_page(asp) || !self.valid_page(th) {
            return KomErr::InvalidPageNo;
        }
        if let Err(e) = self.check_init_addrspace(m, asp) {
            return e;
        }
        if let Err(e) = self.check_free(m, th) {
            return e;
        }
        let l = self.layout.clone();
        pgdb::zero_page(m, &l, th as usize).expect("pool");
        pgdb::write_word(m, &l, th as usize, th_off::ENTRY, entry).expect("pool");
        pgdb::set_meta(m, &l, th as usize, ptype::THREAD, asp).expect("meta");
        self.add_ref(m, asp, 1);
        self.measure_header(m, asp, MeasureOp::InitThread, &[entry]);
        KomErr::Ok
    }

    /// Writes the four hardware L1 descriptors for Komodo slot `l1index`,
    /// pointing at the four coarse tables inside `l2pt`'s page.
    fn write_l1_slot(&self, m: &mut Machine, l1pt: u32, l1index: u32, l2pt: u32) {
        let l2_pa = self.layout.page_pa(l2pt as usize);
        for k in 0..4 {
            let desc = ptw::l1_coarse_desc(l2_pa + k * 0x400);
            pgdb::write_word(m, &self.layout, l1pt as usize, l1index * 4 + k, desc)
                .expect("pagetable");
        }
        m.note_pagetable_store();
    }

    fn l1_slot_empty(&self, m: &mut Machine, l1pt: u32, l1index: u32) -> bool {
        pgdb::read_word(m, &self.layout, l1pt as usize, l1index * 4).expect("pagetable") == 0
    }

    fn sm_init_l2pt(&mut self, m: &mut Machine, asp: u32, l2pt: u32, l1index: u32) -> KomErr {
        m.charge(costs::VALIDATE);
        if !self.valid_page(asp) || !self.valid_page(l2pt) {
            return KomErr::InvalidPageNo;
        }
        if let Err(e) = self.check_init_addrspace(m, asp) {
            return e;
        }
        if let Err(e) = self.check_free(m, l2pt) {
            return e;
        }
        if l1index >= 256 {
            return KomErr::InvalidMapping;
        }
        let l1pt = pgdb::read_word(m, &self.layout, asp as usize, asp_off::L1PT).expect("pool");
        if !self.l1_slot_empty(m, l1pt, l1index) {
            return KomErr::AddrInUse;
        }
        let l = self.layout.clone();
        pgdb::zero_page(m, &l, l2pt as usize).expect("pool");
        pgdb::set_meta(m, &l, l2pt as usize, ptype::L2PT, asp).expect("meta");
        self.write_l1_slot(m, l1pt, l1index, l2pt);
        self.add_ref(m, asp, 1);
        self.measure_header(m, asp, MeasureOp::InitL2PTable, &[l1index]);
        KomErr::Ok
    }

    fn sm_alloc_spare(&mut self, m: &mut Machine, asp: u32, spare: u32) -> KomErr {
        m.charge(costs::VALIDATE);
        if !self.valid_page(asp) || !self.valid_page(spare) {
            return KomErr::InvalidPageNo;
        }
        let (ty, _) = self.meta(m, asp);
        if ty != ptype::ADDRSPACE {
            return KomErr::InvalidAddrspace;
        }
        if self.asp_state(m, asp) == astate::STOPPED {
            return KomErr::Stopped;
        }
        if let Err(e) = self.check_free(m, spare) {
            return e;
        }
        pgdb::set_meta(m, &self.layout, spare as usize, ptype::SPARE, asp).expect("meta");
        self.add_ref(m, asp, 1);
        KomErr::Ok
    }

    fn sm_map_secure(
        &mut self,
        m: &mut Machine,
        asp: u32,
        data: u32,
        map_word: u32,
        content_pfn: u32,
    ) -> KomErr {
        m.charge(costs::VALIDATE);
        let mapping = Mapping::unpack(map_word);
        if !self.valid_page(asp) || !self.valid_page(data) {
            return KomErr::InvalidPageNo;
        }
        if let Err(e) = self.check_init_addrspace(m, asp) {
            return e;
        }
        if let Err(e) = self.check_free(m, data) {
            return e;
        }
        if !self.params.valid_insecure_pfn(content_pfn) {
            return KomErr::InvalidInsecure;
        }
        if !mapping.r {
            return KomErr::InvalidMapping;
        }
        let (l2pg, slot) = match self.locate_l2(m, asp, mapping) {
            Ok(x) => x,
            Err(e) => return e,
        };
        if pgdb::read_word(m, &self.layout, l2pg as usize, slot).expect("pagetable") != 0 {
            return KomErr::AddrInUse;
        }
        // Copy and measure the initial contents.
        let src = content_pfn << 12;
        let mut contents = vec![0u32; 1024];
        for (i, c) in contents.iter_mut().enumerate() {
            *c = m
                .mon_read(src + (i as u32) * 4)
                .expect("validated insecure page");
        }
        let l = self.layout.clone();
        for (i, c) in contents.iter().enumerate() {
            pgdb::write_word(m, &l, data as usize, i as u32, *c).expect("pool");
        }
        m.charge(costs::DCACHE_PAGE);
        pgdb::set_meta(m, &l, data as usize, ptype::DATA, asp).expect("meta");
        let perms = PagePerms {
            r: true,
            w: mapping.w,
            x: mapping.x,
        };
        let desc = ptw::l2_page_desc(l.page_pa(data as usize), perms, false);
        pgdb::write_word(m, &l, l2pg as usize, slot, desc).expect("pagetable");
        m.note_pagetable_store();
        self.add_ref(m, asp, 1);
        self.measure_header(m, asp, MeasureOp::MapSecure, &[map_word]);
        self.extend_measurement(m, asp, &contents);
        KomErr::Ok
    }

    fn sm_map_insecure(&mut self, m: &mut Machine, asp: u32, map_word: u32, pfn: u32) -> KomErr {
        m.charge(costs::VALIDATE);
        let mapping = Mapping::unpack(map_word);
        if !self.valid_page(asp) {
            return KomErr::InvalidPageNo;
        }
        if let Err(e) = self.check_init_addrspace(m, asp) {
            return e;
        }
        if mapping.x {
            return KomErr::InvalidMapping;
        }
        if !self.params.valid_insecure_pfn(pfn) {
            return KomErr::InvalidInsecure;
        }
        if !mapping.r {
            return KomErr::InvalidMapping;
        }
        let (l2pg, slot) = match self.locate_l2(m, asp, mapping) {
            Ok(x) => x,
            Err(e) => return e,
        };
        if pgdb::read_word(m, &self.layout, l2pg as usize, slot).expect("pagetable") != 0 {
            return KomErr::AddrInUse;
        }
        let perms = PagePerms {
            r: true,
            w: mapping.w,
            x: false,
        };
        let desc = ptw::l2_page_desc(pfn << 12, perms, true);
        pgdb::write_word(m, &self.layout, l2pg as usize, slot, desc).expect("pagetable");
        m.note_pagetable_store();
        self.measure_header(m, asp, MeasureOp::MapInsecure, &[map_word]);
        KomErr::Ok
    }

    fn sm_finalise(&mut self, m: &mut Machine, asp: u32) -> KomErr {
        m.charge(costs::VALIDATE);
        if !self.valid_page(asp) {
            return KomErr::InvalidPageNo;
        }
        if let Err(e) = self.check_init_addrspace(m, asp) {
            return e;
        }
        let l = self.layout.clone();
        let mut h = [0u32; 8];
        for (i, hw) in h.iter_mut().enumerate() {
            *hw = pgdb::read_word(m, &l, asp as usize, asp_off::MEAS_H + i as u32).expect("pool");
        }
        let nb = pgdb::read_word(m, &l, asp as usize, asp_off::MEAS_NBLOCKS).expect("pool");
        let digest = Sha256::finish_blocks(h, nb as u64);
        m.charge(costs::SHA_BLOCK);
        for (i, w) in digest.0.iter().enumerate() {
            pgdb::write_word(m, &l, asp as usize, asp_off::MEAS_DIGEST + i as u32, *w)
                .expect("pool");
        }
        pgdb::write_word(m, &l, asp as usize, asp_off::MEAS_DONE, 1).expect("pool");
        pgdb::write_word(m, &l, asp as usize, asp_off::STATE, astate::FINAL).expect("pool");
        KomErr::Ok
    }

    fn sm_stop(&mut self, m: &mut Machine, asp: u32) -> KomErr {
        m.charge(costs::VALIDATE);
        if !self.valid_page(asp) {
            return KomErr::InvalidPageNo;
        }
        let (ty, _) = self.meta(m, asp);
        if ty != ptype::ADDRSPACE {
            return KomErr::InvalidAddrspace;
        }
        pgdb::write_word(
            m,
            &self.layout,
            asp as usize,
            asp_off::STATE,
            astate::STOPPED,
        )
        .expect("pool");
        KomErr::Ok
    }

    fn sm_remove(&mut self, m: &mut Machine, pg: u32) -> KomErr {
        m.charge(costs::VALIDATE);
        if !self.valid_page(pg) {
            return KomErr::InvalidPageNo;
        }
        let (ty, owner) = self.meta(m, pg);
        match ty {
            ptype::FREE => KomErr::Ok,
            ptype::ADDRSPACE => {
                let rc =
                    pgdb::read_word(m, &self.layout, pg as usize, asp_off::REFCOUNT).expect("pool");
                if rc != 0 {
                    return KomErr::PagesRemain;
                }
                pgdb::set_meta(m, &self.layout, pg as usize, ptype::FREE, 0).expect("meta");
                m.trace.record(m.cycles, Event::EnclaveDestroy { page: pg });
                KomErr::Ok
            }
            ptype::SPARE => {
                pgdb::set_meta(m, &self.layout, pg as usize, ptype::FREE, 0).expect("meta");
                if !self.planted.refcount_leak_on_remove {
                    self.add_ref(m, owner, -1);
                }
                KomErr::Ok
            }
            _ => {
                if self.asp_state(m, owner) != astate::STOPPED {
                    return KomErr::NotStopped;
                }
                pgdb::set_meta(m, &self.layout, pg as usize, ptype::FREE, 0).expect("meta");
                self.add_ref(m, owner, -1);
                KomErr::Ok
            }
        }
    }

    // --- Enclave execution --------------------------------------------------

    fn check_thread(&self, m: &mut Machine, th: u32) -> Result<u32, KomErr> {
        if !self.valid_page(th) {
            return Err(KomErr::InvalidPageNo);
        }
        let (ty, owner) = self.meta(m, th);
        if ty != ptype::THREAD {
            return Err(KomErr::InvalidPageNo);
        }
        match self.asp_state(m, owner) {
            astate::FINAL => Ok(owner),
            astate::INIT => Err(KomErr::NotFinal),
            _ => Err(KomErr::Stopped),
        }
    }

    fn sm_enter(&mut self, m: &mut Machine, th: u32, args: [u32; 3]) -> (KomErr, u32) {
        m.charge(costs::VALIDATE);
        let asp = match self.check_thread(m, th) {
            Ok(a) => a,
            Err(e) => return (e, 0),
        };
        if pgdb::read_word(m, &self.layout, th as usize, th_off::ENTERED).expect("pool") != 0 {
            return (KomErr::AlreadyEntered, 0);
        }
        let entry = pgdb::read_word(m, &self.layout, th as usize, th_off::ENTRY).expect("pool");
        let mut regs = [0u32; 15];
        regs[..3].copy_from_slice(&args);
        m.trace.record(m.cycles, Event::EnclaveEnter { thread: th });
        self.run_enclave(m, th, asp, regs, entry, Psr::user())
    }

    fn sm_resume(&mut self, m: &mut Machine, th: u32) -> (KomErr, u32) {
        m.charge(costs::VALIDATE);
        let asp = match self.check_thread(m, th) {
            Ok(a) => a,
            Err(e) => return (e, 0),
        };
        if pgdb::read_word(m, &self.layout, th as usize, th_off::ENTERED).expect("pool") == 0 {
            return (KomErr::NotEntered, 0);
        }
        let l = self.layout.clone();
        let mut regs = [0u32; 15];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = pgdb::read_word(m, &l, th as usize, th_off::REGS + i as u32).expect("pool");
        }
        let pc = pgdb::read_word(m, &l, th as usize, th_off::PC).expect("pool");
        let flags = pgdb::read_word(m, &l, th as usize, th_off::FLAGS).expect("pool");
        pgdb::write_word(m, &l, th as usize, th_off::ENTERED, 0).expect("pool");
        m.charge(costs::CONTEXT_SWITCH);
        let mut psr = Psr::user();
        psr.n = flags & (1 << 31) != 0;
        psr.z = flags & (1 << 30) != 0;
        psr.c = flags & (1 << 29) != 0;
        psr.v = flags & (1 << 28) != 0;
        m.trace
            .record(m.cycles, Event::EnclaveResume { thread: th });
        self.run_enclave(m, th, asp, regs, pc, psr)
    }

    /// The single user-mode entry point and its exception loop (Figure 3).
    fn run_enclave(
        &mut self,
        m: &mut Machine,
        th: u32,
        asp: u32,
        regs: [u32; 15],
        pc: u32,
        psr: Psr,
    ) -> (KomErr, u32) {
        if self.conservative_save {
            m.charge(costs::BANKED_SAVE_RESTORE);
        }
        let l1pt = pgdb::read_word(m, &self.layout, asp as usize, asp_off::L1PT).expect("pool");
        let ttbr0 = self.layout.page_pa(l1pt as usize);
        // Optimisation knob (§8.1): the unoptimised prototype reloads
        // TTBR0 and flushes unconditionally; the optimised variant skips
        // both for repeated invocation of the same enclave when the TLB
        // is still consistent.
        let cur = m.cp15.mmu(komodo_armv7::mode::World::Secure).ttbr0;
        if self.always_flush_tlb || cur != ttbr0 {
            m.load_ttbr0(ttbr0);
            m.tlb_flush();
        } else if !m.tlb.is_consistent() {
            m.tlb_flush();
        }
        m.regs.set_user_visible(&regs);
        // Enter user mode from monitor mode via `MOVS PC, LR`.
        m.regs.set_spsr(Mode::Monitor, psr);
        m.regs.set_lr_banked(Bank::Mon, pc);
        m.cpsr = Psr::privileged(Mode::Monitor);
        m.exception_return().expect("monitor SPSR just written");

        let result = loop {
            let exit = m
                .run_user(self.step_budget)
                .expect("monitor enforces the user-execution contract");
            match exit {
                ExitReason::Svc { .. } => {
                    let call = m.reg(Reg::R(0));
                    if SvcCall::from_code(call) == Some(SvcCall::Exit) {
                        break (KomErr::Ok, m.reg(Reg::R(1)));
                    }
                    self.handle_svc(m, th, asp);
                    if !m.tlb.is_consistent() {
                        m.tlb_flush();
                    }
                    // Return to the enclave (SVC mode → user).
                    m.exception_return().expect("SVC mode has an SPSR");
                }
                ExitReason::Irq | ExitReason::Fiq => {
                    let bank = if exit == ExitReason::Irq {
                        Bank::Irq
                    } else {
                        Bank::Fiq
                    };
                    let resume_pc = m.regs.lr_banked(bank);
                    let spsr = m.regs.spsr(m.cpsr.mode).expect("exception mode");
                    self.save_context(m, th, resume_pc, spsr);
                    break (KomErr::Interrupted, 0);
                }
                ExitReason::StepLimit => {
                    // Burst budget exhausted: architecturally this is the
                    // OS timer firing; treat as an interrupt.
                    let resume_pc = m.pc;
                    let spsr = m.cpsr;
                    m.take_exception(ExceptionKind::Irq, resume_pc);
                    self.save_context(m, th, resume_pc, spsr);
                    break (KomErr::Interrupted, 0);
                }
                ExitReason::DataAbort(_)
                | ExitReason::PrefetchAbort(_)
                | ExitReason::Undefined(_) => {
                    // "The thread simply exits with an error code (but no
                    // other information, to avoid side-channel leaks)" (§4).
                    break (KomErr::Fault, 0);
                }
            }
        };
        // Exit path: scrub the user register file before the OS can look.
        if !(self.planted.leak_regs_on_interrupt && result.0 == KomErr::Interrupted) {
            m.regs.scrub_user_visible();
        }
        if self.conservative_save {
            m.charge(costs::BANKED_SAVE_RESTORE);
        }
        m.trace.record(
            m.cycles,
            Event::EnclaveExit {
                thread: th,
                err: result.0.code(),
            },
        );
        result
    }

    fn save_context(&self, m: &mut Machine, th: u32, pc: u32, spsr: Psr) {
        let l = self.layout.clone();
        let regs = m.regs.user_visible();
        for (i, r) in regs.iter().enumerate() {
            pgdb::write_word(m, &l, th as usize, th_off::REGS + i as u32, *r).expect("pool");
        }
        pgdb::write_word(m, &l, th as usize, th_off::PC, pc).expect("pool");
        let flags = spsr.encode() & 0xf000_0000;
        pgdb::write_word(m, &l, th as usize, th_off::FLAGS, flags).expect("pool");
        pgdb::write_word(m, &l, th as usize, th_off::ENTERED, 1).expect("pool");
        m.charge(costs::CONTEXT_SWITCH);
    }

    // --- SVC handling -------------------------------------------------------

    fn handle_svc(&mut self, m: &mut Machine, th: u32, asp: u32) {
        m.charge(costs::SVC_DISPATCH);
        let call = m.reg(Reg::R(0));
        let mut r = [0u32; 9];
        for (i, v) in r.iter_mut().enumerate() {
            *v = m.reg(Reg::R(i as u8));
        }
        match SvcCall::from_code(call) {
            Some(SvcCall::Exit) => unreachable!("handled by the enter loop"),
            Some(SvcCall::GetRandom) => {
                m.set_reg(Reg::R(0), KomErr::Ok.code());
                let v = self.drbg.next_u32();
                m.charge(costs::SHA_BLOCK); // DRBG output expansion.
                m.set_reg(Reg::R(1), v);
            }
            Some(SvcCall::Attest) => {
                let digest = self.read_measurement_digest(m, asp);
                let mut data = [0u32; 8];
                data.copy_from_slice(&r[1..9]);
                let mac = komodo_spec::svc::attest_mac(&self.attest_key, &digest, &data);
                m.charge(costs::SHA_BLOCK * 5); // HMAC of one 64-byte message.
                m.set_reg(Reg::R(0), KomErr::Ok.code());
                for (i, w) in mac.0.iter().enumerate() {
                    m.set_reg(Reg::R(1 + i as u8), *w);
                }
            }
            Some(SvcCall::VerifyStep0) | Some(SvcCall::VerifyStep1) => {
                let base = if call == SvcCall::VerifyStep0 as u32 {
                    th_off::VERIFY
                } else {
                    th_off::VERIFY + 8
                };
                let l = self.layout.clone();
                for i in 0..8u32 {
                    pgdb::write_word(m, &l, th as usize, base + i, r[1 + i as usize])
                        .expect("pool");
                }
                m.set_reg(Reg::R(0), KomErr::Ok.code());
            }
            Some(SvcCall::VerifyStep2) => {
                let l = self.layout.clone();
                let mut buf = [0u32; 16];
                for (i, b) in buf.iter_mut().enumerate() {
                    *b = pgdb::read_word(m, &l, th as usize, th_off::VERIFY + i as u32)
                        .expect("pool");
                }
                let mut data = [0u32; 8];
                data.copy_from_slice(&buf[..8]);
                let mut measure = [0u32; 8];
                measure.copy_from_slice(&buf[8..]);
                let mut mac = [0u32; 8];
                mac.copy_from_slice(&r[1..9]);
                let ok = komodo_spec::svc::verify(&self.attest_key, &data, &measure, &mac);
                m.charge(costs::SHA_BLOCK * 5 + 64); // MAC + constant-time compare.
                m.set_reg(Reg::R(0), KomErr::Ok.code());
                m.set_reg(Reg::R(1), ok as u32);
            }
            Some(SvcCall::InitL2PTable) => {
                let e = self.svc_init_l2pt(m, asp, r[1], r[2]);
                m.set_reg(Reg::R(0), e.code());
            }
            Some(SvcCall::MapData) => {
                let e = self.svc_map_data(m, asp, r[1], Mapping::unpack(r[2]));
                m.set_reg(Reg::R(0), e.code());
            }
            Some(SvcCall::UnmapData) => {
                let e = self.svc_unmap_data(m, asp, r[1], Mapping::unpack(r[2]));
                m.set_reg(Reg::R(0), e.code());
            }
            None => {
                m.set_reg(Reg::R(0), KomErr::InvalidCall.code());
            }
        }
    }

    fn read_measurement_digest(&self, m: &mut Machine, asp: u32) -> Digest {
        let mut d = [0u32; 8];
        for (i, w) in d.iter_mut().enumerate() {
            *w = pgdb::read_word(
                m,
                &self.layout,
                asp as usize,
                asp_off::MEAS_DIGEST + i as u32,
            )
            .expect("pool");
        }
        Digest(d)
    }

    fn check_spare(&self, m: &mut Machine, asp: u32, pg: u32) -> Result<(), KomErr> {
        if !self.valid_page(pg) {
            return Err(KomErr::InvalidPageNo);
        }
        let (ty, owner) = self.meta(m, pg);
        if ty != ptype::SPARE || owner != asp {
            return Err(KomErr::NotSpare);
        }
        Ok(())
    }

    fn svc_init_l2pt(&mut self, m: &mut Machine, asp: u32, spare: u32, l1index: u32) -> KomErr {
        if let Err(e) = self.check_spare(m, asp, spare) {
            return e;
        }
        if l1index >= 256 {
            return KomErr::InvalidMapping;
        }
        let l1pt = pgdb::read_word(m, &self.layout, asp as usize, asp_off::L1PT).expect("pool");
        if !self.l1_slot_empty(m, l1pt, l1index) {
            return KomErr::AddrInUse;
        }
        let l = self.layout.clone();
        pgdb::zero_page(m, &l, spare as usize).expect("pool");
        pgdb::set_meta(m, &l, spare as usize, ptype::L2PT, asp).expect("meta");
        self.write_l1_slot(m, l1pt, l1index, spare);
        KomErr::Ok
    }

    fn svc_map_data(&mut self, m: &mut Machine, asp: u32, spare: u32, mapping: Mapping) -> KomErr {
        if let Err(e) = self.check_spare(m, asp, spare) {
            return e;
        }
        if !mapping.r {
            return KomErr::InvalidMapping;
        }
        let (l2pg, slot) = match self.locate_l2(m, asp, mapping) {
            Ok(x) => x,
            Err(e) => return e,
        };
        if pgdb::read_word(m, &self.layout, l2pg as usize, slot).expect("pagetable") != 0 {
            return KomErr::AddrInUse;
        }
        let l = self.layout.clone();
        pgdb::zero_page(m, &l, spare as usize).expect("pool");
        m.charge(costs::DCACHE_PAGE);
        pgdb::set_meta(m, &l, spare as usize, ptype::DATA, asp).expect("meta");
        let perms = PagePerms {
            r: true,
            w: mapping.w,
            x: mapping.x,
        };
        let desc = ptw::l2_page_desc(l.page_pa(spare as usize), perms, false);
        pgdb::write_word(m, &l, l2pg as usize, slot, desc).expect("pagetable");
        m.note_pagetable_store();
        KomErr::Ok
    }

    fn svc_unmap_data(&mut self, m: &mut Machine, asp: u32, data: u32, mapping: Mapping) -> KomErr {
        if !self.valid_page(data) {
            return KomErr::InvalidPageNo;
        }
        let (ty, owner) = self.meta(m, data);
        if ty != ptype::DATA || owner != asp {
            return KomErr::InvalidPageNo;
        }
        let (l2pg, slot) = match self.locate_l2(m, asp, mapping) {
            Ok(x) => x,
            Err(e) => return e,
        };
        let desc = pgdb::read_word(m, &self.layout, l2pg as usize, slot).expect("pagetable");
        let expected_pa = self.layout.page_pa(data as usize);
        match ptw::decode_l2_desc(desc) {
            Some(t) if t.pa == expected_pa && !t.ns => {}
            _ => return KomErr::InvalidMapping,
        }
        pgdb::write_word(m, &self.layout, l2pg as usize, slot, 0).expect("pagetable");
        m.note_pagetable_store();
        pgdb::set_meta(m, &self.layout, data as usize, ptype::SPARE, asp).expect("meta");
        KomErr::Ok
    }
}

#[cfg(test)]
mod send_tests {
    use super::*;

    /// The monitor's state is owned plain data (layout, params, derived
    /// key material, DRBG, toggles) — it must stay `Send` so a booted
    /// platform can migrate between fleet worker threads. Compile-time
    /// assertion: a future `Rc`/raw-pointer field fails the build here.
    #[test]
    fn monitor_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Monitor>();
        assert_send::<SmcResult>();
    }
}
