//! Bootloader (paper §7.2, §8.1).
//!
//! "We implemented a simple bootloader that loads the monitor in secure
//! world, setting up its memory map and exception vectors ... The
//! bootloader also reserves a configurable amount of RAM as secure memory,
//! before switching to normal world to boot Linux." Here the bootloader
//! builds the machine's memory regions, derives the boot-time attestation
//! secret from the (modelled) hardware RNG, and leaves the machine in
//! normal-world supervisor mode, ready for the OS.

use komodo_armv7::mode::Mode;
use komodo_armv7::psr::Psr;
use komodo_armv7::Machine;

use crate::layout::MonitorLayout;
use crate::monitor::Monitor;

/// Cycle cost of the boot sequence (image copy, vector setup, key
/// derivation); charged once.
const BOOT_COST: u64 = 20_000;

/// Boots the platform: returns the machine (in normal-world supervisor
/// mode, as if Linux were about to start) and the initialised monitor.
///
/// `seed` seeds the modelled hardware RNG, from which the attestation
/// secret is derived; experiments pass a fixed seed for reproducibility.
pub fn boot(layout: MonitorLayout, seed: u64) -> (Machine, Monitor) {
    let mut m = Machine::new();
    layout.build_memory(&mut m);
    let monitor = Monitor::new(layout, seed);
    m.charge(BOOT_COST);
    // Leave secure world configured and switch to the normal world OS.
    m.set_scr_ns(true);
    m.cpsr = Psr::privileged(Mode::Supervisor);
    (m, monitor)
}

/// Re-boots an already-constructed machine in place: the fast pooling
/// path. The machine's memory regions must have been built for `layout`
/// (by a prior [`boot`] / [`MonitorLayout::build_memory`]); they are
/// zeroed and reused rather than reallocated, and every architectural
/// field ends bit-for-bit equal to a fresh [`boot`] with the same
/// arguments — same boot-cost charge, same world switch, same
/// seed-derived attestation key.
pub fn reboot(m: &mut Machine, layout: MonitorLayout, seed: u64) -> Monitor {
    debug_assert!(
        m.mem.is_mapped(layout.monitor_base) && m.mem.is_mapped(layout.page_pa(0)),
        "reboot requires a machine built for this layout"
    );
    m.reboot();
    let monitor = Monitor::new(layout, seed);
    m.charge(BOOT_COST);
    m.set_scr_ns(true);
    m.cpsr = Psr::privileged(Mode::Supervisor);
    monitor
}

#[cfg(test)]
mod tests {
    use super::*;
    use komodo_armv7::mode::World;

    #[test]
    fn boot_leaves_machine_in_normal_world() {
        let (m, _) = boot(MonitorLayout::new(1 << 20, 16), 42);
        assert_eq!(m.world(), World::Normal);
        assert_eq!(m.cpsr.mode, Mode::Supervisor);
        assert!(m.cycles >= BOOT_COST);
    }

    #[test]
    fn attestation_key_is_seed_deterministic() {
        let (_, a) = boot(MonitorLayout::new(1 << 20, 16), 7);
        let (_, b) = boot(MonitorLayout::new(1 << 20, 16), 7);
        let (_, c) = boot(MonitorLayout::new(1 << 20, 16), 8);
        assert_eq!(a.attest_key(), b.attest_key());
        assert_ne!(a.attest_key(), c.attest_key());
    }

    #[test]
    fn reboot_equals_fresh_boot_bit_for_bit() {
        use komodo_armv7::mem::AccessAttrs;
        let layout = MonitorLayout::new(1 << 20, 16);
        let (mut m, _) = boot(layout.clone(), 3);
        // Dirty insecure RAM, secure RAM, and the cycle counter.
        m.mem.write(0x100, 5, AccessAttrs::NORMAL).unwrap();
        m.mem
            .write(layout.page_pa(2), 9, AccessAttrs::MONITOR)
            .unwrap();
        m.charge(1234);
        let mon = reboot(&mut m, layout.clone(), 7);
        let (fresh_m, fresh_mon) = boot(layout, 7);
        assert!(m == fresh_m, "reboot must equal a fresh boot");
        assert_eq!(mon.attest_key(), fresh_mon.attest_key());
    }

    #[test]
    fn secure_memory_invisible_to_normal_world() {
        use komodo_armv7::mem::AccessAttrs;
        let layout = MonitorLayout::new(1 << 20, 16);
        let (mut m, mon) = boot(layout, 1);
        let pa = mon.layout.page_pa(0);
        assert!(m.mem.read(pa, AccessAttrs::NORMAL).is_err());
        assert!(m.mem.read(pa, AccessAttrs::MONITOR).is_ok());
    }
}
