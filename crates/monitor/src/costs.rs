//! The monitor's cycle-cost schedule.
//!
//! The prototype of §8.1 is "entirely unoptimised. It conservatively saves
//! and restores every non-volatile register ... On enclave entry, it also
//! saves and restores every banked register, although some are known to be
//! preserved, and flushes the TLB". These constants model that code's
//! cost, calibrated to a 900 MHz Cortex-A7 so the Table 3 microbenchmarks
//! land in the paper's regime. Memory traffic the monitor actually performs
//! on the simulated machine is charged separately by the machine itself
//! (see `komodo_armv7::machine::cost`); the constants here cover the
//! instruction work between those accesses.
//!
//! The optimisation ablations in the bench crate (`ablation` bench) toggle
//! the conservative save/restore and unconditional-TLB-flush behaviours to
//! quantify the headroom the paper describes.

/// SMC dispatch: vector, call-number decode, argument marshalling.
pub const SMC_DISPATCH: u64 = 28;

/// Conservatively saving the OS's non-volatile registers on SMC entry
/// (push of r4–r11, lr plus bookkeeping).
pub const SMC_SAVE_REGS: u64 = 32;

/// Restoring them, plus scrubbing non-return registers on exit.
pub const SMC_RESTORE_SCRUB: u64 = 40;

/// PageDB metadata validation per call (bounds + type checks beyond actual
/// memory reads).
pub const VALIDATE: u64 = 12;

/// Enclave entry: loading the user register file (zeroing or argument
/// setup) and conservatively saving *every* banked register (§8.1).
pub const BANKED_SAVE_RESTORE: u64 = 230;

/// Saving or restoring the 17-word thread context beyond the raw stores.
pub const CONTEXT_SWITCH: u64 = 140;

/// One SHA-256 compression (64-byte block) of the Vale-derived OpenSSL
/// core at Cortex-A7-class IPC (§7.2, ≈ 32 cycles/byte).
pub const SHA_BLOCK: u64 = 2400;

/// Data-cache clean/invalidate for a page made visible to user mode
/// (MapData/MapSecure publish a page to a new address space).
pub const DCACHE_PAGE: u64 = 3400;

/// SVC dispatch inside the enter loop.
pub const SVC_DISPATCH: u64 = 12;

#[cfg(test)]
#[allow(clippy::assertions_on_constants)] // The point is checking the constants.
mod tests {
    use super::*;

    /// Coarse calibration guard: the constants must keep the Table 3
    /// ordering (null SMC < AllocSpare < Enter < Resume < MapData <
    /// Attest < Verify) achievable; details are checked end-to-end by the
    /// bench harness.
    #[test]
    fn orderings_are_sane() {
        assert!(SMC_DISPATCH + SMC_SAVE_REGS + SMC_RESTORE_SCRUB < BANKED_SAVE_RESTORE + 100);
        assert!(SHA_BLOCK * 5 > DCACHE_PAGE);
        assert!(
            DCACHE_PAGE + 2048 < SHA_BLOCK * 5,
            "MapData must undercut Attest"
        );
    }
}
