//! Seeded fault schedules: what a chaos case does, derived entirely from
//! one integer.
//!
//! A case is a fixed *backbone* of enclave operations (the slots, each
//! targeting the victim or the worker enclave) plus a *fault schedule*
//! mapping some slots to an injected fault. Both are pure functions of
//! the case seed via [`komodo_spec::seed`], so a case is reproducible
//! from its printed seed alone, and the shrinker can delete faults from
//! the schedule while holding the backbone fixed — the delta-debugging
//! invariant that makes minimal failing schedules meaningful.

use komodo_spec::seed::SplitMix64;

/// One injected fault, applied immediately before its slot's enclave
/// burst.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Arm an IRQ `delta` cycles from the injection point — lands
    /// mid-burst when `delta` is shorter than the burst.
    IrqWithin {
        /// Cycles from injection to the IRQ deadline.
        delta: u64,
    },
    /// Arm an FIQ `delta` cycles from the injection point.
    FiqWithin {
        /// Cycles from injection to the FIQ deadline.
        delta: u64,
    },
    /// Clamp the monitor's user-execution step budget for this slot's
    /// burst (the OS timer preempting aggressively).
    StepBudget {
        /// Steps allowed before the burst is treated as interrupted.
        steps: u64,
    },
    /// Issue an SMC with a garbage call number and all-ones arguments.
    BadSmc {
        /// The bogus call number.
        call: u32,
    },
    /// Adversarial page churn: build and immediately destroy a
    /// throwaway enclave, recycling secure pages mid-case.
    PageChurn,
    /// Destroy the victim enclave under load: stop it and remove its
    /// pages, even while a thread is suspended mid-burst.
    DestroyUnderLoad,
    /// Malicious-OS register perturbation at the world-switch boundary:
    /// scribble an OS-visible register before the burst.
    RegPerturb {
        /// Register index (r5–r11: the range SMC returns don't scrub).
        reg: u8,
        /// Value written.
        val: u32,
    },
    /// Malicious-OS memory perturbation: scribble a word of insecure
    /// RAM before the burst.
    MemPerturb {
        /// Word index, reduced modulo the insecure RAM size.
        word: u32,
        /// Value written.
        val: u32,
    },
    /// SVC-level entry perturbation, the one fault the *enclave* sees:
    /// XOR a value into one of the SVC-visible entry arguments (r0–r2
    /// at enclave entry) before the burst — a malicious OS tampering
    /// with the inputs it relays, e.g. the challenge words of a
    /// handshake in flight. Applied identically in both NI passes (and
    /// only to fresh entries; resumes carry no arguments).
    EntryPerturb {
        /// Which entry argument (reduced modulo 3).
        arg: u8,
        /// XOR mask applied to the argument.
        val: u32,
    },
}

impl Fault {
    /// Number of fault kinds.
    pub const KINDS: usize = 9;

    /// Stable kind code, `0..Self::KINDS` (the [`komodo_trace::Event::ChaosInject`]
    /// `kind` field and the campaign fault-mix index).
    pub fn kind_code(&self) -> u8 {
        match self {
            Fault::IrqWithin { .. } => 0,
            Fault::FiqWithin { .. } => 1,
            Fault::StepBudget { .. } => 2,
            Fault::BadSmc { .. } => 3,
            Fault::PageChurn => 4,
            Fault::DestroyUnderLoad => 5,
            Fault::RegPerturb { .. } => 6,
            Fault::MemPerturb { .. } => 7,
            Fault::EntryPerturb { .. } => 8,
        }
    }

    /// Short stable name for a kind code (reports and the bench JSON).
    pub fn kind_name(code: u8) -> &'static str {
        match code {
            0 => "irq",
            1 => "fiq",
            2 => "step_budget",
            3 => "bad_smc",
            4 => "page_churn",
            5 => "destroy_under_load",
            6 => "reg_perturb",
            7 => "mem_perturb",
            8 => "entry_perturb",
            _ => "?",
        }
    }

    /// Fault-specific payload word recorded in the injection trace
    /// event.
    pub fn arg(&self) -> u32 {
        match *self {
            Fault::IrqWithin { delta } | Fault::FiqWithin { delta } => delta as u32,
            Fault::StepBudget { steps } => steps as u32,
            Fault::BadSmc { call } => call,
            Fault::PageChurn | Fault::DestroyUnderLoad => 0,
            Fault::RegPerturb { reg, val } => (u32::from(reg) << 24) ^ (val & 0x00ff_ffff),
            Fault::MemPerturb { word, .. } => word,
            Fault::EntryPerturb { arg, val } => (u32::from(arg) << 24) ^ (val & 0x00ff_ffff),
        }
    }
}

impl core::fmt::Display for Fault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            Fault::IrqWithin { delta } => write!(f, "irq delta={delta}"),
            Fault::FiqWithin { delta } => write!(f, "fiq delta={delta}"),
            Fault::StepBudget { steps } => write!(f, "step-budget steps={steps}"),
            Fault::BadSmc { call } => write!(f, "bad-smc call={call:#010x}"),
            Fault::PageChurn => write!(f, "page-churn"),
            Fault::DestroyUnderLoad => write!(f, "destroy-under-load"),
            Fault::RegPerturb { reg, val } => write!(f, "reg-perturb r{reg}={val:#010x}"),
            Fault::MemPerturb { word, val } => write!(f, "mem-perturb word={word} val={val:#010x}"),
            Fault::EntryPerturb { arg, val } => {
                write!(f, "entry-perturb arg=r{arg} xor={val:#010x}")
            }
        }
    }
}

/// Which enclave a backbone slot drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// The worker: a long secret-independent countdown burst, the canvas
    /// interrupts and preemptions land on.
    Worker,
    /// The victim: a burst that carries the enclave secret live in
    /// registers for a window — what register-scrubbing bugs leak.
    Victim,
}

/// Which rung of the execution ladder the case's machine runs on, so
/// campaigns exercise every tier under fire. All tiers are
/// cycle-model-preserving, and both passes of a case use the same tier,
/// so the choice never affects verdicts — only which engine is stressed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Plain decode-and-execute.
    Baseline,
    /// Fetch/decode acceleration.
    FetchAccel,
    /// Superblock predecode on top of the accelerator.
    Superblocks,
    /// Specialised micro-op traces on top of superblocks.
    UopTraces,
}

impl Tier {
    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Baseline => "baseline",
            Tier::FetchAccel => "accel",
            Tier::Superblocks => "superblocks",
            Tier::UopTraces => "uop",
        }
    }
}

/// A fully-specified chaos case: seed, tier, backbone, and fault
/// schedule. [`CaseSpec::generate`] derives all of it from the seed;
/// [`CaseSpec::with_faults`] swaps the schedule while keeping the
/// backbone — the shrinker's move.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaseSpec {
    /// The case seed everything below derives from.
    pub seed: u64,
    /// Execution-ladder tier for the case's machine.
    pub tier: Tier,
    /// The backbone: one enclave burst per slot.
    pub targets: Vec<Target>,
    /// The fault schedule: `(slot, fault)`, at most one fault per slot,
    /// sorted by slot.
    pub faults: Vec<(usize, Fault)>,
}

impl CaseSpec {
    /// Derives the complete case from `seed`.
    pub fn generate(seed: u64) -> CaseSpec {
        let mut rng = SplitMix64::new(seed);
        let tier = match rng.below(4) {
            0 => Tier::Baseline,
            1 => Tier::FetchAccel,
            2 => Tier::Superblocks,
            _ => Tier::UopTraces,
        };
        let slots = 5 + rng.below(6) as usize; // 5..=10
        let mut targets = Vec::with_capacity(slots);
        let mut faults = Vec::new();
        for slot in 0..slots {
            targets.push(if rng.below(3) == 0 {
                Target::Victim
            } else {
                Target::Worker
            });
            if rng.below(2) == 0 {
                faults.push((slot, draw_fault(&mut rng)));
            }
        }
        CaseSpec {
            seed,
            tier,
            targets,
            faults,
        }
    }

    /// The same backbone with a different fault schedule (the shrinker's
    /// reduction step).
    pub fn with_faults(&self, faults: Vec<(usize, Fault)>) -> CaseSpec {
        CaseSpec {
            faults,
            ..self.clone()
        }
    }

    /// Per-kind injected-fault counts for this schedule.
    pub fn fault_mix(&self) -> [u32; Fault::KINDS] {
        let mut mix = [0u32; Fault::KINDS];
        for (_, f) in &self.faults {
            mix[f.kind_code() as usize] += 1;
        }
        mix
    }
}

impl core::fmt::Display for CaseSpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "case seed={:#018x} tier={} slots={} faults={}",
            self.seed,
            self.tier.name(),
            self.targets.len(),
            self.faults.len()
        )?;
        for (i, t) in self.targets.iter().enumerate() {
            let tname = match t {
                Target::Worker => "worker",
                Target::Victim => "victim",
            };
            match self.faults.iter().find(|(s, _)| *s == i) {
                Some((_, fault)) => writeln!(f, "  slot {i:>2} {tname:<6} <- {fault}")?,
                None => writeln!(f, "  slot {i:>2} {tname:<6}")?,
            }
        }
        Ok(())
    }
}

/// Draws one fault. Delay-style draws are bimodal: a short mode that
/// lands inside even the victim's brief secret-live window, and a long
/// mode that lands across worker bursts — both interesting, neither
/// reachable from a single uniform range.
fn draw_fault(rng: &mut SplitMix64) -> Fault {
    match rng.below(Fault::KINDS as u64) {
        0 => Fault::IrqWithin {
            delta: bimodal(rng, 256, 8192),
        },
        1 => Fault::FiqWithin {
            delta: bimodal(rng, 256, 8192),
        },
        2 => Fault::StepBudget {
            steps: bimodal(rng, 128, 4096),
        },
        3 => Fault::BadSmc {
            // High bit set: never collides with a real SMC call number.
            call: 0x4000_0000 | rng.next_u64() as u32,
        },
        4 => Fault::PageChurn,
        5 => Fault::DestroyUnderLoad,
        6 => Fault::RegPerturb {
            // r5–r11: the callee-saved range that survives SMC returns
            // into the adversary's view.
            reg: 5 + rng.below(7) as u8,
            val: rng.next_u64() as u32,
        },
        7 => Fault::MemPerturb {
            word: rng.next_u64() as u32,
            val: rng.next_u64() as u32,
        },
        _ => Fault::EntryPerturb {
            arg: rng.below(3) as u8,
            // Bounded mask: keeps perturbed loop counts finite (the
            // worker's countdown stays in a few-thousand-iteration
            // range) while still visibly corrupting enclave inputs.
            val: 1 + rng.below(1023) as u32,
        },
    }
}

fn bimodal(rng: &mut SplitMix64, short: u64, long: u64) -> u64 {
    if rng.below(2) == 0 {
        1 + rng.below(short)
    } else {
        1 + rng.below(long)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 7, 0xdead_beef] {
            assert_eq!(CaseSpec::generate(seed), CaseSpec::generate(seed));
        }
        assert_ne!(CaseSpec::generate(1), CaseSpec::generate(2));
    }

    #[test]
    fn backbone_shape_is_bounded() {
        for seed in 0..500 {
            let c = CaseSpec::generate(seed);
            assert!((5..=10).contains(&c.targets.len()));
            assert!(c.faults.len() <= c.targets.len());
            // At most one fault per slot, sorted.
            for w in c.faults.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
        }
    }

    #[test]
    fn every_fault_kind_is_drawn() {
        let mut mix = [0u32; Fault::KINDS];
        for seed in 0..2000 {
            for (i, n) in CaseSpec::generate(seed).fault_mix().iter().enumerate() {
                mix[i] += n;
            }
        }
        for (i, n) in mix.iter().enumerate() {
            assert!(
                *n > 0,
                "fault kind {} never drawn",
                Fault::kind_name(i as u8)
            );
        }
    }

    #[test]
    fn with_faults_keeps_backbone() {
        let c = CaseSpec::generate(42);
        let reduced = c.with_faults(Vec::new());
        assert_eq!(reduced.targets, c.targets);
        assert_eq!(reduced.tier, c.tier);
        assert_eq!(reduced.seed, c.seed);
        assert!(reduced.faults.is_empty());
    }

    #[test]
    fn display_names_every_slot() {
        let c = CaseSpec::generate(9);
        let s = c.to_string();
        for i in 0..c.targets.len() {
            assert!(s.contains(&format!("slot {i:>2}")), "{s}");
        }
    }
}
