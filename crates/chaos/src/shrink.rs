//! Delta-debugging schedule shrinker.
//!
//! When a case fails, its fault schedule is usually mostly noise: of the
//! half-dozen injected faults, one or two actually trigger the bug. The
//! shrinker runs Zeller's `ddmin` over the fault list — the backbone
//! (slots, targets, tier, seed) is held fixed, so every reduction
//! attempt is a legal case, and the result is the minimal sub-schedule
//! that still fails. Probe runs execute with tracing off so reduction
//! attempts don't spam flight dumps; the minimal case is then re-run
//! once with tracing on to produce the final report.

use komodo::Platform;

use crate::driver::{run_case_spec, run_case_spec_quiet, CaseReport, ChaosConfig};
use crate::schedule::{CaseSpec, Fault};

/// Outcome of shrinking one failing case.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The minimal failing case (same backbone, reduced schedule).
    pub minimal: CaseSpec,
    /// The minimal case's report (re-run with tracing, so NI verdicts
    /// carry the side-by-side flight-recorder tails).
    pub report: CaseReport,
    /// How many probe runs the reduction took.
    pub probes: u32,
}

/// Shrinks `case` (which must fail under `cfg`) to a minimal failing
/// schedule. Returns `None` if the case does not actually fail —
/// shrinking a passing case would "minimise" to noise.
pub fn shrink_case(p: &mut Platform, cfg: &ChaosConfig, case: &CaseSpec) -> Option<ShrinkResult> {
    let mut probes = 0u32;
    let mut fails = |faults: &[(usize, Fault)], probes: &mut u32| {
        *probes += 1;
        let spec = case.with_faults(faults.to_vec());
        run_case_spec_quiet(p, cfg, &spec).verdict.is_failure()
    };

    if !fails(&case.faults, &mut probes) {
        return None;
    }

    // ddmin: try removing complement chunks at increasing granularity.
    let mut cur = case.faults.clone();
    let mut n = 2usize.min(cur.len().max(1));
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let candidate: Vec<(usize, Fault)> =
                cur[..start].iter().chain(&cur[end..]).copied().collect();
            if !candidate.is_empty() && fails(&candidate, &mut probes) {
                cur = candidate;
                n = 2.max(n - 1);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if n >= cur.len() {
                break;
            }
            n = (n * 2).min(cur.len());
        }
    }
    // A failure with zero faults would mean the backbone alone fails —
    // check it, since that is the most minimal schedule of all.
    if cur.len() == 1 && fails(&[], &mut probes) {
        cur.clear();
    }

    let minimal = case.with_faults(cur);
    let report = run_case_spec(p, cfg, &minimal);
    Some(ShrinkResult {
        minimal,
        report,
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Verdict;
    use crate::schedule::Target;
    use komodo_monitor::PlantedBugs;

    /// A case stuffed with noise faults plus one trigger must shrink to
    /// just the trigger.
    #[test]
    fn shrinks_noise_to_single_trigger() {
        let cfg = ChaosConfig {
            planted: PlantedBugs {
                refcount_leak_on_remove: true,
                ..PlantedBugs::default()
            },
            ..ChaosConfig::default()
        };
        let mut p = Platform::with_config(cfg.platform.clone());
        let mut case = CaseSpec::generate(1).with_faults(Vec::new());
        case.targets = vec![Target::Worker; 6];
        case.faults = vec![
            (0, Fault::BadSmc { call: 0x4000_0001 }),
            (1, Fault::PageChurn),
            (2, Fault::IrqWithin { delta: 300 }),
            (3, Fault::DestroyUnderLoad), // The trigger.
            (4, Fault::MemPerturb { word: 9, val: 5 }),
            (5, Fault::RegPerturb { reg: 6, val: 1 }),
        ];
        let r = shrink_case(&mut p, &cfg, &case).expect("case fails");
        assert!(
            r.minimal.faults.len() <= 2,
            "minimal schedule has {} faults: {:?}",
            r.minimal.faults.len(),
            r.minimal.faults
        );
        assert!(r
            .minimal
            .faults
            .iter()
            .any(|(_, f)| *f == Fault::DestroyUnderLoad));
        assert!(r.report.verdict.is_failure());
        assert!(matches!(r.report.verdict, Verdict::Invariant { .. }));
    }

    /// Shrinking a passing case is refused.
    #[test]
    fn refuses_passing_case() {
        let cfg = ChaosConfig::default();
        let mut p = Platform::with_config(cfg.platform.clone());
        let case = CaseSpec::generate(5);
        assert!(shrink_case(&mut p, &cfg, &case).is_none());
    }

    /// The minimal schedule is reproducible: re-running it fails again.
    #[test]
    fn minimal_schedule_reproduces() {
        let cfg = ChaosConfig {
            planted: PlantedBugs {
                leak_regs_on_interrupt: true,
                ..PlantedBugs::default()
            },
            ..ChaosConfig::default()
        };
        let mut p = Platform::with_config(cfg.platform.clone());
        let mut case = CaseSpec::generate(2).with_faults(Vec::new());
        case.targets = vec![Target::Worker, Target::Victim, Target::Worker];
        case.faults = vec![
            (0, Fault::PageChurn),
            (1, Fault::IrqWithin { delta: 700 }), // The trigger.
            (2, Fault::BadSmc { call: 0x4000_0002 }),
        ];
        let r = shrink_case(&mut p, &cfg, &case).expect("case fails");
        assert!(r.minimal.faults.len() <= 2, "{:?}", r.minimal.faults);
        let again = run_case_spec(&mut p, &cfg, &r.minimal);
        assert_eq!(again.verdict.code(), r.report.verdict.code());
        assert!(again.verdict.is_failure());
    }
}
