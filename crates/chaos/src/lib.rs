//! Deterministic VOPR-style fault-injection campaigns with schedule
//! shrinking.
//!
//! Komodo's core claim is that the monitor's guarantees survive an
//! actively malicious OS — yet cooperative test schedules barely touch
//! the monitor's error and edge paths, which is precisely where a
//! security monitor's attack surface lives. This crate turns the
//! workspace's NI and refinement oracles into a standing adversarial
//! campaign:
//!
//! - [`schedule`]: a seeded [`schedule::CaseSpec`] — a backbone of
//!   enclave bursts plus a fault schedule (mid-burst IRQs/FIQs at cycle
//!   deadlines, aggressive preemption, garbage SMCs, adversarial page
//!   churn, destroy-under-load, register/memory perturbation at
//!   world-switch boundaries), all derived from one integer via
//!   [`komodo_spec::seed`].
//! - [`driver`]: runs each case **twice** on one platform — identical
//!   except for the victim enclave's secret — and compares everything
//!   the OS can observe (the NI oracle), then abstracts the final state
//!   to the spec `PageDb` and checks its invariants (the refinement
//!   oracle). Cases rotate through the execution ladder
//!   (baseline/accel/superblocks/uop) so every engine runs under fire.
//! - [`shrink`]: on failure, a delta-debugging (`ddmin`) pass reduces
//!   the schedule to a minimal failing sub-schedule, and the final
//!   report carries side-by-side flight-recorder tails
//!   (`komodo-trace`/`komodo-ni`).
//! - [`campaign`]: fans thousands of cases across `komodo-fleet` shards
//!   with bit-for-bit reproducible verdicts — the same master seed
//!   yields the same verdict digest at any shard count and under either
//!   recycling policy.
//!
//! The monitor carries deliberately plantable bugs
//! ([`komodo_monitor::PlantedBugs`]) so the oracles themselves are
//! tested: a campaign against a buggy monitor must fail, and the
//! shrinker must reduce the failure to its one- or two-fault trigger.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod driver;
pub mod schedule;
pub mod shrink;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport};
pub use driver::{run_case, run_case_spec, CaseReport, ChaosConfig, Verdict};
pub use schedule::{CaseSpec, Fault, Target, Tier};
pub use shrink::{shrink_case, ShrinkResult};
