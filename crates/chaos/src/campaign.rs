//! Campaign runner: thousands of seeded cases fanned across the fleet.
//!
//! A campaign is a master seed plus a case count. Case `j` runs with
//! seed `derive_seed(j)` — the same per-job derivation the fleet gives
//! every job — so its verdict depends only on `(master seed, j)`: never
//! on the shard that ran it, the shard count, or the recycling policy.
//! The campaign folds every verdict into a SHA-256 digest in submission
//! order; two runs of the same campaign at different shard counts must
//! produce bit-for-bit identical digests, which the chaos CI smoke
//! checks on every push.

use std::time::Duration;

use komodo_crypto::Sha256;
use komodo_fleet::{self as fleet, FleetConfig, Recycle};

use crate::driver::{run_case, CaseReport, ChaosConfig, Verdict};
use crate::schedule::Fault;

/// A campaign: how many cases, how wide, and what chaos config.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Master seed; every case seed derives from it.
    pub master_seed: u64,
    /// Number of cases.
    pub cases: u64,
    /// Fleet shard count.
    pub shards: usize,
    /// Platform recycling policy between cases.
    pub recycle: Recycle,
    /// Case-execution config (platform shape, planted bugs, tracing).
    pub chaos: ChaosConfig,
    /// Keep at most this many failing case reports in full (all
    /// failures are still counted and folded into the digest).
    pub max_failures_kept: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            master_seed: 0xc4a0_5000,
            cases: 1000,
            shards: 4,
            recycle: Recycle::Reboot,
            chaos: ChaosConfig::default(),
            max_failures_kept: 8,
        }
    }
}

/// The campaign's outcome.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Cases run.
    pub cases: u64,
    /// Cases whose verdict was [`Verdict::Pass`].
    pub passed: u64,
    /// The first few failing case reports, in case order.
    pub failures: Vec<CaseReport>,
    /// Total injected faults by kind code.
    pub injected: [u64; Fault::KINDS],
    /// Total backbone slots executed (one enclave burst each, twice —
    /// once per pass).
    pub slots: u64,
    /// SHA-256 over every case verdict in submission order, hex. Equal
    /// digests ⇒ bit-for-bit identical campaign outcomes.
    pub verdict_digest: String,
    /// Wall-clock time (excluded from the digest).
    pub wall: Duration,
    /// Shard count the campaign ran at.
    pub shards: usize,
}

impl CampaignReport {
    /// Whether every case passed.
    pub fn all_green(&self) -> bool {
        self.passed == self.cases
    }

    /// Campaign throughput, wall-clock cases per second.
    pub fn cases_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.cases as f64 / secs
        } else {
            0.0
        }
    }

    /// One-line fault-mix summary (`irq=123 fiq=98 ...`).
    pub fn fault_mix_line(&self) -> String {
        let mut out = String::new();
        for (i, n) in self.injected.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{}={}", Fault::kind_name(i as u8), n));
        }
        out
    }
}

/// Runs the campaign, fanning cases across `cfg.shards` fleet shards.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let fleet_cfg = FleetConfig::default()
        .with_shards(cfg.shards)
        .with_platform(cfg.chaos.platform.clone().with_seed(cfg.master_seed))
        .with_recycle(cfg.recycle);

    let chaos = cfg.chaos.clone();
    let cases = cfg.cases;
    let run = fleet::run(fleet_cfg, move |f| {
        let handles: Vec<_> = (0..cases)
            .map(|_| {
                let chaos = chaos.clone();
                f.submit(move |ctx| {
                    // The fleet's per-job seed: depends only on the
                    // master seed and the job index.
                    let seed = ctx.seed();
                    let index = ctx.job_index();
                    let mut report = run_case(ctx.platform(), &chaos, seed);
                    report.index = index;
                    report
                })
            })
            .collect();
        // Join in submission order: the fold below is then
        // shard-count-independent.
        handles
            .into_iter()
            .map(|h| h.join())
            .collect::<Vec<Result<CaseReport, fleet::JobPanic>>>()
    });

    let mut digest = Sha256::new();
    let mut passed = 0u64;
    let mut injected = [0u64; Fault::KINDS];
    let mut slots = 0u64;
    let mut failures = Vec::new();
    for (i, res) in run.value.into_iter().enumerate() {
        let report = match res {
            Ok(r) => r,
            Err(p) => CaseReport {
                index: i as u64,
                seed: 0,
                tier: crate::schedule::Tier::Baseline,
                slots: 0,
                injected: [0; Fault::KINDS],
                cycles: 0,
                verdict: Verdict::MonitorFault { message: p.message },
            },
        };
        fold_case(&mut digest, &report);
        for (k, n) in report.injected.iter().enumerate() {
            injected[k] += u64::from(*n);
        }
        slots += u64::from(report.slots);
        if report.verdict.is_failure() {
            if failures.len() < cfg.max_failures_kept {
                failures.push(report);
            }
        } else {
            passed += 1;
        }
    }

    CampaignReport {
        cases: cfg.cases,
        passed,
        failures,
        injected,
        slots,
        verdict_digest: hex(&digest.finish().to_bytes()),
        wall: run.wall,
        shards: cfg.shards,
    }
}

/// Folds one case's outcome into the campaign digest. Only
/// deterministic, shard-independent fields participate: index, seed,
/// verdict code (plus the NI slot or invariant count), cycles, and the
/// fault mix. Wall-clock and report text stay out.
fn fold_case(h: &mut Sha256, r: &CaseReport) {
    h.update(&r.index.to_be_bytes());
    h.update(&r.seed.to_be_bytes());
    h.update(&r.verdict.code().to_be_bytes());
    let extra: u32 = match &r.verdict {
        Verdict::Ni { slot, .. } => *slot,
        Verdict::Invariant { violations } => violations.len() as u32,
        _ => 0,
    };
    h.update(&extra.to_be_bytes());
    h.update(&r.cycles.to_be_bytes());
    h.update(&r.slots.to_be_bytes());
    for n in &r.injected {
        h.update(&n.to_be_bytes());
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(cases: u64, shards: usize) -> CampaignConfig {
        CampaignConfig {
            master_seed: 0x7e57,
            cases,
            shards,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn small_campaign_is_green() {
        let r = run_campaign(&small(40, 2));
        assert!(r.all_green(), "failures: {:?}", r.failures);
        assert_eq!(r.cases, 40);
        assert!(r.injected.iter().sum::<u64>() > 0, "no faults injected");
    }

    #[test]
    fn verdict_digest_is_shard_count_invariant() {
        let r1 = run_campaign(&small(60, 1));
        let r4 = run_campaign(&small(60, 4));
        assert_eq!(r1.verdict_digest, r4.verdict_digest);
        assert_eq!(r1.passed, r4.passed);
        assert_eq!(r1.injected, r4.injected);
    }

    #[test]
    fn verdict_digest_is_recycle_invariant() {
        let mut reboot = small(40, 2);
        reboot.recycle = Recycle::Reboot;
        let mut rebuild = small(40, 2);
        rebuild.recycle = Recycle::Rebuild;
        assert_eq!(
            run_campaign(&reboot).verdict_digest,
            run_campaign(&rebuild).verdict_digest
        );
    }

    #[test]
    fn different_master_seeds_differ() {
        let a = run_campaign(&small(20, 2));
        let mut cfg = small(20, 2);
        cfg.master_seed ^= 1;
        let b = run_campaign(&cfg);
        assert_ne!(a.verdict_digest, b.verdict_digest);
    }
}
