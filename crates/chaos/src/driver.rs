//! The chaos driver: runs one seeded case against a [`Platform`] and
//! judges it with the NI and refinement oracles.
//!
//! A case runs **twice** on the same platform — pass A and pass B differ
//! only in the victim enclave's secret. Both passes execute the
//! identical backbone and fault schedule, so by Komodo's noninterference
//! theorem everything the OS can observe must be bit-for-bit identical
//! between them: the register file after every burst, every call result,
//! the cycle counter, and finally all insecure RAM. Any divergence is a
//! secret leak. Independently, the refinement oracle abstracts the final
//! concrete memory into the specification [`komodo_spec::PageDb`] and
//! checks its invariants — fault-path state corruption surfaces here
//! even when nothing leaks.
//!
//! The two-pass design (rather than two live platforms) is what lets a
//! fleet shard run cases on one pooled platform: pass B starts from
//! [`Platform::reset_with_seed`], which is verified bit-for-bit equal to
//! a fresh boot.

use komodo::{GuestSegment, Image, Platform, PlatformConfig};
use komodo_armv7::mem::AccessAttrs;
use komodo_armv7::mode::Mode;
use komodo_armv7::regs::{Bank, Reg};
use komodo_armv7::{Assembler, Cond, Machine};
use komodo_crypto::{Digest, Sha256};
use komodo_monitor::PlantedBugs;
use komodo_ni::concrete::adversary_view;
use komodo_ni::report::side_by_side_tails;
use komodo_os::EnclaveRun;
use komodo_spec::invariants::pagedb_violations;
use komodo_trace::{Event, FlightRecorder};

use crate::schedule::{CaseSpec, Fault, Target, Tier};

/// Victim secret in pass A. Chosen so no backbone value collides with
/// either secret.
pub const SECRET_A: u32 = 0x5ec7_a111;
/// Victim secret in pass B.
pub const SECRET_B: u32 = 0x5ec7_b222;

const CODE_VA: u32 = 0x8000;
const DATA_VA: u32 = 0x9000;
/// Worker countdown iterations: long enough that most armed interrupts
/// land mid-burst.
const WORKER_ITERS: u32 = 1200;
/// Victim busy-loop iterations while the secret is live in r5–r7.
const VICTIM_WINDOW: u32 = 400;

/// How the driver runs cases: platform shape, planted bugs, and failure
/// reporting depth.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Platform parameters for case execution. The default is smaller
    /// than [`PlatformConfig::default`] — the NI oracle hashes all
    /// insecure RAM once per pass, so campaign throughput scales with
    /// this size.
    pub platform: PlatformConfig,
    /// Deliberately planted monitor bugs (oracle validation; default
    /// none).
    pub planted: PlantedBugs,
    /// Flight-recorder capacity while a case runs (0 disables tracing).
    pub trace_capacity: usize,
    /// Flight-recorder tail depth in failure reports — deliberately
    /// deeper than [`Platform::DEFAULT_FLIGHT_DUMP_TAIL`]; a chaos
    /// failure's cause is often many faults back.
    pub deep_tail: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            platform: PlatformConfig::default()
                .with_insecure_size(1 << 18)
                .with_npages(64),
            planted: PlantedBugs::default(),
            trace_capacity: 512,
            deep_tail: 96,
        }
    }
}

/// The oracle verdict for one case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// All oracles held.
    Pass,
    /// Noninterference violation: the OS-observable state diverged
    /// between the secret-A and secret-B passes.
    Ni {
        /// Backbone slot at which the divergence was detected
        /// (`u32::MAX` = only the final state diverged).
        slot: u32,
        /// What diverged (cycles, outcome, registers, final view).
        detail: String,
        /// Side-by-side flight-recorder tails of both passes (empty
        /// when tracing was off).
        report: String,
    },
    /// Refinement/invariant violation: the final concrete state does
    /// not abstract to a valid specification PageDb.
    Invariant {
        /// The invariant checker's findings.
        violations: Vec<String>,
    },
    /// The monitor panicked (the executable analogue of a failed
    /// verification condition).
    MonitorFault {
        /// The panic message.
        message: String,
    },
}

impl Verdict {
    /// Stable code for campaign digests: 0 pass, 1 NI, 2 invariant,
    /// 3 monitor fault.
    pub fn code(&self) -> u32 {
        match self {
            Verdict::Pass => 0,
            Verdict::Ni { .. } => 1,
            Verdict::Invariant { .. } => 2,
            Verdict::MonitorFault { .. } => 3,
        }
    }

    /// Whether this verdict is a failure.
    pub fn is_failure(&self) -> bool {
        !matches!(self, Verdict::Pass)
    }

    /// Short stable name.
    pub fn name(&self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Ni { .. } => "ni-violation",
            Verdict::Invariant { .. } => "invariant-violation",
            Verdict::MonitorFault { .. } => "monitor-fault",
        }
    }
}

/// Everything a case run reports.
#[derive(Clone, Debug)]
pub struct CaseReport {
    /// Campaign job index (`u64::MAX` when run standalone).
    pub index: u64,
    /// The case seed (regenerate with [`CaseSpec::generate`]).
    pub seed: u64,
    /// Execution-ladder tier the case ran on.
    pub tier: Tier,
    /// Backbone length.
    pub slots: u32,
    /// Injected faults by kind code.
    pub injected: [u32; Fault::KINDS],
    /// Pass-A cycle count at case end (0 if the pass died early).
    pub cycles: u64,
    /// The oracle verdict.
    pub verdict: Verdict,
}

/// One backbone slot's OS-observable outcome.
#[derive(Clone, PartialEq, Eq)]
struct SlotObs {
    cycles: u64,
    /// Burst outcome: tag (1 exited, 2 interrupted, 3 faulted,
    /// 4 refused) and value (exit value / error code).
    tag: u32,
    val: u32,
    /// Fault-op observables (SMC error codes, churn/destroy results).
    aux: (u32, u32),
    /// Digest of the OS-visible register file (the cheap per-slot NI
    /// probe; insecure RAM is hashed once at case end).
    regs: Digest,
}

struct PassObs {
    slots: Vec<SlotObs>,
    final_cycles: u64,
    final_view: Digest,
    violations: Vec<String>,
    trace: FlightRecorder,
}

/// Runs the case derived from `seed` on `p` (standalone entry point —
/// campaigns use the same path with the fleet's per-job seed).
pub fn run_case(p: &mut Platform, cfg: &ChaosConfig, seed: u64) -> CaseReport {
    run_case_spec(p, cfg, &CaseSpec::generate(seed))
}

/// Runs a fully-specified case (the shrinker's entry point: backbone
/// from the seed, schedule possibly reduced).
pub fn run_case_spec(p: &mut Platform, cfg: &ChaosConfig, spec: &CaseSpec) -> CaseReport {
    run_case_spec_with(p, cfg, spec, cfg.trace_capacity)
}

/// [`run_case_spec`] with tracing off — the shrinker probes with this so
/// reduction attempts don't emit flight dumps.
pub fn run_case_spec_quiet(p: &mut Platform, cfg: &ChaosConfig, spec: &CaseSpec) -> CaseReport {
    run_case_spec_with(p, cfg, spec, 0)
}

fn run_case_spec_with(
    p: &mut Platform,
    cfg: &ChaosConfig,
    spec: &CaseSpec,
    trace_capacity: usize,
) -> CaseReport {
    let mut report = CaseReport {
        index: u64::MAX,
        seed: spec.seed,
        tier: spec.tier,
        slots: spec.targets.len() as u32,
        injected: spec.fault_mix(),
        cycles: 0,
        verdict: Verdict::Pass,
    };

    let a = match run_pass(p, cfg, spec, SECRET_A, trace_capacity) {
        Ok(a) => a,
        Err(message) => {
            report.verdict = Verdict::MonitorFault { message };
            return report;
        }
    };
    report.cycles = a.final_cycles;
    let b = match run_pass(p, cfg, spec, SECRET_B, trace_capacity) {
        Ok(b) => b,
        Err(message) => {
            report.verdict = Verdict::MonitorFault { message };
            return report;
        }
    };

    if let Some((slot, detail)) = first_divergence(&a, &b) {
        let trace_report = if trace_capacity > 0 {
            side_by_side_tails("secret-A", &a.trace, "secret-B", &b.trace, cfg.deep_tail)
        } else {
            String::new()
        };
        report.verdict = Verdict::Ni {
            slot,
            detail,
            report: trace_report,
        };
        return report;
    }

    // Passes agree; check the refinement oracle (identical in both by
    // the comparison above having covered the whole observable state —
    // but a violation in either is a monitor bug regardless).
    let mut violations = a.violations;
    for v in b.violations {
        if !violations.contains(&v) {
            violations.push(v);
        }
    }
    if !violations.is_empty() {
        report.verdict = Verdict::Invariant { violations };
    }
    report
}

/// One pass of the case. Returns the observation stream, or the panic
/// message if the monitor faulted.
fn run_pass(
    p: &mut Platform,
    cfg: &ChaosConfig,
    spec: &CaseSpec,
    secret: u32,
    trace_capacity: usize,
) -> Result<PassObs, String> {
    p.reset_with_seed(spec.seed);
    if trace_capacity > 0 {
        p.set_trace(trace_capacity);
        p.set_flight_dump_tail(cfg.deep_tail);
    }
    p.monitor.planted = cfg.planted;
    apply_tier(&mut p.machine, spec.tier);

    let body = std::panic::AssertUnwindSafe(|| run_pass_body(p, spec, secret));
    match std::panic::catch_unwind(body) {
        Ok(obs) => Ok(obs),
        Err(payload) => Err(komodo_fleet::panic_message(payload)),
    }
}

fn run_pass_body(p: &mut Platform, spec: &CaseSpec, secret: u32) -> PassObs {
    let victim = p
        .load_with(&victim_image(), 1, 2)
        .expect("victim enclave builds");
    let worker = p.load(&worker_image()).expect("worker enclave builds");
    let default_budget = p.monitor.step_budget;
    let insecure_words = p.monitor.layout.insecure_size / 4;

    let mut victim_alive = true;
    let mut victim_susp = false;
    let mut worker_susp = false;
    let mut slots = Vec::with_capacity(spec.targets.len());

    for (i, target) in spec.targets.iter().enumerate() {
        let mut aux = (0u32, 0u32);
        let mut entry_xor: Option<(u8, u32)> = None;
        if let Some((_, fault)) = spec.faults.iter().find(|(s, _)| *s == i) {
            p.machine.trace.record(
                p.machine.cycles,
                Event::ChaosInject {
                    kind: fault.kind_code(),
                    arg: fault.arg(),
                },
            );
            match *fault {
                Fault::IrqWithin { delta } => {
                    p.machine.schedule_irq_in(delta);
                }
                Fault::FiqWithin { delta } => {
                    p.machine.schedule_fiq_in(delta);
                }
                Fault::StepBudget { steps } => {
                    p.monitor.step_budget = steps;
                }
                Fault::BadSmc { call } => {
                    let r = p.monitor.smc(&mut p.machine, call, [0xffff_ffff; 4]);
                    aux = (r.err.code(), r.retval);
                }
                Fault::PageChurn => {
                    aux = churn(p);
                }
                Fault::DestroyUnderLoad => {
                    if victim_alive {
                        aux = match p.destroy(&victim) {
                            Ok(()) => (0, 0),
                            Err(e) => (1, e.code()),
                        };
                        victim_alive = false;
                        victim_susp = false;
                    } else {
                        aux = (2, 0);
                    }
                }
                Fault::RegPerturb { reg, val } => {
                    p.machine.set_reg(Reg::R(reg), val);
                }
                Fault::MemPerturb { word, val } => {
                    let pa = (word % insecure_words) * 4;
                    let ok = p.machine.mem.write(pa, val, AccessAttrs::NORMAL).is_ok();
                    aux = (u32::from(ok), 0);
                }
                Fault::EntryPerturb { arg, val } => {
                    // Applied at the enter below; a resumed burst has no
                    // entry arguments to tamper with.
                    entry_xor = Some((arg % 3, val));
                }
            }
        }

        let perturbed = |mut args: [u32; 3]| {
            if let Some((a, v)) = entry_xor {
                args[a as usize] ^= v;
            }
            args
        };
        let run = match target {
            Target::Worker => {
                if worker_susp {
                    p.resume(&worker, 0)
                } else {
                    p.enter(&worker, 0, perturbed([WORKER_ITERS, 0, 0]))
                }
            }
            Target::Victim => {
                if victim_susp {
                    p.resume(&victim, 0)
                } else {
                    p.enter(&victim, 0, perturbed([0, secret, 0]))
                }
            }
        };
        let (tag, val) = encode_run(run);
        match target {
            Target::Worker => worker_susp = run == EnclaveRun::Interrupted,
            Target::Victim => victim_susp = victim_alive && run == EnclaveRun::Interrupted,
        }
        p.machine.clear_pending_interrupts();
        p.monitor.step_budget = default_budget;

        slots.push(SlotObs {
            cycles: p.cycles(),
            tag,
            val,
            aux,
            regs: reg_digest(&p.machine),
        });
    }

    // No teardown: the next pass/case resets the platform, and leaving
    // the enclaves live means the refinement oracle also checks the
    // mid-flight PageDb shape, not just the post-destroy one.
    let final_cycles = p.cycles();
    let final_view = adversary_view(&mut p.machine, &p.monitor.layout);
    let violations = invariant_violations(p);
    PassObs {
        slots,
        final_cycles,
        final_view,
        violations,
        trace: p.machine.trace.clone(),
    }
}

/// Builds and immediately destroys a single-page throwaway enclave —
/// page churn that recycles secure pages (and a PageDb build/teardown
/// cycle) in the middle of the victim's lifetime.
fn churn(p: &mut Platform) -> (u32, u32) {
    match p.load(&churn_image()) {
        Ok(enc) => match p.destroy(&enc) {
            Ok(()) => (0, 0),
            Err(e) => (1, e.code()),
        },
        Err(e) => (2, e.code()),
    }
}

/// Abstraction + invariant check of the platform's current state. A
/// panic inside `abstract_pagedb` means the concrete state is not even
/// abstractable — itself a refinement violation, reported as such
/// rather than as a crash.
fn invariant_violations(p: &mut Platform) -> Vec<String> {
    let machine = &mut p.machine;
    let layout = p.monitor.layout.clone();
    let body = std::panic::AssertUnwindSafe(move || {
        komodo_monitor::abs::abstract_pagedb(machine, &layout)
    });
    match std::panic::catch_unwind(body) {
        Ok(db) => pagedb_violations(&db, &p.monitor.params),
        Err(payload) => vec![format!(
            "abstract_pagedb panicked (state unabstractable): {}",
            komodo_fleet::panic_message(payload)
        )],
    }
}

fn apply_tier(m: &mut Machine, tier: Tier) {
    let (accel, sb, uop) = match tier {
        Tier::Baseline => (false, false, false),
        Tier::FetchAccel => (true, false, false),
        Tier::Superblocks => (true, true, false),
        Tier::UopTraces => (true, true, true),
    };
    m.set_fetch_accel(accel);
    m.set_superblocks(sb);
    m.set_uop_traces(uop);
    if uop {
        // Bursts repeat the same loops, so a low promotion threshold
        // gets the specialised tier actually exercised within a case.
        m.set_uop_threshold(2);
    }
}

fn encode_run(r: EnclaveRun) -> (u32, u32) {
    match r {
        EnclaveRun::Exited(v) => (1, v),
        EnclaveRun::Interrupted => (2, 0),
        EnclaveRun::Faulted => (3, 0),
        EnclaveRun::Refused(e) => (4, e.code()),
    }
}

/// Digest of the OS-visible register file: the register/flags portion
/// of [`adversary_view`], without the insecure-RAM sweep (hashed once
/// per pass at case end instead of per slot, for throughput).
fn reg_digest(m: &Machine) -> Digest {
    let mut h = Sha256::new();
    for r in Reg::all() {
        h.update(&m.regs.get(Mode::User, r).to_be_bytes());
    }
    for bank in [
        Bank::Usr,
        Bank::Svc,
        Bank::Abt,
        Bank::Und,
        Bank::Irq,
        Bank::Fiq,
    ] {
        h.update(&m.regs.sp_banked(bank).to_be_bytes());
        h.update(&m.regs.lr_banked(bank).to_be_bytes());
    }
    h.update(&m.cpsr.encode().to_be_bytes());
    h.finish()
}

/// First observable divergence between the two passes, if any.
fn first_divergence(a: &PassObs, b: &PassObs) -> Option<(u32, String)> {
    for (i, (sa, sb)) in a.slots.iter().zip(&b.slots).enumerate() {
        if sa != sb {
            let what = if sa.cycles != sb.cycles {
                format!("cycles {} vs {}", sa.cycles, sb.cycles)
            } else if (sa.tag, sa.val) != (sb.tag, sb.val) {
                format!(
                    "burst outcome ({},{:#x}) vs ({},{:#x})",
                    sa.tag, sa.val, sb.tag, sb.val
                )
            } else if sa.aux != sb.aux {
                format!("fault-op result {:?} vs {:?}", sa.aux, sb.aux)
            } else {
                "OS-visible registers differ (secret-dependent register state)".to_string()
            };
            return Some((i as u32, format!("slot {i}: {what}")));
        }
    }
    if a.final_cycles != b.final_cycles {
        return Some((
            u32::MAX,
            format!(
                "final cycles {} vs {} (secret-dependent timing)",
                a.final_cycles, b.final_cycles
            ),
        ));
    }
    if a.final_view != b.final_view {
        return Some((
            u32::MAX,
            "final adversary view differs (secret-dependent OS-visible state)".to_string(),
        ));
    }
    None
}

/// The victim guest: parks the secret (arg `r1`) in callee-saved
/// registers r5–r7, busy-loops with it live — the window a preemption
/// catches — then stores it to its private data page and scrubs its own
/// registers before exiting voluntarily. A careful enclave defends its
/// voluntary exits; only the monitor can defend its preemptions — which
/// is exactly what the NI oracle checks.
fn victim_image() -> Image {
    let mut a = Assembler::new(CODE_VA);
    a.mov_imm32(Reg::R(4), DATA_VA);
    a.mov_reg(Reg::R(5), Reg::R(1));
    a.mov_reg(Reg::R(6), Reg::R(1));
    a.mov_reg(Reg::R(7), Reg::R(1));
    a.mov_imm32(Reg::R(3), VICTIM_WINDOW);
    let top = a.label();
    a.subs_imm(Reg::R(3), Reg::R(3), 1);
    a.b_to(Cond::Ne, top);
    a.str_imm(Reg::R(1), Reg::R(4), 0);
    for r in [1u8, 5, 6, 7] {
        a.mov_imm(Reg::R(r), 0);
    }
    a.mov_imm(Reg::R(0), 0); // SVC Exit, retval r1 = 0.
    a.svc(0);
    Image {
        segments: vec![
            GuestSegment {
                va: CODE_VA,
                words: a.words(),
                w: false,
                x: true,
                shared: false,
            },
            GuestSegment {
                va: DATA_VA,
                words: vec![0; 16],
                w: true,
                x: false,
                shared: false,
            },
        ],
        entry: CODE_VA,
    }
}

/// The worker guest: a secret-independent countdown (arg `r0`
/// iterations), the long burst most interrupt faults land in.
fn worker_image() -> Image {
    let mut a = Assembler::new(CODE_VA);
    let top = a.label();
    a.subs_imm(Reg::R(0), Reg::R(0), 1);
    a.b_to(Cond::Ne, top);
    a.mov_imm(Reg::R(0), 0);
    a.mov_imm(Reg::R(1), 7);
    a.svc(0);
    code_only(a.words())
}

/// The churn guest: exits immediately (it is built and destroyed, not
/// run).
fn churn_image() -> Image {
    let mut a = Assembler::new(CODE_VA);
    a.mov_imm(Reg::R(0), 0);
    a.mov_imm(Reg::R(1), 0);
    a.svc(0);
    code_only(a.words())
}

fn code_only(words: Vec<u32>) -> Image {
    Image {
        segments: vec![GuestSegment {
            va: CODE_VA,
            words,
            w: false,
            x: true,
            shared: false,
        }],
        entry: CODE_VA,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform(cfg: &ChaosConfig) -> Platform {
        Platform::with_config(cfg.platform.clone())
    }

    #[test]
    fn faultless_case_passes() {
        let cfg = ChaosConfig::default();
        let mut p = platform(&cfg);
        let spec = CaseSpec::generate(3).with_faults(Vec::new());
        let r = run_case_spec(&mut p, &cfg, &spec);
        assert_eq!(r.verdict, Verdict::Pass, "{:?}", r.verdict);
        assert!(r.cycles > 0);
    }

    #[test]
    fn seeded_cases_pass_on_a_correct_monitor() {
        let cfg = ChaosConfig::default();
        let mut p = platform(&cfg);
        for seed in 0..24 {
            let r = run_case(&mut p, &cfg, seed);
            assert_eq!(r.verdict, Verdict::Pass, "seed {seed}: {:?}", r.verdict);
        }
    }

    #[test]
    fn case_report_is_reproducible_from_seed() {
        let cfg = ChaosConfig::default();
        let mut p = platform(&cfg);
        let r1 = run_case(&mut p, &cfg, 17);
        let r2 = run_case(&mut p, &cfg, 17);
        assert_eq!(r1.verdict, r2.verdict);
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(r1.injected, r2.injected);
    }

    /// The planted register-scrub bug must be caught by the NI oracle
    /// when a preemption lands in the victim's secret-live window.
    #[test]
    fn planted_reg_leak_is_caught() {
        let mut cfg = ChaosConfig {
            planted: PlantedBugs {
                leak_regs_on_interrupt: true,
                ..PlantedBugs::default()
            },
            ..ChaosConfig::default()
        };
        let mut p = platform(&cfg);
        // A hand-built single-fault schedule: one victim burst preempted
        // mid-window.
        let mut spec = CaseSpec::generate(0).with_faults(Vec::new());
        spec.targets = vec![Target::Victim];
        spec.faults = vec![(0, Fault::IrqWithin { delta: 700 })];
        let r = run_case_spec(&mut p, &cfg, &spec);
        match &r.verdict {
            Verdict::Ni { slot, detail, .. } => {
                assert_eq!(*slot, 0, "{detail}");
            }
            other => panic!("expected NI violation, got {other:?}"),
        }
        // The same schedule on a correct monitor passes.
        cfg.planted = PlantedBugs::default();
        let r = run_case_spec(&mut p, &cfg, &spec);
        assert_eq!(r.verdict, Verdict::Pass, "{:?}", r.verdict);
    }

    /// The planted refcount bug must be caught by the refinement oracle
    /// when the victim (which holds spare pages) is destroyed under
    /// load.
    #[test]
    fn planted_refcount_leak_is_caught() {
        let mut cfg = ChaosConfig {
            planted: PlantedBugs {
                refcount_leak_on_remove: true,
                ..PlantedBugs::default()
            },
            ..ChaosConfig::default()
        };
        let mut p = platform(&cfg);
        let mut spec = CaseSpec::generate(0).with_faults(Vec::new());
        spec.targets = vec![Target::Worker];
        spec.faults = vec![(0, Fault::DestroyUnderLoad)];
        let r = run_case_spec(&mut p, &cfg, &spec);
        match &r.verdict {
            Verdict::Invariant { violations } => {
                assert!(
                    violations.iter().any(|v| v.contains("refcount")),
                    "{violations:?}"
                );
            }
            other => panic!("expected invariant violation, got {other:?}"),
        }
        cfg.planted = PlantedBugs::default();
        let r = run_case_spec(&mut p, &cfg, &spec);
        assert_eq!(r.verdict, Verdict::Pass, "{:?}", r.verdict);
    }

    /// Interrupt faults must actually preempt bursts (the injection seam
    /// works) and the case must still pass on a correct monitor.
    #[test]
    fn interrupts_preempt_and_still_pass() {
        let cfg = ChaosConfig::default();
        let mut p = platform(&cfg);
        let mut spec = CaseSpec::generate(0).with_faults(Vec::new());
        spec.targets = vec![Target::Worker, Target::Worker];
        spec.faults = vec![(0, Fault::IrqWithin { delta: 500 })];
        let r = run_case_spec(&mut p, &cfg, &spec);
        assert_eq!(r.verdict, Verdict::Pass, "{:?}", r.verdict);
    }
}
