//! Vendored minimal property-testing harness.
//!
//! This workspace builds in a hermetic environment with no access to a
//! crate registry, so the real `proptest` cannot be fetched. This crate
//! reimplements the (small) subset of its API that the test suites use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! - [`prop_oneof!`], [`strategy::Just`], `.prop_map(..)`,
//! - [`arbitrary::any`], integer-range strategies, tuple strategies,
//! - [`collection::vec`], [`array::uniform4`] / [`array::uniform8`].
//!
//! Semantics differ from the real crate in one deliberate way: there is
//! no shrinking. Failing cases report the generated inputs directly; the
//! deterministic per-test RNG makes every failure reproducible.

#![forbid(unsafe_code)]

/// Test-runner configuration and error types.
pub mod test_runner {
    /// Configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of randomized cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed test case (carried as an early return out of the case body).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic RNG (splitmix64) seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG deterministically seeded from the property's name.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name; stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Multiply-shift; bias is negligible for test generation.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A value generator. Unlike real proptest there is no shrinking: a
    /// strategy is just a function from RNG state to a value.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { s: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        s: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.s.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies ([`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given non-empty option list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty());
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    // Span ≤ u64::MAX for all supported types.
                    (self.start as i128 + rng.below(span as u64) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t; // Full-width range.
                    }
                    (*self.start() as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    $(let $v = $s.generate(rng);)+
                    ($($v,)+)
                }
            }
        };
    }
    tuple_strategy!(A / a);
    tuple_strategy!(A / a, B / b);
    tuple_strategy!(A / a, B / b, C / c);
    tuple_strategy!(A / a, B / b, C / c, D / d);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g);
    tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g, H / h);
}

/// [`any`](arbitrary::any) and the [`Arbitrary`](arbitrary::Arbitrary) trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`uniform4`] / [`uniform8`].
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            let mut out = Vec::with_capacity(N);
            for _ in 0..N {
                out.push(self.0.generate(rng));
            }
            match out.try_into() {
                Ok(a) => a,
                Err(_) => unreachable!("length N by construction"),
            }
        }
    }

    /// An array of 4 values drawn from `s`.
    pub fn uniform4<S: Strategy>(s: S) -> UniformArray<S, 4> {
        UniformArray(s)
    }

    /// An array of 8 values drawn from `s`.
    pub fn uniform8<S: Strategy>(s: S) -> UniformArray<S, 8> {
        UniformArray(s)
    }
}

/// The usual imports for property tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: `proptest! { #[test] fn p(x in strat) { .. } }`.
///
/// Each property runs `cases` times (from the optional
/// `#![proptest_config(..)]`, default 256) with inputs drawn from the
/// given strategies by a deterministic per-test RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::for_test(::std::stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $arg =
                    $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                // Inputs are rendered up front because the body may consume
                // them by value.
                let __inputs = [$(::std::format!(
                    ::std::concat!("  ", ::std::stringify!($arg), " = {:?}"),
                    &$arg
                )),+]
                .join("\n");
                let __r: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __r {
                    ::std::panic!(
                        "property {} failed at case {}/{}: {}\ninputs:\n{}",
                        ::std::stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __e,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` for property cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr $(,)?) => {{
        let (__l, __r) = (&$l, &$r);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            __l,
            __r
        );
    }};
    ($l:expr, $r:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$l, &$r);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}",
            __l,
            __r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` for property cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($l:expr, $r:expr $(,)?) => {{
        let (__l, __r) = (&$l, &$r);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  left: {:?}\n right: {:?}",
            __l,
            __r
        );
    }};
    ($l:expr, $r:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$l, &$r);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `left != right`\n  left: {:?}\n right: {:?}\n {}",
            __l,
            __r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(1u8..32), &mut rng);
            assert!((1..32).contains(&v));
            let v = Strategy::generate(&(1u32..=12), &mut rng);
            assert!((1..=12).contains(&v));
            let v = Strategy::generate(&(-5i32..7), &mut rng);
            assert!((-5..7).contains(&v));
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let s = prop_oneof![Just(1u32), Just(2), Just(3)];
        let mut rng = TestRng::for_test("oneof");
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(Strategy::generate(&s, &mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn vec_lengths_respect_range() {
        let s = crate::collection::vec(any::<u32>(), 1..4);
        let mut rng = TestRng::for_test("vec");
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: generated args bind and assertions work.
        #[test]
        fn prop_macro_smoke(x in any::<u32>(), y in 1u64..100, v in crate::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!((1..100).contains(&y));
            prop_assert_eq!(x, x);
            prop_assert_ne!(y, 0);
            prop_assert!(v.len() < 8, "len {}", v.len());
        }
    }
}
