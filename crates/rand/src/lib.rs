//! Vendored minimal RNG.
//!
//! The workspace builds hermetically with no crate registry, so the real
//! `rand` cannot be fetched. This crate provides the subset the repo uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is splitmix64 — statistically fine for test-input
//! generation, deterministic across platforms, and explicitly **not**
//! cryptographic (nothing in the workspace uses `rand` for key material;
//! the crypto crate has its own DRBG).

#![forbid(unsafe_code)]

/// Seeding constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait FromRng {
    /// Draws an unconstrained value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`]. Generic over the element type
/// (like real rand) so integer-literal ranges infer from the call site.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start() <= self.end(), "empty gen_range");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (*self.start() as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

/// The user-facing generator interface.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Draws an unconstrained value of an inferred integer/bool type.
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator (splitmix64 in this vendored subset).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(1..64u32);
            assert!((1..64).contains(&v));
            let v = r.gen_range(1..=2usize);
            assert!((1..=2).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "{hits}");
    }

    #[test]
    fn gen_infers_types() {
        let mut r = StdRng::seed_from_u64(3);
        let _: u32 = r.gen();
        let _: bool = r.gen();
        let _: usize = r.gen();
    }
}
