//! The abstract PageDB (paper §4, §5.2).
//!
//! "Komodo tracks the state of secure pages using a data structure we term
//! the PageDB ... for every secure page, it stores the page's allocation
//! state, and, if allocated, its type and a reference to the owning
//! enclave." Each allocated page has one of six types: address space,
//! thread, first-level page table, second-level page table, data page, and
//! spare page.

use crate::measure::Measurement;
use crate::types::{PageNr, KOM_L1_SLOTS, KOM_L2_SLOTS, KOM_PAGE_WORDS};

/// Lifecycle state of an address space (enclave).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AddrspaceState {
    /// Under construction: the OS may map pages and create threads.
    Init,
    /// Finalised: executable; the measurement is fixed (§4).
    Final,
    /// Stopped: never executes again; pages may be `Remove`d.
    Stopped,
}

/// Saved user-mode execution context of a suspended thread.
///
/// "On an interrupt, the monitor saves register context in the thread page"
/// (§4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UserContext {
    /// R0–R12, SP, LR as the enclave last saw them.
    pub regs: [u32; 15],
    /// Program counter to resume at.
    pub pc: u32,
    /// Saved condition flags (N, Z, C, V packed in bits 31–28).
    pub cpsr_flags: u32,
}

impl UserContext {
    /// The all-zero context of a fresh thread.
    pub fn zeroed() -> UserContext {
        UserContext {
            regs: [0; 15],
            pc: 0,
            cpsr_flags: 0,
        }
    }
}

/// A second-level page-table slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum L2Entry {
    /// Unmapped.
    Nothing,
    /// A secure data page owned by the same address space.
    SecureMapping {
        /// The data page.
        page: PageNr,
        /// Writable by the enclave.
        w: bool,
        /// Executable by the enclave.
        x: bool,
    },
    /// An insecure (OS-shared) physical page; never executable.
    InsecureMapping {
        /// Physical page frame number in insecure RAM.
        pfn: u32,
        /// Writable by the enclave.
        w: bool,
    },
}

/// One PageDB entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PageEntry {
    /// Unallocated.
    Free,
    /// An address space (enclave root).
    Addrspace {
        /// The enclave's first-level page table page.
        l1pt: PageNr,
        /// Number of other pages owned by this address space (the
        /// address space "is reference counted, and must be removed
        /// last", §4).
        refcount: usize,
        /// Lifecycle state.
        state: AddrspaceState,
        /// Attestation measurement (running record until finalised).
        measurement: Measurement,
    },
    /// The single first-level page table of an address space: 256 slots of
    /// 4 MB, each optionally naming an L2 page-table page.
    L1PTable {
        /// Owning address space.
        addrspace: PageNr,
        /// `l1index -> L2 page-table page`.
        slots: Box<[Option<PageNr>; KOM_L1_SLOTS]>,
    },
    /// A second-level page-table page: 1024 small-page slots (4 MB).
    L2PTable {
        /// Owning address space.
        addrspace: PageNr,
        /// Mapping slots.
        slots: Box<[L2Entry; KOM_L2_SLOTS]>,
    },
    /// An enclave thread.
    Thread {
        /// Owning address space.
        addrspace: PageNr,
        /// Entry point virtual address.
        entry: u32,
        /// "The thread context is marked as entered, to prevent a
        /// suspended thread from being re-entered" (§4).
        entered: bool,
        /// Saved context (meaningful when `entered`).
        context: UserContext,
        /// Staging buffer for the multi-step `Verify` SVC: `data[8]` then
        /// `measure[8]`.
        verify_words: [u32; 16],
    },
    /// A secure data page with private contents.
    Data {
        /// Owning address space.
        addrspace: PageNr,
        /// Page contents.
        contents: Box<[u32; KOM_PAGE_WORDS]>,
    },
    /// A spare page allocated for dynamic memory management (SGXv2-style,
    /// §4 "Dynamic allocation"); not yet accessible to the enclave.
    Spare {
        /// Owning address space.
        addrspace: PageNr,
    },
}

impl PageEntry {
    /// The owning address space for owned page types (`None` for `Free`
    /// and for `Addrspace` itself).
    pub fn addrspace(&self) -> Option<PageNr> {
        match *self {
            PageEntry::Free | PageEntry::Addrspace { .. } => None,
            PageEntry::L1PTable { addrspace, .. }
            | PageEntry::L2PTable { addrspace, .. }
            | PageEntry::Thread { addrspace, .. }
            | PageEntry::Data { addrspace, .. }
            | PageEntry::Spare { addrspace } => Some(addrspace),
        }
    }

    /// Whether this entry is free.
    pub fn is_free(&self) -> bool {
        matches!(self, PageEntry::Free)
    }
}

/// The PageDB: one entry per secure page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageDb {
    entries: Vec<PageEntry>,
}

impl PageDb {
    /// A PageDB with `npages` free pages (the boot state).
    pub fn new(npages: usize) -> PageDb {
        PageDb {
            entries: vec![PageEntry::Free; npages],
        }
    }

    /// Number of secure pages.
    pub fn npages(&self) -> usize {
        self.entries.len()
    }

    /// The entry for `pg`, if in range.
    pub fn get(&self, pg: PageNr) -> Option<&PageEntry> {
        self.entries.get(pg)
    }

    /// Mutable entry for `pg`.
    pub fn get_mut(&mut self, pg: PageNr) -> Option<&mut PageEntry> {
        self.entries.get_mut(pg)
    }

    /// Replaces the entry for `pg`.
    ///
    /// # Panics
    ///
    /// Panics if `pg` is out of range (callers validate first).
    pub fn set(&mut self, pg: PageNr, e: PageEntry) {
        self.entries[pg] = e;
    }

    /// Whether `pg` is in range and free.
    pub fn is_free(&self, pg: PageNr) -> bool {
        matches!(self.get(pg), Some(PageEntry::Free))
    }

    /// Whether `pg` is a valid address-space page.
    pub fn is_addrspace(&self, pg: PageNr) -> bool {
        matches!(self.get(pg), Some(PageEntry::Addrspace { .. }))
    }

    /// The state of address space `asp`, if it is one.
    pub fn addrspace_state(&self, asp: PageNr) -> Option<AddrspaceState> {
        match self.get(asp) {
            Some(PageEntry::Addrspace { state, .. }) => Some(*state),
            _ => None,
        }
    }

    /// The L1 page table of address space `asp`.
    pub fn l1pt_of(&self, asp: PageNr) -> Option<PageNr> {
        match self.get(asp) {
            Some(PageEntry::Addrspace { l1pt, .. }) => Some(*l1pt),
            _ => None,
        }
    }

    /// The measurement of address space `asp`.
    pub fn measurement_of(&self, asp: PageNr) -> Option<&Measurement> {
        match self.get(asp) {
            Some(PageEntry::Addrspace { measurement, .. }) => Some(measurement),
            _ => None,
        }
    }

    /// Adjusts the refcount of address space `asp`.
    pub(crate) fn add_ref(&mut self, asp: PageNr, delta: isize) {
        if let Some(PageEntry::Addrspace { refcount, .. }) = self.get_mut(asp) {
            *refcount = refcount
                .checked_add_signed(delta)
                .expect("refcount underflow is a specification bug");
        }
    }

    /// All pages owned by `asp` (excluding the address-space page itself).
    pub fn pages_of(&self, asp: PageNr) -> Vec<PageNr> {
        (0..self.npages())
            .filter(|&pg| self.entries[pg].addrspace() == Some(asp))
            .collect()
    }

    /// Set of free page numbers — `F(d)` in the paper's Definition 2.
    pub fn free_pages(&self) -> Vec<PageNr> {
        (0..self.npages())
            .filter(|&pg| self.entries[pg].is_free())
            .collect()
    }

    /// Looks up the L2 entry for `mapping` in `asp`'s page tables, along
    /// with the L2 page-table page holding it.
    pub fn lookup_mapping(
        &self,
        asp: PageNr,
        mapping: crate::types::Mapping,
    ) -> Option<(PageNr, L2Entry)> {
        let l1pt = self.l1pt_of(asp)?;
        let PageEntry::L1PTable { slots, .. } = self.get(l1pt)? else {
            return None;
        };
        let l2pg = (*slots.get(mapping.l1_index())?)?;
        let PageEntry::L2PTable { slots, .. } = self.get(l2pg)? else {
            return None;
        };
        Some((l2pg, slots[mapping.l2_slot()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Mapping;

    #[test]
    fn new_pagedb_all_free() {
        let d = PageDb::new(8);
        assert_eq!(d.npages(), 8);
        assert_eq!(d.free_pages().len(), 8);
        assert!(d.is_free(7));
        assert!(!d.is_free(8));
    }

    #[test]
    fn ownership_queries() {
        let mut d = PageDb::new(8);
        d.set(
            0,
            PageEntry::Addrspace {
                l1pt: 1,
                refcount: 2,
                state: AddrspaceState::Init,
                measurement: Measurement::new(),
            },
        );
        d.set(
            1,
            PageEntry::L1PTable {
                addrspace: 0,
                slots: Box::new([None; KOM_L1_SLOTS]),
            },
        );
        d.set(2, PageEntry::Spare { addrspace: 0 });
        assert!(d.is_addrspace(0));
        assert!(!d.is_addrspace(1));
        assert_eq!(d.l1pt_of(0), Some(1));
        assert_eq!(d.pages_of(0), vec![1, 2]);
        assert_eq!(d.addrspace_state(0), Some(AddrspaceState::Init));
    }

    #[test]
    fn refcount_adjustment() {
        let mut d = PageDb::new(4);
        d.set(
            0,
            PageEntry::Addrspace {
                l1pt: 1,
                refcount: 0,
                state: AddrspaceState::Init,
                measurement: Measurement::new(),
            },
        );
        d.add_ref(0, 1);
        d.add_ref(0, 1);
        d.add_ref(0, -1);
        match d.get(0) {
            Some(PageEntry::Addrspace { refcount, .. }) => assert_eq!(*refcount, 1),
            _ => panic!(),
        }
    }

    #[test]
    fn lookup_mapping_walks_tables() {
        let mut d = PageDb::new(8);
        let mut l1 = Box::new([None; KOM_L1_SLOTS]);
        l1[3] = Some(2);
        let mut l2 = Box::new([L2Entry::Nothing; KOM_L2_SLOTS]);
        l2[7] = L2Entry::SecureMapping {
            page: 5,
            w: true,
            x: false,
        };
        d.set(
            0,
            PageEntry::Addrspace {
                l1pt: 1,
                refcount: 3,
                state: AddrspaceState::Init,
                measurement: Measurement::new(),
            },
        );
        d.set(
            1,
            PageEntry::L1PTable {
                addrspace: 0,
                slots: l1,
            },
        );
        d.set(
            2,
            PageEntry::L2PTable {
                addrspace: 0,
                slots: l2,
            },
        );
        // l1_index 3, l2_slot 7 → vpn = 3*1024 + 7.
        let m = Mapping {
            vpn: 3 * 1024 + 7,
            r: true,
            w: true,
            x: false,
        };
        assert_eq!(
            d.lookup_mapping(0, m),
            Some((
                2,
                L2Entry::SecureMapping {
                    page: 5,
                    w: true,
                    x: false
                }
            ))
        );
        // A VPN whose L1 slot is empty resolves to nothing.
        let unmapped = Mapping { vpn: 9 * 1024, ..m };
        assert_eq!(d.lookup_mapping(0, unmapped), None);
    }

    #[test]
    fn entry_addrspace_field() {
        assert_eq!(PageEntry::Free.addrspace(), None);
        assert_eq!(PageEntry::Spare { addrspace: 3 }.addrspace(), Some(3));
        assert!(PageEntry::Free.is_free());
    }
}
