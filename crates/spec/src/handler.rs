//! The top-level `smchandler` (paper §5.2).
//!
//! "The top level of our specification is a predicate describing the SMC
//! handler", relating the pre-call machine/PageDB states to the post-call
//! states. Executable form: a dispatcher that routes an OS call number and
//! argument registers to the pure per-call functions, producing the
//! successor PageDB, an error code, and a return value — the three things
//! the OS observes.

use crate::enter::{enter, resume, EnterEnv, InsecureMem, UserExec};
use crate::pagedb::PageDb;
use crate::params::SecureParams;
use crate::smc;
use crate::types::{KomErr, Mapping, SmcCall, KOM_PAGE_WORDS};

/// Environment threaded through the handler: platform parameters plus the
/// enclave-execution machinery for `Enter`/`Resume`.
pub struct HandlerEnv<'a> {
    /// Validation parameters.
    pub params: &'a SecureParams,
    /// Boot-time attestation secret.
    pub attest_key: &'a [u8],
    /// Hardware randomness.
    pub rng: &'a mut dyn FnMut() -> u32,
    /// Nondeterministic enclave execution.
    pub exec: &'a mut dyn UserExec,
    /// Insecure memory.
    pub insecure: &'a mut dyn InsecureMem,
    /// SVC round-trip bound.
    pub max_svcs: usize,
}

/// Dispatches one secure monitor call.
///
/// `MapSecure` reads its initial contents from the named insecure page via
/// the environment, *after* validating the PFN — mirroring the monitor.
pub fn smc_handler(
    d: PageDb,
    env: &mut HandlerEnv<'_>,
    call: u32,
    args: [u32; 4],
) -> (PageDb, KomErr, u32) {
    let Some(call) = SmcCall::from_code(call) else {
        return (d, KomErr::InvalidCall, 0);
    };
    match call {
        SmcCall::GetPhysPages => {
            let n = smc::get_phys_pages(&d);
            (d, KomErr::Ok, n)
        }
        SmcCall::InitAddrspace => {
            let (d, e) = smc::init_addrspace(d, env.params, args[0] as usize, args[1] as usize);
            (d, e, 0)
        }
        SmcCall::InitThread => {
            let (d, e) =
                smc::init_thread(d, env.params, args[0] as usize, args[1] as usize, args[2]);
            (d, e, 0)
        }
        SmcCall::InitL2PTable => {
            let (d, e) =
                smc::init_l2ptable(d, env.params, args[0] as usize, args[1] as usize, args[2]);
            (d, e, 0)
        }
        SmcCall::AllocSpare => {
            let (d, e) = smc::alloc_spare(d, env.params, args[0] as usize, args[1] as usize);
            (d, e, 0)
        }
        SmcCall::MapSecure => {
            let mapping = Mapping::unpack(args[2]);
            let pfn = args[3];
            // Contents are read only once the PFN is known valid; an
            // invalid PFN still flows through `map_secure` so the error
            // is reported at the same position in the check order as the
            // implementation's.
            let contents: Box<[u32; KOM_PAGE_WORDS]> = if env.params.valid_insecure_pfn(pfn) {
                env.insecure.read_page(pfn)
            } else {
                Box::new([0; KOM_PAGE_WORDS])
            };
            let (d, e) = smc::map_secure(
                d,
                env.params,
                args[0] as usize,
                args[1] as usize,
                mapping,
                pfn,
                &contents,
            );
            (d, e, 0)
        }
        SmcCall::MapInsecure => {
            let (d, e) = smc::map_insecure(
                d,
                env.params,
                args[0] as usize,
                Mapping::unpack(args[1]),
                args[2],
            );
            (d, e, 0)
        }
        SmcCall::Finalise => {
            let (d, e) = smc::finalise(d, env.params, args[0] as usize);
            (d, e, 0)
        }
        SmcCall::Enter => {
            let mut eenv = EnterEnv {
                attest_key: env.attest_key,
                rng: env.rng,
                max_svcs: env.max_svcs,
            };
            enter(
                d,
                &mut eenv,
                env.exec,
                env.insecure,
                args[0] as usize,
                [args[1], args[2], args[3]],
            )
        }
        SmcCall::Resume => {
            let mut eenv = EnterEnv {
                attest_key: env.attest_key,
                rng: env.rng,
                max_svcs: env.max_svcs,
            };
            resume(d, &mut eenv, env.exec, env.insecure, args[0] as usize)
        }
        SmcCall::Stop => {
            let (d, e) = smc::stop(d, env.params, args[0] as usize);
            (d, e, 0)
        }
        SmcCall::Remove => {
            let (d, e) = smc::remove(d, env.params, args[0] as usize);
            (d, e, 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enter::{UserExitKind, UserStep, UserVisible};
    use std::collections::HashMap;

    struct NopExec;

    impl UserExec for NopExec {
        fn step(&mut self, view: &UserVisible) -> UserStep {
            let mut regs = view.regs;
            regs[0] = crate::types::SvcCall::Exit as u32;
            regs[1] = 123;
            UserStep {
                regs,
                pc: view.pc,
                cpsr_flags: 0,
                secure_writes: Vec::new(),
                insecure_writes: Vec::new(),
                exit: UserExitKind::Svc,
            }
        }
    }

    struct MapMem(HashMap<u32, Box<[u32; KOM_PAGE_WORDS]>>);

    impl InsecureMem for MapMem {
        fn read_page(&mut self, pfn: u32) -> Box<[u32; KOM_PAGE_WORDS]> {
            self.0
                .get(&pfn)
                .cloned()
                .unwrap_or_else(|| Box::new([0; KOM_PAGE_WORDS]))
        }
        fn write_word(&mut self, pfn: u32, index: usize, value: u32) {
            self.0
                .entry(pfn)
                .or_insert_with(|| Box::new([0; KOM_PAGE_WORDS]))[index] = value;
        }
    }

    #[test]
    fn full_lifecycle_through_dispatcher() {
        let params = SecureParams::for_tests();
        let mut rng = || 4u32;
        let mut exec = NopExec;
        let mut insecure = MapMem(HashMap::new());
        let mut env = HandlerEnv {
            params: &params,
            attest_key: b"k",
            rng: &mut rng,
            exec: &mut exec,
            insecure: &mut insecure,
            max_svcs: 8,
        };
        let d = PageDb::new(params.npages);
        let (d, e, n) = smc_handler(d, &mut env, SmcCall::GetPhysPages as u32, [0; 4]);
        assert_eq!((e, n as usize), (KomErr::Ok, params.npages));
        let (d, e, _) = smc_handler(d, &mut env, SmcCall::InitAddrspace as u32, [0, 1, 0, 0]);
        assert_eq!(e, KomErr::Ok);
        let (d, e, _) = smc_handler(d, &mut env, SmcCall::InitL2PTable as u32, [0, 2, 0, 0]);
        assert_eq!(e, KomErr::Ok);
        let (d, e, _) = smc_handler(d, &mut env, SmcCall::InitThread as u32, [0, 3, 0x8000, 0]);
        assert_eq!(e, KomErr::Ok);
        let m = Mapping {
            vpn: 8,
            r: true,
            w: true,
            x: false,
        };
        let (d, e, _) = smc_handler(d, &mut env, SmcCall::MapSecure as u32, [0, 4, m.pack(), 10]);
        assert_eq!(e, KomErr::Ok);
        let (d, e, _) = smc_handler(d, &mut env, SmcCall::Finalise as u32, [0, 0, 0, 0]);
        assert_eq!(e, KomErr::Ok);
        let (d, e, v) = smc_handler(d, &mut env, SmcCall::Enter as u32, [3, 9, 9, 9]);
        assert_eq!((e, v), (KomErr::Ok, 123));
        assert!(crate::invariants::valid_pagedb(&d, &params));
    }

    #[test]
    fn unknown_call_rejected() {
        let params = SecureParams::for_tests();
        let mut rng = || 0u32;
        let mut exec = NopExec;
        let mut insecure = MapMem(HashMap::new());
        let mut env = HandlerEnv {
            params: &params,
            attest_key: b"k",
            rng: &mut rng,
            exec: &mut exec,
            insecure: &mut insecure,
            max_svcs: 8,
        };
        let (_, e, _) = smc_handler(PageDb::new(params.npages), &mut env, 99, [0; 4]);
        assert_eq!(e, KomErr::InvalidCall);
    }
}
