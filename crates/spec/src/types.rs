//! Core specification types: page numbers, mappings, call numbers, errors.

/// Index of a page within the secure page pool (not a physical address).
///
/// The OS names secure pages by number in every monitor call; the monitor
/// translates to physical addresses internally.
pub type PageNr = usize;

/// Words per 4 kB secure page.
pub const KOM_PAGE_WORDS: usize = 1024;

/// Enclave virtual address space limit: 1 GB (`TTBCR.N = 2`, Figure 4).
pub const KOM_ENCLAVE_VA_LIMIT: u32 = 0x4000_0000;

/// Number of 4 MB first-level slots in the enclave address space; the
/// `l1index` argument of `InitL2PTable` must be below this.
pub const KOM_L1_SLOTS: usize = 256;

/// Second-level mapping slots per Komodo L2 page-table page (four 1 kB
/// coarse tables × 256 entries, covering 4 MB).
pub const KOM_L2_SLOTS: usize = 1024;

/// A virtual mapping argument: target virtual page plus permissions,
/// packed into a single word as in the Komodo ABI (`Mapping va` in
/// Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Mapping {
    /// Virtual page number (`va >> 12`); must lie below the 1 GB limit.
    pub vpn: u32,
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl Mapping {
    /// Packs to the ABI word: VA page in bits `[31:12]`, `R`/`W`/`X` in
    /// bits 0–2.
    pub fn pack(self) -> u32 {
        (self.vpn << 12) | (self.r as u32) | ((self.w as u32) << 1) | ((self.x as u32) << 2)
    }

    /// Unpacks from the ABI word.
    pub fn unpack(word: u32) -> Mapping {
        Mapping {
            vpn: word >> 12,
            r: word & 1 != 0,
            w: word & 2 != 0,
            x: word & 4 != 0,
        }
    }

    /// The virtual address of the mapped page.
    pub fn va(self) -> u32 {
        self.vpn << 12
    }

    /// The 4 MB first-level slot this mapping falls in.
    pub fn l1_index(self) -> usize {
        (self.vpn >> 10) as usize
    }

    /// The slot within the owning L2 page-table page.
    pub fn l2_slot(self) -> usize {
        (self.vpn & 0x3ff) as usize
    }

    /// Whether the virtual page lies within the enclave address space.
    pub fn in_bounds(self) -> bool {
        self.vpn < (KOM_ENCLAVE_VA_LIMIT >> 12)
    }
}

/// Monitor call result codes, mirroring the Komodo ABI's `KOM_ERR_*`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum KomErr {
    /// Success.
    Ok = 0,
    /// A page-number argument is out of range.
    InvalidPageNo = 1,
    /// A page expected to be free is allocated (or vice versa).
    PageInUse = 2,
    /// The address-space argument does not name a valid address space (or
    /// the page belongs to a different one).
    InvalidAddrspace = 3,
    /// Operation requires a non-finalised enclave.
    AlreadyFinal = 4,
    /// Operation requires a finalised enclave.
    NotFinal = 5,
    /// The mapping argument is malformed, out of bounds, or the relevant
    /// page table does not exist.
    InvalidMapping = 6,
    /// The target virtual address is already mapped.
    AddrInUse = 7,
    /// Deallocation requires a stopped enclave.
    NotStopped = 8,
    /// The address space still owns pages and cannot be removed.
    PagesRemain = 9,
    /// The thread is already entered and must be `Resume`d.
    AlreadyEntered = 10,
    /// The thread is not entered and cannot be `Resume`d.
    NotEntered = 11,
    /// Enclave execution was interrupted; the OS should `Resume`.
    Interrupted = 12,
    /// The enclave faulted; the thread is dead.
    Fault = 13,
    /// An insecure-memory address argument is invalid (outside insecure
    /// RAM, or aliasing monitor/secure memory).
    InvalidInsecure = 14,
    /// A malformed call number or argument.
    InvalidCall = 15,
    /// The page is not a spare page (dynamic-memory SVCs).
    NotSpare = 16,
    /// The enclave is stopped and cannot run or be modified.
    Stopped = 17,
}

impl KomErr {
    /// The ABI word for this error.
    pub fn code(self) -> u32 {
        self as u32
    }
}

/// Secure monitor call numbers (OS→monitor ABI, Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum SmcCall {
    /// `GetPhysPages() -> int npages`.
    GetPhysPages = 1,
    /// `InitAddrspace(asPg, l1ptPg)`.
    InitAddrspace = 2,
    /// `InitThread(asPg, threadPg, entry)`.
    InitThread = 3,
    /// `InitL2PTable(asPg, l2ptPg, l1index)`.
    InitL2PTable = 4,
    /// `AllocSpare(asPg, sparePg)` (SGXv2-style dynamic memory).
    AllocSpare = 5,
    /// `MapSecure(asPg, dataPg, mapping, contentsPg)`.
    MapSecure = 6,
    /// `MapInsecure(asPg, mapping, targetPg)`.
    MapInsecure = 7,
    /// `Finalise(asPg)`.
    Finalise = 8,
    /// `Enter(threadPg, a1, a2, a3) -> retval`.
    Enter = 9,
    /// `Resume(threadPg) -> retval`.
    Resume = 10,
    /// `Stop(asPg)`.
    Stop = 11,
    /// `Remove(pg)`.
    Remove = 12,
}

impl SmcCall {
    /// Decodes an ABI call number.
    pub fn from_code(code: u32) -> Option<SmcCall> {
        Some(match code {
            1 => SmcCall::GetPhysPages,
            2 => SmcCall::InitAddrspace,
            3 => SmcCall::InitThread,
            4 => SmcCall::InitL2PTable,
            5 => SmcCall::AllocSpare,
            6 => SmcCall::MapSecure,
            7 => SmcCall::MapInsecure,
            8 => SmcCall::Finalise,
            9 => SmcCall::Enter,
            10 => SmcCall::Resume,
            11 => SmcCall::Stop,
            12 => SmcCall::Remove,
            _ => return None,
        })
    }
}

/// Supervisor call numbers (enclave→monitor ABI, Table 1).
///
/// `Verify(data[8], measure[8], mac[8])` takes 24 words of input — more
/// than the register file carries — so, as in the Komodo prototype, it is
/// split into three register-sized steps buffered in the thread page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum SvcCall {
    /// `Exit(retval)`: return `R1` to the OS.
    Exit = 0,
    /// `GetRandom() -> u32` in `R1`.
    GetRandom = 1,
    /// `Attest(data[8])`: data in `R1`–`R8`, MAC returned in `R1`–`R8`.
    Attest = 2,
    /// `Verify` step 0: stage `data[8]` from `R1`–`R8`.
    VerifyStep0 = 3,
    /// `Verify` step 1: stage `measure[8]` from `R1`–`R8`.
    VerifyStep1 = 4,
    /// `Verify` step 2: check `mac[8]` from `R1`–`R8`; `ok` in `R1`.
    VerifyStep2 = 5,
    /// `InitL2PTable(sparePg, l1index)` (enclave-initiated).
    InitL2PTable = 6,
    /// `MapData(sparePg, mapping)`.
    MapData = 7,
    /// `UnmapData(dataPg, mapping)`.
    UnmapData = 8,
}

impl SvcCall {
    /// Decodes an ABI call number (passed in `R0`).
    pub fn from_code(code: u32) -> Option<SvcCall> {
        Some(match code {
            0 => SvcCall::Exit,
            1 => SvcCall::GetRandom,
            2 => SvcCall::Attest,
            3 => SvcCall::VerifyStep0,
            4 => SvcCall::VerifyStep1,
            5 => SvcCall::VerifyStep2,
            6 => SvcCall::InitL2PTable,
            7 => SvcCall::MapData,
            8 => SvcCall::UnmapData,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_pack_roundtrip() {
        let m = Mapping {
            vpn: 0x12345,
            r: true,
            w: false,
            x: true,
        };
        assert_eq!(Mapping::unpack(m.pack()), m);
    }

    #[test]
    fn mapping_indices() {
        let m = Mapping {
            vpn: 0x40000 - 1, // Last page below 1 GB.
            r: true,
            w: true,
            x: false,
        };
        assert!(m.in_bounds());
        assert_eq!(m.l1_index(), 255);
        assert_eq!(m.l2_slot(), 1023);
        let over = Mapping { vpn: 0x40000, ..m };
        assert!(!over.in_bounds());
    }

    #[test]
    fn mapping_va() {
        let m = Mapping {
            vpn: 5,
            r: true,
            w: false,
            x: false,
        };
        assert_eq!(m.va(), 0x5000);
    }

    #[test]
    fn smc_call_roundtrip() {
        for code in 1..=12 {
            let c = SmcCall::from_code(code).unwrap();
            assert_eq!(c as u32, code);
        }
        assert_eq!(SmcCall::from_code(0), None);
        assert_eq!(SmcCall::from_code(13), None);
    }

    #[test]
    fn svc_call_roundtrip() {
        for code in 0..=8 {
            let c = SvcCall::from_code(code).unwrap();
            assert_eq!(c as u32, code);
        }
        assert_eq!(SvcCall::from_code(9), None);
    }
}
