//! Specification of `Enter` and `Resume` (paper §5.2, §6.3).
//!
//! These are the only monitor calls that involve enclave execution. The
//! specification cannot know what enclave code does; following §6.3, it
//! models execution as an *uninterpreted function* of (i) "all of the
//! user-visible state including the general-purpose registers, the PC on
//! entry to the enclave, and all of memory accessible with the current page
//! table", and (ii) "a source of non-determinism modelled as an unknown
//! integer seed". Implementations of [`UserExec`] provide that function:
//! the NI test suite instantiates it with a seeded hash (deterministic per
//! seed, as the proofs require), and the refinement tests instantiate it
//! with the real simulator.
//!
//! Non-`Exit` SVCs are handled inside the loop and execution resumes — "the
//! specification describes how to compute the results of the call, and
//! return to executing the enclave (using a recursively defined
//! predicate)". Interrupts save the context in the thread page and mark it
//! entered; faults exit with an error code "but no other information, to
//! avoid side-channel leaks" (§4).
//!
//! Insecure-memory updates are modelled separately from secure state: "they
//! are still non-deterministic, but do not depend on user state" (§6.3) —
//! [`UserStep::insecure_writes`] is produced by a distinct callback that
//! sees only public inputs, which is what makes the confidentiality
//! bisimulation provable (and, here, testable).

use crate::pagedb::{L2Entry, PageDb, PageEntry, UserContext};
use crate::svc::{self, executable};
use crate::types::{KomErr, Mapping, PageNr, SvcCall, KOM_PAGE_WORDS};

/// The user-visible machine state presented to (nondeterministic) enclave
/// execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UserVisible {
    /// R0–R12, SP, LR.
    pub regs: [u32; 15],
    /// Program counter.
    pub pc: u32,
    /// Secure pages mapped in the current address space:
    /// `(vpn, contents, writable, executable)`.
    pub secure_pages: Vec<(u32, Box<[u32; KOM_PAGE_WORDS]>, bool, bool)>,
    /// Insecure pages mapped: `(vpn, pfn, writable, contents)`.
    pub insecure_pages: Vec<(u32, u32, bool, Box<[u32; KOM_PAGE_WORDS]>)>,
}

/// How a burst of enclave execution ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UserExitKind {
    /// `SVC` executed; call number in the resulting `R0`.
    Svc,
    /// Interrupted.
    Interrupt,
    /// Any fault (data/prefetch abort, undefined instruction). Which one is
    /// *not* reported to the OS — only "the type of exception taken" in the
    /// coarse sense of "the thread faulted" (§4).
    Fault,
}

/// The result of one burst of enclave execution: havocked registers and
/// memory plus the exception that ended it.
#[derive(Clone, Debug)]
pub struct UserStep {
    /// New register values (R0–R12, SP, LR).
    pub regs: [u32; 15],
    /// PC at the exception.
    pub pc: u32,
    /// Saved condition flags.
    pub cpsr_flags: u32,
    /// New contents for *writable* secure pages, keyed by vpn. Writes to
    /// non-writable pages are a specification violation by the callback
    /// and are ignored.
    pub secure_writes: Vec<(u32, Box<[u32; KOM_PAGE_WORDS]>)>,
    /// Sparse writes to *writable* insecure mappings: `(pfn, index, value)`.
    pub insecure_writes: Vec<(u32, usize, u32)>,
    /// Exception that ended the burst.
    pub exit: UserExitKind,
}

/// Nondeterministic enclave execution: the paper's uninterpreted function.
pub trait UserExec {
    /// Executes one burst from `view`, returning the havocked state.
    fn step(&mut self, view: &UserVisible) -> UserStep;
}

/// Insecure memory as seen by the specification (the OS side owns the real
/// thing; the spec reads mapped pages and applies enclave writes).
pub trait InsecureMem {
    /// Reads a whole insecure page.
    fn read_page(&mut self, pfn: u32) -> Box<[u32; KOM_PAGE_WORDS]>;
    /// Writes one word of an insecure page.
    fn write_word(&mut self, pfn: u32, index: usize, value: u32);
}

/// Environment for `Enter`/`Resume`: attestation key and randomness.
pub struct EnterEnv<'a> {
    /// The boot-time attestation secret.
    pub attest_key: &'a [u8],
    /// The hardware randomness source backing `GetRandom`.
    pub rng: &'a mut dyn FnMut() -> u32,
    /// Bound on SVC round trips, so adversarial [`UserExec`] callbacks
    /// terminate (simulation artifact; exceeding it reports an interrupt).
    pub max_svcs: usize,
}

/// `Enter(threadPg, a1, a2, a3) -> retval` (Table 1).
///
/// "For entry, the PC is set to the entry-point and other registers are
/// zeroed" except the three arguments (§5.2).
pub fn enter(
    d: PageDb,
    env: &mut EnterEnv<'_>,
    exec: &mut dyn UserExec,
    insecure: &mut dyn InsecureMem,
    thread_pg: PageNr,
    args: [u32; 3],
) -> (PageDb, KomErr, u32) {
    let (asp, entry) = match thread_of(&d, thread_pg) {
        Ok(x) => x,
        Err(e) => return (d, e, 0),
    };
    if !executable(&d, asp) {
        let e = err_for_state(&d, asp);
        return (d, e, 0);
    }
    if thread_entered(&d, thread_pg) {
        return (d, KomErr::AlreadyEntered, 0);
    }
    let mut regs = [0u32; 15];
    regs[0] = args[0];
    regs[1] = args[1];
    regs[2] = args[2];
    run_loop(d, env, exec, insecure, thread_pg, asp, regs, entry, 0)
}

/// `Resume(threadPg) -> retval`: resumes a previously interrupted thread
/// from its saved context.
pub fn resume(
    d: PageDb,
    env: &mut EnterEnv<'_>,
    exec: &mut dyn UserExec,
    insecure: &mut dyn InsecureMem,
    thread_pg: PageNr,
) -> (PageDb, KomErr, u32) {
    let (asp, _) = match thread_of(&d, thread_pg) {
        Ok(x) => x,
        Err(e) => return (d, e, 0),
    };
    if !executable(&d, asp) {
        let e = err_for_state(&d, asp);
        return (d, e, 0);
    }
    if !thread_entered(&d, thread_pg) {
        return (d, KomErr::NotEntered, 0);
    }
    let ctx = match d.get(thread_pg) {
        Some(PageEntry::Thread { context, .. }) => *context,
        _ => unreachable!("validated above"),
    };
    let mut d = d;
    if let Some(PageEntry::Thread { entered, .. }) = d.get_mut(thread_pg) {
        *entered = false;
    }
    run_loop(
        d,
        env,
        exec,
        insecure,
        thread_pg,
        asp,
        ctx.regs,
        ctx.pc,
        ctx.cpsr_flags,
    )
}

fn thread_of(d: &PageDb, thread_pg: PageNr) -> Result<(PageNr, u32), KomErr> {
    match d.get(thread_pg) {
        None => Err(KomErr::InvalidPageNo),
        Some(PageEntry::Thread {
            addrspace, entry, ..
        }) => Ok((*addrspace, *entry)),
        Some(_) => Err(KomErr::InvalidPageNo),
    }
}

fn thread_entered(d: &PageDb, thread_pg: PageNr) -> bool {
    matches!(
        d.get(thread_pg),
        Some(PageEntry::Thread { entered: true, .. })
    )
}

fn err_for_state(d: &PageDb, asp: PageNr) -> KomErr {
    match d.addrspace_state(asp) {
        Some(crate::pagedb::AddrspaceState::Init) => KomErr::NotFinal,
        Some(crate::pagedb::AddrspaceState::Stopped) => KomErr::Stopped,
        _ => KomErr::InvalidAddrspace,
    }
}

/// Builds the user-visible view of `asp`'s address space.
pub fn user_view(
    d: &PageDb,
    insecure: &mut dyn InsecureMem,
    asp: PageNr,
    regs: [u32; 15],
    pc: u32,
) -> UserVisible {
    let mut secure_pages = Vec::new();
    let mut insecure_pages = Vec::new();
    let Some(l1pt) = d.l1pt_of(asp) else {
        return UserVisible {
            regs,
            pc,
            secure_pages,
            insecure_pages,
        };
    };
    let Some(PageEntry::L1PTable { slots, .. }) = d.get(l1pt) else {
        return UserVisible {
            regs,
            pc,
            secure_pages,
            insecure_pages,
        };
    };
    for (l1i, slot) in slots.iter().enumerate() {
        let Some(l2pg) = slot else { continue };
        let Some(PageEntry::L2PTable { slots: l2, .. }) = d.get(*l2pg) else {
            continue;
        };
        for (l2i, e) in l2.iter().enumerate() {
            let vpn = (l1i as u32) * 1024 + l2i as u32;
            match e {
                L2Entry::Nothing => {}
                L2Entry::SecureMapping { page, w, x } => {
                    if let Some(PageEntry::Data { contents, .. }) = d.get(*page) {
                        secure_pages.push((vpn, contents.clone(), *w, *x));
                    }
                }
                L2Entry::InsecureMapping { pfn, w } => {
                    insecure_pages.push((vpn, *pfn, *w, insecure.read_page(*pfn)));
                }
            }
        }
    }
    UserVisible {
        regs,
        pc,
        secure_pages,
        insecure_pages,
    }
}

/// Applies the havoc a [`UserStep`] describes, respecting permissions: only
/// writable secure pages and writable insecure mappings change.
fn apply_step(d: &mut PageDb, insecure: &mut dyn InsecureMem, asp: PageNr, step: &UserStep) {
    for (vpn, new_contents) in &step.secure_writes {
        let mapping = Mapping {
            vpn: *vpn,
            r: true,
            w: false,
            x: false,
        };
        if let Some((_, L2Entry::SecureMapping { page, w: true, .. })) =
            d.lookup_mapping(asp, mapping)
        {
            if let Some(PageEntry::Data { contents, .. }) = d.get_mut(page) {
                **contents = **new_contents;
            }
        }
    }
    let writable_pfns: Vec<u32> = {
        let mut v = Vec::new();
        if let Some(l1pt) = d.l1pt_of(asp) {
            if let Some(PageEntry::L1PTable { slots, .. }) = d.get(l1pt) {
                for slot in slots.iter().flatten() {
                    if let Some(PageEntry::L2PTable { slots: l2, .. }) = d.get(*slot) {
                        for e in l2.iter() {
                            if let L2Entry::InsecureMapping { pfn, w: true } = e {
                                v.push(*pfn);
                            }
                        }
                    }
                }
            }
        }
        v
    };
    for (pfn, index, value) in &step.insecure_writes {
        if writable_pfns.contains(pfn) && *index < KOM_PAGE_WORDS {
            insecure.write_word(*pfn, *index, *value);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_loop(
    mut d: PageDb,
    env: &mut EnterEnv<'_>,
    exec: &mut dyn UserExec,
    insecure: &mut dyn InsecureMem,
    thread_pg: PageNr,
    asp: PageNr,
    mut regs: [u32; 15],
    mut pc: u32,
    mut flags: u32,
) -> (PageDb, KomErr, u32) {
    for _ in 0..=env.max_svcs {
        let view = user_view(&d, insecure, asp, regs, pc);
        let step = exec.step(&view);
        apply_step(&mut d, insecure, asp, &step);
        regs = step.regs;
        pc = step.pc;
        flags = step.cpsr_flags;
        match step.exit {
            UserExitKind::Fault => {
                // "The thread simply exits with an error code (but no
                // other information...)" (§4). Registers are not saved.
                return (d, KomErr::Fault, 0);
            }
            UserExitKind::Interrupt => {
                // Save context, mark entered, report the interrupt.
                if let Some(PageEntry::Thread {
                    entered, context, ..
                }) = d.get_mut(thread_pg)
                {
                    *entered = true;
                    *context = UserContext {
                        regs,
                        pc,
                        cpsr_flags: flags,
                    };
                }
                return (d, KomErr::Interrupted, 0);
            }
            UserExitKind::Svc => {
                let call = SvcCall::from_code(regs[0]);
                match call {
                    Some(SvcCall::Exit) => {
                        // Registers are not saved, permitting re-entry (§4).
                        return (d, KomErr::Ok, regs[1]);
                    }
                    Some(SvcCall::GetRandom) => {
                        regs[0] = KomErr::Ok.code();
                        regs[1] = (env.rng)();
                    }
                    Some(SvcCall::Attest) => {
                        let mut data = [0u32; 8];
                        data.copy_from_slice(&regs[1..9]);
                        match svc::attest(&d, env.attest_key, asp, &data) {
                            Ok(mac) => {
                                regs[0] = KomErr::Ok.code();
                                regs[1..9].copy_from_slice(&mac.0);
                            }
                            Err(e) => regs[0] = e.code(),
                        }
                    }
                    Some(SvcCall::VerifyStep0) => {
                        if let Some(PageEntry::Thread { verify_words, .. }) = d.get_mut(thread_pg) {
                            verify_words[..8].copy_from_slice(&regs[1..9]);
                        }
                        regs[0] = KomErr::Ok.code();
                    }
                    Some(SvcCall::VerifyStep1) => {
                        if let Some(PageEntry::Thread { verify_words, .. }) = d.get_mut(thread_pg) {
                            verify_words[8..].copy_from_slice(&regs[1..9]);
                        }
                        regs[0] = KomErr::Ok.code();
                    }
                    Some(SvcCall::VerifyStep2) => {
                        let buf = match d.get(thread_pg) {
                            Some(PageEntry::Thread { verify_words, .. }) => *verify_words,
                            _ => [0; 16],
                        };
                        let mut data = [0u32; 8];
                        data.copy_from_slice(&buf[..8]);
                        let mut measure = [0u32; 8];
                        measure.copy_from_slice(&buf[8..]);
                        let mut mac = [0u32; 8];
                        mac.copy_from_slice(&regs[1..9]);
                        regs[0] = KomErr::Ok.code();
                        regs[1] = svc::verify(env.attest_key, &data, &measure, &mac) as u32;
                    }
                    Some(SvcCall::InitL2PTable) => {
                        let (nd, e) = svc::svc_init_l2ptable(d, asp, regs[1] as usize, regs[2]);
                        d = nd;
                        regs[0] = e.code();
                    }
                    Some(SvcCall::MapData) => {
                        let (nd, e) =
                            svc::svc_map_data(d, asp, regs[1] as usize, Mapping::unpack(regs[2]));
                        d = nd;
                        regs[0] = e.code();
                    }
                    Some(SvcCall::UnmapData) => {
                        let (nd, e) =
                            svc::svc_unmap_data(d, asp, regs[1] as usize, Mapping::unpack(regs[2]));
                        d = nd;
                        regs[0] = e.code();
                    }
                    None => {
                        regs[0] = KomErr::InvalidCall.code();
                    }
                }
                // Return to the enclave and keep executing.
            }
        }
    }
    // SVC budget exhausted: model as an interrupt (the OS can always
    // preempt a runaway enclave).
    if let Some(PageEntry::Thread {
        entered, context, ..
    }) = d.get_mut(thread_pg)
    {
        *entered = true;
        *context = UserContext {
            regs,
            pc,
            cpsr_flags: flags,
        };
    }
    (d, KomErr::Interrupted, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::valid_pagedb;
    use crate::params::SecureParams;
    use crate::smc;
    use std::collections::HashMap;

    /// Scripted enclave execution: a queue of steps to perform.
    struct Script {
        steps: Vec<ScriptStep>,
        at: usize,
    }

    enum ScriptStep {
        /// Issue an SVC with the given r0..r8.
        Svc([u32; 9]),
        /// Fault.
        Fault,
        /// Get interrupted.
        Interrupt,
        /// Write a value to the first writable secure page, then exit with
        /// the first word of that page's *previous* contents.
        WriteSecureThenExit(u32),
    }

    impl UserExec for Script {
        fn step(&mut self, view: &UserVisible) -> UserStep {
            let mut regs = view.regs;
            let mut secure_writes = Vec::new();
            let step = &self.steps[self.at.min(self.steps.len() - 1)];
            self.at += 1;
            let exit = match step {
                ScriptStep::Svc(vals) => {
                    regs[..9].copy_from_slice(vals);
                    UserExitKind::Svc
                }
                ScriptStep::Fault => UserExitKind::Fault,
                ScriptStep::Interrupt => UserExitKind::Interrupt,
                ScriptStep::WriteSecureThenExit(v) => {
                    let (vpn, contents, _, _) = view
                        .secure_pages
                        .iter()
                        .find(|(_, _, w, _)| *w)
                        .expect("a writable page");
                    let old = contents[0];
                    let mut new = contents.clone();
                    new[0] = *v;
                    secure_writes.push((*vpn, new));
                    regs[0] = SvcCall::Exit as u32;
                    regs[1] = old;
                    UserExitKind::Svc
                }
            };
            UserStep {
                regs,
                pc: view.pc.wrapping_add(4),
                cpsr_flags: 0,
                secure_writes,
                insecure_writes: Vec::new(),
                exit,
            }
        }
    }

    struct MapInsecure(HashMap<u32, Box<[u32; KOM_PAGE_WORDS]>>);

    impl InsecureMem for MapInsecure {
        fn read_page(&mut self, pfn: u32) -> Box<[u32; KOM_PAGE_WORDS]> {
            self.0
                .get(&pfn)
                .cloned()
                .unwrap_or_else(|| Box::new([0; KOM_PAGE_WORDS]))
        }
        fn write_word(&mut self, pfn: u32, index: usize, value: u32) {
            self.0
                .entry(pfn)
                .or_insert_with(|| Box::new([0; KOM_PAGE_WORDS]))[index] = value;
        }
    }

    fn params() -> SecureParams {
        SecureParams::for_tests()
    }

    /// Finalised enclave: addrspace 0, l1pt 1, l2pt 2, thread 3, one
    /// writable data page 4 at vpn 8, spare page 5.
    fn built() -> PageDb {
        let p = params();
        let d = PageDb::new(p.npages);
        let (d, _) = smc::init_addrspace(d, &p, 0, 1);
        let (d, _) = smc::init_l2ptable(d, &p, 0, 2, 0);
        let (d, _) = smc::init_thread(d, &p, 0, 3, 0x8000);
        let m = Mapping {
            vpn: 8,
            r: true,
            w: true,
            x: false,
        };
        let (d, e) = smc::map_secure(d, &p, 0, 4, m, 10, &[0xaa; KOM_PAGE_WORDS]);
        assert_eq!(e, KomErr::Ok);
        let (d, e) = smc::finalise(d, &p, 0);
        assert_eq!(e, KomErr::Ok);
        let (d, e) = smc::alloc_spare(d, &p, 0, 5);
        assert_eq!(e, KomErr::Ok);
        d
    }

    fn env<'a>(rng: &'a mut dyn FnMut() -> u32) -> EnterEnv<'a> {
        EnterEnv {
            attest_key: b"spec test key",
            rng,
            max_svcs: 32,
        }
    }

    fn run(d: PageDb, script: Vec<ScriptStep>) -> (PageDb, KomErr, u32) {
        let mut rng = || 7u32;
        let mut env = env(&mut rng);
        let mut exec = Script {
            steps: script,
            at: 0,
        };
        let mut ins = MapInsecure(HashMap::new());
        enter(d, &mut env, &mut exec, &mut ins, 3, [1, 2, 3])
    }

    #[test]
    fn exit_returns_value() {
        let mut svc = [0u32; 9];
        svc[0] = SvcCall::Exit as u32;
        svc[1] = 42;
        let (d, e, v) = run(built(), vec![ScriptStep::Svc(svc)]);
        assert_eq!(e, KomErr::Ok);
        assert_eq!(v, 42);
        assert!(!thread_entered(&d, 3));
        assert!(valid_pagedb(&d, &params()));
    }

    #[test]
    fn enter_requires_final_and_valid_thread() {
        let p = params();
        let d = PageDb::new(p.npages);
        let (d, _) = smc::init_addrspace(d, &p, 0, 1);
        let (d, _) = smc::init_thread(d, &p, 0, 3, 0);
        let (_, e, _) = run(d, vec![ScriptStep::Fault]);
        assert_eq!(e, KomErr::NotFinal);
        // Not a thread page.
        let mut rng = || 0u32;
        let mut env2 = env(&mut rng);
        let mut exec = Script {
            steps: vec![ScriptStep::Fault],
            at: 0,
        };
        let mut ins = MapInsecure(HashMap::new());
        let (_, e, _) = enter(built(), &mut env2, &mut exec, &mut ins, 0, [0; 3]);
        assert_eq!(e, KomErr::InvalidPageNo);
    }

    #[test]
    fn fault_exits_with_error_only() {
        let (d, e, v) = run(built(), vec![ScriptStep::Fault]);
        assert_eq!(e, KomErr::Fault);
        assert_eq!(v, 0);
        assert!(!thread_entered(&d, 3));
    }

    #[test]
    fn interrupt_saves_context_and_resume_continues() {
        let (d, e, _) = run(built(), vec![ScriptStep::Interrupt]);
        assert_eq!(e, KomErr::Interrupted);
        assert!(thread_entered(&d, 3));
        assert!(valid_pagedb(&d, &params()));
        // Re-enter must fail.
        let mut rng = || 0u32;
        let mut env2 = env(&mut rng);
        let mut exec = Script {
            steps: vec![ScriptStep::Fault],
            at: 0,
        };
        let mut ins = MapInsecure(HashMap::new());
        let (d, e, _) = enter(d, &mut env2, &mut exec, &mut ins, 3, [0; 3]);
        assert_eq!(e, KomErr::AlreadyEntered);
        // Resume succeeds and the thread can exit.
        let mut svc = [0u32; 9];
        svc[0] = SvcCall::Exit as u32;
        svc[1] = 9;
        let mut exec = Script {
            steps: vec![ScriptStep::Svc(svc)],
            at: 0,
        };
        let (d, e, v) = resume(d, &mut env2, &mut exec, &mut ins, 3);
        assert_eq!((e, v), (KomErr::Ok, 9));
        assert!(!thread_entered(&d, 3));
    }

    #[test]
    fn resume_requires_entered() {
        let mut rng = || 0u32;
        let mut env2 = env(&mut rng);
        let mut exec = Script {
            steps: vec![ScriptStep::Fault],
            at: 0,
        };
        let mut ins = MapInsecure(HashMap::new());
        let (_, e, _) = resume(built(), &mut env2, &mut exec, &mut ins, 3);
        assert_eq!(e, KomErr::NotEntered);
    }

    #[test]
    fn secure_writes_persist_across_calls() {
        let (d, e, v) = run(built(), vec![ScriptStep::WriteSecureThenExit(0x1111)]);
        assert_eq!(e, KomErr::Ok);
        assert_eq!(v, 0xaa, "previous contents from MapSecure");
        // Second entry observes the first entry's write.
        let (_, e, v) = run(d, vec![ScriptStep::WriteSecureThenExit(0x2222)]);
        assert_eq!(e, KomErr::Ok);
        assert_eq!(v, 0x1111);
    }

    #[test]
    fn get_random_returns_rng_value() {
        let mut svc_rand = [0u32; 9];
        svc_rand[0] = SvcCall::GetRandom as u32;
        // After GetRandom, the script exits with r1 (which now holds the
        // random value)... but the scripted exec overwrites regs; instead
        // verify via attest-style: just check exit flows and rng was called.
        let mut calls = 0u32;
        let mut rng = || {
            calls += 1;
            0xfeed_f00d
        };
        let mut env2 = EnterEnv {
            attest_key: b"k",
            rng: &mut rng,
            max_svcs: 8,
        };
        let mut exit_svc = [0u32; 9];
        exit_svc[0] = SvcCall::Exit as u32;
        let mut exec = Script {
            steps: vec![ScriptStep::Svc(svc_rand), ScriptStep::Svc(exit_svc)],
            at: 0,
        };
        let mut ins = MapInsecure(HashMap::new());
        let (_, e, _) = enter(built(), &mut env2, &mut exec, &mut ins, 3, [0; 3]);
        assert_eq!(e, KomErr::Ok);
        assert_eq!(calls, 1);
    }

    #[test]
    fn attest_and_verify_via_svcs() {
        // Enclave attests data [1..8], then verifies the MAC via the
        // three-step protocol. The scripted exec can't read results, so
        // drive the loop manually through run_loop-visible effects: we
        // check the PageDb verify buffer gets staged.
        let d = built();
        let measure = d.measurement_of(0).unwrap().digest().unwrap();
        let data = [1u32, 2, 3, 4, 5, 6, 7, 8];
        let mac = svc::attest_mac(b"spec test key", &measure, &data);

        let mut s0 = [0u32; 9];
        s0[0] = SvcCall::VerifyStep0 as u32;
        s0[1..].copy_from_slice(&data);
        let mut s1 = [0u32; 9];
        s1[0] = SvcCall::VerifyStep1 as u32;
        s1[1..].copy_from_slice(&measure.0);
        let mut s2 = [0u32; 9];
        s2[0] = SvcCall::VerifyStep2 as u32;
        s2[1..].copy_from_slice(&mac.0);
        let mut exit_svc = [0u32; 9];
        exit_svc[0] = SvcCall::Exit as u32;

        // To observe the verify result we need an exec that passes R1
        // through; extend Script minimally: exit with 0 (flow check) and
        // assert the staged buffer instead.
        let (d, e, _) = run(
            d,
            vec![
                ScriptStep::Svc(s0),
                ScriptStep::Svc(s1),
                ScriptStep::Svc(s2),
                ScriptStep::Svc(exit_svc),
            ],
        );
        assert_eq!(e, KomErr::Ok);
        match d.get(3) {
            Some(PageEntry::Thread { verify_words, .. }) => {
                assert_eq!(&verify_words[..8], &data);
                assert_eq!(&verify_words[8..], &measure.0);
            }
            other => panic!("{other:?}"),
        }
        // And the pure verify accepts/rejects correctly.
        assert!(svc::verify(b"spec test key", &data, &measure.0, &mac.0));
        assert!(!svc::verify(b"spec test key", &data, &measure.0, &[0; 8]));
    }

    #[test]
    fn dynamic_memory_via_svcs() {
        // MapData on spare page 5 at vpn 9, then exit.
        let m = Mapping {
            vpn: 9,
            r: true,
            w: true,
            x: false,
        };
        let mut map = [0u32; 9];
        map[0] = SvcCall::MapData as u32;
        map[1] = 5;
        map[2] = m.pack();
        let mut exit_svc = [0u32; 9];
        exit_svc[0] = SvcCall::Exit as u32;
        let (d, e, _) = run(
            built(),
            vec![ScriptStep::Svc(map), ScriptStep::Svc(exit_svc)],
        );
        assert_eq!(e, KomErr::Ok);
        assert!(matches!(d.get(5), Some(PageEntry::Data { .. })));
        assert!(valid_pagedb(&d, &params()));
    }

    #[test]
    fn invalid_svc_number_reports_error_and_continues() {
        let bad = [99u32, 0, 0, 0, 0, 0, 0, 0, 0];
        let mut exit_svc = [0u32; 9];
        exit_svc[0] = SvcCall::Exit as u32;
        exit_svc[1] = 5;
        let (_, e, v) = run(
            built(),
            vec![ScriptStep::Svc(bad), ScriptStep::Svc(exit_svc)],
        );
        assert_eq!((e, v), (KomErr::Ok, 5));
    }

    #[test]
    fn svc_budget_exhaustion_reports_interrupt() {
        let mut rand_svc = [0u32; 9];
        rand_svc[0] = SvcCall::GetRandom as u32;
        // Script that loops on GetRandom forever (clamped to last step).
        let (d, e, _) = run(built(), vec![ScriptStep::Svc(rand_svc)]);
        assert_eq!(e, KomErr::Interrupted);
        assert!(thread_entered(&d, 3));
    }
}
