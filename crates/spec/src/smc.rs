//! Pure functional specification of the structural secure monitor calls
//! (Table 1, excluding `Enter`/`Resume` which involve enclave execution and
//! live in [`crate::enter`]).
//!
//! "We specify the body of the rest as pure functions that, given an input
//! PageDB and call parameters, compute an error/success code and resulting
//! PageDB" (§5.2). Each function here takes the PageDB by value and returns
//! the successor PageDB with a [`KomErr`]; on error the PageDB is returned
//! unchanged.

use crate::pagedb::{AddrspaceState, L2Entry, PageDb, PageEntry, UserContext};
use crate::params::SecureParams;
use crate::types::{KomErr, Mapping, PageNr, KOM_L1_SLOTS, KOM_L2_SLOTS, KOM_PAGE_WORDS};

/// `GetPhysPages() -> int npages`: the size of the secure page pool.
pub fn get_phys_pages(d: &PageDb) -> u32 {
    d.npages() as u32
}

/// Checks that `asp` is a valid address space in the given state.
fn check_addrspace_state(d: &PageDb, asp: PageNr, want: AddrspaceState) -> Result<(), KomErr> {
    match d.addrspace_state(asp) {
        None => Err(KomErr::InvalidAddrspace),
        Some(s) if s == want => Ok(()),
        Some(AddrspaceState::Final) => Err(KomErr::AlreadyFinal),
        Some(AddrspaceState::Stopped) => Err(KomErr::Stopped),
        Some(AddrspaceState::Init) => Err(KomErr::NotFinal),
    }
}

/// `InitAddrspace(asPg, l1ptPg)`: creates an empty address space.
///
/// The two pages must be valid, free, and *distinct* — the unverified
/// prototype "hadn't considered the case when the two arguments are the
/// same page" (§9.1); the specification makes the check explicit.
pub fn init_addrspace(
    mut d: PageDb,
    params: &SecureParams,
    as_pg: PageNr,
    l1pt_pg: PageNr,
) -> (PageDb, KomErr) {
    if !params.valid_page(as_pg) || !params.valid_page(l1pt_pg) {
        return (d, KomErr::InvalidPageNo);
    }
    if as_pg == l1pt_pg {
        return (d, KomErr::PageInUse);
    }
    if !d.is_free(as_pg) || !d.is_free(l1pt_pg) {
        return (d, KomErr::PageInUse);
    }
    d.set(
        as_pg,
        PageEntry::Addrspace {
            l1pt: l1pt_pg,
            refcount: 1, // The L1 page table.
            state: AddrspaceState::Init,
            measurement: crate::measure::Measurement::new(),
        },
    );
    d.set(
        l1pt_pg,
        PageEntry::L1PTable {
            addrspace: as_pg,
            slots: Box::new([None; KOM_L1_SLOTS]),
        },
    );
    (d, KomErr::Ok)
}

/// `InitThread(asPg, threadPg, entry)`: creates an enclave thread with the
/// given entry point; the entry point is measured (§4).
pub fn init_thread(
    mut d: PageDb,
    params: &SecureParams,
    as_pg: PageNr,
    thread_pg: PageNr,
    entry: u32,
) -> (PageDb, KomErr) {
    if !params.valid_page(as_pg) || !params.valid_page(thread_pg) {
        return (d, KomErr::InvalidPageNo);
    }
    if let Err(e) = check_addrspace_state(&d, as_pg, AddrspaceState::Init) {
        return (d, e);
    }
    if !d.is_free(thread_pg) {
        return (d, KomErr::PageInUse);
    }
    d.set(
        thread_pg,
        PageEntry::Thread {
            addrspace: as_pg,
            entry,
            entered: false,
            context: UserContext::zeroed(),
            verify_words: [0; 16],
        },
    );
    d.add_ref(as_pg, 1);
    if let Some(PageEntry::Addrspace { measurement, .. }) = d.get_mut(as_pg) {
        measurement.record_init_thread(entry);
    }
    (d, KomErr::Ok)
}

/// `InitL2PTable(asPg, l2ptPg, l1index)`: allocates a second-level page
/// table covering the 4 MB slot `l1index`.
pub fn init_l2ptable(
    mut d: PageDb,
    params: &SecureParams,
    as_pg: PageNr,
    l2pt_pg: PageNr,
    l1index: u32,
) -> (PageDb, KomErr) {
    if !params.valid_page(as_pg) || !params.valid_page(l2pt_pg) {
        return (d, KomErr::InvalidPageNo);
    }
    if let Err(e) = check_addrspace_state(&d, as_pg, AddrspaceState::Init) {
        return (d, e);
    }
    if !d.is_free(l2pt_pg) {
        return (d, KomErr::PageInUse);
    }
    if l1index as usize >= KOM_L1_SLOTS {
        return (d, KomErr::InvalidMapping);
    }
    match install_l2pt(&mut d, as_pg, l2pt_pg, l1index as usize) {
        Ok(()) => {}
        Err(e) => return (d, e),
    }
    if let Some(PageEntry::Addrspace { measurement, .. }) = d.get_mut(as_pg) {
        measurement.record_init_l2pt(l1index);
    }
    (d, KomErr::Ok)
}

/// Shared tail of the SMC and SVC `InitL2PTable` paths: installs a zeroed
/// L2 table at `l1index` and bumps the refcount.
pub(crate) fn install_l2pt(
    d: &mut PageDb,
    as_pg: PageNr,
    l2pt_pg: PageNr,
    l1index: usize,
) -> Result<(), KomErr> {
    let l1pt = d.l1pt_of(as_pg).ok_or(KomErr::InvalidAddrspace)?;
    let Some(PageEntry::L1PTable { slots, .. }) = d.get(l1pt) else {
        return Err(KomErr::InvalidAddrspace);
    };
    if slots[l1index].is_some() {
        return Err(KomErr::AddrInUse);
    }
    d.set(
        l2pt_pg,
        PageEntry::L2PTable {
            addrspace: as_pg,
            slots: Box::new([L2Entry::Nothing; KOM_L2_SLOTS]),
        },
    );
    if let Some(PageEntry::L1PTable { slots, .. }) = d.get_mut(l1pt) {
        slots[l1index] = Some(l2pt_pg);
    }
    d.add_ref(as_pg, 1);
    Ok(())
}

/// `AllocSpare(asPg, sparePg)`: gives the enclave a spare page for dynamic
/// allocation. Legal "at any time" before the enclave is stopped (§4), and
/// does not alter the measurement.
pub fn alloc_spare(
    mut d: PageDb,
    params: &SecureParams,
    as_pg: PageNr,
    spare_pg: PageNr,
) -> (PageDb, KomErr) {
    if !params.valid_page(as_pg) || !params.valid_page(spare_pg) {
        return (d, KomErr::InvalidPageNo);
    }
    match d.addrspace_state(as_pg) {
        None => return (d, KomErr::InvalidAddrspace),
        Some(AddrspaceState::Stopped) => return (d, KomErr::Stopped),
        Some(_) => {}
    }
    if !d.is_free(spare_pg) {
        return (d, KomErr::PageInUse);
    }
    d.set(spare_pg, PageEntry::Spare { addrspace: as_pg });
    d.add_ref(as_pg, 1);
    (d, KomErr::Ok)
}

/// Validates the common parts of a mapping argument: bounds and the
/// existence of the covering L2 page table; returns the L2 page.
fn check_mapping(d: &PageDb, as_pg: PageNr, mapping: Mapping) -> Result<PageNr, KomErr> {
    if !mapping.in_bounds() || !mapping.r {
        return Err(KomErr::InvalidMapping);
    }
    match d.lookup_mapping(as_pg, mapping) {
        None => Err(KomErr::InvalidMapping),
        Some((_, L2Entry::SecureMapping { .. })) | Some((_, L2Entry::InsecureMapping { .. })) => {
            Err(KomErr::AddrInUse)
        }
        Some((l2pg, L2Entry::Nothing)) => Ok(l2pg),
    }
}

/// `MapSecure(asPg, dataPg, mapping, contentsPfn)`: allocates a private
/// data page, initialised from an insecure page, mapped at the given VA
/// and permissions. The VA, permissions and contents are all measured (§4).
///
/// `contents` are the words the dispatcher read from `contents_pfn`; the
/// PFN itself is validated against the platform layout (including the
/// monitor's own pages, §9.1).
pub fn map_secure(
    mut d: PageDb,
    params: &SecureParams,
    as_pg: PageNr,
    data_pg: PageNr,
    mapping: Mapping,
    contents_pfn: u32,
    contents: &[u32; KOM_PAGE_WORDS],
) -> (PageDb, KomErr) {
    if !params.valid_page(as_pg) || !params.valid_page(data_pg) {
        return (d, KomErr::InvalidPageNo);
    }
    if let Err(e) = check_addrspace_state(&d, as_pg, AddrspaceState::Init) {
        return (d, e);
    }
    if !d.is_free(data_pg) {
        return (d, KomErr::PageInUse);
    }
    if !params.valid_insecure_pfn(contents_pfn) {
        return (d, KomErr::InvalidInsecure);
    }
    let l2pg = match check_mapping(&d, as_pg, mapping) {
        Ok(p) => p,
        Err(e) => return (d, e),
    };
    d.set(
        data_pg,
        PageEntry::Data {
            addrspace: as_pg,
            contents: Box::new(*contents),
        },
    );
    if let Some(PageEntry::L2PTable { slots, .. }) = d.get_mut(l2pg) {
        slots[mapping.l2_slot()] = L2Entry::SecureMapping {
            page: data_pg,
            w: mapping.w,
            x: mapping.x,
        };
    }
    d.add_ref(as_pg, 1);
    if let Some(PageEntry::Addrspace { measurement, .. }) = d.get_mut(as_pg) {
        measurement.record_map_secure(mapping, contents);
    }
    (d, KomErr::Ok)
}

/// `MapInsecure(asPg, mapping, targetPfn)`: maps an OS-shared page. The
/// mapping (but not the untrusted contents) is measured; insecure pages
/// are never executable.
pub fn map_insecure(
    mut d: PageDb,
    params: &SecureParams,
    as_pg: PageNr,
    mapping: Mapping,
    target_pfn: u32,
) -> (PageDb, KomErr) {
    if !params.valid_page(as_pg) {
        return (d, KomErr::InvalidPageNo);
    }
    if let Err(e) = check_addrspace_state(&d, as_pg, AddrspaceState::Init) {
        return (d, e);
    }
    if mapping.x {
        return (d, KomErr::InvalidMapping);
    }
    if !params.valid_insecure_pfn(target_pfn) {
        return (d, KomErr::InvalidInsecure);
    }
    let l2pg = match check_mapping(&d, as_pg, mapping) {
        Ok(p) => p,
        Err(e) => return (d, e),
    };
    if let Some(PageEntry::L2PTable { slots, .. }) = d.get_mut(l2pg) {
        slots[mapping.l2_slot()] = L2Entry::InsecureMapping {
            pfn: target_pfn,
            w: mapping.w,
        };
    }
    if let Some(PageEntry::Addrspace { measurement, .. }) = d.get_mut(as_pg) {
        measurement.record_map_insecure(mapping);
    }
    (d, KomErr::Ok)
}

/// `Finalise(asPg)`: fixes the measurement and permits execution.
pub fn finalise(mut d: PageDb, params: &SecureParams, as_pg: PageNr) -> (PageDb, KomErr) {
    if !params.valid_page(as_pg) {
        return (d, KomErr::InvalidPageNo);
    }
    if let Err(e) = check_addrspace_state(&d, as_pg, AddrspaceState::Init) {
        return (d, e);
    }
    if let Some(PageEntry::Addrspace {
        state, measurement, ..
    }) = d.get_mut(as_pg)
    {
        measurement.finalise();
        *state = AddrspaceState::Final;
    }
    (d, KomErr::Ok)
}

/// `Stop(asPg)`: prevents further execution and permits deallocation.
pub fn stop(mut d: PageDb, params: &SecureParams, as_pg: PageNr) -> (PageDb, KomErr) {
    if !params.valid_page(as_pg) {
        return (d, KomErr::InvalidPageNo);
    }
    if !d.is_addrspace(as_pg) {
        return (d, KomErr::InvalidAddrspace);
    }
    if let Some(PageEntry::Addrspace { state, .. }) = d.get_mut(as_pg) {
        *state = AddrspaceState::Stopped;
    }
    (d, KomErr::Ok)
}

/// `Remove(pg)`: deallocates a page. Spare pages may be reclaimed at any
/// time; other owned pages require a stopped enclave; the address-space
/// page is reference counted and must be removed last (§4).
pub fn remove(mut d: PageDb, params: &SecureParams, pg: PageNr) -> (PageDb, KomErr) {
    if !params.valid_page(pg) {
        return (d, KomErr::InvalidPageNo);
    }
    let entry = d.get(pg).expect("validated").clone();
    match entry {
        PageEntry::Free => (d, KomErr::Ok),
        PageEntry::Addrspace { refcount, .. } => {
            if refcount != 0 {
                return (d, KomErr::PagesRemain);
            }
            d.set(pg, PageEntry::Free);
            (d, KomErr::Ok)
        }
        PageEntry::Spare { addrspace } => {
            d.set(pg, PageEntry::Free);
            d.add_ref(addrspace, -1);
            (d, KomErr::Ok)
        }
        PageEntry::L1PTable { addrspace, .. }
        | PageEntry::L2PTable { addrspace, .. }
        | PageEntry::Thread { addrspace, .. }
        | PageEntry::Data { addrspace, .. } => {
            if d.addrspace_state(addrspace) != Some(AddrspaceState::Stopped) {
                return (d, KomErr::NotStopped);
            }
            d.set(pg, PageEntry::Free);
            d.add_ref(addrspace, -1);
            (d, KomErr::Ok)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::valid_pagedb;

    fn params() -> SecureParams {
        SecureParams::for_tests()
    }

    fn page(v: u32) -> [u32; KOM_PAGE_WORDS] {
        [v; KOM_PAGE_WORDS]
    }

    /// Builds an Init-state enclave: addrspace 0, L1PT 1, L2PT 2 at
    /// l1index 0, thread 3 at entry 0x8000.
    fn built() -> PageDb {
        let p = params();
        let d = PageDb::new(p.npages);
        let (d, e) = init_addrspace(d, &p, 0, 1);
        assert_eq!(e, KomErr::Ok);
        let (d, e) = init_l2ptable(d, &p, 0, 2, 0);
        assert_eq!(e, KomErr::Ok);
        let (d, e) = init_thread(d, &p, 0, 3, 0x8000);
        assert_eq!(e, KomErr::Ok);
        d
    }

    fn map8() -> Mapping {
        Mapping {
            vpn: 8,
            r: true,
            w: false,
            x: true,
        }
    }

    #[test]
    fn get_phys_pages_reports_pool_size() {
        assert_eq!(get_phys_pages(&PageDb::new(64)), 64);
    }

    #[test]
    fn init_addrspace_happy_path() {
        let d = built();
        assert!(d.is_addrspace(0));
        assert_eq!(d.l1pt_of(0), Some(1));
        assert!(valid_pagedb(&d, &params()));
    }

    #[test]
    fn init_addrspace_rejects_aliased_pages() {
        // The §9.1 bug: InitAddrspace(p, p).
        let (d, e) = init_addrspace(PageDb::new(8), &params(), 5, 5);
        assert_eq!(e, KomErr::PageInUse);
        assert!(d.is_free(5));
    }

    #[test]
    fn init_addrspace_rejects_bad_pages() {
        let p = params();
        let (_, e) = init_addrspace(PageDb::new(p.npages), &p, p.npages, 0);
        assert_eq!(e, KomErr::InvalidPageNo);
        let d = built();
        let (_, e) = init_addrspace(d, &p, 0, 4); // Page 0 allocated.
        assert_eq!(e, KomErr::PageInUse);
    }

    #[test]
    fn init_thread_requires_init_state() {
        let p = params();
        let d = built();
        let (d, e) = finalise(d, &p, 0);
        assert_eq!(e, KomErr::Ok);
        let (_, e) = init_thread(d, &p, 0, 4, 0);
        assert_eq!(e, KomErr::AlreadyFinal);
    }

    #[test]
    fn init_thread_rejects_non_addrspace() {
        let (_, e) = init_thread(built(), &params(), 1, 4, 0);
        assert_eq!(e, KomErr::InvalidAddrspace);
    }

    #[test]
    fn init_l2ptable_rejects_duplicate_slot() {
        let (_, e) = init_l2ptable(built(), &params(), 0, 4, 0);
        assert_eq!(e, KomErr::AddrInUse);
    }

    #[test]
    fn init_l2ptable_rejects_bad_index() {
        let (_, e) = init_l2ptable(built(), &params(), 0, 4, 256);
        assert_eq!(e, KomErr::InvalidMapping);
    }

    #[test]
    fn map_secure_happy_path_and_measurement() {
        let p = params();
        let (d, e) = map_secure(built(), &p, 0, 4, map8(), 10, &page(7));
        assert_eq!(e, KomErr::Ok);
        assert!(valid_pagedb(&d, &p));
        assert!(matches!(
            d.lookup_mapping(0, map8()),
            Some((
                2,
                L2Entry::SecureMapping {
                    page: 4,
                    w: false,
                    x: true
                }
            ))
        ));
        let m = d.measurement_of(0).unwrap();
        assert!(m.blocks() > 0);
    }

    #[test]
    fn map_secure_rejects_monitor_aliasing_pfn() {
        // The §9.1 insecure-address bug: PFN 0x300 is a monitor page.
        let (_, e) = map_secure(built(), &params(), 0, 4, map8(), 0x300, &page(0));
        assert_eq!(e, KomErr::InvalidInsecure);
    }

    #[test]
    fn map_secure_rejects_double_mapping() {
        let p = params();
        let (d, e) = map_secure(built(), &p, 0, 4, map8(), 10, &page(0));
        assert_eq!(e, KomErr::Ok);
        let (_, e) = map_secure(d, &p, 0, 5, map8(), 10, &page(0));
        assert_eq!(e, KomErr::AddrInUse);
    }

    #[test]
    fn map_secure_requires_l2pt() {
        // vpn in l1index 1, which has no L2 table.
        let m = Mapping {
            vpn: 1024,
            r: true,
            w: true,
            x: false,
        };
        let (_, e) = map_secure(built(), &params(), 0, 4, m, 10, &page(0));
        assert_eq!(e, KomErr::InvalidMapping);
    }

    #[test]
    fn map_secure_requires_read_and_bounds() {
        let bad_r = Mapping { r: false, ..map8() };
        let (_, e) = map_secure(built(), &params(), 0, 4, bad_r, 10, &page(0));
        assert_eq!(e, KomErr::InvalidMapping);
        let oob = Mapping {
            vpn: 0x40000,
            ..map8()
        };
        let (_, e) = map_secure(built(), &params(), 0, 4, oob, 10, &page(0));
        assert_eq!(e, KomErr::InvalidMapping);
    }

    #[test]
    fn map_insecure_never_executable() {
        let m = Mapping {
            vpn: 9,
            r: true,
            w: true,
            x: true,
        };
        let (_, e) = map_insecure(built(), &params(), 0, m, 10);
        assert_eq!(e, KomErr::InvalidMapping);
    }

    #[test]
    fn map_insecure_happy_path() {
        let p = params();
        let m = Mapping {
            vpn: 9,
            r: true,
            w: true,
            x: false,
        };
        let (d, e) = map_insecure(built(), &p, 0, m, 10);
        assert_eq!(e, KomErr::Ok);
        assert!(matches!(
            d.lookup_mapping(0, m),
            Some((_, L2Entry::InsecureMapping { pfn: 10, w: true }))
        ));
        assert!(valid_pagedb(&d, &p));
    }

    #[test]
    fn map_insecure_rejects_monitor_pfn() {
        let m = Mapping {
            vpn: 9,
            r: true,
            w: false,
            x: false,
        };
        let (_, e) = map_insecure(built(), &params(), 0, m, 0x305);
        assert_eq!(e, KomErr::InvalidInsecure);
    }

    #[test]
    fn finalise_fixes_measurement() {
        let p = params();
        let (d, e) = finalise(built(), &p, 0);
        assert_eq!(e, KomErr::Ok);
        assert_eq!(d.addrspace_state(0), Some(AddrspaceState::Final));
        assert!(d.measurement_of(0).unwrap().digest().is_some());
        // Double finalise fails.
        let (_, e) = finalise(d, &p, 0);
        assert_eq!(e, KomErr::AlreadyFinal);
    }

    #[test]
    fn alloc_spare_allowed_after_finalise() {
        let p = params();
        let (d, _) = finalise(built(), &p, 0);
        let (d, e) = alloc_spare(d, &p, 0, 4);
        assert_eq!(e, KomErr::Ok);
        assert!(matches!(d.get(4), Some(PageEntry::Spare { addrspace: 0 })));
        assert!(valid_pagedb(&d, &p));
    }

    #[test]
    fn alloc_spare_rejected_when_stopped() {
        let p = params();
        let (d, _) = stop(built(), &p, 0);
        let (_, e) = alloc_spare(d, &p, 0, 4);
        assert_eq!(e, KomErr::Stopped);
    }

    #[test]
    fn remove_requires_stopped_except_spares() {
        let p = params();
        let (d, e) = alloc_spare(built(), &p, 0, 4);
        assert_eq!(e, KomErr::Ok);
        // Thread page: not stopped → refused.
        let (d, e) = remove(d, &p, 3);
        assert_eq!(e, KomErr::NotStopped);
        // Spare page: reclaimable any time.
        let (d, e) = remove(d, &p, 4);
        assert_eq!(e, KomErr::Ok);
        assert!(d.is_free(4));
        assert!(valid_pagedb(&d, &p));
    }

    #[test]
    fn full_teardown_addrspace_last() {
        let p = params();
        let (d, _) = stop(built(), &p, 0);
        // Addrspace still has pages.
        let (d, e) = remove(d, &p, 0);
        assert_eq!(e, KomErr::PagesRemain);
        let (d, e) = remove(d, &p, 3); // Thread.
        assert_eq!(e, KomErr::Ok);
        let (d, e) = remove(d, &p, 2); // L2PT.
        assert_eq!(e, KomErr::Ok);
        let (d, e) = remove(d, &p, 1); // L1PT.
        assert_eq!(e, KomErr::Ok);
        let (d, e) = remove(d, &p, 0); // Addrspace last.
        assert_eq!(e, KomErr::Ok);
        assert_eq!(d.free_pages().len(), p.npages);
        assert!(valid_pagedb(&d, &p));
    }

    #[test]
    fn remove_free_page_is_ok() {
        let (_, e) = remove(PageDb::new(8), &params(), 5);
        assert_eq!(e, KomErr::Ok);
    }

    #[test]
    fn errors_leave_pagedb_unchanged() {
        let p = params();
        let d0 = built();
        let (d, e) = map_secure(d0.clone(), &p, 0, 4, map8(), 0x300, &page(0));
        assert_ne!(e, KomErr::Ok);
        assert_eq!(d, d0);
        let (d, e) = init_addrspace(d0.clone(), &p, 4, 4);
        assert_ne!(e, KomErr::Ok);
        assert_eq!(d, d0);
    }
}
