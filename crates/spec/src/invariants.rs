//! PageDB validity invariants (paper §5.2).
//!
//! "A valid PageDB satisfies invariants guaranteeing internal consistency:
//! e.g., reference counts are correct, internal references (including page
//! table pointers) are to pages of the correct type belonging to the same
//! address space, and all leaf pages mapped in a page table are either
//! insecure pages or data pages allocated to the same address space."
//!
//! As in the Dafny development, the structural invariants on page-table
//! contents are *relaxed for stopped address spaces*: once stopped, pages
//! may be removed one at a time (dangling references are unreachable since
//! a stopped enclave never executes), and only ownership/refcount
//! consistency is retained.

use crate::pagedb::{AddrspaceState, L2Entry, PageDb, PageEntry};
use crate::params::SecureParams;
use crate::types::PageNr;

/// Checks all invariants, returning a human-readable list of violations
/// (empty means valid). Tests assert on [`valid_pagedb`]; this variant
/// exists for debuggability.
pub fn pagedb_violations(d: &PageDb, params: &SecureParams) -> Vec<String> {
    let mut out = Vec::new();
    if d.npages() != params.npages {
        out.push(format!(
            "pagedb has {} entries but platform has {} pages",
            d.npages(),
            params.npages
        ));
    }

    for pg in 0..d.npages() {
        let entry = d.get(pg).expect("in range");
        // Ownership: every owned page's address space must be valid.
        if let Some(asp) = entry.addrspace() {
            if !d.is_addrspace(asp) {
                out.push(format!("page {pg} owned by non-addrspace {asp}"));
                continue;
            }
        }
        match entry {
            PageEntry::Addrspace {
                l1pt,
                refcount,
                state,
                measurement,
            } => {
                let owned = d.pages_of(pg);
                if owned.len() != *refcount {
                    out.push(format!(
                        "addrspace {pg} refcount {refcount} but owns {} pages",
                        owned.len()
                    ));
                }
                match state {
                    AddrspaceState::Stopped => {}
                    _ => {
                        // The L1 page table must exist and belong to us.
                        match d.get(*l1pt) {
                            Some(PageEntry::L1PTable { addrspace, .. }) if *addrspace == pg => {}
                            _ => out.push(format!(
                                "addrspace {pg} l1pt {l1pt} is not its L1 page table"
                            )),
                        }
                    }
                }
                match state {
                    AddrspaceState::Init => {
                        if measurement.digest().is_some() {
                            out.push(format!("addrspace {pg} measured before finalise"));
                        }
                    }
                    AddrspaceState::Final => {
                        if measurement.digest().is_none() {
                            out.push(format!("final addrspace {pg} lacks a measurement digest"));
                        }
                    }
                    AddrspaceState::Stopped => {}
                }
            }
            PageEntry::L1PTable { addrspace, slots } => {
                if stopped(d, *addrspace) {
                    continue;
                }
                if d.l1pt_of(*addrspace) != Some(pg) {
                    out.push(format!("L1PT {pg} is not its addrspace's l1pt"));
                }
                for (i, slot) in slots.iter().enumerate() {
                    if let Some(l2) = slot {
                        match d.get(*l2) {
                            Some(PageEntry::L2PTable { addrspace: a2, .. }) if a2 == addrspace => {}
                            _ => out.push(format!(
                                "L1PT {pg} slot {i} -> {l2} is not an owned L2 table"
                            )),
                        }
                    }
                }
            }
            PageEntry::L2PTable { addrspace, slots } => {
                if stopped(d, *addrspace) {
                    continue;
                }
                for (i, slot) in slots.iter().enumerate() {
                    match slot {
                        L2Entry::Nothing => {}
                        L2Entry::SecureMapping { page, .. } => match d.get(*page) {
                            Some(PageEntry::Data { addrspace: a2, .. }) if a2 == addrspace => {}
                            _ => out.push(format!(
                                "L2PT {pg} slot {i} maps {page}, not an owned data page"
                            )),
                        },
                        L2Entry::InsecureMapping { pfn, .. } => {
                            if !params.valid_insecure_pfn(*pfn) {
                                out.push(format!(
                                    "L2PT {pg} slot {i} maps invalid insecure pfn {pfn:#x}"
                                ));
                            }
                        }
                    }
                }
                // Exactly one L1 slot must reference this table.
                let refs = l1_references(d, *addrspace, pg);
                if refs != 1 {
                    out.push(format!("L2PT {pg} referenced by {refs} L1 slots"));
                }
            }
            PageEntry::Thread {
                addrspace, entered, ..
            } => {
                if *entered && d.addrspace_state(*addrspace) != Some(AddrspaceState::Final) {
                    out.push(format!("thread {pg} entered but addrspace not final"));
                }
            }
            PageEntry::Data { .. } | PageEntry::Spare { .. } | PageEntry::Free => {}
        }
    }
    out
}

fn stopped(d: &PageDb, asp: PageNr) -> bool {
    d.addrspace_state(asp) == Some(AddrspaceState::Stopped)
}

fn l1_references(d: &PageDb, asp: PageNr, l2pg: PageNr) -> usize {
    let Some(l1pt) = d.l1pt_of(asp) else { return 0 };
    let Some(PageEntry::L1PTable { slots, .. }) = d.get(l1pt) else {
        return 0;
    };
    slots.iter().filter(|s| **s == Some(l2pg)).count()
}

/// Whether the PageDB satisfies every invariant.
pub fn valid_pagedb(d: &PageDb, params: &SecureParams) -> bool {
    pagedb_violations(d, params).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Measurement;
    use crate::types::{KOM_L1_SLOTS, KOM_L2_SLOTS};

    fn params() -> SecureParams {
        SecureParams::for_tests()
    }

    #[test]
    fn empty_pagedb_valid() {
        assert!(valid_pagedb(&PageDb::new(params().npages), &params()));
    }

    #[test]
    fn wrong_size_invalid() {
        assert!(!valid_pagedb(&PageDb::new(3), &params()));
    }

    #[test]
    fn bad_refcount_detected() {
        let mut d = PageDb::new(params().npages);
        d.set(
            0,
            PageEntry::Addrspace {
                l1pt: 1,
                refcount: 5, // Owns only one page.
                state: AddrspaceState::Init,
                measurement: Measurement::new(),
            },
        );
        d.set(
            1,
            PageEntry::L1PTable {
                addrspace: 0,
                slots: Box::new([None; KOM_L1_SLOTS]),
            },
        );
        let v = pagedb_violations(&d, &params());
        assert!(v.iter().any(|m| m.contains("refcount")), "{v:?}");
    }

    #[test]
    fn dangling_l1_slot_detected() {
        let mut d = PageDb::new(params().npages);
        let mut slots = Box::new([None; KOM_L1_SLOTS]);
        slots[0] = Some(9); // Page 9 is free.
        d.set(
            0,
            PageEntry::Addrspace {
                l1pt: 1,
                refcount: 1,
                state: AddrspaceState::Init,
                measurement: Measurement::new(),
            },
        );
        d.set(
            1,
            PageEntry::L1PTable {
                addrspace: 0,
                slots,
            },
        );
        assert!(!valid_pagedb(&d, &params()));
    }

    #[test]
    fn cross_addrspace_mapping_detected() {
        // Two enclaves; enclave A's L2 table maps enclave B's data page —
        // exactly the double-mapping §4 says the monitor must prevent.
        let p = params();
        let d = PageDb::new(p.npages);
        let (d, _) = crate::smc::init_addrspace(d, &p, 0, 1);
        let (d, _) = crate::smc::init_l2ptable(d, &p, 0, 2, 0);
        let (d, _) = crate::smc::init_addrspace(d, &p, 4, 5);
        let (d, _) = crate::smc::init_l2ptable(d, &p, 4, 6, 0);
        let m = crate::types::Mapping {
            vpn: 3,
            r: true,
            w: true,
            x: false,
        };
        let (mut d, e) = crate::smc::map_secure(d, &p, 4, 7, m, 10, &[0; KOM_L2_SLOTS]);
        assert_eq!(e, crate::types::KomErr::Ok);
        assert!(valid_pagedb(&d, &p));
        // Forge the cross mapping in enclave 0's table.
        if let Some(PageEntry::L2PTable { slots, .. }) = d.get_mut(2) {
            slots[3] = L2Entry::SecureMapping {
                page: 7,
                w: true,
                x: false,
            };
        }
        assert!(!valid_pagedb(&d, &p));
    }

    #[test]
    fn stopped_addrspace_relaxes_structure() {
        let p = params();
        let d = PageDb::new(p.npages);
        let (d, _) = crate::smc::init_addrspace(d, &p, 0, 1);
        let (d, _) = crate::smc::init_l2ptable(d, &p, 0, 2, 0);
        let (d, _) = crate::smc::stop(d, &p, 0);
        // Remove the L1PT out from under the addrspace: legal once stopped.
        let (d, e) = crate::smc::remove(d, &p, 1);
        assert_eq!(e, crate::types::KomErr::Ok);
        assert!(valid_pagedb(&d, &p), "{:?}", pagedb_violations(&d, &p));
    }

    #[test]
    fn entered_thread_requires_final() {
        let p = params();
        let d = PageDb::new(p.npages);
        let (d, _) = crate::smc::init_addrspace(d, &p, 0, 1);
        let (mut d, _) = crate::smc::init_thread(d, &p, 0, 3, 0x8000);
        if let Some(PageEntry::Thread { entered, .. }) = d.get_mut(3) {
            *entered = true;
        }
        assert!(!valid_pagedb(&d, &p));
    }
}
