//! Executable functional specification of the Komodo monitor (paper §5.2).
//!
//! The paper specifies the monitor in Dafny as pure functions over an
//! abstract *PageDB* — "a map from page numbers to entries, each of which
//! has one of the six types" — plus a top-level `smchandler` predicate
//! relating machine/PageDB states across each secure monitor call. This
//! crate is a direct executable transcription:
//!
//! - [`pagedb`]: the abstract PageDB and its six page types.
//! - [`params`]: the platform's physical layout, against which insecure
//!   addresses are validated (including the monitor's own pages — the §9.1
//!   bug class).
//! - [`measure`]: the attestation measurement — a hash over the sequence of
//!   page-allocation calls and their parameters (§4).
//! - [`smc`]: pure functions for each OS-facing secure monitor call
//!   (Table 1), `(PageDb, args) -> (PageDb, KomErr, value)`.
//! - [`svc`]: pure functions for each enclave-facing supervisor call.
//! - [`enter`]: the `Enter`/`Resume` specification, with enclave execution
//!   modelled as an uninterpreted function of the user-visible state and a
//!   nondeterminism seed, exactly as §6.3 describes.
//! - [`invariants`]: the PageDB validity invariants ("reference counts are
//!   correct, internal references ... are to pages of the correct type
//!   belonging to the same address space", §5.2), checked after every
//!   transition in tests.
//!
//! The concrete monitor (`komodo-monitor`) must *refine* this
//! specification; the workspace's differential tests check exactly that
//! relation, standing in for the paper's machine-checked proof.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enter;
pub mod handler;
pub mod invariants;
pub mod measure;
pub mod pagedb;
pub mod params;
pub mod seed;
pub mod smc;
pub mod svc;
pub mod types;

pub use pagedb::{AddrspaceState, L2Entry, PageDb, PageEntry, UserContext};
pub use params::SecureParams;
pub use types::{KomErr, Mapping, PageNr, SmcCall, SvcCall, KOM_PAGE_WORDS};
