//! Shared splitmix64 seed derivation.
//!
//! Every deterministic subsystem in the workspace — the fleet's per-job
//! platform seeds, the load generator's arrival schedule, the service
//! node's document synthesis, the chaos harness's fault schedules —
//! derives its randomness from integer seeds with the same mix, so that
//! results depend only on `(base seed, stream index)` and never on host
//! state or scheduling. This module is the single home of that mix;
//! call sites that used to carry private copies (`komodo-fleet` via
//! `PlatformConfig::derive_seed`, `komodo-service`'s loadgen and node)
//! all route through here.
//!
//! The construction is Steele–Lea–Flood splitmix64: advance a state by
//! the golden-gamma increment, then scramble it through the
//! variance-maximising finalizer. Neighbouring streams (`stream`,
//! `stream + 1`) decorrelate fully because the gamma is odd and the
//! finalizer is a bijection.

/// The splitmix64 golden-gamma increment: `2^64 / φ`, forced odd.
pub const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// The splitmix64 finalizer: a bijective scramble of `x`. Use this for
/// *derived* draws from an already-advanced state (e.g. a second,
/// decorrelated draw via `mix64(state ^ SALT)`).
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One splitmix64 step from `x`: advance by [`GOLDEN_GAMMA`], then mix.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    mix64(x.wrapping_add(GOLDEN_GAMMA))
}

/// Derives an independent stream seed from `(base, stream)`.
///
/// This is how one master seed fans out into any number of decorrelated
/// per-job / per-case / per-request seeds: the result depends only on
/// the two arguments, so work keyed by a stream index is reproducible
/// at any shard count or submission order.
#[inline]
pub fn derive_stream(base: u64, stream: u64) -> u64 {
    splitmix64(base.wrapping_add(stream.wrapping_mul(GOLDEN_GAMMA)))
}

/// A splitmix64 generator: the sequential form of the same mix, for
/// call sites that want a stream of draws rather than indexed ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded at `seed`; the first draw is `splitmix64(seed)`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    /// A uniform draw in `0..bound` (0 when `bound` is 0), by the
    /// high-bits multiply method — adequate for schedule generation,
    /// where the bounds are tiny relative to 2^64.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference values for seed 1234567 (first three outputs of the
        // canonical splitmix64), pinning the exact mix so call-site
        // migrations cannot silently change derived seeds.
        let mut g = SplitMix64::new(1234567);
        let first = g.next_u64();
        assert_eq!(first, splitmix64(1234567));
        assert_eq!(first, 0x599e_d017_fb08_fc85);
        // Stream draws and indexed derivation agree.
        assert_eq!(derive_stream(1234567, 0), first);
        let second = g.next_u64();
        assert_eq!(derive_stream(1234567, 1), second);
    }

    #[test]
    fn streams_are_distinct_and_deterministic() {
        assert_eq!(derive_stream(7, 3), derive_stream(7, 3));
        let mut seen: Vec<u64> = (0..1000).map(|i| derive_stream(7, i)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 1000, "stream seeds must not collide");
        assert_ne!(derive_stream(7, 0), derive_stream(8, 0));
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut g = SplitMix64::new(42);
        let mut hit = [false; 8];
        for _ in 0..256 {
            let v = g.below(8);
            assert!(v < 8);
            hit[v as usize] = true;
        }
        assert!(hit.iter().all(|h| *h), "8-way draw missed a bucket");
        assert_eq!(g.below(0), 0);
    }
}
