//! Platform physical-layout parameters used for validation.
//!
//! The monitor must validate every insecure physical address the OS (or an
//! enclave mapping) supplies. The paper reports (§9.1) that the unverified
//! prototype got this wrong: "To check whether an insecure physical address
//! passed to the monitor ... is valid, it is not sufficient merely to check
//! that it does not refer to secure pages; instead, it must also avoid any
//! of the monitor's own pages", because the monitor's text and data exist
//! in the direct-mapped physical region (Figure 4). This module encodes
//! that check once, for both the specification and the implementation.

use crate::types::PageNr;

/// Physical layout of the platform, in page-number space.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SecureParams {
    /// Number of pages in the secure pool (`GetPhysPages` result).
    pub npages: usize,
    /// Physical page frame number of the first secure pool page.
    pub secure_base_pfn: u32,
    /// Insecure RAM as physical page frame numbers `[start, end)`.
    pub insecure_pfns: core::ops::Range<u32>,
    /// The monitor's own image/stack/globals, as PFNs `[start, end)`;
    /// *inside* the physical address space the OS can name.
    pub monitor_pfns: core::ops::Range<u32>,
}

impl SecureParams {
    /// A small default layout used by tests: 64 secure pages, 256 insecure
    /// pages at PFN 0, monitor at PFNs 0x300..0x310.
    pub fn for_tests() -> SecureParams {
        SecureParams {
            npages: 64,
            secure_base_pfn: 0x8_0000, // 0x8000_0000 >> 12.
            insecure_pfns: 0..256,
            monitor_pfns: 0x300..0x310,
        }
    }

    /// Whether `pg` is a valid secure page number.
    pub fn valid_page(&self, pg: PageNr) -> bool {
        pg < self.npages
    }

    /// Physical page frame number of secure page `pg`.
    pub fn secure_pfn(&self, pg: PageNr) -> u32 {
        self.secure_base_pfn + pg as u32
    }

    /// Physical page frame numbers of the secure pool `[start, end)`.
    pub fn secure_pfns(&self) -> core::ops::Range<u32> {
        self.secure_base_pfn..self.secure_base_pfn + self.npages as u32
    }

    /// Validates an insecure physical page the OS supplied: it must lie in
    /// insecure RAM and must alias *neither* the secure pool *nor* the
    /// monitor's own pages (the §9.1 bug).
    pub fn valid_insecure_pfn(&self, pfn: u32) -> bool {
        self.insecure_pfns.contains(&pfn)
            && !self.secure_pfns().contains(&pfn)
            && !self.monitor_pfns.contains(&pfn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_page_bounds() {
        let p = SecureParams::for_tests();
        assert!(p.valid_page(0));
        assert!(p.valid_page(63));
        assert!(!p.valid_page(64));
    }

    #[test]
    fn secure_pfn_mapping() {
        let p = SecureParams::for_tests();
        assert_eq!(p.secure_pfn(0), 0x8_0000);
        assert_eq!(p.secure_pfn(5), 0x8_0005);
    }

    #[test]
    fn insecure_validation_rejects_monitor_pages() {
        // Layout where the monitor sits *inside* insecure RAM, as in
        // Figure 4's direct map — the paper's bug scenario.
        let p = SecureParams {
            npages: 4,
            secure_base_pfn: 0x1000,
            insecure_pfns: 0..0x400,
            monitor_pfns: 0x300..0x310,
        };
        assert!(p.valid_insecure_pfn(0x2ff));
        assert!(!p.valid_insecure_pfn(0x300), "monitor page accepted");
        assert!(!p.valid_insecure_pfn(0x30f), "monitor page accepted");
        assert!(p.valid_insecure_pfn(0x310));
        assert!(!p.valid_insecure_pfn(0x400), "beyond insecure RAM");
        assert!(!p.valid_insecure_pfn(0x1001), "secure page accepted");
    }
}
