//! Attestation measurement (paper §4).
//!
//! "As the enclave is being constructed, the monitor constructs a hash of
//! the sequence of page allocation calls and their parameters; specifically:
//! (i) the enclave virtual address, permissions and initial contents of each
//! secure page; and (ii) the entry point of every thread. ... When the
//! enclave is finalised, this hash becomes the enclave's immutable
//! measurement."
//!
//! Each recorded operation is padded to a whole number of 64-byte SHA-256
//! blocks, honouring the implementation's precondition that "Komodo only
//! invokes SHA on block-aligned data" (§7.2). The measurement state is the
//! running (unpadded) SHA-256 chaining value plus a block count — exactly
//! what the concrete monitor stores in the address-space page — so the
//! abstraction function can reconstruct a specification measurement from
//! concrete memory bit-for-bit.

use komodo_crypto::sha256::{Sha256, BLOCK_WORDS, H0};
use komodo_crypto::Digest;

use crate::types::{Mapping, KOM_PAGE_WORDS};

/// Operation tags in measurement records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum MeasureOp {
    /// `MapSecure` — followed by the page contents.
    MapSecure = 1,
    /// `MapInsecure` — address and permissions only (contents are
    /// untrusted and excluded).
    MapInsecure = 2,
    /// `InitThread` — entry point.
    InitThread = 3,
    /// `InitL2PTable` — the populated `l1index`.
    InitL2PTable = 4,
}

/// The measurement: a running block-aligned hash of enclave layout, fixed
/// at finalisation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Measurement {
    /// Running SHA-256 chaining value over the records so far.
    h: [u32; 8],
    /// Whole 64-byte blocks absorbed.
    nblocks: u64,
    /// The digest, fixed at finalisation.
    digest: Option<Digest>,
}

impl Default for Measurement {
    fn default() -> Self {
        Self::new()
    }
}

impl Measurement {
    /// An empty measurement (fresh address space).
    pub fn new() -> Measurement {
        Measurement {
            h: H0,
            nblocks: 0,
            digest: None,
        }
    }

    /// Reconstructs a measurement from its stored state — used by the
    /// abstraction function that lifts the concrete monitor's in-memory
    /// representation back to the specification.
    pub fn from_parts(h: [u32; 8], nblocks: u64, digest: Option<Digest>) -> Measurement {
        Measurement { h, nblocks, digest }
    }

    fn record(&mut self, op: MeasureOp, args: &[u32], contents: Option<&[u32; KOM_PAGE_WORDS]>) {
        debug_assert!(self.digest.is_none(), "measurement extended after finalise");
        // One block-aligned header record: tag, args, zero padding.
        let mut header = [0u32; BLOCK_WORDS];
        header[0] = op as u32;
        header[1..1 + args.len()].copy_from_slice(args);
        Sha256::compress_words(&mut self.h, &header);
        self.nblocks += 1;
        if let Some(c) = contents {
            // Page contents are already 64 whole blocks.
            Sha256::compress_words(&mut self.h, &c[..]);
            self.nblocks += (KOM_PAGE_WORDS / BLOCK_WORDS) as u64;
        }
    }

    /// Records a `MapSecure`: mapping word plus initial page contents.
    pub fn record_map_secure(&mut self, mapping: Mapping, contents: &[u32; KOM_PAGE_WORDS]) {
        self.record(MeasureOp::MapSecure, &[mapping.pack()], Some(contents));
    }

    /// Records a `MapInsecure`: mapping word only.
    pub fn record_map_insecure(&mut self, mapping: Mapping) {
        self.record(MeasureOp::MapInsecure, &[mapping.pack()], None);
    }

    /// Records an `InitThread`: the entry point.
    pub fn record_init_thread(&mut self, entry: u32) {
        self.record(MeasureOp::InitThread, &[entry], None);
    }

    /// Records an `InitL2PTable` issued by the OS during construction.
    pub fn record_init_l2pt(&mut self, l1index: u32) {
        self.record(MeasureOp::InitL2PTable, &[l1index], None);
    }

    /// The running (unpadded) hash state — the concrete monitor stores
    /// exactly this in the address-space page.
    pub fn running_hash(&self) -> [u32; 8] {
        self.h
    }

    /// Number of whole blocks recorded so far.
    pub fn blocks(&self) -> u64 {
        self.nblocks
    }

    /// Finalises: computes and fixes the digest (idempotent).
    pub fn finalise(&mut self) -> Digest {
        if let Some(d) = self.digest {
            return d;
        }
        let d = Sha256::finish_blocks(self.h, self.nblocks);
        self.digest = Some(d);
        d
    }

    /// The fixed digest, if finalised.
    pub fn digest(&self) -> Option<Digest> {
        self.digest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping(vpn: u32) -> Mapping {
        Mapping {
            vpn,
            r: true,
            w: true,
            x: false,
        }
    }

    #[test]
    fn block_accounting() {
        let mut m = Measurement::new();
        assert_eq!(m.blocks(), 0);
        m.record_init_thread(0x8000);
        assert_eq!(m.blocks(), 1);
        m.record_map_secure(mapping(8), &[7u32; KOM_PAGE_WORDS]);
        assert_eq!(m.blocks(), 1 + 1 + 64);
        m.record_map_insecure(mapping(9));
        assert_eq!(m.blocks(), 67);
    }

    #[test]
    fn layout_changes_change_digest() {
        let contents = [0u32; KOM_PAGE_WORDS];
        let mut a = Measurement::new();
        a.record_map_secure(mapping(8), &contents);
        let mut b = Measurement::new();
        b.record_map_secure(mapping(9), &contents); // Different VA.
        assert_ne!(a.finalise(), b.finalise());

        let mut c = Measurement::new();
        let mut other = contents;
        other[0] = 1; // Different contents.
        c.record_map_secure(mapping(8), &other);
        let mut a2 = Measurement::new();
        a2.record_map_secure(mapping(8), &contents);
        assert_ne!(a2.finalise(), c.finalise());
    }

    #[test]
    fn permissions_affect_digest() {
        let contents = [0u32; KOM_PAGE_WORDS];
        let mut a = Measurement::new();
        a.record_map_secure(mapping(8), &contents);
        let mut b = Measurement::new();
        b.record_map_secure(
            Mapping {
                x: true,
                ..mapping(8)
            },
            &contents,
        );
        assert_ne!(a.finalise(), b.finalise());
    }

    #[test]
    fn order_matters() {
        let mut a = Measurement::new();
        a.record_init_thread(0x1000);
        a.record_map_insecure(mapping(5));
        let mut b = Measurement::new();
        b.record_map_insecure(mapping(5));
        b.record_init_thread(0x1000);
        assert_ne!(a.finalise(), b.finalise());
    }

    #[test]
    fn finalise_is_idempotent() {
        let mut m = Measurement::new();
        m.record_init_thread(1);
        let d1 = m.finalise();
        let d2 = m.finalise();
        assert_eq!(d1, d2);
        assert_eq!(m.digest(), Some(d1));
    }

    #[test]
    fn identical_construction_identical_digest() {
        let build = || {
            let mut m = Measurement::new();
            m.record_init_l2pt(2);
            m.record_map_secure(mapping(2048), &[3u32; KOM_PAGE_WORDS]);
            m.record_init_thread(0x0080_0000);
            m.finalise()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn from_parts_roundtrip() {
        let mut m = Measurement::new();
        m.record_init_thread(0xcafe);
        let rebuilt = Measurement::from_parts(m.running_hash(), m.blocks(), m.digest());
        assert_eq!(rebuilt, m);
        let d = rebuilt.clone();
        let mut m2 = m.clone();
        assert_eq!(m2.finalise(), {
            let mut r = d;
            r.finalise()
        });
    }

    #[test]
    fn digest_matches_oneshot_hash_of_records() {
        // The incremental state must equal hashing the concatenated
        // block-aligned records in one shot.
        let mut m = Measurement::new();
        m.record_init_thread(0x8000);
        let mut words = vec![0u32; 16];
        words[0] = MeasureOp::InitThread as u32;
        words[1] = 0x8000;
        assert_eq!(m.finalise(), Sha256::digest_words(&words));
    }
}
