//! Pure functional specification of the enclave-facing supervisor calls
//! (Table 1).
//!
//! "The specifications of SVCs from an enclave are logically nested inside
//! the definition of Enter and Resume" (§5.2); [`crate::enter`] drives these
//! functions from its execution loop. They are factored out here so the
//! refinement tests can exercise each one directly.

use komodo_crypto::{Digest, HmacSha256};

use crate::pagedb::{AddrspaceState, L2Entry, PageDb, PageEntry};
use crate::smc::install_l2pt;
use crate::types::{KomErr, Mapping, PageNr, KOM_L1_SLOTS, KOM_PAGE_WORDS};

/// `Attest(data[8]) -> mac[8]`: a MAC over "(i) the attesting enclave's
/// measurement, and (ii) enclave-provided data" under the boot-time secret
/// key (§4).
///
/// Requires a finalised enclave (an executing enclave always is).
pub fn attest(d: &PageDb, key: &[u8], asp: PageNr, user_data: &[u32; 8]) -> Result<Digest, KomErr> {
    let Some(m) = d.measurement_of(asp) else {
        return Err(KomErr::InvalidAddrspace);
    };
    let Some(digest) = m.digest() else {
        return Err(KomErr::NotFinal);
    };
    Ok(attest_mac(key, &digest, user_data))
}

/// The attestation MAC: `HMAC(key, measurement[8] || data[8])`.
pub fn attest_mac(key: &[u8], measurement: &Digest, user_data: &[u32; 8]) -> Digest {
    let mut msg = [0u32; 16];
    msg[..8].copy_from_slice(&measurement.0);
    msg[8..].copy_from_slice(user_data);
    HmacSha256::mac_words(key, &msg)
}

/// `Verify(data[8], measure[8], mac[8]) -> ok`: checks an attestation.
///
/// The three 8-word groups arrive over three SVC steps; this is the final
/// check once `data` and `measure` have been staged.
pub fn verify(key: &[u8], data: &[u32; 8], measure: &[u32; 8], mac: &[u32; 8]) -> bool {
    let expected = attest_mac(key, &Digest(*measure), data);
    expected.ct_eq(&Digest(*mac))
}

/// Validates that `pg` is a spare page of `asp`.
fn check_spare(d: &PageDb, asp: PageNr, pg: PageNr) -> Result<(), KomErr> {
    match d.get(pg) {
        None => Err(KomErr::InvalidPageNo),
        Some(PageEntry::Spare { addrspace }) if *addrspace == asp => Ok(()),
        Some(_) => Err(KomErr::NotSpare),
    }
}

/// SVC `InitL2PTable(sparePg, l1index)`: the enclave turns one of its spare
/// pages into a second-level page table (§4, dynamic allocation).
pub fn svc_init_l2ptable(
    mut d: PageDb,
    asp: PageNr,
    spare_pg: PageNr,
    l1index: u32,
) -> (PageDb, KomErr) {
    if let Err(e) = check_spare(&d, asp, spare_pg) {
        return (d, e);
    }
    if l1index as usize >= KOM_L1_SLOTS {
        return (d, KomErr::InvalidMapping);
    }
    // `install_l2pt` bumps the refcount for a fresh allocation; the spare
    // was already counted, so compensate.
    match install_l2pt(&mut d, asp, spare_pg, l1index as usize) {
        Ok(()) => {
            d.add_ref(asp, -1);
            (d, KomErr::Ok)
        }
        Err(e) => (d, e),
    }
}

/// SVC `MapData(sparePg, mapping)`: maps a spare page as a zero-filled data
/// page at the given address and permissions (§4).
pub fn svc_map_data(
    mut d: PageDb,
    asp: PageNr,
    spare_pg: PageNr,
    mapping: Mapping,
) -> (PageDb, KomErr) {
    if let Err(e) = check_spare(&d, asp, spare_pg) {
        return (d, e);
    }
    if !mapping.in_bounds() || !mapping.r {
        return (d, KomErr::InvalidMapping);
    }
    let l2pg = match d.lookup_mapping(asp, mapping) {
        None => return (d, KomErr::InvalidMapping),
        Some((_, L2Entry::SecureMapping { .. })) | Some((_, L2Entry::InsecureMapping { .. })) => {
            return (d, KomErr::AddrInUse)
        }
        Some((l2pg, L2Entry::Nothing)) => l2pg,
    };
    d.set(
        spare_pg,
        PageEntry::Data {
            addrspace: asp,
            contents: Box::new([0; KOM_PAGE_WORDS]),
        },
    );
    if let Some(PageEntry::L2PTable { slots, .. }) = d.get_mut(l2pg) {
        slots[mapping.l2_slot()] = L2Entry::SecureMapping {
            page: spare_pg,
            w: mapping.w,
            x: mapping.x,
        };
    }
    (d, KomErr::Ok)
}

/// SVC `UnmapData(dataPg, mapping)`: unmaps a data page, "turning it back
/// into a spare page" (Table 1).
pub fn svc_unmap_data(
    mut d: PageDb,
    asp: PageNr,
    data_pg: PageNr,
    mapping: Mapping,
) -> (PageDb, KomErr) {
    // Validate the page argument before the mapping, matching the
    // implementation's check order so error codes refine exactly.
    match d.get(data_pg) {
        Some(PageEntry::Data { addrspace, .. }) if *addrspace == asp => {}
        _ => return (d, KomErr::InvalidPageNo),
    }
    if !mapping.in_bounds() {
        return (d, KomErr::InvalidMapping);
    }
    let l2pg = match d.lookup_mapping(asp, mapping) {
        Some((l2pg, L2Entry::SecureMapping { page, .. })) if page == data_pg => l2pg,
        Some(_) | None => return (d, KomErr::InvalidMapping),
    };
    if let Some(PageEntry::L2PTable { slots, .. }) = d.get_mut(l2pg) {
        slots[mapping.l2_slot()] = L2Entry::Nothing;
    }
    // Contents are dropped: a spare page carries no data, so the next
    // MapData observably starts from zeroes.
    d.set(data_pg, PageEntry::Spare { addrspace: asp });
    (d, KomErr::Ok)
}

/// Whether `asp` may execute (finalised, not stopped).
pub fn executable(d: &PageDb, asp: PageNr) -> bool {
    d.addrspace_state(asp) == Some(AddrspaceState::Final)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::valid_pagedb;
    use crate::params::SecureParams;
    use crate::smc;

    const KEY: &[u8] = b"test attestation key";

    fn params() -> SecureParams {
        SecureParams::for_tests()
    }

    /// A finalised enclave with a spare page 4.
    fn built() -> PageDb {
        let p = params();
        let d = PageDb::new(p.npages);
        let (d, _) = smc::init_addrspace(d, &p, 0, 1);
        let (d, _) = smc::init_l2ptable(d, &p, 0, 2, 0);
        let (d, _) = smc::init_thread(d, &p, 0, 3, 0x8000);
        let (d, e) = smc::finalise(d, &p, 0);
        assert_eq!(e, KomErr::Ok);
        let (d, e) = smc::alloc_spare(d, &p, 0, 4);
        assert_eq!(e, KomErr::Ok);
        d
    }

    #[test]
    fn attest_verify_roundtrip() {
        let d = built();
        let data = [1u32, 2, 3, 4, 5, 6, 7, 8];
        let mac = attest(&d, KEY, 0, &data).unwrap();
        let measure = d.measurement_of(0).unwrap().digest().unwrap();
        assert!(verify(KEY, &data, &measure.0, &mac.0));
        // Wrong data fails.
        let mut bad = data;
        bad[0] ^= 1;
        assert!(!verify(KEY, &bad, &measure.0, &mac.0));
        // Wrong measurement fails.
        let mut badm = measure.0;
        badm[7] ^= 1;
        assert!(!verify(KEY, &data, &badm, &mac.0));
        // Wrong key fails.
        let other = attest_mac(b"other key", &measure, &data);
        assert!(!verify(KEY, &data, &measure.0, &other.0));
    }

    #[test]
    fn attest_requires_final() {
        let p = params();
        let d = PageDb::new(p.npages);
        let (d, _) = smc::init_addrspace(d, &p, 0, 1);
        assert_eq!(attest(&d, KEY, 0, &[0; 8]), Err(KomErr::NotFinal));
        assert_eq!(attest(&d, KEY, 1, &[0; 8]), Err(KomErr::InvalidAddrspace));
    }

    fn map9() -> Mapping {
        Mapping {
            vpn: 9,
            r: true,
            w: true,
            x: false,
        }
    }

    #[test]
    fn map_data_turns_spare_into_zeroed_page() {
        let p = params();
        let (d, e) = svc_map_data(built(), 0, 4, map9());
        assert_eq!(e, KomErr::Ok);
        assert!(valid_pagedb(&d, &p));
        match d.get(4) {
            Some(PageEntry::Data { contents, .. }) => assert!(contents.iter().all(|w| *w == 0)),
            other => panic!("expected data page, got {other:?}"),
        }
        assert!(matches!(
            d.lookup_mapping(0, map9()),
            Some((
                2,
                L2Entry::SecureMapping {
                    page: 4,
                    w: true,
                    x: false
                }
            ))
        ));
    }

    #[test]
    fn map_data_requires_spare() {
        let (_, e) = svc_map_data(built(), 0, 3, map9()); // Thread page.
        assert_eq!(e, KomErr::NotSpare);
        let (_, e) = svc_map_data(built(), 0, 99, map9());
        assert_eq!(e, KomErr::InvalidPageNo);
    }

    #[test]
    fn unmap_data_roundtrip() {
        let p = params();
        let (d, _) = svc_map_data(built(), 0, 4, map9());
        let (d, e) = svc_unmap_data(d, 0, 4, map9());
        assert_eq!(e, KomErr::Ok);
        assert!(valid_pagedb(&d, &p));
        assert!(matches!(d.get(4), Some(PageEntry::Spare { addrspace: 0 })));
        assert!(matches!(
            d.lookup_mapping(0, map9()),
            Some((_, L2Entry::Nothing))
        ));
    }

    #[test]
    fn unmap_data_validates_mapping_target() {
        let (d, _) = svc_map_data(built(), 0, 4, map9());
        // Not a data page at all (a thread page): page check fires first.
        let (_, e) = svc_unmap_data(d.clone(), 0, 3, map9());
        assert_eq!(e, KomErr::InvalidPageNo);
        // Unmapped VA for a real data page.
        let other = Mapping { vpn: 12, ..map9() };
        let (_, e) = svc_unmap_data(d.clone(), 0, 4, other);
        assert_eq!(e, KomErr::InvalidMapping);
        // Right VA, wrong data page: map a second data page at another VA
        // and cross the arguments.
        let m12 = Mapping { vpn: 12, ..map9() };
        let (d, e) = crate::smc::alloc_spare(d, &params(), 0, 5);
        assert_eq!(e, KomErr::Ok);
        let (d, e) = svc_map_data(d, 0, 5, m12);
        assert_eq!(e, KomErr::Ok);
        // Page 5 is data but mapped at vpn 12, not vpn 9.
        let (_, e) = svc_unmap_data(d, 0, 5, map9());
        assert_eq!(e, KomErr::InvalidMapping);
    }

    #[test]
    fn svc_init_l2pt_preserves_refcount() {
        let p = params();
        let d = built();
        let before = d.pages_of(0).len();
        let (d, e) = svc_init_l2ptable(d, 0, 4, 1);
        assert_eq!(e, KomErr::Ok);
        assert!(
            valid_pagedb(&d, &p),
            "{:?}",
            crate::invariants::pagedb_violations(&d, &p)
        );
        assert_eq!(d.pages_of(0).len(), before);
        assert!(matches!(d.get(4), Some(PageEntry::L2PTable { .. })));
    }

    #[test]
    fn svc_init_l2pt_rejects_occupied_slot() {
        let (_, e) = svc_init_l2ptable(built(), 0, 4, 0); // Slot 0 exists.
        assert_eq!(e, KomErr::AddrInUse);
    }

    #[test]
    fn remap_after_unmap_is_zero_filled() {
        // Enclave writes, unmaps, remaps: contents must be zeroes again.
        let (mut d, _) = svc_map_data(built(), 0, 4, map9());
        if let Some(PageEntry::Data { contents, .. }) = d.get_mut(4) {
            contents[0] = 0xdead_beef;
        }
        let (d, _) = svc_unmap_data(d, 0, 4, map9());
        let (d, e) = svc_map_data(d, 0, 4, map9());
        assert_eq!(e, KomErr::Ok);
        match d.get(4) {
            Some(PageEntry::Data { contents, .. }) => assert_eq!(contents[0], 0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn executable_states() {
        let p = params();
        let d = PageDb::new(p.npages);
        let (d, _) = smc::init_addrspace(d, &p, 0, 1);
        assert!(!executable(&d, 0));
        let (d, _) = smc::finalise(d, &p, 0);
        assert!(executable(&d, 0));
        let (d, _) = smc::stop(d, &p, 0);
        assert!(!executable(&d, 0));
    }
}
