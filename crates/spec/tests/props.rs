//! Specification-level properties.
//!
//! The Dafny development proves that every monitor call preserves the
//! PageDB invariants ("we prove that each SMC and SVC preserves the PageDB
//! invariants", §5.2) and that errors have no effect. These properties run
//! over randomized call sequences instead of all of them.

use komodo_spec::enter::{InsecureMem, UserExec, UserExitKind, UserStep, UserVisible};
use komodo_spec::handler::{smc_handler, HandlerEnv};
use komodo_spec::invariants::{pagedb_violations, valid_pagedb};
use komodo_spec::{KomErr, Mapping, PageDb, PageEntry, SecureParams, SmcCall};
use proptest::prelude::*;

struct ZeroMem;

impl InsecureMem for ZeroMem {
    fn read_page(&mut self, pfn: u32) -> Box<[u32; 1024]> {
        // Deterministic non-trivial contents per pfn.
        let mut p = Box::new([0u32; 1024]);
        for (i, w) in p.iter_mut().enumerate() {
            *w = pfn.wrapping_mul(31).wrapping_add(i as u32);
        }
        p
    }
    fn write_word(&mut self, _: u32, _: usize, _: u32) {}
}

/// A hash-driven enclave exec that always exits after up to two SVCs.
struct QuickExec(u64);

impl UserExec for QuickExec {
    fn step(&mut self, view: &UserVisible) -> UserStep {
        let mut regs = view.regs;
        let choice = self.0 % 3;
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        regs[0] = match choice {
            0 => 0, // Exit.
            1 => 1, // GetRandom.
            _ => 2, // Attest.
        };
        regs[1] = (self.0 >> 32) as u32;
        UserStep {
            regs,
            pc: view.pc,
            cpsr_flags: 0,
            secure_writes: Vec::new(),
            insecure_writes: Vec::new(),
            exit: UserExitKind::Svc,
        }
    }
}

fn arb_call() -> impl Strategy<Value = (u32, [u32; 4])> {
    (1u32..=12, proptest::array::uniform4(0u32..48)).prop_map(|(call, mut args)| {
        // Bias mapping-shaped args for the mapping calls.
        if call == 6 || call == 7 {
            let m = Mapping {
                vpn: args[2] % 64,
                r: true,
                w: args[3] % 2 == 0,
                x: args[3] % 3 == 0,
            };
            if call == 6 {
                args[2] = m.pack();
                args[3] %= 40; // pfn.
            } else {
                args[1] = m.pack();
                args[2] %= 40;
            }
        }
        (call, args)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every randomized call sequence preserves the PageDB invariants at
    /// every step, and page accounting stays conserved.
    #[test]
    fn prop_invariants_preserved(
        calls in proptest::collection::vec(arb_call(), 1..80),
        seed in any::<u64>(),
    ) {
        let params = SecureParams::for_tests();
        let mut d = PageDb::new(params.npages);
        let mut rng_state = seed;
        for (call, args) in calls {
            let mut rng = || {
                rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(7);
                (rng_state >> 32) as u32
            };
            let mut exec = QuickExec(seed);
            let mut mem = ZeroMem;
            let mut env = HandlerEnv {
                params: &params,
                attest_key: b"props",
                rng: &mut rng,
                exec: &mut exec,
                insecure: &mut mem,
                max_svcs: 4,
            };
            let (nd, _, _) = smc_handler(d, &mut env, call, args);
            d = nd;
            prop_assert!(
                valid_pagedb(&d, &params),
                "after call {call} {args:?}: {:?}",
                pagedb_violations(&d, &params)
            );
            // Page conservation: every page is exactly one of free or
            // allocated, and the entry count never changes.
            prop_assert_eq!(d.npages(), params.npages);
        }
    }

    /// Failing calls leave the PageDB untouched (atomicity of rejection).
    #[test]
    fn prop_errors_have_no_effect(
        setup in proptest::collection::vec(arb_call(), 0..30),
        probe in arb_call(),
        seed in any::<u64>(),
    ) {
        let params = SecureParams::for_tests();
        let mut d = PageDb::new(params.npages);
        let run_one = |d: PageDb, call: u32, args: [u32; 4], seed: u64| {
            let mut rng_state = seed;
            let mut rng = move || {
                rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(7);
                (rng_state >> 32) as u32
            };
            let mut exec = QuickExec(seed);
            let mut mem = ZeroMem;
            let mut env = HandlerEnv {
                params: &params,
                attest_key: b"props",
                rng: &mut rng,
                exec: &mut exec,
                insecure: &mut mem,
                max_svcs: 4,
            };
            smc_handler(d, &mut env, call, args)
        };
        for (call, args) in setup {
            let (nd, _, _) = run_one(d, call, args, seed);
            d = nd;
        }
        let before = d.clone();
        let (after, err, _) = run_one(d, probe.0, probe.1, seed);
        if err != KomErr::Ok && err != KomErr::Interrupted && err != KomErr::Fault {
            prop_assert_eq!(after, before, "call {} {:?} failed with {:?} but mutated state", probe.0, probe.1, err);
        }
    }

    /// Construction determinism: the same call sequence from the same
    /// empty state yields the same PageDB and, when finalised, the same
    /// measurement.
    #[test]
    fn prop_construction_deterministic(calls in proptest::collection::vec(arb_call(), 1..50)) {
        let params = SecureParams::for_tests();
        let build = || {
            let mut d = PageDb::new(params.npages);
            for (call, args) in &calls {
                if *call == SmcCall::Enter as u32 || *call == SmcCall::Resume as u32 {
                    continue; // Keep it structural.
                }
                let mut rng = || 0u32;
                let mut exec = QuickExec(0);
                let mut mem = ZeroMem;
                let mut env = HandlerEnv {
                    params: &params,
                    attest_key: b"props",
                    rng: &mut rng,
                    exec: &mut exec,
                    insecure: &mut mem,
                    max_svcs: 0,
                };
                let (nd, _, _) = smc_handler(d, &mut env, *call, *args);
                d = nd;
            }
            d
        };
        prop_assert_eq!(build(), build());
    }

    /// Refcounts equal ownership — stated directly, not via the invariant
    /// checker, as an independent cross-check.
    #[test]
    fn prop_refcounts_count_ownership(calls in proptest::collection::vec(arb_call(), 1..60)) {
        let params = SecureParams::for_tests();
        let mut d = PageDb::new(params.npages);
        for (call, args) in calls {
            let mut rng = || 3u32;
            let mut exec = QuickExec(1);
            let mut mem = ZeroMem;
            let mut env = HandlerEnv {
                params: &params,
                attest_key: b"props",
                rng: &mut rng,
                exec: &mut exec,
                insecure: &mut mem,
                max_svcs: 2,
            };
            let (nd, _, _) = smc_handler(d, &mut env, call, args);
            d = nd;
        }
        for pg in 0..d.npages() {
            if let Some(PageEntry::Addrspace { refcount, .. }) = d.get(pg) {
                assert_eq!(*refcount, d.pages_of(pg).len(), "addrspace {pg}");
            }
        }
    }
}
