//! Property tests for the user-mode executor.
//!
//! The machine model is the trusted base of everything above it (the
//! paper's §5.1 model is *trusted*, not verified); these properties are
//! the closest executable substitute for its review:
//!
//! - data-processing semantics agree with an independent oracle,
//! - arbitrary code (including garbage) never wedges the machine — every
//!   run ends in a well-defined exception state,
//! - execution is *deterministic under preemption*: interrupting a
//!   computation at any point and resuming it reaches exactly the same
//!   final state.

use komodo_armv7::insn::{Cond, DpOp, MemOffset, Op2, Shift};
use komodo_armv7::mem::AccessAttrs;
use komodo_armv7::mode::{Mode, World};
use komodo_armv7::psr::Psr;
use komodo_armv7::ptw::{l1_coarse_desc, l2_page_desc, PagePerms};
use komodo_armv7::regs::Reg;
use komodo_armv7::{Assembler, ExitReason, Insn, Machine};
use proptest::prelude::*;

const CODE_VA: u32 = 0x8000;
const DATA_VA: u32 = 0x9000;

/// A machine with one RX code page and one RW data page, user mode.
fn machine_with(code: &[u32]) -> Machine {
    let mut m = Machine::new();
    m.mem.add_region(0x8000_0000, 0x10_0000, true);
    let ttbr0 = 0x8000_0000u32;
    let l2 = 0x8000_1000u32;
    m.mem
        .write(ttbr0, l1_coarse_desc(l2), AccessAttrs::MONITOR)
        .unwrap();
    m.mem
        .write(
            l2 + 8 * 4,
            l2_page_desc(0x8000_2000, PagePerms::RX, false),
            AccessAttrs::MONITOR,
        )
        .unwrap();
    m.mem
        .write(
            l2 + 9 * 4,
            l2_page_desc(0x8000_3000, PagePerms::RW, false),
            AccessAttrs::MONITOR,
        )
        .unwrap();
    m.mem.load_words(0x8000_2000, code).unwrap();
    m.cp15.mmu_mut(World::Secure).ttbr0 = ttbr0;
    m.cp15.scr_ns = false;
    m.cpsr = Psr::user();
    m.pc = CODE_VA;
    m
}

fn arb_dp() -> impl Strategy<Value = Insn> {
    (
        prop_oneof![
            Just(DpOp::And),
            Just(DpOp::Eor),
            Just(DpOp::Sub),
            Just(DpOp::Rsb),
            Just(DpOp::Add),
            Just(DpOp::Orr),
            Just(DpOp::Mov),
            Just(DpOp::Bic),
            Just(DpOp::Mvn),
        ],
        0u8..8,
        0u8..8,
        prop_oneof![
            any::<u8>().prop_map(Op2::imm),
            (0u8..8, 0u32..4, 1u8..32).prop_map(|(rm, sh, amount)| Op2::Reg {
                rm: Reg::R(rm),
                shift: Shift::from_bits(sh),
                amount,
            }),
        ],
    )
        .prop_map(|(op, rd, rn, op2)| Insn::Dp {
            cond: Cond::Al,
            op,
            s: false,
            rd: Reg::R(rd),
            rn: Reg::R(rn),
            op2,
        })
}

/// Single-register loads/stores in every decodable shape: word/byte,
/// immediate/register offset, add/subtract. Bases are drawn from `R8`
/// (data page), `R9` (data page middle) and `R10` (an arbitrary wild
/// pointer seeded by the test), so the same strategy yields data-TLB
/// hits, cross-page misses, code-page write refusals and outright aborts.
fn arb_mem() -> impl Strategy<Value = Insn> {
    (
        any::<bool>(), // load vs store
        any::<bool>(), // byte vs word
        0u8..8,        // rd
        // Biased toward the mapped bases; repeated arms stand in for
        // weights (the vendored proptest has no weighted oneof).
        prop_oneof![
            Just(8u8),
            Just(8u8),
            Just(8u8),
            Just(9u8),
            Just(9u8),
            Just(10u8)
        ],
        prop_oneof![
            (0u16..0x200, any::<bool>()).prop_map(|(imm12, add)| MemOffset::Imm { imm12, add }),
            (0u8..8, any::<bool>()).prop_map(|(rm, add)| MemOffset::Reg {
                rm: Reg::R(rm),
                add,
            }),
        ],
    )
        .prop_map(|(load, byte, rd, rn, off)| {
            if load {
                Insn::Ldr {
                    cond: Cond::Al,
                    rd: Reg::R(rd),
                    rn: Reg::R(rn),
                    off,
                    byte,
                }
            } else {
                Insn::Str {
                    cond: Cond::Al,
                    rd: Reg::R(rd),
                    rn: Reg::R(rn),
                    off,
                    byte,
                }
            }
        })
}

/// A mix biased toward memory traffic, so generated programs form
/// memory-inclusive superblocks rather than pure ALU traces.
fn arb_mem_or_dp() -> impl Strategy<Value = Insn> {
    prop_oneof![
        arb_mem().boxed(),
        arb_mem().boxed(),
        arb_dp().boxed(),
        arb_dp().boxed(),
        arb_dp().boxed()
    ]
}

/// Oracle: evaluate a non-flag-setting DP instruction over a register
/// array, independently of the machine's ALU code paths.
fn oracle_step(regs: &mut [u32; 8], insn: &Insn) {
    let Insn::Dp {
        op, rd, rn, op2, ..
    } = insn
    else {
        unreachable!()
    };
    let rv = |r: Reg| regs[r.index() as usize];
    let op2v = match *op2 {
        Op2::Imm { imm8, rot } => (imm8 as u32).rotate_right(2 * rot as u32),
        Op2::Reg { rm, shift, amount } => {
            let v = rv(rm);
            let a = amount as u32;
            match shift {
                Shift::Lsl => v << a,
                Shift::Lsr => v >> a,
                Shift::Asr => ((v as i32) >> a) as u32,
                Shift::Ror => v.rotate_right(a),
            }
        }
    };
    let n = rv(*rn);
    let res = match op {
        DpOp::And => n & op2v,
        DpOp::Eor => n ^ op2v,
        DpOp::Sub => n.wrapping_sub(op2v),
        DpOp::Rsb => op2v.wrapping_sub(n),
        DpOp::Add => n.wrapping_add(op2v),
        DpOp::Orr => n | op2v,
        DpOp::Mov => op2v,
        DpOp::Bic => n & !op2v,
        DpOp::Mvn => !op2v,
        _ => unreachable!(),
    };
    regs[rd.index() as usize] = res;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequences of data-processing instructions compute exactly what the
    /// independent oracle computes.
    #[test]
    fn prop_dataproc_matches_oracle(
        insns in proptest::collection::vec(arb_dp(), 1..40),
        init in proptest::array::uniform8(any::<u32>()),
    ) {
        let mut a = Assembler::new(CODE_VA);
        for i in &insns {
            a.emit(*i);
        }
        a.svc(0);
        let mut m = machine_with(&a.words());
        for (i, v) in init.iter().enumerate() {
            m.regs.set(Mode::User, Reg::R(i as u8), *v);
        }
        let exit = m.run_user(10_000).unwrap();
        prop_assert_eq!(exit, ExitReason::Svc { imm24: 0 });

        let mut oracle = init;
        for i in &insns {
            oracle_step(&mut oracle, i);
        }
        for (i, v) in oracle.iter().enumerate() {
            prop_assert_eq!(m.regs.get(Mode::User, Reg::R(i as u8)), *v, "r{}", i);
        }
    }

    /// Arbitrary words as code never panic the machine; execution always
    /// ends in a well-defined state (an exception mode or still-user on
    /// step limit), with the TLB still consistent.
    #[test]
    fn prop_garbage_code_cannot_wedge_the_machine(
        code in proptest::collection::vec(any::<u32>(), 1..64),
        init in proptest::array::uniform8(any::<u32>()),
    ) {
        let mut m = machine_with(&code);
        for (i, v) in init.iter().enumerate() {
            m.regs.set(Mode::User, Reg::R(i as u8), *v);
        }
        let exit = m.run_user(2_000).unwrap();
        match exit {
            ExitReason::StepLimit => prop_assert_eq!(m.cpsr.mode, Mode::User),
            ExitReason::Svc { .. } => prop_assert_eq!(m.cpsr.mode, Mode::Supervisor),
            ExitReason::Irq => prop_assert_eq!(m.cpsr.mode, Mode::Irq),
            ExitReason::Fiq => prop_assert_eq!(m.cpsr.mode, Mode::Fiq),
            ExitReason::Undefined(_) => prop_assert_eq!(m.cpsr.mode, Mode::Undefined),
            ExitReason::DataAbort(_) | ExitReason::PrefetchAbort(_) => {
                prop_assert_eq!(m.cpsr.mode, Mode::Abort)
            }
        }
        prop_assert!(m.tlb.is_consistent());
    }

    /// Determinism under preemption: interrupting at an arbitrary cycle
    /// and resuming reaches the same final registers, memory, and exit as
    /// the uninterrupted run.
    #[test]
    fn prop_interrupt_resume_is_transparent(
        seed_vals in proptest::array::uniform4(any::<u32>()),
        irq_after in 1u64..400,
    ) {
        // A compute kernel: mixes registers and memory for ~100 insns.
        let mut a = Assembler::new(CODE_VA);
        a.mov_imm32(Reg::R(8), DATA_VA);
        a.mov_imm(Reg::R(7), 20);
        let top = a.label();
        a.add_reg(Reg::R(0), Reg::R(0), Reg::R(1));
        a.eor_ror(Reg::R(1), Reg::R(1), Reg::R(2), 7);
        a.mul(Reg::R(2), Reg::R(3), Reg::R(0));
        a.str_imm(Reg::R(0), Reg::R(8), 0);
        a.ldr_imm(Reg::R(3), Reg::R(8), 0);
        a.add_imm(Reg::R(8), Reg::R(8), 4);
        a.subs_imm(Reg::R(7), Reg::R(7), 1);
        a.b_to(Cond::Ne, top);
        a.svc(0);
        let code = a.words();

        let setup = |m: &mut Machine| {
            for (i, v) in seed_vals.iter().enumerate() {
                m.regs.set(Mode::User, Reg::R(i as u8), *v);
            }
        };

        // Reference: uninterrupted.
        let mut m1 = machine_with(&code);
        setup(&mut m1);
        let exit1 = m1.run_user(100_000).unwrap();
        prop_assert_eq!(exit1, ExitReason::Svc { imm24: 0 });

        // Preempted at `irq_after` cycles, then resumed (the way the
        // monitor does it: exception return from IRQ mode).
        let mut m2 = machine_with(&code);
        setup(&mut m2);
        m2.irq_at = Some(m2.cycles + irq_after);
        loop {
            match m2.run_user(100_000).unwrap() {
                ExitReason::Svc { .. } => break,
                ExitReason::Irq => {
                    m2.irq_at = None;
                    m2.exception_return().unwrap();
                }
                other => prop_assert!(false, "unexpected exit {other:?}"),
            }
        }
        for i in 0..13u8 {
            prop_assert_eq!(
                m1.regs.get(Mode::User, Reg::R(i)),
                m2.regs.get(Mode::User, Reg::R(i)),
                "r{} differs after preemption", i
            );
        }
        // Data page contents identical.
        let d1 = m1.mem.dump_words(0x8000_3000, 32).unwrap();
        let d2 = m2.mem.dump_words(0x8000_3000, 32).unwrap();
        prop_assert_eq!(d1, d2);
    }

    /// Flag-setting compares steer conditional branches exactly like a
    /// host-side comparison.
    #[test]
    fn prop_signed_unsigned_compare_branches(a_val in any::<u32>(), b_val in any::<u32>()) {
        // r2 = flags summary via conditional moves after CMP r0, r1:
        // bit0 eq, bit1 unsigned-lower, bit2 signed-less.
        let mut a = Assembler::new(CODE_VA);
        a.mov_imm(Reg::R(2), 0);
        a.cmp_reg(Reg::R(0), Reg::R(1));
        for (bit, cond) in [(0u32, Cond::Eq), (1, Cond::Cc), (2, Cond::Lt)] {
            a.emit(Insn::Dp {
                cond,
                op: DpOp::Orr,
                s: false,
                rd: Reg::R(2),
                rn: Reg::R(2),
                op2: Op2::imm(1 << bit),
            });
            // Re-establish flags (ORR with s=false leaves them, but be
            // explicit for clarity).
            a.cmp_reg(Reg::R(0), Reg::R(1));
        }
        a.svc(0);
        let mut m = machine_with(&a.words());
        m.regs.set(Mode::User, Reg::R(0), a_val);
        m.regs.set(Mode::User, Reg::R(1), b_val);
        m.run_user(1000).unwrap();
        let got = m.regs.get(Mode::User, Reg::R(2));
        let want = (a_val == b_val) as u32
            | (((a_val < b_val) as u32) << 1)
            | ((((a_val as i32) < (b_val as i32)) as u32) << 2);
        prop_assert_eq!(got, want, "a={:#x} b={:#x}", a_val, b_val);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cycle-model preservation, adversarially and four ways: for
    /// *arbitrary* code (including garbage that faults, branches wild, or
    /// self-traps), the micro-op tier, the superblock engine, the
    /// accelerator-only configuration, and plain per-instruction stepping
    /// all yield bit-identical machines — registers, memory contents,
    /// access counters, TLB hit/miss/flush statistics, the cycle counter —
    /// and identical exits.
    #[test]
    fn prop_fetch_accel_is_architecturally_invisible(
        code in proptest::collection::vec(any::<u32>(), 1..64),
        init in proptest::array::uniform8(any::<u32>()),
        irq_after in 0u64..500,
    ) {
        let run = |accel: bool, superblocks: bool, uops: bool| {
            let mut m = machine_with(&code);
            m.set_fetch_accel(accel);
            m.set_superblocks(superblocks);
            m.set_uop_traces(uops);
            m.set_uop_threshold(2);
            for (i, v) in init.iter().enumerate() {
                m.regs.set(Mode::User, Reg::R(i as u8), *v);
            }
            if irq_after > 0 {
                m.irq_at = Some(m.cycles + irq_after);
            }
            let exit = m.run_user(2_000).unwrap();
            (m, exit)
        };
        let (uop, exit_uop) = run(true, true, true);
        let (sb, exit_sb) = run(true, true, false);
        let (on, exit_on) = run(true, false, false);
        let (off, exit_off) = run(false, false, false);
        prop_assert_eq!(exit_uop, exit_sb);
        prop_assert_eq!(exit_sb, exit_on);
        prop_assert_eq!(exit_on, exit_off);
        prop_assert_eq!(uop.cycles, off.cycles, "uop cycle model diverged");
        prop_assert_eq!(sb.cycles, off.cycles, "superblock cycle model diverged");
        prop_assert_eq!(on.cycles, off.cycles, "cycle model diverged");
        prop_assert_eq!(uop.tlb.hits, off.tlb.hits, "uop TLB hit accounting diverged");
        prop_assert_eq!(sb.tlb.hits, off.tlb.hits, "superblock TLB hit accounting diverged");
        prop_assert_eq!(on.tlb.hits, off.tlb.hits, "TLB hit accounting diverged");
        prop_assert_eq!(on.tlb.misses, off.tlb.misses, "TLB miss accounting diverged");
        prop_assert_eq!(on.tlb.flushes, off.tlb.flushes);
        prop_assert_eq!(uop.mem.reads, off.mem.reads, "uop read counter diverged");
        prop_assert_eq!(sb.mem.reads, off.mem.reads, "superblock read counter diverged");
        prop_assert_eq!(on.mem.reads, off.mem.reads, "read counter diverged");
        prop_assert_eq!(on.mem.writes, off.mem.writes, "write counter diverged");
        prop_assert!(uop == off, "uop architectural state diverged");
        prop_assert!(sb == off, "superblock architectural state diverged");
        prop_assert!(on == off, "architectural state diverged");
    }

    /// Same four-way invisibility property on a structured compute
    /// kernel with loops, memory traffic, and interrupt preemption/resume
    /// — the case where the accelerator's caches (and the superblock
    /// cache, and its promoted micro-op traces) are actually hot.
    #[test]
    fn prop_fetch_accel_invisible_under_preemption(
        seed_vals in proptest::array::uniform4(any::<u32>()),
        irq_after in 1u64..400,
    ) {
        let mut a = Assembler::new(CODE_VA);
        a.mov_imm32(Reg::R(8), DATA_VA);
        a.mov_imm(Reg::R(7), 20);
        let top = a.label();
        a.add_reg(Reg::R(0), Reg::R(0), Reg::R(1));
        a.eor_ror(Reg::R(1), Reg::R(1), Reg::R(2), 7);
        a.mul(Reg::R(2), Reg::R(3), Reg::R(0));
        a.str_imm(Reg::R(0), Reg::R(8), 0);
        a.ldr_imm(Reg::R(3), Reg::R(8), 0);
        a.add_imm(Reg::R(8), Reg::R(8), 4);
        a.subs_imm(Reg::R(7), Reg::R(7), 1);
        a.b_to(Cond::Ne, top);
        a.svc(0);
        let code = a.words();

        let run = |accel: bool,
                   superblocks: bool,
                   uops: bool|
         -> Result<Machine, proptest::test_runner::TestCaseError> {
            let mut m = machine_with(&code);
            m.set_fetch_accel(accel);
            m.set_superblocks(superblocks);
            m.set_uop_traces(uops);
            m.set_uop_threshold(2);
            for (i, v) in seed_vals.iter().enumerate() {
                m.regs.set(Mode::User, Reg::R(i as u8), *v);
            }
            m.irq_at = Some(m.cycles + irq_after);
            loop {
                match m.run_user(100_000).unwrap() {
                    ExitReason::Svc { .. } => break,
                    ExitReason::Irq => {
                        m.irq_at = None;
                        m.exception_return().unwrap();
                    }
                    other => prop_assert!(false, "unexpected exit {:?}", other),
                }
            }
            Ok(m)
        };
        let uop = run(true, true, true)?;
        let sb = run(true, true, false)?;
        let on = run(true, false, false)?;
        let off = run(false, false, false)?;
        prop_assert!(on.accel.served() > 100, "accelerator never engaged");
        prop_assert!(
            sb.superblock_stats().hits > 0,
            "superblock engine never engaged"
        );
        prop_assert!(
            uop.superblock_stats().uop_promoted > 0,
            "hot loop never promoted to a micro-op trace"
        );
        prop_assert_eq!(sb.superblock_stats().uop_promoted, 0, "promotion ran while disabled");
        prop_assert_eq!(on.superblock_stats().hits, 0, "engine ran while disabled");
        prop_assert_eq!(uop.cycles, off.cycles);
        prop_assert_eq!(sb.cycles, off.cycles);
        prop_assert_eq!(on.cycles, off.cycles);
        prop_assert_eq!(uop.tlb.hits, off.tlb.hits);
        prop_assert_eq!(sb.tlb.hits, off.tlb.hits);
        prop_assert_eq!(on.tlb.hits, off.tlb.hits);
        prop_assert_eq!(on.tlb.misses, off.tlb.misses);
        prop_assert!(uop == off, "uop architectural state diverged");
        prop_assert!(sb == off, "superblock architectural state diverged");
        prop_assert!(on == off, "architectural state diverged");
    }

    /// Four-way invisibility on *memory-heavy* programs: random mixes of
    /// single-register loads/stores (word and byte, immediate and
    /// register offsets, both directions) and ALU work, with bases that
    /// range from well-mapped data pages to wild pointers — so in-block
    /// data-TLB hits, misses, permission refusals and data aborts are all
    /// exercised, under interrupt preemption, with full machine equality
    /// (registers, cycles, TLB and memory statistics) asserted.
    #[test]
    fn prop_data_fast_path_is_architecturally_invisible(
        insns in proptest::collection::vec(arb_mem_or_dp(), 1..48),
        init in proptest::array::uniform8(any::<u32>()),
        wild in any::<u32>(),
        irq_after in 0u64..500,
    ) {
        let mut a = Assembler::new(CODE_VA);
        for i in &insns {
            a.emit(*i);
        }
        a.svc(0);
        let code = a.words();
        let run = |accel: bool, superblocks: bool, uops: bool| {
            let mut m = machine_with(&code);
            m.set_fetch_accel(accel);
            m.set_superblocks(superblocks);
            m.set_uop_traces(uops);
            m.set_uop_threshold(2);
            for (i, v) in init.iter().enumerate() {
                m.regs.set(Mode::User, Reg::R(i as u8), *v);
            }
            m.regs.set(Mode::User, Reg::R(8), DATA_VA);
            m.regs.set(Mode::User, Reg::R(9), DATA_VA + 0x800);
            m.regs.set(Mode::User, Reg::R(10), wild);
            if irq_after > 0 {
                m.irq_at = Some(m.cycles + irq_after);
            }
            let exit = m.run_user(2_000).unwrap();
            (m, exit)
        };
        let (uop, exit_uop) = run(true, true, true);
        let (sb, exit_sb) = run(true, true, false);
        let (on, exit_on) = run(true, false, false);
        let (off, exit_off) = run(false, false, false);
        prop_assert_eq!(exit_uop, exit_sb);
        prop_assert_eq!(exit_sb, exit_on);
        prop_assert_eq!(exit_on, exit_off);
        prop_assert_eq!(uop.cycles, off.cycles, "uop cycle model diverged");
        prop_assert_eq!(sb.cycles, off.cycles, "superblock cycle model diverged");
        prop_assert_eq!(uop.tlb.hits, off.tlb.hits, "uop TLB hit accounting diverged");
        prop_assert_eq!(sb.tlb.hits, off.tlb.hits, "TLB hit accounting diverged");
        prop_assert_eq!(sb.tlb.misses, off.tlb.misses, "TLB miss accounting diverged");
        prop_assert_eq!(uop.mem.reads, off.mem.reads, "uop read counter diverged");
        prop_assert_eq!(sb.mem.reads, off.mem.reads, "read counter diverged");
        prop_assert_eq!(uop.mem.writes, off.mem.writes, "uop write counter diverged");
        prop_assert_eq!(sb.mem.writes, off.mem.writes, "write counter diverged");
        prop_assert!(uop == off, "uop architectural state diverged");
        prop_assert!(sb == off, "superblock architectural state diverged");
        prop_assert!(on == off, "architectural state diverged");
    }

    /// A structured memory kernel — the shape the data-side fast path is
    /// built for — stays four-way identical under preemption/resume, and
    /// the superblock configuration demonstrably serves its loads/stores
    /// from the data-TLB (the uop configuration from its inlined sites).
    #[test]
    fn prop_memory_kernel_rides_the_dtlb_invisibly(
        seed_vals in proptest::array::uniform4(any::<u32>()),
        irq_after in 1u64..400,
    ) {
        let mut a = Assembler::new(CODE_VA);
        a.mov_imm32(Reg::R(8), DATA_VA);
        a.mov_imm(Reg::R(7), 25);
        let top = a.label();
        a.add_reg(Reg::R(0), Reg::R(0), Reg::R(1));
        a.str_imm(Reg::R(0), Reg::R(8), 0);
        a.ldr_imm(Reg::R(1), Reg::R(8), 0);
        a.strb_imm(Reg::R(1), Reg::R(8), 0x41);
        a.ldrb_imm(Reg::R(2), Reg::R(8), 0x41);
        a.add_imm(Reg::R(8), Reg::R(8), 4);
        a.subs_imm(Reg::R(7), Reg::R(7), 1);
        a.b_to(Cond::Ne, top);
        a.svc(0);
        let code = a.words();
        let run = |accel: bool,
                   superblocks: bool,
                   uops: bool|
         -> Result<Machine, proptest::test_runner::TestCaseError> {
            let mut m = machine_with(&code);
            m.set_fetch_accel(accel);
            m.set_superblocks(superblocks);
            m.set_uop_traces(uops);
            m.set_uop_threshold(2);
            for (i, v) in seed_vals.iter().enumerate() {
                m.regs.set(Mode::User, Reg::R(i as u8), *v);
            }
            m.irq_at = Some(m.cycles + irq_after);
            loop {
                match m.run_user(100_000).unwrap() {
                    ExitReason::Svc { .. } => break,
                    ExitReason::Irq => {
                        m.irq_at = None;
                        m.exception_return().unwrap();
                    }
                    other => prop_assert!(false, "unexpected exit {:?}", other),
                }
            }
            Ok(m)
        };
        let uop = run(true, true, true)?;
        let sb = run(true, true, false)?;
        let on = run(true, false, false)?;
        let off = run(false, false, false)?;
        prop_assert!(
            sb.superblock_stats().dtlb_hits > 0,
            "memory kernel never hit the data-TLB fast path"
        );
        prop_assert!(
            uop.superblock_stats().uop_hits > 0,
            "memory kernel never ran its specialised trace"
        );
        prop_assert_eq!(off.superblock_stats().dtlb_hits, 0, "baseline touched the data-TLB");
        prop_assert_eq!(uop.cycles, off.cycles);
        prop_assert_eq!(sb.cycles, off.cycles);
        prop_assert_eq!(uop.tlb.hits, off.tlb.hits);
        prop_assert_eq!(sb.tlb.hits, off.tlb.hits);
        prop_assert_eq!(sb.tlb.misses, off.tlb.misses);
        prop_assert_eq!(uop.mem.reads, off.mem.reads);
        prop_assert_eq!(sb.mem.reads, off.mem.reads);
        prop_assert_eq!(uop.mem.writes, off.mem.writes);
        prop_assert_eq!(sb.mem.writes, off.mem.writes);
        prop_assert!(uop == off, "uop architectural state diverged");
        prop_assert!(sb == off, "superblock architectural state diverged");
        prop_assert!(on == off, "architectural state diverged");
    }

    /// Satellite property for the micro-op tier: random promotion traffic
    /// interleaved with random invalidation causes. Each round runs the
    /// hot kernel (promoting traces once hot), then applies one randomly
    /// chosen invalidation source — nothing, a TLB flush, a TTBR0 reload,
    /// a world round-trip, or a store into the code page — and the final
    /// machines stay four-way bit-identical throughout.
    #[test]
    fn prop_random_promotions_survive_random_invalidations(
        seed_vals in proptest::array::uniform4(any::<u32>()),
        causes in proptest::collection::vec(0u8..5, 1..8),
    ) {
        let mut a = Assembler::new(CODE_VA);
        a.mov_imm32(Reg::R(8), DATA_VA);
        a.mov_imm(Reg::R(7), 12);
        let top = a.label();
        a.ldr_imm(Reg::R(2), Reg::R(8), 0);
        a.add_reg(Reg::R(0), Reg::R(0), Reg::R(2));
        a.str_imm(Reg::R(0), Reg::R(8), 4);
        a.eor_ror(Reg::R(1), Reg::R(1), Reg::R(0), 5);
        a.subs_imm(Reg::R(7), Reg::R(7), 1);
        a.b_to(Cond::Ne, top);
        a.svc(0);
        let code = a.words();
        // A harmless word patched into the code page by cause 4: the same
        // instruction that is already at offset 4 (add r0, r0, r2), so the
        // program's behaviour is unchanged but the write lands in the code
        // page and bumps the code generation.
        let patch_word = code[3];
        let run = |accel: bool,
                   superblocks: bool,
                   uops: bool|
         -> Result<Machine, proptest::test_runner::TestCaseError> {
            let mut m = machine_with(&code);
            m.set_fetch_accel(accel);
            m.set_superblocks(superblocks);
            m.set_uop_traces(uops);
            m.set_uop_threshold(2);
            for (i, v) in seed_vals.iter().enumerate() {
                m.regs.set(Mode::User, Reg::R(i as u8), *v);
            }
            for &cause in &causes {
                m.pc = CODE_VA;
                m.cpsr = Psr::user();
                let exit = m.run_user(100_000).unwrap();
                prop_assert_eq!(exit, ExitReason::Svc { imm24: 0 });
                match cause {
                    0 => {}
                    1 => m.tlb_flush(),
                    2 => {
                        // A TTBR0 reload leaves the TLB inconsistent until
                        // flushed (the paper's discipline), so pair them.
                        let ttbr0 = m.cp15.mmu(World::Secure).ttbr0;
                        m.load_ttbr0(ttbr0);
                        m.tlb_flush();
                    }
                    3 => {
                        m.set_scr_ns(true);
                        m.set_scr_ns(false);
                    }
                    4 => {
                        // Host-side store into the (watched) code page: the
                        // write-watch generation bump must drop decodes,
                        // blocks and promoted traces alike.
                        m.mem
                            .write(0x8000_2000 + 3 * 4, patch_word, AccessAttrs::MONITOR)
                            .unwrap();
                    }
                    _ => unreachable!(),
                }
            }
            Ok(m)
        };
        let uop = run(true, true, true)?;
        let sb = run(true, true, false)?;
        let on = run(true, false, false)?;
        let off = run(false, false, false)?;
        prop_assert!(
            uop.superblock_stats().uop_promoted > 0,
            "hot kernel never promoted"
        );
        prop_assert_eq!(uop.cycles, off.cycles, "uop cycle model diverged");
        prop_assert_eq!(sb.cycles, off.cycles, "superblock cycle model diverged");
        prop_assert_eq!(uop.tlb.hits, off.tlb.hits, "uop TLB accounting diverged");
        prop_assert_eq!(uop.mem.reads, off.mem.reads, "uop read counter diverged");
        prop_assert_eq!(uop.mem.writes, off.mem.writes, "uop write counter diverged");
        prop_assert!(uop == off, "uop architectural state diverged");
        prop_assert!(sb == off, "superblock architectural state diverged");
        prop_assert!(on == off, "architectural state diverged");
    }
}

/// FIQ takes priority over IRQ and lands in FIQ mode with its own bank.
#[test]
fn fiq_beats_irq_and_banks_correctly() {
    let mut a = Assembler::new(CODE_VA);
    let top = a.label();
    a.b_to(Cond::Al, top);
    let mut m = machine_with(&a.words());
    m.irq_at = Some(m.cycles + 10);
    m.fiq_at = Some(m.cycles + 10);
    let exit = m.run_user(1000).unwrap();
    assert_eq!(exit, ExitReason::Fiq);
    assert_eq!(m.cpsr.mode, Mode::Fiq);
    // Resume address preserved in LR_fiq.
    let lr = m.regs.lr_banked(komodo_armv7::regs::Bank::Fiq);
    assert!((CODE_VA..CODE_VA + 8).contains(&lr));
}
