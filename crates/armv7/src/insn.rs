//! The modelled instruction set.
//!
//! The paper models "the semantics of 25 instructions, including integer and
//! bitwise arithmetic, and access to memory and control registers" (§5.1).
//! This model covers the same user-mode-reachable ground with real A32
//! encodings so that guest code is ordinary words in simulated memory:
//!
//! - all 16 data-processing opcodes with immediate and register-shifted
//!   operands,
//! - `MUL`, `MOVW`/`MOVT`,
//! - `LDR`/`STR`/`LDRB`/`STRB` with immediate and register offsets,
//! - `LDM`/`STM` (increment-after and decrement-before, with writeback),
//! - `B`/`BL`/`BX`, `SVC`, `MRS`, `UDF`,
//! - `SMC` and `MCR`/`MRC`, which are *privileged*: executing them in user
//!   mode raises an undefined-instruction exception, which the monitor turns
//!   into an enclave kill (§4: "If the enclave takes an exception, the thread
//!   simply exits with an error code").
//!
//! Any word that does not decode to one of these is [`Insn::Unknown`] and
//! executes as an undefined instruction — the executable analogue of the
//! paper's idiomatic-specification rule that "a verified implementation
//! cannot execute unspecified instructions".

use crate::regs::Reg;

/// Condition codes (ARM ARM A8.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cond {
    /// Equal (`Z == 1`).
    Eq,
    /// Not equal.
    Ne,
    /// Carry set / unsigned higher-or-same.
    Cs,
    /// Carry clear / unsigned lower.
    Cc,
    /// Minus / negative.
    Mi,
    /// Plus / positive or zero.
    Pl,
    /// Overflow.
    Vs,
    /// No overflow.
    Vc,
    /// Unsigned higher.
    Hi,
    /// Unsigned lower-or-same.
    Ls,
    /// Signed greater-or-equal.
    Ge,
    /// Signed less-than.
    Lt,
    /// Signed greater-than.
    Gt,
    /// Signed less-or-equal.
    Le,
    /// Always.
    Al,
}

impl Cond {
    /// Encodes to the 4-bit condition field.
    pub fn bits(self) -> u32 {
        match self {
            Cond::Eq => 0,
            Cond::Ne => 1,
            Cond::Cs => 2,
            Cond::Cc => 3,
            Cond::Mi => 4,
            Cond::Pl => 5,
            Cond::Vs => 6,
            Cond::Vc => 7,
            Cond::Hi => 8,
            Cond::Ls => 9,
            Cond::Ge => 10,
            Cond::Lt => 11,
            Cond::Gt => 12,
            Cond::Le => 13,
            Cond::Al => 14,
        }
    }

    /// Decodes a 4-bit condition field; `0b1111` (unconditional space) is
    /// rejected.
    pub fn from_bits(bits: u32) -> Option<Cond> {
        Some(match bits & 0xf {
            0 => Cond::Eq,
            1 => Cond::Ne,
            2 => Cond::Cs,
            3 => Cond::Cc,
            4 => Cond::Mi,
            5 => Cond::Pl,
            6 => Cond::Vs,
            7 => Cond::Vc,
            8 => Cond::Hi,
            9 => Cond::Ls,
            10 => Cond::Ge,
            11 => Cond::Lt,
            12 => Cond::Gt,
            13 => Cond::Le,
            14 => Cond::Al,
            _ => return None,
        })
    }
}

/// Shift applied to a register operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shift {
    /// Logical shift left.
    Lsl,
    /// Logical shift right.
    Lsr,
    /// Arithmetic shift right.
    Asr,
    /// Rotate right.
    Ror,
}

impl Shift {
    /// 2-bit encoding.
    pub fn bits(self) -> u32 {
        match self {
            Shift::Lsl => 0,
            Shift::Lsr => 1,
            Shift::Asr => 2,
            Shift::Ror => 3,
        }
    }

    /// Decode from the 2-bit field.
    pub fn from_bits(bits: u32) -> Shift {
        match bits & 3 {
            0 => Shift::Lsl,
            1 => Shift::Lsr,
            2 => Shift::Asr,
            _ => Shift::Ror,
        }
    }
}

/// The flexible second operand of data-processing instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op2 {
    /// `#imm8 ROR (2*rot)`.
    Imm {
        /// 8-bit immediate.
        imm8: u8,
        /// 4-bit rotation count (the value is rotated right by `2*rot`).
        rot: u8,
    },
    /// `Rm, <shift> #amount` — register with immediate shift.
    Reg {
        /// Source register.
        rm: Reg,
        /// Shift kind.
        shift: Shift,
        /// Shift amount 0..=31 as encoded (`LSR/ASR` amount 0 encodes 32).
        amount: u8,
    },
}

impl Op2 {
    /// Shorthand for an unrotated immediate.
    pub fn imm(v: u8) -> Op2 {
        Op2::Imm { imm8: v, rot: 0 }
    }

    /// Shorthand for an unshifted register.
    pub fn reg(rm: Reg) -> Op2 {
        Op2::Reg {
            rm,
            shift: Shift::Lsl,
            amount: 0,
        }
    }

    /// Tries to express an arbitrary 32-bit value as an `imm8 ROR (2*rot)`
    /// immediate, the way an assembler would.
    pub fn encode_imm32(v: u32) -> Option<Op2> {
        for rot in 0..16u8 {
            let unrot = v.rotate_left(2 * rot as u32);
            if unrot <= 0xff {
                return Some(Op2::Imm {
                    imm8: unrot as u8,
                    rot,
                });
            }
        }
        None
    }
}

/// Data-processing opcode (4-bit field).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum DpOp {
    And,
    Eor,
    Sub,
    Rsb,
    Add,
    Adc,
    Sbc,
    Rsc,
    Tst,
    Teq,
    Cmp,
    Cmn,
    Orr,
    Mov,
    Bic,
    Mvn,
}

impl DpOp {
    /// The 4-bit opcode field.
    pub fn bits(self) -> u32 {
        match self {
            DpOp::And => 0b0000,
            DpOp::Eor => 0b0001,
            DpOp::Sub => 0b0010,
            DpOp::Rsb => 0b0011,
            DpOp::Add => 0b0100,
            DpOp::Adc => 0b0101,
            DpOp::Sbc => 0b0110,
            DpOp::Rsc => 0b0111,
            DpOp::Tst => 0b1000,
            DpOp::Teq => 0b1001,
            DpOp::Cmp => 0b1010,
            DpOp::Cmn => 0b1011,
            DpOp::Orr => 0b1100,
            DpOp::Mov => 0b1101,
            DpOp::Bic => 0b1110,
            DpOp::Mvn => 0b1111,
        }
    }

    /// Decode from the opcode field.
    pub fn from_bits(bits: u32) -> DpOp {
        match bits & 0xf {
            0b0000 => DpOp::And,
            0b0001 => DpOp::Eor,
            0b0010 => DpOp::Sub,
            0b0011 => DpOp::Rsb,
            0b0100 => DpOp::Add,
            0b0101 => DpOp::Adc,
            0b0110 => DpOp::Sbc,
            0b0111 => DpOp::Rsc,
            0b1000 => DpOp::Tst,
            0b1001 => DpOp::Teq,
            0b1010 => DpOp::Cmp,
            0b1011 => DpOp::Cmn,
            0b1100 => DpOp::Orr,
            0b1101 => DpOp::Mov,
            0b1110 => DpOp::Bic,
            _ => DpOp::Mvn,
        }
    }

    /// Comparison/test opcodes write no destination and always set flags.
    #[inline]
    pub fn is_compare(self) -> bool {
        matches!(self, DpOp::Tst | DpOp::Teq | DpOp::Cmp | DpOp::Cmn)
    }

    /// `MOV`/`MVN` take no first operand.
    pub fn is_move(self) -> bool {
        matches!(self, DpOp::Mov | DpOp::Mvn)
    }
}

/// Addressing offset for single loads/stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemOffset {
    /// `[Rn, #±imm12]`.
    Imm {
        /// 12-bit offset magnitude.
        imm12: u16,
        /// Add (`U=1`) or subtract the offset.
        add: bool,
    },
    /// `[Rn, ±Rm]`.
    Reg {
        /// Offset register.
        rm: Reg,
        /// Add or subtract.
        add: bool,
    },
}

/// Load/store-multiple addressing mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LsmMode {
    /// Increment-after (`LDMIA`/`STMIA`; pop is `LDMIA SP!`).
    Ia,
    /// Decrement-before (`LDMDB`/`STMDB`; push is `STMDB SP!`).
    Db,
}

/// A decoded instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Insn {
    /// Data-processing.
    Dp {
        /// Condition.
        cond: Cond,
        /// Opcode.
        op: DpOp,
        /// Set flags (`S` bit); compares are always flag-setting.
        s: bool,
        /// Destination (ignored for compares).
        rd: Reg,
        /// First operand (ignored for moves).
        rn: Reg,
        /// Flexible second operand.
        op2: Op2,
    },
    /// `MUL rd, rm, rs` (low 32 bits of the product).
    Mul {
        /// Condition.
        cond: Cond,
        /// Set flags.
        s: bool,
        /// Destination.
        rd: Reg,
        /// Multiplicand.
        rm: Reg,
        /// Multiplier.
        rs: Reg,
    },
    /// `MOVW rd, #imm16`: load low half, clear high half.
    Movw {
        /// Condition.
        cond: Cond,
        /// Destination.
        rd: Reg,
        /// Immediate.
        imm16: u16,
    },
    /// `MOVT rd, #imm16`: load high half, keep low half.
    Movt {
        /// Condition.
        cond: Cond,
        /// Destination.
        rd: Reg,
        /// Immediate.
        imm16: u16,
    },
    /// Single load.
    Ldr {
        /// Condition.
        cond: Cond,
        /// Destination.
        rd: Reg,
        /// Base register.
        rn: Reg,
        /// Offset.
        off: MemOffset,
        /// Byte (`LDRB`) rather than word access.
        byte: bool,
    },
    /// Single store.
    Str {
        /// Condition.
        cond: Cond,
        /// Source.
        rd: Reg,
        /// Base register.
        rn: Reg,
        /// Offset.
        off: MemOffset,
        /// Byte (`STRB`) rather than word access.
        byte: bool,
    },
    /// Load-multiple.
    Ldm {
        /// Condition.
        cond: Cond,
        /// Base register.
        rn: Reg,
        /// Write the final address back to `rn`.
        writeback: bool,
        /// Bitmask of registers R0..R14 (bit 15 — `PC` — is not modelled).
        regs: u16,
        /// Addressing mode.
        mode: LsmMode,
    },
    /// Store-multiple.
    Stm {
        /// Condition.
        cond: Cond,
        /// Base register.
        rn: Reg,
        /// Writeback.
        writeback: bool,
        /// Register bitmask.
        regs: u16,
        /// Addressing mode.
        mode: LsmMode,
    },
    /// Branch; offset in *instructions* relative to `PC+8` (two words ahead),
    /// as architecturally encoded.
    B {
        /// Condition.
        cond: Cond,
        /// Signed word offset.
        offset: i32,
    },
    /// Branch with link.
    Bl {
        /// Condition.
        cond: Cond,
        /// Signed word offset.
        offset: i32,
    },
    /// Branch to the address in a register (bit 0 must be clear: no Thumb).
    Bx {
        /// Condition.
        cond: Cond,
        /// Target register.
        rm: Reg,
    },
    /// Supervisor call: traps to the monitor's SVC handler from an enclave.
    Svc {
        /// Condition.
        cond: Cond,
        /// Comment field (the Komodo SVC ABI passes the call number in `R0`,
        /// so this is conventionally zero).
        imm24: u32,
    },
    /// Secure monitor call — privileged; undefined from user mode.
    Smc {
        /// Condition.
        cond: Cond,
        /// 4-bit comment field.
        imm4: u8,
    },
    /// Read CPSR (user mode sees flags and mode).
    Mrs {
        /// Condition.
        cond: Cond,
        /// Destination.
        rd: Reg,
    },
    /// Coprocessor register transfer to CP — privileged; undefined from
    /// user mode.
    Mcr {
        /// Condition.
        cond: Cond,
        /// Coprocessor number.
        cp: u8,
        /// Source register.
        rt: Reg,
    },
    /// Coprocessor register transfer from CP — privileged; undefined from
    /// user mode.
    Mrc {
        /// Condition.
        cond: Cond,
        /// Coprocessor number.
        cp: u8,
        /// Destination register.
        rt: Reg,
    },
    /// Permanently undefined (`UDF #imm16`).
    Udf {
        /// Immediate payload.
        imm16: u16,
    },
    /// Any word that did not decode; executes as undefined.
    Unknown(u32),
}

impl Insn {
    /// The instruction's condition field ([`Cond::Al`] where unconditional).
    #[inline]
    pub fn cond(&self) -> Cond {
        match *self {
            Insn::Dp { cond, .. }
            | Insn::Mul { cond, .. }
            | Insn::Movw { cond, .. }
            | Insn::Movt { cond, .. }
            | Insn::Ldr { cond, .. }
            | Insn::Str { cond, .. }
            | Insn::Ldm { cond, .. }
            | Insn::Stm { cond, .. }
            | Insn::B { cond, .. }
            | Insn::Bl { cond, .. }
            | Insn::Bx { cond, .. }
            | Insn::Svc { cond, .. }
            | Insn::Smc { cond, .. }
            | Insn::Mrs { cond, .. }
            | Insn::Mcr { cond, .. }
            | Insn::Mrc { cond, .. } => cond,
            Insn::Udf { .. } | Insn::Unknown(_) => Cond::Al,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_roundtrip() {
        for b in 0..15u32 {
            let c = Cond::from_bits(b).unwrap();
            assert_eq!(c.bits(), b);
        }
        assert_eq!(Cond::from_bits(15), None);
    }

    #[test]
    fn dpop_roundtrip() {
        for b in 0..16u32 {
            assert_eq!(DpOp::from_bits(b).bits(), b);
        }
    }

    #[test]
    fn shift_roundtrip() {
        for b in 0..4u32 {
            assert_eq!(Shift::from_bits(b).bits(), b);
        }
    }

    #[test]
    fn encode_imm32_basic() {
        assert_eq!(
            Op2::encode_imm32(0xff),
            Some(Op2::Imm { imm8: 0xff, rot: 0 })
        );
        assert_eq!(
            Op2::encode_imm32(0x3f0),
            Some(Op2::Imm {
                imm8: 0x3f,
                rot: 14
            })
        );
        // 0xff000000 = 0xff rotated right by 8 → rot = 4.
        assert_eq!(
            Op2::encode_imm32(0xff00_0000),
            Some(Op2::Imm { imm8: 0xff, rot: 4 })
        );
        assert_eq!(Op2::encode_imm32(0x1234_5678), None);
    }

    #[test]
    fn encode_imm32_all_encodable_roundtrip() {
        // Every encodable immediate must round-trip through its encoding.
        for rot in 0..16u32 {
            for imm in [0u32, 1, 0x7f, 0xff] {
                let val = imm.rotate_right(2 * rot);
                let enc = Op2::encode_imm32(val).expect("encodable");
                if let Op2::Imm { imm8, rot } = enc {
                    assert_eq!((imm8 as u32).rotate_right(2 * rot as u32), val);
                } else {
                    panic!("expected immediate");
                }
            }
        }
    }

    #[test]
    fn compare_classification() {
        assert!(DpOp::Cmp.is_compare());
        assert!(!DpOp::Add.is_compare());
        assert!(DpOp::Mov.is_move());
        assert!(!DpOp::And.is_move());
    }
}
