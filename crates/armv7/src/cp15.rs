//! CP15 system-control coprocessor state.
//!
//! Komodo relies on a handful of control registers: the world-banked MMU
//! configuration ("Some system control registers are banked, with one copy
//! for each world. These include the MMU configuration and page-table base
//! registers, so a world switch may enter a different address space", §3.3),
//! the Secure Configuration Register, and the fault-status registers used to
//! classify aborts.

use crate::mode::World;
use crate::word::Addr;

/// Translation Table Base Control Register.
///
/// Komodo programs `TTBCR.N = 2` in secure world so that `TTBR0` translates
/// only the low 1 GB (the enclave address-space limit, Figure 4) and `TTBR1`
/// maps the monitor's static high region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ttbcr {
    /// The `N` field: `TTBR0` covers virtual addresses below `2^(32-N)`.
    pub n: u8,
}

impl Ttbcr {
    /// First virtual address *not* translated by `TTBR0`.
    pub fn ttbr0_limit(self) -> u64 {
        1u64 << (32 - self.n as u32)
    }
}

/// Per-world copy of the MMU-related registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MmuRegs {
    /// Translation table base 0: the (enclave) process page table.
    pub ttbr0: Addr,
    /// Translation table base 1: the static high-region table.
    pub ttbr1: Addr,
    /// Translation table base control.
    pub ttbcr: Ttbcr,
    /// MMU enable (`SCTLR.M`).
    pub mmu_enabled: bool,
}

impl Default for MmuRegs {
    fn default() -> Self {
        MmuRegs {
            ttbr0: 0,
            ttbr1: 0,
            ttbcr: Ttbcr { n: 0 },
            mmu_enabled: false,
        }
    }
}

/// Data Fault Status: why the most recent data abort occurred.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FaultStatus {
    /// No fault recorded.
    #[default]
    None,
    /// Translation fault (no valid descriptor).
    Translation,
    /// Permission fault.
    Permission,
    /// External abort (e.g. TrustZone address-space controller rejection).
    External,
    /// Alignment fault.
    Alignment,
}

/// The CP15 state modelled by the simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cp15 {
    /// Secure Configuration Register `NS` bit: when set, the core (outside
    /// monitor mode) is in the normal world.
    pub scr_ns: bool,
    /// Secure-world MMU registers.
    pub mmu_secure: MmuRegs,
    /// Normal-world MMU registers.
    pub mmu_normal: MmuRegs,
    /// Data Fault Status Register (secure copy; the monitor reads this to
    /// classify enclave aborts).
    pub dfsr: FaultStatus,
    /// Data Fault Address Register.
    pub dfar: Addr,
    /// Instruction Fault Status Register.
    pub ifsr: FaultStatus,
}

impl Default for Cp15 {
    fn default() -> Self {
        Cp15 {
            // Reset state: secure world.
            scr_ns: false,
            mmu_secure: MmuRegs::default(),
            mmu_normal: MmuRegs::default(),
            dfsr: FaultStatus::None,
            dfar: 0,
            ifsr: FaultStatus::None,
        }
    }
}

impl Cp15 {
    /// The MMU register bank for `world`.
    #[inline]
    pub fn mmu(&self, world: World) -> &MmuRegs {
        match world {
            World::Secure => &self.mmu_secure,
            World::Normal => &self.mmu_normal,
        }
    }

    /// Mutable MMU register bank for `world`.
    pub fn mmu_mut(&mut self, world: World) -> &mut MmuRegs {
        match world {
            World::Secure => &mut self.mmu_secure,
            World::Normal => &mut self.mmu_normal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ttbcr_limits() {
        assert_eq!(Ttbcr { n: 0 }.ttbr0_limit(), 1u64 << 32);
        assert_eq!(Ttbcr { n: 2 }.ttbr0_limit(), 0x4000_0000);
    }

    #[test]
    fn mmu_banked_per_world() {
        let mut cp = Cp15::default();
        cp.mmu_mut(World::Secure).ttbr0 = 0x1000;
        cp.mmu_mut(World::Normal).ttbr0 = 0x2000;
        assert_eq!(cp.mmu(World::Secure).ttbr0, 0x1000);
        assert_eq!(cp.mmu(World::Normal).ttbr0, 0x2000);
    }

    #[test]
    fn reset_is_secure() {
        assert!(!Cp15::default().scr_ns);
    }
}
