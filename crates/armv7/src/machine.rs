//! The machine: registers, memory, MMU, TLB, cycle counter.
//!
//! "We model execution as a series of machine states, where a state includes
//! everything visible about a machine (e.g. registers and memory)" (§5.1).

use crate::cp15::Cp15;
use crate::dcache::{FetchAccel, SbStats};
use crate::dtlb::{DTlbInval, DTlbStats, DataTlb};
use crate::exn::ExceptionKind;
use crate::mem::{AccessAttrs, PhysMem};
use crate::mode::{Mode, World};
use crate::psr::Psr;
use crate::regs::{Reg, RegFile};
use crate::tlb::Tlb;
use crate::word::{Addr, Word};
use komodo_trace::{Event, FlightRecorder, InvalCause, MetricsSnapshot};

/// Trace attribution of a host-cache drop (the flight recorder's
/// leaf-crate cause taxonomy mirrors [`DTlbInval`] plus the superblock
/// engine's code-generation cause).
fn trace_cause(cause: DTlbInval) -> InvalCause {
    match cause {
        DTlbInval::Flush => InvalCause::Flush,
        DTlbInval::Ttbr => InvalCause::Ttbr,
        DTlbInval::World => InvalCause::World,
    }
}

/// Cycle costs of machine-level events, loosely calibrated to a Cortex-A7
/// class in-order core (the Raspberry Pi 2 of the paper's evaluation).
pub mod cost {
    /// Base cost of any instruction.
    pub const INSN: u64 = 1;
    /// Additional cost of a data memory access.
    pub const MEM: u64 = 2;
    /// Additional cost of a multiply.
    pub const MUL: u64 = 2;
    /// Additional cost of a taken branch (pipeline refill).
    pub const BRANCH_TAKEN: u64 = 2;
    /// Hardware page-table walk on a TLB miss.
    pub const TLB_WALK: u64 = 12;
    /// Exception entry (vector fetch, mode switch, pipeline flush).
    pub const EXN_ENTRY: u64 = 14;
    /// Exception return (`MOVS PC, LR`).
    pub const EXN_RETURN: u64 = 5;
    /// Full TLB flush.
    pub const TLB_FLUSH: u64 = 32;
}

/// A violation of the machine model's usage contract by privileged code —
/// the executable analogue of an unprovable verification condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelViolation {
    /// User execution was started with an inconsistent TLB; the paper's
    /// specification forces the implementation to prove consistency before
    /// entering user mode (§5.2).
    TlbInconsistent,
    /// User execution was started while not in user mode.
    NotUserMode,
    /// Exception return attempted from a mode with no `SPSR`.
    NoSpsr,
}

impl core::fmt::Display for ModelViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for ModelViolation {}

/// The complete machine state.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Banked register file.
    pub regs: RegFile,
    /// Current program status register.
    pub cpsr: Psr,
    /// Program counter (meaningful during user execution; privileged code
    /// runs at exception boundaries and does not use it).
    pub pc: Word,
    /// CP15 system-control state.
    pub cp15: Cp15,
    /// Physical memory.
    pub mem: PhysMem,
    /// TLB state.
    pub tlb: Tlb,
    /// Cycle counter.
    pub cycles: u64,
    /// Absolute cycle at which the next IRQ becomes pending, if any.
    /// The attacker "may inject external interrupts" (§3.1), so tests and
    /// the OS model set this to exercise interrupt paths deterministically.
    pub irq_at: Option<u64>,
    /// Absolute cycle at which the next FIQ becomes pending, if any.
    pub fiq_at: Option<u64>,
    /// Measurement probe: the cycle count at which the next user-mode
    /// instruction begins executing (set once by `run_user` while `None`;
    /// benches reset it to time the world-switch paths, à la Table 3's
    /// "Enter only" row).
    pub first_user_insn_cycle: Option<u64>,
    /// Host-side fetch/decode accelerator. **Not architectural state**:
    /// excluded from machine equality, bit-for-bit neutral on the cycle
    /// model and all simulated counters (see [`crate::dcache`]).
    pub accel: FetchAccel,
    /// Host-side software data-TLB fronting the architectural TLB map for
    /// user translations. **Not architectural state** — same contract as
    /// [`Machine::accel`] (see [`crate::dtlb`]). A separate field (not
    /// inside the accelerator) so the superblock runner can probe it
    /// mutably while a dispatched block is still borrowed.
    pub dtlb: DataTlb,
    /// Cycle-stamped flight recorder capturing boundary events (exception
    /// entry/exit, world switches, TLB/host-cache invalidations,
    /// superblock builds; the monitor adds SMC and enclave-lifecycle
    /// events). **Not architectural state** — excluded from machine
    /// equality like [`Machine::accel`] and [`Machine::dtlb`], disabled
    /// (capacity 0) by default, and recording never charges cycles or
    /// touches any counted state, so traced-on and traced-off runs end
    /// bit-for-bit identical (proven by the bench differential test).
    pub trace: FlightRecorder,
}

/// Architectural equality: registers, PSR, PC, CP15, memory (contents and
/// access counters), TLB (entries and statistics), cycle counter and
/// interrupt schedule. The fetch accelerator, data-TLB and flight
/// recorder are deliberately excluded — they must never influence any of
/// these fields, and the differential property tests rely on this
/// equality to prove it.
impl PartialEq for Machine {
    fn eq(&self, other: &Self) -> bool {
        self.regs == other.regs
            && self.cpsr == other.cpsr
            && self.pc == other.pc
            && self.cp15 == other.cp15
            && self.mem == other.mem
            && self.tlb == other.tlb
            && self.cycles == other.cycles
            && self.irq_at == other.irq_at
            && self.fiq_at == other.fiq_at
            && self.first_user_insn_cycle == other.first_user_insn_cycle
    }
}

impl Machine {
    /// A machine at reset: secure supervisor mode, empty memory map.
    pub fn new() -> Machine {
        Machine {
            regs: RegFile::new(),
            cpsr: Psr::privileged(Mode::Supervisor),
            pc: 0,
            cp15: Cp15::default(),
            mem: PhysMem::new(),
            tlb: Tlb::new(),
            cycles: 0,
            irq_at: None,
            fiq_at: None,
            first_user_insn_cycle: None,
            accel: FetchAccel::new(),
            dtlb: DataTlb::new(),
            trace: FlightRecorder::disabled(),
        }
    }

    /// Returns the machine to its reset state while reusing the physical
    /// memory allocations — the machine half of the fast re-boot path
    /// used by platform pooling.
    ///
    /// After `reboot`, every field that participates in machine equality
    /// (registers, PSR, PC, CP15, memory contents and counters, TLB,
    /// cycles, interrupt schedule) matches a fresh [`Machine::new`] whose
    /// memory regions were rebuilt with the same `add_region` calls; the
    /// host-side caches (fetch accelerator, data-TLB) and the flight
    /// recorder also return to their construction defaults. Only the
    /// region storage is reused, which is what makes re-boot cheaper than
    /// reconstruction for large RAM banks.
    pub fn reboot(&mut self) {
        self.regs = RegFile::new();
        self.cpsr = Psr::privileged(Mode::Supervisor);
        self.pc = 0;
        self.cp15 = Cp15::default();
        self.mem.reset_contents();
        self.tlb = Tlb::new();
        self.cycles = 0;
        self.irq_at = None;
        self.fiq_at = None;
        self.first_user_insn_cycle = None;
        self.accel = FetchAccel::new();
        self.dtlb = DataTlb::new();
        self.trace = FlightRecorder::disabled();
    }

    /// Re-arms the flight recorder to keep the most recent `capacity`
    /// events (0 disables recording), clearing any existing capture.
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.trace.set_capacity(capacity);
    }

    /// A unified snapshot of every counter surface — architectural
    /// (cycles, memory, TLB), host-side (superblocks, data-TLB), and the
    /// flight recorder's own capture totals — under the single
    /// [`MetricsSnapshot`] schema the bench JSON emitter reads through.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let sb = self.accel.sb_stats();
        let d = self.dtlb.stats();
        MetricsSnapshot {
            cycles: self.cycles,
            mem_reads: self.mem.reads,
            mem_writes: self.mem.writes,
            tlb_hits: self.tlb.hits,
            tlb_misses: self.tlb.misses,
            tlb_flushes: self.tlb.flushes,
            sb_built: sb.built,
            sb_hits: sb.hits,
            sb_chained: sb.chained,
            sb_inval_code_gen: sb.inval_code_gen,
            sb_inval_tlb: sb.inval_tlb,
            dtlb_hits: d.hits,
            dtlb_misses: d.misses,
            dtlb_inval_flush: d.inval_flush,
            dtlb_inval_ttbr: d.inval_ttbr,
            dtlb_inval_world: d.inval_world,
            uop_promoted: sb.uop_promoted,
            uop_hits: sb.uop_hits,
            uop_invalidations: sb.uop_invalidations,
            trace_capacity: self.trace.capacity() as u64,
            trace_recorded: self.trace.total_recorded(),
            trace_dropped: self.trace.dropped(),
        }
    }

    /// Enables or disables the host-side fetch accelerator. Disabling (or
    /// re-enabling) drops all cached state; simulated behaviour is
    /// identical either way, only host speed changes.
    pub fn set_fetch_accel(&mut self, on: bool) {
        self.accel.set_enabled(on);
        self.dtlb.set_enabled(on);
        self.invalidate_fetch_accel(DTlbInval::Flush);
    }

    /// Drops the accelerator's cached decodes and translation entry, the
    /// data-TLB (attributing the drop to `cause`), and the memory-side
    /// write watch that backs them. Recorded events mirror the statistics
    /// convention: a drop is an event only when something was cached.
    fn invalidate_fetch_accel(&mut self, cause: DTlbInval) {
        if self.trace.enabled() {
            let tc = trace_cause(cause);
            if self.accel.sb_has_cached() {
                self.trace.record(self.cycles, Event::SbInval { cause: tc });
            }
            if self.accel.sb_has_uops() {
                self.trace
                    .record(self.cycles, Event::UopInval { cause: tc });
            }
            if self.dtlb.live_entries() > 0 {
                self.trace
                    .record(self.cycles, Event::DTlbInval { cause: tc });
            }
        }
        self.accel.invalidate();
        self.dtlb.invalidate(cause);
        self.mem.clear_code_watch();
    }

    /// Enables or disables the superblock engine layered on the fetch
    /// accelerator (see the *Superblocks* section of [`crate::dcache`]).
    /// Either toggle drops all cached blocks; simulated behaviour is
    /// bit-for-bit identical on or off — only host speed changes. Off
    /// with the accelerator on isolates the PR-1 layers, which is how the
    /// benchmarks attribute speedups.
    pub fn set_superblocks(&mut self, on: bool) {
        self.accel.set_superblocks(on);
    }

    /// Enables or disables the micro-op specialisation tier layered on
    /// the superblock engine (see the module docs of [`crate::uop`]).
    /// Either toggle drops all cached blocks; simulated behaviour is
    /// bit-for-bit identical on or off — only host speed changes. Off
    /// with superblocks on isolates the superblock engine's own
    /// contribution, which is how the benchmarks attribute speedups.
    pub fn set_uop_traces(&mut self, on: bool) {
        self.accel.set_uops(on);
    }

    /// Sets the dispatch-hit count at which a hot superblock is promoted
    /// to a specialised micro-op trace (clamped to at least 1; the
    /// differential tests lower it to force promotion quickly).
    pub fn set_uop_threshold(&mut self, hits: u64) {
        self.accel.set_uop_threshold(hits);
    }

    /// Host-side superblock-engine statistics (blocks built, dispatch
    /// hits, chained dispatches, invalidations split by cause), with the
    /// data-TLB's hit/miss/invalidation counters merged in.
    pub fn superblock_stats(&self) -> SbStats {
        let mut s = self.accel.sb_stats();
        let d = self.dtlb.stats();
        s.dtlb_hits = d.hits;
        s.dtlb_misses = d.misses;
        s.dtlb_invalidations = d.invalidations();
        s
    }

    /// Host-side data-TLB statistics with per-cause invalidation counts
    /// (the aggregate view is part of [`Machine::superblock_stats`]).
    pub fn dtlb_stats(&self) -> DTlbStats {
        self.dtlb.stats()
    }

    /// Writes `SCR.NS`, dropping the data-TLB when the effective
    /// TrustZone world changes. The monitor's world-switch paths (SMC
    /// entry/exit, boot hand-off) route through here so data-TLB entries
    /// never outlive the world they were formed in.
    pub fn set_scr_ns(&mut self, ns: bool) {
        if self.cp15.scr_ns != ns {
            if self.trace.enabled() && self.dtlb.live_entries() > 0 {
                self.trace.record(
                    self.cycles,
                    Event::DTlbInval {
                        cause: InvalCause::World,
                    },
                );
            }
            self.dtlb.invalidate(DTlbInval::World);
            self.trace.record(self.cycles, Event::WorldSwitch { ns });
        }
        self.cp15.scr_ns = ns;
    }

    /// The current TrustZone world: monitor mode is always secure;
    /// otherwise `SCR.NS` selects (§3.3).
    #[inline]
    pub fn world(&self) -> World {
        if self.cpsr.mode == Mode::Monitor || !self.cp15.scr_ns {
            World::Secure
        } else {
            World::Normal
        }
    }

    /// Reads a register as seen from the current mode.
    #[inline]
    pub fn reg(&self, r: Reg) -> Word {
        self.regs.get(self.cpsr.mode, r)
    }

    /// Writes a register as seen from the current mode.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: Word) {
        self.regs.set(self.cpsr.mode, r, v);
    }

    /// Charges `n` cycles.
    #[inline]
    pub fn charge(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Arms an IRQ `delta` cycles from now (the injection seam chaos
    /// schedules use: deadlines relative to the current cycle are
    /// reproducible across runs, absolute ones are not). Returns the
    /// absolute deadline armed.
    pub fn schedule_irq_in(&mut self, delta: u64) -> u64 {
        let at = self.cycles.saturating_add(delta);
        self.irq_at = Some(at);
        at
    }

    /// Arms an FIQ `delta` cycles from now; see
    /// [`Machine::schedule_irq_in`]. Returns the absolute deadline armed.
    pub fn schedule_fiq_in(&mut self, delta: u64) -> u64 {
        let at = self.cycles.saturating_add(delta);
        self.fiq_at = Some(at);
        at
    }

    /// Disarms any scheduled IRQ/FIQ.
    pub fn clear_pending_interrupts(&mut self) {
        self.irq_at = None;
        self.fiq_at = None;
    }

    /// Whether an IRQ is pending at the current cycle.
    #[inline]
    pub fn irq_pending(&self) -> bool {
        self.irq_at.is_some_and(|at| self.cycles >= at)
    }

    /// Whether an FIQ is pending at the current cycle.
    #[inline]
    pub fn fiq_pending(&self) -> bool {
        self.fiq_at.is_some_and(|at| self.cycles >= at)
    }

    /// Takes an exception: banks the PSR and return address, switches mode,
    /// masks interrupts, and charges the entry cost.
    ///
    /// `return_addr` is the address execution should resume at — the model
    /// follows the paper in using the banked `LR` to "refer implicitly to
    /// the PC at the time of an exception" (§5.1).
    pub fn take_exception(&mut self, kind: ExceptionKind, return_addr: Word) {
        let target = kind.target_mode();
        let old = self.cpsr;
        self.regs.set_spsr(target, old);
        self.regs
            .set_lr_banked(crate::regs::Bank::of(target), return_addr);
        self.cpsr = Psr::privileged(target);
        self.charge(cost::EXN_ENTRY);
        self.trace.record(
            self.cycles,
            Event::ExnEntry {
                vector: kind.trace_vector(),
                from_mode: old.mode.bits() as u8,
                to_mode: target.bits() as u8,
            },
        );
    }

    /// Exception return (`MOVS PC, LR`): restores `CPSR` from the current
    /// mode's `SPSR` and resumes at the banked `LR`.
    ///
    /// Returns the restored mode's PSR; fails if the current mode has no
    /// `SPSR` (a model violation, not a runtime condition).
    pub fn exception_return(&mut self) -> Result<(), ModelViolation> {
        let spsr = self
            .regs
            .spsr(self.cpsr.mode)
            .ok_or(ModelViolation::NoSpsr)?;
        let lr = self.reg(Reg::Lr);
        self.cpsr = spsr;
        self.pc = lr;
        self.charge(cost::EXN_RETURN);
        self.trace.record(
            self.cycles,
            Event::ExnExit {
                to_mode: spsr.mode.bits() as u8,
            },
        );
        Ok(())
    }

    /// Loads `TTBR0` for the current world and marks the TLB inconsistent,
    /// as the paper's model prescribes for page-table base loads.
    pub fn load_ttbr0(&mut self, pa: Addr) {
        let world = self.world();
        self.cp15.mmu_mut(world).ttbr0 = pa;
        self.tlb.mark_inconsistent();
        self.invalidate_fetch_accel(DTlbInval::Ttbr);
    }

    /// Flushes the entire TLB (the only flush the model supports, §5.1).
    /// Also drops the fetch accelerator's caches, whose validity arguments
    /// are anchored to TLB residency.
    pub fn tlb_flush(&mut self) {
        self.tlb.flush();
        self.charge(cost::TLB_FLUSH);
        self.trace.record(self.cycles, Event::TlbFlush);
        self.invalidate_fetch_accel(DTlbInval::Flush);
    }

    /// Notes a store to page-table memory, marking the TLB inconsistent.
    ///
    /// The monitor calls this when it writes descriptors; enclave code can
    /// never reach page-table pages (a PageDB invariant), so user-mode
    /// stores need no such tracking.
    pub fn note_pagetable_store(&mut self) {
        self.tlb.mark_inconsistent();
        self.invalidate_fetch_accel(DTlbInval::Ttbr);
    }

    /// Monitor-attributed physical read with cycle charging.
    pub fn mon_read(&mut self, pa: Addr) -> Result<Word, crate::error::MemFault> {
        self.charge(cost::MEM);
        self.mem.read(pa, AccessAttrs::MONITOR)
    }

    /// Monitor-attributed physical write with cycle charging.
    pub fn mon_write(&mut self, pa: Addr, v: Word) -> Result<(), crate::error::MemFault> {
        self.charge(cost::MEM);
        self.mem.write(pa, v, AccessAttrs::MONITOR)
    }
}

impl Default for Machine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_state_is_secure_supervisor() {
        let m = Machine::new();
        assert_eq!(m.cpsr.mode, Mode::Supervisor);
        assert_eq!(m.world(), World::Secure);
    }

    #[test]
    fn scr_ns_switches_world_except_monitor() {
        let mut m = Machine::new();
        m.cp15.scr_ns = true;
        assert_eq!(m.world(), World::Normal);
        m.cpsr.mode = Mode::Monitor;
        assert_eq!(m.world(), World::Secure);
    }

    #[test]
    fn exception_entry_banks_state() {
        let mut m = Machine::new();
        m.cpsr = Psr::user();
        m.cpsr.n = true;
        m.take_exception(ExceptionKind::Smc, 0x1234);
        assert_eq!(m.cpsr.mode, Mode::Monitor);
        assert!(m.cpsr.irq_masked && m.cpsr.fiq_masked);
        assert_eq!(m.reg(Reg::Lr), 0x1234);
        let spsr = m.regs.spsr(Mode::Monitor).unwrap();
        assert!(spsr.n);
        assert_eq!(spsr.mode, Mode::User);
    }

    #[test]
    fn exception_return_restores() {
        let mut m = Machine::new();
        m.cpsr = Psr::user();
        m.take_exception(ExceptionKind::Svc, 0x2000);
        m.exception_return().unwrap();
        assert_eq!(m.cpsr.mode, Mode::User);
        assert_eq!(m.pc, 0x2000);
    }

    #[test]
    fn exception_return_without_spsr_fails() {
        let mut m = Machine::new();
        m.cpsr = Psr::user();
        assert_eq!(m.exception_return(), Err(ModelViolation::NoSpsr));
    }

    #[test]
    fn ttbr_load_marks_tlb_inconsistent() {
        let mut m = Machine::new();
        assert!(m.tlb.is_consistent());
        m.load_ttbr0(0x8000_0000);
        assert!(!m.tlb.is_consistent());
        m.tlb_flush();
        assert!(m.tlb.is_consistent());
    }

    #[test]
    fn interrupt_scheduling() {
        let mut m = Machine::new();
        assert!(!m.irq_pending());
        m.irq_at = Some(100);
        assert!(!m.irq_pending());
        m.cycles = 100;
        assert!(m.irq_pending());
    }

    #[test]
    fn cycle_charging() {
        let mut m = Machine::new();
        let c0 = m.cycles;
        m.take_exception(ExceptionKind::Irq, 0);
        assert_eq!(m.cycles, c0 + cost::EXN_ENTRY);
    }

    #[test]
    fn trace_disabled_by_default_and_excluded_from_equality() {
        let mut a = Machine::new();
        let b = Machine::new();
        assert!(!a.trace.enabled());
        a.set_trace_capacity(64);
        a.take_exception(ExceptionKind::Smc, 0);
        assert!(!a.trace.is_empty());
        a.exception_return().unwrap();
        // Replay the same architectural steps untraced.
        let mut c = b.clone();
        c.take_exception(ExceptionKind::Smc, 0);
        c.exception_return().unwrap();
        assert!(c.trace.is_empty());
        assert_eq!(a, c, "tracing must not perturb architectural state");
    }

    #[test]
    fn boundary_events_are_recorded_with_monotonic_cycles() {
        let mut m = Machine::new();
        m.set_trace_capacity(64);
        m.cpsr = Psr::user();
        m.take_exception(ExceptionKind::Svc, 0x2000);
        m.exception_return().unwrap();
        m.take_exception(ExceptionKind::Smc, 0x2004);
        m.set_scr_ns(true);
        m.tlb_flush();
        m.set_scr_ns(false);
        let events: Vec<_> = m.trace.iter().copied().collect();
        // Per-machine cycle monotonicity: the stamp is the machine's own
        // cycle counter, which only moves forward.
        for w in events.windows(2) {
            assert!(w[0].cycle <= w[1].cycle, "{:?} then {:?}", w[0], w[1]);
        }
        let text: Vec<String> = events.iter().map(|s| s.event.to_string()).collect();
        assert!(
            text.iter().any(|t| t == "exn-entry svc usr->svc"),
            "{text:?}"
        );
        assert!(text.iter().any(|t| t == "exn-exit ->usr"), "{text:?}");
        assert!(
            text.iter().any(|t| t == "exn-entry smc usr->mon"),
            "{text:?}"
        );
        assert!(text.iter().any(|t| t == "world-switch ns=1"), "{text:?}");
        assert!(text.iter().any(|t| t == "world-switch ns=0"), "{text:?}");
        assert!(text.iter().any(|t| t == "tlb-flush"), "{text:?}");
    }

    /// The machine must stay `Send` so a platform can migrate between
    /// fleet worker threads: every field is owned plain data (no `Rc`,
    /// no raw pointers, no interior mutability). This is a compile-time
    /// assertion — it fails to build, not at runtime, if a future field
    /// breaks the bound.
    #[test]
    fn machine_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Machine>();
        assert_send::<PhysMem>();
    }

    #[test]
    fn reboot_matches_fresh_boot_bit_for_bit() {
        let build = || {
            let mut m = Machine::new();
            m.mem.add_region(0, 0x4000, false);
            m.mem.add_region(0x8000_0000, 0x2000, true);
            m
        };
        let mut m = build();
        // Dirty every layer: memory, registers, TLB schedule, cycles.
        m.mem
            .write(0x100, 0xdead_beef, AccessAttrs::NORMAL)
            .unwrap();
        m.mem.read(0x100, AccessAttrs::NORMAL).unwrap();
        m.set_reg(Reg::R(3), 77);
        m.cycles = 1234;
        m.irq_at = Some(99);
        m.pc = 0x8000;
        m.set_trace_capacity(16);
        m.reboot();
        let fresh = build();
        assert!(m == fresh, "reboot must reproduce the reset state");
        assert_eq!(m.mem.peek(0x100), Some(0));
        assert!(!m.trace.enabled(), "reboot returns the recorder to default");
        // The rebooted machine is fully usable.
        m.mem.write(0x200, 7, AccessAttrs::NORMAL).unwrap();
        assert_eq!(m.mem.read(0x200, AccessAttrs::NORMAL).unwrap(), 7);
    }

    #[test]
    fn metrics_snapshot_mirrors_counters() {
        let mut m = Machine::new();
        m.set_trace_capacity(8);
        m.tlb_flush();
        m.tlb.hits += 3;
        let s = m.metrics_snapshot();
        assert_eq!(s.cycles, m.cycles);
        assert_eq!(s.tlb_flushes, 1);
        assert_eq!(s.tlb_hits, 3);
        assert_eq!(s.trace_capacity, 8);
        assert_eq!(s.trace_recorded, m.trace.total_recorded());
        assert_eq!(s.mem_reads, m.mem.reads);
    }
}
