//! Micro-op trace specialisation: a JIT-style IR tier above superblocks.
//!
//! A superblock (see [`crate::dcache`]) re-executes every hot trace
//! through the generic per-instruction executor: per instruction it
//! re-matches the condition field, the operand shapes, the `S` bit and
//! the register banking, and re-folds rotated immediates. This module
//! lifts a *hot* superblock — one whose dispatch count crossed the
//! promotion threshold — into a small micro-op IR specialised once at
//! build time:
//!
//! - **Constant folding**: rotated `Op2` immediates, `MOVW`/`MOVT` pair
//!   collapsing, base+`#imm12` address offsets (pre-negated for the
//!   subtract forms), and branch targets (already absolute in
//!   `BlockEnd`) are folded to raw words. PC-relative forms never
//!   reach a trace — decode maps them to [`crate::insn::Insn::Unknown`],
//!   which is never admitted — so the only PC-dependent values in a
//!   trace are the pre-folded branch target and link address.
//! - **Dead-flag elimination**: a flag-setting instruction whose NZCV
//!   write is overwritten before any in-trace consumer (condition
//!   field, `ADC`/`SBC`/`RSC` carry-in, `MRS`) compiles to its
//!   flags-free value form; a compare whose flags die compiles to a
//!   retire-only `Uop::Nop`. Every memory access and the trace exit
//!   are *observation points*: a hazard can stop the trace right before
//!   a load/store (and the exit publishes `CPSR` architecturally), so
//!   liveness is forced to "all flags" across them — the committed
//!   `CPSR` at every possible stop point is exactly the per-instruction
//!   machine's.
//! - **Compare+branch fusion**: a trace ending `<flag-setting ALU>; B<c>`
//!   becomes a single `UopEnd::FusedBranch` conditional exit — NZCV is
//!   computed once, written to `CPSR` (it is architectural at the exit),
//!   and the branch condition is decided from the same values without a
//!   second dispatch.
//! - **Per-site data-TLB inlining**: each load/store site carries a
//!   one-entry translation cache (VA page → PA page + precomputed
//!   access attributes, presence implying the site's read/write verdict
//!   passed). Validity is anchored exactly like the fetch-side caches:
//!   the entry was formed from a data-TLB hit under the trace's
//!   `(world, TTBR0)` key, the architectural TLB never re-maps an
//!   existing VA without a flush/`TTBR0`-load/page-table store, and
//!   each of those events drops the whole block cache (traces die with
//!   their blocks) — so a surviving site entry provably replays what
//!   the exact path would compute, and accounting one TLB hit per
//!   access remains exact.
//!
//! The runner (`Machine::step_superblock` in [`crate::exec`]) executes
//! specialised traces over a flat copy of the fifteen user-visible
//! registers and a local `CPSR`, committing at the end or at the exact
//! retired prefix on any hazard — the same stop discipline, cycle
//! accounting and fallback ladder (uop → superblock → accelerator →
//! baseline) as the superblock path, which the four-way differential
//! suite pins bit-for-bit.

use core::cell::Cell;

use crate::dcache::{Block, BlockEnd};
use crate::insn::{Cond, DpOp, Insn, MemOffset, Op2, Shift};
use crate::mem::AccessAttrs;
use crate::word::{Addr, Word};

/// Flag-liveness bitmask bits.
const FLAG_N: u8 = 1 << 0;
const FLAG_Z: u8 = 1 << 1;
const FLAG_C: u8 = 1 << 2;
const FLAG_V: u8 = 1 << 3;
const FLAG_ALL: u8 = FLAG_N | FLAG_Z | FLAG_C | FLAG_V;

/// Which flags a condition field reads.
fn cond_reads(cond: Cond) -> u8 {
    match cond {
        Cond::Al => 0,
        Cond::Eq | Cond::Ne => FLAG_Z,
        Cond::Cs | Cond::Cc => FLAG_C,
        Cond::Mi | Cond::Pl => FLAG_N,
        Cond::Vs | Cond::Vc => FLAG_V,
        Cond::Hi | Cond::Ls => FLAG_C | FLAG_Z,
        Cond::Ge | Cond::Lt => FLAG_N | FLAG_V,
        Cond::Gt | Cond::Le => FLAG_N | FLAG_Z | FLAG_V,
    }
}

/// Whether a data-processing opcode updates `V` when it sets flags
/// (arithmetic); logical opcodes write `N`/`Z`/`C` only — `V` passes
/// through, so they do not *kill* an earlier `V` write.
fn dp_is_arith(op: DpOp) -> bool {
    matches!(
        op,
        DpOp::Sub
            | DpOp::Rsb
            | DpOp::Add
            | DpOp::Adc
            | DpOp::Sbc
            | DpOp::Rsc
            | DpOp::Cmp
            | DpOp::Cmn
    )
}

/// Flags an instruction overwrites with fresh values (the kill set when
/// it executes unconditionally).
fn flag_writes(insn: &Insn) -> u8 {
    match *insn {
        Insn::Dp { op, s, .. } if s || op.is_compare() => {
            if dp_is_arith(op) {
                FLAG_ALL
            } else {
                FLAG_N | FLAG_Z | FLAG_C
            }
        }
        Insn::Mul { s: true, .. } => FLAG_N | FLAG_Z,
        _ => 0,
    }
}

/// Flags an instruction's data path consumes (condition fields are
/// handled separately by the liveness pass).
fn flag_reads(insn: &Insn) -> u8 {
    match *insn {
        Insn::Dp {
            op: DpOp::Adc | DpOp::Sbc | DpOp::Rsc,
            ..
        } => FLAG_C,
        Insn::Mrs { .. } => FLAG_ALL,
        _ => 0,
    }
}

/// A pre-resolved flexible second operand for the flags-free value path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Src {
    /// Rotated immediate, folded at build time.
    Imm(Word),
    /// Plain register (`LSL #0`).
    Reg(u8),
    /// Register with an immediate shift (the value never depends on the
    /// carry-in, so it stays a pure function of the register file).
    Shifted {
        /// Source register number.
        rm: u8,
        /// Shift kind.
        shift: Shift,
        /// Encoded amount (`LSR`/`ASR` 0 means 32).
        amount: u8,
    },
}

/// A pre-resolved load/store offset; immediate forms are folded to a
/// single wrapping addend (pre-negated for the subtract encodings).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum MemOff {
    /// `base.wrapping_add(k)` — covers `#+imm12` and `#-imm12`.
    Const(Word),
    /// `base + Rm`.
    Reg(u8),
    /// `base - Rm`.
    RegNeg(u8),
}

/// One micro-op. Register fields are pre-resolved user-bank indices
/// (0..=14) into the runner's flat register array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Uop {
    /// `rd = rn + imm` (flags dead or `S` clear).
    AddImm { rd: u8, rn: u8, imm: Word },
    /// `rd = rn - imm`.
    SubImm { rd: u8, rn: u8, imm: Word },
    /// `rd = rn + r[rm]`.
    AddReg { rd: u8, rn: u8, rm: u8 },
    /// `rd = rn ^ r[rm]`.
    EorReg { rd: u8, rn: u8, rm: u8 },
    /// `rd = imm` — folded `MOV #imm`, `MOVW`, or a `MOVW`+`MOVT` pair.
    MovConst { rd: u8, imm: Word },
    /// `MOVT`: `rd = (rd & 0xffff) | hi` with `hi` pre-shifted.
    InsTop { rd: u8, hi: Word },
    /// Generic flags-free data-processing (any opcode, any operand
    /// shape; `ADC`/`SBC`/`RSC` read the live carry).
    Alu { op: DpOp, rd: u8, rn: u8, src: Src },
    /// Exact flag-setting data-processing: live NZCV consumers exist, so
    /// the full shifter-carry + ALU-flags path runs. `wb` is the
    /// pre-resolved "writes rd" bit (false for compares).
    AluFlags {
        op: DpOp,
        wb: bool,
        rd: u8,
        rn: u8,
        op2: Op2,
    },
    /// `rd = rm * rs`, flags dead or `S` clear.
    MulVal { rd: u8, rm: u8, rs: u8 },
    /// `rd = rm * rs` with live `N`/`Z`.
    MulFlags { rd: u8, rm: u8, rs: u8 },
    /// `MRS`: `rd = CPSR`.
    ReadCpsr { rd: u8 },
    /// A compare whose flags are dead: retires, does nothing.
    Nop,
    /// Load through the per-site inlined data-TLB entry.
    Load {
        rd: u8,
        base: u8,
        off: MemOff,
        byte: bool,
        site: u16,
    },
    /// Store through the per-site inlined data-TLB entry.
    Store {
        rd: u8,
        base: u8,
        off: MemOff,
        byte: bool,
        site: u16,
    },
}

/// One body entry: a micro-op with its pre-extracted condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct UopEntry {
    /// Condition field (checked against the local `CPSR`; a failed
    /// condition still retires the instruction).
    pub(crate) cond: Cond,
    /// The operation.
    pub(crate) op: Uop,
}

/// How a specialised trace ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum UopEnd {
    /// Fall through to the instruction after the body.
    Fall,
    /// The block's ending direct branch, target pre-folded.
    Branch {
        cond: Cond,
        target: Addr,
        link: bool,
    },
    /// Fused flag-setting ALU + conditional branch: the ALU is the
    /// block's last body instruction; its NZCV is computed once, written
    /// to `CPSR` (architectural at the exit), and the branch condition
    /// is decided from the same values. Retires two instructions.
    FusedBranch {
        op: DpOp,
        wb: bool,
        rd: u8,
        rn: u8,
        op2: Op2,
        cond: Cond,
        target: Addr,
        link: bool,
    },
}

/// A per-access-site inlined data-TLB entry. Presence implies the
/// translation passed this site's read/write permission verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Site {
    /// VA page the entry translates.
    pub(crate) va_page: Addr,
    /// Corresponding PA page base.
    pub(crate) pa_page: Addr,
    /// Precomputed access attributes for the trace's world.
    pub(crate) attrs: AccessAttrs,
}

/// A specialised micro-op trace, owned by its superblock (and dying
/// with it on every invalidation).
#[derive(Clone, Debug)]
pub(crate) struct UopTrace {
    /// The specialised body; one entry per block body instruction
    /// (minus the one folded into a `UopEnd::FusedBranch`).
    pub(crate) body: Box<[UopEntry]>,
    /// The specialised exit.
    pub(crate) end: UopEnd,
    /// Per-site translation slots, indexed by the `site` field of the
    /// body's memory uops. Interior-mutable so the runner can refill a
    /// slot while the trace is shared-borrowed from the block cache.
    pub(crate) sites: Box<[Cell<Option<Site>>]>,
}

/// Per-instruction flag-materialisation needs: `need[i]` is true when
/// instruction `i`'s flag writes may be observed (by a later condition
/// field, carry-in consumer, `MRS`, memory-op stop point, or the trace
/// exit) and must therefore run the exact flag path.
fn flag_liveness(body: &[(Insn, Cond)]) -> Vec<bool> {
    let mut need = vec![false; body.len()];
    // The exit observes everything: the final CPSR is architectural.
    let mut live = FLAG_ALL;
    for (i, &(insn, cond)) in body.iter().enumerate().rev() {
        if matches!(insn, Insn::Ldr { .. } | Insn::Str { .. }) {
            // A hazard can stop the trace right before this access: the
            // committed CPSR at that point must already be exact.
            live = FLAG_ALL;
            continue;
        }
        let w = flag_writes(&insn);
        if w != 0 {
            // Conditional flag-setters are maybe-writes: materialise
            // them unconditionally and kill nothing.
            need[i] = cond != Cond::Al || (w & live) != 0;
        }
        let kill = if cond == Cond::Al { w } else { 0 };
        live = (live & !kill) | flag_reads(&insn) | cond_reads(cond);
    }
    need
}

/// Folds a rotated `Op2` immediate to its word value.
fn fold_imm(imm8: u8, rot: u8) -> Word {
    (imm8 as u32).rotate_right(2 * rot as u32)
}

/// Pre-resolves an `Op2` for the flags-free value path.
fn lower_src(op2: Op2) -> Src {
    match op2 {
        Op2::Imm { imm8, rot } => Src::Imm(fold_imm(imm8, rot)),
        Op2::Reg {
            rm,
            shift: Shift::Lsl,
            amount: 0,
        } => Src::Reg(rm.index()),
        Op2::Reg { rm, shift, amount } => Src::Shifted {
            rm: rm.index(),
            shift,
            amount,
        },
    }
}

/// Specialises a superblock into a micro-op trace. Pure function of the
/// block: the caller stores the result in the block and is responsible
/// for dropping it under the block cache's invalidation discipline.
pub(crate) fn specialise(b: &Block) -> UopTrace {
    let need = flag_liveness(&b.body);
    let mut body: Vec<UopEntry> = Vec::with_capacity(b.body.len());
    let mut sites = 0u16;
    // Build-time constant tracking for MOVW/MOVT pair folding; an entry
    // is invalidated by any (possibly conditional) write to its register.
    let mut known: [Option<Word>; 15] = [None; 15];
    for (i, &(insn, cond)) in b.body.iter().enumerate() {
        let uop = match insn {
            Insn::Dp {
                op, s, rd, rn, op2, ..
            } => {
                let rd_i = rd.index();
                let rn_i = rn.index();
                if (s || op.is_compare()) && need[i] {
                    Uop::AluFlags {
                        op,
                        wb: !op.is_compare(),
                        rd: rd_i,
                        rn: rn_i,
                        op2,
                    }
                } else if op.is_compare() {
                    // Flags provably dead and no destination: retire-only.
                    Uop::Nop
                } else {
                    match (op, lower_src(op2)) {
                        (DpOp::Mov, Src::Imm(imm)) => Uop::MovConst { rd: rd_i, imm },
                        (DpOp::Add, Src::Imm(imm)) => Uop::AddImm {
                            rd: rd_i,
                            rn: rn_i,
                            imm,
                        },
                        (DpOp::Sub, Src::Imm(imm)) => Uop::SubImm {
                            rd: rd_i,
                            rn: rn_i,
                            imm,
                        },
                        (DpOp::Add, Src::Reg(rm)) => Uop::AddReg {
                            rd: rd_i,
                            rn: rn_i,
                            rm,
                        },
                        (DpOp::Eor, Src::Reg(rm)) => Uop::EorReg {
                            rd: rd_i,
                            rn: rn_i,
                            rm,
                        },
                        (_, src) => Uop::Alu {
                            op,
                            rd: rd_i,
                            rn: rn_i,
                            src,
                        },
                    }
                }
            }
            Insn::Movw { rd, imm16, .. } => Uop::MovConst {
                rd: rd.index(),
                imm: imm16 as Word,
            },
            Insn::Movt { rd, imm16, .. } => {
                let hi = (imm16 as Word) << 16;
                // Fold a MOVW;MOVT pair (the mov_imm32 idiom) into one
                // constant when the low half is statically known and the
                // pair executes unconditionally.
                match known[rd.index() as usize] {
                    Some(lo) if cond == Cond::Al => Uop::MovConst {
                        rd: rd.index(),
                        imm: (lo & 0xffff) | hi,
                    },
                    _ => Uop::InsTop { rd: rd.index(), hi },
                }
            }
            Insn::Mul { s, rd, rm, rs, .. } => {
                if s && need[i] {
                    Uop::MulFlags {
                        rd: rd.index(),
                        rm: rm.index(),
                        rs: rs.index(),
                    }
                } else {
                    Uop::MulVal {
                        rd: rd.index(),
                        rm: rm.index(),
                        rs: rs.index(),
                    }
                }
            }
            Insn::Mrs { rd, .. } => Uop::ReadCpsr { rd: rd.index() },
            Insn::Ldr {
                rd, rn, off, byte, ..
            }
            | Insn::Str {
                rd, rn, off, byte, ..
            } => {
                let off = match off {
                    MemOffset::Imm { imm12, add } => MemOff::Const(if add {
                        imm12 as Word
                    } else {
                        (imm12 as Word).wrapping_neg()
                    }),
                    MemOffset::Reg { rm, add } => {
                        if add {
                            MemOff::Reg(rm.index())
                        } else {
                            MemOff::RegNeg(rm.index())
                        }
                    }
                };
                let site = sites;
                sites += 1;
                if matches!(insn, Insn::Ldr { .. }) {
                    Uop::Load {
                        rd: rd.index(),
                        base: rn.index(),
                        off,
                        byte,
                        site,
                    }
                } else {
                    Uop::Store {
                        rd: rd.index(),
                        base: rn.index(),
                        off,
                        byte,
                        site,
                    }
                }
            }
            // The superblock builder admits nothing else into a body.
            _ => unreachable!("superblock admitted an unspecialisable instruction"),
        };
        // Update the constant-tracking state from the *emitted* uop.
        match uop {
            Uop::MovConst { rd, imm } if cond == Cond::Al => known[rd as usize] = Some(imm),
            _ => {
                if let Some(rd) = uop_dest(&uop) {
                    known[rd as usize] = None;
                }
            }
        }
        body.push(UopEntry { cond, op: uop });
    }
    // Compare+branch fusion: a trace ending `<unconditional flag-setting
    // ALU>; B<c>` collapses into a single conditional-exit uop.
    let mut end = match b.end {
        BlockEnd::Fallthrough => UopEnd::Fall,
        BlockEnd::Branch { cond, target, link } => UopEnd::Branch { cond, target, link },
    };
    if let UopEnd::Branch { cond, target, link } = end {
        if let Some(&UopEntry {
            cond: Cond::Al,
            op:
                Uop::AluFlags {
                    op,
                    wb,
                    rd,
                    rn,
                    op2,
                },
        }) = body.last()
        {
            body.pop();
            end = UopEnd::FusedBranch {
                op,
                wb,
                rd,
                rn,
                op2,
                cond,
                target,
                link,
            };
        }
    }
    UopTrace {
        body: body.into_boxed_slice(),
        end,
        sites: vec![Cell::new(None); sites as usize].into_boxed_slice(),
    }
}

/// The register a uop writes, if any (used only for build-time constant
/// tracking).
fn uop_dest(u: &Uop) -> Option<u8> {
    match *u {
        Uop::AddImm { rd, .. }
        | Uop::SubImm { rd, .. }
        | Uop::AddReg { rd, .. }
        | Uop::EorReg { rd, .. }
        | Uop::MovConst { rd, .. }
        | Uop::InsTop { rd, .. }
        | Uop::Alu { rd, .. }
        | Uop::MulVal { rd, .. }
        | Uop::MulFlags { rd, .. }
        | Uop::ReadCpsr { rd }
        | Uop::Load { rd, .. } => Some(rd),
        Uop::AluFlags { wb, rd, .. } => wb.then_some(rd),
        Uop::Nop | Uop::Store { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::World;
    use crate::regs::Reg;

    fn block(body: Vec<(Insn, Cond)>, end: BlockEnd) -> Block {
        Block {
            entry_va: 0x8000,
            world: World::Secure,
            ttbr0: 0x8000_0000,
            body: body.into_boxed_slice(),
            end,
            max_charge: 64,
            succ: [None, None],
            hot: 0,
            uop: None,
        }
    }

    fn dp(op: DpOp, s: bool, rd: u8, rn: u8, op2: Op2) -> (Insn, Cond) {
        (
            Insn::Dp {
                cond: Cond::Al,
                op,
                s,
                rd: Reg::R(rd),
                rn: Reg::R(rn),
                op2,
            },
            Cond::Al,
        )
    }

    #[test]
    fn dead_flags_compile_to_value_forms() {
        // adds r0,r0,#1 ; cmp r1,#0 — the adds flags are killed by the
        // unconditional cmp with no observer between; the cmp feeds the
        // exit (all-live), so it stays on the exact path.
        let b = block(
            vec![
                dp(DpOp::Add, true, 0, 0, Op2::imm(1)),
                dp(DpOp::Cmp, true, 0, 1, Op2::imm(0)),
            ],
            BlockEnd::Fallthrough,
        );
        let t = specialise(&b);
        assert_eq!(
            t.body[0].op,
            Uop::AddImm {
                rd: 0,
                rn: 0,
                imm: 1
            }
        );
        assert!(matches!(t.body[1].op, Uop::AluFlags { op: DpOp::Cmp, .. }));
    }

    #[test]
    fn dead_compare_becomes_nop_and_memory_is_a_barrier() {
        // cmp r0,#1 ; mov r2,#0 ; ldr r3,[r4] ; adds r5,r5,#1 ; cmp r6,#2
        // First cmp: killed by the second? No — the load between them is
        // an observation point, so the first cmp must materialise.
        let b = block(
            vec![
                dp(DpOp::Cmp, true, 0, 0, Op2::imm(1)),
                (
                    Insn::Ldr {
                        cond: Cond::Al,
                        rd: Reg::R(3),
                        rn: Reg::R(4),
                        off: MemOffset::Imm {
                            imm12: 0,
                            add: true,
                        },
                        byte: false,
                    },
                    Cond::Al,
                ),
                dp(DpOp::Add, true, 5, 5, Op2::imm(1)),
                dp(DpOp::Cmp, true, 0, 6, Op2::imm(2)),
            ],
            BlockEnd::Fallthrough,
        );
        let t = specialise(&b);
        assert!(
            matches!(t.body[0].op, Uop::AluFlags { op: DpOp::Cmp, .. }),
            "flags live across the load stop point: {:?}",
            t.body[0].op
        );
        assert_eq!(
            t.body[2].op,
            Uop::AddImm {
                rd: 5,
                rn: 5,
                imm: 1
            },
            "adds killed by the trailing cmp"
        );
        assert_eq!(t.sites.len(), 1);
    }

    #[test]
    fn dead_compare_is_a_nop() {
        // cmp r0,#1 ; cmp r1,#2 — the first compare's flags are fully
        // overwritten by the second before anything observes them.
        let b = block(
            vec![
                dp(DpOp::Cmp, true, 0, 0, Op2::imm(1)),
                dp(DpOp::Cmp, true, 0, 1, Op2::imm(2)),
            ],
            BlockEnd::Fallthrough,
        );
        let t = specialise(&b);
        assert_eq!(t.body[0].op, Uop::Nop);
        assert!(matches!(t.body[1].op, Uop::AluFlags { .. }));
    }

    #[test]
    fn logical_s_op_does_not_kill_v() {
        // adds r0,r0,#1 (writes V) ; tst r1,#1 (writes NZC, V passes
        // through) ; exit observes V — the adds must stay exact.
        let b = block(
            vec![
                dp(DpOp::Add, true, 0, 0, Op2::imm(1)),
                dp(DpOp::Tst, true, 0, 1, Op2::imm(1)),
            ],
            BlockEnd::Fallthrough,
        );
        let t = specialise(&b);
        assert!(matches!(t.body[0].op, Uop::AluFlags { op: DpOp::Add, .. }));
    }

    #[test]
    fn conditional_flag_setter_stays_exact_and_kills_nothing() {
        // adds r0,r0,#1 ; addseq r1,r1,#1 — the conditional flag-setter
        // may not execute, so it can't kill the first adds' flags, and it
        // must itself materialise.
        let mut b = block(
            vec![
                dp(DpOp::Add, true, 0, 0, Op2::imm(1)),
                dp(DpOp::Add, true, 1, 1, Op2::imm(1)),
            ],
            BlockEnd::Fallthrough,
        );
        // Make the second adds conditional.
        let mut v: Vec<(Insn, Cond)> = b.body.to_vec();
        if let Insn::Dp { ref mut cond, .. } = v[1].0 {
            *cond = Cond::Eq;
        }
        v[1].1 = Cond::Eq;
        b.body = v.into_boxed_slice();
        let t = specialise(&b);
        assert!(matches!(t.body[0].op, Uop::AluFlags { .. }));
        assert!(matches!(t.body[1].op, Uop::AluFlags { .. }));
        assert_eq!(t.body[1].cond, Cond::Eq);
    }

    #[test]
    fn movw_movt_pair_folds_to_one_constant() {
        let b = block(
            vec![
                (
                    Insn::Movw {
                        cond: Cond::Al,
                        rd: Reg::R(8),
                        imm16: 0x9000,
                    },
                    Cond::Al,
                ),
                (
                    Insn::Movt {
                        cond: Cond::Al,
                        rd: Reg::R(8),
                        imm16: 0x1234,
                    },
                    Cond::Al,
                ),
            ],
            BlockEnd::Fallthrough,
        );
        let t = specialise(&b);
        assert_eq!(
            t.body[1].op,
            Uop::MovConst {
                rd: 8,
                imm: 0x1234_9000
            }
        );
    }

    #[test]
    fn compare_branch_fuses_into_the_exit() {
        let b = block(
            vec![
                dp(DpOp::Add, false, 0, 0, Op2::imm(1)),
                dp(DpOp::Sub, true, 7, 7, Op2::imm(1)),
            ],
            BlockEnd::Branch {
                cond: Cond::Ne,
                target: 0x8000,
                link: false,
            },
        );
        let t = specialise(&b);
        assert_eq!(t.body.len(), 1, "subs folded into the exit");
        assert!(matches!(
            t.end,
            UopEnd::FusedBranch {
                op: DpOp::Sub,
                wb: true,
                cond: Cond::Ne,
                target: 0x8000,
                ..
            }
        ));
    }

    #[test]
    fn negative_offsets_fold_to_wrapping_addends() {
        let b = block(
            vec![
                dp(DpOp::Add, false, 0, 0, Op2::imm(1)),
                (
                    Insn::Ldr {
                        cond: Cond::Al,
                        rd: Reg::R(1),
                        rn: Reg::R(2),
                        off: MemOffset::Imm {
                            imm12: 8,
                            add: false,
                        },
                        byte: false,
                    },
                    Cond::Al,
                ),
            ],
            BlockEnd::Fallthrough,
        );
        let t = specialise(&b);
        assert!(matches!(
            t.body[1].op,
            Uop::Load {
                off: MemOff::Const(k),
                ..
            } if k == 8u32.wrapping_neg()
        ));
    }
}
