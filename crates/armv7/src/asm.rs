//! A small label-based assembler for guest programs.
//!
//! Komodo enclaves are ordinary user-mode programs whose code pages are
//! measured by hashing; this assembler produces real A32 words for the
//! modelled subset so that guest programs (the notary of §8.2, the test
//! guests, the attack guests) can be written in Rust and loaded into
//! simulated memory.

use crate::encode::encode;
use crate::insn::{Cond, DpOp, Insn, LsmMode, MemOffset, Op2, Shift};
use crate::regs::Reg;
use crate::word::{Addr, Word};

/// A code location, usable as a branch target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Label(Addr);

impl Label {
    /// The address this label refers to.
    pub fn addr(self) -> Addr {
        self.0
    }
}

/// A forward-branch placeholder awaiting [`Assembler::fix_branch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fixup(usize);

/// The assembler: emits instructions at increasing addresses from a base.
#[derive(Clone, Debug)]
pub struct Assembler {
    base: Addr,
    insns: Vec<Insn>,
}

impl Assembler {
    /// Starts assembling at virtual address `base` (word-aligned).
    pub fn new(base: Addr) -> Assembler {
        assert_eq!(base % 4, 0, "code must be word-aligned");
        Assembler {
            base,
            insns: Vec::new(),
        }
    }

    /// The address of the next instruction to be emitted.
    pub fn here(&self) -> Label {
        Label(self.base + (self.insns.len() as u32) * 4)
    }

    /// Alias of [`Assembler::here`], reading naturally at loop heads.
    pub fn label(&self) -> Label {
        self.here()
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, insn: Insn) {
        self.insns.push(insn);
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Encodes everything to memory words.
    pub fn words(&self) -> Vec<Word> {
        self.insns.iter().map(|i| encode(*i)).collect()
    }

    fn branch_offset(&self, from_index: usize, target: Label) -> i32 {
        let pc = self.base as i64 + from_index as i64 * 4;
        ((target.0 as i64 - (pc + 8)) / 4) as i32
    }

    // --- Data processing -------------------------------------------------

    /// Generic data-processing emit.
    pub fn dp(&mut self, op: DpOp, s: bool, rd: Reg, rn: Reg, op2: Op2) {
        self.emit(Insn::Dp {
            cond: Cond::Al,
            op,
            s,
            rd,
            rn,
            op2,
        });
    }

    /// `MOV rd, #imm` for an encodable immediate.
    ///
    /// # Panics
    ///
    /// Panics if `imm` is not expressible as a rotated 8-bit immediate;
    /// use [`Assembler::mov_imm32`] for arbitrary values.
    pub fn mov_imm(&mut self, rd: Reg, imm: u32) {
        let op2 = Op2::encode_imm32(imm).expect("immediate not encodable; use mov_imm32");
        self.dp(DpOp::Mov, false, rd, Reg::R(0), op2);
    }

    /// Loads an arbitrary 32-bit constant with `MOVW`(+`MOVT`).
    pub fn mov_imm32(&mut self, rd: Reg, imm: u32) {
        self.emit(Insn::Movw {
            cond: Cond::Al,
            rd,
            imm16: imm as u16,
        });
        if imm >> 16 != 0 {
            self.emit(Insn::Movt {
                cond: Cond::Al,
                rd,
                imm16: (imm >> 16) as u16,
            });
        }
    }

    /// `MOV rd, rm`.
    pub fn mov_reg(&mut self, rd: Reg, rm: Reg) {
        self.dp(DpOp::Mov, false, rd, Reg::R(0), Op2::reg(rm));
    }

    /// `ADD rd, rn, #imm` (encodable immediate).
    pub fn add_imm(&mut self, rd: Reg, rn: Reg, imm: u32) {
        let op2 = Op2::encode_imm32(imm).expect("immediate not encodable");
        self.dp(DpOp::Add, false, rd, rn, op2);
    }

    /// `ADD rd, rn, rm`.
    pub fn add_reg(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.dp(DpOp::Add, false, rd, rn, Op2::reg(rm));
    }

    /// `SUB rd, rn, #imm`.
    pub fn sub_imm(&mut self, rd: Reg, rn: Reg, imm: u32) {
        let op2 = Op2::encode_imm32(imm).expect("immediate not encodable");
        self.dp(DpOp::Sub, false, rd, rn, op2);
    }

    /// `SUBS rd, rn, #imm` (flag-setting, for loop counters).
    pub fn subs_imm(&mut self, rd: Reg, rn: Reg, imm: u32) {
        let op2 = Op2::encode_imm32(imm).expect("immediate not encodable");
        self.dp(DpOp::Sub, true, rd, rn, op2);
    }

    /// `SUB rd, rn, rm`.
    pub fn sub_reg(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.dp(DpOp::Sub, false, rd, rn, Op2::reg(rm));
    }

    /// `CMP rn, #imm`.
    pub fn cmp_imm(&mut self, rn: Reg, imm: u32) {
        let op2 = Op2::encode_imm32(imm).expect("immediate not encodable");
        self.dp(DpOp::Cmp, true, Reg::R(0), rn, op2);
    }

    /// `CMP rn, rm`.
    pub fn cmp_reg(&mut self, rn: Reg, rm: Reg) {
        self.dp(DpOp::Cmp, true, Reg::R(0), rn, Op2::reg(rm));
    }

    /// `AND rd, rn, rm`.
    pub fn and_reg(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.dp(DpOp::And, false, rd, rn, Op2::reg(rm));
    }

    /// `AND rd, rn, #imm`.
    pub fn and_imm(&mut self, rd: Reg, rn: Reg, imm: u32) {
        let op2 = Op2::encode_imm32(imm).expect("immediate not encodable");
        self.dp(DpOp::And, false, rd, rn, op2);
    }

    /// `ORR rd, rn, rm`.
    pub fn orr_reg(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.dp(DpOp::Orr, false, rd, rn, Op2::reg(rm));
    }

    /// `EOR rd, rn, rm`.
    pub fn eor_reg(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.dp(DpOp::Eor, false, rd, rn, Op2::reg(rm));
    }

    /// `EOR rd, rn, rm, ROR #amount` — the SHA-256 sigma workhorse.
    pub fn eor_ror(&mut self, rd: Reg, rn: Reg, rm: Reg, amount: u8) {
        self.dp(
            DpOp::Eor,
            false,
            rd,
            rn,
            Op2::Reg {
                rm,
                shift: Shift::Ror,
                amount,
            },
        );
    }

    /// `BIC rd, rn, rm` (`rd = rn & !rm`).
    pub fn bic_reg(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.dp(DpOp::Bic, false, rd, rn, Op2::reg(rm));
    }

    /// `MVN rd, rm`.
    pub fn mvn_reg(&mut self, rd: Reg, rm: Reg) {
        self.dp(DpOp::Mvn, false, rd, Reg::R(0), Op2::reg(rm));
    }

    /// `MOV rd, rm, LSR #amount`.
    pub fn lsr_imm(&mut self, rd: Reg, rm: Reg, amount: u8) {
        self.dp(
            DpOp::Mov,
            false,
            rd,
            Reg::R(0),
            Op2::Reg {
                rm,
                shift: Shift::Lsr,
                amount,
            },
        );
    }

    /// `MOV rd, rm, LSL #amount`.
    pub fn lsl_imm(&mut self, rd: Reg, rm: Reg, amount: u8) {
        self.dp(
            DpOp::Mov,
            false,
            rd,
            Reg::R(0),
            Op2::Reg {
                rm,
                shift: Shift::Lsl,
                amount,
            },
        );
    }

    /// `MOV rd, rm, ROR #amount`.
    pub fn ror_imm(&mut self, rd: Reg, rm: Reg, amount: u8) {
        self.dp(
            DpOp::Mov,
            false,
            rd,
            Reg::R(0),
            Op2::Reg {
                rm,
                shift: Shift::Ror,
                amount,
            },
        );
    }

    /// `ADD rd, rn, rm, LSL #amount` (scaled index).
    pub fn add_lsl(&mut self, rd: Reg, rn: Reg, rm: Reg, amount: u8) {
        self.dp(
            DpOp::Add,
            false,
            rd,
            rn,
            Op2::Reg {
                rm,
                shift: Shift::Lsl,
                amount,
            },
        );
    }

    /// `MUL rd, rm, rs`.
    pub fn mul(&mut self, rd: Reg, rm: Reg, rs: Reg) {
        self.emit(Insn::Mul {
            cond: Cond::Al,
            s: false,
            rd,
            rm,
            rs,
        });
    }

    // --- Memory -----------------------------------------------------------

    /// `LDR rd, [rn, #imm]`.
    pub fn ldr_imm(&mut self, rd: Reg, rn: Reg, imm: u16) {
        self.emit(Insn::Ldr {
            cond: Cond::Al,
            rd,
            rn,
            off: MemOffset::Imm {
                imm12: imm,
                add: true,
            },
            byte: false,
        });
    }

    /// `STR rd, [rn, #imm]`.
    pub fn str_imm(&mut self, rd: Reg, rn: Reg, imm: u16) {
        self.emit(Insn::Str {
            cond: Cond::Al,
            rd,
            rn,
            off: MemOffset::Imm {
                imm12: imm,
                add: true,
            },
            byte: false,
        });
    }

    /// `LDR rd, [rn, rm]`.
    pub fn ldr_reg(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.emit(Insn::Ldr {
            cond: Cond::Al,
            rd,
            rn,
            off: MemOffset::Reg { rm, add: true },
            byte: false,
        });
    }

    /// `STR rd, [rn, rm]`.
    pub fn str_reg(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.emit(Insn::Str {
            cond: Cond::Al,
            rd,
            rn,
            off: MemOffset::Reg { rm, add: true },
            byte: false,
        });
    }

    /// `LDRB rd, [rn, #imm]`.
    pub fn ldrb_imm(&mut self, rd: Reg, rn: Reg, imm: u16) {
        self.emit(Insn::Ldr {
            cond: Cond::Al,
            rd,
            rn,
            off: MemOffset::Imm {
                imm12: imm,
                add: true,
            },
            byte: true,
        });
    }

    /// `STRB rd, [rn, #imm]`.
    pub fn strb_imm(&mut self, rd: Reg, rn: Reg, imm: u16) {
        self.emit(Insn::Str {
            cond: Cond::Al,
            rd,
            rn,
            off: MemOffset::Imm {
                imm12: imm,
                add: true,
            },
            byte: true,
        });
    }

    /// `PUSH {regs}` (`STMDB SP!`).
    pub fn push(&mut self, regs: &[Reg]) {
        self.emit(Insn::Stm {
            cond: Cond::Al,
            rn: Reg::Sp,
            writeback: true,
            regs: reg_mask(regs),
            mode: LsmMode::Db,
        });
    }

    /// `POP {regs}` (`LDMIA SP!`).
    pub fn pop(&mut self, regs: &[Reg]) {
        self.emit(Insn::Ldm {
            cond: Cond::Al,
            rn: Reg::Sp,
            writeback: true,
            regs: reg_mask(regs),
            mode: LsmMode::Ia,
        });
    }

    // --- Control flow ------------------------------------------------------

    /// Conditional branch to a known (typically backward) label.
    pub fn b_to(&mut self, cond: Cond, target: Label) {
        let offset = self.branch_offset(self.insns.len(), target);
        self.emit(Insn::B { cond, offset });
    }

    /// Emits a branch placeholder to be resolved with
    /// [`Assembler::fix_branch`].
    pub fn b_fixup(&mut self, cond: Cond) -> Fixup {
        let id = Fixup(self.insns.len());
        self.emit(Insn::B { cond, offset: 0 });
        id
    }

    /// `BL` to a known label.
    pub fn bl_to(&mut self, cond: Cond, target: Label) {
        let offset = self.branch_offset(self.insns.len(), target);
        self.emit(Insn::Bl { cond, offset });
    }

    /// Emits a `BL` placeholder.
    pub fn bl_fixup(&mut self, cond: Cond) -> Fixup {
        let id = Fixup(self.insns.len());
        self.emit(Insn::Bl { cond, offset: 0 });
        id
    }

    /// Resolves a branch placeholder to `target`.
    pub fn fix_branch(&mut self, fixup: Fixup, target: Label) {
        let offset = self.branch_offset(fixup.0, target);
        match &mut self.insns[fixup.0] {
            Insn::B { offset: o, .. } | Insn::Bl { offset: o, .. } => *o = offset,
            other => panic!("fixup does not refer to a branch: {other:?}"),
        }
    }

    /// `BX rm`.
    pub fn bx(&mut self, rm: Reg) {
        self.emit(Insn::Bx { cond: Cond::Al, rm });
    }

    /// `SVC #imm24`.
    pub fn svc(&mut self, imm24: u32) {
        self.emit(Insn::Svc {
            cond: Cond::Al,
            imm24,
        });
    }

    /// `UDF #imm16` (deliberate undefined instruction).
    pub fn udf(&mut self, imm16: u16) {
        self.emit(Insn::Udf { imm16 });
    }

    /// `SMC #imm4` — will fault from user mode (attack guests use this).
    pub fn smc(&mut self, imm4: u8) {
        self.emit(Insn::Smc {
            cond: Cond::Al,
            imm4,
        });
    }
}

fn reg_mask(regs: &[Reg]) -> u16 {
    let mut mask = 0u16;
    for r in regs {
        mask |= 1 << r.index();
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn here_advances_by_words() {
        let mut a = Assembler::new(0x1000);
        assert_eq!(a.here().addr(), 0x1000);
        a.mov_imm(Reg::R(0), 1);
        assert_eq!(a.here().addr(), 0x1004);
        a.mov_imm32(Reg::R(1), 0xdead_beef); // Two instructions.
        assert_eq!(a.here().addr(), 0x100c);
    }

    #[test]
    fn mov_imm32_single_insn_for_low_halves() {
        let mut a = Assembler::new(0);
        a.mov_imm32(Reg::R(0), 0x1234);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn backward_branch_offset() {
        let mut a = Assembler::new(0x1000);
        let top = a.label();
        a.mov_imm(Reg::R(0), 1);
        a.b_to(Cond::Al, top);
        // Branch at 0x1004 to 0x1000: offset = (0x1000 - 0x100c)/4 = -3.
        assert_eq!(
            a.words()[1],
            encode(Insn::B {
                cond: Cond::Al,
                offset: -3
            })
        );
    }

    #[test]
    fn forward_branch_fixup() {
        let mut a = Assembler::new(0);
        let f = a.b_fixup(Cond::Eq);
        a.mov_imm(Reg::R(0), 1);
        let target = a.here();
        a.fix_branch(f, target);
        // Branch at 0 to 8: offset = (8 - 8)/4 = 0.
        assert_eq!(
            a.words()[0],
            encode(Insn::B {
                cond: Cond::Eq,
                offset: 0
            })
        );
    }

    #[test]
    #[should_panic(expected = "not encodable")]
    fn mov_imm_panics_on_wide_value() {
        Assembler::new(0).mov_imm(Reg::R(0), 0x1234_5678);
    }

    #[test]
    fn reg_mask_builds_bitmap() {
        assert_eq!(reg_mask(&[Reg::R(0), Reg::R(4), Reg::Lr]), 0x4011);
    }

    #[test]
    #[should_panic(expected = "does not refer to a branch")]
    fn fix_branch_rejects_non_branch() {
        let mut a = Assembler::new(0);
        a.mov_imm(Reg::R(0), 1);
        let target = a.here();
        a.fix_branch(Fixup(0), target);
    }
}
