//! A32 instruction decoding.
//!
//! Any word outside the modelled subset decodes to [`Insn::Unknown`], which
//! executes as an undefined-instruction exception. This is the executable
//! counterpart of the paper's idiomatic-specification rule: unspecified
//! instructions have no defined behaviour, so the system treats them as
//! faults rather than guessing.

use crate::insn::{Cond, DpOp, Insn, LsmMode, MemOffset, Op2, Shift};
use crate::regs::Reg;
use crate::word::Word;

fn reg(bits: u32) -> Option<Reg> {
    Reg::from_index((bits & 0xf) as u8)
}

/// Decodes one word. Never fails; undecodable words become [`Insn::Unknown`].
pub fn decode(w: Word) -> Insn {
    match try_decode(w) {
        Some(i) => i,
        None => Insn::Unknown(w),
    }
}

fn try_decode(w: Word) -> Option<Insn> {
    let cond = Cond::from_bits(w >> 28)?; // cond=1111 (unconditional space) unmodelled.
    let space = (w >> 25) & 0b111;
    match space {
        0b000 => decode_space0(w, cond),
        0b001 => decode_space1(w, cond),
        0b010 => decode_mem(
            w,
            cond,
            MemOffset::Imm {
                imm12: (w & 0xfff) as u16,
                add: w & (1 << 23) != 0,
            },
        ),
        0b011 => {
            if w & (1 << 4) != 0 {
                // Media / UDF space.
                if (w & 0x0ff0_00f0) == 0x07f0_00f0 {
                    let imm16 = ((((w >> 8) & 0xfff) << 4) | (w & 0xf)) as u16;
                    return Some(Insn::Udf { imm16 });
                }
                return None;
            }
            // Register offset with zero shift only.
            if (w >> 4) & 0xff != 0 {
                return None;
            }
            decode_mem(
                w,
                cond,
                MemOffset::Reg {
                    rm: reg(w)?,
                    add: w & (1 << 23) != 0,
                },
            )
        }
        0b100 => decode_lsm(w, cond),
        0b101 => {
            let offset = ((w & 0x00ff_ffff) as i32) << 8 >> 8; // Sign-extend 24 bits.
            if w & (1 << 24) != 0 {
                Some(Insn::Bl { cond, offset })
            } else {
                Some(Insn::B { cond, offset })
            }
        }
        0b111 => {
            if w & (1 << 24) != 0 {
                Some(Insn::Svc {
                    cond,
                    imm24: w & 0x00ff_ffff,
                })
            } else if w & (1 << 4) != 0 {
                // MCR/MRC with the fixed sub-fields the encoder emits
                // (opc1=0, CRn=0, opc2=0, CRm=0).
                if (w & 0x0fff_00ff) != 0x0e00_0010 && (w & 0x0fff_00ff) != 0x0e10_0010 {
                    return None;
                }
                let rt = reg(w >> 12)?;
                let cp = ((w >> 8) & 0xf) as u8;
                if w & (1 << 20) != 0 {
                    Some(Insn::Mrc { cond, cp, rt })
                } else {
                    Some(Insn::Mcr { cond, cp, rt })
                }
            } else {
                None // CDP and friends.
            }
        }
        _ => None, // 0b110: coprocessor load/store.
    }
}

/// Space `000`: register data-processing, multiply, and the misc space
/// (`MRS`, `BX`, `SMC`).
fn decode_space0(w: Word, cond: Cond) -> Option<Insn> {
    // Multiply: bits[27:22]=000000, bits[7:4]=1001.
    if (w & 0x0fc0_00f0) == 0x0000_0090 {
        return Some(Insn::Mul {
            cond,
            s: w & (1 << 20) != 0,
            rd: reg(w >> 16)?,
            rs: reg(w >> 8)?,
            rm: reg(w)?,
        });
    }
    let op = DpOp::from_bits(w >> 21);
    let s = w & (1 << 20) != 0;
    if op.is_compare() && !s {
        // Misc space.
        if (w & 0x0fbf_0fff) == 0x010f_0000 {
            return Some(Insn::Mrs {
                cond,
                rd: reg(w >> 12)?,
            });
        }
        if (w & 0x0fff_fff0) == 0x012f_ff10 {
            return Some(Insn::Bx { cond, rm: reg(w)? });
        }
        if (w & 0x0fff_fff0) == 0x0160_0070 {
            return Some(Insn::Smc {
                cond,
                imm4: (w & 0xf) as u8,
            });
        }
        return None;
    }
    if w & (1 << 4) != 0 {
        return None; // Register-shifted-register and halfword forms.
    }
    let op2 = Op2::Reg {
        rm: reg(w)?,
        shift: Shift::from_bits(w >> 5),
        amount: ((w >> 7) & 0x1f) as u8,
    };
    decode_dp(w, cond, op, s, op2)
}

/// Space `001`: immediate data-processing, `MOVW`, `MOVT`.
fn decode_space1(w: Word, cond: Cond) -> Option<Insn> {
    let op = DpOp::from_bits(w >> 21);
    let s = w & (1 << 20) != 0;
    if op.is_compare() && !s {
        // MOVW (op=TST slot), MOVT (op=CMP slot); MSR-immediate unmodelled.
        let imm16 = ((((w >> 16) & 0xf) << 12) | (w & 0xfff)) as u16;
        return match op {
            DpOp::Tst => Some(Insn::Movw {
                cond,
                rd: reg(w >> 12)?,
                imm16,
            }),
            DpOp::Cmp => Some(Insn::Movt {
                cond,
                rd: reg(w >> 12)?,
                imm16,
            }),
            _ => None,
        };
    }
    let op2 = Op2::Imm {
        imm8: (w & 0xff) as u8,
        rot: ((w >> 8) & 0xf) as u8,
    };
    decode_dp(w, cond, op, s, op2)
}

fn decode_dp(w: Word, cond: Cond, op: DpOp, s: bool, op2: Op2) -> Option<Insn> {
    let rd_bits = (w >> 12) & 0xf;
    let rn_bits = (w >> 16) & 0xf;
    // Compares must have Rd=0; moves must have Rn=0 (encoder invariants;
    // anything else is outside the modelled subset).
    let rd = if op.is_compare() {
        if rd_bits != 0 {
            return None;
        }
        Reg::R(0)
    } else {
        reg(rd_bits)?
    };
    let rn = if op.is_move() {
        if rn_bits != 0 {
            return None;
        }
        Reg::R(0)
    } else {
        reg(rn_bits)?
    };
    Some(Insn::Dp {
        cond,
        op,
        s,
        rd,
        rn,
        op2,
    })
}

fn decode_mem(w: Word, cond: Cond, off: MemOffset) -> Option<Insn> {
    let p = w & (1 << 24) != 0;
    let wb = w & (1 << 21) != 0;
    if !p || wb {
        return None; // Only offset addressing (P=1, W=0) is modelled.
    }
    let byte = w & (1 << 22) != 0;
    let load = w & (1 << 20) != 0;
    let rn = reg(w >> 16)?;
    let rd = reg(w >> 12)?;
    Some(if load {
        Insn::Ldr {
            cond,
            rd,
            rn,
            off,
            byte,
        }
    } else {
        Insn::Str {
            cond,
            rd,
            rn,
            off,
            byte,
        }
    })
}

fn decode_lsm(w: Word, cond: Cond) -> Option<Insn> {
    if w & (1 << 22) != 0 {
        return None; // S bit (user-bank transfer) unmodelled.
    }
    let p = w & (1 << 24) != 0;
    let u = w & (1 << 23) != 0;
    let mode = match (p, u) {
        (false, true) => LsmMode::Ia,
        (true, false) => LsmMode::Db,
        _ => return None,
    };
    let regs = (w & 0xffff) as u16;
    if regs & (1 << 15) != 0 || regs == 0 {
        return None; // PC transfers and empty lists unmodelled.
    }
    let writeback = w & (1 << 21) != 0;
    let load = w & (1 << 20) != 0;
    let rn_bits = (w >> 16) & 0xf;
    if writeback && regs & (1 << rn_bits) != 0 {
        // Base in the register list with writeback is UNPREDICTABLE in the
        // architecture (LDM: is the loaded or the written-back value in Rn?
        // STM: is the old or new base stored?). An idiomatic specification
        // assigns such encodings no behaviour, so they decode as unknown
        // and execute as undefined-instruction exceptions. Base-in-list
        // *without* writeback stays modelled, with defined semantics: LDM
        // leaves the loaded value in Rn; STM stores the original base.
        return None;
    }
    let rn = reg(rn_bits)?;
    Some(if load {
        Insn::Ldm {
            cond,
            rn,
            writeback,
            regs,
            mode,
        }
    } else {
        Insn::Stm {
            cond,
            rn,
            writeback,
            regs,
            mode,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use proptest::prelude::*;

    #[test]
    fn decode_known_words() {
        assert_eq!(
            decode(0xe3a0_0001),
            Insn::Dp {
                cond: Cond::Al,
                op: DpOp::Mov,
                s: false,
                rd: Reg::R(0),
                rn: Reg::R(0),
                op2: Op2::imm(1),
            }
        );
        assert_eq!(
            decode(0xef00_0000),
            Insn::Svc {
                cond: Cond::Al,
                imm24: 0
            }
        );
        assert_eq!(decode(0xe7f0_00f0), Insn::Udf { imm16: 0 });
        assert!(matches!(decode(0xe12f_ff1e), Insn::Bx { rm: Reg::Lr, .. }));
        assert!(matches!(decode(0xe160_0070), Insn::Smc { imm4: 0, .. }));
        assert!(matches!(
            decode(0xe10f_3000),
            Insn::Mrs { rd: Reg::R(3), .. }
        ));
    }

    #[test]
    fn unconditional_space_unknown() {
        assert!(matches!(decode(0xf57f_f04f), Insn::Unknown(_))); // DSB.
    }

    #[test]
    fn pc_operands_unknown() {
        // ldr r0, [pc, #0] — literal pools are outside the model.
        assert!(matches!(decode(0xe59f_0000), Insn::Unknown(_)));
        // mov pc, r0.
        assert!(matches!(decode(0xe1a0_f000), Insn::Unknown(_)));
    }

    #[test]
    fn writeback_single_transfer_unknown() {
        // ldr r0, [r1, #4]! (pre-index writeback).
        assert!(matches!(decode(0xe5b1_0004), Insn::Unknown(_)));
        // ldr r0, [r1], #4 (post-index).
        assert!(matches!(decode(0xe491_0004), Insn::Unknown(_)));
    }

    #[test]
    fn ldm_with_pc_unknown() {
        // pop {pc}.
        assert!(matches!(decode(0xe8bd_8000), Insn::Unknown(_)));
    }

    #[test]
    fn lsm_writeback_with_base_in_list_unknown() {
        // UNPREDICTABLE in the architecture; rejected at decode so the
        // model never has to pick a winner between load and writeback.
        for load in [true, false] {
            let unpredictable = make_lsm(load, Reg::R(1), true, 0b0011);
            assert!(
                matches!(decode(unpredictable), Insn::Unknown(_)),
                "load={load}"
            );
            // Base in list without writeback stays modelled...
            let in_list = make_lsm(load, Reg::R(1), false, 0b0011);
            assert!(!matches!(decode(in_list), Insn::Unknown(_)), "load={load}");
            // ...as does writeback with the base not in the list.
            let wb_only = make_lsm(load, Reg::R(1), true, 0b0101);
            assert!(!matches!(decode(wb_only), Insn::Unknown(_)), "load={load}");
        }
    }

    fn make_lsm(load: bool, rn: Reg, writeback: bool, regs: u16) -> u32 {
        encode(if load {
            Insn::Ldm {
                cond: Cond::Al,
                rn,
                writeback,
                regs,
                mode: LsmMode::Ia,
            }
        } else {
            Insn::Stm {
                cond: Cond::Al,
                rn,
                writeback,
                regs,
                mode: LsmMode::Ia,
            }
        })
    }

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0u8..15).prop_map(|n| Reg::from_index(n).unwrap())
    }

    fn arb_insn() -> impl Strategy<Value = Insn> {
        let dp = (
            0u32..16,
            any::<bool>(),
            arb_reg(),
            arb_reg(),
            prop_oneof![
                (any::<u8>(), 0u8..16).prop_map(|(imm8, rot)| Op2::Imm { imm8, rot }),
                (arb_reg(), 0u32..4, 0u8..32).prop_map(|(rm, sh, amount)| Op2::Reg {
                    rm,
                    shift: Shift::from_bits(sh),
                    amount
                }),
            ],
        )
            .prop_map(|(op, s, rd, rn, op2)| {
                let op = DpOp::from_bits(op);
                Insn::Dp {
                    cond: Cond::Al,
                    op,
                    s: s || op.is_compare(),
                    rd: if op.is_compare() { Reg::R(0) } else { rd },
                    rn: if op.is_move() { Reg::R(0) } else { rn },
                    op2,
                }
            });
        let mem = (
            any::<bool>(),
            arb_reg(),
            arb_reg(),
            0u16..4096,
            any::<bool>(),
            any::<bool>(),
        )
            .prop_map(|(load, rd, rn, imm12, add, byte)| {
                let off = MemOffset::Imm { imm12, add };
                if load {
                    Insn::Ldr {
                        cond: Cond::Al,
                        rd,
                        rn,
                        off,
                        byte,
                    }
                } else {
                    Insn::Str {
                        cond: Cond::Al,
                        rd,
                        rn,
                        off,
                        byte,
                    }
                }
            });
        let lsm = (
            any::<bool>(),
            arb_reg(),
            any::<bool>(),
            1u16..0x7fff,
            any::<bool>(),
        )
            .prop_map(|(load, rn, writeback, regs, ia)| {
                let mode = if ia { LsmMode::Ia } else { LsmMode::Db };
                // Writeback with the base in the list is rejected at
                // decode (UNPREDICTABLE), so keep generated encodings in
                // the modelled subset.
                let writeback = writeback && regs & (1 << rn.index()) == 0;
                if load {
                    Insn::Ldm {
                        cond: Cond::Al,
                        rn,
                        writeback,
                        regs,
                        mode,
                    }
                } else {
                    Insn::Stm {
                        cond: Cond::Al,
                        rn,
                        writeback,
                        regs,
                        mode,
                    }
                }
            });
        let misc = prop_oneof![
            (arb_reg(), any::<u16>()).prop_map(|(rd, imm16)| Insn::Movw {
                cond: Cond::Al,
                rd,
                imm16
            }),
            (arb_reg(), any::<u16>()).prop_map(|(rd, imm16)| Insn::Movt {
                cond: Cond::Al,
                rd,
                imm16
            }),
            (arb_reg(), arb_reg(), arb_reg(), any::<bool>()).prop_map(|(rd, rm, rs, s)| {
                Insn::Mul {
                    cond: Cond::Al,
                    s,
                    rd,
                    rm,
                    rs,
                }
            }),
            (-0x0080_0000i32..0x0080_0000).prop_map(|offset| Insn::B {
                cond: Cond::Al,
                offset
            }),
            (-0x0080_0000i32..0x0080_0000).prop_map(|offset| Insn::Bl {
                cond: Cond::Al,
                offset
            }),
            arb_reg().prop_map(|rm| Insn::Bx { cond: Cond::Al, rm }),
            (0u32..0x0100_0000).prop_map(|imm24| Insn::Svc {
                cond: Cond::Al,
                imm24
            }),
            (0u8..16).prop_map(|imm4| Insn::Smc {
                cond: Cond::Al,
                imm4
            }),
            arb_reg().prop_map(|rd| Insn::Mrs { cond: Cond::Al, rd }),
            any::<u16>().prop_map(|imm16| Insn::Udf { imm16 }),
            (0u8..16, arb_reg()).prop_map(|(cp, rt)| Insn::Mcr {
                cond: Cond::Al,
                cp,
                rt
            }),
            (0u8..16, arb_reg()).prop_map(|(cp, rt)| Insn::Mrc {
                cond: Cond::Al,
                cp,
                rt
            }),
        ];
        prop_oneof![dp, mem, lsm, misc]
    }

    proptest! {
        /// Every instruction the assembler can produce round-trips through
        /// its binary encoding.
        #[test]
        fn prop_encode_decode_roundtrip(insn in arb_insn()) {
            prop_assert_eq!(decode(encode(insn)), insn);
        }

        /// Decoding any word and re-encoding it is the identity on the
        /// decoded instruction (decode is a partial inverse of encode).
        #[test]
        fn prop_decode_encode_stable(w in any::<u32>()) {
            let i = decode(w);
            prop_assert_eq!(decode(encode(i)), i);
        }
    }
}
