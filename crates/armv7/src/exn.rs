//! Exceptions and mode switches.
//!
//! The model encodes the two control transfers the paper identifies as
//! "crucial to the correctness of Komodo" (§5.1): the branch from privileged
//! code to user mode (`MOVS PC, LR`, performed by [`crate::Machine::exception_return`])
//! and the switch back into privileged mode when an exception occurs, "which
//! preserves the pre-exception PC value in LR".

use crate::mode::Mode;

/// The exception classes the machine can take.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExceptionKind {
    /// Supervisor call (`SVC`) — the enclave→monitor API (Table 1).
    Svc,
    /// Secure monitor call (`SMC`) — the OS→monitor API (Table 1).
    Smc,
    /// Normal interrupt.
    Irq,
    /// Fast interrupt.
    Fiq,
    /// Data abort (page fault on a data access).
    DataAbort,
    /// Prefetch abort (page fault on instruction fetch).
    PrefetchAbort,
    /// Undefined instruction (including privileged instructions from user
    /// mode, and any unmodelled encoding).
    Undefined,
}

impl ExceptionKind {
    /// The mode in which the exception is taken.
    ///
    /// Komodo configures secure-world exceptions to use the per-class
    /// banked modes, with `SMC` always entering monitor mode (§3.3).
    pub fn target_mode(self) -> Mode {
        match self {
            ExceptionKind::Svc => Mode::Supervisor,
            ExceptionKind::Smc => Mode::Monitor,
            ExceptionKind::Irq => Mode::Irq,
            ExceptionKind::Fiq => Mode::Fiq,
            ExceptionKind::DataAbort | ExceptionKind::PrefetchAbort => Mode::Abort,
            ExceptionKind::Undefined => Mode::Undefined,
        }
    }

    /// This exception class as a trace-event vector (the flight recorder
    /// carries its own leaf-crate copy of the taxonomy).
    pub fn trace_vector(self) -> komodo_trace::ExnVector {
        use komodo_trace::ExnVector as V;
        match self {
            ExceptionKind::Svc => V::Svc,
            ExceptionKind::Smc => V::Smc,
            ExceptionKind::Irq => V::Irq,
            ExceptionKind::Fiq => V::Fiq,
            ExceptionKind::DataAbort => V::DataAbort,
            ExceptionKind::PrefetchAbort => V::PrefetchAbort,
            ExceptionKind::Undefined => V::Undefined,
        }
    }

    /// All exception kinds.
    pub const ALL: [ExceptionKind; 7] = [
        ExceptionKind::Svc,
        ExceptionKind::Smc,
        ExceptionKind::Irq,
        ExceptionKind::Fiq,
        ExceptionKind::DataAbort,
        ExceptionKind::PrefetchAbort,
        ExceptionKind::Undefined,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_modes() {
        assert_eq!(ExceptionKind::Svc.target_mode(), Mode::Supervisor);
        assert_eq!(ExceptionKind::Smc.target_mode(), Mode::Monitor);
        assert_eq!(ExceptionKind::Irq.target_mode(), Mode::Irq);
        assert_eq!(ExceptionKind::DataAbort.target_mode(), Mode::Abort);
        assert_eq!(ExceptionKind::PrefetchAbort.target_mode(), Mode::Abort);
        assert_eq!(ExceptionKind::Undefined.target_mode(), Mode::Undefined);
    }

    #[test]
    fn all_targets_have_spsr() {
        for k in ExceptionKind::ALL {
            assert!(k.target_mode().has_spsr());
        }
    }
}
