//! Word and address primitives.
//!
//! The machine models memory "as a mapping from word-aligned addresses to
//! 32-bit values" (paper §5.1); all address arithmetic in the monitor and
//! specification is word- or page-granular.

/// A 32-bit machine word.
pub type Word = u32;

/// A 32-bit physical or virtual address.
pub type Addr = u32;

/// Bytes per word.
pub const WORD_BYTES: u32 = 4;

/// Page size: ARM "small pages" in the short-descriptor format (§5.1).
pub const PAGE_SIZE: u32 = 4096;

/// Words per 4 kB page.
pub const WORDS_PER_PAGE: usize = (PAGE_SIZE / WORD_BYTES) as usize;

/// Returns `true` if `a` is word-aligned.
pub fn word_aligned(a: Addr) -> bool {
    a.is_multiple_of(WORD_BYTES)
}

/// Returns `true` if `a` is page-aligned.
pub fn page_aligned(a: Addr) -> bool {
    a.is_multiple_of(PAGE_SIZE)
}

/// Rounds `a` down to the containing page base.
pub fn page_base(a: Addr) -> Addr {
    a & !(PAGE_SIZE - 1)
}

/// Byte offset of `a` within its page.
pub fn page_offset(a: Addr) -> u32 {
    a & (PAGE_SIZE - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_predicates() {
        assert!(word_aligned(0));
        assert!(word_aligned(4));
        assert!(!word_aligned(2));
        assert!(page_aligned(0x1000));
        assert!(!page_aligned(0x1004));
    }

    #[test]
    fn page_arithmetic() {
        assert_eq!(page_base(0x1234), 0x1000);
        assert_eq!(page_offset(0x1234), 0x234);
        assert_eq!(page_base(0xffff_ffff), 0xffff_f000);
    }
}
