//! Host-side fetch/decode acceleration.
//!
//! `Machine::step` spends most of its host time on three per-instruction
//! costs: a TLB map lookup to translate the PC, a region scan to read the
//! instruction word, and a fresh `decode` of that word. All three are
//! redundant while execution stays on a code page that has not changed,
//! which is the overwhelmingly common case (guest code is RX; the monitor
//! writes code pages only while an enclave is being built).
//!
//! [`FetchAccel`] removes that redundancy with two caches:
//!
//! - a **decode cache** keyed by physical page base, holding the page's
//!   1024 words eagerly decoded to [`Insn`] values, and
//! - a **one-entry fetch-translation cache** remembering the last code
//!   page's VA→PA mapping (plus the world and `TTBR0` it was formed under).
//!
//! Both are *architecturally invisible*: the simulated cycle count, the
//! TLB hit/miss/flush statistics, the memory access counters, and all
//! exception behaviour are bit-for-bit identical with the accelerator on
//! or off. Only host wall-clock time changes. Concretely:
//!
//! - a decode-cache hit bumps `PhysMem::reads` exactly as the `mem.read`
//!   it replaces would have;
//! - a translation-cache hit bumps `Tlb::hits` exactly as the `Tlb::lookup`
//!   it replaces would have (the entry provably still sits in the TLB —
//!   only a flush evicts, and a flush clears this cache);
//! - anything unusual — unaligned PC, a page not fully RAM-backed, a
//!   secure page fetched with non-secure attributes — falls back to the
//!   uncached path so faults are raised and counted identically.
//!
//! Invalidation: filling a page registers it with [`PhysMem`]'s code
//! watch; any write into a watched page bumps a generation counter that
//! the next fetch observes, dropping the whole cache. `Machine` also
//! drops it on `tlb_flush`, `load_ttbr0` and `note_pagetable_store`.

use crate::decode::decode;
use crate::fxhash::FxHashMap;
use crate::insn::{Cond, Insn};
use crate::mem::{AccessAttrs, PhysMem};
use crate::mode::World;
use crate::ptw::Translation;
use crate::word::{page_base, page_offset, word_aligned, Addr, Word, WORD_BYTES};

/// One physical code page, eagerly decoded.
#[derive(Clone, Debug)]
struct CachedPage {
    /// Whether the backing region is secure (for the bus-attribute check a
    /// real fetch would perform).
    secure: bool,
    /// `(word, decoded, condition)` per word of the page; the raw word is
    /// kept because exception paths report it (`ExitReason::Undefined`),
    /// and the condition field is pre-extracted so the hot path skips the
    /// [`Insn::cond`] dispatch.
    entries: Box<[(Word, Insn, Cond)]>,
}

/// The last successful instruction-fetch translation, with everything its
/// validity depends on.
#[derive(Clone, Copy, Debug)]
struct FetchEntry {
    va_page: Addr,
    pa_page: Addr,
    attrs: AccessAttrs,
    world: World,
    ttbr0: Addr,
}

/// Per-page decode cache (see module docs).
#[derive(Clone, Debug, Default)]
struct DecodeCache {
    pages: Vec<CachedPage>,
    index: FxHashMap<Addr, usize>,
    /// Last page served — straight-line code hits this without hashing.
    last: Option<(Addr, usize)>,
    /// Snapshot of `PhysMem::code_gen` the cached pages were filled under.
    gen: u64,
}

impl DecodeCache {
    fn clear(&mut self) {
        self.pages.clear();
        self.index.clear();
        self.last = None;
    }

    /// Decodes and caches the page at `base`; `None` if the page is not
    /// fully RAM-backed (such fetches stay on the uncached path).
    fn fill(&mut self, mem: &mut PhysMem, base: Addr) -> Option<usize> {
        let (words, secure) = mem.code_page_snapshot(base)?;
        let entries: Box<[(Word, Insn, Cond)]> = words
            .iter()
            .map(|&w| {
                let i = decode(w);
                let c = i.cond();
                (w, i, c)
            })
            .collect();
        mem.watch_code_page(base);
        let idx = self.pages.len();
        self.pages.push(CachedPage { secure, entries });
        self.index.insert(base, idx);
        self.last = Some((base, idx));
        Some(idx)
    }
}

/// The last successful data-side translation, with everything its
/// validity depends on. Unlike the fetch entry this caches the raw
/// [`Translation`], so the caller re-runs the permission check per access
/// — a page readable but not writable still faults on stores exactly as
/// the TLB path would.
#[derive(Clone, Copy, Debug)]
struct DataEntry {
    va_page: Addr,
    world: World,
    ttbr0: Addr,
    t: Translation,
}

/// A fused fast-path entry: the last fetch's translation *and* decoded
/// page, validated together so the common straight-line/loop case costs a
/// single compare chain per step. Only formed after the page's secure
/// attribute admitted the translation's bus attributes; a hit replays the
/// identical translation, so that check's outcome is unchanged and no
/// fault the uncached path would raise can be masked.
#[derive(Clone, Copy, Debug)]
struct HotFetch {
    va_page: Addr,
    world: World,
    ttbr0: Addr,
    idx: usize,
}

/// The fetch accelerator: decode cache + one-entry translation cache.
///
/// Lives in [`crate::Machine`] but is **not** architectural state: it is
/// excluded from machine equality and never affects simulated counters.
#[derive(Clone, Debug)]
pub struct FetchAccel {
    enabled: bool,
    dcache: DecodeCache,
    fetch_tc: Option<FetchEntry>,
    data_tc: Option<DataEntry>,
    hot: Option<HotFetch>,
    /// Host-side statistics: fetches served from the decode cache.
    served: u64,
    /// Host-side statistics: pages decoded and cached.
    fills: u64,
}

impl FetchAccel {
    /// A fresh, enabled accelerator with nothing cached.
    pub fn new() -> FetchAccel {
        FetchAccel {
            enabled: true,
            dcache: DecodeCache::default(),
            fetch_tc: None,
            data_tc: None,
            hot: None,
            served: 0,
            fills: 0,
        }
    }

    /// Whether the accelerator is consulted at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns the accelerator on or off (off forces every fetch down the
    /// uncached path — used by the differential tests and benchmarks).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Drops every cached page and the translation entries.
    pub fn invalidate(&mut self) {
        self.dcache.clear();
        self.fetch_tc = None;
        self.data_tc = None;
        self.hot = None;
    }

    /// Number of pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.dcache.pages.len()
    }

    /// Fetches served from the decode cache (host-side statistic).
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Pages decoded and cached (host-side statistic).
    pub fn fills(&self) -> u64 {
        self.fills
    }

    /// The fused fast path: serves the instruction at virtual address `pc`
    /// when the last fetch's translation and decoded page both still apply
    /// (same VA page, world and `TTBR0`; no store into a watched code page
    /// since). On a hit the caller must account one TLB hit, one memory
    /// read and the instruction cycle — exactly what the uncached path
    /// would have recorded (see [`FetchAccel::fetch_tc_lookup`] and
    /// [`FetchAccel::fetch`], whose accounting this combines).
    #[inline]
    pub(crate) fn hot_fetch(
        &mut self,
        pc: Addr,
        world: World,
        ttbr0: Addr,
        mem: &PhysMem,
    ) -> Option<(Word, Insn, Cond)> {
        if !self.enabled {
            return None;
        }
        let h = self.hot.as_ref()?;
        if h.va_page != page_base(pc)
            || h.world != world
            || h.ttbr0 != ttbr0
            || self.dcache.gen != mem.code_gen()
            || !word_aligned(pc)
        {
            return None;
        }
        self.served += 1;
        let page = &self.dcache.pages[h.idx];
        Some(page.entries[(page_offset(pc) / WORD_BYTES) as usize])
    }

    /// Consults the one-entry translation cache for the fetch of `pc`.
    ///
    /// A hit is returned only if the entry was formed under the same world
    /// and `TTBR0`; the caller must account the TLB hit the lookup this
    /// replaces would have recorded.
    #[inline]
    pub(crate) fn fetch_tc_lookup(
        &self,
        pc: Addr,
        world: World,
        ttbr0: Addr,
    ) -> Option<(Addr, AccessAttrs)> {
        if !self.enabled {
            return None;
        }
        let e = self.fetch_tc.as_ref()?;
        if e.va_page == page_base(pc) && e.world == world && e.ttbr0 == ttbr0 {
            Some((e.pa_page | page_offset(pc), e.attrs))
        } else {
            None
        }
    }

    /// Consults the one-entry data-side translation cache for `va`.
    ///
    /// A hit returns the cached [`Translation`]; the caller must account
    /// the TLB hit the [`crate::tlb::Tlb::lookup`] this replaces would
    /// have recorded, and must re-run the permission check — the entry
    /// provably still sits in the TLB (only a flush evicts, and a flush
    /// drops this cache), so only the map probe is skipped.
    #[inline]
    pub(crate) fn data_tc_lookup(
        &self,
        va: Addr,
        world: World,
        ttbr0: Addr,
    ) -> Option<Translation> {
        if !self.enabled {
            return None;
        }
        let e = self.data_tc.as_ref()?;
        if e.va_page == page_base(va) && e.world == world && e.ttbr0 == ttbr0 {
            Some(e.t)
        } else {
            None
        }
    }

    /// Records a translation now present in the TLB for the data side.
    #[inline]
    pub(crate) fn data_tc_fill(&mut self, va: Addr, world: World, ttbr0: Addr, t: Translation) {
        if !self.enabled {
            return;
        }
        self.data_tc = Some(DataEntry {
            va_page: page_base(va),
            world,
            ttbr0,
            t,
        });
    }

    /// Records a successful fetch translation for `pc`.
    pub(crate) fn fetch_tc_fill(
        &mut self,
        pc: Addr,
        pa: Addr,
        attrs: AccessAttrs,
        world: World,
        ttbr0: Addr,
    ) {
        if !self.enabled {
            return;
        }
        self.fetch_tc = Some(FetchEntry {
            va_page: page_base(pc),
            pa_page: page_base(pa),
            attrs,
            world,
            ttbr0,
        });
    }

    /// Serves the instruction at physical address `ppc`, or `None` to send
    /// the fetch down the uncached path.
    ///
    /// On a hit this bumps `mem.reads` by one — the read the uncached path
    /// would have performed — keeping the access counters bit-identical.
    #[inline]
    pub(crate) fn fetch(
        &mut self,
        mem: &mut PhysMem,
        ppc: Addr,
        attrs: AccessAttrs,
    ) -> Option<(Word, Insn, Cond)> {
        if !self.enabled {
            return None;
        }
        if self.dcache.gen != mem.code_gen() {
            // A store landed in a watched code page since the last fetch.
            self.dcache.clear();
            self.hot = None;
            mem.clear_code_watch();
            self.dcache.gen = mem.code_gen();
        }
        if !word_aligned(ppc) {
            return None; // Let the uncached path raise the alignment fault.
        }
        let base = page_base(ppc);
        let idx = match self.dcache.last {
            Some((b, i)) if b == base => i,
            _ => match self.dcache.index.get(&base) {
                Some(&i) => {
                    self.dcache.last = Some((base, i));
                    i
                }
                None => {
                    let i = self.dcache.fill(mem, base)?;
                    self.fills += 1;
                    i
                }
            },
        };
        let page = &self.dcache.pages[idx];
        if page.secure && !attrs.secure {
            // The bus would reject this fetch; take the uncached path so
            // the fault is raised (and left uncounted) exactly as without
            // the cache.
            return None;
        }
        // Arm the fused fast path for the next step: the translation cache
        // already holds this page's mapping (the caller translates before
        // fetching), and the secure check above just passed for `attrs`,
        // which are the attributes that translation yields.
        if let Some(tc) = self.fetch_tc {
            if tc.pa_page == base {
                self.hot = Some(HotFetch {
                    va_page: tc.va_page,
                    world: tc.world,
                    ttbr0: tc.ttbr0,
                    idx,
                });
            }
        }
        mem.reads += 1; // The word read the uncached path would have done.
        self.served += 1;
        Some(page.entries[(page_offset(ppc) / WORD_BYTES) as usize])
    }
}

impl Default for FetchAccel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_with_code(words: &[Word], secure: bool) -> PhysMem {
        let mut m = PhysMem::new();
        m.add_region(0x8000_0000, 0x4000, secure);
        m.load_words(0x8000_2000, words).unwrap();
        m
    }

    #[test]
    fn hit_replays_word_and_counts_one_read() {
        let mut mem = mem_with_code(&[0xe3a0_0001, 0xef00_0000], true);
        let mut acc = FetchAccel::new();
        let r0 = mem.reads;
        let (w, i, c) = acc
            .fetch(&mut mem, 0x8000_2000, AccessAttrs::MONITOR)
            .unwrap();
        assert_eq!(w, 0xe3a0_0001);
        assert_eq!(i, decode(0xe3a0_0001));
        assert_eq!(c, i.cond());
        assert_eq!(mem.reads, r0 + 1, "hit must count exactly one read");
        assert_eq!(acc.cached_pages(), 1);
        assert_eq!(acc.fills(), 1);
        // Second fetch on the same page: served from cache, one more read.
        let (w, _, _) = acc
            .fetch(&mut mem, 0x8000_2004, AccessAttrs::MONITOR)
            .unwrap();
        assert_eq!(w, 0xef00_0000);
        assert_eq!(mem.reads, r0 + 2);
        assert_eq!(acc.served(), 2);
        assert_eq!(acc.fills(), 1);
    }

    #[test]
    fn write_to_cached_page_invalidates() {
        let mut mem = mem_with_code(&[0xe3a0_0001], true);
        let mut acc = FetchAccel::new();
        acc.fetch(&mut mem, 0x8000_2000, AccessAttrs::MONITOR)
            .unwrap();
        mem.write(0x8000_2000, 0xef00_0000, AccessAttrs::MONITOR)
            .unwrap();
        let (w, i, _) = acc
            .fetch(&mut mem, 0x8000_2000, AccessAttrs::MONITOR)
            .unwrap();
        assert_eq!(w, 0xef00_0000, "stale decode served after overwrite");
        assert_eq!(i, decode(0xef00_0000));
        assert_eq!(acc.fills(), 2, "page must be re-decoded after the store");
    }

    #[test]
    fn write_to_unwatched_page_keeps_cache() {
        let mut mem = mem_with_code(&[0xe3a0_0001], true);
        let mut acc = FetchAccel::new();
        acc.fetch(&mut mem, 0x8000_2000, AccessAttrs::MONITOR)
            .unwrap();
        // A data page the accelerator never cached.
        mem.write(0x8000_3000, 7, AccessAttrs::MONITOR).unwrap();
        acc.fetch(&mut mem, 0x8000_2000, AccessAttrs::MONITOR)
            .unwrap();
        assert_eq!(acc.fills(), 1, "unrelated stores must not invalidate");
    }

    #[test]
    fn secure_page_not_served_to_nonsecure_fetch() {
        let mut mem = mem_with_code(&[0xe3a0_0001], true);
        let mut acc = FetchAccel::new();
        acc.fetch(&mut mem, 0x8000_2000, AccessAttrs::MONITOR)
            .unwrap();
        let r0 = mem.reads;
        assert!(acc
            .fetch(&mut mem, 0x8000_2000, AccessAttrs::NORMAL)
            .is_none());
        assert_eq!(mem.reads, r0, "rejected fetch must not count a read");
    }

    #[test]
    fn unaligned_and_unmapped_fall_back() {
        let mut mem = mem_with_code(&[0xe3a0_0001], false);
        let mut acc = FetchAccel::new();
        assert!(acc
            .fetch(&mut mem, 0x8000_2002, AccessAttrs::NORMAL)
            .is_none());
        assert!(acc
            .fetch(&mut mem, 0x4000_0000, AccessAttrs::NORMAL)
            .is_none());
    }

    #[test]
    fn disabled_accelerator_serves_nothing() {
        let mut mem = mem_with_code(&[0xe3a0_0001], false);
        let mut acc = FetchAccel::new();
        acc.set_enabled(false);
        assert!(acc
            .fetch(&mut mem, 0x8000_2000, AccessAttrs::NORMAL)
            .is_none());
        assert!(acc
            .fetch_tc_lookup(0x8000, World::Secure, 0x8000_0000)
            .is_none());
    }

    #[test]
    fn fetch_tc_validates_world_and_ttbr0() {
        let mut acc = FetchAccel::new();
        acc.fetch_tc_fill(
            0x8123,
            0x8000_2123,
            AccessAttrs::ENCLAVE,
            World::Secure,
            0x8000_0000,
        );
        let (pa, attrs) = acc
            .fetch_tc_lookup(0x8ffc, World::Secure, 0x8000_0000)
            .unwrap();
        assert_eq!(pa, 0x8000_2ffc);
        assert_eq!(attrs, AccessAttrs::ENCLAVE);
        // Different page, world, or TTBR0: miss.
        assert!(acc
            .fetch_tc_lookup(0x9000, World::Secure, 0x8000_0000)
            .is_none());
        assert!(acc
            .fetch_tc_lookup(0x8ffc, World::Normal, 0x8000_0000)
            .is_none());
        assert!(acc
            .fetch_tc_lookup(0x8ffc, World::Secure, 0x8000_4000)
            .is_none());
    }
}
