//! Host-side fetch/decode acceleration.
//!
//! `Machine::step` spends most of its host time on three per-instruction
//! costs: a TLB map lookup to translate the PC, a region scan to read the
//! instruction word, and a fresh `decode` of that word. All three are
//! redundant while execution stays on a code page that has not changed,
//! which is the overwhelmingly common case (guest code is RX; the monitor
//! writes code pages only while an enclave is being built).
//!
//! [`FetchAccel`] removes that redundancy with two caches:
//!
//! - a **decode cache** keyed by physical page base, holding the page's
//!   1024 words eagerly decoded to [`Insn`] values, and
//! - a **one-entry fetch-translation cache** remembering the last code
//!   page's VA→PA mapping (plus the world and `TTBR0` it was formed under).
//!
//! Both are *architecturally invisible*: the simulated cycle count, the
//! TLB hit/miss/flush statistics, the memory access counters, and all
//! exception behaviour are bit-for-bit identical with the accelerator on
//! or off. Only host wall-clock time changes. Concretely:
//!
//! - a decode-cache hit bumps `PhysMem::reads` exactly as the `mem.read`
//!   it replaces would have;
//! - a translation-cache hit bumps `Tlb::hits` exactly as the `Tlb::lookup`
//!   it replaces would have (the entry provably still sits in the TLB —
//!   only a flush evicts, and a flush clears this cache);
//! - anything unusual — unaligned PC, a page not fully RAM-backed, a
//!   secure page fetched with non-secure attributes — falls back to the
//!   uncached path so faults are raised and counted identically.
//!
//! Invalidation: filling a page registers it with [`PhysMem`]'s code
//! watch; any write into a watched page bumps a generation counter that
//! the next fetch observes, dropping the whole cache. `Machine` also
//! drops it on `tlb_flush`, `load_ttbr0` and `note_pagetable_store`.
//!
//! # Superblocks
//!
//! On top of the decode cache sits a **superblock engine**: straight-line
//! traces of predecoded `(insn, cond)` entries, formed at a hot fetch and
//! ending at the first branch, PC-writing instruction, unhandled
//! exception source, or page boundary. Single-register loads and stores
//! are **memory-inclusive**: they ride inside the trace, executed through
//! the software data-TLB ([`crate::dtlb::DataTlb`]) hit path, with any
//! hazard stopping the block at an exactly-retired prefix. A trace is
//! validated **once** at entry (`(VA page, world, TTBR0, generation,
//! alignment)` — the same facts the per-instruction hot path re-checks
//! every step) and then executed in a tight loop by `Machine::run_user`,
//! with the TLB-hit / memory-read / cycle accounting batched per block so
//! the architecturally visible counters stay bit-for-bit identical to
//! per-instruction stepping (see `Block` for the admission rules that
//! make this sound). Blocks chain:
//! each records the block id its fall-through and taken-branch exits last
//! dispatched to, so steady-state loops skip even the hash probe.
//! Invalidation rides the existing generation mechanism — a bumped
//! generation (guest store, `mon_write`, page-table store) or an
//! accelerator-wide invalidation (`tlb_flush`, `load_ttbr0`) kills every
//! block along with the decoded pages they were built from.

use crate::decode::decode;
use crate::fxhash::FxHashMap;
use crate::insn::{Cond, Insn};
use crate::machine::cost;
use crate::mem::{AccessAttrs, PhysMem};
use crate::mode::World;
use crate::uop::UopTrace;
use crate::word::{page_base, page_offset, word_aligned, Addr, Word, WORD_BYTES};
use komodo_trace::{Event, FlightRecorder, InvalCause};

/// One physical code page, eagerly decoded.
#[derive(Clone, Debug)]
struct CachedPage {
    /// Whether the backing region is secure (for the bus-attribute check a
    /// real fetch would perform).
    secure: bool,
    /// `(word, decoded, condition)` per word of the page; the raw word is
    /// kept because exception paths report it (`ExitReason::Undefined`),
    /// and the condition field is pre-extracted so the hot path skips the
    /// [`Insn::cond`] dispatch.
    entries: Box<[(Word, Insn, Cond)]>,
}

/// The last successful instruction-fetch translation, with everything its
/// validity depends on.
#[derive(Clone, Copy, Debug)]
struct FetchEntry {
    va_page: Addr,
    pa_page: Addr,
    attrs: AccessAttrs,
    world: World,
    ttbr0: Addr,
}

/// Per-page decode cache (see module docs).
#[derive(Clone, Debug, Default)]
struct DecodeCache {
    pages: Vec<CachedPage>,
    index: FxHashMap<Addr, usize>,
    /// Last page served — straight-line code hits this without hashing.
    last: Option<(Addr, usize)>,
    /// Snapshot of `PhysMem::code_gen` the cached pages were filled under.
    gen: u64,
}

impl DecodeCache {
    fn clear(&mut self) {
        self.pages.clear();
        self.index.clear();
        self.last = None;
    }

    /// Decodes and caches the page at `base`; `None` if the page is not
    /// fully RAM-backed (such fetches stay on the uncached path).
    fn fill(&mut self, mem: &mut PhysMem, base: Addr) -> Option<usize> {
        let (words, secure) = mem.code_page_snapshot(base)?;
        let entries: Box<[(Word, Insn, Cond)]> = words
            .iter()
            .map(|&w| {
                let i = decode(w);
                let c = i.cond();
                (w, i, c)
            })
            .collect();
        mem.watch_code_page(base);
        let idx = self.pages.len();
        self.pages.push(CachedPage { secure, entries });
        self.index.insert(base, idx);
        self.last = Some((base, idx));
        Some(idx)
    }
}

/// A fused fast-path entry: the last fetch's translation *and* decoded
/// page, validated together so the common straight-line/loop case costs a
/// single compare chain per step. Only formed after the page's secure
/// attribute admitted the translation's bus attributes; a hit replays the
/// identical translation, so that check's outcome is unchanged and no
/// fault the uncached path would raise can be masked.
#[derive(Clone, Copy, Debug)]
struct HotFetch {
    va_page: Addr,
    world: World,
    ttbr0: Addr,
    idx: usize,
}

/// How a superblock's straight-line body ends.
#[derive(Clone, Copy, Debug)]
pub(crate) enum BlockEnd {
    /// A direct `B`/`BL`: the target is static, so the branch itself is
    /// part of the block (taken → `target`, not taken → fall through).
    Branch {
        /// The branch's condition field.
        cond: Cond,
        /// Absolute taken-branch target (`va + 8 + offset*4`).
        target: Addr,
        /// `BL`: write the return address to `LR` when taken.
        link: bool,
    },
    /// The next instruction is not block-safe (potential exception source,
    /// indirect control flow, memory access) or the page ended; execution
    /// falls through to the per-instruction path.
    Fallthrough,
}

/// Which way the last dispatched superblock exited — the key under which
/// its successor link is recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ExitKind {
    /// Fell through (body end, or branch condition false).
    Fall = 0,
    /// Took the ending branch.
    Taken = 1,
}

/// A superblock: a predecoded straight-line trace.
///
/// Admission rules (checked at build time, from the already-validated
/// decode cache): the body holds instructions that cannot touch the PC —
/// data-processing, multiply, `MOVW`/`MOVT`, `MRS`, and single-register
/// loads/stores (decode maps any PC-involving form to [`Insn::Unknown`],
/// which is never admitted). `LDM`/`STM`, `BX`, `SVC` and every
/// privileged/undefined instruction terminate the trace *before*
/// themselves; a direct `B`/`BL` terminates it *inclusively* (its target
/// is static). ALU-class body instructions can neither fault nor write
/// memory; loads/stores *can*, so the runner executes them only through
/// the data-TLB hit path and otherwise stops the block at the retired
/// prefix, falling back to exact per-instruction stepping (see
/// `Machine::step_superblock`). A store that bumps the code generation
/// retires and then stops the block the same way, so the generation
/// validated at entry never moves under instructions executed from the
/// trace.
#[derive(Clone, Debug)]
pub(crate) struct Block {
    /// Entry virtual address and the context it was built under; all
    /// three are re-validated on every dispatch.
    pub(crate) entry_va: Addr,
    pub(crate) world: World,
    pub(crate) ttbr0: Addr,
    /// The straight-line body (condition fields pre-extracted).
    pub(crate) body: Box<[(Insn, Cond)]>,
    /// How the trace ends.
    pub(crate) end: BlockEnd,
    /// Upper bound on the cycles one execution of the block can charge
    /// (every condition assumed true, branch assumed taken). Used to hoist
    /// the interrupt-wake compare out of the block: if
    /// `cycles + max_charge < wake`, no per-instruction wake check inside
    /// the block could have fired.
    pub(crate) max_charge: u64,
    /// Chained successors, indexed by [`ExitKind`]: the block id the
    /// corresponding exit last dispatched to. Purely a probe shortcut —
    /// the successor is re-validated like any dispatch, so a stale link
    /// costs a hash probe, never correctness.
    pub(crate) succ: [Option<u32>; 2],
    /// Dispatch hits since the block was built; crossing the promotion
    /// threshold triggers one-time micro-op specialisation.
    pub(crate) hot: u64,
    /// The specialised micro-op trace, once promoted. Dies with the
    /// block on every invalidation, so it needs no re-validation beyond
    /// the block's own.
    pub(crate) uop: Option<Box<UopTrace>>,
}

/// Index sentinel: "no worthwhile block starts at this address" (the entry
/// instruction already terminates the trace) — cached so hopeless PCs are
/// rejected with one probe instead of a rebuild attempt per dispatch.
const NO_BLOCK: u32 = u32::MAX;

/// Default dispatch-hit count at which a superblock is promoted to a
/// specialised micro-op trace. High enough that cold traces never pay
/// the one-time specialisation cost, low enough that a loop of any
/// interesting trip count runs specialised almost immediately.
const DEFAULT_UOP_THRESHOLD: u64 = 16;

/// Superblock-engine statistics, surfaced through
/// [`crate::Machine::superblock_stats`]. Host-side only — never part of
/// architectural state or machine equality.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SbStats {
    /// Traces built from decoded pages.
    pub built: u64,
    /// Dispatches served from the block cache (including chained ones).
    pub hits: u64,
    /// Dispatches resolved through a successor link, skipping the probe.
    pub chained: u64,
    /// Whole-cache invalidations caused by a code-generation bump (a store
    /// — guest, monitor, or in-block — landed in a watched code page).
    pub inval_code_gen: u64,
    /// Whole-cache invalidations driven by the TLB machinery (`tlb_flush`,
    /// `load_ttbr0`, page-table stores) or an accelerator toggle.
    pub inval_tlb: u64,
    /// Data-TLB lookups served (from [`crate::dtlb::DataTlb`], merged in
    /// by [`crate::Machine::superblock_stats`]).
    pub dtlb_hits: u64,
    /// Data-TLB lookups that missed or refused the fast path.
    pub dtlb_misses: u64,
    /// Data-TLB whole-cache invalidations across all causes.
    pub dtlb_invalidations: u64,
    /// Hot superblocks promoted to specialised micro-op traces.
    pub uop_promoted: u64,
    /// Dispatches executed through a specialised micro-op trace (counted
    /// when at least one instruction retired from it).
    pub uop_hits: u64,
    /// Whole-cache invalidations that dropped at least one specialised
    /// trace (micro-op traces die with their superblocks).
    pub uop_invalidations: u64,
}

impl SbStats {
    /// Total superblock-cache invalidations across both causes.
    pub fn invalidations(&self) -> u64 {
        self.inval_code_gen + self.inval_tlb
    }
}

/// Why the superblock cache is being dropped (statistics attribution).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SbInvalCause {
    /// The code generation moved: some store hit a watched code page.
    CodeGen,
    /// TLB/TTBR-driven (`tlb_flush`, `load_ttbr0`, page-table store) or an
    /// accelerator toggle.
    Tlb,
}

/// The block cache (see the module docs' *Superblocks* section).
#[derive(Clone, Debug, Default)]
struct SbCache {
    blocks: Vec<Block>,
    /// Entry VA → block id (or [`NO_BLOCK`]). Keyed by VA alone; the
    /// block's recorded world/`TTBR0` are validated on every hit.
    index: FxHashMap<Addr, u32>,
    /// Snapshot of `PhysMem::code_gen` the blocks were built under.
    gen: u64,
    /// The last block dispatched and how it exited — the chain source the
    /// next dispatch links (or follows).
    last: Option<(u32, ExitKind)>,
    stats: SbStats,
}

/// The fetch accelerator: decode cache + one-entry translation cache.
///
/// Lives in [`crate::Machine`] but is **not** architectural state: it is
/// excluded from machine equality and never affects simulated counters.
#[derive(Clone, Debug)]
pub struct FetchAccel {
    enabled: bool,
    dcache: DecodeCache,
    fetch_tc: Option<FetchEntry>,
    hot: Option<HotFetch>,
    /// Whether the superblock engine runs on top of the decode cache.
    sb_enabled: bool,
    /// Whether hot superblocks are promoted to micro-op traces.
    uop_enabled: bool,
    /// Dispatch hits before a superblock is specialised.
    uop_threshold: u64,
    sb: SbCache,
    /// Host-side statistics: fetches served from the decode cache.
    served: u64,
    /// Host-side statistics: pages decoded and cached.
    fills: u64,
}

impl FetchAccel {
    /// A fresh, enabled accelerator with nothing cached.
    pub fn new() -> FetchAccel {
        FetchAccel {
            enabled: true,
            dcache: DecodeCache::default(),
            fetch_tc: None,
            hot: None,
            sb_enabled: true,
            uop_enabled: true,
            uop_threshold: DEFAULT_UOP_THRESHOLD,
            sb: SbCache::default(),
            served: 0,
            fills: 0,
        }
    }

    /// Whether the accelerator is consulted at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns the accelerator on or off (off forces every fetch down the
    /// uncached path — used by the differential tests and benchmarks).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Drops every cached page, the translation entry, and all
    /// superblocks (a TLB/TTBR-driven or toggle invalidation; generation
    /// bumps are detected lazily in `FetchAccel::sb_dispatch` and
    /// `FetchAccel::fetch`).
    pub fn invalidate(&mut self) {
        self.dcache.clear();
        self.fetch_tc = None;
        self.hot = None;
        self.sb_invalidate(SbInvalCause::Tlb);
    }

    /// Whether the superblock engine is active (requires the accelerator
    /// itself to be enabled).
    pub fn superblocks_enabled(&self) -> bool {
        self.enabled && self.sb_enabled
    }

    /// Turns the superblock engine on or off, dropping all blocks either
    /// way. Off leaves the PR-1 accelerator layers (decode cache, fused
    /// hot fetch, translation caches) intact — used by the differential
    /// tests and benchmarks to isolate the engine's contribution.
    pub fn set_superblocks(&mut self, on: bool) {
        self.sb_enabled = on;
        self.sb_invalidate(SbInvalCause::Tlb);
    }

    /// Whether the micro-op specialisation tier is active (requires the
    /// superblock engine, and therefore the accelerator, to be enabled).
    pub fn uops_enabled(&self) -> bool {
        self.superblocks_enabled() && self.uop_enabled
    }

    /// Turns the micro-op tier on or off, dropping all blocks either way
    /// (their specialised traces die with them). Off leaves the
    /// superblock engine itself running — used by the differential tests
    /// and benchmarks to isolate the tier's contribution.
    pub fn set_uops(&mut self, on: bool) {
        self.uop_enabled = on;
        self.sb_invalidate(SbInvalCause::Tlb);
    }

    /// Sets the promotion threshold: dispatch hits a superblock must
    /// accumulate before it is specialised (clamped to at least 1; the
    /// differential tests lower it to force promotion quickly).
    pub fn set_uop_threshold(&mut self, hits: u64) {
        self.uop_threshold = hits.max(1);
    }

    /// Superblock-engine statistics.
    pub fn sb_stats(&self) -> SbStats {
        self.sb.stats
    }

    /// Number of superblocks currently cached.
    pub fn cached_blocks(&self) -> usize {
        self.sb.blocks.len()
    }

    /// Whether a superblock invalidation would be *counted* (blocks or
    /// index entries are cached) — the condition under which the machine
    /// records an `sb-inval` trace event, keeping events 1:1 with the
    /// statistics.
    pub(crate) fn sb_has_cached(&self) -> bool {
        !self.sb.blocks.is_empty() || !self.sb.index.is_empty()
    }

    /// Whether any cached superblock carries a specialised micro-op
    /// trace — the condition under which an invalidation is counted (and
    /// trace-evented) as a uop invalidation, keeping events 1:1 with the
    /// statistics.
    pub(crate) fn sb_has_uops(&self) -> bool {
        self.sb.blocks.iter().any(|b| b.uop.is_some())
    }

    /// Drops every superblock and the chain source, attributing the drop
    /// to `cause` (counted only when something was actually cached).
    fn sb_invalidate(&mut self, cause: SbInvalCause) {
        if self.sb_has_uops() {
            self.sb.stats.uop_invalidations += 1;
        }
        if !self.sb.blocks.is_empty() || !self.sb.index.is_empty() {
            match cause {
                SbInvalCause::CodeGen => self.sb.stats.inval_code_gen += 1,
                SbInvalCause::Tlb => self.sb.stats.inval_tlb += 1,
            }
        }
        self.sb.blocks.clear();
        self.sb.index.clear();
        self.sb.last = None;
    }

    /// Counts one dispatch hit against block `id` and specialises it
    /// into a micro-op trace once it crosses the promotion threshold.
    /// Called from the two cache-hit paths in [`FetchAccel::sb_dispatch`]
    /// — builds don't count, so a trace invalidated every dispatch never
    /// pays the specialisation cost.
    fn sb_promote_if_hot(&mut self, id: u32, trace: &mut FlightRecorder, cycle: u64) {
        if !self.uop_enabled {
            return;
        }
        let b = &mut self.sb.blocks[id as usize];
        if b.uop.is_some() {
            return;
        }
        b.hot += 1;
        if b.hot < self.uop_threshold {
            return;
        }
        let t = crate::uop::specialise(b);
        trace.record(
            cycle,
            Event::UopPromote {
                entry_va: b.entry_va,
                len: t.body.len() as u32,
            },
        );
        b.uop = Some(Box::new(t));
        self.sb.stats.uop_promoted += 1;
    }

    /// Counts trace executions through the specialised micro-op tier.
    /// One dispatch can carry several: a self-looping trace chains
    /// iterations without returning to the dispatcher, and each chained
    /// pass counts as a hit (the per-dispatch equivalent would have
    /// re-dispatched once per iteration).
    pub(crate) fn sb_note_uop_hits(&mut self, n: u64) {
        self.sb.stats.uop_hits += n;
    }

    /// Looks up (or builds) the superblock entered at `pc` under
    /// `(world, ttbr0)`, with `gen_now` the current `PhysMem::code_gen`.
    /// Returns its id, or `None` to stay on the per-instruction path.
    ///
    /// Probe order: the previous block's successor link for its recorded
    /// exit, then the entry-VA index, then a build attempt. Every path
    /// re-validates `(entry VA, world, TTBR0)` against the block and the
    /// cache-wide generation against `gen_now`, so a stale link or index
    /// entry is a missed shortcut, never a wrong dispatch.
    pub(crate) fn sb_dispatch(
        &mut self,
        pc: Addr,
        world: World,
        ttbr0: Addr,
        gen_now: u64,
        trace: &mut FlightRecorder,
        cycle: u64,
    ) -> Option<u32> {
        if !self.enabled || !self.sb_enabled {
            return None;
        }
        if self.sb.gen != gen_now {
            // A store landed in a watched code page: every block may hold
            // stale decodes of it.
            if self.sb_has_cached() {
                trace.record(
                    cycle,
                    Event::SbInval {
                        cause: InvalCause::CodeGen,
                    },
                );
            }
            if self.sb_has_uops() {
                trace.record(
                    cycle,
                    Event::UopInval {
                        cause: InvalCause::CodeGen,
                    },
                );
            }
            self.sb_invalidate(SbInvalCause::CodeGen);
            self.sb.gen = gen_now;
        }
        let prev = self.sb.last.take();
        if let Some((pid, kind)) = prev {
            if let Some(id) = self.sb.blocks[pid as usize].succ[kind as usize] {
                let b = &self.sb.blocks[id as usize];
                if b.entry_va == pc && b.world == world && b.ttbr0 == ttbr0 {
                    self.sb.stats.hits += 1;
                    self.sb.stats.chained += 1;
                    self.sb_promote_if_hot(id, trace, cycle);
                    return Some(id);
                }
            }
        }
        let id = match self.sb.index.get(&pc).copied() {
            Some(NO_BLOCK) => return None,
            Some(id) => {
                let b = &self.sb.blocks[id as usize];
                if b.world == world && b.ttbr0 == ttbr0 {
                    self.sb.stats.hits += 1;
                    self.sb_promote_if_hot(id, trace, cycle);
                    id
                } else {
                    // Same VA under a different context (the old block
                    // stays allocated but unreachable until invalidation).
                    self.sb_build(pc, world, ttbr0, gen_now, trace, cycle)?
                }
            }
            None => self.sb_build(pc, world, ttbr0, gen_now, trace, cycle)?,
        };
        if let Some((pid, kind)) = prev {
            // Remember where the previous block's exit led: next time the
            // same exit is taken, the probe above short-circuits.
            self.sb.blocks[pid as usize].succ[kind as usize] = Some(id);
        }
        Some(id)
    }

    /// Forms a trace starting at `pc` from the decoded page the hot-fetch
    /// entry points at (see [`Block`] for the admission rules).
    fn sb_build(
        &mut self,
        pc: Addr,
        world: World,
        ttbr0: Addr,
        gen_now: u64,
        trace: &mut FlightRecorder,
        cycle: u64,
    ) -> Option<u32> {
        if self.dcache.gen != gen_now || !word_aligned(pc) {
            return None; // Stale decodes; the per-insn fetch reconciles.
        }
        // Blocks are built only behind a validated hot-fetch entry for this
        // exact `(VA page, world, TTBR0)`: that entry carries the proof that
        // the translation is in the TLB and the secure-attribute check
        // passed, which is what entitles every instruction in the trace to
        // account `hit + read + INSN` exactly like the per-insn hot path.
        let h = self.hot.as_ref()?;
        if h.va_page != page_base(pc) || h.world != world || h.ttbr0 != ttbr0 {
            return None;
        }
        let page = &self.dcache.pages[h.idx];
        let start = (page_offset(pc) / WORD_BYTES) as usize;
        let mut body = Vec::new();
        let mut max_charge = 0u64;
        let mut end = BlockEnd::Fallthrough;
        for &(_, insn, cond) in &page.entries[start..] {
            match insn {
                Insn::Dp { .. } | Insn::Movw { .. } | Insn::Movt { .. } | Insn::Mrs { .. } => {
                    max_charge += cost::INSN;
                    body.push((insn, cond));
                }
                Insn::Mul { .. } => {
                    max_charge += cost::INSN + cost::MUL;
                    body.push((insn, cond));
                }
                // Single-register loads/stores are memory-inclusive: the
                // runner executes them through the data-TLB hit path and
                // stops the block at the retired prefix on any hazard
                // (miss, permission refusal, alignment, access fault,
                // watched-page store) — see `Machine::step_superblock`.
                Insn::Ldr { .. } | Insn::Str { .. } => {
                    max_charge += cost::INSN + cost::MEM;
                    body.push((insn, cond));
                }
                Insn::B { cond, offset } | Insn::Bl { cond, offset } => {
                    let va = pc.wrapping_add(body.len() as u32 * WORD_BYTES);
                    end = BlockEnd::Branch {
                        cond,
                        target: va
                            .wrapping_add(8)
                            .wrapping_add((offset as u32).wrapping_mul(4)),
                        link: matches!(insn, Insn::Bl { .. }),
                    };
                    max_charge += cost::INSN + cost::BRANCH_TAKEN;
                    break;
                }
                // Anything that can fault, write memory, or redirect the
                // PC ends the trace *before* itself.
                _ => break,
            }
        }
        let with_branch = matches!(end, BlockEnd::Branch { .. });
        if body.len() + (with_branch as usize) < 2 {
            // Too short to beat per-insn dispatch; remember that.
            self.sb.index.insert(pc, NO_BLOCK);
            return None;
        }
        let id = self.sb.blocks.len() as u32;
        trace.record(
            cycle,
            Event::SbBuild {
                entry_va: pc,
                len: (body.len() + with_branch as usize) as u32,
            },
        );
        self.sb.blocks.push(Block {
            entry_va: pc,
            world,
            ttbr0,
            body: body.into_boxed_slice(),
            end,
            max_charge,
            succ: [None, None],
            hot: 0,
            uop: None,
        });
        self.sb.index.insert(pc, id);
        self.sb.stats.built += 1;
        Some(id)
    }

    /// The block behind an id [`FetchAccel::sb_dispatch`] returned.
    ///
    /// Takes `&self` so the caller can hold the block while mutating the
    /// machine's other fields through split borrows.
    pub(crate) fn sb_block(&self, id: u32) -> &Block {
        &self.sb.blocks[id as usize]
    }

    /// Records how the dispatched block `id` exited after retiring
    /// `insns` instructions. `None` (wake fallback or a mid-block
    /// step-budget stop) breaks the chain.
    pub(crate) fn sb_note_exit(&mut self, id: u32, exit: Option<ExitKind>, insns: u64) {
        self.served += insns;
        self.sb.last = exit.map(|k| (id, k));
    }

    /// Number of pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.dcache.pages.len()
    }

    /// Fetches served from the decode cache (host-side statistic).
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Pages decoded and cached (host-side statistic).
    pub fn fills(&self) -> u64 {
        self.fills
    }

    /// The fused fast path: serves the instruction at virtual address `pc`
    /// when the last fetch's translation and decoded page both still apply
    /// (same VA page, world and `TTBR0`; no store into a watched code page
    /// since). On a hit the caller must account one TLB hit, one memory
    /// read and the instruction cycle — exactly what the uncached path
    /// would have recorded (see [`FetchAccel::fetch_tc_lookup`] and
    /// [`FetchAccel::fetch`], whose accounting this combines).
    #[inline]
    pub(crate) fn hot_fetch(
        &mut self,
        pc: Addr,
        world: World,
        ttbr0: Addr,
        mem: &PhysMem,
    ) -> Option<(Word, Insn, Cond)> {
        if !self.enabled {
            return None;
        }
        let h = self.hot.as_ref()?;
        if h.va_page != page_base(pc)
            || h.world != world
            || h.ttbr0 != ttbr0
            || self.dcache.gen != mem.code_gen()
            || !word_aligned(pc)
        {
            return None;
        }
        self.served += 1;
        let page = &self.dcache.pages[h.idx];
        Some(page.entries[(page_offset(pc) / WORD_BYTES) as usize])
    }

    /// Consults the one-entry translation cache for the fetch of `pc`.
    ///
    /// A hit is returned only if the entry was formed under the same world
    /// and `TTBR0`; the caller must account the TLB hit the lookup this
    /// replaces would have recorded.
    #[inline]
    pub(crate) fn fetch_tc_lookup(
        &self,
        pc: Addr,
        world: World,
        ttbr0: Addr,
    ) -> Option<(Addr, AccessAttrs)> {
        if !self.enabled {
            return None;
        }
        let e = self.fetch_tc.as_ref()?;
        if e.va_page == page_base(pc) && e.world == world && e.ttbr0 == ttbr0 {
            Some((e.pa_page | page_offset(pc), e.attrs))
        } else {
            None
        }
    }

    /// Records a successful fetch translation for `pc`.
    pub(crate) fn fetch_tc_fill(
        &mut self,
        pc: Addr,
        pa: Addr,
        attrs: AccessAttrs,
        world: World,
        ttbr0: Addr,
    ) {
        if !self.enabled {
            return;
        }
        self.fetch_tc = Some(FetchEntry {
            va_page: page_base(pc),
            pa_page: page_base(pa),
            attrs,
            world,
            ttbr0,
        });
    }

    /// Serves the instruction at physical address `ppc`, or `None` to send
    /// the fetch down the uncached path.
    ///
    /// On a hit this bumps `mem.reads` by one — the read the uncached path
    /// would have performed — keeping the access counters bit-identical.
    #[inline]
    pub(crate) fn fetch(
        &mut self,
        mem: &mut PhysMem,
        ppc: Addr,
        attrs: AccessAttrs,
    ) -> Option<(Word, Insn, Cond)> {
        if !self.enabled {
            return None;
        }
        if self.dcache.gen != mem.code_gen() {
            // A store landed in a watched code page since the last fetch.
            self.dcache.clear();
            self.hot = None;
            mem.clear_code_watch();
            self.dcache.gen = mem.code_gen();
        }
        if !word_aligned(ppc) {
            return None; // Let the uncached path raise the alignment fault.
        }
        let base = page_base(ppc);
        let idx = match self.dcache.last {
            Some((b, i)) if b == base => i,
            _ => match self.dcache.index.get(&base) {
                Some(&i) => {
                    self.dcache.last = Some((base, i));
                    i
                }
                None => {
                    let i = self.dcache.fill(mem, base)?;
                    self.fills += 1;
                    i
                }
            },
        };
        let page = &self.dcache.pages[idx];
        if page.secure && !attrs.secure {
            // The bus would reject this fetch; take the uncached path so
            // the fault is raised (and left uncounted) exactly as without
            // the cache.
            return None;
        }
        // Arm the fused fast path for the next step: the translation cache
        // already holds this page's mapping (the caller translates before
        // fetching), and the secure check above just passed for `attrs`,
        // which are the attributes that translation yields.
        if let Some(tc) = self.fetch_tc {
            if tc.pa_page == base {
                self.hot = Some(HotFetch {
                    va_page: tc.va_page,
                    world: tc.world,
                    ttbr0: tc.ttbr0,
                    idx,
                });
            }
        }
        mem.reads += 1; // The word read the uncached path would have done.
        self.served += 1;
        Some(page.entries[(page_offset(ppc) / WORD_BYTES) as usize])
    }
}

impl Default for FetchAccel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_with_code(words: &[Word], secure: bool) -> PhysMem {
        let mut m = PhysMem::new();
        m.add_region(0x8000_0000, 0x4000, secure);
        m.load_words(0x8000_2000, words).unwrap();
        m
    }

    #[test]
    fn hit_replays_word_and_counts_one_read() {
        let mut mem = mem_with_code(&[0xe3a0_0001, 0xef00_0000], true);
        let mut acc = FetchAccel::new();
        let r0 = mem.reads;
        let (w, i, c) = acc
            .fetch(&mut mem, 0x8000_2000, AccessAttrs::MONITOR)
            .unwrap();
        assert_eq!(w, 0xe3a0_0001);
        assert_eq!(i, decode(0xe3a0_0001));
        assert_eq!(c, i.cond());
        assert_eq!(mem.reads, r0 + 1, "hit must count exactly one read");
        assert_eq!(acc.cached_pages(), 1);
        assert_eq!(acc.fills(), 1);
        // Second fetch on the same page: served from cache, one more read.
        let (w, _, _) = acc
            .fetch(&mut mem, 0x8000_2004, AccessAttrs::MONITOR)
            .unwrap();
        assert_eq!(w, 0xef00_0000);
        assert_eq!(mem.reads, r0 + 2);
        assert_eq!(acc.served(), 2);
        assert_eq!(acc.fills(), 1);
    }

    #[test]
    fn write_to_cached_page_invalidates() {
        let mut mem = mem_with_code(&[0xe3a0_0001], true);
        let mut acc = FetchAccel::new();
        acc.fetch(&mut mem, 0x8000_2000, AccessAttrs::MONITOR)
            .unwrap();
        mem.write(0x8000_2000, 0xef00_0000, AccessAttrs::MONITOR)
            .unwrap();
        let (w, i, _) = acc
            .fetch(&mut mem, 0x8000_2000, AccessAttrs::MONITOR)
            .unwrap();
        assert_eq!(w, 0xef00_0000, "stale decode served after overwrite");
        assert_eq!(i, decode(0xef00_0000));
        assert_eq!(acc.fills(), 2, "page must be re-decoded after the store");
    }

    #[test]
    fn write_to_unwatched_page_keeps_cache() {
        let mut mem = mem_with_code(&[0xe3a0_0001], true);
        let mut acc = FetchAccel::new();
        acc.fetch(&mut mem, 0x8000_2000, AccessAttrs::MONITOR)
            .unwrap();
        // A data page the accelerator never cached.
        mem.write(0x8000_3000, 7, AccessAttrs::MONITOR).unwrap();
        acc.fetch(&mut mem, 0x8000_2000, AccessAttrs::MONITOR)
            .unwrap();
        assert_eq!(acc.fills(), 1, "unrelated stores must not invalidate");
    }

    #[test]
    fn secure_page_not_served_to_nonsecure_fetch() {
        let mut mem = mem_with_code(&[0xe3a0_0001], true);
        let mut acc = FetchAccel::new();
        acc.fetch(&mut mem, 0x8000_2000, AccessAttrs::MONITOR)
            .unwrap();
        let r0 = mem.reads;
        assert!(acc
            .fetch(&mut mem, 0x8000_2000, AccessAttrs::NORMAL)
            .is_none());
        assert_eq!(mem.reads, r0, "rejected fetch must not count a read");
    }

    #[test]
    fn unaligned_and_unmapped_fall_back() {
        let mut mem = mem_with_code(&[0xe3a0_0001], false);
        let mut acc = FetchAccel::new();
        assert!(acc
            .fetch(&mut mem, 0x8000_2002, AccessAttrs::NORMAL)
            .is_none());
        assert!(acc
            .fetch(&mut mem, 0x4000_0000, AccessAttrs::NORMAL)
            .is_none());
    }

    #[test]
    fn disabled_accelerator_serves_nothing() {
        let mut mem = mem_with_code(&[0xe3a0_0001], false);
        let mut acc = FetchAccel::new();
        acc.set_enabled(false);
        assert!(acc
            .fetch(&mut mem, 0x8000_2000, AccessAttrs::NORMAL)
            .is_none());
        assert!(acc
            .fetch_tc_lookup(0x8000, World::Secure, 0x8000_0000)
            .is_none());
    }

    #[test]
    fn fetch_tc_validates_world_and_ttbr0() {
        let mut acc = FetchAccel::new();
        acc.fetch_tc_fill(
            0x8123,
            0x8000_2123,
            AccessAttrs::ENCLAVE,
            World::Secure,
            0x8000_0000,
        );
        let (pa, attrs) = acc
            .fetch_tc_lookup(0x8ffc, World::Secure, 0x8000_0000)
            .unwrap();
        assert_eq!(pa, 0x8000_2ffc);
        assert_eq!(attrs, AccessAttrs::ENCLAVE);
        // Different page, world, or TTBR0: miss.
        assert!(acc
            .fetch_tc_lookup(0x9000, World::Secure, 0x8000_0000)
            .is_none());
        assert!(acc
            .fetch_tc_lookup(0x8ffc, World::Normal, 0x8000_0000)
            .is_none());
        assert!(acc
            .fetch_tc_lookup(0x8ffc, World::Secure, 0x8000_4000)
            .is_none());
    }
}
