//! A fast non-cryptographic hasher for the simulator's hot-path maps.
//!
//! The default `std` hasher (SipHash-1-3) is keyed and DoS-resistant, which
//! the TLB and decode-cache maps do not need: their keys are page-aligned
//! guest addresses produced by the simulated program, not attacker-chosen
//! host input, and lookups sit directly on the fetch path. This is the
//! multiply-xor scheme used by the Rust compiler's own tables ("FxHash"),
//! implemented locally because the build is hermetic (no crate registry).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash scheme (64-bit golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash state: one 64-bit word folded with rotate-xor-multiply.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u32(0x8000_2000);
        b.write_u32(0x8000_2000);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_nearby_pages() {
        let mut seen = std::collections::HashSet::new();
        for page in (0u32..64).map(|i| 0x8000_0000 + i * 0x1000) {
            let mut h = FxHasher::default();
            h.write_u32(page);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 64, "page-aligned keys must not collide");
    }

    #[test]
    fn map_and_set_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        m.insert(0x1000, 7);
        assert_eq!(m.get(&0x1000), Some(&7));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(0x2000);
        assert!(s.contains(&0x2000));
    }

    #[test]
    fn byte_writes_cover_partial_chunks() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3]); // Shorter than one 8-byte chunk.
        let short = h.finish();
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 0, 0, 0, 0, 0, 9]); // One full chunk plus a tail.
        assert_ne!(h.finish(), short);
    }
}
