//! Privilege modes and TrustZone worlds (paper §3.3, Figure 1).
//!
//! A TrustZone processor runs in one of two *worlds*; each world contains
//! user mode and five equally privileged exception modes, and secure world
//! adds a sixth privileged *monitor* mode used to switch worlds.

/// ARM processor mode, as encoded in `CPSR[4:0]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mode {
    /// Unprivileged execution (enclaves and normal-world applications).
    User,
    /// Supervisor mode; entered on reset and `SVC`.
    Supervisor,
    /// Abort mode; entered on data/prefetch aborts.
    Abort,
    /// Undefined mode; entered on undefined instructions.
    Undefined,
    /// IRQ mode; entered on normal interrupts.
    Irq,
    /// FIQ mode; entered on fast interrupts.
    Fiq,
    /// Monitor mode (secure world only); entered on `SMC` and, when so
    /// configured, on secure-world exceptions. Komodo's monitor runs here.
    Monitor,
    /// System mode: privileged, but shares the user-mode register bank.
    System,
}

impl Mode {
    /// The `CPSR[4:0]` encoding of this mode (ARM ARM B1.3.1).
    pub fn bits(self) -> u32 {
        match self {
            Mode::User => 0b10000,
            Mode::Fiq => 0b10001,
            Mode::Irq => 0b10010,
            Mode::Supervisor => 0b10011,
            Mode::Monitor => 0b10110,
            Mode::Abort => 0b10111,
            Mode::Undefined => 0b11011,
            Mode::System => 0b11111,
        }
    }

    /// Decodes a mode from `CPSR[4:0]`; `None` for reserved encodings.
    pub fn from_bits(bits: u32) -> Option<Mode> {
        match bits & 0x1f {
            0b10000 => Some(Mode::User),
            0b10001 => Some(Mode::Fiq),
            0b10010 => Some(Mode::Irq),
            0b10011 => Some(Mode::Supervisor),
            0b10110 => Some(Mode::Monitor),
            0b10111 => Some(Mode::Abort),
            0b11011 => Some(Mode::Undefined),
            0b11111 => Some(Mode::System),
            _ => None,
        }
    }

    /// Whether the mode is privileged.
    pub fn privileged(self) -> bool {
        self != Mode::User
    }

    /// Whether this mode has a banked `SPSR`.
    ///
    /// User and System modes have no `SPSR` (ARM ARM B1.3.2).
    pub fn has_spsr(self) -> bool {
        !matches!(self, Mode::User | Mode::System)
    }

    /// Whether this mode has banked `SP`/`LR`.
    ///
    /// System mode shares the user-mode bank.
    pub fn has_banked_sp_lr(self) -> bool {
        !matches!(self, Mode::User | Mode::System)
    }

    /// All modelled modes.
    pub const ALL: [Mode; 8] = [
        Mode::User,
        Mode::Supervisor,
        Mode::Abort,
        Mode::Undefined,
        Mode::Irq,
        Mode::Fiq,
        Mode::Monitor,
        Mode::System,
    ];
}

/// TrustZone world.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum World {
    /// Secure world: the Komodo monitor and enclaves.
    Secure,
    /// Normal (non-secure) world: the untrusted OS and applications.
    Normal,
}

impl World {
    /// The other world.
    pub fn other(self) -> World {
        match self {
            World::Secure => World::Normal,
            World::Normal => World::Secure,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_bits_roundtrip() {
        for m in Mode::ALL {
            assert_eq!(Mode::from_bits(m.bits()), Some(m));
        }
    }

    #[test]
    fn reserved_encodings_rejected() {
        assert_eq!(Mode::from_bits(0b00000), None);
        assert_eq!(Mode::from_bits(0b11010), None);
    }

    #[test]
    fn privilege_and_banking() {
        assert!(!Mode::User.privileged());
        assert!(Mode::Monitor.privileged());
        assert!(!Mode::User.has_spsr());
        assert!(!Mode::System.has_spsr());
        assert!(Mode::Monitor.has_spsr());
        assert!(!Mode::System.has_banked_sp_lr());
        assert!(Mode::Irq.has_banked_sp_lr());
    }

    #[test]
    fn world_other() {
        assert_eq!(World::Secure.other(), World::Normal);
        assert_eq!(World::Normal.other(), World::Secure);
    }
}
