//! Software data-TLB: a direct-mapped user-translation cache.
//!
//! [`Machine::translate_user`](crate::Machine::translate_user) pays a hash
//! probe of the architectural [`Tlb`](crate::tlb::Tlb) map on every data
//! access; the superblock engine cannot afford even that on its in-block
//! memory fast path. [`DataTlb`] fronts the map with a small direct-mapped
//! array keyed on `(VA page, world, TTBR0)`, holding the resolved
//! [`Translation`], the physical frame, the bus attributes the access will
//! carry, and precomputed read/write permission verdicts.
//!
//! Like the fetch accelerator it is **architecturally invisible** — host
//! state only, excluded from machine equality, bit-for-bit neutral on every
//! simulated counter. The accounting argument mirrors the fetch-side
//! translation cache:
//!
//! - An entry is formed only after a successful `translate_user`, which
//!   left the translation in the architectural TLB. The TLB evicts only on
//!   a full flush, and a flush drops this cache — so a hit here proves the
//!   map probe it replaces would also have hit, and the caller accounts
//!   exactly one `Tlb::hits`.
//! - The permission verdicts are pure functions of the cached
//!   [`Translation`] (`perms.r` / `perms.w` — precisely what
//!   [`ptw::check_access`](crate::ptw::check_access) tests for a
//!   non-executing user access), so serving them is the same computation
//!   the uncached path performs.
//!
//! Invalidation: the [`Machine`](crate::Machine) drops all entries on
//! `tlb_flush`, on `TTBR0` loads and page-table stores, and on TrustZone
//! world switches (`SCR.NS` writes through
//! [`Machine::set_scr_ns`](crate::Machine::set_scr_ns)). Entries are also
//! keyed on world and `TTBR0`, so the drops are hygiene plus statistics —
//! a stale entry could never validate — but they keep the invalidation
//! story identical to the fetch side's.

use crate::mem::AccessAttrs;
use crate::mode::World;
use crate::ptw::Translation;
use crate::word::{page_base, page_offset, Addr};

/// Number of direct-mapped entries (a power of two; index is the low bits
/// of the VA page number).
const ENTRIES: usize = 64;

/// One resolved user translation with its precomputed access verdicts.
#[derive(Clone, Copy, Debug)]
struct Entry {
    va_page: Addr,
    world: World,
    ttbr0: Addr,
    /// The raw translation, replayed to `translate_user` on a hit so the
    /// uncached path's permission check runs on identical inputs.
    t: Translation,
    /// Physical page base (`t.pa & !0xfff`).
    pa_page: Addr,
    /// Bus attributes a user access through this mapping carries.
    attrs: AccessAttrs,
    /// Precomputed `check_access(read)` outcome for a user data access.
    read_ok: bool,
    /// Precomputed `check_access(write)` outcome for a user data access.
    write_ok: bool,
}

/// Which machinery dropped the data-TLB (statistics only — every cause
/// clears the same state).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DTlbInval {
    /// `tlb_flush` (the validity anchor: TLB residency) or an accelerator
    /// toggle.
    Flush,
    /// A `TTBR0` load or page-table store.
    Ttbr,
    /// A TrustZone world switch (`SCR.NS` write).
    World,
}

/// Data-TLB statistics, surfaced through
/// [`Machine::superblock_stats`](crate::Machine::superblock_stats) and
/// [`Machine::dtlb_stats`](crate::Machine::dtlb_stats). Host-side only.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DTlbStats {
    /// Lookups served (including verdict-bearing block-path lookups).
    pub hits: u64,
    /// Lookups that missed or refused the fast path (stale entry, wrong
    /// context, or a precomputed verdict forcing the exact slow path).
    pub misses: u64,
    /// Whole-cache drops caused by `tlb_flush`.
    pub inval_flush: u64,
    /// Whole-cache drops caused by `TTBR0` loads / page-table stores.
    pub inval_ttbr: u64,
    /// Whole-cache drops caused by world switches.
    pub inval_world: u64,
}

impl DTlbStats {
    /// Total whole-cache invalidations across all causes.
    pub fn invalidations(&self) -> u64 {
        self.inval_flush + self.inval_ttbr + self.inval_world
    }
}

/// The software data-TLB (see module docs).
#[derive(Clone, Debug)]
pub struct DataTlb {
    enabled: bool,
    entries: [Option<Entry>; ENTRIES],
    stats: DTlbStats,
}

impl DataTlb {
    /// A fresh, enabled data-TLB with nothing cached.
    pub fn new() -> DataTlb {
        DataTlb {
            enabled: true,
            entries: [None; ENTRIES],
            stats: DTlbStats::default(),
        }
    }

    /// Whether the cache is consulted at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns the cache on or off, dropping all entries either way (the
    /// baseline differential configuration runs with it off).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        self.entries = [None; ENTRIES];
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DTlbStats {
        self.stats
    }

    /// Number of live entries (test introspection).
    pub fn live_entries(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Drops every entry, attributing the drop to `cause`. Counted only
    /// when something was actually cached, mirroring the superblock
    /// cache's convention.
    pub fn invalidate(&mut self, cause: DTlbInval) {
        if self.entries.iter().any(|e| e.is_some()) {
            match cause {
                DTlbInval::Flush => self.stats.inval_flush += 1,
                DTlbInval::Ttbr => self.stats.inval_ttbr += 1,
                DTlbInval::World => self.stats.inval_world += 1,
            }
        }
        self.entries = [None; ENTRIES];
    }

    #[inline]
    fn slot(va: Addr) -> usize {
        ((va >> 12) as usize) & (ENTRIES - 1)
    }

    /// Records a translation that a successful `translate_user` just left
    /// in the architectural TLB, with its verdicts precomputed.
    #[inline]
    pub fn fill(&mut self, va: Addr, world: World, ttbr0: Addr, t: Translation) {
        if !self.enabled {
            return;
        }
        self.entries[Self::slot(va)] = Some(Entry {
            va_page: page_base(va),
            world,
            ttbr0,
            t,
            pa_page: t.pa & !0xfff,
            attrs: AccessAttrs {
                secure: world == World::Secure && !t.ns,
                privileged: false,
            },
            read_ok: t.perms.r,
            write_ok: t.perms.w,
        });
    }

    /// Consults the cache for the raw [`Translation`] of `va` — the
    /// `translate_user` path. The caller must account the `Tlb::hits` the
    /// map probe this replaces would have recorded, and still runs the
    /// per-access permission check.
    #[inline]
    pub fn lookup_translation(
        &mut self,
        va: Addr,
        world: World,
        ttbr0: Addr,
    ) -> Option<Translation> {
        if !self.enabled {
            return None;
        }
        if let Some(e) = &self.entries[Self::slot(va)] {
            if e.va_page == page_base(va) && e.world == world && e.ttbr0 == ttbr0 {
                self.stats.hits += 1;
                return Some(e.t);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// The superblock engine's in-block probe: translation *and* verdict
    /// in one step. Returns the physical address and bus attributes only
    /// when the entry matches **and** its precomputed verdict admits the
    /// access kind; any other outcome — miss, stale context, or a verdict
    /// that would fault — returns `None`, forcing the caller onto the
    /// exact per-instruction path (which re-translates, accounts, and
    /// raises the fault bit-for-bit as the uncached path would).
    #[inline]
    pub fn lookup_data(
        &mut self,
        va: Addr,
        world: World,
        ttbr0: Addr,
        write: bool,
    ) -> Option<(Addr, AccessAttrs)> {
        if !self.enabled {
            return None;
        }
        if let Some(e) = &self.entries[Self::slot(va)] {
            if e.va_page == page_base(va)
                && e.world == world
                && e.ttbr0 == ttbr0
                && if write { e.write_ok } else { e.read_ok }
            {
                self.stats.hits += 1;
                return Some((e.pa_page | page_offset(va), e.attrs));
            }
        }
        self.stats.misses += 1;
        None
    }
}

impl Default for DataTlb {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ptw::PagePerms;

    fn rw_translation(pa: Addr) -> Translation {
        Translation {
            pa,
            perms: PagePerms::RW,
            ns: false,
        }
    }

    fn ro_translation(pa: Addr) -> Translation {
        Translation {
            pa,
            perms: PagePerms {
                r: true,
                w: false,
                x: false,
            },
            ns: false,
        }
    }

    #[test]
    fn fill_then_lookup_hits_same_context_only() {
        let mut d = DataTlb::new();
        d.fill(
            0x9123,
            World::Secure,
            0x8000_0000,
            rw_translation(0x8000_3000),
        );
        assert!(d
            .lookup_translation(0x9ffc, World::Secure, 0x8000_0000)
            .is_some());
        assert!(d
            .lookup_translation(0x9ffc, World::Normal, 0x8000_0000)
            .is_none());
        assert!(d
            .lookup_translation(0x9ffc, World::Secure, 0x8000_4000)
            .is_none());
        assert_eq!(d.stats().hits, 1);
        assert_eq!(d.stats().misses, 2);
    }

    #[test]
    fn data_lookup_enforces_precomputed_verdict() {
        let mut d = DataTlb::new();
        d.fill(
            0x8000,
            World::Secure,
            0x8000_0000,
            ro_translation(0x8000_2000),
        );
        let (pa, attrs) = d
            .lookup_data(0x8010, World::Secure, 0x8000_0000, false)
            .unwrap();
        assert_eq!(pa, 0x8000_2010);
        assert!(attrs.secure && !attrs.privileged);
        // The write verdict is false: the fast path must refuse, so the
        // exact path raises the permission fault.
        assert!(d
            .lookup_data(0x8010, World::Secure, 0x8000_0000, true)
            .is_none());
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut d = DataTlb::new();
        d.fill(0x9000, World::Secure, 0, rw_translation(0x8000_3000));
        // Same slot (VA pages 64 entries apart), different page: evicts.
        let conflict = 0x9000 + (ENTRIES as u32) * 0x1000;
        d.fill(conflict, World::Secure, 0, rw_translation(0x8004_3000));
        assert!(d.lookup_translation(0x9000, World::Secure, 0).is_none());
        assert!(d.lookup_translation(conflict, World::Secure, 0).is_some());
    }

    #[test]
    fn invalidation_counts_by_cause_only_when_nonempty() {
        let mut d = DataTlb::new();
        d.invalidate(DTlbInval::Flush); // Empty: uncounted.
        assert_eq!(d.stats().invalidations(), 0);
        d.fill(0x9000, World::Secure, 0, rw_translation(0x8000_3000));
        d.invalidate(DTlbInval::Flush);
        d.fill(0x9000, World::Secure, 0, rw_translation(0x8000_3000));
        d.invalidate(DTlbInval::Ttbr);
        d.fill(0x9000, World::Secure, 0, rw_translation(0x8000_3000));
        d.invalidate(DTlbInval::World);
        let s = d.stats();
        assert_eq!(
            (s.inval_flush, s.inval_ttbr, s.inval_world),
            (1, 1, 1),
            "each cause must be attributed separately"
        );
        assert_eq!(s.invalidations(), 3);
        assert_eq!(d.live_entries(), 0);
    }

    #[test]
    fn disabled_serves_and_caches_nothing() {
        let mut d = DataTlb::new();
        d.set_enabled(false);
        d.fill(0x9000, World::Secure, 0, rw_translation(0x8000_3000));
        assert!(d.lookup_translation(0x9000, World::Secure, 0).is_none());
        assert!(d.lookup_data(0x9000, World::Secure, 0, false).is_none());
        assert_eq!(d.live_entries(), 0);
    }
}
