//! Program status registers (`CPSR`/`SPSR`).
//!
//! The paper models "portions of the current and saved program status
//! registers": the NZCV condition flags, the IRQ/FIQ mask bits, and the
//! mode field. Those are exactly the fields here.

use crate::mode::Mode;

/// A program status register view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Psr {
    /// Negative flag.
    pub n: bool,
    /// Zero flag.
    pub z: bool,
    /// Carry flag.
    pub c: bool,
    /// Overflow flag.
    pub v: bool,
    /// IRQ mask (`CPSR.I`): when set, IRQs are not taken.
    pub irq_masked: bool,
    /// FIQ mask (`CPSR.F`): when set, FIQs are not taken.
    pub fiq_masked: bool,
    /// Processor mode field.
    pub mode: Mode,
}

impl Psr {
    /// A PSR for fresh user-mode execution: flags clear, interrupts enabled.
    pub fn user() -> Psr {
        Psr {
            n: false,
            z: false,
            c: false,
            v: false,
            irq_masked: false,
            fiq_masked: false,
            mode: Mode::User,
        }
    }

    /// A PSR for privileged mode `mode` with interrupts masked, as
    /// established by exception entry.
    pub fn privileged(mode: Mode) -> Psr {
        Psr {
            n: false,
            z: false,
            c: false,
            v: false,
            irq_masked: true,
            fiq_masked: true,
            mode,
        }
    }

    /// Encodes to the architectural 32-bit format (flags in `[31:28]`,
    /// `I`/`F` in bits 7/6, mode in `[4:0]`).
    pub fn encode(self) -> u32 {
        (self.n as u32) << 31
            | (self.z as u32) << 30
            | (self.c as u32) << 29
            | (self.v as u32) << 28
            | (self.irq_masked as u32) << 7
            | (self.fiq_masked as u32) << 6
            | self.mode.bits()
    }

    /// Decodes from the architectural format; `None` on a reserved mode.
    pub fn decode(bits: u32) -> Option<Psr> {
        Some(Psr {
            n: bits & (1 << 31) != 0,
            z: bits & (1 << 30) != 0,
            c: bits & (1 << 29) != 0,
            v: bits & (1 << 28) != 0,
            irq_masked: bits & (1 << 7) != 0,
            fiq_masked: bits & (1 << 6) != 0,
            mode: Mode::from_bits(bits & 0x1f)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for mode in Mode::ALL {
            for bits in 0..32u32 {
                let p = Psr {
                    n: bits & 1 != 0,
                    z: bits & 2 != 0,
                    c: bits & 4 != 0,
                    v: bits & 8 != 0,
                    irq_masked: bits & 16 != 0,
                    fiq_masked: false,
                    mode,
                };
                assert_eq!(Psr::decode(p.encode()), Some(p));
            }
        }
    }

    #[test]
    fn user_psr_unmasked() {
        let p = Psr::user();
        assert!(!p.irq_masked && !p.fiq_masked);
        assert_eq!(p.mode, Mode::User);
    }

    #[test]
    fn privileged_psr_masked() {
        let p = Psr::privileged(Mode::Monitor);
        assert!(p.irq_masked && p.fiq_masked);
    }

    #[test]
    fn decode_reserved_mode_fails() {
        assert_eq!(Psr::decode(0b00001), None);
    }
}
