//! Core register file with per-mode banking (paper §5.1).
//!
//! "The 32-bit ARM architecture includes a register banking feature that we
//! also model: the SP, LR and SPSR registers are banked according to the
//! current mode." FIQ-only banked registers (`R8_fiq`–`R12_fiq`) are not
//! modelled, matching the paper.

use crate::mode::Mode;
use crate::psr::Psr;
use crate::word::Word;

/// A core register name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Reg {
    /// General-purpose register R0..R12.
    R(u8),
    /// Stack pointer (R13), banked per mode.
    Sp,
    /// Link register (R14), banked per mode.
    Lr,
}

impl Reg {
    /// The architectural register number (0..=14).
    pub fn index(self) -> u8 {
        match self {
            Reg::R(n) => {
                debug_assert!(n <= 12);
                n
            }
            Reg::Sp => 13,
            Reg::Lr => 14,
        }
    }

    /// Builds a register from its architectural number; `None` for 15 (`PC`
    /// is not a general register in this model) or out-of-range values.
    pub fn from_index(n: u8) -> Option<Reg> {
        match n {
            0..=12 => Some(Reg::R(n)),
            13 => Some(Reg::Sp),
            14 => Some(Reg::Lr),
            _ => None,
        }
    }

    /// All 15 modelled registers, in architectural order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0u8..15).map(|n| Reg::from_index(n).expect("0..15 are valid"))
    }
}

/// Which banked copy of `SP`/`LR`/`SPSR` a mode uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Bank {
    /// Shared user/system bank.
    Usr,
    /// Supervisor bank.
    Svc,
    /// Abort bank.
    Abt,
    /// Undefined bank.
    Und,
    /// IRQ bank.
    Irq,
    /// FIQ bank.
    Fiq,
    /// Monitor bank (secure world).
    Mon,
}

impl Bank {
    /// The bank used by `mode` for `SP`/`LR`.
    pub fn of(mode: Mode) -> Bank {
        match mode {
            Mode::User | Mode::System => Bank::Usr,
            Mode::Supervisor => Bank::Svc,
            Mode::Abort => Bank::Abt,
            Mode::Undefined => Bank::Und,
            Mode::Irq => Bank::Irq,
            Mode::Fiq => Bank::Fiq,
            Mode::Monitor => Bank::Mon,
        }
    }

    /// All banks, in a fixed order.
    pub const ALL: [Bank; 7] = [
        Bank::Usr,
        Bank::Svc,
        Bank::Abt,
        Bank::Und,
        Bank::Irq,
        Bank::Fiq,
        Bank::Mon,
    ];

    fn idx(self) -> usize {
        match self {
            Bank::Usr => 0,
            Bank::Svc => 1,
            Bank::Abt => 2,
            Bank::Und => 3,
            Bank::Irq => 4,
            Bank::Fiq => 5,
            Bank::Mon => 6,
        }
    }
}

/// The full banked register file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegFile {
    /// R0..R12, shared across modes (FIQ banking not modelled).
    gpr: [Word; 13],
    /// Banked stack pointers, indexed by [`Bank`].
    sp: [Word; 7],
    /// Banked link registers, indexed by [`Bank`].
    lr: [Word; 7],
    /// Banked saved PSRs; `None` until first written. `Usr` slot unused.
    spsr: [Option<Psr>; 7],
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegFile {
    /// A zeroed register file.
    pub fn new() -> RegFile {
        RegFile {
            gpr: [0; 13],
            sp: [0; 7],
            lr: [0; 7],
            spsr: [None; 7],
        }
    }

    /// Reads `reg` as seen from `mode`.
    #[inline]
    pub fn get(&self, mode: Mode, reg: Reg) -> Word {
        match reg {
            Reg::R(n) => self.gpr[n as usize],
            Reg::Sp => self.sp[Bank::of(mode).idx()],
            Reg::Lr => self.lr[Bank::of(mode).idx()],
        }
    }

    /// Writes `reg` as seen from `mode`.
    #[inline]
    pub fn set(&mut self, mode: Mode, reg: Reg, val: Word) {
        match reg {
            Reg::R(n) => self.gpr[n as usize] = val,
            Reg::Sp => self.sp[Bank::of(mode).idx()] = val,
            Reg::Lr => self.lr[Bank::of(mode).idx()] = val,
        }
    }

    /// Reads a banked `SP` directly (monitor save/restore paths).
    pub fn sp_banked(&self, bank: Bank) -> Word {
        self.sp[bank.idx()]
    }

    /// Writes a banked `SP` directly.
    pub fn set_sp_banked(&mut self, bank: Bank, val: Word) {
        self.sp[bank.idx()] = val;
    }

    /// Reads a banked `LR` directly.
    pub fn lr_banked(&self, bank: Bank) -> Word {
        self.lr[bank.idx()]
    }

    /// Writes a banked `LR` directly.
    pub fn set_lr_banked(&mut self, bank: Bank, val: Word) {
        self.lr[bank.idx()] = val;
    }

    /// Reads the `SPSR` of `mode`; `None` if the mode has none or it was
    /// never written.
    pub fn spsr(&self, mode: Mode) -> Option<Psr> {
        if !mode.has_spsr() {
            return None;
        }
        self.spsr[Bank::of(mode).idx()]
    }

    /// Writes the `SPSR` of `mode`. Writes for modes without an `SPSR` are
    /// ignored (architecturally unpredictable; the model drops them).
    pub fn set_spsr(&mut self, mode: Mode, psr: Psr) {
        if mode.has_spsr() {
            self.spsr[Bank::of(mode).idx()] = Some(psr);
        }
    }

    /// Snapshot of the user-visible registers R0..R12, SP_usr, LR_usr.
    ///
    /// This is the state an enclave sees and the state the monitor must
    /// save/restore and scrub on world switches.
    pub fn user_visible(&self) -> [Word; 15] {
        let mut out = [0; 15];
        out[..13].copy_from_slice(&self.gpr);
        out[13] = self.sp[Bank::Usr.idx()];
        out[14] = self.lr[Bank::Usr.idx()];
        out
    }

    /// Overwrites the user-visible registers from a snapshot.
    pub fn set_user_visible(&mut self, vals: &[Word; 15]) {
        self.gpr.copy_from_slice(&vals[..13]);
        self.sp[Bank::Usr.idx()] = vals[13];
        self.lr[Bank::Usr.idx()] = vals[14];
    }

    /// Zeroes the user-visible registers (information-leak scrubbing on
    /// enclave exit, per the Komodo specification §5.2).
    pub fn scrub_user_visible(&mut self) {
        self.set_user_visible(&[0; 15]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_index_roundtrip() {
        for r in Reg::all() {
            assert_eq!(Reg::from_index(r.index()), Some(r));
        }
        assert_eq!(Reg::from_index(15), None);
    }

    #[test]
    fn sp_is_banked_per_mode() {
        let mut rf = RegFile::new();
        rf.set(Mode::User, Reg::Sp, 0x1000);
        rf.set(Mode::Monitor, Reg::Sp, 0x2000);
        rf.set(Mode::Irq, Reg::Sp, 0x3000);
        assert_eq!(rf.get(Mode::User, Reg::Sp), 0x1000);
        assert_eq!(rf.get(Mode::Monitor, Reg::Sp), 0x2000);
        assert_eq!(rf.get(Mode::Irq, Reg::Sp), 0x3000);
        // System mode shares the user bank.
        assert_eq!(rf.get(Mode::System, Reg::Sp), 0x1000);
    }

    #[test]
    fn gprs_shared_across_modes() {
        let mut rf = RegFile::new();
        rf.set(Mode::User, Reg::R(5), 42);
        assert_eq!(rf.get(Mode::Monitor, Reg::R(5)), 42);
    }

    #[test]
    fn spsr_banked_and_guarded() {
        let mut rf = RegFile::new();
        assert_eq!(rf.spsr(Mode::User), None);
        rf.set_spsr(Mode::User, Psr::user()); // Dropped.
        assert_eq!(rf.spsr(Mode::User), None);
        rf.set_spsr(Mode::Monitor, Psr::user());
        rf.set_spsr(Mode::Irq, Psr::privileged(Mode::Irq));
        assert_eq!(rf.spsr(Mode::Monitor), Some(Psr::user()));
        assert_eq!(rf.spsr(Mode::Irq), Some(Psr::privileged(Mode::Irq)));
    }

    #[test]
    fn user_visible_roundtrip_and_scrub() {
        let mut rf = RegFile::new();
        let mut snap = [0u32; 15];
        for (i, s) in snap.iter_mut().enumerate() {
            *s = (i as u32 + 1) * 0x11;
        }
        rf.set_user_visible(&snap);
        rf.set(Mode::Monitor, Reg::Sp, 0xdead); // Monitor bank unaffected by scrub.
        assert_eq!(rf.user_visible(), snap);
        rf.scrub_user_visible();
        assert_eq!(rf.user_visible(), [0; 15]);
        assert_eq!(rf.get(Mode::Monitor, Reg::Sp), 0xdead);
    }
}
