//! User-mode execution: fetch, decode, execute, take exceptions.
//!
//! Only unprivileged guest code (enclaves and normal-world processes) is
//! executed instruction-by-instruction; the monitor runs at the exception
//! boundaries this loop produces. Exceptions record their cause in the
//! fault-status registers and switch the machine into the appropriate
//! banked mode before returning an [`ExitReason`] to the privileged caller.

use crate::alu::{alu, alu_value, eval_op2, eval_op2_value};
use crate::cp15::FaultStatus;
use crate::decode::decode;
use crate::error::{MemFault, MemFaultKind};
use crate::exn::ExceptionKind;
use crate::insn::{Cond, Insn, LsmMode, MemOffset};
use crate::machine::{cost, Machine, ModelViolation};
use crate::mem::AccessAttrs;
use crate::mode::{Mode, World};
use crate::ptw::{self, PtwFault};
use crate::regs::Reg;
use crate::word::{Addr, Word};

/// Why user-mode execution stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitReason {
    /// `SVC` executed; the machine is in Supervisor mode.
    Svc {
        /// The instruction's 24-bit comment field.
        imm24: u32,
    },
    /// An IRQ was taken; the machine is in IRQ mode.
    Irq,
    /// An FIQ was taken; the machine is in FIQ mode.
    Fiq,
    /// A data access faulted; the machine is in Abort mode with
    /// `DFSR`/`DFAR` set.
    DataAbort(MemFault),
    /// Instruction fetch faulted; the machine is in Abort mode with
    /// `IFSR` set.
    PrefetchAbort(Addr),
    /// Undefined instruction (including privileged instructions from user
    /// mode); the machine is in Undefined mode.
    Undefined(Word),
    /// The step budget ran out with no exception; machine still in user
    /// mode (simulation artifact, not an architectural event).
    StepLimit,
}

fn fault_status(kind: MemFaultKind) -> FaultStatus {
    match kind {
        MemFaultKind::Translation => FaultStatus::Translation,
        MemFaultKind::Permission => FaultStatus::Permission,
        MemFaultKind::Unaligned => FaultStatus::Alignment,
        MemFaultKind::Unmapped | MemFaultKind::SecurityViolation => FaultStatus::External,
    }
}

impl Machine {
    /// Translates a user-mode virtual address for the current world,
    /// consulting and filling the TLB, and checking permissions.
    ///
    /// Returns the physical address and the bus attributes the access
    /// carries: a secure-world access through an `NS`-tagged mapping is
    /// driven onto the bus as non-secure (§3.3).
    pub fn translate_user(
        &mut self,
        va: Addr,
        write: bool,
        exec: bool,
    ) -> Result<(Addr, AccessAttrs), MemFault> {
        let world = self.world();
        let ttbr0 = self.cp15.mmu(world).ttbr0;
        // The accelerator's one-entry cache fronts the TLB map: a hit
        // accounts the TLB hit the map probe would have recorded (the
        // entry is provably still in the TLB — see `data_tc_lookup`), and
        // the permission check below still runs per access.
        let t = match self.accel.data_tc_lookup(va, world, ttbr0) {
            Some(t) => {
                self.tlb.hits += 1;
                t
            }
            None => {
                let t = match self.tlb.lookup(va) {
                    Some(t) => t,
                    None => {
                        self.charge(cost::TLB_WALK);
                        // Count the miss here, at the walk site, so that
                        // faulting walks (which never reach `insert`) are
                        // included — they charged `cost::TLB_WALK` like
                        // any other walk.
                        self.tlb.note_walk();
                        match ptw::walk(&mut self.mem, ttbr0, va) {
                            Ok(t) => {
                                self.tlb.insert(va, t);
                                t
                            }
                            Err(PtwFault::Translation) => {
                                return Err(MemFault::new(va, MemFaultKind::Translation, write));
                            }
                            Err(PtwFault::External(f)) => return Err(f),
                        }
                    }
                };
                self.accel.data_tc_fill(va, world, ttbr0, t);
                t
            }
        };
        ptw::check_access(&t, va, write, exec)?;
        let pa = (t.pa & !0xfff) | (va & 0xfff);
        let attrs = AccessAttrs {
            secure: world == World::Secure && !t.ns,
            privileged: false,
        };
        Ok((pa, attrs))
    }

    /// Runs user-mode code from the current `pc` until an exception or the
    /// step budget is exhausted.
    ///
    /// Model contract (enforced, mirroring the specification's
    /// preconditions): the machine must be in user mode with a consistent
    /// TLB.
    pub fn run_user(&mut self, max_steps: u64) -> Result<ExitReason, ModelViolation> {
        if self.cpsr.mode != Mode::User {
            return Err(ModelViolation::NotUserMode);
        }
        if !self.tlb.is_consistent() {
            return Err(ModelViolation::TlbInconsistent);
        }
        // `irq_at`/`fiq_at` are set only between runs, so the earliest
        // cycle either could fire is loop-invariant: one compare per step
        // replaces the two `Option` tests on the hot path.
        let fiq_deadline = self.fiq_at.unwrap_or(u64::MAX);
        let irq_deadline = self.irq_at.unwrap_or(u64::MAX);
        let wake = fiq_deadline.min(irq_deadline);
        let mut need_first_cycle = self.first_user_insn_cycle.is_none();
        // The TrustZone world and fetch TTBR0 are fixed for the whole run:
        // user code cannot switch mode, `SCR.NS` or `TTBR0` without an
        // exception, and every exception path exits this loop.
        let world = self.world();
        let ttbr0 = self.cp15.mmu(world).ttbr0;
        for _ in 0..max_steps {
            // Pending interrupts are taken before the next instruction;
            // FIQ has priority.
            if self.cycles >= wake {
                if self.cycles >= fiq_deadline && !self.cpsr.fiq_masked {
                    self.take_exception(ExceptionKind::Fiq, self.pc);
                    return Ok(ExitReason::Fiq);
                }
                if self.cycles >= irq_deadline && !self.cpsr.irq_masked {
                    self.take_exception(ExceptionKind::Irq, self.pc);
                    return Ok(ExitReason::Irq);
                }
            }
            if need_first_cycle {
                self.first_user_insn_cycle = Some(self.cycles);
                need_first_cycle = false;
            }
            match self.step(world, ttbr0) {
                StepOutcome::Continue => {}
                StepOutcome::Exit(reason) => return Ok(reason),
            }
        }
        Ok(ExitReason::StepLimit)
    }

    /// Translates the fetch of `pc`, consulting the accelerator's one-entry
    /// last-code-page cache before the TLB.
    ///
    /// A cache hit accounts one TLB hit: the entry was formed by a
    /// successful [`Machine::translate_user`], the TLB evicts only on a
    /// full flush, and a flush drops this cache — so the TLB provably still
    /// holds the entry and the uncached path would have hit it. World and
    /// `TTBR0` are re-validated on every use, so the replayed translation
    /// (and the permission check baked into it) is exactly what the
    /// uncached path would recompute.
    fn fetch_translate(
        &mut self,
        pc: Addr,
        world: World,
        ttbr0: Addr,
    ) -> Result<(Addr, AccessAttrs), MemFault> {
        if let Some(hit) = self.accel.fetch_tc_lookup(pc, world, ttbr0) {
            self.tlb.hits += 1;
            return Ok(hit);
        }
        let r = self.translate_user(pc, false, true);
        if let Ok((pa, attrs)) = r {
            self.accel.fetch_tc_fill(pc, pa, attrs, world, ttbr0);
        }
        r
    }

    fn step(&mut self, world: World, ttbr0: Addr) -> StepOutcome {
        let pc = self.pc;
        // Fused fast path: translation and decoded page validated in one
        // compare chain. A hit accounts the same TLB hit, instruction
        // cycle and memory read the full path below records — see
        // `FetchAccel::hot_fetch` for the validity argument.
        if let Some((word, insn, cond)) = self.accel.hot_fetch(pc, world, ttbr0, &self.mem) {
            self.tlb.hits += 1;
            self.charge(cost::INSN);
            self.mem.reads += 1;
            if !self.cond_holds(cond) {
                self.pc = pc.wrapping_add(4);
                return StepOutcome::Continue;
            }
            return self.execute(insn, word);
        }
        // Fetch.
        let (ppc, fattrs) = match self.fetch_translate(pc, world, ttbr0) {
            Ok(x) => x,
            Err(f) => {
                self.cp15.ifsr = fault_status(f.kind);
                self.take_exception(ExceptionKind::PrefetchAbort, pc);
                return StepOutcome::Exit(ExitReason::PrefetchAbort(pc));
            }
        };
        self.charge(cost::INSN);
        // Decode, via the per-page decode cache when possible. A cache hit
        // bumps `mem.reads` itself; a `None` fall-through performs the
        // plain counted read, so the counters agree bit-for-bit. The cache
        // also carries the precomputed condition field (`Insn::cond` is a
        // pure function of the word, so caching it is invisible).
        let (word, insn, cond) = match self.accel.fetch(&mut self.mem, ppc, fattrs) {
            Some(e) => e,
            None => match self.mem.read(ppc, fattrs) {
                Ok(w) => {
                    let i = decode(w);
                    (w, i, i.cond())
                }
                Err(_) => {
                    self.cp15.ifsr = FaultStatus::External;
                    self.take_exception(ExceptionKind::PrefetchAbort, pc);
                    return StepOutcome::Exit(ExitReason::PrefetchAbort(pc));
                }
            },
        };
        if !self.cond_holds(cond) {
            self.pc = pc.wrapping_add(4);
            return StepOutcome::Continue;
        }
        self.execute(insn, word)
    }

    fn cond_holds(&self, cond: Cond) -> bool {
        let p = self.cpsr;
        match cond {
            Cond::Eq => p.z,
            Cond::Ne => !p.z,
            Cond::Cs => p.c,
            Cond::Cc => !p.c,
            Cond::Mi => p.n,
            Cond::Pl => !p.n,
            Cond::Vs => p.v,
            Cond::Vc => !p.v,
            Cond::Hi => p.c && !p.z,
            Cond::Ls => !p.c || p.z,
            Cond::Ge => p.n == p.v,
            Cond::Lt => p.n != p.v,
            Cond::Gt => !p.z && p.n == p.v,
            Cond::Le => p.z || p.n != p.v,
            Cond::Al => true,
        }
    }

    fn undefined(&mut self, word: Word) -> StepOutcome {
        self.take_exception(ExceptionKind::Undefined, self.pc.wrapping_add(4));
        StepOutcome::Exit(ExitReason::Undefined(word))
    }

    fn data_abort(&mut self, f: MemFault) -> StepOutcome {
        self.cp15.dfsr = fault_status(f.kind);
        self.cp15.dfar = f.addr;
        self.take_exception(ExceptionKind::DataAbort, self.pc);
        StepOutcome::Exit(ExitReason::DataAbort(f))
    }

    fn user_load(&mut self, va: Addr, byte: bool) -> Result<Word, MemFault> {
        let (pa, attrs) = self.translate_user(va, false, false)?;
        self.charge(cost::MEM);
        if byte {
            self.mem.read_byte(pa, attrs).map(|b| b as u32)
        } else {
            self.mem.read(pa, attrs)
        }
    }

    fn user_store(&mut self, va: Addr, val: Word, byte: bool) -> Result<(), MemFault> {
        let (pa, attrs) = self.translate_user(va, true, false)?;
        self.charge(cost::MEM);
        if byte {
            self.mem.write_byte(pa, val as u8, attrs)
        } else {
            self.mem.write(pa, val, attrs)
        }
    }

    fn execute(&mut self, insn: Insn, word: Word) -> StepOutcome {
        let next = self.pc.wrapping_add(4);
        match insn {
            Insn::Dp {
                op, s, rd, rn, op2, ..
            } => {
                if !s && !op.is_compare() {
                    // Flags-free fast path: skip the NZCV computation the
                    // full ALU always performs. `alu_value` is proven
                    // equivalent to `alu(..).value` by the
                    // `dp_value_path_matches_full_alu` test.
                    let carry = self.cpsr.c;
                    let v = alu_value(
                        op,
                        self.reg(rn),
                        eval_op2_value(op2, |r| self.reg(r)),
                        carry,
                    );
                    self.set_reg(rd, v);
                } else {
                    let carry = self.cpsr.c;
                    let sh = eval_op2(op2, carry, |r| self.reg(r));
                    let res = alu(op, self.reg(rn), sh, self.cpsr);
                    if let Some(v) = res.value {
                        self.set_reg(rd, v);
                    }
                    self.cpsr.n = res.n;
                    self.cpsr.z = res.z;
                    self.cpsr.c = res.c;
                    self.cpsr.v = res.v;
                }
                self.pc = next;
            }
            Insn::Mul { s, rd, rm, rs, .. } => {
                self.charge(cost::MUL);
                let v = self.reg(rm).wrapping_mul(self.reg(rs));
                self.set_reg(rd, v);
                if s {
                    self.cpsr.n = v & 0x8000_0000 != 0;
                    self.cpsr.z = v == 0;
                }
                self.pc = next;
            }
            Insn::Movw { rd, imm16, .. } => {
                self.set_reg(rd, imm16 as u32);
                self.pc = next;
            }
            Insn::Movt { rd, imm16, .. } => {
                let lo = self.reg(rd) & 0xffff;
                self.set_reg(rd, ((imm16 as u32) << 16) | lo);
                self.pc = next;
            }
            Insn::Ldr {
                rd, rn, off, byte, ..
            } => {
                let va = self.mem_ea(rn, off);
                match self.user_load(va, byte) {
                    Ok(v) => {
                        self.set_reg(rd, v);
                        self.pc = next;
                    }
                    Err(f) => return self.data_abort(f),
                }
            }
            Insn::Str {
                rd, rn, off, byte, ..
            } => {
                let va = self.mem_ea(rn, off);
                let v = self.reg(rd);
                match self.user_store(va, v, byte) {
                    Ok(()) => self.pc = next,
                    Err(f) => return self.data_abort(f),
                }
            }
            Insn::Ldm {
                rn,
                writeback,
                regs,
                mode,
                ..
            } => {
                let n = regs.count_ones();
                let base = self.reg(rn);
                let start = match mode {
                    LsmMode::Ia => base,
                    LsmMode::Db => base.wrapping_sub(4 * n),
                };
                // Base-in-list semantics are pinned: with the base in the
                // list the loaded value ends up in Rn (writeback forms
                // with the base listed are rejected at decode, so the
                // load can never be silently clobbered by writeback).
                let mut addr = start;
                for i in 0..15u8 {
                    if regs & (1 << i) != 0 {
                        let r = Reg::from_index(i).expect("bit 15 excluded by decode");
                        match self.user_load(addr, false) {
                            Ok(v) => self.set_reg(r, v),
                            Err(f) => return self.data_abort(f),
                        }
                        addr = addr.wrapping_add(4);
                    }
                }
                debug_assert!(!writeback || regs & (1 << rn.index()) == 0);
                if writeback {
                    let nb = match mode {
                        LsmMode::Ia => base.wrapping_add(4 * n),
                        LsmMode::Db => start,
                    };
                    self.set_reg(rn, nb);
                }
                self.pc = next;
            }
            Insn::Stm {
                rn,
                writeback,
                regs,
                mode,
                ..
            } => {
                let n = regs.count_ones();
                let base = self.reg(rn);
                let start = match mode {
                    LsmMode::Ia => base,
                    LsmMode::Db => base.wrapping_sub(4 * n),
                };
                // Base-in-list semantics are pinned: the *original* base
                // value is stored (writeback happens after all stores, and
                // decode rejects writeback forms with the base listed).
                let mut addr = start;
                for i in 0..15u8 {
                    if regs & (1 << i) != 0 {
                        let r = Reg::from_index(i).expect("bit 15 excluded by decode");
                        let v = self.reg(r);
                        if let Err(f) = self.user_store(addr, v, false) {
                            return self.data_abort(f);
                        }
                        addr = addr.wrapping_add(4);
                    }
                }
                debug_assert!(!writeback || regs & (1 << rn.index()) == 0);
                if writeback {
                    let nb = match mode {
                        LsmMode::Ia => base.wrapping_add(4 * n),
                        LsmMode::Db => start,
                    };
                    self.set_reg(rn, nb);
                }
                self.pc = next;
            }
            Insn::B { offset, .. } => {
                self.charge(cost::BRANCH_TAKEN);
                self.pc = self
                    .pc
                    .wrapping_add(8)
                    .wrapping_add((offset as u32).wrapping_mul(4));
            }
            Insn::Bl { offset, .. } => {
                self.charge(cost::BRANCH_TAKEN);
                self.set_reg(Reg::Lr, next);
                self.pc = self
                    .pc
                    .wrapping_add(8)
                    .wrapping_add((offset as u32).wrapping_mul(4));
            }
            Insn::Bx { rm, .. } => {
                let target = self.reg(rm);
                if target & 1 != 0 {
                    return self.undefined(word); // Thumb interworking unmodelled.
                }
                self.charge(cost::BRANCH_TAKEN);
                self.pc = target;
            }
            Insn::Svc { imm24, .. } => {
                self.take_exception(ExceptionKind::Svc, next);
                return StepOutcome::Exit(ExitReason::Svc { imm24 });
            }
            Insn::Mrs { rd, .. } => {
                self.set_reg(rd, self.cpsr.encode());
                self.pc = next;
            }
            // Privileged instructions from user mode are undefined; so is
            // anything outside the modelled subset.
            Insn::Smc { .. } | Insn::Mcr { .. } | Insn::Mrc { .. } => {
                return self.undefined(word);
            }
            Insn::Udf { .. } | Insn::Unknown(_) => return self.undefined(word),
        }
        StepOutcome::Continue
    }

    fn mem_ea(&self, rn: Reg, off: MemOffset) -> Addr {
        let base = self.reg(rn);
        match off {
            MemOffset::Imm { imm12, add } => {
                if add {
                    base.wrapping_add(imm12 as u32)
                } else {
                    base.wrapping_sub(imm12 as u32)
                }
            }
            MemOffset::Reg { rm, add } => {
                let o = self.reg(rm);
                if add {
                    base.wrapping_add(o)
                } else {
                    base.wrapping_sub(o)
                }
            }
        }
    }
}

enum StepOutcome {
    Continue,
    Exit(ExitReason),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psr::Psr;
    use crate::ptw::{l1_coarse_desc, l2_page_desc, PagePerms};

    /// Builds a machine with one code page at VA 0x8000 and one data page
    /// at VA 0x9000, both backed by secure memory, running in secure user
    /// mode (an enclave-like configuration).
    fn guest_machine(code: &[Word]) -> Machine {
        guest_machine_with_perms(code, PagePerms::RX)
    }

    /// As [`guest_machine`], with chosen permissions on the code page
    /// (RWX enables the self-modifying-code tests).
    fn guest_machine_with_perms(code: &[Word], code_perms: PagePerms) -> Machine {
        let mut m = Machine::new();
        m.mem.add_region(0x0000_0000, 0x10_0000, false);
        m.mem.add_region(0x8000_0000, 0x10_0000, true);
        let ttbr0 = 0x8000_0000u32; // L1 table page.
        let l2_page = 0x8000_1000u32;
        let code_pa = 0x8000_2000u32;
        let data_pa = 0x8000_3000u32;
        // VA 0x8000 and 0x9000 share L1 slot 0.
        m.mem
            .write(ttbr0, l1_coarse_desc(l2_page), AccessAttrs::MONITOR)
            .unwrap();
        m.mem
            .write(
                l2_page + (0x8 * 4),
                l2_page_desc(code_pa, code_perms, false),
                AccessAttrs::MONITOR,
            )
            .unwrap();
        m.mem
            .write(
                l2_page + (0x9 * 4),
                l2_page_desc(data_pa, PagePerms::RW, false),
                AccessAttrs::MONITOR,
            )
            .unwrap();
        m.mem.load_words(code_pa, code).unwrap();
        m.cp15.mmu_mut(World::Secure).ttbr0 = ttbr0;
        m.cpsr = Psr::user();
        m.pc = 0x8000;
        m
    }

    use crate::asm::Assembler;

    #[test]
    fn runs_straight_line_code_and_svc() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm(Reg::R(0), 5);
        a.add_imm(Reg::R(0), Reg::R(0), 37);
        a.svc(0);
        let mut m = guest_machine(&a.words());
        let exit = m.run_user(100).unwrap();
        assert_eq!(exit, ExitReason::Svc { imm24: 0 });
        assert_eq!(m.regs.get(Mode::User, Reg::R(0)), 42);
        assert_eq!(m.cpsr.mode, Mode::Supervisor);
    }

    #[test]
    fn loop_with_branch() {
        // r0 = sum 1..=10 via a countdown loop.
        let mut a = Assembler::new(0x8000);
        a.mov_imm(Reg::R(0), 0);
        a.mov_imm(Reg::R(1), 10);
        let top = a.label();
        a.add_reg(Reg::R(0), Reg::R(0), Reg::R(1));
        a.subs_imm(Reg::R(1), Reg::R(1), 1);
        a.b_to(Cond::Ne, top);
        a.svc(0);
        let mut m = guest_machine(&a.words());
        let exit = m.run_user(1000).unwrap();
        assert_eq!(exit, ExitReason::Svc { imm24: 0 });
        assert_eq!(m.regs.get(Mode::User, Reg::R(0)), 55);
    }

    #[test]
    fn load_store_roundtrip() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(1), 0x9000);
        a.mov_imm32(Reg::R(0), 0xdead_beef);
        a.str_imm(Reg::R(0), Reg::R(1), 0x10);
        a.ldr_imm(Reg::R(2), Reg::R(1), 0x10);
        a.svc(0);
        let mut m = guest_machine(&a.words());
        m.run_user(100).unwrap();
        assert_eq!(m.regs.get(Mode::User, Reg::R(2)), 0xdead_beef);
    }

    #[test]
    fn store_to_code_page_aborts() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(1), 0x8000);
        a.str_imm(Reg::R(0), Reg::R(1), 0);
        let mut m = guest_machine(&a.words());
        let exit = m.run_user(100).unwrap();
        assert!(matches!(exit, ExitReason::DataAbort(f) if f.kind == MemFaultKind::Permission));
        assert_eq!(m.cpsr.mode, Mode::Abort);
        assert_eq!(m.cp15.dfsr, FaultStatus::Permission);
        assert_eq!(m.cp15.dfar, 0x8000);
    }

    #[test]
    fn unmapped_va_aborts() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(1), 0x0010_0000);
        a.ldr_imm(Reg::R(0), Reg::R(1), 0);
        let mut m = guest_machine(&a.words());
        let exit = m.run_user(100).unwrap();
        assert!(matches!(exit, ExitReason::DataAbort(f) if f.kind == MemFaultKind::Translation));
    }

    #[test]
    fn privileged_instructions_undefined_from_user() {
        for word in [
            0xe160_0070u32, /* smc */
            0xee00_0f10,    /* mcr p15 */
        ] {
            let mut m = guest_machine(&[word]);
            let exit = m.run_user(10).unwrap();
            assert!(matches!(exit, ExitReason::Undefined(_)), "{word:#x}");
            assert_eq!(m.cpsr.mode, Mode::Undefined);
        }
    }

    #[test]
    fn unknown_word_undefined() {
        let mut m = guest_machine(&[0xffff_ffff]);
        assert!(matches!(m.run_user(10).unwrap(), ExitReason::Undefined(_)));
    }

    #[test]
    fn irq_preempts_when_unmasked() {
        let mut a = Assembler::new(0x8000);
        let top = a.label();
        a.add_imm(Reg::R(0), Reg::R(0), 1);
        a.b_to(Cond::Al, top);
        let mut m = guest_machine(&a.words());
        m.irq_at = Some(m.cycles + 50);
        let exit = m.run_user(1_000_000).unwrap();
        assert_eq!(exit, ExitReason::Irq);
        assert_eq!(m.cpsr.mode, Mode::Irq);
        // The interrupted PC is preserved in LR_irq for resumption.
        let lr = m.regs.lr_banked(crate::regs::Bank::Irq);
        assert!((0x8000..0x8008).contains(&lr));
    }

    #[test]
    fn step_limit_returns_without_exception() {
        let mut a = Assembler::new(0x8000);
        let top = a.label();
        a.b_to(Cond::Al, top);
        let mut m = guest_machine(&a.words());
        assert_eq!(m.run_user(10).unwrap(), ExitReason::StepLimit);
        assert_eq!(m.cpsr.mode, Mode::User);
    }

    #[test]
    fn run_user_enforces_model_contract() {
        let mut m = guest_machine(&[0xe320_f000]);
        m.tlb.mark_inconsistent();
        assert_eq!(m.run_user(1), Err(ModelViolation::TlbInconsistent));
        m.tlb.flush();
        m.cpsr = Psr::privileged(Mode::Monitor);
        assert_eq!(m.run_user(1), Err(ModelViolation::NotUserMode));
    }

    #[test]
    fn svc_return_address_resumes_after_svc() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm(Reg::R(0), 1);
        a.svc(0);
        a.mov_imm(Reg::R(0), 2);
        a.svc(0);
        let mut m = guest_machine(&a.words());
        assert!(matches!(m.run_user(100).unwrap(), ExitReason::Svc { .. }));
        assert_eq!(m.regs.get(Mode::User, Reg::R(0)), 1);
        // Monitor-style resume: exception return continues after the SVC.
        m.exception_return().unwrap();
        assert!(matches!(m.run_user(100).unwrap(), ExitReason::Svc { .. }));
        assert_eq!(m.regs.get(Mode::User, Reg::R(0)), 2);
    }

    #[test]
    fn function_call_with_bl_bx() {
        let mut a = Assembler::new(0x8000);
        let call = a.bl_fixup(Cond::Al);
        a.svc(0);
        let func = a.here();
        a.fix_branch(call, func);
        a.mov_imm(Reg::R(0), 99);
        a.bx(Reg::Lr);
        let mut m = guest_machine(&a.words());
        m.run_user(100).unwrap();
        assert_eq!(m.regs.get(Mode::User, Reg::R(0)), 99);
    }

    #[test]
    fn push_pop_with_stack() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::Sp, 0xa000); // Top of data page.
        a.mov_imm(Reg::R(4), 11);
        a.mov_imm(Reg::R(5), 22);
        a.push(&[Reg::R(4), Reg::R(5)]);
        a.mov_imm(Reg::R(4), 0);
        a.mov_imm(Reg::R(5), 0);
        a.pop(&[Reg::R(4), Reg::R(5)]);
        a.svc(0);
        let mut m = guest_machine(&a.words());
        m.run_user(100).unwrap();
        assert_eq!(m.regs.get(Mode::User, Reg::R(4)), 11);
        assert_eq!(m.regs.get(Mode::User, Reg::R(5)), 22);
        assert_eq!(m.regs.get(Mode::User, Reg::Sp), 0xa000);
    }

    #[test]
    fn conditional_execution_skips() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm(Reg::R(0), 1);
        a.cmp_imm(Reg::R(0), 2);
        a.emit(Insn::Dp {
            cond: Cond::Eq, // Not taken.
            op: crate::insn::DpOp::Mov,
            s: false,
            rd: Reg::R(1),
            rn: Reg::R(0),
            op2: crate::insn::Op2::imm(7),
        });
        a.svc(0);
        let mut m = guest_machine(&a.words());
        m.run_user(100).unwrap();
        assert_eq!(m.regs.get(Mode::User, Reg::R(1)), 0);
    }

    #[test]
    fn tlb_caches_translations() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(1), 0x9000);
        for i in 0..8 {
            a.str_imm(Reg::R(0), Reg::R(1), (i * 4) as u16);
        }
        a.svc(0);
        let mut m = guest_machine(&a.words());
        m.run_user(100).unwrap();
        // One walk for the code page, one for the data page; the rest hit.
        assert_eq!(m.tlb.misses, 2);
        assert!(m.tlb.hits > 8);
    }

    /// Regression: a walk that *faults* must still count as a TLB miss —
    /// it charged `cost::TLB_WALK` like any successful walk. The miss used
    /// to be counted in `Tlb::insert`, which faulting walks never reach.
    #[test]
    fn faulting_walk_counts_as_tlb_miss() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(1), 0x0010_0000); // Unmapped VA.
        a.ldr_imm(Reg::R(0), Reg::R(1), 0);
        let mut m = guest_machine(&a.words());
        let exit = m.run_user(100).unwrap();
        assert!(matches!(exit, ExitReason::DataAbort(_)));
        // One successful walk (code page) + one faulting walk (bad VA).
        assert_eq!(m.tlb.misses, 2);
    }

    /// LDM with the base register in the list (no writeback) is pinned:
    /// the loaded value ends up in the base register.
    #[test]
    fn ldm_base_in_list_gets_loaded_value() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(1), 0x9000);
        a.emit(Insn::Ldm {
            cond: Cond::Al,
            rn: Reg::R(1),
            writeback: false,
            regs: 0b0111, // r0, r1 (the base), r2.
            mode: LsmMode::Ia,
        });
        a.svc(0);
        let mut m = guest_machine(&a.words());
        m.mem.load_words(0x8000_3000, &[10, 20, 30]).unwrap();
        m.run_user(100).unwrap();
        assert_eq!(m.regs.get(Mode::User, Reg::R(0)), 10);
        assert_eq!(m.regs.get(Mode::User, Reg::R(1)), 20, "loaded value wins");
        assert_eq!(m.regs.get(Mode::User, Reg::R(2)), 30);
    }

    /// STM with the base register in the list (no writeback) is pinned:
    /// the *original* base value is what reaches memory.
    #[test]
    fn stm_base_in_list_stores_original_base() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(1), 0x9000);
        a.mov_imm(Reg::R(0), 5);
        a.mov_imm(Reg::R(2), 6);
        a.emit(Insn::Stm {
            cond: Cond::Al,
            rn: Reg::R(1),
            writeback: false,
            regs: 0b0111,
            mode: LsmMode::Ia,
        });
        a.svc(0);
        let mut m = guest_machine(&a.words());
        m.run_user(100).unwrap();
        assert_eq!(
            m.mem.dump_words(0x8000_3000, 3).unwrap(),
            vec![5, 0x9000, 6],
            "original base must be stored"
        );
    }

    /// The UNPREDICTABLE combination — writeback with the base listed —
    /// is rejected at decode and raises an undefined-instruction
    /// exception, for both LDM and STM.
    #[test]
    fn lsm_writeback_base_in_list_raises_undefined() {
        use crate::encode::encode;
        for load in [true, false] {
            let insn = if load {
                Insn::Ldm {
                    cond: Cond::Al,
                    rn: Reg::R(1),
                    writeback: true,
                    regs: 0b0010, // Base r1 in the list.
                    mode: LsmMode::Ia,
                }
            } else {
                Insn::Stm {
                    cond: Cond::Al,
                    rn: Reg::R(1),
                    writeback: true,
                    regs: 0b0010,
                    mode: LsmMode::Ia,
                }
            };
            let mut m = guest_machine(&[encode(insn)]);
            let exit = m.run_user(10).unwrap();
            assert!(matches!(exit, ExitReason::Undefined(_)), "load={load}");
            assert_eq!(m.cpsr.mode, Mode::Undefined);
        }
    }

    /// A store into the page being executed must be visible to the very
    /// next fetch — the decode cache may never serve a stale instruction.
    /// Run the same self-modifying program with the accelerator on and
    /// off; behaviour and all architectural state must match exactly.
    #[test]
    fn self_modifying_code_invalidates_decode_cache() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(1), 0x8000); // Code page VA.
        a.mov_imm32(Reg::R(0), 0xe3a0_2007); // Encoding of `mov r2, #7`.
        let slot = a.len() as u16 + 1; // Word index of the slot below.
        a.str_imm(Reg::R(0), Reg::R(1), slot * 4);
        a.mov_imm(Reg::R(2), 99); // The slot: overwritten before it runs.
        a.svc(0);
        let code = a.words();

        let run = |accel: bool| {
            let mut m = guest_machine_with_perms(&code, PagePerms::RWX);
            m.set_fetch_accel(accel);
            let exit = m.run_user(100).unwrap();
            assert_eq!(exit, ExitReason::Svc { imm24: 0 }, "accel={accel}");
            assert_eq!(
                m.regs.get(Mode::User, Reg::R(2)),
                7,
                "stale decode executed (accel={accel})"
            );
            m
        };
        let cached = run(true);
        let uncached = run(false);
        assert!(cached == uncached, "architectural state diverged");
    }

    /// A monitor write (`mon_write`) into a cached code page invalidates
    /// the cached decode, so resumed execution sees the new instruction.
    #[test]
    fn mon_write_into_cached_code_page_invalidates() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm(Reg::R(0), 1);
        a.svc(0);
        let mut m = guest_machine(&a.words());
        m.run_user(100).unwrap();
        assert_eq!(m.regs.get(Mode::User, Reg::R(0)), 1);
        assert!(m.accel.served() > 0, "decode cache should have engaged");
        // The monitor rewrites the first instruction to `mov r0, #7`.
        m.mon_write(0x8000_2000, 0xe3a0_0007).unwrap();
        m.exception_return().unwrap();
        m.pc = 0x8000;
        m.run_user(100).unwrap();
        assert_eq!(
            m.regs.get(Mode::User, Reg::R(0)),
            7,
            "stale decode served after monitor write"
        );
    }

    /// `tlb_flush` drops the accelerator's cached pages and translation
    /// entry (their validity arguments are anchored to TLB residency),
    /// and execution afterwards is still correct.
    #[test]
    fn tlb_flush_drops_fetch_accelerator_state() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm(Reg::R(0), 1);
        a.svc(0);
        let mut m = guest_machine(&a.words());
        m.run_user(100).unwrap();
        assert!(m.accel.cached_pages() > 0);
        m.tlb_flush();
        assert_eq!(m.accel.cached_pages(), 0, "flush must drop cached pages");
        m.exception_return().unwrap();
        m.pc = 0x8000;
        assert_eq!(m.run_user(100).unwrap(), ExitReason::Svc { imm24: 0 });
    }

    /// An `ldr` from the RX code page primes the accelerator's data-side
    /// translation cache; the `str` through the same mapping must still
    /// abort — permissions are re-checked on every access, cache or not.
    #[test]
    fn data_cache_hit_still_faults_on_write_to_readonly_page() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(8), 0x8000);
        a.ldr_imm(Reg::R(0), Reg::R(8), 0);
        a.str_imm(Reg::R(0), Reg::R(8), 0);
        a.svc(0);
        let run = |accel: bool| {
            let mut m = guest_machine(&a.words());
            m.set_fetch_accel(accel);
            let exit = m.run_user(100).unwrap();
            (m, exit)
        };
        let (m_on, e_on) = run(true);
        let (m_off, e_off) = run(false);
        assert!(matches!(e_on, ExitReason::DataAbort(_)), "{e_on:?}");
        assert_eq!(e_on, e_off);
        assert!(m_on == m_off, "architectural state diverged");
    }

    /// The accelerator is cycle-model-neutral on the plain hot path too:
    /// identical cycles, TLB statistics and access counters either way.
    #[test]
    fn accelerator_preserves_counters_exactly() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm(Reg::R(0), 0);
        a.mov_imm(Reg::R(1), 50);
        a.mov_imm32(Reg::R(2), 0x9000);
        let top = a.label();
        a.add_reg(Reg::R(0), Reg::R(0), Reg::R(1));
        a.str_imm(Reg::R(0), Reg::R(2), 0);
        a.ldr_imm(Reg::R(3), Reg::R(2), 0);
        a.subs_imm(Reg::R(1), Reg::R(1), 1);
        a.b_to(Cond::Ne, top);
        a.svc(0);
        let code = a.words();
        let run = |accel: bool| {
            let mut m = guest_machine(&code);
            m.set_fetch_accel(accel);
            assert_eq!(m.run_user(10_000).unwrap(), ExitReason::Svc { imm24: 0 });
            m
        };
        let on = run(true);
        let off = run(false);
        assert!(on.accel.served() > 100, "accelerator never engaged");
        assert_eq!(on.cycles, off.cycles);
        assert_eq!(on.tlb.hits, off.tlb.hits);
        assert_eq!(on.tlb.misses, off.tlb.misses);
        assert_eq!(on.mem.reads, off.mem.reads);
        assert_eq!(on.mem.writes, off.mem.writes);
        assert!(on == off, "architectural state diverged");
    }
}
