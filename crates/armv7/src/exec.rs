//! User-mode execution: fetch, decode, execute, take exceptions.
//!
//! Only unprivileged guest code (enclaves and normal-world processes) is
//! executed instruction-by-instruction; the monitor runs at the exception
//! boundaries this loop produces. Exceptions record their cause in the
//! fault-status registers and switch the machine into the appropriate
//! banked mode before returning an [`ExitReason`] to the privileged caller.

use crate::alu::{alu, alu_value, eval_op2, eval_op2_value, shift_value};
use crate::cp15::FaultStatus;
use crate::dcache::{BlockEnd, ExitKind};
use crate::decode::decode;
use crate::dtlb::DataTlb;
use crate::error::{MemFault, MemFaultKind};
use crate::exn::ExceptionKind;
use crate::insn::{Cond, Insn, LsmMode, MemOffset};
use crate::machine::{cost, Machine, ModelViolation};
use crate::mem::{AccessAttrs, PhysMem};
use crate::mode::{Mode, World};
use crate::psr::Psr;
use crate::ptw::{self, PtwFault};
use crate::regs::{Reg, RegFile};
use crate::uop::{MemOff, Site, Src, Uop, UopEnd, UopTrace};
use crate::word::{page_base, page_offset, Addr, Word, WORD_BYTES};

/// Why user-mode execution stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitReason {
    /// `SVC` executed; the machine is in Supervisor mode.
    Svc {
        /// The instruction's 24-bit comment field.
        imm24: u32,
    },
    /// An IRQ was taken; the machine is in IRQ mode.
    Irq,
    /// An FIQ was taken; the machine is in FIQ mode.
    Fiq,
    /// A data access faulted; the machine is in Abort mode with
    /// `DFSR`/`DFAR` set.
    DataAbort(MemFault),
    /// Instruction fetch faulted; the machine is in Abort mode with
    /// `IFSR` set.
    PrefetchAbort(Addr),
    /// Undefined instruction (including privileged instructions from user
    /// mode); the machine is in Undefined mode.
    Undefined(Word),
    /// The step budget ran out with no exception; machine still in user
    /// mode (simulation artifact, not an architectural event).
    StepLimit,
}

fn fault_status(kind: MemFaultKind) -> FaultStatus {
    match kind {
        MemFaultKind::Translation => FaultStatus::Translation,
        MemFaultKind::Permission => FaultStatus::Permission,
        MemFaultKind::Unaligned => FaultStatus::Alignment,
        MemFaultKind::Unmapped | MemFaultKind::SecurityViolation => FaultStatus::External,
    }
}

impl Machine {
    /// Translates a user-mode virtual address for the current world,
    /// consulting and filling the TLB, and checking permissions.
    ///
    /// Returns the physical address and the bus attributes the access
    /// carries: a secure-world access through an `NS`-tagged mapping is
    /// driven onto the bus as non-secure (§3.3).
    pub fn translate_user(
        &mut self,
        va: Addr,
        write: bool,
        exec: bool,
    ) -> Result<(Addr, AccessAttrs), MemFault> {
        let world = self.world();
        let ttbr0 = self.cp15.mmu(world).ttbr0;
        // The software data-TLB fronts the architectural TLB map: a hit
        // accounts the TLB hit the map probe would have recorded (the
        // entry is provably still in the TLB — see `crate::dtlb`), and
        // the permission check below still runs per access.
        let t = match self.dtlb.lookup_translation(va, world, ttbr0) {
            Some(t) => {
                self.tlb.hits += 1;
                t
            }
            None => {
                let t = match self.tlb.lookup(va) {
                    Some(t) => t,
                    None => {
                        self.charge(cost::TLB_WALK);
                        // Count the miss here, at the walk site, so that
                        // faulting walks (which never reach `insert`) are
                        // included — they charged `cost::TLB_WALK` like
                        // any other walk.
                        self.tlb.note_walk();
                        match ptw::walk(&mut self.mem, ttbr0, va) {
                            Ok(t) => {
                                self.tlb.insert(va, t);
                                t
                            }
                            Err(PtwFault::Translation) => {
                                return Err(MemFault::new(va, MemFaultKind::Translation, write));
                            }
                            Err(PtwFault::External(f)) => return Err(f),
                        }
                    }
                };
                self.dtlb.fill(va, world, ttbr0, t);
                t
            }
        };
        ptw::check_access(&t, va, write, exec)?;
        let pa = (t.pa & !0xfff) | (va & 0xfff);
        let attrs = AccessAttrs {
            secure: world == World::Secure && !t.ns,
            privileged: false,
        };
        Ok((pa, attrs))
    }

    /// Runs user-mode code from the current `pc` until an exception or the
    /// step budget is exhausted.
    ///
    /// Model contract (enforced, mirroring the specification's
    /// preconditions): the machine must be in user mode with a consistent
    /// TLB.
    pub fn run_user(&mut self, max_steps: u64) -> Result<ExitReason, ModelViolation> {
        if self.cpsr.mode != Mode::User {
            return Err(ModelViolation::NotUserMode);
        }
        if !self.tlb.is_consistent() {
            return Err(ModelViolation::TlbInconsistent);
        }
        // `irq_at`/`fiq_at` are set only between runs, so the earliest
        // cycle either could fire is loop-invariant: one compare per step
        // replaces the two `Option` tests on the hot path.
        let fiq_deadline = self.fiq_at.unwrap_or(u64::MAX);
        let irq_deadline = self.irq_at.unwrap_or(u64::MAX);
        let wake = fiq_deadline.min(irq_deadline);
        let mut need_first_cycle = self.first_user_insn_cycle.is_none();
        // The TrustZone world and fetch TTBR0 are fixed for the whole run:
        // user code cannot switch mode, `SCR.NS` or `TTBR0` without an
        // exception, and every exception path exits this loop.
        let world = self.world();
        let ttbr0 = self.cp15.mmu(world).ttbr0;
        let mut steps_left = max_steps;
        while steps_left > 0 {
            // Pending interrupts are taken before the next instruction;
            // FIQ has priority.
            if self.cycles >= wake {
                if self.cycles >= fiq_deadline && !self.cpsr.fiq_masked {
                    self.take_exception(ExceptionKind::Fiq, self.pc);
                    return Ok(ExitReason::Fiq);
                }
                if self.cycles >= irq_deadline && !self.cpsr.irq_masked {
                    self.take_exception(ExceptionKind::Irq, self.pc);
                    return Ok(ExitReason::Irq);
                }
            }
            if need_first_cycle {
                self.first_user_insn_cycle = Some(self.cycles);
                need_first_cycle = false;
            }
            // Superblock fast path: a whole straight-line trace retires
            // with one validation and batched accounting. `None` (no
            // block, wake too close, engine off) falls through to the
            // per-instruction step.
            if let Some(n) = self.step_superblock(world, ttbr0, wake, steps_left) {
                steps_left -= n;
                continue;
            }
            match self.step(world, ttbr0) {
                StepOutcome::Continue => {}
                StepOutcome::Exit(reason) => return Ok(reason),
            }
            steps_left -= 1;
        }
        Ok(ExitReason::StepLimit)
    }

    /// Dispatches and executes one superblock at the current PC, returning
    /// the number of instructions retired (`None` falls back to per-insn
    /// stepping). Equivalence with `steps_left` per-instruction steps:
    ///
    /// - **Wake**: the per-insn loop compares `cycles >= wake` before every
    ///   instruction. The block runs only if `cycles + max_charge < wake`;
    ///   cycles grow monotonically, so every intermediate compare would
    ///   also have been false — hoisting the compare is exact, and any
    ///   block that *might* straddle the deadline is stepped individually.
    /// - **Budget**: a block needing more steps than remain executes only
    ///   the prefix `steps_left` covers (the ending branch counts as one
    ///   step), leaving the PC mid-trace exactly where the per-insn loop
    ///   would exhaust its budget.
    /// - **Accounting**: each retired instruction pays one TLB hit, one
    ///   instruction read and `cost::INSN` — precisely the per-insn hot
    ///   path's charges (the build-time hot-fetch validation carries the
    ///   proof; see `FetchAccel::sb_build`) — plus `cost::MUL` per
    ///   *executed* multiply and `cost::BRANCH_TAKEN` for a taken ending
    ///   branch, accumulated per instruction and added in one batch.
    /// - **Memory** (the data-side fast path): an executed load/store pays
    ///   one *additional* TLB hit and `cost::MEM`, and performs the actual
    ///   `PhysMem` access (which bumps the read/write counters itself) —
    ///   bit-for-bit the per-insn `user_load`/`user_store` accounting on
    ///   their hit path. The TLB hit is sound for the same reason the
    ///   fetch side's is: a data-TLB entry proves TLB residency (see
    ///   `crate::dtlb`). The access is attempted *before* anything about
    ///   the instruction is committed (a refused or faulting `PhysMem`
    ///   access has no side effects), so on any hazard — data-TLB miss,
    ///   permission refusal, misalignment, partially-backed page — the
    ///   block stops at the already-retired prefix and the per-insn path
    ///   replays the instruction from scratch: same translation (and TLB
    ///   hit), same `cost::MEM` charge, same fault raised at the same
    ///   state. A store that bumps the code generation (self-modifying
    ///   code through the data path) retires, then stops the block the
    ///   same way so no possibly-stale trace entry after it executes.
    ///   A block stopping before retiring anything returns `None` so the
    ///   per-insn step guarantees progress (and refills the data-TLB).
    fn step_superblock(
        &mut self,
        world: World,
        ttbr0: Addr,
        wake: u64,
        steps_left: u64,
    ) -> Option<u64> {
        let gen_entry = self.mem.code_gen();
        let cycle_now = self.cycles;
        let id =
            self.accel
                .sb_dispatch(self.pc, world, ttbr0, gen_entry, &mut self.trace, cycle_now)?;
        // Split borrows: the block stays shared-borrowed from the
        // accelerator while the disjoint architectural fields are mutated.
        let Machine {
            accel,
            dtlb,
            regs,
            cpsr,
            pc,
            mem,
            tlb,
            cycles,
            ..
        } = self;
        let b = accel.sb_block(id);
        if *cycles + b.max_charge >= wake {
            accel.sb_note_exit(id, None, 0);
            return None;
        }
        let n_body = b.body.len() as u64;
        let has_branch = matches!(b.end, BlockEnd::Branch { .. });
        let full = steps_left >= n_body + has_branch as u64;
        // Specialised micro-op tier: once the block is promoted, the
        // whole-trace case runs its specialised form instead of the
        // generic body loop below. Only the whole-trace case — a partial
        // step budget needs the prefix semantics of the generic loop,
        // and `full` is computed from the *block's* body (fusion moves
        // an instruction into the uop exit without changing how many
        // steps the trace consumes). Hazard behaviour is identical: the
        // runner stops at the exactly-retired prefix, and a first-op
        // hazard returns `None` so the per-insn step makes progress.
        if full {
            if let Some(u) = &b.uop {
                let (retired, data_hits, extra, iters, exit) = run_uop_trace(
                    u,
                    gen_entry,
                    b.entry_va,
                    b.max_charge,
                    wake - *cycles,
                    steps_left,
                    world,
                    ttbr0,
                    regs,
                    cpsr,
                    pc,
                    mem,
                    dtlb,
                );
                if retired == 0 {
                    accel.sb_note_exit(id, None, 0);
                    return None;
                }
                tlb.note_hits(retired + data_hits);
                mem.note_reads(retired);
                *cycles += retired * cost::INSN + extra;
                accel.sb_note_uop_hits(iters);
                accel.sb_note_exit(id, exit, retired);
                return Some(retired);
            }
        }
        let n_exec = if full { n_body } else { steps_left.min(n_body) };
        let mut extra = 0u64;
        let mut data_hits = 0u64;
        let mut n_ret = 0u64;
        let mut stopped = false;
        for &(insn, cond) in &b.body[..n_exec as usize] {
            if cond_holds(*cpsr, cond) {
                match insn {
                    Insn::Ldr {
                        rd, rn, off, byte, ..
                    } => {
                        let va = mem_ea_regs(regs, Mode::User, rn, off);
                        let Some((pa, attrs)) = dtlb.lookup_data(va, world, ttbr0, false) else {
                            stopped = true;
                            break;
                        };
                        let r = if byte {
                            mem.read_byte(pa, attrs).map(|v| v as Word)
                        } else {
                            mem.read(pa, attrs)
                        };
                        let Ok(v) = r else {
                            stopped = true;
                            break;
                        };
                        regs.set(Mode::User, rd, v);
                        data_hits += 1;
                        extra += cost::MEM;
                    }
                    Insn::Str {
                        rd, rn, off, byte, ..
                    } => {
                        let va = mem_ea_regs(regs, Mode::User, rn, off);
                        let Some((pa, attrs)) = dtlb.lookup_data(va, world, ttbr0, true) else {
                            stopped = true;
                            break;
                        };
                        let v = regs.get(Mode::User, rd);
                        let r = if byte {
                            mem.write_byte(pa, v as u8, attrs)
                        } else {
                            mem.write(pa, v, attrs)
                        };
                        if r.is_err() {
                            stopped = true;
                            break;
                        }
                        data_hits += 1;
                        extra += cost::MEM;
                        if mem.code_gen() != gen_entry {
                            // The store landed in a watched code page: the
                            // rest of this trace may be stale. Retire
                            // through the store, then reconcile
                            // per-instruction (the next dispatch sees the
                            // bumped generation and rebuilds).
                            n_ret += 1;
                            stopped = true;
                            break;
                        }
                    }
                    _ => extra += exec_straightline(regs, cpsr, Mode::User, insn),
                }
            }
            n_ret += 1;
        }
        if n_ret == 0 {
            // First instruction hit a data hazard: no progress was made.
            // Fall back so the per-insn step performs the access — or
            // raises its fault — with exact accounting.
            accel.sb_note_exit(id, None, 0);
            return None;
        }
        *pc = pc.wrapping_add(n_ret as u32 * WORD_BYTES);
        let mut retired = n_ret;
        let mut exit = None;
        if !stopped && n_ret == n_body && full {
            exit = Some(ExitKind::Fall);
            match b.end {
                BlockEnd::Branch { cond, target, link } => {
                    retired += 1;
                    if cond_holds(*cpsr, cond) {
                        extra += cost::BRANCH_TAKEN;
                        if link {
                            regs.set(Mode::User, Reg::Lr, pc.wrapping_add(WORD_BYTES));
                        }
                        *pc = target;
                        exit = Some(ExitKind::Taken);
                    } else {
                        *pc = pc.wrapping_add(WORD_BYTES);
                    }
                }
                BlockEnd::Fallthrough => {}
            }
        }
        tlb.note_hits(retired + data_hits);
        mem.note_reads(retired);
        *cycles += retired * cost::INSN + extra;
        accel.sb_note_exit(id, exit, retired);
        Some(retired)
    }

    /// Translates the fetch of `pc`, consulting the accelerator's one-entry
    /// last-code-page cache before the TLB.
    ///
    /// A cache hit accounts one TLB hit: the entry was formed by a
    /// successful [`Machine::translate_user`], the TLB evicts only on a
    /// full flush, and a flush drops this cache — so the TLB provably still
    /// holds the entry and the uncached path would have hit it. World and
    /// `TTBR0` are re-validated on every use, so the replayed translation
    /// (and the permission check baked into it) is exactly what the
    /// uncached path would recompute.
    fn fetch_translate(
        &mut self,
        pc: Addr,
        world: World,
        ttbr0: Addr,
    ) -> Result<(Addr, AccessAttrs), MemFault> {
        if let Some(hit) = self.accel.fetch_tc_lookup(pc, world, ttbr0) {
            self.tlb.hits += 1;
            return Ok(hit);
        }
        let r = self.translate_user(pc, false, true);
        if let Ok((pa, attrs)) = r {
            self.accel.fetch_tc_fill(pc, pa, attrs, world, ttbr0);
        }
        r
    }

    fn step(&mut self, world: World, ttbr0: Addr) -> StepOutcome {
        let pc = self.pc;
        // Fused fast path: translation and decoded page validated in one
        // compare chain. A hit accounts the same TLB hit, instruction
        // cycle and memory read the full path below records — see
        // `FetchAccel::hot_fetch` for the validity argument.
        if let Some((word, insn, cond)) = self.accel.hot_fetch(pc, world, ttbr0, &self.mem) {
            self.tlb.hits += 1;
            self.charge(cost::INSN);
            self.mem.reads += 1;
            if !cond_holds(self.cpsr, cond) {
                self.pc = pc.wrapping_add(4);
                return StepOutcome::Continue;
            }
            return self.execute(insn, word);
        }
        // Fetch.
        let (ppc, fattrs) = match self.fetch_translate(pc, world, ttbr0) {
            Ok(x) => x,
            Err(f) => {
                self.cp15.ifsr = fault_status(f.kind);
                self.take_exception(ExceptionKind::PrefetchAbort, pc);
                return StepOutcome::Exit(ExitReason::PrefetchAbort(pc));
            }
        };
        self.charge(cost::INSN);
        // Decode, via the per-page decode cache when possible. A cache hit
        // bumps `mem.reads` itself; a `None` fall-through performs the
        // plain counted read, so the counters agree bit-for-bit. The cache
        // also carries the precomputed condition field (`Insn::cond` is a
        // pure function of the word, so caching it is invisible).
        let (word, insn, cond) = match self.accel.fetch(&mut self.mem, ppc, fattrs) {
            Some(e) => e,
            None => match self.mem.read(ppc, fattrs) {
                Ok(w) => {
                    let i = decode(w);
                    (w, i, i.cond())
                }
                Err(_) => {
                    self.cp15.ifsr = FaultStatus::External;
                    self.take_exception(ExceptionKind::PrefetchAbort, pc);
                    return StepOutcome::Exit(ExitReason::PrefetchAbort(pc));
                }
            },
        };
        if !cond_holds(self.cpsr, cond) {
            self.pc = pc.wrapping_add(4);
            return StepOutcome::Continue;
        }
        self.execute(insn, word)
    }

    fn undefined(&mut self, word: Word) -> StepOutcome {
        self.take_exception(ExceptionKind::Undefined, self.pc.wrapping_add(4));
        StepOutcome::Exit(ExitReason::Undefined(word))
    }

    fn data_abort(&mut self, f: MemFault) -> StepOutcome {
        self.cp15.dfsr = fault_status(f.kind);
        self.cp15.dfar = f.addr;
        self.take_exception(ExceptionKind::DataAbort, self.pc);
        StepOutcome::Exit(ExitReason::DataAbort(f))
    }

    fn user_load(&mut self, va: Addr, byte: bool) -> Result<Word, MemFault> {
        let (pa, attrs) = self.translate_user(va, false, false)?;
        self.charge(cost::MEM);
        if byte {
            self.mem.read_byte(pa, attrs).map(|b| b as u32)
        } else {
            self.mem.read(pa, attrs)
        }
    }

    fn user_store(&mut self, va: Addr, val: Word, byte: bool) -> Result<(), MemFault> {
        let (pa, attrs) = self.translate_user(va, true, false)?;
        self.charge(cost::MEM);
        if byte {
            self.mem.write_byte(pa, val as u8, attrs)
        } else {
            self.mem.write(pa, val, attrs)
        }
    }

    fn execute(&mut self, insn: Insn, word: Word) -> StepOutcome {
        let next = self.pc.wrapping_add(4);
        match insn {
            // Straight-line instructions share their semantics with the
            // superblock runner through one helper, so the two execution
            // paths cannot drift.
            Insn::Dp { .. }
            | Insn::Mul { .. }
            | Insn::Movw { .. }
            | Insn::Movt { .. }
            | Insn::Mrs { .. } => {
                let mode = self.cpsr.mode;
                let extra = exec_straightline(&mut self.regs, &mut self.cpsr, mode, insn);
                self.charge(extra);
                self.pc = next;
            }
            Insn::Ldr {
                rd, rn, off, byte, ..
            } => {
                let va = self.mem_ea(rn, off);
                match self.user_load(va, byte) {
                    Ok(v) => {
                        self.set_reg(rd, v);
                        self.pc = next;
                    }
                    Err(f) => return self.data_abort(f),
                }
            }
            Insn::Str {
                rd, rn, off, byte, ..
            } => {
                let va = self.mem_ea(rn, off);
                let v = self.reg(rd);
                match self.user_store(va, v, byte) {
                    Ok(()) => self.pc = next,
                    Err(f) => return self.data_abort(f),
                }
            }
            Insn::Ldm {
                rn,
                writeback,
                regs,
                mode,
                ..
            } => {
                let n = regs.count_ones();
                let base = self.reg(rn);
                let start = match mode {
                    LsmMode::Ia => base,
                    LsmMode::Db => base.wrapping_sub(4 * n),
                };
                // Base-in-list semantics are pinned: with the base in the
                // list the loaded value ends up in Rn (writeback forms
                // with the base listed are rejected at decode, so the
                // load can never be silently clobbered by writeback).
                let mut addr = start;
                for i in 0..15u8 {
                    if regs & (1 << i) != 0 {
                        let r = Reg::from_index(i).expect("bit 15 excluded by decode");
                        match self.user_load(addr, false) {
                            Ok(v) => self.set_reg(r, v),
                            Err(f) => return self.data_abort(f),
                        }
                        addr = addr.wrapping_add(4);
                    }
                }
                debug_assert!(!writeback || regs & (1 << rn.index()) == 0);
                if writeback {
                    let nb = match mode {
                        LsmMode::Ia => base.wrapping_add(4 * n),
                        LsmMode::Db => start,
                    };
                    self.set_reg(rn, nb);
                }
                self.pc = next;
            }
            Insn::Stm {
                rn,
                writeback,
                regs,
                mode,
                ..
            } => {
                let n = regs.count_ones();
                let base = self.reg(rn);
                let start = match mode {
                    LsmMode::Ia => base,
                    LsmMode::Db => base.wrapping_sub(4 * n),
                };
                // Base-in-list semantics are pinned: the *original* base
                // value is stored (writeback happens after all stores, and
                // decode rejects writeback forms with the base listed).
                let mut addr = start;
                for i in 0..15u8 {
                    if regs & (1 << i) != 0 {
                        let r = Reg::from_index(i).expect("bit 15 excluded by decode");
                        let v = self.reg(r);
                        if let Err(f) = self.user_store(addr, v, false) {
                            return self.data_abort(f);
                        }
                        addr = addr.wrapping_add(4);
                    }
                }
                debug_assert!(!writeback || regs & (1 << rn.index()) == 0);
                if writeback {
                    let nb = match mode {
                        LsmMode::Ia => base.wrapping_add(4 * n),
                        LsmMode::Db => start,
                    };
                    self.set_reg(rn, nb);
                }
                self.pc = next;
            }
            Insn::B { offset, .. } => {
                self.charge(cost::BRANCH_TAKEN);
                self.pc = self
                    .pc
                    .wrapping_add(8)
                    .wrapping_add((offset as u32).wrapping_mul(4));
            }
            Insn::Bl { offset, .. } => {
                self.charge(cost::BRANCH_TAKEN);
                self.set_reg(Reg::Lr, next);
                self.pc = self
                    .pc
                    .wrapping_add(8)
                    .wrapping_add((offset as u32).wrapping_mul(4));
            }
            Insn::Bx { rm, .. } => {
                let target = self.reg(rm);
                if target & 1 != 0 {
                    return self.undefined(word); // Thumb interworking unmodelled.
                }
                self.charge(cost::BRANCH_TAKEN);
                self.pc = target;
            }
            Insn::Svc { imm24, .. } => {
                self.take_exception(ExceptionKind::Svc, next);
                return StepOutcome::Exit(ExitReason::Svc { imm24 });
            }
            // Privileged instructions from user mode are undefined; so is
            // anything outside the modelled subset.
            Insn::Smc { .. } | Insn::Mcr { .. } | Insn::Mrc { .. } => {
                return self.undefined(word);
            }
            Insn::Udf { .. } | Insn::Unknown(_) => return self.undefined(word),
        }
        StepOutcome::Continue
    }

    fn mem_ea(&self, rn: Reg, off: MemOffset) -> Addr {
        mem_ea_regs(&self.regs, self.cpsr.mode, rn, off)
    }
}

/// Load/store effective address (offset addressing, `P=1 W=0` — the only
/// form the decoder admits). Split-borrow form shared by `Machine::mem_ea`
/// and the superblock runner's in-block memory path, so the two compute
/// addresses identically by construction.
#[inline]
fn mem_ea_regs(regs: &RegFile, mode: Mode, rn: Reg, off: MemOffset) -> Addr {
    let base = regs.get(mode, rn);
    match off {
        MemOffset::Imm { imm12, add } => {
            if add {
                base.wrapping_add(imm12 as u32)
            } else {
                base.wrapping_sub(imm12 as u32)
            }
        }
        MemOffset::Reg { rm, add } => {
            let o = regs.get(mode, rm);
            if add {
                base.wrapping_add(o)
            } else {
                base.wrapping_sub(o)
            }
        }
    }
}

enum StepOutcome {
    Continue,
    Exit(ExitReason),
}

/// Whether condition `cond` passes under the flags in `p` (ARM ARM A8.3).
#[inline]
fn cond_holds(p: Psr, cond: Cond) -> bool {
    match cond {
        Cond::Eq => p.z,
        Cond::Ne => !p.z,
        Cond::Cs => p.c,
        Cond::Cc => !p.c,
        Cond::Mi => p.n,
        Cond::Pl => !p.n,
        Cond::Vs => p.v,
        Cond::Vc => !p.v,
        Cond::Hi => p.c && !p.z,
        Cond::Ls => !p.c || p.z,
        Cond::Ge => p.n == p.v,
        Cond::Lt => p.n != p.v,
        Cond::Gt => !p.z && p.n == p.v,
        Cond::Le => p.z || p.n != p.v,
        Cond::Al => true,
    }
}

/// Executes one block-safe straight-line instruction (data-processing,
/// multiply, `MOVW`/`MOVT`, `MRS`) against the register file and PSR, and
/// returns the cycles it charges beyond the base `cost::INSN`.
///
/// Operates on split-borrowed fields rather than `&mut Machine` so the
/// superblock runner can call it while the dispatched block is still
/// borrowed from the accelerator; `Machine::execute` routes the same
/// instructions through here, keeping the two paths semantically
/// identical by construction. The instructions handled here can neither
/// fault nor write the PC (PC-destination encodings decode to
/// [`Insn::Unknown`]), which is exactly what makes them block-safe.
#[inline]
fn exec_straightline(regs: &mut RegFile, cpsr: &mut Psr, mode: Mode, insn: Insn) -> u64 {
    match insn {
        Insn::Dp {
            op, s, rd, rn, op2, ..
        } => {
            if !s && !op.is_compare() {
                // Flags-free fast path: skip the NZCV computation the
                // full ALU always performs. `alu_value` is proven
                // equivalent to `alu(..).value` by the
                // `dp_value_path_matches_full_alu` test.
                let carry = cpsr.c;
                let v = alu_value(
                    op,
                    regs.get(mode, rn),
                    eval_op2_value(op2, |r| regs.get(mode, r)),
                    carry,
                );
                regs.set(mode, rd, v);
            } else {
                let carry = cpsr.c;
                let sh = eval_op2(op2, carry, |r| regs.get(mode, r));
                let res = alu(op, regs.get(mode, rn), sh, *cpsr);
                if let Some(v) = res.value {
                    regs.set(mode, rd, v);
                }
                cpsr.n = res.n;
                cpsr.z = res.z;
                cpsr.c = res.c;
                cpsr.v = res.v;
            }
            0
        }
        Insn::Mul { s, rd, rm, rs, .. } => {
            let v = regs.get(mode, rm).wrapping_mul(regs.get(mode, rs));
            regs.set(mode, rd, v);
            if s {
                cpsr.n = v & 0x8000_0000 != 0;
                cpsr.z = v == 0;
            }
            cost::MUL
        }
        Insn::Movw { rd, imm16, .. } => {
            regs.set(mode, rd, imm16 as u32);
            0
        }
        Insn::Movt { rd, imm16, .. } => {
            let lo = regs.get(mode, rd) & 0xffff;
            regs.set(mode, rd, ((imm16 as u32) << 16) | lo);
            0
        }
        Insn::Mrs { rd, .. } => {
            regs.set(mode, rd, cpsr.encode());
            0
        }
        _ => unreachable!("not a straight-line instruction: {insn:?}"),
    }
}

/// Effective address of a micro-op memory access over the flat register
/// copy (immediate offsets were pre-negated at specialisation time, so
/// one wrapping add covers both signs — equivalent to `mem_ea_regs`).
#[inline]
fn uop_ea(r: &[Word; 15], base: u8, off: MemOff) -> Addr {
    let b = r[base as usize];
    match off {
        MemOff::Const(k) => b.wrapping_add(k),
        MemOff::Reg(rm) => b.wrapping_add(r[rm as usize]),
        MemOff::RegNeg(rm) => b.wrapping_sub(r[rm as usize]),
    }
}

/// The per-site inlined data-TLB probe: one compare against the site's
/// cached VA page, refilled from the real data-TLB on mismatch. A site
/// hit replays exactly what `DataTlb::lookup_data` would return — the
/// entry was formed from a lookup under the same `(world, TTBR0)` the
/// trace is keyed by, the architectural TLB never re-maps a VA without
/// an event that kills every block (and with it every site), and the
/// verdict for this site's access kind was checked at fill time — so
/// accounting one TLB hit per access stays exact.
#[inline]
fn site_lookup(
    t: &UopTrace,
    site: u16,
    va: Addr,
    world: World,
    ttbr0: Addr,
    dtlb: &mut DataTlb,
    write: bool,
) -> Option<(Addr, AccessAttrs)> {
    let cell = &t.sites[site as usize];
    if let Some(s) = cell.get() {
        if s.va_page == page_base(va) {
            return Some((s.pa_page | page_offset(va), s.attrs));
        }
    }
    let (pa, attrs) = dtlb.lookup_data(va, world, ttbr0, write)?;
    cell.set(Some(Site {
        va_page: page_base(va),
        pa_page: page_base(pa),
        attrs,
    }));
    Some((pa, attrs))
}

/// Executes a specialised micro-op trace over a flat copy of the
/// user-visible registers and a local PSR, committing the exactly
/// retired prefix. Returns `(retired, data_hits, extra_cycles, iters,
/// exit)` for the caller to batch-account precisely like the superblock
/// body loop; `retired == 0` means a first-op hazard left the machine
/// untouched (the caller falls back to per-instruction stepping).
///
/// **Self-loop chaining.** When the trace's exit branch is taken back to
/// its own entry (`target == entry_va`), the runner re-enters the body
/// in place — no commit, no re-dispatch, no regfile round-trip — as long
/// as the caller's two dispatch guards still hold for a whole further
/// pass: the remaining step budget covers one more full iteration
/// (`iter_steps`, counted on the *block's* instructions, exactly what
/// the dispatcher's `full` check requires), and the accumulated cycle
/// charge plus a worst-case pass still ends before the wake deadline
/// (`cost + max_charge < cycle_budget`, the wake-hoisting guard with the
/// dispatch-time cycle count folded into `cycle_budget`). Stopping short
/// on either guard just bounces back to the dispatcher, which re-checks
/// the same conditions — so chaining is invisible to the cycle model.
///
/// Mid-trace stops happen only at memory micro-ops (hazard) or right
/// after a code-generation bump — points where the specialiser's flag
/// liveness forced every earlier flag write to materialise — so the
/// committed PSR at any stop is bit-for-bit the per-instruction one.
#[allow(clippy::too_many_arguments)]
fn run_uop_trace(
    t: &UopTrace,
    gen_entry: u64,
    entry_va: Addr,
    max_charge: u64,
    cycle_budget: u64,
    steps_left: u64,
    world: World,
    ttbr0: Addr,
    regs: &mut RegFile,
    cpsr: &mut Psr,
    pc: &mut Addr,
    mem: &mut PhysMem,
    dtlb: &mut DataTlb,
) -> (u64, u64, u64, u64, Option<ExitKind>) {
    // Architectural steps one full pass consumes: one per body micro-op
    // plus the exit's share (a fused exit retires the folded ALU and the
    // branch). This always equals the block's `n_body + has_branch`, so
    // the chaining budget check below is the dispatcher's `full` check.
    let iter_steps = t.body.len() as u64
        + match t.end {
            UopEnd::Fall => 0,
            UopEnd::Branch { .. } => 1,
            UopEnd::FusedBranch { .. } => 2,
        };
    let self_loop = match t.end {
        UopEnd::Fall => false,
        UopEnd::Branch { target, link, .. } | UopEnd::FusedBranch { target, link, .. } => {
            !link && target == entry_va
        }
    };
    let mut r = regs.user_visible();
    let mut psr = *cpsr;
    let mut total = 0u64;
    let mut data_hits = 0u64;
    let mut extra = 0u64;
    let mut iters = 0u64;
    let mut pc_cur = *pc;
    let final_exit = 'chain: loop {
        iters += 1;
        let mut n_ret = 0u64;
        let mut stopped = false;
        for e in t.body.iter() {
            if e.cond != Cond::Al && !cond_holds(psr, e.cond) {
                n_ret += 1;
                continue;
            }
            match e.op {
                Uop::AddImm { rd, rn, imm } => r[rd as usize] = r[rn as usize].wrapping_add(imm),
                Uop::SubImm { rd, rn, imm } => r[rd as usize] = r[rn as usize].wrapping_sub(imm),
                Uop::AddReg { rd, rn, rm } => {
                    r[rd as usize] = r[rn as usize].wrapping_add(r[rm as usize]);
                }
                Uop::EorReg { rd, rn, rm } => r[rd as usize] = r[rn as usize] ^ r[rm as usize],
                Uop::MovConst { rd, imm } => r[rd as usize] = imm,
                Uop::InsTop { rd, hi } => r[rd as usize] = (r[rd as usize] & 0xffff) | hi,
                Uop::Alu { op, rd, rn, src } => {
                    let v2 = match src {
                        Src::Imm(v) => v,
                        Src::Reg(rm) => r[rm as usize],
                        // The shifted value never depends on the carry-in
                        // (same `false` as `eval_op2_value`).
                        Src::Shifted { rm, shift, amount } => {
                            shift_value(r[rm as usize], shift, amount, false).value
                        }
                    };
                    r[rd as usize] = alu_value(op, r[rn as usize], v2, psr.c);
                }
                Uop::AluFlags {
                    op,
                    wb,
                    rd,
                    rn,
                    op2,
                } => {
                    let sh = eval_op2(op2, psr.c, |reg| r[reg.index() as usize]);
                    let res = alu(op, r[rn as usize], sh, psr);
                    if wb {
                        if let Some(v) = res.value {
                            r[rd as usize] = v;
                        }
                    }
                    psr.n = res.n;
                    psr.z = res.z;
                    psr.c = res.c;
                    psr.v = res.v;
                }
                Uop::MulVal { rd, rm, rs } => {
                    r[rd as usize] = r[rm as usize].wrapping_mul(r[rs as usize]);
                    extra += cost::MUL;
                }
                Uop::MulFlags { rd, rm, rs } => {
                    let v = r[rm as usize].wrapping_mul(r[rs as usize]);
                    r[rd as usize] = v;
                    psr.n = v & 0x8000_0000 != 0;
                    psr.z = v == 0;
                    extra += cost::MUL;
                }
                Uop::ReadCpsr { rd } => r[rd as usize] = psr.encode(),
                Uop::Nop => {}
                Uop::Load {
                    rd,
                    base,
                    off,
                    byte,
                    site,
                } => {
                    let va = uop_ea(&r, base, off);
                    let Some((pa, attrs)) = site_lookup(t, site, va, world, ttbr0, dtlb, false)
                    else {
                        stopped = true;
                        break;
                    };
                    let res = if byte {
                        mem.read_byte(pa, attrs).map(|v| v as Word)
                    } else {
                        mem.read(pa, attrs)
                    };
                    let Ok(v) = res else {
                        stopped = true;
                        break;
                    };
                    r[rd as usize] = v;
                    data_hits += 1;
                    extra += cost::MEM;
                }
                Uop::Store {
                    rd,
                    base,
                    off,
                    byte,
                    site,
                } => {
                    let va = uop_ea(&r, base, off);
                    let Some((pa, attrs)) = site_lookup(t, site, va, world, ttbr0, dtlb, true)
                    else {
                        stopped = true;
                        break;
                    };
                    let v = r[rd as usize];
                    let res = if byte {
                        mem.write_byte(pa, v as u8, attrs)
                    } else {
                        mem.write(pa, v, attrs)
                    };
                    if res.is_err() {
                        stopped = true;
                        break;
                    }
                    data_hits += 1;
                    extra += cost::MEM;
                    if mem.code_gen() != gen_entry {
                        // Self-modifying store: retire it, then stop so no
                        // possibly-stale micro-op after it executes.
                        n_ret += 1;
                        stopped = true;
                        break;
                    }
                }
            }
            n_ret += 1;
        }
        if stopped {
            if total == 0 && n_ret == 0 {
                // First micro-op hit a hazard: the locals were never
                // written, so there is nothing to commit and the caller
                // falls back. (A first-op hazard on a *chained* pass
                // commits the completed iterations below instead.)
                return (0, 0, 0, 0, None);
            }
            total += n_ret;
            pc_cur = pc_cur.wrapping_add(n_ret as u32 * WORD_BYTES);
            break 'chain None;
        }
        let mut pc_new = pc_cur.wrapping_add(n_ret as u32 * WORD_BYTES);
        total += n_ret;
        let mut exit = ExitKind::Fall;
        match t.end {
            UopEnd::Fall => {}
            UopEnd::Branch { cond, target, link } => {
                total += 1;
                if cond_holds(psr, cond) {
                    extra += cost::BRANCH_TAKEN;
                    if link {
                        r[14] = pc_new.wrapping_add(WORD_BYTES);
                    }
                    pc_new = target;
                    exit = ExitKind::Taken;
                } else {
                    pc_new = pc_new.wrapping_add(WORD_BYTES);
                }
            }
            UopEnd::FusedBranch {
                op,
                wb,
                rd,
                rn,
                op2,
                cond,
                target,
                link,
            } => {
                // The folded flag-setting ALU retires first (it was the
                // block's last body instruction, always unconditional) ...
                let sh = eval_op2(op2, psr.c, |reg| r[reg.index() as usize]);
                let res = alu(op, r[rn as usize], sh, psr);
                if wb {
                    if let Some(v) = res.value {
                        r[rd as usize] = v;
                    }
                }
                psr.n = res.n;
                psr.z = res.z;
                psr.c = res.c;
                psr.v = res.v;
                total += 1;
                pc_new = pc_new.wrapping_add(WORD_BYTES);
                // ... then the branch decides on the freshly computed
                // flags without a second dispatch.
                total += 1;
                if cond_holds(psr, cond) {
                    extra += cost::BRANCH_TAKEN;
                    if link {
                        r[14] = pc_new.wrapping_add(WORD_BYTES);
                    }
                    pc_new = target;
                    exit = ExitKind::Taken;
                } else {
                    pc_new = pc_new.wrapping_add(WORD_BYTES);
                }
            }
        }
        pc_cur = pc_new;
        // Chain straight back into the body when the taken exit re-enters
        // this trace and both dispatch guards still hold for a whole
        // further pass; otherwise commit and return to the dispatcher.
        if self_loop
            && exit == ExitKind::Taken
            && steps_left - total >= iter_steps
            && total * cost::INSN + extra + max_charge < cycle_budget
        {
            continue 'chain;
        }
        break 'chain Some(exit);
    };
    regs.set_user_visible(&r);
    *cpsr = psr;
    *pc = pc_cur;
    (total, data_hits, extra, iters, final_exit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psr::Psr;
    use crate::ptw::{l1_coarse_desc, l2_page_desc, PagePerms};

    /// Builds a machine with one code page at VA 0x8000 and one data page
    /// at VA 0x9000, both backed by secure memory, running in secure user
    /// mode (an enclave-like configuration).
    fn guest_machine(code: &[Word]) -> Machine {
        guest_machine_with_perms(code, PagePerms::RX)
    }

    /// As [`guest_machine`], with chosen permissions on the code page
    /// (RWX enables the self-modifying-code tests).
    fn guest_machine_with_perms(code: &[Word], code_perms: PagePerms) -> Machine {
        let mut m = Machine::new();
        m.mem.add_region(0x0000_0000, 0x10_0000, false);
        m.mem.add_region(0x8000_0000, 0x10_0000, true);
        let ttbr0 = 0x8000_0000u32; // L1 table page.
        let l2_page = 0x8000_1000u32;
        let code_pa = 0x8000_2000u32;
        let data_pa = 0x8000_3000u32;
        // VA 0x8000 and 0x9000 share L1 slot 0.
        m.mem
            .write(ttbr0, l1_coarse_desc(l2_page), AccessAttrs::MONITOR)
            .unwrap();
        m.mem
            .write(
                l2_page + (0x8 * 4),
                l2_page_desc(code_pa, code_perms, false),
                AccessAttrs::MONITOR,
            )
            .unwrap();
        m.mem
            .write(
                l2_page + (0x9 * 4),
                l2_page_desc(data_pa, PagePerms::RW, false),
                AccessAttrs::MONITOR,
            )
            .unwrap();
        m.mem.load_words(code_pa, code).unwrap();
        m.cp15.mmu_mut(World::Secure).ttbr0 = ttbr0;
        m.cpsr = Psr::user();
        m.pc = 0x8000;
        m
    }

    use crate::asm::Assembler;

    #[test]
    fn runs_straight_line_code_and_svc() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm(Reg::R(0), 5);
        a.add_imm(Reg::R(0), Reg::R(0), 37);
        a.svc(0);
        let mut m = guest_machine(&a.words());
        let exit = m.run_user(100).unwrap();
        assert_eq!(exit, ExitReason::Svc { imm24: 0 });
        assert_eq!(m.regs.get(Mode::User, Reg::R(0)), 42);
        assert_eq!(m.cpsr.mode, Mode::Supervisor);
    }

    #[test]
    fn loop_with_branch() {
        // r0 = sum 1..=10 via a countdown loop.
        let mut a = Assembler::new(0x8000);
        a.mov_imm(Reg::R(0), 0);
        a.mov_imm(Reg::R(1), 10);
        let top = a.label();
        a.add_reg(Reg::R(0), Reg::R(0), Reg::R(1));
        a.subs_imm(Reg::R(1), Reg::R(1), 1);
        a.b_to(Cond::Ne, top);
        a.svc(0);
        let mut m = guest_machine(&a.words());
        let exit = m.run_user(1000).unwrap();
        assert_eq!(exit, ExitReason::Svc { imm24: 0 });
        assert_eq!(m.regs.get(Mode::User, Reg::R(0)), 55);
    }

    #[test]
    fn load_store_roundtrip() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(1), 0x9000);
        a.mov_imm32(Reg::R(0), 0xdead_beef);
        a.str_imm(Reg::R(0), Reg::R(1), 0x10);
        a.ldr_imm(Reg::R(2), Reg::R(1), 0x10);
        a.svc(0);
        let mut m = guest_machine(&a.words());
        m.run_user(100).unwrap();
        assert_eq!(m.regs.get(Mode::User, Reg::R(2)), 0xdead_beef);
    }

    #[test]
    fn store_to_code_page_aborts() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(1), 0x8000);
        a.str_imm(Reg::R(0), Reg::R(1), 0);
        let mut m = guest_machine(&a.words());
        let exit = m.run_user(100).unwrap();
        assert!(matches!(exit, ExitReason::DataAbort(f) if f.kind == MemFaultKind::Permission));
        assert_eq!(m.cpsr.mode, Mode::Abort);
        assert_eq!(m.cp15.dfsr, FaultStatus::Permission);
        assert_eq!(m.cp15.dfar, 0x8000);
    }

    #[test]
    fn unmapped_va_aborts() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(1), 0x0010_0000);
        a.ldr_imm(Reg::R(0), Reg::R(1), 0);
        let mut m = guest_machine(&a.words());
        let exit = m.run_user(100).unwrap();
        assert!(matches!(exit, ExitReason::DataAbort(f) if f.kind == MemFaultKind::Translation));
    }

    #[test]
    fn privileged_instructions_undefined_from_user() {
        for word in [
            0xe160_0070u32, /* smc */
            0xee00_0f10,    /* mcr p15 */
        ] {
            let mut m = guest_machine(&[word]);
            let exit = m.run_user(10).unwrap();
            assert!(matches!(exit, ExitReason::Undefined(_)), "{word:#x}");
            assert_eq!(m.cpsr.mode, Mode::Undefined);
        }
    }

    #[test]
    fn unknown_word_undefined() {
        let mut m = guest_machine(&[0xffff_ffff]);
        assert!(matches!(m.run_user(10).unwrap(), ExitReason::Undefined(_)));
    }

    #[test]
    fn irq_preempts_when_unmasked() {
        let mut a = Assembler::new(0x8000);
        let top = a.label();
        a.add_imm(Reg::R(0), Reg::R(0), 1);
        a.b_to(Cond::Al, top);
        let mut m = guest_machine(&a.words());
        m.irq_at = Some(m.cycles + 50);
        let exit = m.run_user(1_000_000).unwrap();
        assert_eq!(exit, ExitReason::Irq);
        assert_eq!(m.cpsr.mode, Mode::Irq);
        // The interrupted PC is preserved in LR_irq for resumption.
        let lr = m.regs.lr_banked(crate::regs::Bank::Irq);
        assert!((0x8000..0x8008).contains(&lr));
    }

    #[test]
    fn step_limit_returns_without_exception() {
        let mut a = Assembler::new(0x8000);
        let top = a.label();
        a.b_to(Cond::Al, top);
        let mut m = guest_machine(&a.words());
        assert_eq!(m.run_user(10).unwrap(), ExitReason::StepLimit);
        assert_eq!(m.cpsr.mode, Mode::User);
    }

    #[test]
    fn run_user_enforces_model_contract() {
        let mut m = guest_machine(&[0xe320_f000]);
        m.tlb.mark_inconsistent();
        assert_eq!(m.run_user(1), Err(ModelViolation::TlbInconsistent));
        m.tlb.flush();
        m.cpsr = Psr::privileged(Mode::Monitor);
        assert_eq!(m.run_user(1), Err(ModelViolation::NotUserMode));
    }

    #[test]
    fn svc_return_address_resumes_after_svc() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm(Reg::R(0), 1);
        a.svc(0);
        a.mov_imm(Reg::R(0), 2);
        a.svc(0);
        let mut m = guest_machine(&a.words());
        assert!(matches!(m.run_user(100).unwrap(), ExitReason::Svc { .. }));
        assert_eq!(m.regs.get(Mode::User, Reg::R(0)), 1);
        // Monitor-style resume: exception return continues after the SVC.
        m.exception_return().unwrap();
        assert!(matches!(m.run_user(100).unwrap(), ExitReason::Svc { .. }));
        assert_eq!(m.regs.get(Mode::User, Reg::R(0)), 2);
    }

    #[test]
    fn function_call_with_bl_bx() {
        let mut a = Assembler::new(0x8000);
        let call = a.bl_fixup(Cond::Al);
        a.svc(0);
        let func = a.here();
        a.fix_branch(call, func);
        a.mov_imm(Reg::R(0), 99);
        a.bx(Reg::Lr);
        let mut m = guest_machine(&a.words());
        m.run_user(100).unwrap();
        assert_eq!(m.regs.get(Mode::User, Reg::R(0)), 99);
    }

    #[test]
    fn push_pop_with_stack() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::Sp, 0xa000); // Top of data page.
        a.mov_imm(Reg::R(4), 11);
        a.mov_imm(Reg::R(5), 22);
        a.push(&[Reg::R(4), Reg::R(5)]);
        a.mov_imm(Reg::R(4), 0);
        a.mov_imm(Reg::R(5), 0);
        a.pop(&[Reg::R(4), Reg::R(5)]);
        a.svc(0);
        let mut m = guest_machine(&a.words());
        m.run_user(100).unwrap();
        assert_eq!(m.regs.get(Mode::User, Reg::R(4)), 11);
        assert_eq!(m.regs.get(Mode::User, Reg::R(5)), 22);
        assert_eq!(m.regs.get(Mode::User, Reg::Sp), 0xa000);
    }

    #[test]
    fn conditional_execution_skips() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm(Reg::R(0), 1);
        a.cmp_imm(Reg::R(0), 2);
        a.emit(Insn::Dp {
            cond: Cond::Eq, // Not taken.
            op: crate::insn::DpOp::Mov,
            s: false,
            rd: Reg::R(1),
            rn: Reg::R(0),
            op2: crate::insn::Op2::imm(7),
        });
        a.svc(0);
        let mut m = guest_machine(&a.words());
        m.run_user(100).unwrap();
        assert_eq!(m.regs.get(Mode::User, Reg::R(1)), 0);
    }

    #[test]
    fn tlb_caches_translations() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(1), 0x9000);
        for i in 0..8 {
            a.str_imm(Reg::R(0), Reg::R(1), (i * 4) as u16);
        }
        a.svc(0);
        let mut m = guest_machine(&a.words());
        m.run_user(100).unwrap();
        // One walk for the code page, one for the data page; the rest hit.
        assert_eq!(m.tlb.misses, 2);
        assert!(m.tlb.hits > 8);
    }

    /// Regression: a walk that *faults* must still count as a TLB miss —
    /// it charged `cost::TLB_WALK` like any successful walk. The miss used
    /// to be counted in `Tlb::insert`, which faulting walks never reach.
    #[test]
    fn faulting_walk_counts_as_tlb_miss() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(1), 0x0010_0000); // Unmapped VA.
        a.ldr_imm(Reg::R(0), Reg::R(1), 0);
        let mut m = guest_machine(&a.words());
        let exit = m.run_user(100).unwrap();
        assert!(matches!(exit, ExitReason::DataAbort(_)));
        // One successful walk (code page) + one faulting walk (bad VA).
        assert_eq!(m.tlb.misses, 2);
    }

    /// LDM with the base register in the list (no writeback) is pinned:
    /// the loaded value ends up in the base register.
    #[test]
    fn ldm_base_in_list_gets_loaded_value() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(1), 0x9000);
        a.emit(Insn::Ldm {
            cond: Cond::Al,
            rn: Reg::R(1),
            writeback: false,
            regs: 0b0111, // r0, r1 (the base), r2.
            mode: LsmMode::Ia,
        });
        a.svc(0);
        let mut m = guest_machine(&a.words());
        m.mem.load_words(0x8000_3000, &[10, 20, 30]).unwrap();
        m.run_user(100).unwrap();
        assert_eq!(m.regs.get(Mode::User, Reg::R(0)), 10);
        assert_eq!(m.regs.get(Mode::User, Reg::R(1)), 20, "loaded value wins");
        assert_eq!(m.regs.get(Mode::User, Reg::R(2)), 30);
    }

    /// STM with the base register in the list (no writeback) is pinned:
    /// the *original* base value is what reaches memory.
    #[test]
    fn stm_base_in_list_stores_original_base() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(1), 0x9000);
        a.mov_imm(Reg::R(0), 5);
        a.mov_imm(Reg::R(2), 6);
        a.emit(Insn::Stm {
            cond: Cond::Al,
            rn: Reg::R(1),
            writeback: false,
            regs: 0b0111,
            mode: LsmMode::Ia,
        });
        a.svc(0);
        let mut m = guest_machine(&a.words());
        m.run_user(100).unwrap();
        assert_eq!(
            m.mem.dump_words(0x8000_3000, 3).unwrap(),
            vec![5, 0x9000, 6],
            "original base must be stored"
        );
    }

    /// The UNPREDICTABLE combination — writeback with the base listed —
    /// is rejected at decode and raises an undefined-instruction
    /// exception, for both LDM and STM.
    #[test]
    fn lsm_writeback_base_in_list_raises_undefined() {
        use crate::encode::encode;
        for load in [true, false] {
            let insn = if load {
                Insn::Ldm {
                    cond: Cond::Al,
                    rn: Reg::R(1),
                    writeback: true,
                    regs: 0b0010, // Base r1 in the list.
                    mode: LsmMode::Ia,
                }
            } else {
                Insn::Stm {
                    cond: Cond::Al,
                    rn: Reg::R(1),
                    writeback: true,
                    regs: 0b0010,
                    mode: LsmMode::Ia,
                }
            };
            let mut m = guest_machine(&[encode(insn)]);
            let exit = m.run_user(10).unwrap();
            assert!(matches!(exit, ExitReason::Undefined(_)), "load={load}");
            assert_eq!(m.cpsr.mode, Mode::Undefined);
        }
    }

    /// A store into the page being executed must be visible to the very
    /// next fetch — the decode cache may never serve a stale instruction.
    /// Run the same self-modifying program with the accelerator on and
    /// off; behaviour and all architectural state must match exactly.
    #[test]
    fn self_modifying_code_invalidates_decode_cache() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(1), 0x8000); // Code page VA.
        a.mov_imm32(Reg::R(0), 0xe3a0_2007); // Encoding of `mov r2, #7`.
        let slot = a.len() as u16 + 1; // Word index of the slot below.
        a.str_imm(Reg::R(0), Reg::R(1), slot * 4);
        a.mov_imm(Reg::R(2), 99); // The slot: overwritten before it runs.
        a.svc(0);
        let code = a.words();

        let run = |accel: bool| {
            let mut m = guest_machine_with_perms(&code, PagePerms::RWX);
            m.set_fetch_accel(accel);
            let exit = m.run_user(100).unwrap();
            assert_eq!(exit, ExitReason::Svc { imm24: 0 }, "accel={accel}");
            assert_eq!(
                m.regs.get(Mode::User, Reg::R(2)),
                7,
                "stale decode executed (accel={accel})"
            );
            m
        };
        let cached = run(true);
        let uncached = run(false);
        assert!(cached == uncached, "architectural state diverged");
    }

    /// A monitor write (`mon_write`) into a cached code page invalidates
    /// the cached decode, so resumed execution sees the new instruction.
    #[test]
    fn mon_write_into_cached_code_page_invalidates() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm(Reg::R(0), 1);
        a.svc(0);
        let mut m = guest_machine(&a.words());
        m.run_user(100).unwrap();
        assert_eq!(m.regs.get(Mode::User, Reg::R(0)), 1);
        assert!(m.accel.served() > 0, "decode cache should have engaged");
        // The monitor rewrites the first instruction to `mov r0, #7`.
        m.mon_write(0x8000_2000, 0xe3a0_0007).unwrap();
        m.exception_return().unwrap();
        m.pc = 0x8000;
        m.run_user(100).unwrap();
        assert_eq!(
            m.regs.get(Mode::User, Reg::R(0)),
            7,
            "stale decode served after monitor write"
        );
    }

    /// `tlb_flush` drops the accelerator's cached pages and translation
    /// entry (their validity arguments are anchored to TLB residency),
    /// and execution afterwards is still correct.
    #[test]
    fn tlb_flush_drops_fetch_accelerator_state() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm(Reg::R(0), 1);
        a.svc(0);
        let mut m = guest_machine(&a.words());
        m.run_user(100).unwrap();
        assert!(m.accel.cached_pages() > 0);
        m.tlb_flush();
        assert_eq!(m.accel.cached_pages(), 0, "flush must drop cached pages");
        m.exception_return().unwrap();
        m.pc = 0x8000;
        assert_eq!(m.run_user(100).unwrap(), ExitReason::Svc { imm24: 0 });
    }

    /// An `ldr` from the RX code page primes the accelerator's data-side
    /// translation cache; the `str` through the same mapping must still
    /// abort — permissions are re-checked on every access, cache or not.
    #[test]
    fn data_cache_hit_still_faults_on_write_to_readonly_page() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(8), 0x8000);
        a.ldr_imm(Reg::R(0), Reg::R(8), 0);
        a.str_imm(Reg::R(0), Reg::R(8), 0);
        a.svc(0);
        let run = |accel: bool| {
            let mut m = guest_machine(&a.words());
            m.set_fetch_accel(accel);
            let exit = m.run_user(100).unwrap();
            (m, exit)
        };
        let (m_on, e_on) = run(true);
        let (m_off, e_off) = run(false);
        assert!(matches!(e_on, ExitReason::DataAbort(_)), "{e_on:?}");
        assert_eq!(e_on, e_off);
        assert!(m_on == m_off, "architectural state diverged");
    }

    /// Runs `code` under the four stepping configurations — micro-op
    /// traces (promotion forced with a threshold of 2), superblocks,
    /// accelerator-only, baseline — with `setup` applied to each fresh
    /// machine, asserting all four exits, final architectural states,
    /// and architectural metric projections are bit-for-bit identical.
    /// Returns the superblock-configuration machine (its host-side
    /// superblock statistics are what the edge regressions assert on).
    fn four_way(
        code: &[Word],
        perms: PagePerms,
        steps: u64,
        setup: impl Fn(&mut Machine),
    ) -> (Machine, ExitReason) {
        let (m_uop, m_sb, e_sb) = four_way_machines(code, perms, steps, setup);
        drop(m_uop);
        (m_sb, e_sb)
    }

    /// [`four_way`], additionally returning the micro-op-configuration
    /// machine so callers can assert its promotion/hit statistics.
    fn four_way_machines(
        code: &[Word],
        perms: PagePerms,
        steps: u64,
        setup: impl Fn(&mut Machine),
    ) -> (Machine, Machine, ExitReason) {
        let run = |accel: bool, superblocks: bool, uops: bool| {
            let mut m = guest_machine_with_perms(code, perms);
            m.set_fetch_accel(accel);
            m.set_superblocks(superblocks);
            m.set_uop_traces(uops);
            if uops {
                // Force promotion almost immediately so even short tests
                // spend most iterations on specialised traces.
                m.set_uop_threshold(2);
            }
            setup(&mut m);
            let exit = m.run_user(steps).unwrap();
            (m, exit)
        };
        let (m_uop, e_uop) = run(true, true, true);
        let (m_sb, e_sb) = run(true, true, false);
        let (m_on, e_on) = run(true, false, false);
        let (m_off, e_off) = run(false, false, false);
        assert_eq!(e_uop, e_sb, "uop exit diverged from superblock");
        assert_eq!(e_sb, e_on, "superblock exit diverged from accel-only");
        assert_eq!(e_on, e_off, "accel-only exit diverged from baseline");
        assert_eq!(m_uop.cycles, m_off.cycles, "uop cycles diverged");
        assert_eq!(m_sb.cycles, m_off.cycles, "superblock cycles diverged");
        assert_eq!(m_uop.tlb.hits, m_off.tlb.hits);
        assert_eq!(m_sb.tlb.hits, m_off.tlb.hits);
        assert_eq!(m_uop.mem.reads, m_off.mem.reads);
        assert_eq!(m_sb.mem.reads, m_off.mem.reads);
        assert_eq!(
            m_uop.metrics_snapshot().architectural(),
            m_off.metrics_snapshot().architectural(),
            "uop architectural metrics diverged from baseline"
        );
        assert!(m_uop == m_off, "uop architectural state diverged");
        assert!(m_sb == m_off, "superblock architectural state diverged");
        assert!(m_on == m_off, "accel-only architectural state diverged");
        (m_uop, m_sb, e_sb)
    }

    /// A store that overwrites an instruction belonging to the executing
    /// loop's superblock: the generation bump must kill the block before
    /// its next dispatch, so the rewritten instruction (not the cached
    /// trace) executes — identically to per-instruction stepping.
    #[test]
    fn superblock_self_modifying_store_into_own_block() {
        use crate::encode::encode;
        // Loop body: three ALU instructions (a superblock) whose middle
        // one is rewritten by the store on the first iteration, then the
        // store + backward branch. The block spans the slot being
        // overwritten while the loop (hence the block) is live.
        let patch = encode(Insn::Dp {
            cond: Cond::Al,
            op: crate::insn::DpOp::Add,
            s: false,
            rd: Reg::R(2),
            rn: Reg::R(2),
            op2: crate::insn::Op2::imm(5),
        });
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(1), 0x8000); // Code page VA.
        a.mov_imm32(Reg::R(0), patch);
        a.mov_imm(Reg::R(6), 3); // Loop counter.
        let top = a.label();
        a.add_imm(Reg::R(3), Reg::R(3), 1);
        let slot = a.len() as u16; // Word index of the next instruction.
        a.add_imm(Reg::R(2), Reg::R(2), 1); // Overwritten to `add r2, #5`.
        a.add_imm(Reg::R(4), Reg::R(4), 1);
        a.str_imm(Reg::R(0), Reg::R(1), slot * 4);
        a.subs_imm(Reg::R(6), Reg::R(6), 1);
        a.b_to(Cond::Ne, top);
        a.svc(0);
        let (m, exit) = four_way(&a.words(), PagePerms::RWX, 1_000, |_| {});
        assert_eq!(exit, ExitReason::Svc { imm24: 0 });
        // Iteration 1 runs the original `add r2, #1`; iterations 2 and 3
        // run the patched `add r2, #5`.
        assert_eq!(m.regs.get(Mode::User, Reg::R(2)), 1 + 5 + 5);
        let s = m.superblock_stats();
        assert!(
            s.inval_code_gen > 0,
            "the store must have invalidated the block cache, attributed \
             to the code-generation cause (stats: {s:?})"
        );
    }

    /// A store executed *inside* a memory-inclusive superblock that hits
    /// the block's own code page: the runner must retire through the
    /// store, stop the trace, and reconcile per-instruction so the
    /// patched instruction — which sits *later in the same block* —
    /// executes in the very same iteration, exactly as per-insn stepping
    /// would.
    #[test]
    fn superblock_data_store_patches_later_insn_in_same_block() {
        use crate::encode::encode;
        let patch = encode(Insn::Dp {
            cond: Cond::Al,
            op: crate::insn::DpOp::Add,
            s: false,
            rd: Reg::R(2),
            rn: Reg::R(2),
            op2: crate::insn::Op2::imm(5),
        });
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(1), 0x8000); // Code page VA.
        a.mov_imm32(Reg::R(0), patch);
        a.mov_imm(Reg::R(6), 3); // Loop counter.
        let top = a.label();
        a.add_imm(Reg::R(3), Reg::R(3), 1);
        // The store comes BEFORE the instruction it overwrites, and both
        // live in the same block: iteration 1 must already execute the
        // patched `add r2, #5`, never the stale cached `add r2, #1`.
        let slot = (a.len() + 2) as u16;
        a.str_imm(Reg::R(0), Reg::R(1), slot * 4);
        a.add_imm(Reg::R(4), Reg::R(4), 1);
        a.add_imm(Reg::R(2), Reg::R(2), 1); // Overwritten to `add r2, #5`.
        a.subs_imm(Reg::R(6), Reg::R(6), 1);
        a.b_to(Cond::Ne, top);
        a.svc(0);
        let (m, exit) = four_way(&a.words(), PagePerms::RWX, 1_000, |_| {});
        assert_eq!(exit, ExitReason::Svc { imm24: 0 });
        // The patch lands before any iteration reads the slot: all three
        // iterations run `add r2, #5`.
        assert_eq!(m.regs.get(Mode::User, Reg::R(2)), 5 + 5 + 5);
        assert_eq!(m.regs.get(Mode::User, Reg::R(3)), 3);
        assert_eq!(m.regs.get(Mode::User, Reg::R(4)), 3);
    }

    /// Memory-inclusive superblocks with every single-register load/store
    /// shape the decoder admits — word/byte, immediate/register offset,
    /// add/subtract — must match per-instruction stepping bit-for-bit,
    /// and must actually engage the data-TLB fast path.
    #[test]
    fn superblock_memory_inclusive_blocks_are_exact() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(8), 0x9000);
        a.mov_imm32(Reg::R(9), 0x9800);
        a.mov_imm(Reg::R(7), 40); // Loop counter.
        a.mov_imm(Reg::R(5), 8); // Register offset.
        let top = a.label();
        a.add_imm(Reg::R(0), Reg::R(0), 3);
        a.str_imm(Reg::R(0), Reg::R(8), 0x20);
        a.ldr_imm(Reg::R(1), Reg::R(8), 0x20);
        a.str_reg(Reg::R(1), Reg::R(9), Reg::R(5));
        a.ldr_reg(Reg::R(2), Reg::R(9), Reg::R(5));
        a.strb_imm(Reg::R(2), Reg::R(8), 0x31);
        a.ldrb_imm(Reg::R(3), Reg::R(8), 0x31);
        a.add_reg(Reg::R(4), Reg::R(4), Reg::R(3));
        a.subs_imm(Reg::R(7), Reg::R(7), 1);
        a.b_to(Cond::Ne, top);
        a.svc(0);
        let (m, exit) = four_way(&a.words(), PagePerms::RX, 10_000, |_| {});
        assert_eq!(exit, ExitReason::Svc { imm24: 0 });
        let s = m.superblock_stats();
        assert!(s.built >= 1, "no memory-inclusive block was formed");
        assert!(
            s.dtlb_hits > 100,
            "in-block accesses must ride the data-TLB (dtlb_hits={})",
            s.dtlb_hits
        );
        // 40 iterations × (3 stores + 3 loads) with a byte lane: r4
        // accumulates the stored low byte, r3 holds the last one.
        assert_eq!(m.regs.get(Mode::User, Reg::R(3)), (40 * 3) & 0xff);
    }

    /// An in-block load whose verdict is fine but whose *physical* access
    /// faults (unaligned address): the block must stop at the retired
    /// prefix and the per-insn path must raise the data abort with exact
    /// accounting — swept across fault positions via the loop counter.
    #[test]
    fn superblock_unaligned_data_fault_mid_block_is_exact() {
        for misalign in [1u32, 2, 3] {
            let mut a = Assembler::new(0x8000);
            a.mov_imm32(Reg::R(8), 0x9000 + misalign);
            a.add_imm(Reg::R(0), Reg::R(0), 1);
            a.add_imm(Reg::R(1), Reg::R(1), 2);
            a.ldr_imm(Reg::R(2), Reg::R(8), 0); // Unaligned: data abort.
            a.add_imm(Reg::R(3), Reg::R(3), 4); // Must never execute.
            a.svc(0);
            let (m, exit) = four_way(&a.words(), PagePerms::RX, 1_000, |_| {});
            // Translation succeeds; the bus access faults, so the abort
            // reports the *physical* address.
            assert_eq!(
                exit,
                ExitReason::DataAbort(MemFault::new(
                    0x8000_3000 + misalign,
                    crate::error::MemFaultKind::Unaligned,
                    false
                )),
                "misalign {misalign}"
            );
            assert_eq!(m.regs.get(Mode::User, Reg::R(0)), 1);
            assert_eq!(m.regs.get(Mode::User, Reg::R(1)), 2);
            assert_eq!(m.regs.get(Mode::User, Reg::R(3)), 0);
        }
    }

    /// A store refused by permissions (read-only data page) inside what
    /// would otherwise be a memory-inclusive block: the precomputed
    /// write verdict forces the exact path, which raises the permission
    /// data abort identically to baseline stepping.
    #[test]
    fn superblock_readonly_store_faults_exactly() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(8), 0x9000);
        let top = a.label();
        a.ldr_imm(Reg::R(0), Reg::R(8), 0); // Reads are fine.
        a.add_imm(Reg::R(1), Reg::R(1), 1);
        a.subs_imm(Reg::R(2), Reg::R(1), 3);
        a.b_to(Cond::Ne, top);
        a.str_imm(Reg::R(1), Reg::R(8), 0); // Write to RO page: abort.
        a.svc(0);
        let ro = PagePerms {
            r: true,
            w: false,
            x: false,
        };
        let code = a.words();
        let run = |accel: bool, superblocks: bool| {
            let mut m = guest_machine(&code);
            // Remap the data page read-only before anything runs.
            m.mem
                .write(
                    0x8000_1000 + 0x9 * 4,
                    l2_page_desc(0x8000_3000, ro, false),
                    AccessAttrs::MONITOR,
                )
                .unwrap();
            m.set_fetch_accel(accel);
            m.set_superblocks(superblocks);
            let exit = m.run_user(1_000).unwrap();
            (m, exit)
        };
        let (m_sb, e_sb) = run(true, true);
        let (m_on, e_on) = run(true, false);
        let (m_off, e_off) = run(false, false);
        assert_eq!(
            e_sb,
            ExitReason::DataAbort(MemFault::new(
                0x9000,
                crate::error::MemFaultKind::Permission,
                true
            ))
        );
        assert_eq!(e_sb, e_on);
        assert_eq!(e_on, e_off);
        assert!(m_sb == m_off, "superblock state diverged on RO fault");
        assert!(m_on == m_off, "accel state diverged on RO fault");
        assert_eq!(m_sb.regs.get(Mode::User, Reg::R(1)), 3);
    }

    /// Every data-TLB invalidation source — `tlb_flush`, a `TTBR0`
    /// reload, a TrustZone world switch — must drop the cache, attribute
    /// the drop to its cause, and leave execution bit-for-bit equal to
    /// the baseline. Each source is swept in a loop of
    /// memory-block-to-SVC rounds.
    #[test]
    fn superblock_dtlb_invalidation_sources_are_exact() {
        use crate::dtlb::DTlbStats;
        let mut a = Assembler::new(0x8000);
        let top = a.label();
        a.add_imm(Reg::R(0), Reg::R(0), 1);
        a.str_imm(Reg::R(0), Reg::R(8), 0);
        a.ldr_imm(Reg::R(1), Reg::R(8), 0);
        a.add_reg(Reg::R(2), Reg::R(2), Reg::R(1));
        a.subs_imm(Reg::R(3), Reg::R(0), 4);
        a.b_to(Cond::Ne, top);
        a.svc(0);
        let code = a.words();
        let run = |source: u32, accel: bool, superblocks: bool| -> (Machine, DTlbStats) {
            let mut m = guest_machine(&code);
            m.set_fetch_accel(accel);
            m.set_superblocks(superblocks);
            m.regs.set(Mode::User, Reg::R(8), 0x9000);
            for _ in 0..3 {
                let exit = m.run_user(10_000).unwrap();
                assert_eq!(exit, ExitReason::Svc { imm24: 0 });
                match source {
                    0 => m.tlb_flush(),
                    1 => {
                        let ttbr0 = m.cp15.mmu_mut(World::Secure).ttbr0;
                        m.load_ttbr0(ttbr0);
                        m.tlb_flush(); // Architectural discipline after a TTBR write.
                    }
                    2 => {
                        m.set_scr_ns(true);
                        m.set_scr_ns(false);
                    }
                    _ => unreachable!(),
                }
                // Return to user mode and restart the loop.
                m.exception_return().unwrap();
                m.pc = 0x8000;
                m.regs.set(Mode::User, Reg::R(0), 0);
            }
            let stats = m.dtlb_stats();
            (m, stats)
        };
        for source in 0..3u32 {
            let (m_sb, s_sb) = run(source, true, true);
            let (m_on, _) = run(source, true, false);
            let (m_off, s_off) = run(source, false, false);
            assert!(
                m_sb == m_off,
                "source {source}: superblock state diverged across invalidation"
            );
            assert!(
                m_on == m_off,
                "source {source}: accel state diverged across invalidation"
            );
            // The superblock run exercised the cache and the per-cause
            // counters; the baseline cached nothing at all.
            match source {
                0 => assert!(s_sb.inval_flush >= 3, "flush cause uncounted: {s_sb:?}"),
                1 => assert!(s_sb.inval_ttbr >= 3, "ttbr cause uncounted: {s_sb:?}"),
                2 => assert!(s_sb.inval_world >= 3, "world cause uncounted: {s_sb:?}"),
                _ => unreachable!(),
            }
            assert!(s_sb.hits > 0, "source {source}: data-TLB never engaged");
            assert_eq!(
                (s_off.hits, s_off.misses),
                (0, 0),
                "baseline must not touch the data-TLB"
            );
        }
    }

    /// An interrupt deadline landing mid-block must fire at the exact
    /// same cycle as per-instruction stepping: the wake-hoisting guard
    /// falls back to per-insn stepping for any block that could straddle
    /// the deadline. Swept across every deadline in the block's range.
    #[test]
    fn superblock_interrupt_deadline_mid_block_is_exact() {
        let mut a = Assembler::new(0x8000);
        for _ in 0..16 {
            a.add_imm(Reg::R(0), Reg::R(0), 1);
        }
        a.svc(0);
        let code = a.words();
        for deadline in 1..=20u64 {
            let (m, exit) = four_way(&code, PagePerms::RX, 1_000, |m| {
                m.irq_at = Some(m.cycles + deadline);
            });
            assert!(
                matches!(exit, ExitReason::Irq | ExitReason::Svc { .. }),
                "deadline {deadline}: unexpected exit {exit:?}"
            );
            if exit == ExitReason::Irq {
                assert_eq!(m.cpsr.mode, Mode::Irq, "deadline {deadline}");
            }
        }
    }

    /// A straight-line run filling the code page to its very last word:
    /// the trace must end precisely at the page boundary, and the fetch
    /// of the next page (mapped non-executable) must abort identically to
    /// per-instruction stepping.
    #[test]
    fn superblock_ends_exactly_at_page_boundary() {
        let mut a = Assembler::new(0x8000);
        for _ in 0..1024 {
            a.add_imm(Reg::R(0), Reg::R(0), 1); // Fills the whole page.
        }
        let (m, exit) = four_way(&a.words(), PagePerms::RX, 10_000, |_| {});
        // The data page at 0x9000 is RW (not executable): walking off the
        // code page's end prefetch-aborts there.
        assert_eq!(exit, ExitReason::PrefetchAbort(0x9000));
        assert_eq!(m.regs.get(Mode::User, Reg::R(0)), 1024);
        assert!(m.superblock_stats().built > 0, "no block was formed");
    }

    /// Flag-setting instructions mid-block followed by conditional
    /// execution: the per-instruction condition evaluation inside the
    /// block must observe flags written earlier in the same block.
    #[test]
    fn superblock_flags_set_mid_block_steer_conditionals() {
        for r0 in [0u32, 5, 9] {
            let mut a = Assembler::new(0x8000);
            // All data-processing: one block containing compare + both
            // conditional arms, twice over.
            a.cmp_imm(Reg::R(0), 5);
            a.emit(Insn::Dp {
                cond: Cond::Eq,
                op: crate::insn::DpOp::Add,
                s: false,
                rd: Reg::R(1),
                rn: Reg::R(1),
                op2: crate::insn::Op2::imm(10),
            });
            a.emit(Insn::Dp {
                cond: Cond::Ne,
                op: crate::insn::DpOp::Add,
                s: false,
                rd: Reg::R(2),
                rn: Reg::R(2),
                op2: crate::insn::Op2::imm(20),
            });
            a.subs_imm(Reg::R(3), Reg::R(0), 9); // Rewrites the flags...
            a.emit(Insn::Dp {
                cond: Cond::Eq, // ...observed by this conditional.
                op: crate::insn::DpOp::Add,
                s: false,
                rd: Reg::R(4),
                rn: Reg::R(4),
                op2: crate::insn::Op2::imm(1),
            });
            a.svc(0);
            let (m, exit) = four_way(&a.words(), PagePerms::RX, 1_000, |m| {
                m.regs.set(Mode::User, Reg::R(0), r0);
            });
            assert_eq!(exit, ExitReason::Svc { imm24: 0 }, "r0={r0}");
            assert_eq!(
                m.regs.get(Mode::User, Reg::R(1)),
                if r0 == 5 { 10 } else { 0 }
            );
            assert_eq!(
                m.regs.get(Mode::User, Reg::R(2)),
                if r0 == 5 { 0 } else { 20 }
            );
            assert_eq!(m.regs.get(Mode::User, Reg::R(4)), (r0 == 9) as u32);
        }
    }

    /// Steady-state loops dispatch through the chain link: the taken
    /// back-branch records its successor, so iterations after the first
    /// few skip the hash probe entirely.
    #[test]
    fn superblock_chaining_engages_on_loops() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm(Reg::R(0), 0);
        a.mov_imm32(Reg::R(1), 200);
        let top = a.label();
        a.add_imm(Reg::R(0), Reg::R(0), 1);
        a.eor_reg(Reg::R(2), Reg::R(2), Reg::R(0));
        a.subs_imm(Reg::R(1), Reg::R(1), 1);
        a.b_to(Cond::Ne, top);
        a.svc(0);
        let (m, exit) = four_way(&a.words(), PagePerms::RX, 10_000, |_| {});
        assert_eq!(exit, ExitReason::Svc { imm24: 0 });
        let s = m.superblock_stats();
        assert!(s.built >= 1, "no block built");
        assert!(s.hits > 100, "loop iterations not served from the cache");
        assert!(
            s.chained > 100,
            "steady-state dispatches must follow the chain link (chained={})",
            s.chained
        );
    }

    /// A step budget expiring mid-block stops at exactly the same
    /// instruction as per-instruction stepping, for every possible budget.
    #[test]
    fn superblock_partial_budget_stops_mid_trace() {
        let mut a = Assembler::new(0x8000);
        for _ in 0..10 {
            a.add_imm(Reg::R(0), Reg::R(0), 1);
        }
        let top = a.label();
        a.b_to(Cond::Al, top);
        let code = a.words();
        for budget in 1..=14u64 {
            let (m, exit) = four_way(&code, PagePerms::RX, budget, |_| {});
            assert_eq!(exit, ExitReason::StepLimit, "budget {budget}");
            assert_eq!(
                m.regs.get(Mode::User, Reg::R(0)),
                budget.min(10) as u32,
                "budget {budget} retired the wrong number of instructions"
            );
        }
    }

    /// The accelerator is cycle-model-neutral on the plain hot path too:
    /// identical cycles, TLB statistics and access counters either way.
    #[test]
    fn accelerator_preserves_counters_exactly() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm(Reg::R(0), 0);
        a.mov_imm(Reg::R(1), 50);
        a.mov_imm32(Reg::R(2), 0x9000);
        let top = a.label();
        a.add_reg(Reg::R(0), Reg::R(0), Reg::R(1));
        a.str_imm(Reg::R(0), Reg::R(2), 0);
        a.ldr_imm(Reg::R(3), Reg::R(2), 0);
        a.subs_imm(Reg::R(1), Reg::R(1), 1);
        a.b_to(Cond::Ne, top);
        a.svc(0);
        let code = a.words();
        let run = |accel: bool| {
            let mut m = guest_machine(&code);
            m.set_fetch_accel(accel);
            assert_eq!(m.run_user(10_000).unwrap(), ExitReason::Svc { imm24: 0 });
            m
        };
        let on = run(true);
        let off = run(false);
        assert!(on.accel.served() > 100, "accelerator never engaged");
        assert_eq!(on.cycles, off.cycles);
        assert_eq!(on.tlb.hits, off.tlb.hits);
        assert_eq!(on.tlb.misses, off.tlb.misses);
        assert_eq!(on.mem.reads, off.mem.reads);
        assert_eq!(on.mem.writes, off.mem.writes);
        assert!(on == off, "architectural state diverged");
    }

    /// A hot mixed loop — loads, stores, a dead flag-setter, a live
    /// compare steering a conditional, and a fused compare+branch exit —
    /// must get promoted to a specialised trace, serve the bulk of its
    /// iterations from it, and stay bit-for-bit exact (the four-way
    /// helper asserts the equality half).
    #[test]
    fn uop_promotion_specialises_hot_loops_and_stays_exact() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(8), 0x9000);
        a.mov_imm(Reg::R(7), 100); // Loop counter.
        a.mov_imm(Reg::R(0), 3);
        let top = a.label();
        a.ldr_imm(Reg::R(1), Reg::R(8), 0);
        a.add_reg(Reg::R(1), Reg::R(1), Reg::R(0));
        a.str_imm(Reg::R(1), Reg::R(8), 4);
        a.emit(Insn::Dp {
            cond: Cond::Al,
            op: crate::insn::DpOp::Add,
            s: true, // Dead flags: overwritten by the cmp below.
            rd: Reg::R(4),
            rn: Reg::R(4),
            op2: crate::insn::Op2::reg(Reg::R(1)),
        });
        a.cmp_imm(Reg::R(0), 17); // Live flags: the addeq consumes them.
        a.emit(Insn::Dp {
            cond: Cond::Eq,
            op: crate::insn::DpOp::Add,
            s: false,
            rd: Reg::R(5),
            rn: Reg::R(5),
            op2: crate::insn::Op2::imm(1),
        });
        a.eor_reg(Reg::R(0), Reg::R(0), Reg::R(1));
        a.subs_imm(Reg::R(7), Reg::R(7), 1); // Fused with the bne.
        a.b_to(Cond::Ne, top);
        a.svc(0);
        let (m_uop, m_sb, exit) = four_way_machines(&a.words(), PagePerms::RX, 20_000, |_| {});
        assert_eq!(exit, ExitReason::Svc { imm24: 0 });
        let s = m_uop.superblock_stats();
        assert!(s.uop_promoted >= 1, "hot loop never promoted: {s:?}");
        assert!(
            s.uop_hits > 50,
            "most iterations must run specialised (uop_hits={})",
            s.uop_hits
        );
        let s_sb = m_sb.superblock_stats();
        assert_eq!(
            (s_sb.uop_promoted, s_sb.uop_hits),
            (0, 0),
            "the uops-off configuration must never specialise"
        );
    }

    /// Self-modifying code *inside* a specialised trace: the loop runs
    /// hot enough to be promoted, then a conditional store patches an
    /// instruction later in the same trace. The specialised runner must
    /// retire through the store, stop, and let the per-insn path execute
    /// the patched instruction in that same iteration — and the dropped
    /// trace must be counted as a uop invalidation.
    #[test]
    fn uop_self_modifying_store_inside_specialised_trace() {
        use crate::encode::encode;
        let patch = encode(Insn::Dp {
            cond: Cond::Al,
            op: crate::insn::DpOp::Add,
            s: false,
            rd: Reg::R(2),
            rn: Reg::R(2),
            op2: crate::insn::Op2::imm(5),
        });
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(1), 0x8000); // Code page VA.
        a.mov_imm32(Reg::R(0), patch);
        a.mov_imm(Reg::R(6), 6); // Loop counter: 6, 5, ..., 1.
        let top = a.label();
        a.add_imm(Reg::R(3), Reg::R(3), 1);
        a.cmp_imm(Reg::R(6), 3);
        // Fires only on the 4th iteration (r6 == 3) — by then the trace
        // is promoted (threshold 2) and running specialised.
        let slot = (a.len() + 2) as u16;
        a.emit(Insn::Str {
            cond: Cond::Eq,
            rd: Reg::R(0),
            rn: Reg::R(1),
            off: MemOffset::Imm {
                imm12: slot * 4,
                add: true,
            },
            byte: false,
        });
        a.add_imm(Reg::R(4), Reg::R(4), 1);
        a.add_imm(Reg::R(2), Reg::R(2), 1); // Overwritten to `add r2, #5`.
        a.subs_imm(Reg::R(6), Reg::R(6), 1);
        a.b_to(Cond::Ne, top);
        a.svc(0);
        let (m_uop, _m_sb, exit) = four_way_machines(&a.words(), PagePerms::RWX, 10_000, |_| {});
        assert_eq!(exit, ExitReason::Svc { imm24: 0 });
        // Iterations r6=6,5,4 run the original `add r2, #1`; the patch
        // lands before the slot executes on r6=3, so that iteration and
        // the remaining two run `add r2, #5`.
        assert_eq!(m_uop.regs.get(Mode::User, Reg::R(2)), 3 + 5 * 3);
        let s = m_uop.superblock_stats();
        assert!(s.uop_promoted >= 1, "loop never promoted: {s:?}");
        assert!(s.uop_hits >= 1, "specialised trace never ran: {s:?}");
        assert!(
            s.uop_invalidations >= 1,
            "the code-gen bump must be counted as dropping a specialised \
             trace (stats: {s:?})"
        );
        assert!(s.inval_code_gen >= 1, "stats: {s:?}");
    }

    /// An interrupt deadline landing mid-trace after promotion: the
    /// wake-hoisting guard covers the specialised tier through the same
    /// `max_charge`, so the IRQ fires at the exact per-insn cycle. Swept
    /// across deadlines spanning cold, warming, and promoted iterations.
    #[test]
    fn uop_interrupt_deadline_mid_trace_is_exact() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm(Reg::R(0), 0);
        a.mov_imm(Reg::R(1), 12); // Loop counter.
        let top = a.label();
        a.add_imm(Reg::R(0), Reg::R(0), 1);
        a.eor_reg(Reg::R(2), Reg::R(2), Reg::R(0));
        a.add_reg(Reg::R(3), Reg::R(3), Reg::R(0));
        a.subs_imm(Reg::R(1), Reg::R(1), 1);
        a.b_to(Cond::Ne, top);
        a.svc(0);
        let code = a.words();
        for deadline in 1..=80u64 {
            let (m, exit) = four_way(&code, PagePerms::RX, 10_000, |m| {
                m.irq_at = Some(m.cycles + deadline);
            });
            assert!(
                matches!(exit, ExitReason::Irq | ExitReason::Svc { .. }),
                "deadline {deadline}: unexpected exit {exit:?}"
            );
            if exit == ExitReason::Irq {
                assert_eq!(m.cpsr.mode, Mode::Irq, "deadline {deadline}");
            }
        }
    }

    /// TLB flush, `TTBR0` reload, and world switch each landing between
    /// promoted runs of a memory-carrying loop: every source must drop
    /// the specialised traces (counted), the loop must re-promote, and
    /// the architectural state must stay bit-for-bit equal to baseline
    /// across all rounds.
    #[test]
    fn uop_invalidation_sources_drop_specialised_traces_exactly() {
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(8), 0x9000);
        a.mov_imm(Reg::R(0), 30); // Loop counter.
        let top = a.label();
        a.ldr_imm(Reg::R(1), Reg::R(8), 0);
        a.add_imm(Reg::R(1), Reg::R(1), 1);
        a.str_imm(Reg::R(1), Reg::R(8), 0);
        a.subs_imm(Reg::R(0), Reg::R(0), 1);
        a.b_to(Cond::Ne, top);
        a.svc(0);
        let code = a.words();
        let run = |source: u32, accel: bool, superblocks: bool, uops: bool| {
            let mut m = guest_machine(&code);
            m.set_fetch_accel(accel);
            m.set_superblocks(superblocks);
            m.set_uop_traces(uops);
            m.set_uop_threshold(2);
            for _ in 0..3 {
                let exit = m.run_user(10_000).unwrap();
                assert_eq!(exit, ExitReason::Svc { imm24: 0 });
                match source {
                    0 => m.tlb_flush(),
                    1 => {
                        let ttbr0 = m.cp15.mmu_mut(World::Secure).ttbr0;
                        m.load_ttbr0(ttbr0);
                        m.tlb_flush(); // Architectural discipline after a TTBR write.
                    }
                    2 => {
                        m.set_scr_ns(true);
                        m.set_scr_ns(false);
                    }
                    _ => unreachable!(),
                }
                m.exception_return().unwrap();
                m.pc = 0x8000;
                m.regs.set(Mode::User, Reg::R(0), 30);
            }
            m
        };
        for source in 0..3u32 {
            let m_uop = run(source, true, true, true);
            let m_sb = run(source, true, true, false);
            let m_off = run(source, false, false, false);
            assert!(
                m_uop == m_off,
                "source {source}: uop state diverged across invalidation"
            );
            assert!(
                m_sb == m_off,
                "source {source}: superblock state diverged across invalidation"
            );
            let s = m_uop.superblock_stats();
            assert!(
                s.uop_hits > 10,
                "source {source}: specialised traces barely ran ({s:?})"
            );
            if source == 2 {
                // A world switch doesn't drop superblocks: every block
                // (and its trace) is keyed by world and re-validated at
                // dispatch, so the promoted trace soundly survives the
                // round trip — no drop, no re-promotion.
                assert!(
                    s.uop_promoted >= 1,
                    "source {source}: never promoted ({s:?})"
                );
            } else {
                assert!(
                    s.uop_promoted >= 3,
                    "source {source}: the loop must re-promote after every drop ({s:?})"
                );
                assert!(
                    s.uop_invalidations >= 3,
                    "source {source}: dropped traces uncounted ({s:?})"
                );
            }
        }
    }
}
