//! Executable model of the ARMv7-A subset used by Komodo (paper §5.1).
//!
//! The Komodo paper's trusted computing base includes a Dafny model of "a
//! substantial subset of ARMv7, including user and privileged modes,
//! TrustZone, page tables, and exceptions". This crate is that model made
//! executable in Rust: a cycle-counting simulator precise enough to run
//! enclave guest code instruction-by-instruction and to expose exactly the
//! state the monitor specification constrains.
//!
//! Scope, mirroring the paper's *idiomatic specification* approach — only
//! what a Komodo implementation needs is modelled:
//!
//! - Core registers `R0`–`R12`, `SP`, `LR`, with per-mode banking of `SP`,
//!   `LR` and `SPSR` (FIQ's extra banked `R8`–`R12` are not modelled, as in
//!   the paper).
//! - `CPSR`/`SPSR` condition flags, interrupt masks and mode field.
//! - TrustZone: secure and non-secure worlds, monitor mode, the `SCR.NS`
//!   bit, per-world banking of the MMU control registers, and a
//!   TrustZone-aware memory controller that blocks normal-world access to
//!   secure memory.
//! - A user-mode instruction set (data-processing, multiply, loads/stores,
//!   load/store-multiple, branches, `MOVW`/`MOVT`, `SVC`) with real A32
//!   binary encodings, so that enclave code lives in simulated memory pages
//!   and is measured by hashing those pages.
//! - Virtual memory: short-descriptor page tables with 4 kB small pages,
//!   walked from `TTBR0` (enclave address spaces, low 1 GB via `TTBCR.N=2`),
//!   and the paper's TLB-consistency discipline.
//! - Exceptions: SVC, SMC, IRQ, FIQ, data/prefetch aborts and undefined
//!   instructions, with banked-register side effects and the
//!   `MOVS PC, LR` exception return.
//! - Deterministic interrupt injection for testing interrupt paths.
//!
//! Privileged monitor code is *not* executed instruction-by-instruction;
//! like the paper's functional specification, the monitor (the
//! `komodo-monitor` crate) runs at exception boundaries as native code that
//! mutates this machine state, charging cycles through an explicit cost
//! model. User-mode (enclave and normal-world process) code *is* executed
//! instruction-by-instruction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alu;
pub mod asm;
pub mod cp15;
pub mod dcache;
pub mod decode;
pub mod dtlb;
pub mod encode;
pub mod error;
pub mod exec;
pub mod exn;
pub mod fxhash;
pub mod insn;
pub mod machine;
pub mod mem;
pub mod mode;
pub mod psr;
pub mod ptw;
pub mod regs;
pub mod tlb;
pub mod uop;
pub mod word;

pub use asm::Assembler;
pub use dcache::{FetchAccel, SbStats};
pub use dtlb::{DTlbStats, DataTlb};
pub use error::{MemFault, MemFaultKind};
pub use exec::ExitReason;
pub use exn::ExceptionKind;
pub use insn::{Cond, Insn, Op2};
pub use machine::Machine;
pub use mem::{AccessAttrs, PhysMem};
pub use mode::{Mode, World};
pub use psr::Psr;
pub use regs::Reg;
pub use word::{Addr, Word, PAGE_SIZE, WORDS_PER_PAGE};
