//! Short-descriptor page-table walk (paper §5.1).
//!
//! "ARM supports many page table formats, but we model only one: 4 kB
//! 'small' pages in the short descriptor format. If an unrecognised
//! page-table entry is encountered, the model says nothing about the results
//! of user execution" — here, an unrecognised descriptor is a translation
//! fault, which the monitor's invariants ensure enclaves never see for
//! their own mappings.
//!
//! Komodo programs `TTBCR.N = 2`, so `TTBR0` points at a single 4 kB
//! first-level table of 1024 entries, each mapping 1 MB of the 1 GB enclave
//! address space; valid entries point at 1 kB coarse second-level tables of
//! 256 small-page entries. A Komodo "L2 page-table page" is one 4 kB secure
//! page holding four consecutive coarse tables (4 MB of address space),
//! which is why `InitL2PTable` takes a single page and an `l1index` in
//! `0..256`.
//!
//! Modelling liberty: the architectural small-page descriptor uses bit 3
//! for cacheability (`C`), which this model does not need (caches are not
//! modelled, §5.1 limitations); we repurpose bit 3 as a per-page `NS` bit so
//! that insecure (OS-shared) mappings are distinguishable in the descriptor,
//! which the specification's page-table validation relies on.

use crate::error::{MemFault, MemFaultKind};
use crate::mem::{AccessAttrs, PhysMem};
use crate::word::{Addr, Word, PAGE_SIZE};

/// Size of the first-level table (1024 four-byte entries = one 4 kB page).
pub const L1_ENTRIES: usize = 1024;

/// Entries in one 1 kB coarse second-level table.
pub const L2_ENTRIES_PER_TABLE: usize = 256;

/// Coarse tables per 4 kB Komodo L2 page-table page.
pub const L2_TABLES_PER_PAGE: usize = 4;

/// Number of 4 MB `l1index` slots in the 1 GB enclave address space.
pub const L1_INDEX_SLOTS: usize = 256;

/// Virtual-address limit translated by `TTBR0` under Komodo's `TTBCR.N=2`.
pub const TTBR0_LIMIT: u64 = 0x4000_0000;

/// Page permissions as seen by user-mode (enclave) code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PagePerms {
    /// Readable from user mode.
    pub r: bool,
    /// Writable from user mode.
    pub w: bool,
    /// Executable from user mode.
    pub x: bool,
}

impl PagePerms {
    /// Read-only, executable (typical code page).
    pub const RX: PagePerms = PagePerms {
        r: true,
        w: false,
        x: true,
    };
    /// Read-write, no execute (typical data page).
    pub const RW: PagePerms = PagePerms {
        r: true,
        w: true,
        x: false,
    };
    /// Read-only data.
    pub const R: PagePerms = PagePerms {
        r: true,
        w: false,
        x: false,
    };
    /// Read-write-execute.
    pub const RWX: PagePerms = PagePerms {
        r: true,
        w: true,
        x: true,
    };
}

/// A successful translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Translation {
    /// Physical page base plus offset.
    pub pa: Addr,
    /// User permissions on the containing page.
    pub perms: PagePerms,
    /// Whether the mapping is tagged non-secure (an OS-shared page).
    pub ns: bool,
}

/// Why a walk failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PtwFault {
    /// No valid descriptor (or VA beyond the `TTBR0` region).
    Translation,
    /// The walk itself could not read the page tables.
    External(MemFault),
}

/// Builds a first-level coarse-page-table descriptor for a table at `pt_pa`
/// (must be 1 kB aligned).
pub fn l1_coarse_desc(pt_pa: Addr) -> Word {
    debug_assert_eq!(pt_pa & 0x3ff, 0);
    (pt_pa & 0xffff_fc00) | 0b01
}

/// The invalid (fault) descriptor.
pub const DESC_INVALID: Word = 0;

/// Builds a second-level small-page descriptor.
pub fn l2_page_desc(page_pa: Addr, perms: PagePerms, ns: bool) -> Word {
    debug_assert_eq!(page_pa & 0xfff, 0);
    // AP encoding (AFE=0): user RW = 0b011, user RO = 0b010 (priv RW, user
    // RO), no user access = 0b001. AP[1:0] at bits [5:4], AP[2] at bit 9.
    let (ap2, ap10): (u32, u32) = if perms.w {
        (0, 0b11)
    } else if perms.r {
        (0, 0b10)
    } else {
        (0, 0b01)
    };
    let xn = !perms.x as u32;
    (page_pa & 0xffff_f000) | (ap2 << 9) | (ap10 << 4) | ((ns as u32) << 3) | 0b10 | xn
}

/// Decodes a second-level descriptor; `None` if invalid/unmodelled.
pub fn decode_l2_desc(desc: Word) -> Option<Translation> {
    if desc & 0b10 == 0 {
        return None; // Fault or large page (unmodelled).
    }
    let ap10 = (desc >> 4) & 0b11;
    let ap2 = (desc >> 9) & 1;
    let (r, w) = match (ap2, ap10) {
        (0, 0b11) => (true, true),
        (0, 0b10) => (true, false),
        (1, 0b11) | (1, 0b10) => (true, false),
        _ => (false, false),
    };
    Some(Translation {
        pa: desc & 0xffff_f000,
        perms: PagePerms {
            r,
            w,
            x: desc & 1 == 0,
        },
        ns: desc & (1 << 3) != 0,
    })
}

/// Decodes a first-level descriptor to the coarse-table physical address.
pub fn decode_l1_desc(desc: Word) -> Option<Addr> {
    if desc & 0b11 != 0b01 {
        return None;
    }
    Some(desc & 0xffff_fc00)
}

/// Walks the `TTBR0` tree for `va`, reading descriptors from physical
/// memory with secure bus attributes (page tables live in secure memory).
///
/// Returns the translation regardless of the intended access; permission
/// checking against the access type is the caller's job.
pub fn walk(mem: &mut PhysMem, ttbr0: Addr, va: Addr) -> Result<Translation, PtwFault> {
    if (va as u64) >= TTBR0_LIMIT {
        return Err(PtwFault::Translation);
    }
    let l1_index = (va >> 20) as usize;
    let l1_addr = ttbr0 + (l1_index as u32) * 4;
    let l1 = mem
        .read(l1_addr, AccessAttrs::MONITOR)
        .map_err(PtwFault::External)?;
    let l2_base = decode_l1_desc(l1).ok_or(PtwFault::Translation)?;
    let l2_index = (va >> 12) & 0xff;
    let l2_addr = l2_base + l2_index * 4;
    let l2 = mem
        .read(l2_addr, AccessAttrs::MONITOR)
        .map_err(PtwFault::External)?;
    let t = decode_l2_desc(l2).ok_or(PtwFault::Translation)?;
    Ok(Translation {
        pa: t.pa + (va & (PAGE_SIZE - 1)),
        ..t
    })
}

/// Enumerates the user-*writable* page mappings reachable from `ttbr0`:
/// `(virtual page base, physical page base, ns)` triples.
///
/// This mirrors the paper's model of user-mode execution, which "havocs...
/// all user-writable pages" found "by walking page tables starting from the
/// page-table base register" (§5.1); the specification and NI tests use it
/// to bound what enclave execution can modify.
pub fn writable_pages(mem: &mut PhysMem, ttbr0: Addr) -> Vec<(Addr, Addr, bool)> {
    let mut out = Vec::new();
    for l1_index in 0..L1_ENTRIES {
        let Ok(l1) = mem.read(ttbr0 + (l1_index as u32) * 4, AccessAttrs::MONITOR) else {
            continue;
        };
        let Some(l2_base) = decode_l1_desc(l1) else {
            continue;
        };
        for l2_index in 0..L2_ENTRIES_PER_TABLE {
            let Ok(l2) = mem.read(l2_base + (l2_index as u32) * 4, AccessAttrs::MONITOR) else {
                continue;
            };
            let Some(t) = decode_l2_desc(l2) else {
                continue;
            };
            if t.perms.w {
                let va = ((l1_index as u32) << 20) | ((l2_index as u32) << 12);
                out.push((va, t.pa, t.ns));
            }
        }
    }
    out
}

/// Checks a walk result against an access, producing the fault the
/// hardware would report.
pub fn check_access(t: &Translation, va: Addr, write: bool, exec: bool) -> Result<(), MemFault> {
    let ok = if exec {
        t.perms.x && t.perms.r
    } else if write {
        t.perms.w
    } else {
        t.perms.r
    };
    if ok {
        Ok(())
    } else {
        Err(MemFault::new(va, MemFaultKind::Permission, write))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PhysMem, Addr) {
        let mut m = PhysMem::new();
        m.add_region(0, 0x10_0000, false); // 1 MB insecure.
        m.add_region(0x8000_0000, 0x10_0000, true); // 1 MB secure.
                                                    // L1 table at secure 0x8000_0000; coarse tables page at 0x8000_1000;
                                                    // data page at 0x8000_2000.
        let ttbr0 = 0x8000_0000;
        (m, ttbr0)
    }

    fn map_page(m: &mut PhysMem, ttbr0: Addr, va: Addr, pa: Addr, perms: PagePerms, ns: bool) {
        let l1_index = va >> 20;
        let l2pt_page = 0x8000_1000u32;
        // Coarse table for this 1 MB slot lives at a fixed offset in the
        // L2 page (tests map within one 4 MB slot).
        let coarse = l2pt_page + (l1_index % 4) * 0x400;
        m.write(
            ttbr0 + l1_index * 4,
            l1_coarse_desc(coarse),
            AccessAttrs::MONITOR,
        )
        .unwrap();
        let l2_index = (va >> 12) & 0xff;
        m.write(
            coarse + l2_index * 4,
            l2_page_desc(pa, perms, ns),
            AccessAttrs::MONITOR,
        )
        .unwrap();
    }

    #[test]
    fn walk_translates_mapped_page() {
        let (mut m, ttbr0) = setup();
        map_page(
            &mut m,
            ttbr0,
            0x0010_0000,
            0x8000_2000,
            PagePerms::RW,
            false,
        );
        let t = walk(&mut m, ttbr0, 0x0010_0abc).unwrap();
        assert_eq!(t.pa, 0x8000_2abc);
        assert!(t.perms.r && t.perms.w && !t.perms.x);
        assert!(!t.ns);
    }

    #[test]
    fn walk_faults_on_unmapped() {
        let (mut m, ttbr0) = setup();
        assert_eq!(walk(&mut m, ttbr0, 0x0020_0000), Err(PtwFault::Translation));
    }

    #[test]
    fn walk_faults_beyond_1gb() {
        let (mut m, ttbr0) = setup();
        assert_eq!(walk(&mut m, ttbr0, 0x4000_0000), Err(PtwFault::Translation));
        assert_eq!(walk(&mut m, ttbr0, 0xffff_f000), Err(PtwFault::Translation));
    }

    #[test]
    fn desc_roundtrip() {
        for perms in [PagePerms::RX, PagePerms::RW, PagePerms::R, PagePerms::RWX] {
            for ns in [false, true] {
                let d = l2_page_desc(0x0004_5000, perms, ns);
                let t = decode_l2_desc(d).unwrap();
                assert_eq!(t.pa, 0x0004_5000);
                assert_eq!(t.perms, perms);
                assert_eq!(t.ns, ns);
            }
        }
        assert_eq!(decode_l2_desc(DESC_INVALID), None);
        assert_eq!(decode_l1_desc(l1_coarse_desc(0x1400)), Some(0x1400));
        assert_eq!(decode_l1_desc(0), None);
        // Section descriptors (type 0b10) are unmodelled at L1.
        assert_eq!(decode_l1_desc(0x0000_0002), None);
    }

    #[test]
    fn permission_checks() {
        let t = Translation {
            pa: 0x1000,
            perms: PagePerms::R,
            ns: false,
        };
        assert!(check_access(&t, 0x1000, false, false).is_ok());
        assert!(check_access(&t, 0x1000, true, false).is_err());
        assert!(check_access(&t, 0x1000, false, true).is_err());
        let code = Translation {
            pa: 0x1000,
            perms: PagePerms::RX,
            ns: false,
        };
        assert!(check_access(&code, 0x1000, false, true).is_ok());
    }

    #[test]
    fn writable_pages_enumeration() {
        let (mut m, ttbr0) = setup();
        map_page(
            &mut m,
            ttbr0,
            0x0010_0000,
            0x8000_2000,
            PagePerms::RW,
            false,
        );
        map_page(
            &mut m,
            ttbr0,
            0x0010_1000,
            0x8000_3000,
            PagePerms::RX,
            false,
        );
        map_page(&mut m, ttbr0, 0x0010_2000, 0x0000_5000, PagePerms::RW, true);
        let pages = writable_pages(&mut m, ttbr0);
        assert_eq!(pages.len(), 2);
        assert!(pages.contains(&(0x0010_0000, 0x8000_2000, false)));
        assert!(pages.contains(&(0x0010_2000, 0x0000_5000, true)));
    }
}
