//! Data-processing semantics: the barrel shifter and the ALU with flags.
//!
//! Implements the integer and bitwise arithmetic the paper models (§5.1),
//! including the architectural carry-out rules for the flexible second
//! operand, which guest code relies on for multi-word arithmetic and
//! compare-and-branch sequences.

use crate::insn::{DpOp, Op2, Shift};
use crate::psr::Psr;
use crate::word::Word;

/// The value and shifter carry-out of evaluating an [`Op2`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShifterResult {
    /// Operand value.
    pub value: Word,
    /// Shifter carry-out (feeds `C` for logical operations with `S`).
    pub carry: bool,
}

/// Evaluates a flexible second operand given a register-read function.
#[inline]
pub fn eval_op2(
    op2: Op2,
    carry_in: bool,
    read: impl Fn(crate::regs::Reg) -> Word,
) -> ShifterResult {
    match op2 {
        Op2::Imm { imm8, rot } => {
            let value = (imm8 as u32).rotate_right(2 * rot as u32);
            let carry = if rot == 0 {
                carry_in
            } else {
                value & 0x8000_0000 != 0
            };
            ShifterResult { value, carry }
        }
        Op2::Reg { rm, shift, amount } => shift_value(read(rm), shift, amount, carry_in),
    }
}

/// Applies an immediate shift with architectural amount-zero semantics:
/// `LSL #0` is the identity, `LSR #0`/`ASR #0` encode a 32-bit shift, and
/// `ROR #0` (RRX) is outside the modelled subset so it behaves as identity
/// with the carry unchanged (the assembler never emits it).
#[inline]
pub fn shift_value(v: Word, shift: Shift, amount: u8, carry_in: bool) -> ShifterResult {
    let a = amount as u32;
    match shift {
        Shift::Lsl => {
            if a == 0 {
                ShifterResult {
                    value: v,
                    carry: carry_in,
                }
            } else {
                ShifterResult {
                    value: v << a,
                    carry: v & (1 << (32 - a)) != 0,
                }
            }
        }
        Shift::Lsr => {
            let a = if a == 0 { 32 } else { a };
            if a == 32 {
                ShifterResult {
                    value: 0,
                    carry: v & 0x8000_0000 != 0,
                }
            } else {
                ShifterResult {
                    value: v >> a,
                    carry: v & (1 << (a - 1)) != 0,
                }
            }
        }
        Shift::Asr => {
            let a = if a == 0 { 32 } else { a };
            if a == 32 {
                let fill = if v & 0x8000_0000 != 0 { !0 } else { 0 };
                ShifterResult {
                    value: fill,
                    carry: v & 0x8000_0000 != 0,
                }
            } else {
                ShifterResult {
                    value: ((v as i32) >> a) as u32,
                    carry: v & (1 << (a - 1)) != 0,
                }
            }
        }
        Shift::Ror => {
            if a == 0 {
                // RRX unmodelled; identity keeps the assembler subset total.
                ShifterResult {
                    value: v,
                    carry: carry_in,
                }
            } else {
                let value = v.rotate_right(a);
                ShifterResult {
                    value,
                    carry: value & 0x8000_0000 != 0,
                }
            }
        }
    }
}

/// Value-only evaluation of a flexible second operand.
///
/// The shifter's *value* never depends on the carry-in (only its
/// carry-out does, which flags-free instructions discard), so this is the
/// [`eval_op2`] result's `value` field, minus the carry bookkeeping —
/// `dp_value_path_matches_full_alu` checks the equivalence exhaustively.
#[inline]
pub fn eval_op2_value(op2: Op2, read: impl Fn(crate::regs::Reg) -> Word) -> Word {
    match op2 {
        Op2::Imm { imm8, rot } => (imm8 as u32).rotate_right(2 * rot as u32),
        Op2::Reg { rm, shift, amount } => shift_value(read(rm), shift, amount, false).value,
    }
}

/// Value-only ALU for flags-free data processing (`S` clear, not a
/// compare): just the word written to `Rd`, skipping the NZCV
/// computation [`alu`] always performs. Compare opcodes (which never
/// take this path — they always set flags) yield their would-be result.
/// `dp_value_path_matches_full_alu` checks the equivalence against
/// [`alu`] for every opcode and carry-in.
#[inline]
pub fn alu_value(op: DpOp, rn: Word, op2: Word, carry_in: bool) -> Word {
    let borrow = !carry_in as u32;
    match op {
        DpOp::And | DpOp::Tst => rn & op2,
        DpOp::Eor | DpOp::Teq => rn ^ op2,
        DpOp::Orr => rn | op2,
        DpOp::Bic => rn & !op2,
        DpOp::Mov => op2,
        DpOp::Mvn => !op2,
        DpOp::Add | DpOp::Cmn => rn.wrapping_add(op2),
        DpOp::Adc => rn.wrapping_add(op2).wrapping_add(carry_in as u32),
        DpOp::Sub | DpOp::Cmp => rn.wrapping_sub(op2),
        DpOp::Sbc => rn.wrapping_sub(op2).wrapping_sub(borrow),
        DpOp::Rsb => op2.wrapping_sub(rn),
        DpOp::Rsc => op2.wrapping_sub(rn).wrapping_sub(borrow),
    }
}

/// Result of a data-processing operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AluResult {
    /// Value to write to `Rd` (`None` for compares).
    pub value: Option<Word>,
    /// Updated NZCV, applied only when the instruction sets flags.
    pub n: bool,
    /// Zero flag.
    pub z: bool,
    /// Carry flag.
    pub c: bool,
    /// Overflow flag.
    pub v: bool,
}

fn add_with_carry(a: Word, b: Word, carry: bool) -> (Word, bool, bool) {
    let (s1, c1) = a.overflowing_add(b);
    let (sum, c2) = s1.overflowing_add(carry as u32);
    let carry_out = c1 || c2;
    let overflow = ((a ^ sum) & (b ^ sum)) & 0x8000_0000 != 0;
    (sum, carry_out, overflow)
}

/// Executes a data-processing opcode.
#[inline]
pub fn alu(op: DpOp, rn: Word, op2: ShifterResult, psr: Psr) -> AluResult {
    let (value, c, v) = match op {
        DpOp::And | DpOp::Tst => (rn & op2.value, op2.carry, psr.v),
        DpOp::Eor | DpOp::Teq => (rn ^ op2.value, op2.carry, psr.v),
        DpOp::Orr => (rn | op2.value, op2.carry, psr.v),
        DpOp::Bic => (rn & !op2.value, op2.carry, psr.v),
        DpOp::Mov => (op2.value, op2.carry, psr.v),
        DpOp::Mvn => (!op2.value, op2.carry, psr.v),
        DpOp::Add | DpOp::Cmn => {
            let (s, c, v) = add_with_carry(rn, op2.value, false);
            (s, c, v)
        }
        DpOp::Adc => {
            let (s, c, v) = add_with_carry(rn, op2.value, psr.c);
            (s, c, v)
        }
        DpOp::Sub | DpOp::Cmp => {
            let (s, c, v) = add_with_carry(rn, !op2.value, true);
            (s, c, v)
        }
        DpOp::Sbc => {
            let (s, c, v) = add_with_carry(rn, !op2.value, psr.c);
            (s, c, v)
        }
        DpOp::Rsb => {
            let (s, c, v) = add_with_carry(op2.value, !rn, true);
            (s, c, v)
        }
        DpOp::Rsc => {
            let (s, c, v) = add_with_carry(op2.value, !rn, psr.c);
            (s, c, v)
        }
    };
    AluResult {
        value: if op.is_compare() { None } else { Some(value) },
        n: value & 0x8000_0000 != 0,
        z: value == 0,
        c,
        v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::Reg;

    fn psr() -> Psr {
        Psr::user()
    }

    #[test]
    fn dp_value_path_matches_full_alu() {
        let ops = [
            DpOp::And,
            DpOp::Eor,
            DpOp::Sub,
            DpOp::Rsb,
            DpOp::Add,
            DpOp::Adc,
            DpOp::Sbc,
            DpOp::Rsc,
            DpOp::Tst,
            DpOp::Teq,
            DpOp::Cmp,
            DpOp::Cmn,
            DpOp::Orr,
            DpOp::Mov,
            DpOp::Bic,
            DpOp::Mvn,
        ];
        let words = [0, 1, 3, 0x7fff_ffff, 0x8000_0000, 0xffff_ffff, 0x1234_5678];
        for op in ops {
            for &rn in &words {
                for &v in &words {
                    for carry in [false, true] {
                        let mut p = psr();
                        p.c = carry;
                        let full = alu(op, rn, ShifterResult { value: v, carry }, p);
                        let lean = alu_value(op, rn, v, carry);
                        // The full ALU reports `None` for compares but
                        // computes the same word internally; recover it
                        // via the flag bits where possible, else compare
                        // directly on non-compare ops.
                        if let Some(w) = full.value {
                            assert_eq!(lean, w, "{op:?} rn={rn:#x} op2={v:#x} c={carry}");
                        } else {
                            // Compare opcodes: n/z describe the would-be
                            // result; check consistency.
                            assert_eq!(lean == 0, full.z, "{op:?} rn={rn:#x} op2={v:#x}");
                            assert_eq!(lean & 0x8000_0000 != 0, full.n, "{op:?}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn eval_op2_value_matches_full_shifter() {
        let regs = [0u32, 1, 0x8000_0001, 0xffff_ffff, 0x1234_5678];
        for &rv in &regs {
            for shift in [Shift::Lsl, Shift::Lsr, Shift::Asr, Shift::Ror] {
                for amount in [0u8, 1, 4, 31] {
                    for carry in [false, true] {
                        let op2 = Op2::Reg {
                            rm: Reg::R(0),
                            shift,
                            amount,
                        };
                        let full = eval_op2(op2, carry, |_| rv);
                        let lean = eval_op2_value(op2, |_| rv);
                        assert_eq!(lean, full.value, "{shift:?} #{amount} c={carry}");
                    }
                }
            }
        }
        for imm8 in [0u8, 1, 0xff] {
            for rot in [0u8, 1, 8, 15] {
                let op2 = Op2::Imm { imm8, rot };
                assert_eq!(
                    eval_op2_value(op2, |_| 0),
                    eval_op2(op2, false, |_| 0).value
                );
            }
        }
    }

    #[test]
    fn add_sets_carry_and_overflow() {
        let r = alu(
            DpOp::Add,
            0xffff_ffff,
            ShifterResult {
                value: 1,
                carry: false,
            },
            psr(),
        );
        assert_eq!(r.value, Some(0));
        assert!(r.z && r.c && !r.v);

        let r = alu(
            DpOp::Add,
            0x7fff_ffff,
            ShifterResult {
                value: 1,
                carry: false,
            },
            psr(),
        );
        assert_eq!(r.value, Some(0x8000_0000));
        assert!(r.n && !r.c && r.v);
    }

    #[test]
    fn sub_carry_is_not_borrow() {
        // ARM: C=1 when no borrow.
        let r = alu(
            DpOp::Sub,
            5,
            ShifterResult {
                value: 3,
                carry: false,
            },
            psr(),
        );
        assert_eq!(r.value, Some(2));
        assert!(r.c);
        let r = alu(
            DpOp::Sub,
            3,
            ShifterResult {
                value: 5,
                carry: false,
            },
            psr(),
        );
        assert_eq!(r.value, Some(-2i32 as u32));
        assert!(!r.c && r.n);
    }

    #[test]
    fn cmp_equal_sets_z_c() {
        let r = alu(
            DpOp::Cmp,
            7,
            ShifterResult {
                value: 7,
                carry: false,
            },
            psr(),
        );
        assert_eq!(r.value, None);
        assert!(r.z && r.c);
    }

    #[test]
    fn adc_sbc_chain() {
        // 64-bit add: low words 0xffffffff + 1 set carry for the high half.
        let mut p = psr();
        let lo = alu(
            DpOp::Add,
            0xffff_ffff,
            ShifterResult {
                value: 1,
                carry: false,
            },
            p,
        );
        p.c = lo.c;
        let hi = alu(
            DpOp::Adc,
            0,
            ShifterResult {
                value: 0,
                carry: false,
            },
            p,
        );
        assert_eq!(hi.value, Some(1));
    }

    #[test]
    fn rsb_reverse_subtract() {
        let r = alu(
            DpOp::Rsb,
            3,
            ShifterResult {
                value: 10,
                carry: false,
            },
            psr(),
        );
        assert_eq!(r.value, Some(7));
    }

    #[test]
    fn logic_carry_from_shifter() {
        let sh = ShifterResult {
            value: 0xf0,
            carry: true,
        };
        let r = alu(DpOp::And, 0xff, sh, psr());
        assert_eq!(r.value, Some(0xf0));
        assert!(r.c);
    }

    #[test]
    fn shifts_basic() {
        assert_eq!(shift_value(1, Shift::Lsl, 4, false).value, 16);
        assert_eq!(shift_value(0x80, Shift::Lsr, 4, false).value, 8);
        assert_eq!(
            shift_value(0x8000_0000, Shift::Asr, 4, false).value,
            0xf800_0000
        );
        assert_eq!(
            shift_value(0x0000_00ff, Shift::Ror, 8, false).value,
            0xff00_0000
        );
    }

    #[test]
    fn shift_amount_zero_semantics() {
        // LSL #0: identity, carry preserved.
        let r = shift_value(5, Shift::Lsl, 0, true);
        assert_eq!((r.value, r.carry), (5, true));
        // LSR #0 encodes LSR #32.
        let r = shift_value(0x8000_0001, Shift::Lsr, 0, false);
        assert_eq!((r.value, r.carry), (0, true));
        // ASR #0 encodes ASR #32.
        let r = shift_value(0x8000_0000, Shift::Asr, 0, false);
        assert_eq!((r.value, r.carry), (0xffff_ffff, true));
    }

    #[test]
    fn shift_carry_out() {
        // LSL by 1 of a value with the top bit set carries out.
        assert!(shift_value(0x8000_0000, Shift::Lsl, 1, false).carry);
        assert!(!shift_value(0x4000_0000, Shift::Lsl, 1, false).carry);
        // LSR by 1 of an odd value carries out.
        assert!(shift_value(1, Shift::Lsr, 1, false).carry);
    }

    #[test]
    fn eval_op2_rotated_imm_carry() {
        // Rotated immediate with high bit set produces carry.
        let r = eval_op2(Op2::Imm { imm8: 0xff, rot: 4 }, false, |_| 0);
        assert_eq!(r.value, 0xff00_0000);
        assert!(r.carry);
        // Unrotated immediate preserves carry-in.
        let r = eval_op2(Op2::imm(1), true, |_| 0);
        assert!(r.carry);
    }

    #[test]
    fn eval_op2_register() {
        let r = eval_op2(Op2::reg(Reg::R(3)), false, |r| {
            if r == Reg::R(3) {
                42
            } else {
                0
            }
        });
        assert_eq!(r.value, 42);
    }

    proptest::proptest! {
        #[test]
        fn prop_ror_matches_rotate(v in proptest::prelude::any::<u32>(), a in 1u8..32) {
            proptest::prop_assert_eq!(shift_value(v, Shift::Ror, a, false).value, v.rotate_right(a as u32));
        }

        #[test]
        fn prop_sub_matches_wrapping(a in proptest::prelude::any::<u32>(), b in proptest::prelude::any::<u32>()) {
            let r = alu(DpOp::Sub, a, ShifterResult { value: b, carry: false }, Psr::user());
            proptest::prop_assert_eq!(r.value, Some(a.wrapping_sub(b)));
            // C set iff no borrow.
            proptest::prop_assert_eq!(r.c, a >= b);
        }
    }
}
