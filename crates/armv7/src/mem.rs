//! Physical memory with TrustZone partitioning.
//!
//! Memory is "a mapping from word-aligned addresses to 32-bit values"
//! (paper §5.1). A TrustZone-aware memory controller tags regions as secure
//! and rejects non-secure accesses to them (§3.3); the Komodo bootloader
//! reserves one such region for the monitor and the secure page pool.
//!
//! The model also counts word accesses, which feeds the monitor's cycle
//! accounting for Table 3.

use crate::error::{MemFault, MemFaultKind};
use crate::fxhash::FxHashSet;
use crate::word::{page_aligned, page_base, word_aligned, Addr, Word, WORDS_PER_PAGE, WORD_BYTES};

/// Security attribute of an access, as driven onto the bus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessAttrs {
    /// Whether the access is issued with the secure attribute.
    pub secure: bool,
    /// Whether the access comes from privileged execution.
    pub privileged: bool,
}

impl AccessAttrs {
    /// Secure privileged access (the monitor).
    pub const MONITOR: AccessAttrs = AccessAttrs {
        secure: true,
        privileged: true,
    };
    /// Secure unprivileged access (enclave user mode).
    pub const ENCLAVE: AccessAttrs = AccessAttrs {
        secure: true,
        privileged: false,
    };
    /// Non-secure access (normal-world OS or application, or a device).
    pub const NORMAL: AccessAttrs = AccessAttrs {
        secure: false,
        privileged: true,
    };
}

/// A contiguous RAM region.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Region {
    base: Addr,
    words: Vec<Word>,
    /// Secure regions are invisible to non-secure accesses.
    secure: bool,
}

impl Region {
    fn len_bytes(&self) -> u32 {
        (self.words.len() as u32) * WORD_BYTES
    }

    fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && (addr - self.base) < self.len_bytes()
    }
}

/// Physical memory: a set of disjoint RAM regions plus access counters.
#[derive(Clone, Debug)]
pub struct PhysMem {
    regions: Vec<Region>,
    /// Number of word reads since construction (cycle accounting input).
    pub reads: u64,
    /// Number of word writes since construction.
    pub writes: u64,
    /// Page bases whose decoded contents the fetch accelerator holds;
    /// writes into these bump [`PhysMem::code_gen`]. Host-side state, not
    /// part of the architectural memory contents.
    code_watch: FxHashSet<Addr>,
    /// Generation counter bumped by every write into a watched page; the
    /// accelerator compares it to detect stale decoded code.
    code_gen: u64,
}

/// Architectural equality: region contents and access counters. The code
/// watch is host-side accelerator bookkeeping and deliberately excluded —
/// two machines that executed identically compare equal regardless of
/// whether the fetch accelerator was on.
impl PartialEq for PhysMem {
    fn eq(&self, other: &Self) -> bool {
        self.regions == other.regions && self.reads == other.reads && self.writes == other.writes
    }
}

impl PhysMem {
    /// An empty physical address space.
    pub fn new() -> PhysMem {
        PhysMem {
            regions: Vec::new(),
            reads: 0,
            writes: 0,
            code_watch: FxHashSet::default(),
            code_gen: 0,
        }
    }

    /// Adds a zero-initialised RAM region.
    ///
    /// # Panics
    ///
    /// Panics if the region is unaligned, empty, overflows the address
    /// space, or overlaps an existing region — these are platform
    /// construction errors, not runtime conditions.
    pub fn add_region(&mut self, base: Addr, size: u32, secure: bool) {
        assert!(word_aligned(base) && word_aligned(size) && size > 0);
        assert!(base.checked_add(size - 1).is_some(), "region overflow");
        for r in &self.regions {
            let r_end = r.base as u64 + r.len_bytes() as u64;
            let end = base as u64 + size as u64;
            assert!(
                (base as u64) >= r_end || end <= r.base as u64,
                "region overlap"
            );
        }
        self.regions.push(Region {
            base,
            words: vec![0; (size / WORD_BYTES) as usize],
            secure,
        });
    }

    /// Zeroes every region's contents and resets the access counters and
    /// code watch, keeping the region allocations — the memory half of the
    /// fast re-boot path. A reset memory is indistinguishable (contents,
    /// counters, equality) from one freshly built with the same
    /// [`PhysMem::add_region`] calls; only the host-side allocations are
    /// reused. The code generation stays monotone so any decode cache
    /// still holding pre-reset contents observes a bump.
    pub fn reset_contents(&mut self) {
        for r in &mut self.regions {
            r.words.fill(0);
        }
        self.reads = 0;
        self.writes = 0;
        self.code_watch.clear();
        self.code_gen = self.code_gen.wrapping_add(1);
    }

    /// Whether `addr` lies in a secure region.
    pub fn is_secure(&self, addr: Addr) -> bool {
        self.regions.iter().any(|r| r.contains(addr) && r.secure)
    }

    /// Whether `addr` is backed by RAM at all.
    pub fn is_mapped(&self, addr: Addr) -> bool {
        self.regions.iter().any(|r| r.contains(addr))
    }

    fn region_for(&self, addr: Addr) -> Option<&Region> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    fn region_for_mut(&mut self, addr: Addr) -> Option<&mut Region> {
        self.regions.iter_mut().find(|r| r.contains(addr))
    }

    /// Reads the word at physical address `addr` with bus attributes
    /// `attrs`, enforcing TrustZone partitioning.
    pub fn read(&mut self, addr: Addr, attrs: AccessAttrs) -> Result<Word, MemFault> {
        if !word_aligned(addr) {
            return Err(MemFault::new(addr, MemFaultKind::Unaligned, false));
        }
        let r = self
            .region_for(addr)
            .ok_or(MemFault::new(addr, MemFaultKind::Unmapped, false))?;
        if r.secure && !attrs.secure {
            return Err(MemFault::new(addr, MemFaultKind::SecurityViolation, false));
        }
        self.reads += 1;
        let r = self.region_for(addr).expect("checked above");
        Ok(r.words[((addr - r.base) / WORD_BYTES) as usize])
    }

    /// Observer read: the word at `addr` if word-aligned and RAM-backed,
    /// without bumping the access counters or enforcing bus attributes.
    /// For host-side observers only (e.g. the flight recorder assembling
    /// a page-DB transition event) — architectural accesses must use
    /// [`PhysMem::read`] so the counters and TrustZone checks apply.
    pub fn peek(&self, addr: Addr) -> Option<Word> {
        if !word_aligned(addr) {
            return None;
        }
        let r = self.region_for(addr)?;
        Some(r.words[((addr - r.base) / WORD_BYTES) as usize])
    }

    /// Writes the word at physical address `addr`.
    pub fn write(&mut self, addr: Addr, val: Word, attrs: AccessAttrs) -> Result<(), MemFault> {
        if !word_aligned(addr) {
            return Err(MemFault::new(addr, MemFaultKind::Unaligned, true));
        }
        let secure_region = match self.region_for(addr) {
            Some(r) => r.secure,
            None => return Err(MemFault::new(addr, MemFaultKind::Unmapped, true)),
        };
        if secure_region && !attrs.secure {
            return Err(MemFault::new(addr, MemFaultKind::SecurityViolation, true));
        }
        self.writes += 1;
        let r = self.region_for_mut(addr).expect("checked above");
        let base = r.base;
        r.words[((addr - base) / WORD_BYTES) as usize] = val;
        if !self.code_watch.is_empty() && self.code_watch.contains(&page_base(addr)) {
            self.code_gen = self.code_gen.wrapping_add(1);
        }
        Ok(())
    }

    /// Records `n` word reads in one batch — the superblock runner's
    /// accounting for the instruction fetches its trace replays, each of
    /// which the uncached path would have performed as a counted
    /// [`PhysMem::read`].
    #[inline]
    pub(crate) fn note_reads(&mut self, n: u64) {
        self.reads += n;
    }

    /// Registers the page at `page` (a page base) for write monitoring on
    /// behalf of the fetch accelerator: any subsequent write into it bumps
    /// [`PhysMem::code_gen`].
    pub(crate) fn watch_code_page(&mut self, page: Addr) {
        debug_assert!(page_aligned(page));
        self.code_watch.insert(page);
    }

    /// Drops all watched pages (the accelerator has dropped its copies).
    /// The generation counter is left monotone.
    pub(crate) fn clear_code_watch(&mut self) {
        self.code_watch.clear();
    }

    /// Current code-page write generation (see [`PhysMem::watch_code_page`]).
    #[inline]
    pub(crate) fn code_gen(&self) -> u64 {
        self.code_gen
    }

    /// Raw snapshot of one fully-RAM-backed page for decode-cache fill:
    /// the page's words and whether its region is secure. Bypasses the
    /// access counters and attribute checks — callers must re-impose both
    /// (the accelerator does) to stay architecturally invisible.
    pub(crate) fn code_page_snapshot(&self, page: Addr) -> Option<(&[Word], bool)> {
        debug_assert!(page_aligned(page));
        let r = self.region_for(page)?;
        let start = ((page - r.base) / WORD_BYTES) as usize;
        let end = start + WORDS_PER_PAGE;
        if end > r.words.len() {
            return None; // Page straddles the region end; stay uncached.
        }
        Some((&r.words[start..end], r.secure))
    }

    /// Reads a byte (for guest `LDRB`); the containing word is read and the
    /// byte extracted little-endian, as on ARM.
    pub fn read_byte(&mut self, addr: Addr, attrs: AccessAttrs) -> Result<u8, MemFault> {
        let w = self.read(addr & !3, attrs)?;
        Ok((w >> ((addr & 3) * 8)) as u8)
    }

    /// Writes a byte (for guest `STRB`) with read-modify-write of the word.
    pub fn write_byte(&mut self, addr: Addr, val: u8, attrs: AccessAttrs) -> Result<(), MemFault> {
        let aligned = addr & !3;
        let w = self.read(aligned, attrs)?;
        let shift = (addr & 3) * 8;
        let nw = (w & !(0xffu32 << shift)) | ((val as u32) << shift);
        self.write(aligned, nw, attrs)
    }

    /// Copies `words.len()` words into memory starting at `addr` (loader
    /// and test convenience; monitor-attributed).
    pub fn load_words(&mut self, addr: Addr, words: &[Word]) -> Result<(), MemFault> {
        for (i, w) in words.iter().enumerate() {
            self.write(addr + (i as u32) * WORD_BYTES, *w, AccessAttrs::MONITOR)?;
        }
        Ok(())
    }

    /// Reads `n` words starting at `addr` (test convenience).
    pub fn dump_words(&mut self, addr: Addr, n: usize) -> Result<Vec<Word>, MemFault> {
        (0..n)
            .map(|i| self.read(addr + (i as u32) * WORD_BYTES, AccessAttrs::MONITOR))
            .collect()
    }
}

impl Default for PhysMem {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> PhysMem {
        let mut m = PhysMem::new();
        m.add_region(0x0000_0000, 0x1_0000, false);
        m.add_region(0x8000_0000, 0x1_0000, true);
        m
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = mem();
        m.write(0x100, 0xdeadbeef, AccessAttrs::NORMAL).unwrap();
        assert_eq!(m.read(0x100, AccessAttrs::NORMAL).unwrap(), 0xdeadbeef);
    }

    #[test]
    fn normal_world_blocked_from_secure() {
        let mut m = mem();
        m.write(0x8000_0000, 7, AccessAttrs::MONITOR).unwrap();
        let err = m.read(0x8000_0000, AccessAttrs::NORMAL).unwrap_err();
        assert_eq!(err.kind, MemFaultKind::SecurityViolation);
        let err = m.write(0x8000_0004, 1, AccessAttrs::NORMAL).unwrap_err();
        assert_eq!(err.kind, MemFaultKind::SecurityViolation);
        // The secret is untouched.
        assert_eq!(m.read(0x8000_0000, AccessAttrs::MONITOR).unwrap(), 7);
    }

    #[test]
    fn enclave_attrs_reach_secure() {
        let mut m = mem();
        m.write(0x8000_0000, 9, AccessAttrs::ENCLAVE).unwrap();
        assert_eq!(m.read(0x8000_0000, AccessAttrs::ENCLAVE).unwrap(), 9);
    }

    #[test]
    fn unmapped_and_unaligned_fault() {
        let mut m = mem();
        assert_eq!(
            m.read(0x4000_0000, AccessAttrs::MONITOR).unwrap_err().kind,
            MemFaultKind::Unmapped
        );
        assert_eq!(
            m.read(0x102, AccessAttrs::MONITOR).unwrap_err().kind,
            MemFaultKind::Unaligned
        );
    }

    #[test]
    fn byte_access_little_endian() {
        let mut m = mem();
        m.write(0x200, 0x0403_0201, AccessAttrs::NORMAL).unwrap();
        assert_eq!(m.read_byte(0x200, AccessAttrs::NORMAL).unwrap(), 0x01);
        assert_eq!(m.read_byte(0x203, AccessAttrs::NORMAL).unwrap(), 0x04);
        m.write_byte(0x201, 0xff, AccessAttrs::NORMAL).unwrap();
        assert_eq!(m.read(0x200, AccessAttrs::NORMAL).unwrap(), 0x0403_ff01);
    }

    #[test]
    fn access_counters_increment() {
        let mut m = mem();
        let r0 = m.reads;
        let w0 = m.writes;
        m.write(0x100, 1, AccessAttrs::NORMAL).unwrap();
        m.read(0x100, AccessAttrs::NORMAL).unwrap();
        assert_eq!(m.reads, r0 + 1);
        assert_eq!(m.writes, w0 + 1);
        // Faulting accesses do not count.
        let _ = m.read(0x8000_0000, AccessAttrs::NORMAL);
        assert_eq!(m.reads, r0 + 1);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_regions_rejected() {
        let mut m = PhysMem::new();
        m.add_region(0, 0x1000, false);
        m.add_region(0x800, 0x1000, false);
    }

    #[test]
    fn load_dump_roundtrip() {
        let mut m = mem();
        m.load_words(0x400, &[1, 2, 3]).unwrap();
        assert_eq!(m.dump_words(0x400, 3).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn code_watch_generation_tracks_writes_into_watched_pages() {
        let mut m = mem();
        assert_eq!(m.code_gen(), 0);
        m.write(0x1000, 1, AccessAttrs::NORMAL).unwrap(); // Unwatched.
        assert_eq!(m.code_gen(), 0);
        m.watch_code_page(0x1000);
        m.write(0x1ffc, 2, AccessAttrs::NORMAL).unwrap(); // Same page.
        assert_eq!(m.code_gen(), 1);
        m.write_byte(0x1003, 0xab, AccessAttrs::NORMAL).unwrap(); // RMW path.
        assert_eq!(m.code_gen(), 2);
        m.write(0x2000, 3, AccessAttrs::NORMAL).unwrap(); // Next page.
        assert_eq!(m.code_gen(), 2);
        m.clear_code_watch();
        m.write(0x1000, 4, AccessAttrs::NORMAL).unwrap();
        assert_eq!(m.code_gen(), 2, "cleared watch must stop bumping");
    }

    #[test]
    fn code_page_snapshot_is_raw_and_bounded() {
        let mut m = mem();
        m.write(0x1004, 42, AccessAttrs::NORMAL).unwrap();
        let r0 = m.reads;
        let (words, secure) = m.code_page_snapshot(0x1000).unwrap();
        assert_eq!(words.len(), WORDS_PER_PAGE);
        assert_eq!(words[1], 42);
        assert!(!secure);
        assert!(m.code_page_snapshot(0x8000_0000).unwrap().1);
        assert_eq!(m.reads, r0, "snapshots must not count as reads");
        assert!(m.code_page_snapshot(0x4000_0000).is_none());
    }

    #[test]
    fn peek_is_counter_free_and_attribute_blind() {
        let mut m = mem();
        m.write(0x1004, 42, AccessAttrs::NORMAL).unwrap();
        let (r0, w0) = (m.reads, m.writes);
        assert_eq!(m.peek(0x1004), Some(42));
        assert_eq!(m.peek(0x8000_0000), Some(0), "secure RAM is peekable");
        assert_eq!(m.peek(0x1002), None, "unaligned");
        assert_eq!(m.peek(0x4000_0000), None, "unmapped");
        assert_eq!((m.reads, m.writes), (r0, w0), "peek must not count");
    }

    #[test]
    fn equality_ignores_code_watch_state() {
        let mut a = mem();
        let mut b = mem();
        a.write(0x100, 9, AccessAttrs::NORMAL).unwrap();
        b.write(0x100, 9, AccessAttrs::NORMAL).unwrap();
        a.watch_code_page(0x1000);
        assert_eq!(a, b, "watch bookkeeping must be invisible to equality");
        b.write(0x104, 1, AccessAttrs::NORMAL).unwrap();
        assert_ne!(a, b);
    }
}
