//! A32 binary encoding of the modelled instruction subset.
//!
//! Guest programs must be ordinary words in simulated memory — enclave code
//! pages are hashed for measurement and walked by the page-table logic — so
//! the assembler emits real ARM encodings and the executor decodes them.

use crate::insn::{Cond, Insn, LsmMode, MemOffset, Op2};
use crate::regs::Reg;
use crate::word::Word;

fn op2_bits(op2: Op2) -> u32 {
    match op2 {
        Op2::Imm { imm8, rot } => (1 << 25) | ((rot as u32 & 0xf) << 8) | imm8 as u32,
        Op2::Reg { rm, shift, amount } => {
            ((amount as u32 & 0x1f) << 7) | (shift.bits() << 5) | rm.index() as u32
        }
    }
}

/// Encodes an instruction to its 32-bit A32 representation.
///
/// [`Insn::Unknown`] re-emits its original word, making encode/decode an
/// exact round trip on any word.
pub fn encode(insn: Insn) -> Word {
    let c = |cond: Cond| cond.bits() << 28;
    match insn {
        Insn::Dp {
            cond,
            op,
            s,
            rd,
            rn,
            op2,
        } => {
            let s = s || op.is_compare();
            let rd_f = if op.is_compare() {
                0
            } else {
                rd.index() as u32
            };
            let rn_f = if op.is_move() { 0 } else { rn.index() as u32 };
            c(cond)
                | op2_bits(op2)
                | (op.bits() << 21)
                | ((s as u32) << 20)
                | (rn_f << 16)
                | (rd_f << 12)
        }
        Insn::Mul {
            cond,
            s,
            rd,
            rm,
            rs,
        } => {
            c(cond)
                | ((s as u32) << 20)
                | ((rd.index() as u32) << 16)
                | ((rs.index() as u32) << 8)
                | 0b1001 << 4
                | rm.index() as u32
        }
        Insn::Movw { cond, rd, imm16 } => {
            c(cond)
                | 0b0011_0000 << 20
                | ((imm16 as u32 >> 12) << 16)
                | ((rd.index() as u32) << 12)
                | (imm16 as u32 & 0xfff)
        }
        Insn::Movt { cond, rd, imm16 } => {
            c(cond)
                | 0b0011_0100 << 20
                | ((imm16 as u32 >> 12) << 16)
                | ((rd.index() as u32) << 12)
                | (imm16 as u32 & 0xfff)
        }
        Insn::Ldr {
            cond,
            rd,
            rn,
            off,
            byte,
        } => encode_mem(c(cond), true, rd, rn, off, byte),
        Insn::Str {
            cond,
            rd,
            rn,
            off,
            byte,
        } => encode_mem(c(cond), false, rd, rn, off, byte),
        Insn::Ldm {
            cond,
            rn,
            writeback,
            regs,
            mode,
        } => encode_lsm(c(cond), true, rn, writeback, regs, mode),
        Insn::Stm {
            cond,
            rn,
            writeback,
            regs,
            mode,
        } => encode_lsm(c(cond), false, rn, writeback, regs, mode),
        Insn::B { cond, offset } => c(cond) | 0b1010 << 24 | (offset as u32 & 0x00ff_ffff),
        Insn::Bl { cond, offset } => c(cond) | 0b1011 << 24 | (offset as u32 & 0x00ff_ffff),
        Insn::Bx { cond, rm } => c(cond) | 0x012f_ff10 | rm.index() as u32,
        Insn::Svc { cond, imm24 } => c(cond) | 0xf << 24 | (imm24 & 0x00ff_ffff),
        Insn::Smc { cond, imm4 } => c(cond) | 0x0160_0070 | (imm4 as u32 & 0xf),
        Insn::Mrs { cond, rd } => c(cond) | 0x010f_0000 | ((rd.index() as u32) << 12),
        Insn::Mcr { cond, cp, rt } => {
            c(cond) | 0x0e00_0010 | ((rt.index() as u32) << 12) | ((cp as u32 & 0xf) << 8)
        }
        Insn::Mrc { cond, cp, rt } => {
            c(cond) | 0x0e10_0010 | ((rt.index() as u32) << 12) | ((cp as u32 & 0xf) << 8)
        }
        Insn::Udf { imm16 } => 0xe7f0_00f0 | (((imm16 as u32) >> 4) << 8) | (imm16 as u32 & 0xf),
        Insn::Unknown(w) => w,
    }
}

fn encode_mem(cond: u32, load: bool, rd: Reg, rn: Reg, off: MemOffset, byte: bool) -> Word {
    // P=1 (offset addressing), W=0 (no writeback).
    let base = cond
        | (1 << 24)
        | ((byte as u32) << 22)
        | ((load as u32) << 20)
        | ((rn.index() as u32) << 16)
        | ((rd.index() as u32) << 12);
    match off {
        MemOffset::Imm { imm12, add } => {
            base | (0b010 << 25) | ((add as u32) << 23) | (imm12 as u32 & 0xfff)
        }
        MemOffset::Reg { rm, add } => {
            base | (0b011 << 25) | ((add as u32) << 23) | rm.index() as u32
        }
    }
}

fn encode_lsm(cond: u32, load: bool, rn: Reg, writeback: bool, regs: u16, mode: LsmMode) -> Word {
    let (p, u) = match mode {
        LsmMode::Ia => (0u32, 1u32),
        LsmMode::Db => (1, 0),
    };
    cond | (0b100 << 25)
        | (p << 24)
        | (u << 23)
        | ((writeback as u32) << 21)
        | ((load as u32) << 20)
        | ((rn.index() as u32) << 16)
        | regs as u32
}

/// Convenience: encode to a vector of words.
pub fn encode_all(insns: &[Insn]) -> Vec<Word> {
    insns.iter().map(|i| encode(*i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::DpOp;

    // Cross-checked against GNU `as` output for the same mnemonics.
    #[test]
    fn known_encodings() {
        // mov r0, #1
        assert_eq!(
            encode(Insn::Dp {
                cond: Cond::Al,
                op: DpOp::Mov,
                s: false,
                rd: Reg::R(0),
                rn: Reg::R(0),
                op2: Op2::imm(1),
            }),
            0xe3a0_0001
        );
        // add r1, r2, r3
        assert_eq!(
            encode(Insn::Dp {
                cond: Cond::Al,
                op: DpOp::Add,
                s: false,
                rd: Reg::R(1),
                rn: Reg::R(2),
                op2: Op2::reg(Reg::R(3)),
            }),
            0xe082_1003
        );
        // cmp r0, #0
        assert_eq!(
            encode(Insn::Dp {
                cond: Cond::Al,
                op: DpOp::Cmp,
                s: true,
                rd: Reg::R(0),
                rn: Reg::R(0),
                op2: Op2::imm(0),
            }),
            0xe350_0000
        );
        // ldr r0, [r1, #4]
        assert_eq!(
            encode(Insn::Ldr {
                cond: Cond::Al,
                rd: Reg::R(0),
                rn: Reg::R(1),
                off: MemOffset::Imm {
                    imm12: 4,
                    add: true
                },
                byte: false,
            }),
            0xe591_0004
        );
        // str r2, [r3]
        assert_eq!(
            encode(Insn::Str {
                cond: Cond::Al,
                rd: Reg::R(2),
                rn: Reg::R(3),
                off: MemOffset::Imm {
                    imm12: 0,
                    add: true
                },
                byte: false,
            }),
            0xe583_2000
        );
        // svc #0
        assert_eq!(
            encode(Insn::Svc {
                cond: Cond::Al,
                imm24: 0
            }),
            0xef00_0000
        );
        // bx lr
        assert_eq!(
            encode(Insn::Bx {
                cond: Cond::Al,
                rm: Reg::Lr
            }),
            0xe12f_ff1e
        );
        // movw r4, #0xbeef
        assert_eq!(
            encode(Insn::Movw {
                cond: Cond::Al,
                rd: Reg::R(4),
                imm16: 0xbeef
            }),
            0xe30b_4eef
        );
        // movt r4, #0xdead
        assert_eq!(
            encode(Insn::Movt {
                cond: Cond::Al,
                rd: Reg::R(4),
                imm16: 0xdead
            }),
            0xe34d_4ead
        );
        // push {r4, lr} = stmdb sp!, {r4, lr}
        assert_eq!(
            encode(Insn::Stm {
                cond: Cond::Al,
                rn: Reg::Sp,
                writeback: true,
                regs: (1 << 4) | (1 << 14),
                mode: LsmMode::Db,
            }),
            0xe92d_4010
        );
        // pop {r4, lr} = ldmia sp!, {r4, lr}
        assert_eq!(
            encode(Insn::Ldm {
                cond: Cond::Al,
                rn: Reg::Sp,
                writeback: true,
                regs: (1 << 4) | (1 << 14),
                mode: LsmMode::Ia,
            }),
            0xe8bd_4010
        );
        // b . (offset -2 → 0xfffffe)
        assert_eq!(
            encode(Insn::B {
                cond: Cond::Al,
                offset: -2
            }),
            0xeaff_fffe
        );
        // mul r0, r1, r2
        assert_eq!(
            encode(Insn::Mul {
                cond: Cond::Al,
                s: false,
                rd: Reg::R(0),
                rm: Reg::R(1),
                rs: Reg::R(2),
            }),
            0xe000_0291
        );
        // udf #0
        assert_eq!(encode(Insn::Udf { imm16: 0 }), 0xe7f0_00f0);
    }

    #[test]
    fn eor_with_rotate() {
        // eor r0, r1, r2, ror #6 (SHA-style rotate-xor)
        assert_eq!(
            encode(Insn::Dp {
                cond: Cond::Al,
                op: DpOp::Eor,
                s: false,
                rd: Reg::R(0),
                rn: Reg::R(1),
                op2: Op2::Reg {
                    rm: Reg::R(2),
                    shift: crate::insn::Shift::Ror,
                    amount: 6
                },
            }),
            0xe021_0362
        );
    }
}
