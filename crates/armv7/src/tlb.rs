//! TLB-consistency model (paper §5.1).
//!
//! "Executing a TLB flush instruction marks the TLB as consistent. Loading
//! the page-table base register, or executing a store to an address in
//! either the first-level or any second-level page table, marks the TLB as
//! inconsistent. This gives the implementation freedom to either simply
//! flush the TLB whenever consistency is required, or else to prove that its
//! stores did not modify the page table. For simplicity, we model only
//! flushes of the entire TLB."
//!
//! Besides the consistency bit, the model keeps a translation cache so that
//! repeated accesses to the same page cost less than a full walk — the
//! basis for the TLB-flush-avoidance ablation in the evaluation.

use crate::fxhash::FxHashMap;
use crate::ptw::Translation;
use crate::word::Addr;

/// The TLB: a consistency flag plus a per-virtual-page translation cache.
///
/// The entries map sits on the per-instruction fetch path, so it uses the
/// local FxHash hasher rather than `std`'s keyed SipHash (the keys are
/// guest page addresses, not attacker-chosen host input).
#[derive(Clone, Debug, PartialEq)]
pub struct Tlb {
    consistent: bool,
    entries: FxHashMap<Addr, Translation>,
    /// Walks performed (misses); cycle-model input.
    pub misses: u64,
    /// Cache hits; cycle-model input.
    pub hits: u64,
    /// Full flushes performed.
    pub flushes: u64,
}

impl Tlb {
    /// A fresh, consistent, empty TLB.
    pub fn new() -> Tlb {
        Tlb {
            consistent: true,
            entries: FxHashMap::default(),
            misses: 0,
            hits: 0,
            flushes: 0,
        }
    }

    /// Whether cached translations are guaranteed to match the tables.
    pub fn is_consistent(&self) -> bool {
        self.consistent
    }

    /// Marks the TLB inconsistent (page-table store or `TTBR` load).
    pub fn mark_inconsistent(&mut self) {
        self.consistent = false;
    }

    /// Flushes the entire TLB, restoring consistency.
    pub fn flush(&mut self) {
        self.entries.clear();
        self.consistent = true;
        self.flushes += 1;
    }

    /// Looks up the translation for the page containing `va`.
    pub fn lookup(&mut self, va: Addr) -> Option<Translation> {
        let hit = self.entries.get(&(va & !0xfff)).copied();
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    /// Records `n` cache hits in one batch — the superblock runner's
    /// accounting for the instruction fetches its trace replays, each of
    /// which provably still hits (entries leave the TLB only on a full
    /// flush, and a flush drops every superblock). Equivalent to `n`
    /// successful [`Tlb::lookup`] calls.
    #[inline]
    pub fn note_hits(&mut self, n: u64) {
        self.hits += n;
    }

    /// Records a page-table walk (a TLB miss). Counted at the walk site —
    /// not in [`Tlb::insert`] — so that *faulting* walks, which charge
    /// `cost::TLB_WALK` but never produce a translation to insert, are
    /// included in the statistic.
    pub fn note_walk(&mut self) {
        self.misses += 1;
    }

    /// Inserts a walked translation for the page containing `va`.
    ///
    /// Does **not** count the miss; the walk site calls [`Tlb::note_walk`]
    /// whether or not the walk succeeds.
    pub fn insert(&mut self, va: Addr, t: Translation) {
        // Cache the page-base translation (strip the offset `walk` added).
        let page_t = Translation {
            pa: t.pa & !0xfff,
            ..t
        };
        self.entries.insert(va & !0xfff, page_t);
    }

    /// Number of cached translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for Tlb {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ptw::PagePerms;

    fn t(pa: Addr) -> Translation {
        Translation {
            pa,
            perms: PagePerms::RW,
            ns: false,
        }
    }

    #[test]
    fn starts_consistent_and_empty() {
        let tlb = Tlb::new();
        assert!(tlb.is_consistent());
        assert!(tlb.is_empty());
    }

    #[test]
    fn inconsistency_and_flush() {
        let mut tlb = Tlb::new();
        tlb.mark_inconsistent();
        assert!(!tlb.is_consistent());
        tlb.flush();
        assert!(tlb.is_consistent());
        assert_eq!(tlb.flushes, 1);
    }

    #[test]
    fn lookup_after_insert() {
        let mut tlb = Tlb::new();
        assert_eq!(tlb.lookup(0x1234), None);
        tlb.note_walk(); // The walk site counts the miss...
        tlb.insert(0x1234, t(0x8000_1234)); // ...insert does not.
        let hit = tlb.lookup(0x1678).unwrap(); // Same page.
        assert_eq!(hit.pa, 0x8000_1000);
        assert_eq!(tlb.hits, 1);
        assert_eq!(tlb.misses, 1);
    }

    #[test]
    fn faulting_walk_counts_without_insert() {
        // A walk that faults never reaches `insert`, but the walk site
        // still counts it (it charged `cost::TLB_WALK`).
        let mut tlb = Tlb::new();
        tlb.note_walk();
        assert_eq!(tlb.misses, 1);
        assert!(tlb.is_empty());
    }

    #[test]
    fn note_hits_matches_repeated_lookups() {
        // Batched superblock accounting must be indistinguishable from the
        // per-instruction path issuing the same number of lookups.
        let mut batched = Tlb::new();
        let mut stepped = Tlb::new();
        batched.insert(0x1000, t(0x2000));
        stepped.insert(0x1000, t(0x2000));
        batched.note_hits(5);
        for _ in 0..5 {
            stepped.lookup(0x1000).unwrap();
        }
        assert_eq!(batched.hits, stepped.hits);
        assert_eq!(batched.misses, stepped.misses);
    }

    #[test]
    fn flush_clears_entries() {
        let mut tlb = Tlb::new();
        tlb.insert(0x1000, t(0x2000));
        tlb.flush();
        assert_eq!(tlb.lookup(0x1000), None);
    }
}
