//! Fault and error types for the machine model.

use crate::word::Addr;

/// Why a memory access faulted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemFaultKind {
    /// Address not backed by any RAM region.
    Unmapped,
    /// Non-secure access to secure memory, blocked by the TrustZone
    /// memory controller (paper §3.3: TZ-aware memory controller prevents
    /// normal-world access to secure-world memory).
    SecurityViolation,
    /// Unaligned word access; the model only defines aligned accesses
    /// (paper §5.1: "reasoning only about aligned memory accesses").
    Unaligned,
    /// Virtual address had no valid translation.
    Translation,
    /// Translation exists but permissions deny the access.
    Permission,
}

/// A faulting memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemFault {
    /// The offending (virtual, if translated; else physical) address.
    pub addr: Addr,
    /// Fault classification.
    pub kind: MemFaultKind,
    /// Whether the access was a write.
    pub write: bool,
}

impl MemFault {
    /// Convenience constructor.
    pub fn new(addr: Addr, kind: MemFaultKind, write: bool) -> Self {
        MemFault { addr, kind, write }
    }
}

impl core::fmt::Display for MemFault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:?} fault on {} at {:#010x}",
            self.kind,
            if self.write { "write" } else { "read" },
            self.addr
        )
    }
}

impl std::error::Error for MemFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let f = MemFault::new(0x1000, MemFaultKind::SecurityViolation, true);
        let s = f.to_string();
        assert!(s.contains("0x00001000") && s.contains("write"));
    }
}
