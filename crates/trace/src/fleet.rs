//! Cross-machine metrics aggregation for sharded fleets.
//!
//! [`MetricsSnapshot`] is one machine's counters; a fleet runs many
//! machines across worker shards and needs the fold: per-shard snapshots
//! kept for attribution, a summed total, and the skew between the
//! busiest and idlest shard (a load-balance diagnostic — a work queue
//! that hands out jobs evenly should keep the ratio near 1). This
//! module is pure data: the scheduler (`komodo-fleet`) folds into it,
//! the bench JSON emitter reads through it.

use crate::metrics::MetricsSnapshot;
use core::fmt::Write as _;

/// Min/max of one counter across a fleet's shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Skew {
    /// Smallest per-shard value.
    pub min: u64,
    /// Largest per-shard value.
    pub max: u64,
}

impl Skew {
    /// `max / min` as a load-balance ratio; `None` when the minimum is
    /// zero (an idle shard — infinite skew).
    pub fn ratio(&self) -> Option<f64> {
        (self.min != 0).then(|| self.max as f64 / self.min as f64)
    }
}

/// Per-shard [`MetricsSnapshot`]s folded into one aggregate.
///
/// The shard vector is the attribution record (which shard did what);
/// [`FleetMetrics::total`] is the sum across shards. Because every
/// counter is a monotone per-machine tally, the total of a job set is
/// independent of how jobs were distributed — the fleet determinism
/// suite relies on exactly this to compare 1-shard and N-shard runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetMetrics {
    per_shard: Vec<MetricsSnapshot>,
}

impl FleetMetrics {
    /// An aggregate with `shards` zeroed shard slots.
    pub fn new(shards: usize) -> FleetMetrics {
        FleetMetrics {
            per_shard: vec![MetricsSnapshot::default(); shards],
        }
    }

    /// Wraps already-collected per-shard snapshots.
    pub fn from_shards(per_shard: Vec<MetricsSnapshot>) -> FleetMetrics {
        FleetMetrics { per_shard }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.per_shard.len()
    }

    /// The per-shard snapshots, indexed by shard id.
    pub fn shards(&self) -> &[MetricsSnapshot] {
        &self.per_shard
    }

    /// Folds `snap` into shard `shard`'s slot.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn fold(&mut self, shard: usize, snap: &MetricsSnapshot) {
        self.per_shard[shard].absorb(snap);
    }

    /// The summed counters across all shards.
    pub fn total(&self) -> MetricsSnapshot {
        let mut t = MetricsSnapshot::default();
        for s in &self.per_shard {
            t.absorb(s);
        }
        t
    }

    /// Min/max of `key` across shards; `None` for an empty fleet.
    pub fn skew(&self, key: impl Fn(&MetricsSnapshot) -> u64) -> Option<Skew> {
        let mut it = self.per_shard.iter().map(key);
        let first = it.next()?;
        let mut s = Skew {
            min: first,
            max: first,
        };
        for v in it {
            s.min = s.min.min(v);
            s.max = s.max.max(v);
        }
        Some(s)
    }

    /// Skew of simulated cycles — the default load-balance diagnostic
    /// (cycles track how much simulated work each shard absorbed).
    pub fn cycle_skew(&self) -> Option<Skew> {
        self.skew(|s| s.cycles)
    }

    /// Renders the aggregate as a JSON object: the summed total, the
    /// cycle skew, and the per-shard snapshot array. Hand-rolled like
    /// [`MetricsSnapshot::to_json`] (the build is hermetic — no serde).
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent + 2);
        let skew = self.cycle_skew().unwrap_or_default();
        let mut out = String::from("{\n");
        let _ = writeln!(out, "{pad}\"shards\": {},", self.shard_count());
        let _ = writeln!(out, "{pad}\"cycle_skew_min\": {},", skew.min);
        let _ = writeln!(out, "{pad}\"cycle_skew_max\": {},", skew.max);
        let _ = writeln!(out, "{pad}\"total\": {},", self.total().to_json(indent + 2));
        let _ = writeln!(out, "{pad}\"per_shard\": [");
        for (i, s) in self.per_shard.iter().enumerate() {
            let comma = if i + 1 == self.per_shard.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(out, "{pad}  {}{comma}", s.to_json(indent + 4));
        }
        let _ = writeln!(out, "{pad}]");
        let _ = write!(out, "{}}}", " ".repeat(indent));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(cycles: u64, tlb_hits: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            cycles,
            tlb_hits,
            ..Default::default()
        }
    }

    #[test]
    fn total_sums_across_shards() {
        let mut f = FleetMetrics::new(3);
        f.fold(0, &snap(10, 1));
        f.fold(2, &snap(30, 2));
        f.fold(2, &snap(5, 0));
        let t = f.total();
        assert_eq!(t.cycles, 45);
        assert_eq!(t.tlb_hits, 3);
        assert_eq!(f.shards()[2].cycles, 35);
        assert_eq!(f.shards()[1], MetricsSnapshot::default());
    }

    #[test]
    fn total_is_distribution_independent() {
        // The same three job snapshots folded onto 1 shard vs 3 shards
        // sum identically — the determinism contract.
        let jobs = [snap(7, 2), snap(11, 4), snap(13, 8)];
        let mut one = FleetMetrics::new(1);
        let mut three = FleetMetrics::new(3);
        for (i, j) in jobs.iter().enumerate() {
            one.fold(0, j);
            three.fold(i % 3, j);
        }
        assert_eq!(one.total(), three.total());
    }

    #[test]
    fn skew_tracks_min_and_max() {
        let f = FleetMetrics::from_shards(vec![snap(100, 0), snap(50, 0), snap(200, 0)]);
        let s = f.cycle_skew().unwrap();
        assert_eq!((s.min, s.max), (50, 200));
        assert_eq!(s.ratio(), Some(4.0));
        assert!(FleetMetrics::new(0).cycle_skew().is_none());
        assert_eq!(Skew { min: 0, max: 9 }.ratio(), None);
    }

    #[test]
    fn json_carries_total_skew_and_shards() {
        let f = FleetMetrics::from_shards(vec![snap(4, 0), snap(6, 0)]);
        let j = f.to_json(0);
        assert!(j.contains("\"shards\": 2"));
        assert!(j.contains("\"cycle_skew_min\": 4"));
        assert!(j.contains("\"cycle_skew_max\": 6"));
        assert!(j.contains("\"per_shard\": ["));
        assert_eq!(j.matches("\"cycles\":").count(), 3, "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
