//! Chrome `trace_event` exporter.
//!
//! Renders a capture as the JSON object format understood by
//! `chrome://tracing` and Perfetto: SMC dispatches and enclave
//! occupancy become duration spans (`ph:"B"` / `ph:"E"`), everything
//! else becomes an instant (`ph:"i"`). Timestamps are simulated cycles
//! reported through the `ts` microsecond field — the viewer's absolute
//! units are meaningless for a simulator, only the relative timeline
//! matters.
//!
//! Hand-rolled JSON: every name is a static ASCII identifier and every
//! argument a number, so no string escaping is required (and the build
//! stays serde-free).

use crate::event::{mode_name, page_type_name, Event, Stamped};
use core::fmt::Write as _;

/// Phase and rendered `"name":…,"args":{…}` fragment for one event.
fn render(e: &Event) -> (char, String) {
    match *e {
        Event::SmcEntry { call } => ('B', format!(r#""name":"smc","args":{{"call":{call}}}"#)),
        Event::SmcExit { call, err, retval } => (
            'E',
            format!(r#""name":"smc","args":{{"call":{call},"err":{err},"retval":{retval}}}"#),
        ),
        Event::EnclaveEnter { thread } => (
            'B',
            format!(r#""name":"enclave","args":{{"thread":{thread},"kind":"enter"}}"#),
        ),
        Event::EnclaveResume { thread } => (
            'B',
            format!(r#""name":"enclave","args":{{"thread":{thread},"kind":"resume"}}"#),
        ),
        Event::EnclaveExit { thread, err } => (
            'E',
            format!(r#""name":"enclave","args":{{"thread":{thread},"err":{err}}}"#),
        ),
        Event::WorldSwitch { ns } => (
            'i',
            format!(r#""name":"world-switch","args":{{"ns":{}}}"#, ns as u32),
        ),
        Event::ExnEntry {
            vector,
            from_mode,
            to_mode,
        } => (
            'i',
            format!(
                r#""name":"exn-entry","args":{{"vector":"{}","from":"{}","to":"{}"}}"#,
                vector.name(),
                mode_name(from_mode),
                mode_name(to_mode)
            ),
        ),
        Event::ExnExit { to_mode } => (
            'i',
            format!(
                r#""name":"exn-exit","args":{{"to":"{}"}}"#,
                mode_name(to_mode)
            ),
        ),
        Event::EnclaveInit { addrspace } => (
            'i',
            format!(r#""name":"enclave-init","args":{{"addrspace":{addrspace}}}"#),
        ),
        Event::EnclaveDestroy { page } => (
            'i',
            format!(r#""name":"enclave-destroy","args":{{"page":{page}}}"#),
        ),
        Event::PageDbTransition { page, from, to } => (
            'i',
            format!(
                r#""name":"pgdb","args":{{"page":{page},"from":"{}","to":"{}"}}"#,
                page_type_name(from),
                page_type_name(to)
            ),
        ),
        Event::TlbFlush => ('i', r#""name":"tlb-flush","args":{}"#.to_string()),
        Event::DTlbInval { cause } => (
            'i',
            format!(
                r#""name":"dtlb-inval","args":{{"cause":"{}"}}"#,
                cause.name()
            ),
        ),
        Event::SbBuild { entry_va, len } => (
            'i',
            format!(r#""name":"sb-build","args":{{"entry_va":{entry_va},"len":{len}}}"#),
        ),
        Event::SbInval { cause } => (
            'i',
            format!(r#""name":"sb-inval","args":{{"cause":"{}"}}"#, cause.name()),
        ),
        Event::UopPromote { entry_va, len } => (
            'i',
            format!(r#""name":"uop-promote","args":{{"entry_va":{entry_va},"len":{len}}}"#),
        ),
        Event::UopInval { cause } => (
            'i',
            format!(
                r#""name":"uop-inval","args":{{"cause":"{}"}}"#,
                cause.name()
            ),
        ),
        Event::ReqDispatch { req, kind } => (
            'B',
            format!(r#""name":"request","args":{{"req":{req},"kind":{kind}}}"#),
        ),
        Event::ReqComplete { req, ok } => (
            'E',
            format!(
                r#""name":"request","args":{{"req":{req},"ok":{}}}"#,
                ok as u32
            ),
        ),
        Event::ChaosInject { kind, arg } => (
            'i',
            format!(r#""name":"chaos","args":{{"kind":{kind},"arg":{arg}}}"#),
        ),
        Event::HsPhase { phase, session } => (
            'i',
            format!(
                r#""name":"handshake","args":{{"phase":"{}","session":{session}}}"#,
                crate::event::hs_phase_name(phase)
            ),
        ),
    }
}

/// Renders `events` (oldest → newest, as produced by
/// [`FlightRecorder::iter`](crate::FlightRecorder::iter)) as a complete
/// Chrome `trace_event` JSON document.
pub fn chrome_trace<'a>(events: impl IntoIterator<Item = &'a Stamped>) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for s in events {
        let (ph, body) = render(&s.event);
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            r#"{{"ph":"{ph}","ts":{},"pid":1,"tid":1,{body}"#,
            s.cycle
        );
        if ph == 'i' {
            out.push_str(r#","s":"t""#);
        }
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ExnVector;
    use crate::ring::FlightRecorder;

    /// Minimal structural JSON check: balanced braces/brackets outside
    /// strings, no trailing commas before closers. (CI additionally
    /// parses an emitted trace with a real JSON parser.)
    fn assert_structurally_sound(s: &str) {
        let mut depth: i64 = 0;
        let mut in_str = false;
        let mut prev = ' ';
        for c in s.chars() {
            if in_str {
                if c == '"' && prev != '\\' {
                    in_str = false;
                }
            } else {
                match c {
                    '"' => in_str = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' => {
                        assert_ne!(prev, ',', "trailing comma before closer in {s}");
                        depth -= 1;
                        assert!(depth >= 0, "unbalanced closers in {s}");
                    }
                    _ => {}
                }
            }
            if !c.is_whitespace() {
                prev = c;
            }
        }
        assert_eq!(depth, 0, "unbalanced JSON in {s}");
        assert!(!in_str, "unterminated string in {s}");
    }

    #[test]
    fn empty_capture_is_still_a_document() {
        let r = FlightRecorder::with_capacity(8);
        let j = chrome_trace(r.iter());
        assert_structurally_sound(&j);
        assert!(j.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn smc_span_and_instants_render() {
        let mut r = FlightRecorder::with_capacity(16);
        r.record(100, Event::WorldSwitch { ns: false });
        r.record(
            101,
            Event::ExnEntry {
                vector: ExnVector::Smc,
                from_mode: 0x1f,
                to_mode: 0x16,
            },
        );
        r.record(102, Event::SmcEntry { call: 10 });
        r.record(
            500,
            Event::SmcExit {
                call: 10,
                err: 0,
                retval: 7,
            },
        );
        let j = chrome_trace(r.iter());
        assert_structurally_sound(&j);
        assert!(j.contains(r#""ph":"B","ts":102"#), "{j}");
        assert!(j.contains(r#""ph":"E","ts":500"#), "{j}");
        assert!(j.contains(r#""vector":"smc""#), "{j}");
        assert!(j.contains(r#""s":"t""#), "{j}");
    }

    #[test]
    fn every_event_kind_renders_soundly() {
        let mut r = FlightRecorder::with_capacity(32);
        let all = [
            Event::WorldSwitch { ns: true },
            Event::ExnEntry {
                vector: ExnVector::Irq,
                from_mode: 0x10,
                to_mode: 0x12,
            },
            Event::ExnExit { to_mode: 0x10 },
            Event::SmcEntry { call: 1 },
            Event::SmcExit {
                call: 1,
                err: 0,
                retval: 0,
            },
            Event::EnclaveInit { addrspace: 3 },
            Event::EnclaveEnter { thread: 5 },
            Event::EnclaveResume { thread: 5 },
            Event::EnclaveExit { thread: 5, err: 0 },
            Event::EnclaveDestroy { page: 3 },
            Event::PageDbTransition {
                page: 9,
                from: 0,
                to: 5,
            },
            Event::TlbFlush,
            Event::DTlbInval {
                cause: crate::event::InvalCause::World,
            },
            Event::SbBuild {
                entry_va: 0x8000,
                len: 12,
            },
            Event::SbInval {
                cause: crate::event::InvalCause::CodeGen,
            },
            Event::UopPromote {
                entry_va: 0x8000,
                len: 9,
            },
            Event::UopInval {
                cause: crate::event::InvalCause::Ttbr,
            },
            Event::ReqDispatch { req: 42, kind: 2 },
            Event::ReqComplete { req: 42, ok: true },
            Event::HsPhase {
                phase: 2,
                session: 7,
            },
        ];
        for (i, e) in all.into_iter().enumerate() {
            r.record(i as u64, e);
        }
        let j = chrome_trace(r.iter());
        assert_structurally_sound(&j);
        assert_eq!(j.matches("\"ph\"").count(), 20, "{j}");
        assert!(j.contains(r#""phase":"establish""#), "{j}");
    }
}
