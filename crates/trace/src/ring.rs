//! The flight recorder: a fixed-capacity ring of [`Stamped`] events.
//!
//! Capacity 0 (the default) is the disabled path — [`FlightRecorder::record`]
//! is then a single predictable branch, which is what keeps always-compiled
//! instrumentation inside the bench smoke's 2% overhead budget. When
//! enabled, the ring keeps the most recent `capacity` events and counts
//! (but does not store) everything older, so a crash dump can say how much
//! history was lost.
//!
//! "Lock-free-to-read": the simulator is single-threaded, so there are no
//! locks to be free of — the point is that every read path (`iter`,
//! `tail`, `dump_tail`) takes `&self` and never mutates, so a panic hook
//! or divergence report can format the buffer from any vantage point
//! without disturbing the recorder's state.

use crate::event::{Event, Stamped};

/// Fixed-capacity event ring (see module docs).
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    /// Ring storage; length grows to `cap` then stays there.
    buf: Vec<Stamped>,
    /// Capacity; 0 disables recording entirely.
    cap: usize,
    /// Total events ever recorded (monotonic; `recorded - len` = dropped).
    total: u64,
}

impl FlightRecorder {
    /// A disabled recorder (capacity 0). Recording is a no-op until
    /// [`FlightRecorder::set_capacity`] arms it.
    pub fn disabled() -> FlightRecorder {
        FlightRecorder {
            buf: Vec::new(),
            cap: 0,
            total: 0,
        }
    }

    /// A recorder keeping the most recent `capacity` events.
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            buf: Vec::with_capacity(capacity.min(1 << 20)),
            cap: capacity,
            total: 0,
        }
    }

    /// Re-arms the recorder with a new capacity, clearing any capture.
    /// Capacity 0 disables recording.
    pub fn set_capacity(&mut self, capacity: usize) {
        *self = FlightRecorder::with_capacity(capacity);
    }

    /// Whether recording is armed (capacity > 0). Instrumentation sites
    /// that need extra work to *assemble* an event (e.g. reading the old
    /// page type for a transition) gate on this first.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.cap != 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the capture is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded, including those the ring has since
    /// overwritten.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events lost to wraparound.
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Records `event` at `cycle`. Disabled (capacity 0) recorders return
    /// immediately. Never touches simulated state.
    #[inline]
    pub fn record(&mut self, cycle: u64, event: Event) {
        if self.cap == 0 {
            return;
        }
        let s = Stamped { cycle, event };
        if self.buf.len() < self.cap {
            self.buf.push(s);
        } else {
            let at = (self.total as usize) % self.cap;
            self.buf[at] = s;
        }
        self.total += 1;
    }

    /// Clears the capture without changing the capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.total = 0;
    }

    /// Iterates the capture oldest → newest. Read-only.
    pub fn iter(&self) -> impl Iterator<Item = &Stamped> {
        let split = if self.buf.len() < self.cap || self.cap == 0 {
            0 // Not yet wrapped (or disabled): storage order is oldest-first.
        } else {
            (self.total as usize) % self.cap
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }

    /// The `n` most recent events, oldest → newest. Read-only.
    pub fn tail(&self, n: usize) -> Vec<Stamped> {
        let skip = self.buf.len().saturating_sub(n);
        self.iter().skip(skip).copied().collect()
    }

    /// Formats the `n` most recent events, one per line, oldest → newest,
    /// with a header noting capture totals. This is what the panic/fault
    /// dump hook and the NI divergence reports print.
    pub fn dump_tail(&self, n: usize) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight recorder: {} events captured ({} total, {} dropped)",
            self.buf.len(),
            self.total,
            self.dropped()
        );
        if !self.enabled() {
            out.push_str("  (recording disabled: capacity 0)\n");
            return out;
        }
        for s in self.tail(n) {
            let _ = writeln!(out, "  {s}");
        }
        out
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u32) -> Event {
        Event::SmcEntry { call: n }
    }

    fn cycles_of(r: &FlightRecorder) -> Vec<u64> {
        r.iter().map(|s| s.cycle).collect()
    }

    #[test]
    fn capacity_zero_is_disabled_and_records_nothing() {
        let mut r = FlightRecorder::disabled();
        assert!(!r.enabled());
        for i in 0..100 {
            r.record(i, ev(i as u32));
        }
        assert!(r.is_empty());
        assert_eq!(r.total_recorded(), 0);
        assert_eq!(r.iter().count(), 0); // Must not divide by capacity 0.
        assert!(r.tail(8).is_empty());
        assert!(r.dump_tail(8).contains("disabled"));
    }

    #[test]
    fn fills_then_wraps_keeping_most_recent() {
        let mut r = FlightRecorder::with_capacity(4);
        for i in 0..3 {
            r.record(i, ev(i as u32));
        }
        assert_eq!(cycles_of(&r), vec![0, 1, 2]);
        for i in 3..10 {
            r.record(i, ev(i as u32));
        }
        // Capacity 4, 10 recorded: the ring holds the last four, in order.
        assert_eq!(cycles_of(&r), vec![6, 7, 8, 9]);
        assert_eq!(r.total_recorded(), 10);
        assert_eq!(r.dropped(), 6);
    }

    #[test]
    fn wraps_exactly_at_capacity_boundary() {
        let mut r = FlightRecorder::with_capacity(3);
        for i in 0..3 {
            r.record(i, ev(i as u32));
        }
        assert_eq!(cycles_of(&r), vec![0, 1, 2]);
        assert_eq!(r.dropped(), 0);
        r.record(3, ev(3));
        assert_eq!(cycles_of(&r), vec![1, 2, 3]);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn tail_returns_most_recent_in_order() {
        let mut r = FlightRecorder::with_capacity(8);
        for i in 0..20 {
            r.record(i, ev(i as u32));
        }
        let t = r.tail(3);
        assert_eq!(
            t.iter().map(|s| s.cycle).collect::<Vec<_>>(),
            vec![17, 18, 19]
        );
        // Asking for more than captured returns everything held.
        assert_eq!(r.tail(100).len(), 8);
    }

    #[test]
    fn set_capacity_rearms_and_clears() {
        let mut r = FlightRecorder::with_capacity(2);
        r.record(1, ev(1));
        r.set_capacity(4);
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 4);
        assert_eq!(r.total_recorded(), 0);
        r.set_capacity(0);
        r.record(5, ev(5));
        assert!(r.is_empty());
    }

    #[test]
    fn dump_tail_lists_events_oldest_first() {
        let mut r = FlightRecorder::with_capacity(4);
        r.record(10, ev(1));
        r.record(20, Event::TlbFlush);
        let d = r.dump_tail(4);
        let first = d.find("smc-entry").unwrap();
        let second = d.find("tlb-flush").unwrap();
        assert!(first < second, "{d}");
        assert!(d.contains("2 events captured"), "{d}");
    }
}
