//! The event taxonomy: what the simulator and monitor consider worth
//! remembering at their boundaries.
//!
//! Events are plain `Copy` data — no strings, no allocation — so
//! recording one is a couple of word moves. Everything needed to render
//! a human-readable line (or a Chrome trace entry) later is carried as
//! small integers: exception vectors and invalidation causes as local
//! enums, CPU modes as raw CPSR\[4:0\] bits, page-DB types as the
//! monitor's `ptype` codes.

/// Exception vector taken or returned from. Mirrors the simulator's
/// `ExceptionKind` without depending on it (this crate is a leaf).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExnVector {
    /// Supervisor call (`SVC`) — an enclave calling the monitor.
    Svc,
    /// Secure monitor call (`SMC`) — the OS calling the monitor.
    Smc,
    /// Normal interrupt request.
    Irq,
    /// Fast interrupt request.
    Fiq,
    /// Data abort (translation or permission fault on a data access).
    DataAbort,
    /// Prefetch abort (translation or permission fault on a fetch).
    PrefetchAbort,
    /// Undefined instruction.
    Undefined,
}

impl ExnVector {
    /// Short lowercase name for dumps and trace labels.
    pub fn name(self) -> &'static str {
        match self {
            ExnVector::Svc => "svc",
            ExnVector::Smc => "smc",
            ExnVector::Irq => "irq",
            ExnVector::Fiq => "fiq",
            ExnVector::DataAbort => "dabt",
            ExnVector::PrefetchAbort => "pabt",
            ExnVector::Undefined => "und",
        }
    }
}

/// Why a host-side cache (data-TLB or superblock cache) was dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InvalCause {
    /// Full architectural TLB flush.
    Flush,
    /// `TTBR0` load or page-table store.
    Ttbr,
    /// TrustZone world switch (`SCR.NS` write).
    World,
    /// A store hit predecoded code (memory generation bump).
    CodeGen,
}

impl InvalCause {
    /// Short lowercase name for dumps and trace labels.
    pub fn name(self) -> &'static str {
        match self {
            InvalCause::Flush => "flush",
            InvalCause::Ttbr => "ttbr",
            InvalCause::World => "world",
            InvalCause::CodeGen => "code-gen",
        }
    }
}

/// Human-readable name of a CPSR\[4:0\] mode encoding.
pub fn mode_name(bits: u8) -> &'static str {
    match bits {
        0x10 => "usr",
        0x11 => "fiq",
        0x12 => "irq",
        0x13 => "svc",
        0x16 => "mon",
        0x17 => "abt",
        0x1b => "und",
        0x1f => "sys",
        _ => "?",
    }
}

/// Human-readable name of a page-DB `ptype` code (the monitor's
/// on-"hardware" encoding: FREE=0 … SPARE=6; kept in sync with
/// `komodo-monitor`'s `pgdb` module by its tests).
pub fn page_type_name(code: u8) -> &'static str {
    match code {
        0 => "free",
        1 => "addrspace",
        2 => "l1pt",
        3 => "l2pt",
        4 => "thread",
        5 => "data",
        6 => "spare",
        _ => "?",
    }
}

/// One boundary event. See the module docs for the encoding conventions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// `SCR.NS` changed value (TrustZone world switch).
    WorldSwitch {
        /// The new `SCR.NS` value (`true` = normal world).
        ns: bool,
    },
    /// Exception entry: the machine banked state and switched mode.
    ExnEntry {
        /// Vector taken.
        vector: ExnVector,
        /// CPSR\[4:0\] of the interrupted context.
        from_mode: u8,
        /// CPSR\[4:0\] of the handler mode.
        to_mode: u8,
    },
    /// Exception return (`MOVS PC, LR`): SPSR restored.
    ExnExit {
        /// CPSR\[4:0\] of the resumed context.
        to_mode: u8,
    },
    /// Monitor began dispatching an SMC.
    SmcEntry {
        /// Call number (KOM_SMC_*).
        call: u32,
    },
    /// Monitor finished an SMC and is about to return to the OS.
    SmcExit {
        /// Call number (KOM_SMC_*).
        call: u32,
        /// Error code returned in `R0` (KOM_ERR_*; 0 = success).
        err: u32,
        /// Secondary return value (`R1`), call-specific.
        retval: u32,
    },
    /// An address space finished `InitAddrspace`.
    EnclaveInit {
        /// Page number of the new address-space page.
        addrspace: u32,
    },
    /// `Enter`: first dispatch of an enclave thread.
    EnclaveEnter {
        /// Page number of the thread page.
        thread: u32,
    },
    /// `Resume`: re-dispatch of an interrupted enclave thread.
    EnclaveResume {
        /// Page number of the thread page.
        thread: u32,
    },
    /// Enclave execution left the monitor's dispatch loop.
    EnclaveExit {
        /// Page number of the thread page.
        thread: u32,
        /// Error code the dispatch returned (KOM_ERR_*).
        err: u32,
    },
    /// An address space was torn down (`Remove` of the addrspace page).
    EnclaveDestroy {
        /// Page number of the removed address-space page.
        page: u32,
    },
    /// A page-DB entry changed type.
    PageDbTransition {
        /// Page number.
        page: u32,
        /// Previous `ptype` code (see [`page_type_name`]).
        from: u8,
        /// New `ptype` code.
        to: u8,
    },
    /// Full architectural TLB flush.
    TlbFlush,
    /// The software data-TLB dropped all entries.
    DTlbInval {
        /// Attribution.
        cause: InvalCause,
    },
    /// The superblock engine predecoded and admitted a new block.
    SbBuild {
        /// Virtual address of the block's entry point.
        entry_va: u32,
        /// Instructions in the block.
        len: u32,
    },
    /// The superblock cache dropped all blocks.
    SbInval {
        /// Attribution.
        cause: InvalCause,
    },
    /// A hot superblock was promoted to a specialised micro-op trace.
    UopPromote {
        /// Virtual address of the promoted block's entry point.
        entry_va: u32,
        /// Micro-ops in the specialised body (fused exits excluded).
        len: u32,
    },
    /// Specialised micro-op traces were dropped (they die with the
    /// superblock cache; the cause is the superblock cache's).
    UopInval {
        /// Attribution.
        cause: InvalCause,
    },
    /// A service-node request left the queue and began executing on a
    /// shard (the enqueue→dispatch edge of its latency span).
    ReqDispatch {
        /// Service-assigned request id.
        req: u32,
        /// Request-kind code (the service crate's `Request::kind_code`).
        kind: u8,
    },
    /// A service-node request finished (the dispatch→complete edge).
    ReqComplete {
        /// Service-assigned request id.
        req: u32,
        /// Whether the request succeeded.
        ok: bool,
    },
    /// The chaos harness injected a fault (see `komodo-chaos`); stamped
    /// at the injection point so failure dumps show faults in-line with
    /// the machine events they perturb.
    ChaosInject {
        /// Fault-kind code (the chaos crate's `Fault::kind_code`).
        kind: u8,
        /// Fault-specific payload (cycle deadline, page number, …).
        arg: u32,
    },
    /// A remote-attestation handshake crossed a phase boundary on a
    /// session platform (see [`hs_phase_name`] for the phase codes).
    HsPhase {
        /// Phase code: 0 begin, 1 quote, 2 establish, 3 reject.
        phase: u8,
        /// Service session id (truncated to 32 bits for the compact
        /// event encoding).
        session: u32,
    },
}

/// Human-readable name of a handshake phase code ([`Event::HsPhase`]):
/// `begin` (verifier nonce and share accepted), `quote` (quote and
/// enclave share published), `establish` (verifier confirmation tag
/// accepted — traffic keys live), `reject` (confirmation failed or the
/// handshake expired; the session is torn down).
pub fn hs_phase_name(code: u8) -> &'static str {
    match code {
        0 => "begin",
        1 => "quote",
        2 => "establish",
        3 => "reject",
        _ => "?",
    }
}

impl Event {
    /// Stable short name (used as the Chrome trace event name).
    pub fn name(&self) -> &'static str {
        match self {
            Event::WorldSwitch { .. } => "world-switch",
            Event::ExnEntry { .. } => "exn-entry",
            Event::ExnExit { .. } => "exn-exit",
            Event::SmcEntry { .. } => "smc",
            Event::SmcExit { .. } => "smc",
            Event::EnclaveInit { .. } => "enclave-init",
            Event::EnclaveEnter { .. } => "enclave",
            Event::EnclaveResume { .. } => "enclave",
            Event::EnclaveExit { .. } => "enclave",
            Event::EnclaveDestroy { .. } => "enclave-destroy",
            Event::PageDbTransition { .. } => "pgdb",
            Event::TlbFlush => "tlb-flush",
            Event::DTlbInval { .. } => "dtlb-inval",
            Event::SbBuild { .. } => "sb-build",
            Event::SbInval { .. } => "sb-inval",
            Event::UopPromote { .. } => "uop-promote",
            Event::UopInval { .. } => "uop-inval",
            Event::ReqDispatch { .. } => "request",
            Event::ReqComplete { .. } => "request",
            Event::ChaosInject { .. } => "chaos",
            Event::HsPhase { .. } => "handshake",
        }
    }
}

impl core::fmt::Display for Event {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            Event::WorldSwitch { ns } => {
                write!(f, "world-switch ns={}", ns as u32)
            }
            Event::ExnEntry {
                vector,
                from_mode,
                to_mode,
            } => write!(
                f,
                "exn-entry {} {}->{}",
                vector.name(),
                mode_name(from_mode),
                mode_name(to_mode)
            ),
            Event::ExnExit { to_mode } => write!(f, "exn-exit ->{}", mode_name(to_mode)),
            Event::SmcEntry { call } => write!(f, "smc-entry call={call}"),
            Event::SmcExit { call, err, retval } => {
                write!(f, "smc-exit call={call} err={err} ret={retval:#x}")
            }
            Event::EnclaveInit { addrspace } => write!(f, "enclave-init asp={addrspace}"),
            Event::EnclaveEnter { thread } => write!(f, "enclave-enter th={thread}"),
            Event::EnclaveResume { thread } => write!(f, "enclave-resume th={thread}"),
            Event::EnclaveExit { thread, err } => {
                write!(f, "enclave-exit th={thread} err={err}")
            }
            Event::EnclaveDestroy { page } => write!(f, "enclave-destroy page={page}"),
            Event::PageDbTransition { page, from, to } => write!(
                f,
                "pgdb page={page} {}->{}",
                page_type_name(from),
                page_type_name(to)
            ),
            Event::TlbFlush => write!(f, "tlb-flush"),
            Event::DTlbInval { cause } => write!(f, "dtlb-inval cause={}", cause.name()),
            Event::SbBuild { entry_va, len } => {
                write!(f, "sb-build va={entry_va:#010x} len={len}")
            }
            Event::SbInval { cause } => write!(f, "sb-inval cause={}", cause.name()),
            Event::UopPromote { entry_va, len } => {
                write!(f, "uop-promote va={entry_va:#010x} len={len}")
            }
            Event::UopInval { cause } => write!(f, "uop-inval cause={}", cause.name()),
            Event::ReqDispatch { req, kind } => {
                write!(f, "req-dispatch req={req} kind={kind}")
            }
            Event::ReqComplete { req, ok } => {
                write!(f, "req-complete req={req} ok={}", ok as u32)
            }
            Event::ChaosInject { kind, arg } => {
                write!(f, "chaos-inject kind={kind} arg={arg:#x}")
            }
            Event::HsPhase { phase, session } => {
                write!(f, "hs-{} session={session}", hs_phase_name(phase))
            }
        }
    }
}

/// An [`Event`] stamped with the simulated cycle counter at which it was
/// recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stamped {
    /// Machine cycle counter when the event was recorded.
    pub cycle: u64,
    /// The event.
    pub event: Event,
}

impl core::fmt::Display for Stamped {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{:>10}] {}", self.cycle, self.event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_and_named() {
        let s = Stamped {
            cycle: 42,
            event: Event::ExnEntry {
                vector: ExnVector::Smc,
                from_mode: 0x1f,
                to_mode: 0x16,
            },
        };
        let line = s.to_string();
        assert!(line.contains("exn-entry smc sys->mon"), "{line}");
        assert!(line.contains("42"), "{line}");
    }

    #[test]
    fn page_type_names_cover_the_ptype_codes() {
        assert_eq!(page_type_name(0), "free");
        assert_eq!(page_type_name(1), "addrspace");
        assert_eq!(page_type_name(4), "thread");
        assert_eq!(page_type_name(6), "spare");
        assert_eq!(page_type_name(9), "?");
    }

    #[test]
    fn handshake_phases_are_named() {
        for (code, name) in [
            (0u8, "begin"),
            (1, "quote"),
            (2, "establish"),
            (3, "reject"),
        ] {
            assert_eq!(hs_phase_name(code), name);
            let line = Event::HsPhase {
                phase: code,
                session: 9,
            }
            .to_string();
            assert!(line.contains(name) && line.contains("session=9"), "{line}");
        }
        assert_eq!(hs_phase_name(7), "?");
    }

    #[test]
    fn mode_names_cover_the_encodings() {
        for (bits, name) in [
            (0x10u8, "usr"),
            (0x11, "fiq"),
            (0x12, "irq"),
            (0x13, "svc"),
            (0x16, "mon"),
            (0x17, "abt"),
            (0x1b, "und"),
            (0x1f, "sys"),
        ] {
            assert_eq!(mode_name(bits), name);
        }
        assert_eq!(mode_name(0), "?");
    }
}
