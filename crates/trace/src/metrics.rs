//! The unified metrics schema.
//!
//! Before this crate, the simulator's observability was three bespoke
//! surfaces read separately: `superblock_stats` (host superblock engine),
//! `dtlb_stats` (software data-TLB), and the raw `Tlb` / `PhysMem`
//! counters. [`MetricsSnapshot`] is the single schema they all fold
//! into; `Machine::metrics_snapshot` populates it and the bench JSON
//! emitter reads through it. The JSON rendering is hand-rolled (the
//! build is hermetic — no serde) in the same style as
//! `BENCH_sim_throughput.json`.

use core::fmt::Write as _;

/// One machine's counters at a point in time, across every layer:
/// architectural (cycles, memory, TLB), host-side accelerators
/// (superblocks, data-TLB), and the flight recorder itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Simulated cycle counter.
    pub cycles: u64,
    /// Architectural physical-memory reads.
    pub mem_reads: u64,
    /// Architectural physical-memory writes.
    pub mem_writes: u64,
    /// Architectural TLB hits.
    pub tlb_hits: u64,
    /// Architectural TLB misses (hardware walks).
    pub tlb_misses: u64,
    /// Architectural TLB flushes.
    pub tlb_flushes: u64,
    /// Superblocks predecoded and admitted.
    pub sb_built: u64,
    /// Superblock dispatch hits.
    pub sb_hits: u64,
    /// Superblock chained dispatches (block-to-block without re-probe).
    pub sb_chained: u64,
    /// Superblock cache drops caused by code-generation bumps
    /// (self-modifying or newly written code).
    pub sb_inval_code_gen: u64,
    /// Superblock cache drops caused by TLB-anchored invalidation.
    pub sb_inval_tlb: u64,
    /// Data-TLB lookups served.
    pub dtlb_hits: u64,
    /// Data-TLB lookups that fell back to the exact path.
    pub dtlb_misses: u64,
    /// Data-TLB drops caused by TLB flushes.
    pub dtlb_inval_flush: u64,
    /// Data-TLB drops caused by `TTBR0` loads / page-table stores.
    pub dtlb_inval_ttbr: u64,
    /// Data-TLB drops caused by world switches.
    pub dtlb_inval_world: u64,
    /// Hot superblocks promoted to specialised micro-op traces.
    pub uop_promoted: u64,
    /// Dispatches executed through a specialised micro-op trace.
    pub uop_hits: u64,
    /// Superblock-cache drops that destroyed at least one specialised
    /// micro-op trace (traces die with the block cache).
    pub uop_invalidations: u64,
    /// Flight-recorder capacity (0 = disabled).
    pub trace_capacity: u64,
    /// Events recorded over the capture's lifetime.
    pub trace_recorded: u64,
    /// Events lost to ring wraparound.
    pub trace_dropped: u64,
}

impl MetricsSnapshot {
    /// Total superblock-cache invalidations across causes.
    pub fn sb_invalidations(&self) -> u64 {
        self.sb_inval_code_gen + self.sb_inval_tlb
    }

    /// Total data-TLB invalidations across causes.
    pub fn dtlb_invalidations(&self) -> u64 {
        self.dtlb_inval_flush + self.dtlb_inval_ttbr + self.dtlb_inval_world
    }

    /// The architectural projection: only the counters the cycle model
    /// defines (cycles, memory accesses, TLB activity), with every
    /// host-side accelerator and recorder counter zeroed. Runs of the
    /// same guest under different host stepping configurations must
    /// agree on this projection bit-for-bit — the 4-way differential
    /// harness compares snapshots through it.
    pub fn architectural(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            cycles: self.cycles,
            mem_reads: self.mem_reads,
            mem_writes: self.mem_writes,
            tlb_hits: self.tlb_hits,
            tlb_misses: self.tlb_misses,
            tlb_flushes: self.tlb_flushes,
            ..Default::default()
        }
    }

    /// Adds every counter of `other` into `self` — the cross-machine
    /// merge used by fleet aggregation. All fields sum, including
    /// `trace_capacity` (for an aggregate it reads as total ring
    /// capacity across the folded machines).
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        self.cycles += other.cycles;
        self.mem_reads += other.mem_reads;
        self.mem_writes += other.mem_writes;
        self.tlb_hits += other.tlb_hits;
        self.tlb_misses += other.tlb_misses;
        self.tlb_flushes += other.tlb_flushes;
        self.sb_built += other.sb_built;
        self.sb_hits += other.sb_hits;
        self.sb_chained += other.sb_chained;
        self.sb_inval_code_gen += other.sb_inval_code_gen;
        self.sb_inval_tlb += other.sb_inval_tlb;
        self.dtlb_hits += other.dtlb_hits;
        self.dtlb_misses += other.dtlb_misses;
        self.dtlb_inval_flush += other.dtlb_inval_flush;
        self.dtlb_inval_ttbr += other.dtlb_inval_ttbr;
        self.dtlb_inval_world += other.dtlb_inval_world;
        self.uop_promoted += other.uop_promoted;
        self.uop_hits += other.uop_hits;
        self.uop_invalidations += other.uop_invalidations;
        self.trace_capacity += other.trace_capacity;
        self.trace_recorded += other.trace_recorded;
        self.trace_dropped += other.trace_dropped;
    }

    /// Field-wise difference `self - earlier` (saturating at zero): the
    /// counters accrued *between* two snapshots of the same machine.
    /// The service node uses this to attribute a long-lived session
    /// machine's work to the individual requests that drove it.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            cycles: self.cycles.saturating_sub(earlier.cycles),
            mem_reads: self.mem_reads.saturating_sub(earlier.mem_reads),
            mem_writes: self.mem_writes.saturating_sub(earlier.mem_writes),
            tlb_hits: self.tlb_hits.saturating_sub(earlier.tlb_hits),
            tlb_misses: self.tlb_misses.saturating_sub(earlier.tlb_misses),
            tlb_flushes: self.tlb_flushes.saturating_sub(earlier.tlb_flushes),
            sb_built: self.sb_built.saturating_sub(earlier.sb_built),
            sb_hits: self.sb_hits.saturating_sub(earlier.sb_hits),
            sb_chained: self.sb_chained.saturating_sub(earlier.sb_chained),
            sb_inval_code_gen: self
                .sb_inval_code_gen
                .saturating_sub(earlier.sb_inval_code_gen),
            sb_inval_tlb: self.sb_inval_tlb.saturating_sub(earlier.sb_inval_tlb),
            dtlb_hits: self.dtlb_hits.saturating_sub(earlier.dtlb_hits),
            dtlb_misses: self.dtlb_misses.saturating_sub(earlier.dtlb_misses),
            dtlb_inval_flush: self
                .dtlb_inval_flush
                .saturating_sub(earlier.dtlb_inval_flush),
            dtlb_inval_ttbr: self.dtlb_inval_ttbr.saturating_sub(earlier.dtlb_inval_ttbr),
            dtlb_inval_world: self
                .dtlb_inval_world
                .saturating_sub(earlier.dtlb_inval_world),
            uop_promoted: self.uop_promoted.saturating_sub(earlier.uop_promoted),
            uop_hits: self.uop_hits.saturating_sub(earlier.uop_hits),
            uop_invalidations: self
                .uop_invalidations
                .saturating_sub(earlier.uop_invalidations),
            // Capacity is a configuration, not an accrual: a fixed-size
            // ring would otherwise always delta to zero, hiding whether
            // tracing was on during the window.
            trace_capacity: self.trace_capacity,
            trace_recorded: self.trace_recorded.saturating_sub(earlier.trace_recorded),
            trace_dropped: self.trace_dropped.saturating_sub(earlier.trace_dropped),
        }
    }

    /// Renders the snapshot as a JSON object, `indent` spaces deep (the
    /// opening brace is not indented; nested lines are `indent + 2`).
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent + 2);
        let mut out = String::from("{\n");
        let fields: [(&str, u64); 24] = [
            ("cycles", self.cycles),
            ("mem_reads", self.mem_reads),
            ("mem_writes", self.mem_writes),
            ("tlb_hits", self.tlb_hits),
            ("tlb_misses", self.tlb_misses),
            ("tlb_flushes", self.tlb_flushes),
            ("sb_built", self.sb_built),
            ("sb_hits", self.sb_hits),
            ("sb_chained", self.sb_chained),
            ("sb_invalidations", self.sb_invalidations()),
            ("sb_inval_code_gen", self.sb_inval_code_gen),
            ("sb_inval_tlb", self.sb_inval_tlb),
            ("dtlb_hits", self.dtlb_hits),
            ("dtlb_misses", self.dtlb_misses),
            ("dtlb_invalidations", self.dtlb_invalidations()),
            ("dtlb_inval_flush", self.dtlb_inval_flush),
            ("dtlb_inval_ttbr", self.dtlb_inval_ttbr),
            ("dtlb_inval_world", self.dtlb_inval_world),
            ("uop_promoted", self.uop_promoted),
            ("uop_hits", self.uop_hits),
            ("uop_invalidations", self.uop_invalidations),
            ("trace_capacity", self.trace_capacity),
            ("trace_recorded", self.trace_recorded),
            ("trace_dropped", self.trace_dropped),
        ];
        for (i, (k, v)) in fields.iter().enumerate() {
            let comma = if i + 1 == fields.len() { "" } else { "," };
            let _ = writeln!(out, "{pad}\"{k}\": {v}{comma}");
        }
        let _ = write!(out, "{}}}", " ".repeat(indent));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_per_cause_counters() {
        let s = MetricsSnapshot {
            sb_inval_code_gen: 2,
            sb_inval_tlb: 3,
            dtlb_inval_flush: 1,
            dtlb_inval_ttbr: 4,
            dtlb_inval_world: 5,
            ..Default::default()
        };
        assert_eq!(s.sb_invalidations(), 5);
        assert_eq!(s.dtlb_invalidations(), 10);
    }

    #[test]
    fn delta_since_inverts_absorb() {
        let base = MetricsSnapshot {
            cycles: 100,
            mem_reads: 10,
            tlb_hits: 5,
            trace_capacity: 256,
            trace_recorded: 40,
            ..Default::default()
        };
        let step = MetricsSnapshot {
            cycles: 23,
            mem_reads: 4,
            dtlb_hits: 9,
            trace_capacity: 256,
            trace_recorded: 6,
            ..Default::default()
        };
        let mut later = base;
        later.absorb(&step);
        later.trace_capacity = 256; // capacity is config, not an accrual
        let d = later.delta_since(&base);
        assert_eq!(d.cycles, 23);
        assert_eq!(d.mem_reads, 4);
        assert_eq!(d.dtlb_hits, 9);
        assert_eq!(d.trace_recorded, 6);
        assert_eq!(d.trace_capacity, 256, "capacity carries, not deltas");
        // Saturates rather than wrapping if counters ever regress.
        let d = base.delta_since(&later);
        assert_eq!(d.cycles, 0);
    }

    #[test]
    fn json_has_every_field_once_and_no_trailing_comma() {
        let s = MetricsSnapshot {
            cycles: 123,
            tlb_hits: 7,
            ..Default::default()
        };
        let j = s.to_json(0);
        for key in [
            "cycles",
            "mem_reads",
            "mem_writes",
            "tlb_hits",
            "tlb_misses",
            "tlb_flushes",
            "sb_built",
            "sb_hits",
            "sb_chained",
            "sb_invalidations",
            "sb_inval_code_gen",
            "sb_inval_tlb",
            "dtlb_hits",
            "dtlb_misses",
            "dtlb_invalidations",
            "dtlb_inval_flush",
            "dtlb_inval_ttbr",
            "dtlb_inval_world",
            "uop_promoted",
            "uop_hits",
            "uop_invalidations",
            "trace_capacity",
            "trace_recorded",
            "trace_dropped",
        ] {
            assert_eq!(
                j.matches(&format!("\"{key}\":")).count(),
                1,
                "field {key} in {j}"
            );
        }
        assert!(j.contains("\"cycles\": 123"));
        assert!(!j.contains(",\n}"), "{j}");
        assert!(j.ends_with('}'), "{j}");
    }
}
