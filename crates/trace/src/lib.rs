//! Cycle-stamped event tracing for the Komodo reproduction.
//!
//! The paper's argument lives at the monitor boundary: SMC/SVC/IRQ/FIQ
//! entry and exit, enclave lifecycle transitions, and page-DB state
//! changes are exactly where a secure-enclave monitor is interesting —
//! and exactly where a reproduction needs visibility when a bisimulation
//! or differential test diverges. This crate provides that visibility as
//! one small, dependency-free subsystem:
//!
//! - [`Event`] — a compact taxonomy of boundary events (world switches,
//!   exception entry/exit with vector and mode, SMC dispatch with call
//!   number and result, enclave lifecycle, page-DB transitions, TLB /
//!   data-TLB invalidations, superblock build/invalidate), each stamped
//!   with the simulated cycle counter ([`Stamped`]).
//! - [`FlightRecorder`] — a fixed-capacity ring buffer owned by the
//!   machine. Capacity 0 (the default) is the disabled path: `record` is
//!   a single branch, so the instrumented hot paths stay within the 2%
//!   overhead contract asserted by the bench smoke. Reads never mutate
//!   (lock-free-to-read in the single-threaded simulator sense: any
//!   `&self` observer — a panic hook, a divergence report — can format
//!   the tail without stopping the writer).
//! - Exporters — [`chrome_trace`] renders a capture as Chrome
//!   `trace_event` JSON for `chrome://tracing` / Perfetto, and
//!   [`MetricsSnapshot`] aggregates the simulator's counter surfaces
//!   (TLB, data-TLB, superblocks, memory, trace) under one hand-rolled
//!   JSON schema (serde-free: the build is hermetic). [`FleetMetrics`]
//!   folds many machines' snapshots across scheduler shards: per-shard
//!   attribution, a summed total, and min/max load skew.
//!
//! **Neutrality contract.** Recording must never perturb simulated
//! state: no cycle charges, no counted memory traffic, no change to any
//! field that participates in machine equality. The recorder itself is
//! excluded from machine equality exactly like the fetch accelerator and
//! data-TLB, and the bench differential test proves traced-on vs
//! traced-off runs end bit-for-bit identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod event;
mod fleet;
mod metrics;
mod ring;

pub use chrome::chrome_trace;
pub use event::{mode_name, page_type_name, Event, ExnVector, InvalCause, Stamped};
pub use fleet::{FleetMetrics, Skew};
pub use metrics::MetricsSnapshot;
pub use ring::FlightRecorder;
