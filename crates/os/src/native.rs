//! Normal-world user processes — the "native Linux process" baseline of
//! Figure 5.
//!
//! The OS builds a page table in its own (insecure) RAM, runs the guest in
//! normal-world user mode, and services its system calls itself. The same
//! guest binary that runs inside a Komodo enclave runs here; only the
//! trust boundary differs, which is exactly what the notary comparison
//! measures.

use komodo_armv7::mode::{Mode, World};
use komodo_armv7::psr::Psr;
use komodo_armv7::ptw::{l1_coarse_desc, l2_page_desc, PagePerms};
use komodo_armv7::regs::Reg;
use komodo_armv7::word::{Word, PAGE_SIZE, WORDS_PER_PAGE};
use komodo_armv7::{ExitReason, Machine};

use crate::builder::Segment;
use crate::os::Os;

/// How the OS answers a process system call; the handler reads/writes the
/// machine's registers directly.
pub trait Syscalls {
    /// Handles the call; returns `Some(exit_code)` when the process asked
    /// to terminate, `None` to continue execution.
    fn handle(&mut self, m: &mut Machine, os: &Os) -> Option<u32>;
}

/// Outcome of running a native process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NativeRun {
    /// Process exited with this code.
    Exited(u32),
    /// Process faulted.
    Faulted,
    /// The step budget ran out.
    TimedOut,
}

/// A normal-world user process.
#[derive(Clone, Debug)]
pub struct NativeProcess {
    ttbr0: u32,
    entry: u32,
    /// PFNs of each segment's backing pages, in segment order.
    pub segment_pfns: Vec<Vec<u32>>,
}

impl NativeProcess {
    /// Builds the process: allocates a page table and backing pages in
    /// insecure RAM and maps every segment (shared segments are simply
    /// pages the OS also keeps a PFN for — everything is OS-visible here).
    pub fn build(m: &mut Machine, os: &mut Os, segments: &[Segment], entry: u32) -> NativeProcess {
        // L1 table: one 4 kB page (TTBCR.N=2 layout, same as enclaves).
        let l1_pfn = os.alloc_insecure().expect("insecure RAM for page table");
        let l1_pa = l1_pfn * PAGE_SIZE;
        let mut l2_pages: Vec<(u32, u32)> = Vec::new(); // (l1slot, pfn)

        let mut segment_pfns = Vec::new();
        for s in segments {
            let npages = s.words.len().div_ceil(WORDS_PER_PAGE).max(1);
            let mut pfns = Vec::new();
            for pg in 0..npages {
                let va = s.va + (pg as u32) * PAGE_SIZE;
                let slot = va >> 22;
                let l2_pfn = match l2_pages.iter().find(|(sl, _)| *sl == slot) {
                    Some((_, pfn)) => *pfn,
                    None => {
                        let pfn = os.alloc_insecure().expect("insecure RAM for L2 table");
                        l2_pages.push((slot, pfn));
                        // Four coarse tables per Komodo slot.
                        for k in 0..4 {
                            let desc = l1_coarse_desc(pfn * PAGE_SIZE + k * 0x400);
                            write_pa(m, l1_pa + (slot * 4 + k) * 4, desc);
                        }
                        pfn
                    }
                };
                let page_pfn = os.alloc_insecure().expect("insecure RAM for process page");
                let lo = pg * WORDS_PER_PAGE;
                let hi = ((pg + 1) * WORDS_PER_PAGE).min(s.words.len());
                if lo < s.words.len() {
                    os.write_insecure(m, page_pfn, 0, &s.words[lo..hi]);
                }
                let perms = PagePerms {
                    r: true,
                    w: s.w,
                    x: s.x,
                };
                let l2_slot = (va >> 12) & 0x3ff;
                let desc = l2_page_desc(page_pfn * PAGE_SIZE, perms, true);
                write_pa(m, l2_pfn * PAGE_SIZE + l2_slot * 4, desc);
                pfns.push(page_pfn);
            }
            segment_pfns.push(pfns);
        }
        NativeProcess {
            ttbr0: l1_pa,
            entry,
            segment_pfns,
        }
    }

    /// Runs the process until exit, fault, or the step budget lapses.
    pub fn run(
        &self,
        m: &mut Machine,
        os: &Os,
        syscalls: &mut dyn Syscalls,
        args: [u32; 3],
        step_budget: u64,
    ) -> NativeRun {
        assert_eq!(
            m.world(),
            World::Normal,
            "native processes are normal-world"
        );
        m.cp15.mmu_mut(World::Normal).ttbr0 = self.ttbr0;
        m.tlb_flush();
        m.regs.scrub_user_visible();
        for (i, a) in args.iter().enumerate() {
            m.regs.set(Mode::User, Reg::R(i as u8), *a);
        }
        // OS "exec": drop to user mode at the entry point.
        let os_psr = m.cpsr;
        m.regs.set_spsr(m.cpsr.mode, Psr::user());
        m.regs.set(m.cpsr.mode, Reg::Lr, self.entry);
        m.exception_return().expect("supervisor has an SPSR");

        let result = loop {
            match m.run_user(step_budget).expect("native run contract") {
                ExitReason::Svc { .. } => {
                    if let Some(code) = syscalls.handle(m, os) {
                        break NativeRun::Exited(code);
                    }
                    m.exception_return().expect("svc mode");
                }
                ExitReason::Irq | ExitReason::Fiq => {
                    // The OS handles its own interrupt and resumes.
                    m.irq_at = None;
                    m.fiq_at = None;
                    m.exception_return().expect("irq mode");
                }
                ExitReason::StepLimit => break NativeRun::TimedOut,
                _ => break NativeRun::Faulted,
            }
        };
        m.cpsr = os_psr;
        result
    }
}

fn write_pa(m: &mut Machine, pa: u32, val: Word) {
    m.mem
        .write(pa, val, komodo_armv7::mem::AccessAttrs::NORMAL)
        .expect("insecure RAM");
    m.note_pagetable_store();
}

#[cfg(test)]
mod tests {
    use super::*;
    use komodo_armv7::{Assembler, Reg};
    use komodo_monitor::{boot, MonitorLayout};

    struct ExitOnly;

    impl Syscalls for ExitOnly {
        fn handle(&mut self, m: &mut Machine, _os: &Os) -> Option<u32> {
            let r0 = m.reg(Reg::R(0));
            (r0 == 0).then(|| m.reg(Reg::R(1)))
        }
    }

    fn platform() -> (Machine, Os) {
        let (mut m, mut mon) = boot(MonitorLayout::new(1 << 20, 16), 1);
        let os = Os::new(&mut m, &mut mon);
        (m, os)
    }

    #[test]
    fn native_process_runs_and_exits() {
        let (mut m, mut os) = platform();
        let mut a = Assembler::new(0x8000);
        a.add_reg(Reg::R(3), Reg::R(0), Reg::R(1));
        a.mov_imm(Reg::R(0), 0);
        a.mov_reg(Reg::R(1), Reg::R(3));
        a.svc(0);
        let p = NativeProcess::build(&mut m, &mut os, &[Segment::code(0x8000, a.words())], 0x8000);
        let r = p.run(&mut m, &os, &mut ExitOnly, [30, 12, 0], 1_000_000);
        assert_eq!(r, NativeRun::Exited(42));
    }

    #[test]
    fn native_process_faults_on_bad_access() {
        let (mut m, mut os) = platform();
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(1), 0x0030_0000); // Unmapped VA.
        a.ldr_imm(Reg::R(0), Reg::R(1), 0);
        let p = NativeProcess::build(&mut m, &mut os, &[Segment::code(0x8000, a.words())], 0x8000);
        assert_eq!(
            p.run(&mut m, &os, &mut ExitOnly, [0; 3], 1000),
            NativeRun::Faulted
        );
    }

    #[test]
    fn native_process_cannot_touch_secure_memory() {
        // Even if the OS (maliciously) points a process mapping at the
        // monitor's secure RAM, the TrustZone memory controller rejects
        // the access: the process faults.
        let (mut m, mut os) = platform();
        let (_, mon) = boot(MonitorLayout::new(1 << 20, 16), 1);
        let secure_pa = mon.layout.page_pa(0);
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(1), 0x0010_0000);
        a.ldr_imm(Reg::R(0), Reg::R(1), 0);
        let p = NativeProcess::build(
            &mut m,
            &mut os,
            &[
                Segment::code(0x8000, a.words()),
                Segment::data(0x0010_0000, vec![0]),
            ],
            0x8000,
        );
        // Forge the data mapping: hardware L1 index for the VA, then the
        // coarse-table slot, overwritten to point at secure RAM.
        let l1_entry_pa = p.ttbr0 + 4;
        let coarse = m
            .mem
            .read(l1_entry_pa, komodo_armv7::mem::AccessAttrs::NORMAL)
            .unwrap()
            & 0xffff_fc00;
        let l2_slot_pa = coarse;
        write_pa(
            &mut m,
            l2_slot_pa,
            l2_page_desc(secure_pa, PagePerms::RW, true),
        );
        assert_eq!(
            p.run(&mut m, &os, &mut ExitOnly, [0; 3], 1000),
            NativeRun::Faulted
        );
    }
}
