//! Normal-world OS model.
//!
//! Komodo's OS is untrusted: "the OS allocates and maps \[pages\] to
//! enclaves, and ... chooses when ... to execute enclave threads" (§2),
//! interacting with the monitor only through the Table 1 SMC interface —
//! on the prototype, via a Linux kernel driver (§8.1). This crate models
//! that driver and the surrounding OS:
//!
//! - [`os::Os`]: secure-page and insecure-RAM allocators plus typed SMC
//!   wrappers (the kernel driver).
//! - [`builder::EnclaveBuilder`] / [`builder::Enclave`]: the enclave
//!   loader — lays out code/data/shared segments, drives the construction
//!   SMC sequence, and runs threads.
//! - [`native::NativeProcess`]: a normal-world user process with its own
//!   page table and OS system calls — the "Linux process" baseline of
//!   Figure 5.
//! - [`attacks`]: a deliberately malicious OS for the security tests:
//!   every attack here must be defeated by the monitor or the hardware.
//! - [`smp`]: the §9.2 multi-core design — several OS cores serialised
//!   through a single global monitor lock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod builder;
pub mod native;
pub mod os;
pub mod smp;

pub use builder::{Enclave, EnclaveBuilder, EnclaveRun, Segment};
pub use native::NativeProcess;
pub use os::Os;
