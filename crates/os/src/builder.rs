//! Enclave loader: segment layout and the construction SMC sequence.
//!
//! Mirrors what the paper's Linux driver does for the notary (§8.2): the
//! OS picks free pages, creates the address space and page tables, maps
//! code and data from insecure staging pages, creates threads, finalises,
//! and then enters.

use komodo_armv7::word::{Word, PAGE_SIZE, WORDS_PER_PAGE};
use komodo_armv7::Machine;
use komodo_monitor::Monitor;
use komodo_spec::{KomErr, Mapping};

use crate::os::Os;

/// A virtual segment to map into the enclave.
#[derive(Clone, Debug)]
pub struct Segment {
    /// Page-aligned virtual base address.
    pub va: u32,
    /// Initial contents; padded with zeroes to whole pages.
    pub words: Vec<Word>,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
    /// Shared (insecure) rather than private (secure) memory. Shared
    /// segments are never executable; their PFNs are recorded in
    /// [`Enclave::shared_pfns`] for OS-side access.
    pub shared: bool,
}

impl Segment {
    /// A private read-execute code segment.
    pub fn code(va: u32, words: Vec<Word>) -> Segment {
        Segment {
            va,
            words,
            w: false,
            x: true,
            shared: false,
        }
    }

    /// A private read-write data segment.
    pub fn data(va: u32, words: Vec<Word>) -> Segment {
        Segment {
            va,
            words,
            w: true,
            x: false,
            shared: false,
        }
    }

    /// An OS-shared read-write segment.
    pub fn shared(va: u32, words: Vec<Word>) -> Segment {
        Segment {
            va,
            words,
            w: true,
            x: false,
            shared: true,
        }
    }

    fn npages(&self) -> usize {
        self.words.len().div_ceil(WORDS_PER_PAGE).max(1)
    }
}

/// Outcome of running an enclave thread for one burst.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnclaveRun {
    /// The enclave exited voluntarily with this value.
    Exited(u32),
    /// The enclave was interrupted; `resume` to continue.
    Interrupted,
    /// The enclave faulted.
    Faulted,
    /// The monitor refused the call (e.g. the enclave was stopped or
    /// destroyed, or the thread is in the wrong state).
    Refused(KomErr),
}

/// A constructed enclave, as the OS sees it.
#[derive(Clone, Debug)]
pub struct Enclave {
    /// Address-space page.
    pub asp: usize,
    /// Thread pages, in creation order.
    pub threads: Vec<usize>,
    /// Spare pages currently allocated to the enclave.
    pub spares: Vec<usize>,
    /// PFNs of shared segments, in the order the segments were added.
    pub shared_pfns: Vec<Vec<u32>>,
    /// All secure pages handed to the monitor (for teardown).
    pub owned_pages: Vec<usize>,
}

/// Builder collecting the enclave's layout before construction.
#[derive(Clone, Debug, Default)]
pub struct EnclaveBuilder {
    segments: Vec<Segment>,
    entries: Vec<u32>,
    spares: usize,
}

impl EnclaveBuilder {
    /// An empty builder.
    pub fn new() -> EnclaveBuilder {
        EnclaveBuilder::default()
    }

    /// Adds a segment.
    pub fn segment(mut self, s: Segment) -> EnclaveBuilder {
        assert_eq!(s.va % PAGE_SIZE, 0, "segments must be page-aligned");
        self.segments.push(s);
        self
    }

    /// Adds a thread with the given entry point.
    pub fn thread(mut self, entry: u32) -> EnclaveBuilder {
        self.entries.push(entry);
        self
    }

    /// Requests `n` spare pages for dynamic allocation.
    pub fn spares(mut self, n: usize) -> EnclaveBuilder {
        self.spares = n;
        self
    }

    /// Drives the construction SMC sequence; on success the enclave is
    /// finalised and ready to enter.
    pub fn build(self, m: &mut Machine, mon: &mut Monitor, os: &mut Os) -> Result<Enclave, KomErr> {
        let mut owned = Vec::new();
        let alloc = |os: &mut Os| os.alloc_secure().ok_or(KomErr::PageInUse);

        let asp = alloc(os)?;
        let l1pt = alloc(os)?;
        check(os.init_addrspace(m, mon, asp, l1pt).err)?;
        owned.push(asp);
        owned.push(l1pt);

        // One L2 page table per 4 MB slot touched by any segment.
        let mut l2_slots: Vec<u32> = Vec::new();
        for s in &self.segments {
            for pg in 0..s.npages() {
                let va = s.va + (pg as u32) * PAGE_SIZE;
                let slot = va >> 22;
                if !l2_slots.contains(&slot) {
                    l2_slots.push(slot);
                }
            }
        }
        l2_slots.sort_unstable();
        for slot in l2_slots {
            let l2 = alloc(os)?;
            check(os.init_l2ptable(m, mon, asp, l2, slot).err)?;
            owned.push(l2);
        }

        // Map segments page by page.
        let mut shared_pfns = Vec::new();
        for s in &self.segments {
            let mut pfns = Vec::new();
            for pg in 0..s.npages() {
                let va = s.va + (pg as u32) * PAGE_SIZE;
                let lo = pg * WORDS_PER_PAGE;
                let hi = ((pg + 1) * WORDS_PER_PAGE).min(s.words.len());
                let mut page = vec![0u32; WORDS_PER_PAGE];
                if lo < s.words.len() {
                    page[..hi - lo].copy_from_slice(&s.words[lo..hi]);
                }
                let mapping = Mapping {
                    vpn: va >> 12,
                    r: true,
                    w: s.w,
                    x: s.x,
                };
                let pfn = os.alloc_insecure().ok_or(KomErr::InvalidInsecure)?;
                os.write_insecure(m, pfn, 0, &page);
                if s.shared {
                    check(os.map_insecure(m, mon, asp, mapping, pfn).err)?;
                    pfns.push(pfn);
                } else {
                    let data = alloc(os)?;
                    check(os.map_secure(m, mon, asp, data, mapping, pfn).err)?;
                    owned.push(data);
                }
            }
            shared_pfns.push(pfns);
        }

        let mut threads = Vec::new();
        for entry in &self.entries {
            let th = alloc(os)?;
            check(os.init_thread(m, mon, asp, th, *entry).err)?;
            owned.push(th);
            threads.push(th);
        }

        check(os.finalise(m, mon, asp).err)?;

        let mut spares = Vec::new();
        for _ in 0..self.spares {
            let sp = alloc(os)?;
            check(os.alloc_spare(m, mon, asp, sp).err)?;
            owned.push(sp);
            spares.push(sp);
        }

        Ok(Enclave {
            asp,
            threads,
            spares,
            shared_pfns,
            owned_pages: owned,
        })
    }
}

fn check(e: KomErr) -> Result<(), KomErr> {
    if e == KomErr::Ok {
        Ok(())
    } else {
        Err(e)
    }
}

impl Enclave {
    /// Enters thread `idx` with arguments, mapping the monitor's result to
    /// an [`EnclaveRun`].
    pub fn enter(
        &self,
        m: &mut Machine,
        mon: &mut Monitor,
        os: &Os,
        idx: usize,
        args: [u32; 3],
    ) -> EnclaveRun {
        decode_run(os.enter(m, mon, self.threads[idx], args))
    }

    /// Resumes thread `idx`.
    pub fn resume(&self, m: &mut Machine, mon: &mut Monitor, os: &Os, idx: usize) -> EnclaveRun {
        decode_run(os.resume(m, mon, self.threads[idx]))
    }

    /// Enters thread `idx` and resumes across interrupts until it exits or
    /// faults. The OS acknowledges each interrupt by clearing the pending
    /// line before resuming (it is the interrupt's owner).
    pub fn run_to_completion(
        &self,
        m: &mut Machine,
        mon: &mut Monitor,
        os: &Os,
        idx: usize,
        args: [u32; 3],
    ) -> EnclaveRun {
        let mut r = self.enter(m, mon, os, idx, args);
        while r == EnclaveRun::Interrupted {
            m.irq_at = None;
            m.fiq_at = None;
            r = self.resume(m, mon, os, idx);
        }
        r
    }

    /// Stops the enclave and removes every page, returning them to the
    /// OS's allocator. The address space is removed last (§4).
    pub fn destroy(&self, m: &mut Machine, mon: &mut Monitor, os: &mut Os) -> Result<(), KomErr> {
        check(os.stop(m, mon, self.asp).err)?;
        for pg in self.owned_pages.iter().rev() {
            if *pg == self.asp {
                continue;
            }
            check(os.remove(m, mon, *pg).err)?;
            os.release_secure(*pg);
        }
        check(os.remove(m, mon, self.asp).err)?;
        os.release_secure(self.asp);
        Ok(())
    }
}

fn decode_run(r: komodo_monitor::SmcResult) -> EnclaveRun {
    match r.err {
        KomErr::Ok => EnclaveRun::Exited(r.retval),
        KomErr::Interrupted => EnclaveRun::Interrupted,
        KomErr::Fault => EnclaveRun::Faulted,
        other => EnclaveRun::Refused(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use komodo_armv7::{Assembler, Cond, Reg};
    use komodo_monitor::{boot, MonitorLayout};

    fn platform() -> (Machine, Monitor, Os) {
        let (mut m, mut mon) = boot(MonitorLayout::new(1 << 20, 64), 1);
        let os = Os::new(&mut m, &mut mon);
        (m, mon, os)
    }

    /// Guest: r0 = arg1 + arg2, exit(r0).
    fn adder_code(base: u32) -> Vec<u32> {
        let mut a = Assembler::new(base);
        a.add_reg(Reg::R(3), Reg::R(0), Reg::R(1));
        a.mov_imm(Reg::R(0), 0); // SVC Exit.
        a.mov_reg(Reg::R(1), Reg::R(3));
        a.svc(0);
        a.words()
    }

    #[test]
    fn build_and_run_adder_enclave() {
        let (mut m, mut mon, mut os) = platform();
        let enc = EnclaveBuilder::new()
            .segment(Segment::code(0x8000, adder_code(0x8000)))
            .thread(0x8000)
            .build(&mut m, &mut mon, &mut os)
            .unwrap();
        let r = enc.enter(&mut m, &mut mon, &os, 0, [20, 22, 0]);
        assert_eq!(r, EnclaveRun::Exited(42));
        // Re-enterable after a voluntary exit (§4).
        let r = enc.enter(&mut m, &mut mon, &os, 0, [1, 2, 0]);
        assert_eq!(r, EnclaveRun::Exited(3));
    }

    #[test]
    fn shared_segment_visible_to_both_sides() {
        let (mut m, mut mon, mut os) = platform();
        // Guest: read shared[0], write shared[1] = shared[0]+1, exit.
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(4), 0x0010_0000);
        a.ldr_imm(Reg::R(5), Reg::R(4), 0);
        a.add_imm(Reg::R(5), Reg::R(5), 1);
        a.str_imm(Reg::R(5), Reg::R(4), 4);
        a.mov_imm(Reg::R(0), 0);
        a.mov_imm(Reg::R(1), 0);
        a.svc(0);
        let enc = EnclaveBuilder::new()
            .segment(Segment::code(0x8000, a.words()))
            .segment(Segment::shared(0x0010_0000, vec![41, 0]))
            .thread(0x8000)
            .build(&mut m, &mut mon, &mut os)
            .unwrap();
        let pfn = enc.shared_pfns[1][0];
        assert_eq!(
            enc.enter(&mut m, &mut mon, &os, 0, [0; 3]),
            EnclaveRun::Exited(0)
        );
        assert_eq!(os.read_insecure(&mut m, pfn, 1, 1), vec![42]);
    }

    #[test]
    fn interrupt_and_resume_round_trip() {
        let (mut m, mut mon, mut os) = platform();
        // Guest: count down from a large number, then exit(7).
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(4), 200_000);
        let top = a.label();
        a.subs_imm(Reg::R(4), Reg::R(4), 1);
        a.b_to(Cond::Ne, top);
        a.mov_imm(Reg::R(0), 0);
        a.mov_imm(Reg::R(1), 7);
        a.svc(0);
        let enc = EnclaveBuilder::new()
            .segment(Segment::code(0x8000, a.words()))
            .thread(0x8000)
            .build(&mut m, &mut mon, &mut os)
            .unwrap();
        m.irq_at = Some(m.cycles + 10_000);
        let r = enc.enter(&mut m, &mut mon, &os, 0, [0; 3]);
        assert_eq!(r, EnclaveRun::Interrupted);
        m.irq_at = None;
        let r = enc.resume(&mut m, &mut mon, &os, 0);
        assert_eq!(r, EnclaveRun::Exited(7));
    }

    #[test]
    fn run_to_completion_survives_many_interrupts() {
        let (mut m, mut mon, mut os) = platform();
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(4), 50_000);
        let top = a.label();
        a.subs_imm(Reg::R(4), Reg::R(4), 1);
        a.b_to(Cond::Ne, top);
        a.mov_imm(Reg::R(0), 0);
        a.mov_imm(Reg::R(1), 1);
        a.svc(0);
        let enc = EnclaveBuilder::new()
            .segment(Segment::code(0x8000, a.words()))
            .thread(0x8000)
            .build(&mut m, &mut mon, &mut os)
            .unwrap();
        // A short preemption budget exercises the resume path repeatedly.
        mon.step_budget = 5_000;
        let r = enc.run_to_completion(&mut m, &mut mon, &os, 0, [0; 3]);
        assert_eq!(r, EnclaveRun::Exited(1));
    }

    #[test]
    fn destroy_returns_all_pages() {
        let (mut m, mut mon, mut os) = platform();
        let before = os.secure_available();
        let enc = EnclaveBuilder::new()
            .segment(Segment::code(0x8000, adder_code(0x8000)))
            .segment(Segment::data(0x9000, vec![1, 2, 3]))
            .thread(0x8000)
            .spares(2)
            .build(&mut m, &mut mon, &mut os)
            .unwrap();
        assert!(os.secure_available() < before);
        enc.destroy(&mut m, &mut mon, &mut os).unwrap();
        assert_eq!(os.secure_available(), before);
    }

    #[test]
    fn faulting_enclave_reports_fault() {
        let (mut m, mut mon, mut os) = platform();
        let mut a = Assembler::new(0x8000);
        a.udf(0);
        let enc = EnclaveBuilder::new()
            .segment(Segment::code(0x8000, a.words()))
            .thread(0x8000)
            .build(&mut m, &mut mon, &mut os)
            .unwrap();
        assert_eq!(
            enc.enter(&mut m, &mut mon, &os, 0, [0; 3]),
            EnclaveRun::Faulted
        );
    }

    #[test]
    fn multi_page_segment_maps_contiguously() {
        let (mut m, mut mon, mut os) = platform();
        // 2.5 pages of data; guest reads across the page boundary.
        let mut words = vec![0u32; 2 * WORDS_PER_PAGE + 12];
        words[WORDS_PER_PAGE] = 0x1234; // First word of second page.
        let mut a = Assembler::new(0x8000);
        a.mov_imm32(Reg::R(4), 0xa000 + PAGE_SIZE);
        a.ldr_imm(Reg::R(1), Reg::R(4), 0);
        a.mov_imm(Reg::R(0), 0);
        a.svc(0);
        let enc = EnclaveBuilder::new()
            .segment(Segment::code(0x8000, a.words()))
            .segment(Segment::data(0xa000, words))
            .thread(0x8000)
            .build(&mut m, &mut mon, &mut os)
            .unwrap();
        assert_eq!(
            enc.enter(&mut m, &mut mon, &os, 0, [0; 3]),
            EnclaveRun::Exited(0x1234)
        );
    }
}
