//! A malicious OS (threat model §3.1).
//!
//! "We assume a software attacker who controls privileged software." Every
//! routine here is an attack the monitor or the TrustZone hardware must
//! defeat; the security test suite asserts that each one fails and that
//! enclave state is unaffected.

use komodo_armv7::mem::AccessAttrs;
use komodo_armv7::word::PAGE_SIZE;
use komodo_armv7::Machine;
use komodo_monitor::Monitor;
use komodo_spec::{KomErr, Mapping, SmcCall};

use crate::builder::Enclave;
use crate::os::Os;

/// Outcome of an attack attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttackOutcome {
    /// The monitor rejected the call with this error.
    RejectedByMonitor(KomErr),
    /// The hardware (TrustZone memory controller) blocked the access.
    BlockedByHardware,
    /// The attack appeared to succeed — a security failure the tests
    /// assert never happens.
    Succeeded,
}

/// Attempts to read a secure page directly from the normal world.
pub fn read_secure_memory(m: &mut Machine, mon: &Monitor, page: usize) -> AttackOutcome {
    match m.mem.read(mon.layout.page_pa(page), AccessAttrs::NORMAL) {
        Ok(_) => AttackOutcome::Succeeded,
        Err(_) => AttackOutcome::BlockedByHardware,
    }
}

/// Attempts to overwrite a secure page directly from the normal world.
pub fn write_secure_memory(m: &mut Machine, mon: &Monitor, page: usize) -> AttackOutcome {
    match m
        .mem
        .write(mon.layout.page_pa(page), 0xdead_beef, AccessAttrs::NORMAL)
    {
        Ok(_) => AttackOutcome::Succeeded,
        Err(_) => AttackOutcome::BlockedByHardware,
    }
}

/// Attempts to map a victim enclave's data page into an attacker enclave
/// (the "double-mapping between distrusting enclaves" §4 forbids).
///
/// The attacker has built its own enclave (`attacker_asp` still in the
/// init state) and names the *victim's* secure data page as the target of
/// its own `MapSecure`.
pub fn double_map_secure_page(
    m: &mut Machine,
    mon: &mut Monitor,
    os: &Os,
    attacker_asp: usize,
    victim_data_page: usize,
    va: u32,
) -> AttackOutcome {
    let mapping = Mapping {
        vpn: va >> 12,
        r: true,
        w: true,
        x: false,
    };
    // A staging PFN is still needed for the contents argument.
    let r = os.map_secure(m, mon, attacker_asp, victim_data_page, mapping, 1);
    if r.err == KomErr::Ok {
        AttackOutcome::Succeeded
    } else {
        AttackOutcome::RejectedByMonitor(r.err)
    }
}

/// Attempts to pass the *monitor's own* pages as the insecure contents
/// source for `MapSecure` — the §9.1 validation bug.
pub fn map_secure_from_monitor_page(
    m: &mut Machine,
    mon: &mut Monitor,
    os: &Os,
    asp: usize,
    data_pg: usize,
    va: u32,
) -> AttackOutcome {
    let mapping = Mapping {
        vpn: va >> 12,
        r: true,
        w: false,
        x: false,
    };
    let monitor_pfn = mon.layout.monitor_base >> 12;
    let r = os.map_secure(m, mon, asp, data_pg, mapping, monitor_pfn);
    if r.err == KomErr::Ok {
        AttackOutcome::Succeeded
    } else {
        AttackOutcome::RejectedByMonitor(r.err)
    }
}

/// Attempts to map a *secure pool* page into an enclave as "insecure"
/// shared memory, which would let the OS... nothing, actually — the
/// monitor must reject the aliasing outright.
pub fn map_insecure_aliasing_pool(
    m: &mut Machine,
    mon: &mut Monitor,
    os: &Os,
    asp: usize,
    va: u32,
) -> AttackOutcome {
    let mapping = Mapping {
        vpn: va >> 12,
        r: true,
        w: true,
        x: false,
    };
    let pool_pfn = mon.layout.secure_base >> 12;
    let r = os.map_insecure(m, mon, asp, mapping, pool_pfn);
    if r.err == KomErr::Ok {
        AttackOutcome::Succeeded
    } else {
        AttackOutcome::RejectedByMonitor(r.err)
    }
}

/// Attempts `InitAddrspace(p, p)` — the aliasing bug of §9.1.
pub fn aliased_init_addrspace(
    m: &mut Machine,
    mon: &mut Monitor,
    os: &Os,
    pg: usize,
) -> AttackOutcome {
    let r = os.init_addrspace(m, mon, pg, pg);
    if r.err == KomErr::Ok {
        AttackOutcome::Succeeded
    } else {
        AttackOutcome::RejectedByMonitor(r.err)
    }
}

/// Attempts to re-enter an interrupted thread instead of resuming it,
/// which would let the OS roll back and replay enclave execution (§4:
/// "the thread context is marked as entered, to prevent a suspended
/// thread from being re-entered").
pub fn reenter_suspended_thread(
    m: &mut Machine,
    mon: &mut Monitor,
    os: &Os,
    enclave: &Enclave,
) -> AttackOutcome {
    let r = os.enter(m, mon, enclave.threads[0], [0; 3]);
    if r.err == KomErr::AlreadyEntered {
        AttackOutcome::RejectedByMonitor(r.err)
    } else {
        AttackOutcome::Succeeded
    }
}

/// Attempts to remove a running (non-stopped) enclave's data page.
pub fn remove_live_page(m: &mut Machine, mon: &mut Monitor, os: &Os, page: usize) -> AttackOutcome {
    let r = os.remove(m, mon, page);
    match r.err {
        KomErr::Ok => AttackOutcome::Succeeded,
        e => AttackOutcome::RejectedByMonitor(e),
    }
}

/// Attempts to call the monitor with a garbage call number.
pub fn garbage_call(m: &mut Machine, mon: &mut Monitor, call: u32) -> AttackOutcome {
    if SmcCall::from_code(call).is_some() {
        return AttackOutcome::Succeeded; // Misuse of the helper.
    }
    let r = mon.smc(m, call, [0xffff_ffff; 4]);
    match r.err {
        KomErr::InvalidCall => AttackOutcome::RejectedByMonitor(r.err),
        _ => AttackOutcome::Succeeded,
    }
}

/// Sweeps every secure page and verifies the normal world can read none
/// of them; returns the number of pages probed.
pub fn sweep_secure_pool(m: &mut Machine, mon: &Monitor) -> usize {
    let mut probed = 0;
    for pg in 0..mon.layout.npages {
        assert_eq!(
            read_secure_memory(m, mon, pg),
            AttackOutcome::BlockedByHardware,
            "secure page {pg} readable from normal world"
        );
        probed += 1;
    }
    // The monitor's own region is equally unreachable.
    for off in (0..mon.layout.monitor_size).step_by(PAGE_SIZE as usize) {
        assert!(m
            .mem
            .read(mon.layout.monitor_base + off, AccessAttrs::NORMAL)
            .is_err());
    }
    probed
}
