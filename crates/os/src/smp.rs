//! Multi-core OS model with a big monitor lock (paper §9.2).
//!
//! "Komodo's biggest remaining limitation is undoubtedly multi-core
//! support. There are several avenues to close this gap, but the simplest
//! is a single shared lock around all monitor activities, which would
//! preserve the sequential (Floyd-Hoare) reasoning used in our current
//! proofs. Experience with microkernels even suggests that this may not
//! unduly harm performance."
//!
//! This module models that design: `N` logical OS cores each hold a script
//! of monitor calls; a seeded scheduler interleaves them, and every call
//! acquires the (modelled) global monitor lock — so monitor activity is
//! *serialised* and the single-core monitor and its sequential reasoning
//! (spec, refinement, NI) carry over unchanged. Lock contention is charged
//! to the cycle counter, which the companion test uses to quantify the
//! §9.2 performance question.
//!
//! The model is faithful to the argument's shape, not to weak-memory
//! details: the paper explicitly leaves ARM's relaxed consistency to
//! future work, and so do we (the lock is the whole point — under it, no
//! monitor state is ever concurrently accessed).

use komodo_armv7::Machine;
use komodo_monitor::{Monitor, SmcResult};

use crate::os::Os;

/// Cycles to acquire an uncontended lock (LDREX/STREX pair + barrier).
const LOCK_ACQUIRE: u64 = 40;
/// Cycles to release (store + barrier).
const LOCK_RELEASE: u64 = 20;

/// One core's pending monitor calls.
#[derive(Clone, Debug, Default)]
pub struct CoreScript {
    /// Calls as `(call number, args)` pairs, executed front to back.
    pub calls: Vec<(u32, [u32; 4])>,
}

/// Result of one core's call, in program order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoreResult {
    /// Which core issued it.
    pub core: usize,
    /// Index within that core's script.
    pub index: usize,
    /// The monitor's answer.
    pub result: SmcResult,
    /// Cycles this core spent waiting for the monitor lock.
    pub lock_wait: u64,
}

/// Statistics from a multi-core run.
#[derive(Clone, Debug, Default)]
pub struct SmpStats {
    /// Total lock acquisitions.
    pub acquisitions: u64,
    /// Total cycles cores spent waiting behind the lock.
    pub total_wait: u64,
    /// Longest single wait.
    pub max_wait: u64,
}

/// Runs the cores' scripts under the global monitor lock, interleaved by
/// the seeded scheduler. Returns every call's result (in global execution
/// order) plus lock statistics.
///
/// Because the lock serialises monitor execution, the run is, by
/// construction, equal to *some* sequential execution — the returned
/// order — which is exactly the property that lets the single-core proofs
/// carry over (§9.2). The test suite checks this by replaying the order
/// sequentially and comparing results and final state.
pub fn run_smp(
    m: &mut Machine,
    mon: &mut Monitor,
    _os: &Os,
    cores: &mut [CoreScript],
    seed: u64,
) -> (Vec<CoreResult>, SmpStats) {
    let mut results = Vec::new();
    let mut stats = SmpStats::default();
    let mut cursors = vec![0usize; cores.len()];
    let mut rng = seed
        .wrapping_mul(komodo_spec::seed::GOLDEN_GAMMA)
        .wrapping_add(1);
    // The cycle at which the lock becomes free again; cores arriving
    // earlier wait. Each core's local clock advances only through its own
    // calls (a simplification: cores do unrelated work between calls).
    let mut lock_free_at = m.cycles;
    let mut core_clock: Vec<u64> = vec![m.cycles; cores.len()];

    loop {
        // Pick a runnable core pseudo-randomly.
        let runnable: Vec<usize> = (0..cores.len())
            .filter(|&c| cursors[c] < cores[c].calls.len())
            .collect();
        if runnable.is_empty() {
            break;
        }
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let core = runnable[(rng >> 33) as usize % runnable.len()];
        let (call, args) = cores[core].calls[cursors[core]];

        // Acquire the global lock: wait if another core's call is still
        // holding it.
        let arrive = core_clock[core].max(m.cycles.min(lock_free_at));
        let wait = lock_free_at.saturating_sub(arrive);
        stats.acquisitions += 1;
        stats.total_wait += wait;
        stats.max_wait = stats.max_wait.max(wait);
        m.charge(LOCK_ACQUIRE + wait);

        let result = mon.smc(m, call, args);
        m.charge(LOCK_RELEASE);
        lock_free_at = m.cycles;
        core_clock[core] = m.cycles;

        results.push(CoreResult {
            core,
            index: cursors[core],
            result,
            lock_wait: wait,
        });
        cursors[core] += 1;
    }
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use komodo_monitor::abs::abstract_pagedb;
    use komodo_monitor::{boot, MonitorLayout};
    use komodo_spec::invariants::valid_pagedb;
    use komodo_spec::{KomErr, Mapping, SmcCall};

    fn platform() -> (Machine, Monitor, Os) {
        let (mut m, mut mon) = boot(MonitorLayout::new(1 << 20, 32), 5);
        let os = Os::new(&mut m, &mut mon);
        (m, mon, os)
    }

    /// Two cores each constructing their own enclave, interleaved.
    fn two_builders() -> Vec<CoreScript> {
        let build = |asp: u32, l1: u32, l2: u32, th: u32| CoreScript {
            calls: vec![
                (SmcCall::InitAddrspace as u32, [asp, l1, 0, 0]),
                (SmcCall::InitL2PTable as u32, [asp, l2, 0, 0]),
                (
                    SmcCall::MapInsecure as u32,
                    [
                        asp,
                        Mapping {
                            vpn: 16,
                            r: true,
                            w: true,
                            x: false,
                        }
                        .pack(),
                        9,
                        0,
                    ],
                ),
                (SmcCall::InitThread as u32, [asp, th, 0x8000, 0]),
                (SmcCall::Finalise as u32, [asp, 0, 0, 0]),
            ],
        };
        vec![build(0, 1, 2, 3), build(8, 9, 10, 11)]
    }

    #[test]
    fn interleaved_construction_succeeds_and_refines() {
        for seed in 0..8 {
            let (mut m, mut mon, os) = platform();
            let mut cores = two_builders();
            let (results, stats) = run_smp(&mut m, &mut mon, &os, &mut cores, seed);
            // Every call of both cores succeeded regardless of interleaving
            // (the scripts touch disjoint pages).
            for r in &results {
                assert_eq!(r.result.err, KomErr::Ok, "seed {seed}: {r:?}");
            }
            assert_eq!(stats.acquisitions, 10);
            // The final state is valid and identical to *the* sequential
            // replay of the executed order (big-lock serialisability).
            let d = abstract_pagedb(&mut m, &mon.layout);
            assert!(valid_pagedb(&d, &mon.params));
            let (mut m2, mut mon2, _os2) = platform();
            for r in &results {
                let (call, args) = two_builders()[r.core].calls[r.index];
                let sr = mon2.smc(&mut m2, call, args);
                assert_eq!(sr, r.result, "seed {seed}: replay diverged");
            }
            let d2 = abstract_pagedb(&mut m2, &mon2.layout);
            assert_eq!(d, d2, "seed {seed}: state not serialisable");
        }
    }

    #[test]
    fn conflicting_cores_race_safely() {
        // Both cores fight over the SAME pages: exactly one of each
        // conflicting pair wins, the loser gets PageInUse, and the state
        // stays valid — the lock turns races into clean serial outcomes.
        for seed in 0..12 {
            let (mut m, mut mon, os) = platform();
            let script = || CoreScript {
                calls: vec![
                    (SmcCall::InitAddrspace as u32, [0, 1, 0, 0]),
                    (SmcCall::InitThread as u32, [0, 3, 0x8000, 0]),
                ],
            };
            let mut cores = vec![script(), script()];
            let (results, _) = run_smp(&mut m, &mut mon, &os, &mut cores, seed);
            let oks = results
                .iter()
                .filter(|r| r.index == 0 && r.result.err == KomErr::Ok)
                .count();
            let conflicts = results
                .iter()
                .filter(|r| r.index == 0 && r.result.err == KomErr::PageInUse)
                .count();
            assert_eq!((oks, conflicts), (1, 1), "seed {seed}");
            let d = abstract_pagedb(&mut m, &mon.layout);
            assert!(valid_pagedb(&d, &mon.params), "seed {seed}");
        }
    }

    #[test]
    fn lock_contention_is_modest() {
        // §9.2's performance hypothesis: serialising short monitor calls
        // behind one lock is cheap. Measure waiting as a fraction of total
        // monitor cycles for a busy 4-core workload.
        let (mut m, mut mon, os) = platform();
        let mut cores: Vec<CoreScript> = (0..4)
            .map(|c| CoreScript {
                calls: (0..16)
                    .map(|_| (SmcCall::GetPhysPages as u32, [c as u32, 0, 0, 0]))
                    .collect(),
            })
            .collect();
        let before = m.cycles;
        let (_, stats) = run_smp(&mut m, &mut mon, &os, &mut cores, 3);
        let total = m.cycles - before;
        assert!(
            stats.total_wait * 2 < total,
            "wait {} of {}",
            stats.total_wait,
            total
        );
    }

    #[test]
    fn scheduler_is_deterministic_per_seed() {
        let run = |seed| {
            let (mut m, mut mon, os) = platform();
            let mut cores = two_builders();
            let (results, _) = run_smp(&mut m, &mut mon, &os, &mut cores, seed);
            (results, m.cycles)
        };
        assert_eq!(run(7), run(7));
        // Different seeds generally produce different interleavings.
        let (a, _) = run(1);
        let (b, _) = run(2);
        let order_a: Vec<usize> = a.iter().map(|r| r.core).collect();
        let order_b: Vec<usize> = b.iter().map(|r| r.core).collect();
        assert_ne!(order_a, order_b);
    }
}
