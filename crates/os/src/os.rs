//! The OS core: memory allocators and the kernel driver's SMC wrappers.

use komodo_armv7::mem::AccessAttrs;
use komodo_armv7::word::PAGE_SIZE;
use komodo_armv7::Machine;
use komodo_monitor::{Monitor, SmcResult};
use komodo_spec::{KomErr, Mapping, SmcCall};

/// The normal-world OS: allocators over the resources the OS owns, plus
/// typed wrappers for every monitor call (the Linux kernel driver of §8.1).
#[derive(Clone, Debug)]
pub struct Os {
    /// Free secure page numbers (the OS tracks these; the monitor rejects
    /// bad choices, it never allocates).
    free_secure: Vec<usize>,
    /// Next unallocated insecure PFN.
    next_pfn: u32,
    /// One past the last insecure PFN (monitor region starts here).
    pfn_limit: u32,
}

impl Os {
    /// Boots the OS: queries the secure page count via `GetPhysPages` and
    /// sizes its allocators from the platform layout.
    pub fn new(m: &mut Machine, mon: &mut Monitor) -> Os {
        let r = mon.smc(m, SmcCall::GetPhysPages as u32, [0; 4]);
        assert_eq!(r.err, KomErr::Ok);
        let npages = r.retval as usize;
        Os {
            free_secure: (0..npages).rev().collect(),
            // PFN 0 stays reserved for the OS's own use (vectors etc.).
            next_pfn: 1,
            pfn_limit: mon.layout.monitor_base >> 12,
        }
    }

    /// Allocates a secure page number the OS believes is free.
    pub fn alloc_secure(&mut self) -> Option<usize> {
        self.free_secure.pop()
    }

    /// Returns a secure page to the OS's free list (after `Remove`).
    pub fn release_secure(&mut self, pg: usize) {
        self.free_secure.push(pg);
    }

    /// Number of secure pages the OS believes are free.
    pub fn secure_available(&self) -> usize {
        self.free_secure.len()
    }

    /// Allocates an insecure RAM page, returning its PFN.
    pub fn alloc_insecure(&mut self) -> Option<u32> {
        if self.next_pfn >= self.pfn_limit {
            return None;
        }
        let pfn = self.next_pfn;
        self.next_pfn += 1;
        Some(pfn)
    }

    /// Writes words into an insecure page (normal-world access).
    pub fn write_insecure(&self, m: &mut Machine, pfn: u32, offset_words: usize, words: &[u32]) {
        let base = pfn * PAGE_SIZE + (offset_words as u32) * 4;
        for (i, w) in words.iter().enumerate() {
            m.mem
                .write(base + (i as u32) * 4, *w, AccessAttrs::NORMAL)
                .expect("insecure RAM is writable by the OS");
        }
    }

    /// Reads words from an insecure page.
    pub fn read_insecure(
        &self,
        m: &mut Machine,
        pfn: u32,
        offset_words: usize,
        n: usize,
    ) -> Vec<u32> {
        let base = pfn * PAGE_SIZE + (offset_words as u32) * 4;
        (0..n)
            .map(|i| {
                m.mem
                    .read(base + (i as u32) * 4, AccessAttrs::NORMAL)
                    .expect("insecure RAM is readable by the OS")
            })
            .collect()
    }

    // --- Kernel-driver SMC wrappers (Table 1) ------------------------------

    /// `InitAddrspace(asPg, l1ptPg)`.
    pub fn init_addrspace(
        &self,
        m: &mut Machine,
        mon: &mut Monitor,
        asp: usize,
        l1pt: usize,
    ) -> SmcResult {
        mon.smc(
            m,
            SmcCall::InitAddrspace as u32,
            [asp as u32, l1pt as u32, 0, 0],
        )
    }

    /// `InitThread(asPg, threadPg, entry)`.
    pub fn init_thread(
        &self,
        m: &mut Machine,
        mon: &mut Monitor,
        asp: usize,
        th: usize,
        entry: u32,
    ) -> SmcResult {
        mon.smc(
            m,
            SmcCall::InitThread as u32,
            [asp as u32, th as u32, entry, 0],
        )
    }

    /// `InitL2PTable(asPg, l2ptPg, l1index)`.
    pub fn init_l2ptable(
        &self,
        m: &mut Machine,
        mon: &mut Monitor,
        asp: usize,
        l2pt: usize,
        l1index: u32,
    ) -> SmcResult {
        mon.smc(
            m,
            SmcCall::InitL2PTable as u32,
            [asp as u32, l2pt as u32, l1index, 0],
        )
    }

    /// `AllocSpare(asPg, sparePg)`.
    pub fn alloc_spare(
        &self,
        m: &mut Machine,
        mon: &mut Monitor,
        asp: usize,
        spare: usize,
    ) -> SmcResult {
        mon.smc(
            m,
            SmcCall::AllocSpare as u32,
            [asp as u32, spare as u32, 0, 0],
        )
    }

    /// `MapSecure(asPg, dataPg, mapping, contentsPfn)`.
    pub fn map_secure(
        &self,
        m: &mut Machine,
        mon: &mut Monitor,
        asp: usize,
        data: usize,
        mapping: Mapping,
        content_pfn: u32,
    ) -> SmcResult {
        mon.smc(
            m,
            SmcCall::MapSecure as u32,
            [asp as u32, data as u32, mapping.pack(), content_pfn],
        )
    }

    /// `MapInsecure(asPg, mapping, targetPfn)`.
    pub fn map_insecure(
        &self,
        m: &mut Machine,
        mon: &mut Monitor,
        asp: usize,
        mapping: Mapping,
        pfn: u32,
    ) -> SmcResult {
        mon.smc(
            m,
            SmcCall::MapInsecure as u32,
            [asp as u32, mapping.pack(), pfn, 0],
        )
    }

    /// `Finalise(asPg)`.
    pub fn finalise(&self, m: &mut Machine, mon: &mut Monitor, asp: usize) -> SmcResult {
        mon.smc(m, SmcCall::Finalise as u32, [asp as u32, 0, 0, 0])
    }

    /// `Enter(threadPg, a1, a2, a3)`.
    pub fn enter(
        &self,
        m: &mut Machine,
        mon: &mut Monitor,
        th: usize,
        args: [u32; 3],
    ) -> SmcResult {
        mon.smc(
            m,
            SmcCall::Enter as u32,
            [th as u32, args[0], args[1], args[2]],
        )
    }

    /// `Resume(threadPg)`.
    pub fn resume(&self, m: &mut Machine, mon: &mut Monitor, th: usize) -> SmcResult {
        mon.smc(m, SmcCall::Resume as u32, [th as u32, 0, 0, 0])
    }

    /// `Stop(asPg)`.
    pub fn stop(&self, m: &mut Machine, mon: &mut Monitor, asp: usize) -> SmcResult {
        mon.smc(m, SmcCall::Stop as u32, [asp as u32, 0, 0, 0])
    }

    /// `Remove(pg)`.
    pub fn remove(&self, m: &mut Machine, mon: &mut Monitor, pg: usize) -> SmcResult {
        mon.smc(m, SmcCall::Remove as u32, [pg as u32, 0, 0, 0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use komodo_monitor::{boot, MonitorLayout};

    fn platform() -> (Machine, Monitor, Os) {
        let (mut m, mut mon) = boot(MonitorLayout::new(1 << 20, 16), 1);
        let os = Os::new(&mut m, &mut mon);
        (m, mon, os)
    }

    /// The OS model is two free lists and a bound — owned plain data. It
    /// must stay `Send` so a booted platform can migrate between fleet
    /// worker threads; this compile-time assertion pins that down.
    #[test]
    fn os_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Os>();
    }

    #[test]
    fn os_learns_page_count() {
        let (_, _, os) = platform();
        assert_eq!(os.secure_available(), 16);
    }

    #[test]
    fn secure_allocator_exhausts() {
        let (_, _, mut os) = platform();
        for _ in 0..16 {
            assert!(os.alloc_secure().is_some());
        }
        assert!(os.alloc_secure().is_none());
        os.release_secure(3);
        assert_eq!(os.alloc_secure(), Some(3));
    }

    #[test]
    fn insecure_rw_roundtrip() {
        let (mut m, _, mut os) = platform();
        let pfn = os.alloc_insecure().unwrap();
        os.write_insecure(&mut m, pfn, 4, &[1, 2, 3]);
        assert_eq!(os.read_insecure(&mut m, pfn, 4, 3), vec![1, 2, 3]);
    }

    #[test]
    fn insecure_allocator_stops_at_monitor() {
        let (_, mon, mut os) = platform();
        let limit = mon.layout.monitor_base >> 12;
        let mut last = 0;
        while let Some(pfn) = os.alloc_insecure() {
            last = pfn;
        }
        assert_eq!(last, limit - 1);
    }

    #[test]
    fn basic_construction_via_wrappers() {
        let (mut m, mut mon, mut os) = platform();
        let asp = os.alloc_secure().unwrap();
        let l1 = os.alloc_secure().unwrap();
        assert_eq!(os.init_addrspace(&mut m, &mut mon, asp, l1).err, KomErr::Ok);
        let th = os.alloc_secure().unwrap();
        assert_eq!(
            os.init_thread(&mut m, &mut mon, asp, th, 0x8000).err,
            KomErr::Ok
        );
        assert_eq!(os.finalise(&mut m, &mut mon, asp).err, KomErr::Ok);
        // Entering runs to a fault: the entry VA is unmapped.
        assert_eq!(os.enter(&mut m, &mut mon, th, [0; 3]).err, KomErr::Fault);
    }
}
