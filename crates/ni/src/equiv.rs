//! Observational-equivalence relations (paper §6.1).

use komodo_spec::{PageDb, PageEntry, PageNr};
use std::collections::BTreeMap;

/// Definition 1: weak equivalence of PageDB entries, `e1 =enc e2` — how
/// pages *outside* an observer's address space look to it. "An enclave
/// cannot observe data page contents or thread context unless those pages
/// belong to it."
pub fn weak_eq_page(e1: &PageEntry, e2: &PageEntry) -> bool {
    match (e1, e2) {
        (PageEntry::Data { .. }, PageEntry::Data { .. }) => true,
        (PageEntry::Spare { .. }, PageEntry::Spare { .. }) => true,
        (PageEntry::Thread { entered: en1, .. }, PageEntry::Thread { entered: en2, .. }) => {
            en1 == en2
        }
        (PageEntry::L1PTable { .. }, PageEntry::L1PTable { .. })
        | (PageEntry::L2PTable { .. }, PageEntry::L2PTable { .. })
        | (PageEntry::Addrspace { .. }, PageEntry::Addrspace { .. }) => e1 == e2,
        _ => false,
    }
}

/// Definition 2: observational equivalence `d1 ≈enc d2` from the
/// perspective of the enclave rooted at address-space page `enc`:
/// free sets equal, `enc`'s page set equal, pages outside `enc` weakly
/// equal, pages inside `enc` exactly equal.
pub fn obs_equiv_enc(d1: &PageDb, d2: &PageDb, enc: PageNr) -> bool {
    if d1.npages() != d2.npages() {
        return false;
    }
    let a1 = owned_set(d1, enc);
    let a2 = owned_set(d2, enc);
    if a1 != a2 {
        return false;
    }
    for pg in 0..d1.npages() {
        let (e1, e2) = (d1.get(pg).unwrap(), d2.get(pg).unwrap());
        if e1.is_free() != e2.is_free() {
            return false; // F(d1) == F(d2).
        }
        if e1.is_free() {
            continue;
        }
        if a1.contains(&pg) {
            if e1 != e2 {
                return false;
            }
        } else if !weak_eq_page(e1, e2) {
            return false;
        }
    }
    true
}

/// Pages belonging to the address space `enc`, including the
/// address-space page itself.
fn owned_set(d: &PageDb, enc: PageNr) -> Vec<PageNr> {
    let mut v: Vec<PageNr> = d.pages_of(enc);
    if d.is_addrspace(enc) {
        v.push(enc);
    }
    v.sort_unstable();
    v
}

/// The adversary's full view at the specification level: the PageDB, the
/// registers the OS can read after a call, and insecure memory. "Two
/// states are related by ≈adv if in addition to the requirements imposed
/// by ≈enc, all of the following are the same for both states: the
/// general-purpose registers, the banked registers (excluding monitor
/// mode), and the insecure memory."
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdvState {
    /// The abstract PageDB.
    pub pagedb: PageDb,
    /// OS-visible register values (for the spec level: the `(err, retval)`
    /// pair the handler returns; the concrete level compares the full
    /// register file).
    pub regs: Vec<u32>,
    /// Insecure memory contents by PFN.
    pub insecure: BTreeMap<u32, Box<[u32; 1024]>>,
}

/// `≈adv`: ≈enc for the colluding enclave `malicious_enc` plus equality of
/// the adversary-visible registers and all insecure memory.
pub fn obs_equiv_adv(s1: &AdvState, s2: &AdvState, malicious_enc: PageNr) -> bool {
    obs_equiv_enc(&s1.pagedb, &s2.pagedb, malicious_enc)
        && s1.regs == s2.regs
        && s1.insecure == s2.insecure
}

#[cfg(test)]
mod tests {
    use super::*;
    use komodo_spec::measure::Measurement;
    use komodo_spec::pagedb::UserContext;
    use komodo_spec::AddrspaceState;

    fn data(asp: PageNr, fill: u32) -> PageEntry {
        PageEntry::Data {
            addrspace: asp,
            contents: Box::new([fill; 1024]),
        }
    }

    fn thread(asp: PageNr, entered: bool, r0: u32) -> PageEntry {
        let mut context = UserContext::zeroed();
        context.regs[0] = r0;
        PageEntry::Thread {
            addrspace: asp,
            entry: 0x8000,
            entered,
            context,
            verify_words: [0; 16],
        }
    }

    fn addrspace(l1pt: PageNr, refcount: usize) -> PageEntry {
        PageEntry::Addrspace {
            l1pt,
            refcount,
            state: AddrspaceState::Final,
            measurement: Measurement::new(),
        }
    }

    #[test]
    fn weak_eq_hides_data_contents_and_context() {
        assert!(weak_eq_page(&data(0, 1), &data(0, 2)));
        assert!(weak_eq_page(&thread(0, true, 5), &thread(0, true, 9)));
        assert!(!weak_eq_page(&thread(0, true, 5), &thread(0, false, 5)));
        assert!(!weak_eq_page(
            &data(0, 1),
            &PageEntry::Spare { addrspace: 0 }
        ));
        assert!(weak_eq_page(
            &PageEntry::Spare { addrspace: 0 },
            &PageEntry::Spare { addrspace: 1 }
        ));
    }

    #[test]
    fn weak_eq_exposes_addrspace_and_tables() {
        let a1 = addrspace(1, 2);
        let mut a2 = addrspace(1, 2);
        assert!(weak_eq_page(&a1, &a2));
        if let PageEntry::Addrspace { refcount, .. } = &mut a2 {
            *refcount = 3;
        }
        assert!(!weak_eq_page(&a1, &a2));
    }

    /// Two enclaves (0 and 4); the secret lives in enclave 4's data page 6.
    fn two_enclaves(secret: u32, observer_secret: u32) -> PageDb {
        let mut d = PageDb::new(8);
        d.set(0, addrspace(1, 2));
        d.set(
            1,
            PageEntry::L1PTable {
                addrspace: 0,
                slots: Box::new([None; 256]),
            },
        );
        d.set(2, data(0, observer_secret));
        d.set(4, addrspace(5, 2));
        d.set(
            5,
            PageEntry::L1PTable {
                addrspace: 4,
                slots: Box::new([None; 256]),
            },
        );
        d.set(6, data(4, secret));
        d
    }

    #[test]
    fn obs_equiv_hides_other_enclave_secrets() {
        let d1 = two_enclaves(111, 7);
        let d2 = two_enclaves(222, 7);
        // From enclave 0's view, enclave 4's data differs invisibly.
        assert!(obs_equiv_enc(&d1, &d2, 0));
        // From enclave 4's own view, the difference is visible.
        assert!(!obs_equiv_enc(&d1, &d2, 4));
    }

    #[test]
    fn obs_equiv_sees_own_pages() {
        let d1 = two_enclaves(1, 10);
        let d2 = two_enclaves(1, 20);
        assert!(!obs_equiv_enc(&d1, &d2, 0));
        assert!(obs_equiv_enc(&d1, &d2, 4));
    }

    #[test]
    fn obs_equiv_requires_same_free_set() {
        let d1 = two_enclaves(1, 1);
        let mut d2 = two_enclaves(1, 1);
        d2.set(7, PageEntry::Spare { addrspace: 0 });
        assert!(!obs_equiv_enc(&d1, &d2, 4));
    }

    #[test]
    fn obs_equiv_requires_same_ownership() {
        let d1 = two_enclaves(1, 1);
        let mut d2 = two_enclaves(1, 1);
        // Reassign the secret page to the observer.
        d2.set(6, data(0, 1));
        assert!(!obs_equiv_enc(&d1, &d2, 0));
    }

    #[test]
    fn adv_equiv_adds_regs_and_insecure() {
        let base = AdvState {
            pagedb: two_enclaves(1, 2),
            regs: vec![0, 42],
            insecure: BTreeMap::new(),
        };
        let mut same = base.clone();
        // Vary only the victim's secret.
        same.pagedb = two_enclaves(9, 2);
        assert!(obs_equiv_adv(&base, &same, 0));
        let mut diff_regs = base.clone();
        diff_regs.regs = vec![0, 43];
        assert!(!obs_equiv_adv(&base, &diff_regs, 0));
        let mut diff_mem = base.clone();
        diff_mem.insecure.insert(3, Box::new([1; 1024]));
        assert!(!obs_equiv_adv(&base, &diff_mem, 0));
    }
}
