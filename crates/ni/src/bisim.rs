//! Bisimulation drivers (paper §6.3).
//!
//! "Our proofs use bisimulation; we reason about two executions beginning
//! from initial states that are related by ≈L and our proof goal is to
//! show that the final states are also related by ≈L." Here the two
//! executions actually run, through the specification's `smchandler`, and
//! the relations are checked after every call — over randomized states and
//! traces instead of all of them.

use komodo_spec::handler::{smc_handler, HandlerEnv};
use komodo_spec::{KomErr, PageDb, PageEntry, PageNr, SmcCall};

use crate::equiv::{obs_equiv_adv, AdvState};
use crate::gen::{Action, MapMem, Scenario};
use crate::seeded::SeededExec;

/// One side of the bisimulation.
struct Side {
    d: PageDb,
    insecure: MapMem,
}

/// The declassified outputs of one step — what the adversary legitimately
/// learns (§6.2): the result code ("the type of exception or interrupt
/// that ends enclave execution"), and the value passed to `Exit`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Declassified {
    /// Result code.
    pub err: KomErr,
    /// Return value.
    pub retval: u32,
}

/// Runs a full confidentiality bisimulation: the scenario against its
/// secret-twin, under the given adversary trace. Fails with a description
/// of the first violated obligation.
///
/// Obligations checked at every step:
/// 1. both runs produce identical declassified outputs, and
/// 2. the post-states remain `≈adv`-related (for the colluding enclave).
pub fn confidentiality(
    s: &Scenario,
    t: &Scenario,
    actions: &[Action],
    exec_seed: u64,
) -> Result<(), String> {
    let mut side1 = Side {
        d: s.d.clone(),
        insecure: s.insecure.clone(),
    };
    let mut side2 = Side {
        d: t.d.clone(),
        insecure: t.insecure.clone(),
    };
    check_adv(&side1, &side2, s.adversary, &[], 0)?;

    for (i, a) in actions.iter().enumerate() {
        let seed = exec_seed
            .wrapping_mul(komodo_spec::seed::GOLDEN_GAMMA)
            .wrapping_add(i as u64);
        let (o1, o2) = match a {
            Action::ScribbleInsecure(pfn, idx, val) => {
                use komodo_spec::enter::InsecureMem;
                side1.insecure.write_word(*pfn, *idx, *val);
                side2.insecure.write_word(*pfn, *idx, *val);
                (
                    Declassified {
                        err: KomErr::Ok,
                        retval: 0,
                    },
                    Declassified {
                        err: KomErr::Ok,
                        retval: 0,
                    },
                )
            }
            Action::Smc(call, args) => (
                step(&mut side1, s, seed, *call, *args, None),
                step(&mut side2, t, seed, *call, *args, None),
            ),
            Action::EnterVictim(idx, args) => {
                let call = SmcCall::Enter as u32;
                let a4 = [s.victim_threads[*idx] as u32, args[0], args[1], args[2]];
                (
                    step(&mut side1, s, seed, call, a4, s.victim_spare),
                    step(&mut side2, t, seed, call, a4, t.victim_spare),
                )
            }
            Action::ResumeVictim(idx) => {
                let call = SmcCall::Resume as u32;
                let a4 = [s.victim_threads[*idx] as u32, 0, 0, 0];
                (
                    step(&mut side1, s, seed, call, a4, s.victim_spare),
                    step(&mut side2, t, seed, call, a4, t.victim_spare),
                )
            }
            Action::EnterAdversary(args) => {
                let call = SmcCall::Enter as u32;
                let a4 = [s.adversary_threads[0] as u32, args[0], args[1], args[2]];
                (
                    step(&mut side1, s, seed, call, a4, None),
                    step(&mut side2, t, seed, call, a4, None),
                )
            }
        };
        if o1 != o2 {
            return Err(format!(
                "step {i} ({a:?}): declassified outputs diverged: {o1:?} vs {o2:?}"
            ));
        }
        check_adv(
            &side1,
            &side2,
            s.adversary,
            &[o1.err.code(), o1.retval],
            i + 1,
        )?;
    }
    Ok(())
}

fn step(
    side: &mut Side,
    s: &Scenario,
    seed: u64,
    call: u32,
    args: [u32; 4],
    spare: Option<usize>,
) -> Declassified {
    let mut rng_state = seed ^ 0xdead_beef;
    let mut rng = move || {
        // Deterministic platform RNG, same on both sides (same hardware).
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (rng_state >> 32) as u32
    };
    let mut exec = SeededExec::new(seed, 3);
    exec.spare_page = spare.map(|p| p as u32);
    let mut env = HandlerEnv {
        params: &s.params,
        attest_key: b"bisim attestation key",
        rng: &mut rng,
        exec: &mut exec,
        insecure: &mut side.insecure,
        max_svcs: 8,
    };
    let (d, err, retval) = smc_handler(side.d.clone(), &mut env, call, args);
    side.d = d;
    Declassified { err, retval }
}

fn check_adv(
    s1: &Side,
    s2: &Side,
    adversary: PageNr,
    regs: &[u32],
    step: usize,
) -> Result<(), String> {
    let a1 = AdvState {
        pagedb: s1.d.clone(),
        regs: regs.to_vec(),
        insecure: s1.insecure.0.clone(),
    };
    let a2 = AdvState {
        pagedb: s2.d.clone(),
        regs: regs.to_vec(),
        insecure: s2.insecure.0.clone(),
    };
    if !obs_equiv_adv(&a1, &a2, adversary) {
        return Err(format!("states not ≈adv after step {step}"));
    }
    Ok(())
}

/// The integrity frame property: a trace that never runs the victim and
/// never stops/removes/extends it leaves the victim's pages bit-for-bit
/// unchanged. Returns the victim restriction before/after for inspection.
pub fn integrity_frame(s: &Scenario, actions: &[Action], exec_seed: u64) -> Result<(), String> {
    let before = victim_restriction(&s.d, s.victim);
    let mut side = Side {
        d: s.d.clone(),
        insecure: s.insecure.clone(),
    };
    for (i, a) in actions.iter().enumerate() {
        let seed = exec_seed.wrapping_add(i as u64);
        match a {
            Action::EnterVictim(..) | Action::ResumeVictim(..) => {
                return Err("integrity trace must not run the victim".into())
            }
            Action::ScribbleInsecure(pfn, idx, val) => {
                use komodo_spec::enter::InsecureMem;
                side.insecure.write_word(*pfn, *idx, *val);
            }
            Action::Smc(call, args) => {
                step(&mut side, s, seed, *call, *args, None);
            }
            Action::EnterAdversary(args) => {
                let a4 = [s.adversary_threads[0] as u32, args[0], args[1], args[2]];
                step(&mut side, s, seed, SmcCall::Enter as u32, a4, None);
            }
        }
        let after = victim_restriction(&side.d, s.victim);
        if after != before {
            return Err(format!(
                "victim state modified by adversary at step {i}: {a:?}"
            ));
        }
        if !komodo_spec::invariants::valid_pagedb(&side.d, &s.params) {
            return Err(format!("invariants broken at step {i}"));
        }
    }
    Ok(())
}

/// The victim's pages, exactly.
fn victim_restriction(d: &PageDb, victim: PageNr) -> Vec<(PageNr, PageEntry)> {
    let mut pages = d.pages_of(victim);
    pages.push(victim);
    pages.sort_unstable();
    pages
        .into_iter()
        .map(|pg| (pg, d.get(pg).expect("in range").clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{scenario, trace, twin};

    #[test]
    fn confidentiality_holds_across_seeds() {
        crate::par::run_indexed(6, |i| {
            let seed = i as u64;
            let s = scenario(seed);
            let t = twin(&s, seed ^ 0xffff);
            let actions = trace(&s, seed.wrapping_add(100), 40, true);
            confidentiality(&s, &t, &actions, seed).unwrap_or_else(|e| {
                panic!("confidentiality violated (seed {seed}): {e}");
            });
        });
    }

    #[test]
    fn integrity_frame_holds_across_seeds() {
        crate::par::run_indexed(6, |i| {
            let seed = i as u64;
            let s = scenario(seed);
            let actions = trace(&s, seed.wrapping_add(200), 60, false);
            integrity_frame(&s, &actions, seed).unwrap_or_else(|e| {
                panic!("integrity violated (seed {seed}): {e}");
            });
        });
    }

    /// Negative control: a leaky victim (exit value = secret word) must
    /// break the bisimulation — proving the relation is not vacuous and
    /// locating the declassification boundary of §6.2.
    #[test]
    fn leaky_victim_detected() {
        let s = scenario(1);
        let t = twin(&s, 0x5ec3e7);
        let mut side1 = Side {
            d: s.d.clone(),
            insecure: s.insecure.clone(),
        };
        let mut side2 = Side {
            d: t.d.clone(),
            insecure: t.insecure.clone(),
        };
        let run = |side: &mut Side, sc: &Scenario| {
            let mut rng = || 0u32;
            let mut exec = SeededExec::leaky(7);
            let mut env = HandlerEnv {
                params: &sc.params,
                attest_key: b"bisim attestation key",
                rng: &mut rng,
                exec: &mut exec,
                insecure: &mut side.insecure,
                max_svcs: 8,
            };
            let (d, err, retval) = smc_handler(
                side.d.clone(),
                &mut env,
                SmcCall::Enter as u32,
                [sc.victim_threads[0] as u32, 0, 0, 0],
            );
            side.d = d;
            (err, retval)
        };
        let (e1, v1) = run(&mut side1, &s);
        let (e2, v2) = run(&mut side2, &t);
        assert_eq!(e1, KomErr::Ok);
        assert_eq!(e2, KomErr::Ok);
        assert_ne!(v1, v2, "the leaky enclave's exit values must differ");
    }

    /// The victim's measurement (hence its attestations) must be identical
    /// across twins: runtime secrets never feed the measurement.
    #[test]
    fn twin_measurements_agree() {
        let s = scenario(2);
        let t = twin(&s, 42);
        assert_eq!(
            s.d.measurement_of(s.victim).unwrap().digest(),
            t.d.measurement_of(t.victim).unwrap().digest()
        );
    }
}
