//! Machine-level noninterference checks.
//!
//! The spec-level bisimulation ([`crate::bisim`]) checks the theorem's
//! statement; this module checks it *of the implementation*: two booted
//! platforms whose enclaves hold different secrets are driven by an
//! identical OS, and everything the OS can observe — the register file it
//! sees after each call, all insecure RAM, and the call results — is
//! compared bit-for-bit. Register-scrubbing bugs, secrets parked in
//! banked registers, or monitor writes to insecure memory would all
//! surface here.

use komodo_armv7::mem::AccessAttrs;
use komodo_armv7::mode::Mode;
use komodo_armv7::regs::{Bank, Reg};
use komodo_armv7::Machine;
use komodo_crypto::{Digest, Sha256};
use komodo_monitor::MonitorLayout;

/// Digest of everything a normal-world adversary can observe about the
/// machine: general-purpose registers, banked `SP`/`LR` (excluding
/// monitor mode, per §6.1), current flags, and all insecure RAM.
pub fn adversary_view(m: &mut Machine, layout: &MonitorLayout) -> Digest {
    let mut h = Sha256::new();
    for r in Reg::all() {
        h.update(&m.regs.get(Mode::User, r).to_be_bytes());
    }
    for bank in [
        Bank::Usr,
        Bank::Svc,
        Bank::Abt,
        Bank::Und,
        Bank::Irq,
        Bank::Fiq,
    ] {
        h.update(&m.regs.sp_banked(bank).to_be_bytes());
        h.update(&m.regs.lr_banked(bank).to_be_bytes());
    }
    h.update(&m.cpsr.encode().to_be_bytes());
    // All insecure RAM, word by word.
    let mut pa = 0u32;
    while pa < layout.insecure_size {
        let w = m
            .mem
            .read(pa, AccessAttrs::NORMAL)
            .expect("insecure RAM readable");
        h.update(&w.to_be_bytes());
        pa += 4;
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use komodo::Platform;
    use komodo_guest::progs;
    use komodo_os::EnclaveRun;

    /// Two platforms, same seed; the victim stores a *different* secret on
    /// each. Afterwards the adversary views must be identical.
    ///
    /// Both flight recorders are armed for the episode, so a failed
    /// comparison can print where the boundary-event streams diverged
    /// instead of only the mismatching digests. Recording is
    /// architecturally invisible, so arming it cannot mask (or cause) an
    /// NI violation.
    fn paired_platforms() -> (Platform, Platform) {
        let cfg = || {
            komodo::PlatformConfig::default()
                .with_insecure_size(1 << 20)
                .with_npages(64)
                .with_seed(7)
        };
        let mut p1 = Platform::with_config(cfg());
        let mut p2 = Platform::with_config(cfg());
        p1.set_trace(256);
        p2.set_trace(256);
        (p1, p2)
    }

    /// Asserts the adversary views coincide; on mismatch, panics with the
    /// side-by-side flight-recorder tails of both machines.
    fn assert_views_equal(p1: &mut Platform, p2: &mut Platform, what: &str) {
        let v1 = adversary_view(&mut p1.machine, &p1.monitor.layout);
        let v2 = adversary_view(&mut p2.machine, &p2.monitor.layout);
        if v1 != v2 {
            panic!(
                "{what}\n{}",
                crate::report::divergence_report(
                    "secret-A",
                    &p1.machine,
                    "secret-B",
                    &p2.machine,
                    24
                )
            );
        }
    }

    #[test]
    fn stored_secret_invisible_to_os() {
        let (mut p1, mut p2) = paired_platforms();
        let e1 = p1.load(&progs::secret_keeper()).unwrap();
        let e2 = p2.load(&progs::secret_keeper()).unwrap();
        // Different secrets; the store path's timing is data-independent.
        assert_eq!(p1.run(&e1, 0, [0, 0x1111_1111, 0]), EnclaveRun::Exited(0));
        assert_eq!(p2.run(&e2, 0, [0, 0x2222_2222, 0]), EnclaveRun::Exited(0));
        // Everything the OS can see must coincide...
        assert_views_equal(
            &mut p1,
            &mut p2,
            "enclave secret leaked into OS-visible state",
        );
        // ...including the cycle counter (no data-dependent timing in the
        // monitor paths for same-shaped calls).
        assert_eq!(p1.cycles(), p2.cycles());
    }

    #[test]
    fn secret_visible_to_its_owner() {
        // Sanity: the secret is real — the enclave itself can read it back.
        let (mut p1, _) = paired_platforms();
        let e1 = p1.load(&progs::secret_keeper()).unwrap();
        p1.run(&e1, 0, [0, 0xdead_beef, 0]);
        assert_eq!(p1.run(&e1, 0, [1, 0, 0]), EnclaveRun::Exited(0xdead_beef));
    }

    #[test]
    fn fault_reveals_only_fault() {
        // The page_oracle victim touches a page chosen by a secret bit.
        // Both its pages are mapped, so it exits normally — and the OS
        // view is identical for secret 0 and secret 1 (controlled-channel
        // immunity: the OS cannot induce or observe enclave page faults,
        // §3.1).
        let (mut p1, mut p2) = paired_platforms();
        let e1 = p1.load(&progs::page_oracle()).unwrap();
        let e2 = p2.load(&progs::page_oracle()).unwrap();
        assert_eq!(p1.run(&e1, 0, [0, 0, 0]), EnclaveRun::Exited(0));
        assert_eq!(p2.run(&e2, 0, [1, 0, 0]), EnclaveRun::Exited(0));
        assert_views_equal(&mut p1, &mut p2, "secret-dependent access pattern leaked");
        assert_eq!(p1.cycles(), p2.cycles());
    }

    #[test]
    fn monitor_scrubs_registers_after_enclave_exit() {
        let (mut p1, _) = paired_platforms();
        let e = p1.load(&progs::secret_keeper()).unwrap();
        p1.run(&e, 0, [0, 0x5ec2e7, 0]);
        // After the SMC returns, no user-visible register may carry the
        // secret (R0/R1 are the declassified result).
        for r in Reg::all() {
            let v = p1.machine.regs.get(Mode::User, r);
            assert_ne!(v, 0x5ec2e7, "register {r:?} leaked the secret");
        }
    }

    #[test]
    fn adversary_view_is_sensitive() {
        // Negative control: a *public* difference must change the view.
        let (mut p1, mut p2) = paired_platforms();
        let e1 = p1.load(&progs::echo()).unwrap();
        let _e2 = p2.load(&progs::echo()).unwrap();
        p1.write_shared(&e1, 1, 0, &[42]);
        let v1 = adversary_view(&mut p1.machine, &p1.monitor.layout);
        let v2 = adversary_view(&mut p2.machine, &p2.monitor.layout);
        assert_ne!(v1, v2);
    }
}
